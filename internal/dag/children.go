package dag

import "sync/atomic"

// childIndex is the DAG's approval index: for every transaction, the IDs of
// the transactions that approve it directly. It replaces the old
// RWMutex-guarded map[ID][]ID with a sharded, append-mostly structure whose
// readers are lock-free — the tip-selection hot path calls Children and
// NumChildren on every walk step from many walker goroutines at once, and
// under the old design every one of those calls serialized on the same
// RWMutex cache line.
//
// Layout: IDs are dense sequential integers, so the index is an array, not a
// map. It is split into childShards stripes by the low bits of the ID
// (shard = id mod childShards); stripe s stores the rows of IDs s,
// s+childShards, s+2·childShards, … in a dense slice indexed by id /
// childShards. Sharding keeps each stripe's row slice — the only thing that
// has to be copied when the index grows — 1/childShards of the total, and
// spreads consecutive IDs (which the round engine appends together) across
// stripes.
//
// Concurrency contract (single writer, lock-free readers):
//
//   - All mutations (appendChild) happen under the owning DAG's write lock,
//     so there is exactly one writer at a time.
//   - Readers never take a lock. Every mutable cell is published through an
//     atomic.Pointer: the writer prepares the new state (possibly writing
//     into spare capacity beyond the published length, which no reader can
//     observe) and then atomically stores a new slice header. The atomic
//     store/load pair gives the happens-before edge that makes the freshly
//     written elements visible.
//   - Published slices are immutable: an element below a published length is
//     never rewritten. Readers may therefore retain and iterate a returned
//     snapshot without copying, indefinitely.
type childIndex struct {
	shards [childShards]childShard
}

const (
	childShardBits = 5
	childShards    = 1 << childShardBits
)

// childShard holds the child rows of one ID stripe.
type childShard struct {
	// rows[slot] is the row of ID slot·childShards + shardIndex. Grown
	// copy-on-write by the single writer; every published element is non-nil
	// and never replaced.
	rows atomic.Pointer[[]*childRow]
}

// childRow is the child list of one transaction.
type childRow struct {
	// snap is the immutable child-ID snapshot. Appends publish a new header
	// over the same backing array while spare capacity lasts.
	snap atomic.Pointer[[]ID]
}

func childShardOf(id ID) (shard, slot int) {
	return int(id) & (childShards - 1), int(id) >> childShardBits
}

// appendChild records child as a direct approver of parent. Caller must hold
// the DAG's write lock (single-writer contract).
func (x *childIndex) appendChild(parent, child ID) {
	shard, slot := childShardOf(parent)
	x.shards[shard].ensure(slot).append(child)
}

// children returns the immutable child snapshot of id (nil when id has no
// children yet). Lock-free; safe to call concurrently with appendChild.
func (x *childIndex) children(id ID) []ID {
	shard, slot := childShardOf(id)
	rows := x.shards[shard].rows.Load()
	if rows == nil || slot >= len(*rows) {
		return nil
	}
	snap := (*rows)[slot].snap.Load()
	if snap == nil {
		return nil
	}
	return *snap
}

// numChildren returns len(children(id)) without materializing anything.
func (x *childIndex) numChildren(id ID) int {
	return len(x.children(id))
}

// ensure returns the row for slot, growing the stripe as needed. Writer-only.
func (s *childShard) ensure(slot int) *childRow {
	var rs []*childRow
	if cur := s.rows.Load(); cur != nil {
		rs = *cur
	}
	if slot < len(rs) {
		return rs[slot]
	}
	if slot < cap(rs) {
		// Extend in place: the new cells are invisible to readers holding
		// the old header, and the Store below publishes them.
		ext := rs[:slot+1]
		for i := len(rs); i <= slot; i++ {
			ext[i] = &childRow{}
		}
		s.rows.Store(&ext)
		return ext[slot]
	}
	newCap := 2 * cap(rs)
	if newCap <= slot {
		newCap = slot + 1
	}
	grown := make([]*childRow, slot+1, newCap)
	copy(grown, rs)
	for i := len(rs); i <= slot; i++ {
		grown[i] = &childRow{}
	}
	s.rows.Store(&grown)
	return grown[slot]
}

// append adds one child ID to the row. Writer-only.
func (r *childRow) append(c ID) {
	var ids []ID
	if cur := r.snap.Load(); cur != nil {
		ids = *cur
	}
	if len(ids) < cap(ids) {
		// The cell beyond the published length is unobservable until the
		// Store publishes the longer header.
		ids = ids[:len(ids)+1]
		ids[len(ids)-1] = c
	} else {
		newCap := 2 * cap(ids)
		if newCap < 2 {
			newCap = 2
		}
		grown := make([]ID, len(ids)+1, newCap)
		copy(grown, ids)
		grown[len(ids)] = c
		ids = grown
	}
	r.snap.Store(&ids)
}
