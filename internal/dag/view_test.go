package dag

import (
	"testing"

	"github.com/specdag/specdag/internal/xrand"
)

func TestNewViewShowsOnlyGenesis(t *testing.T) {
	d := New(nil)
	d.Add(1, 0, []ID{0, 0}, nil, Meta{})
	v := NewView(d)
	if v.NumVisible() != 1 || !v.IsVisible(0) {
		t.Fatal("fresh view must show exactly genesis")
	}
	tips := v.Tips()
	if len(tips) != 1 || tips[0] != 0 {
		t.Fatalf("fresh view tips = %v, want [0]", tips)
	}
}

func TestViewRevealValidation(t *testing.T) {
	d := New(nil)
	a, _ := d.Add(1, 0, []ID{0, 0}, nil, Meta{})
	b, _ := d.Add(2, 1, []ID{a.ID, a.ID}, nil, Meta{})
	v := NewView(d)
	if err := v.Reveal(b.ID); err == nil {
		t.Fatal("revealing a child before its parent must fail")
	}
	if err := v.Reveal(99); err == nil {
		t.Fatal("revealing an unknown id must fail")
	}
	if err := v.Reveal(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := v.Reveal(b.ID); err != nil {
		t.Fatal(err)
	}
	if err := v.Reveal(b.ID); err != nil {
		t.Fatal("re-reveal must be a no-op, not an error")
	}
}

func TestViewTipsAndChildrenFiltering(t *testing.T) {
	d := New(nil)
	a, _ := d.Add(1, 0, []ID{0, 0}, nil, Meta{})
	b, _ := d.Add(2, 0, []ID{0, 0}, nil, Meta{})
	c, _ := d.Add(3, 1, []ID{a.ID, b.ID}, nil, Meta{})

	v := NewView(d)
	if err := v.Reveal(a.ID); err != nil {
		t.Fatal(err)
	}
	// b and c invisible: a is the only visible tip; genesis's visible
	// children are just a.
	tips := v.Tips()
	if len(tips) != 1 || tips[0] != a.ID {
		t.Fatalf("tips = %v, want [%d]", tips, a.ID)
	}
	kids := v.Children(0)
	if len(kids) != 1 || kids[0] != a.ID {
		t.Fatalf("children(genesis) = %v, want [%d]", kids, a.ID)
	}
	// Reveal the rest: c becomes the only tip.
	if err := v.Reveal(b.ID); err != nil {
		t.Fatal(err)
	}
	if err := v.Reveal(c.ID); err != nil {
		t.Fatal(err)
	}
	tips = v.Tips()
	if len(tips) != 1 || tips[0] != c.ID {
		t.Fatalf("tips = %v, want [%d]", tips, c.ID)
	}
}

func TestViewMustGetPanicsOnInvisible(t *testing.T) {
	d := New(nil)
	a, _ := d.Add(1, 0, []ID{0}, nil, Meta{})
	v := NewView(d)
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet of invisible tx must panic")
		}
	}()
	v.MustGet(a.ID)
}

func TestViewRevealWhereByRound(t *testing.T) {
	d := New(nil)
	prev := ID(0)
	for r := 0; r < 6; r++ {
		tx, _ := d.Add(r%3, r, []ID{prev, prev}, nil, Meta{})
		prev = tx.ID
	}
	v := NewView(d)
	// Reveal everything up to round 3.
	v.RevealWhere(func(tx *Transaction) bool { return tx.Round <= 3 })
	if v.NumVisible() != 5 { // genesis + rounds 0..3
		t.Fatalf("visible = %d, want 5", v.NumVisible())
	}
	// Monotone predicate extension reveals the rest.
	v.RevealWhere(func(tx *Transaction) bool { return tx.Round <= 5 })
	if v.NumVisible() != 7 {
		t.Fatalf("visible = %d, want 7", v.NumVisible())
	}
}

func TestViewRevealWhereSkipsOrphans(t *testing.T) {
	// A transaction whose parent is excluded by the predicate must not be
	// revealed until the parent qualifies.
	d := New(nil)
	a, _ := d.Add(1, 5, []ID{0, 0}, nil, Meta{}) // late parent
	b, _ := d.Add(2, 1, []ID{a.ID, a.ID}, nil, Meta{})
	v := NewView(d)
	v.RevealWhere(func(tx *Transaction) bool { return tx.Round <= 1 })
	if v.IsVisible(b.ID) {
		t.Fatal("child revealed before its parent qualified")
	}
	v.RevealWhere(func(tx *Transaction) bool { return tx.Round <= 5 })
	if !v.IsVisible(a.ID) || !v.IsVisible(b.ID) {
		t.Fatal("both should be visible once the parent qualifies")
	}
}

func TestViewDepthsAndSampling(t *testing.T) {
	d := New(nil)
	prev := ID(0)
	var ids []ID
	for i := 0; i < 10; i++ {
		tx, _ := d.Add(1, i, []ID{prev, prev}, nil, Meta{})
		prev = tx.ID
		ids = append(ids, tx.ID)
	}
	v := NewView(d)
	// Reveal only the first 5: the 5th is the view's tip even though the
	// global DAG goes deeper.
	v.RevealWhere(func(tx *Transaction) bool { return tx.Round <= 4 })
	depths := v.Depths()
	if depths[ids[4]] != 0 {
		t.Fatalf("view tip depth = %d, want 0", depths[ids[4]])
	}
	if depths[0] != 5 {
		t.Fatalf("genesis depth = %d, want 5", depths[0])
	}
	rng := xrand.New(1)
	tx := v.SampleAtDepth(rng, 2, 3)
	if dep := depths[tx.ID]; dep < 2 || dep > 3 {
		t.Fatalf("sampled depth %d outside [2,3]", dep)
	}
	if got := v.SampleAtDepth(rng, 50, 60); !got.IsGenesis() {
		t.Fatal("unsatisfiable depth band should fall back to genesis")
	}
}

func TestViewCumulativeWeights(t *testing.T) {
	d := New(nil)
	a, _ := d.Add(1, 0, []ID{0, 0}, nil, Meta{})
	b, _ := d.Add(2, 1, []ID{a.ID, a.ID}, nil, Meta{})
	c, _ := d.Add(3, 2, []ID{b.ID, b.ID}, nil, Meta{})
	v := NewView(d)
	v.Reveal(a.ID)
	v.Reveal(b.ID)
	// c invisible: weights computed within the view only.
	w := v.CumulativeWeights()
	if w[0] != 3 || w[a.ID] != 2 || w[b.ID] != 1 {
		t.Fatalf("view weights = %v", w)
	}
	if _, ok := w[c.ID]; ok {
		t.Fatal("invisible transaction must not appear in view weights")
	}
}

func TestViewMatchesDAGWhenFullyRevealed(t *testing.T) {
	rng := xrand.New(3)
	d := buildRandom(rng, 40)
	v := NewView(d)
	v.RevealWhere(func(*Transaction) bool { return true })
	if v.NumVisible() != d.Size() {
		t.Fatalf("full reveal visible = %d, want %d", v.NumVisible(), d.Size())
	}
	dTips, vTips := d.Tips(), v.Tips()
	if len(dTips) != len(vTips) {
		t.Fatalf("tips mismatch: %v vs %v", dTips, vTips)
	}
	for i := range dTips {
		if dTips[i] != vTips[i] {
			t.Fatalf("tips mismatch: %v vs %v", dTips, vTips)
		}
	}
	dw, vw := d.CumulativeWeights(), v.CumulativeWeights()
	for id, w := range dw {
		if vw[id] != w {
			t.Fatalf("weight(%d) = %d, want %d", id, vw[id], w)
		}
	}
}
