package dag

import (
	"sync"
	"testing"

	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/xrand"
)

// buildRandomDAG grows a tangle of n transactions with 1-2 random parents
// each, shaped like a simulation run (recent transactions preferred).
func buildRandomDAG(t testing.TB, n int, seed int64) *DAG {
	t.Helper()
	rng := xrand.New(seed)
	d := New([]float64{0})
	for i := 1; i < n; i++ {
		lo := 0
		if i > 20 {
			lo = i - 20 // approve recent transactions, like real walks do
		}
		p1 := ID(lo + rng.Intn(i-lo))
		p2 := ID(lo + rng.Intn(i-lo))
		if _, err := d.Add(i, i, []ID{p1, p2}, []float64{float64(i)}, Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestCumulativeWeightsParallelMatchesSequential pins the bit-identical
// guarantee of the level-parallel sweep against the reference sequential
// sweep, on DAGs above and below the parallel threshold.
func TestCumulativeWeightsParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{2, 17, cumWeightsParallelMin, 700} {
		d := buildRandomDAG(t, n, int64(n))
		d.SetParallelism(par.NewBudget(4), 8)
		txs := d.snapshot()
		seq := d.cumulativeWeightsSeq(txs)
		pll := d.cumulativeWeightsParallel(txs)
		if len(seq) != len(pll) {
			t.Fatalf("n=%d: weight map sizes differ: %d vs %d", n, len(seq), len(pll))
		}
		for id, w := range seq {
			if pll[id] != w {
				t.Fatalf("n=%d: weight of %d = %d (parallel) vs %d (sequential)", n, id, pll[id], w)
			}
		}
	}
}

// TestCumulativeWeightsIgnoresConcurrentGrowth: the sweep must cover exactly
// the snapshot taken at call time, even when children pointing past the
// snapshot exist in the index.
func TestCumulativeWeightsIgnoresConcurrentGrowth(t *testing.T) {
	d := buildRandomDAG(t, 300, 1)
	d.SetParallelism(nil, 4)
	txs := d.snapshot()
	want := d.cumulativeWeightsSeq(txs)
	// Grow the DAG: the index now holds children beyond the old snapshot.
	for i := 0; i < 50; i++ {
		tips := d.Tips()
		if _, err := d.Add(1000+i, 1000, []ID{tips[0], tips[len(tips)-1]}, []float64{1}, Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	got := d.cumulativeWeightsParallel(txs)
	if len(got) != len(want) {
		t.Fatalf("weight map sizes differ: %d vs %d", len(got), len(want))
	}
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("weight of %d changed under concurrent growth: %d vs %d", id, got[id], w)
		}
	}
}

// TestChildrenSnapshotImmutable: a snapshot taken before further appends must
// not observe them.
func TestChildrenSnapshotImmutable(t *testing.T) {
	d := New([]float64{0})
	if _, err := d.Add(1, 0, []ID{0}, nil, Meta{}); err != nil {
		t.Fatal(err)
	}
	before := d.Children(0)
	if len(before) != 1 {
		t.Fatalf("want 1 child, got %d", len(before))
	}
	for i := 2; i < 40; i++ {
		if _, err := d.Add(i, 0, []ID{0}, nil, Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(before) != 1 || before[0] != 1 {
		t.Fatalf("snapshot mutated by later appends: %v", before)
	}
	if got := d.NumChildren(0); got != 39 {
		t.Fatalf("NumChildren = %d, want 39", got)
	}
}

// TestConcurrentAddAndRead hammers the lock-free read side (Children,
// NumChildren, Get, Size, CumulativeWeights) while a writer appends — the
// race detector turns any unsafe publication into a failure.
func TestConcurrentAddAndRead(t *testing.T) {
	d := New([]float64{0})
	d.SetParallelism(par.NewBudget(2), 2)
	const total = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := d.Size()
				id := ID(rng.Intn(n))
				kids := d.Children(id)
				for _, k := range kids {
					if tx := d.MustGet(k); tx.ID != k {
						t.Errorf("MustGet(%d) returned tx %d", k, tx.ID)
						return
					}
				}
				if got := d.NumChildren(id); got < len(kids) {
					t.Errorf("NumChildren(%d) = %d shrank below earlier snapshot %d", id, got, len(kids))
					return
				}
				if n > 5 {
					// Both sweeps over the same mid-write snapshot must
					// agree: the parallel sweep derives its adjacency from
					// the snapshot's Parents, never the (possibly trailing)
					// live child index.
					txs := d.snapshot()
					seq := d.cumulativeWeightsSeq(txs)
					pll := d.cumulativeWeightsParallel(txs)
					for id, w := range seq {
						if pll[id] != w {
							t.Errorf("mid-write sweep divergence at %d: %d vs %d", id, pll[id], w)
							return
						}
					}
				}
			}
		}(int64(r))
	}
	rng := xrand.New(99)
	for i := 1; i < total; i++ {
		p1 := ID(rng.Intn(i))
		p2 := ID(rng.Intn(i))
		if _, err := d.Add(i, i, []ID{p1, p2}, nil, Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func BenchmarkChildrenRead(b *testing.B) {
	d := buildRandomDAG(b, 1000, 7)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := xrand.New(11)
		for pb.Next() {
			id := ID(rng.Intn(1000))
			kids := d.Children(id)
			_ = kids
		}
	})
}

// BenchmarkCumulativeWeightsParallel1000 measures the level-parallel sweep
// itself (bypassing the per-size memo that makes repeated CumulativeWeights
// calls on a frozen tangle near-free).
func BenchmarkCumulativeWeightsParallel1000(b *testing.B) {
	d := buildRandomDAG(b, 1000, 5)
	d.SetParallelism(nil, 0)
	txs := d.snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.cumulativeWeightsParallel(txs)
	}
}

// BenchmarkCumulativeWeightsCached measures the frozen-tangle fast path the
// round engine's walkers actually hit.
func BenchmarkCumulativeWeightsCached(b *testing.B) {
	d := buildRandomDAG(b, 1000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.CumulativeWeights()
	}
}
