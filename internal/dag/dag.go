// Package dag implements the tangle substrate of the specializing DAG: a
// directed acyclic graph of transactions, each carrying a full set of model
// weights and approving (pointing at) one or two earlier transactions.
//
// The structure follows Popov's tangle as adapted by the paper (§4.1):
// nodes of the graph are model weight updates, edges are approvals, tips are
// transactions that have not received approvals yet. Acyclicity holds by
// construction because a transaction may only approve transactions that
// already exist.
//
// The DAG is safe for concurrent use: all accessors take an internal
// RWMutex, so any number of readers (the parallel round engine's walkers)
// proceed in parallel, and Add serializes against them. Transactions are
// immutable after insertion and returned by pointer, so reads of a
// Transaction's fields need no lock at all.
package dag

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/specdag/specdag/internal/xrand"
)

// ID identifies a transaction within one DAG. IDs are assigned sequentially
// starting at 0 (the genesis transaction).
type ID int

// GenesisIssuer is the Issuer value of the genesis transaction.
const GenesisIssuer = -1

// Meta carries experiment bookkeeping attached to a transaction. It is not
// interpreted by the DAG itself.
type Meta struct {
	// TrainAcc and TestAcc are the publisher's local accuracies at publish
	// time (informational).
	TrainAcc float64
	TestAcc  float64
	// Poisoned marks transactions published from poisoned data. It is used
	// only by the evaluation metrics (Fig. 12-14), never by the protocol.
	Poisoned bool
}

// Transaction is a node of the DAG: one published model update.
// Transactions are immutable after insertion; callers must not modify
// Params or Parents.
type Transaction struct {
	ID      ID
	Issuer  int // publishing client, or GenesisIssuer
	Round   int // simulation round at publish time
	Parents []ID
	Params  []float64 // flat model weights
	Meta    Meta
}

// IsGenesis reports whether t is the genesis transaction.
func (t *Transaction) IsGenesis() bool { return t.Issuer == GenesisIssuer }

// DAG is a thread-safe tangle of model-update transactions.
type DAG struct {
	mu       sync.RWMutex
	txs      []*Transaction // index = ID; insertion order is topological
	children map[ID][]ID
	tips     map[ID]struct{}
}

// New creates a DAG containing only a genesis transaction that carries the
// given initial model parameters.
func New(genesisParams []float64) *DAG {
	d := &DAG{
		children: make(map[ID][]ID),
		tips:     make(map[ID]struct{}),
	}
	g := &Transaction{ID: 0, Issuer: GenesisIssuer, Round: -1, Params: genesisParams}
	d.txs = append(d.txs, g)
	d.tips[0] = struct{}{}
	return d
}

// Genesis returns the genesis transaction.
func (d *DAG) Genesis() *Transaction {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.txs[0]
}

// Add publishes a new transaction approving the given parents and returns
// it. Parents must reference existing transactions; one or two parents are
// accepted (a client approves the same transaction twice when the DAG offers
// only one tip). Add never creates a cycle because parents must already
// exist.
func (d *DAG) Add(issuer, round int, parents []ID, params []float64, meta Meta) (*Transaction, error) {
	if len(parents) < 1 || len(parents) > 2 {
		return nil, fmt.Errorf("dag: transaction must approve 1 or 2 parents, got %d", len(parents))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range parents {
		if p < 0 || int(p) >= len(d.txs) {
			return nil, fmt.Errorf("dag: unknown parent %d", p)
		}
	}
	t := &Transaction{
		ID:      ID(len(d.txs)),
		Issuer:  issuer,
		Round:   round,
		Parents: append([]ID(nil), parents...),
		Params:  params,
		Meta:    meta,
	}
	d.txs = append(d.txs, t)
	seen := map[ID]bool{}
	for _, p := range parents {
		if seen[p] {
			continue // approving the same parent twice adds one child edge
		}
		seen[p] = true
		d.children[p] = append(d.children[p], t.ID)
		delete(d.tips, p)
	}
	d.tips[t.ID] = struct{}{}
	return t, nil
}

// Get returns the transaction with the given ID.
func (d *DAG) Get(id ID) (*Transaction, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || int(id) >= len(d.txs) {
		return nil, false
	}
	return d.txs[id], true
}

// MustGet returns the transaction with the given ID and panics if absent.
// Use only with IDs previously returned by this DAG.
func (d *DAG) MustGet(id ID) *Transaction {
	t, ok := d.Get(id)
	if !ok {
		panic(fmt.Sprintf("dag: no transaction %d", id))
	}
	return t
}

// Size returns the number of transactions including genesis.
func (d *DAG) Size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.txs)
}

// Children returns the IDs of transactions approving id, in insertion order.
// The returned slice is a copy.
func (d *DAG) Children(id ID) []ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]ID(nil), d.children[id]...)
}

// NumChildren returns the number of direct approvers of id without copying.
func (d *DAG) NumChildren(id ID) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.children[id])
}

// IsTip reports whether id has no approvers yet.
func (d *DAG) IsTip(id ID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.tips[id]
	return ok
}

// Tips returns the current tip IDs in ascending order.
func (d *DAG) Tips() []ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]ID, 0, len(d.tips))
	for id := range d.tips {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns all transactions in insertion (topological) order.
// The returned slice is a copy; the transactions are shared.
func (d *DAG) All() []*Transaction {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]*Transaction(nil), d.txs...)
}

// Ancestors returns the set of all transactions reachable from id via
// parent (approval) edges, excluding id itself.
func (d *DAG) Ancestors(id ID) map[ID]struct{} {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[ID]struct{})
	stack := append([]ID(nil), d.txs[id].Parents...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, seen := out[cur]; seen {
			continue
		}
		out[cur] = struct{}{}
		stack = append(stack, d.txs[cur].Parents...)
	}
	return out
}

// CumulativeWeights returns, for every transaction, the number of
// transactions that approve it directly or indirectly, plus one for itself —
// the classic tangle weight of Fig. 3. Computed in O(V*E/64) with bitsets.
func (d *DAG) CumulativeWeights() map[ID]int {
	d.mu.RLock()
	defer d.mu.RUnlock()

	n := len(d.txs)
	words := (n + 63) / 64
	// approvers[i] = bitset of transactions that (transitively) approve i.
	approvers := make([][]uint64, n)
	for i := range approvers {
		approvers[i] = make([]uint64, words)
	}
	// Iterate in reverse topological (insertion) order: children first.
	for i := n - 1; i >= 0; i-- {
		t := d.txs[i]
		for _, p := range t.Parents {
			dst := approvers[p]
			src := approvers[t.ID]
			for w := range dst {
				dst[w] |= src[w]
			}
			dst[t.ID/64] |= 1 << (uint(t.ID) % 64)
		}
	}
	weights := make(map[ID]int, n)
	for i := 0; i < n; i++ {
		c := 1 // self-approving
		for _, w := range approvers[i] {
			c += popcount(w)
		}
		weights[ID(i)] = c
	}
	return weights
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// Depths returns, for every transaction, its shortest distance (in approval
// hops) to any tip, following child edges. Tips have depth 0.
func (d *DAG) Depths() map[ID]int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	depths := make(map[ID]int, len(d.txs))
	queue := make([]ID, 0, len(d.tips))
	for id := range d.tips {
		depths[id] = 0
		queue = append(queue, id)
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range d.txs[cur].Parents {
			if _, seen := depths[p]; !seen {
				depths[p] = depths[cur] + 1
				queue = append(queue, p)
			}
		}
	}
	return depths
}

// SampleAtDepth returns a uniformly random transaction whose depth (shortest
// distance to a tip) lies in [minDepth, maxDepth]. If no transaction
// qualifies, it returns the genesis transaction. This implements the walk
// entry-point sampling of §5.3.5 ("sampled at a depth of 15-25 transactions
// from the tips, as proposed by Popov").
func (d *DAG) SampleAtDepth(rng *xrand.RNG, minDepth, maxDepth int) *Transaction {
	depths := d.Depths()
	d.mu.RLock()
	defer d.mu.RUnlock()
	var candidates []ID
	for id, depth := range depths {
		if depth >= minDepth && depth <= maxDepth {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return d.txs[0]
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	return d.txs[candidates[rng.Intn(len(candidates))]]
}

// DOT renders the DAG in Graphviz format, coloring tips gray and poisoned
// transactions red. Intended for debugging and small visual checks.
func (d *DAG) DOT() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var b strings.Builder
	b.WriteString("digraph tangle {\n  rankdir=RL;\n")
	for _, t := range d.txs {
		attrs := fmt.Sprintf("label=\"%d\\nc%d r%d\"", t.ID, t.Issuer, t.Round)
		if _, isTip := d.tips[t.ID]; isTip {
			attrs += ", style=filled, fillcolor=gray"
		}
		if t.Meta.Poisoned {
			attrs += ", color=red"
		}
		fmt.Fprintf(&b, "  t%d [%s];\n", t.ID, attrs)
	}
	for _, t := range d.txs {
		for _, p := range t.Parents {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", t.ID, p)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes the DAG for logging.
type Stats struct {
	Transactions int
	Tips         int
	MaxDepth     int
}

// Stats returns summary statistics.
func (d *DAG) Stats() Stats {
	depths := d.Depths()
	d.mu.RLock()
	defer d.mu.RUnlock()
	maxDepth := 0
	for _, dep := range depths {
		if dep > maxDepth {
			maxDepth = dep
		}
	}
	return Stats{Transactions: len(d.txs), Tips: len(d.tips), MaxDepth: maxDepth}
}
