// Package dag implements the tangle substrate of the specializing DAG: a
// directed acyclic graph of transactions, each carrying a full set of model
// weights and approving (pointing at) one or two earlier transactions.
//
// The structure follows Popov's tangle as adapted by the paper (§4.1):
// nodes of the graph are model weight updates, edges are approvals, tips are
// transactions that have not received approvals yet. Acyclicity holds by
// construction because a transaction may only approve transactions that
// already exist.
//
// The DAG is safe for concurrent use, and the read side of the walk hot path
// is lock-free: the transaction list and the children index are published
// through atomic snapshots (see childIndex), so Get/MustGet/Genesis/Size/
// All/Ancestors/Children/NumChildren/CumulativeWeights never block — any
// number of walker goroutines proceed without touching a lock, even while
// Add is running. Add serializes writers behind an internal mutex; only the
// tip set (Tips, IsTip, and the depth helpers that start from it) still
// reads under an RLock, off the per-step hot path. Transactions are
// immutable after insertion and returned by pointer, so reads of a
// Transaction's fields need no lock at all.
package dag

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/xrand"
)

// ID identifies a transaction within one DAG. IDs are assigned sequentially
// starting at 0 (the genesis transaction).
type ID int

// GenesisIssuer is the Issuer value of the genesis transaction.
const GenesisIssuer = -1

// Meta carries experiment bookkeeping attached to a transaction. It is not
// interpreted by the DAG itself.
type Meta struct {
	// TrainAcc and TestAcc are the publisher's local accuracies at publish
	// time (informational).
	TrainAcc float64
	TestAcc  float64
	// Poisoned marks transactions published from poisoned data. It is used
	// only by the evaluation metrics (Fig. 12-14), never by the protocol.
	Poisoned bool
}

// Transaction is a node of the DAG: one published model update.
// Transactions are immutable after insertion; callers must not modify
// Params or Parents.
type Transaction struct {
	ID      ID
	Issuer  int // publishing client, or GenesisIssuer
	Round   int // simulation round at publish time
	Parents []ID
	Params  []float64 // flat model weights
	Meta    Meta
}

// IsGenesis reports whether t is the genesis transaction.
func (t *Transaction) IsGenesis() bool { return t.Issuer == GenesisIssuer }

// DAG is a thread-safe tangle of model-update transactions.
type DAG struct {
	mu   sync.RWMutex   // serializes Add; guards tips
	txs  []*Transaction // writer's working slice (index = ID; insertion order is topological)
	snap atomic.Pointer[[]*Transaction]
	kids childIndex
	tips map[ID]struct{}

	// cwPool/cwWorkers parameterize CumulativeWeights' parallel sweep (see
	// SetParallelism). Written before the DAG is shared; read-only afterwards.
	cwPool    *par.Budget
	cwWorkers int
	// cwCache memoizes the last CumulativeWeights result. The DAG is
	// append-only, so the size of the snapshot fully determines the weights:
	// within a simulation round (tangle frozen) every walker reuses one
	// sweep instead of recomputing an identical map per walk.
	cwCache atomic.Pointer[cwCacheEntry]

	// Epoch compaction state (see epoch.go). comp, frozen and
	// lastFrozenEpoch are guarded by mu; floor mirrors the first live ID
	// for lock-free readers and only ever advances.
	comp            Compaction
	frozen          []EpochSummary
	lastFrozenEpoch int
	floor           atomic.Int64
}

// cwCacheEntry pairs a weights map with the snapshot size and compaction
// floor it was computed for. The map is shared by all readers and must not
// be modified.
type cwCacheEntry struct {
	n       int
	floor   ID
	weights map[ID]int
}

// New creates a DAG containing only a genesis transaction that carries the
// given initial model parameters.
func New(genesisParams []float64) *DAG {
	d := &DAG{
		tips:            make(map[ID]struct{}),
		lastFrozenEpoch: -1,
	}
	g := &Transaction{ID: 0, Issuer: GenesisIssuer, Round: -1, Params: genesisParams}
	d.txs = append(d.txs, g)
	d.publish()
	d.tips[0] = struct{}{}
	return d
}

// SetParallelism configures the worker budget CumulativeWeights' sweep draws
// helper goroutines from: pool is the shared budget (nil spawns freely) and
// workers the per-call cap (0 selects runtime.NumCPU(), 1 forces the
// sequential sweep). Results are bit-identical for every setting — the sweep
// is a bitset union, which is order-independent — so this only trades wall
// clock for CPU. Call it while the DAG is still owned by a single goroutine
// (engine construction time); it is not synchronized against concurrent
// readers.
func (d *DAG) SetParallelism(pool *par.Budget, workers int) {
	d.cwPool = pool
	d.cwWorkers = workers
}

// publish makes the current txs slice visible to lock-free readers. Caller
// must hold d.mu (or own the DAG exclusively, as in New).
func (d *DAG) publish() {
	s := d.txs
	d.snap.Store(&s)
}

// snapshot returns the current immutable transaction list without locking.
func (d *DAG) snapshot() []*Transaction {
	return *d.snap.Load()
}

// Genesis returns the genesis transaction.
func (d *DAG) Genesis() *Transaction {
	return d.snapshot()[0]
}

// Add publishes a new transaction approving the given parents and returns
// it. Parents must reference existing transactions; one or two parents are
// accepted (a client approves the same transaction twice when the DAG offers
// only one tip). Add never creates a cycle because parents must already
// exist.
func (d *DAG) Add(issuer, round int, parents []ID, params []float64, meta Meta) (*Transaction, error) {
	if len(parents) < 1 || len(parents) > 2 {
		return nil, fmt.Errorf("dag: transaction must approve 1 or 2 parents, got %d", len(parents))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range parents {
		if p < 0 || int(p) >= len(d.txs) {
			return nil, fmt.Errorf("dag: unknown parent %d", p)
		}
	}
	t := &Transaction{
		ID:      ID(len(d.txs)),
		Issuer:  issuer,
		Round:   round,
		Parents: append([]ID(nil), parents...),
		Params:  params,
		Meta:    meta,
	}
	d.txs = append(d.txs, t)
	d.publish()
	seen := map[ID]bool{}
	for _, p := range parents {
		if seen[p] {
			continue // approving the same parent twice adds one child edge
		}
		seen[p] = true
		d.kids.appendChild(p, t.ID)
		delete(d.tips, p)
	}
	d.tips[t.ID] = struct{}{}
	return t, nil
}

// Get returns the transaction with the given ID. Lock-free.
func (d *DAG) Get(id ID) (*Transaction, bool) {
	txs := d.snapshot()
	if id < 0 || int(id) >= len(txs) {
		return nil, false
	}
	return txs[id], true
}

// MustGet returns the transaction with the given ID and panics if absent.
// Use only with IDs previously returned by this DAG. Lock-free.
func (d *DAG) MustGet(id ID) *Transaction {
	t, ok := d.Get(id)
	if !ok {
		panic(fmt.Sprintf("dag: no transaction %d", id))
	}
	return t
}

// Size returns the number of transactions including genesis. Lock-free.
func (d *DAG) Size() int {
	return len(d.snapshot())
}

// Children returns the IDs of transactions approving id, in insertion order.
// The returned slice is an immutable snapshot: it never changes, even if id
// acquires more children later, and callers must not modify it. Lock-free.
func (d *DAG) Children(id ID) []ID {
	return d.kids.children(id)
}

// NumChildren returns the number of direct approvers of id. Lock-free.
func (d *DAG) NumChildren(id ID) int {
	return d.kids.numChildren(id)
}

// IsTip reports whether id has no approvers yet.
func (d *DAG) IsTip(id ID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.tips[id]
	return ok
}

// Tips returns the current tip IDs in ascending order.
func (d *DAG) Tips() []ID {
	d.mu.RLock()
	out := make([]ID, 0, len(d.tips))
	for id := range d.tips {
		out = append(out, id)
	}
	d.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns all transactions in insertion (topological) order.
// The returned slice is a copy; the transactions are shared. Lock-free.
func (d *DAG) All() []*Transaction {
	return append([]*Transaction(nil), d.snapshot()...)
}

// Ancestors returns the set of all transactions reachable from id via
// parent (approval) edges, excluding id itself. Lock-free.
func (d *DAG) Ancestors(id ID) map[ID]struct{} {
	txs := d.snapshot()
	out := make(map[ID]struct{})
	stack := append([]ID(nil), txs[id].Parents...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, seen := out[cur]; seen {
			continue
		}
		out[cur] = struct{}{}
		stack = append(stack, txs[cur].Parents...)
	}
	return out
}

// cumWeightsParallelMin is the DAG size below which CumulativeWeights always
// uses the sequential sweep: under ~a hundred transactions the level
// bookkeeping costs more than the bitset ORs it parallelizes.
const cumWeightsParallelMin = 128

// CumulativeWeights returns, for every transaction, the number of
// transactions that approve it directly or indirectly, plus one for itself —
// the classic tangle weight of Fig. 3. Computed in O(V*E/64) with bitsets.
// The returned map is shared between callers and must not be modified.
//
// The result is memoized per snapshot size (the DAG is append-only, so the
// size determines the weights): the many walkers of one frozen-tangle round
// share a single sweep. A cache miss sweeps the consistent snapshot taken
// at call time and, for DAGs past cumWeightsParallelMin, fans out
// level-by-level across the worker budget configured via SetParallelism:
// transactions whose children are all in earlier levels are independent,
// and bitset union is order-independent, so the parallel and sequential
// sweeps are bit-identical.
func (d *DAG) CumulativeWeights() map[ID]int {
	txs := d.snapshot()
	n := len(txs)
	floor := ID(d.floor.Load())
	if e := d.cwCache.Load(); e != nil && e.n == n && e.floor == floor {
		return e.weights
	}
	var weights map[ID]int
	switch {
	case floor > 0:
		weights = cumulativeWeightsSuffix(txs, floor)
	case n >= cumWeightsParallelMin && par.Workers(d.cwWorkers) > 1:
		weights = d.cumulativeWeightsParallel(txs)
	default:
		weights = d.cumulativeWeightsSeq(txs)
	}
	// Concurrent fillers compute identical maps; last store wins.
	d.cwCache.Store(&cwCacheEntry{n: n, floor: floor, weights: weights})
	return weights
}

// cumulativeWeightsSuffix sweeps the live suffix [floor, n) only. Children
// always carry larger IDs than their parents and the frozen region is an ID
// prefix, so every approver of a live transaction is itself live: the
// weights computed over the suffix alone equal the full-DAG weights of
// those transactions exactly. The returned map holds live IDs only — frozen
// weights live in the EpochSummary aggregates.
func cumulativeWeightsSuffix(txs []*Transaction, floor ID) map[ID]int {
	n := len(txs)
	m := n - int(floor)
	approvers := newBitsets(m)
	for i := n - 1; i >= int(floor); i-- {
		t := txs[i]
		j := i - int(floor)
		for _, p := range t.Parents {
			if p < floor {
				continue
			}
			dst := approvers[p-floor]
			src := approvers[j]
			for w := range dst {
				dst[w] |= src[w]
			}
			dst[j/64] |= 1 << (uint(j) % 64)
		}
	}
	weights := make(map[ID]int, m)
	for i := 0; i < m; i++ {
		weights[floor+ID(i)] = 1 + popcountSet(approvers[i])
	}
	return weights
}

// cumulativeWeightsSeq is the single-goroutine reverse-topological sweep.
func (d *DAG) cumulativeWeightsSeq(txs []*Transaction) map[ID]int {
	n := len(txs)
	approvers := newBitsets(n)
	// Iterate in reverse topological (insertion) order: children first.
	for i := n - 1; i >= 0; i-- {
		t := txs[i]
		for _, p := range t.Parents {
			dst := approvers[p]
			src := approvers[t.ID]
			for w := range dst {
				dst[w] |= src[w]
			}
			dst[t.ID/64] |= 1 << (uint(t.ID) % 64)
		}
	}
	weights := make(map[ID]int, n)
	for i := 0; i < n; i++ {
		weights[ID(i)] = 1 + popcountSet(approvers[i])
	}
	return weights
}

// cumulativeWeightsParallel partitions the snapshot into levels — level g
// holds the transactions whose longest child-chain within the snapshot has
// length g — and computes each level's bitsets concurrently: a transaction
// only reads the (completed) bitsets of its children, which all live in
// strictly earlier levels. The formulation is parent-centric (each worker
// writes exactly one transaction's bitset), so workers share no mutable
// state within a level.
//
// The child adjacency is rebuilt from the snapshot's Parents edges rather
// than read from the live child index: the index trails the published
// transaction list during an in-flight Add, while Parents are part of the
// snapshot itself — so the parallel sweep sees exactly the edge set the
// sequential sweep sees, and the bit-identical guarantee holds even with
// writers running.
func (d *DAG) cumulativeWeightsParallel(txs []*Transaction) map[ID]int {
	n := len(txs)
	approvers := newBitsets(n)

	// Snapshot-consistent CSR adjacency. Parents may repeat (a transaction
	// approving the same parent twice); dedup to one child edge, as Add
	// does for the live index. The loop handles any parent count so the two
	// sweeps stay structurally equivalent if the 2-parent cap ever moves.
	forEachUniqueParent := func(ps []ID, fn func(p ID)) {
		for j, p := range ps {
			dup := false
			for _, q := range ps[:j] {
				if q == p {
					dup = true
					break
				}
			}
			if !dup {
				fn(p)
			}
		}
	}
	degree := make([]int32, n+1)
	for i := 1; i < n; i++ {
		forEachUniqueParent(txs[i].Parents, func(p ID) { degree[p+1]++ })
	}
	for i := 0; i < n; i++ {
		degree[i+1] += degree[i]
	}
	offsets := degree // prefix sums: children of p live in adj[offsets[p]:offsets[p+1]]
	adj := make([]ID, offsets[n])
	next := make([]int32, n)
	copy(next, offsets[:n])
	for i := 1; i < n; i++ {
		forEachUniqueParent(txs[i].Parents, func(p ID) {
			adj[next[p]] = ID(i)
			next[p]++
		})
	}
	children := func(p ID) []ID { return adj[offsets[p]:offsets[p+1]] }

	// Assign levels bottom-up. Children always have larger IDs than their
	// parents, so a single descending pass sees every child before its
	// parent.
	gen := make([]int32, n)
	maxGen := int32(0)
	counts := make([]int32, 1, 8) // counts[g] = number of transactions at level g
	for i := n - 1; i >= 0; i-- {
		g := int32(0)
		for _, c := range children(ID(i)) {
			if gen[c]+1 > g {
				g = gen[c] + 1
			}
		}
		gen[i] = g
		if g > maxGen {
			maxGen = g
			counts = append(counts, 0)
		}
		counts[g]++
	}
	levels := make([][]ID, maxGen+1)
	for g := range levels {
		levels[g] = make([]ID, 0, counts[g])
	}
	for i := 0; i < n; i++ {
		levels[gen[i]] = append(levels[gen[i]], ID(i))
	}

	// Level 0 is the childless frontier: its bitsets stay empty. Every later
	// level unions the finished bitsets of strictly earlier levels.
	for g := int32(1); g <= maxGen; g++ {
		lvl := levels[g]
		par.ForEachIn(d.cwPool, d.cwWorkers, len(lvl), func(k int) {
			p := lvl[k]
			dst := approvers[p]
			for _, c := range children(p) {
				src := approvers[c]
				for w := range dst {
					dst[w] |= src[w]
				}
				dst[int(c)/64] |= 1 << (uint(c) % 64)
			}
		})
	}

	popcounts := make([]int, n)
	par.ForEachIn(d.cwPool, d.cwWorkers, n, func(i int) {
		popcounts[i] = popcountSet(approvers[i])
	})
	weights := make(map[ID]int, n)
	for i := 0; i < n; i++ {
		weights[ID(i)] = 1 + popcounts[i]
	}
	return weights
}

// newBitsets allocates n bitsets of n bits each, backed by one flat slice
// for locality.
func newBitsets(n int) [][]uint64 {
	words := (n + 63) / 64
	flat := make([]uint64, n*words)
	sets := make([][]uint64, n)
	for i := range sets {
		sets[i] = flat[i*words : (i+1)*words : (i+1)*words]
	}
	return sets
}

// popcountSet counts the set bits of a bitset.
func popcountSet(set []uint64) int {
	c := 0
	for _, w := range set {
		c += bits.OnesCount64(w)
	}
	return c
}

// Depths returns, for every transaction, its shortest distance (in approval
// hops) to any tip, following child edges. Tips have depth 0.
func (d *DAG) Depths() map[ID]int {
	// Snapshot under the same RLock that reads the tip set: Add updates
	// both under the write lock, so every tip ID is covered by txs.
	d.mu.RLock()
	txs := d.snapshot()
	queue := make([]ID, 0, len(d.tips))
	for id := range d.tips {
		queue = append(queue, id)
	}
	d.mu.RUnlock()
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	depths := make(map[ID]int, len(txs))
	for _, id := range queue {
		depths[id] = 0
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range txs[cur].Parents {
			if _, seen := depths[p]; !seen {
				depths[p] = depths[cur] + 1
				queue = append(queue, p)
			}
		}
	}
	return depths
}

// depthsUpTo computes shortest distances to the given tips, following child
// edges, for every transaction within maxDepth hops — a depth-bounded
// variant of Depths. BFS visits nodes in nondecreasing depth order and every
// shortest path to an in-bound node stays in bound, so the result agrees
// exactly with Depths restricted to [0, maxDepth] while the sweep cost
// tracks the tip band, not the DAG.
func (d *DAG) depthsUpTo(txs []*Transaction, tips []ID, maxDepth int) map[ID]int {
	depths := make(map[ID]int, len(tips))
	queue := append([]ID(nil), tips...)
	for _, id := range tips {
		depths[id] = 0
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		dep := depths[cur]
		if dep >= maxDepth {
			continue
		}
		for _, p := range txs[cur].Parents {
			if _, seen := depths[p]; !seen {
				depths[p] = dep + 1
				queue = append(queue, p)
			}
		}
	}
	return depths
}

// SampleAtDepth returns a uniformly random transaction whose depth (shortest
// distance to a tip) lies in [minDepth, maxDepth]. If no transaction
// qualifies, it returns the genesis transaction. This implements the walk
// entry-point sampling of §5.3.5 ("sampled at a depth of 15-25 transactions
// from the tips, as proposed by Popov").
func (d *DAG) SampleAtDepth(rng *xrand.RNG, minDepth, maxDepth int) *Transaction {
	d.mu.RLock()
	txs := d.snapshot()
	tips := make([]ID, 0, len(d.tips))
	for id := range d.tips {
		tips = append(tips, id)
	}
	d.mu.RUnlock()
	sort.Slice(tips, func(i, j int) bool { return tips[i] < tips[j] })
	depths := d.depthsUpTo(txs, tips, maxDepth)
	var candidates []ID
	for id, depth := range depths {
		if depth >= minDepth && depth <= maxDepth {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return txs[0]
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	return txs[candidates[rng.Intn(len(candidates))]]
}

// DOT renders the DAG in Graphviz format, coloring tips gray and poisoned
// transactions red. Intended for debugging and small visual checks.
func (d *DAG) DOT() string {
	d.mu.RLock()
	txs := d.snapshot()
	tips := make(map[ID]bool, len(d.tips))
	for id := range d.tips {
		tips[id] = true
	}
	d.mu.RUnlock()
	var b strings.Builder
	b.WriteString("digraph tangle {\n  rankdir=RL;\n")
	for _, t := range txs {
		attrs := fmt.Sprintf("label=\"%d\\nc%d r%d\"", t.ID, t.Issuer, t.Round)
		if tips[t.ID] {
			attrs += ", style=filled, fillcolor=gray"
		}
		if t.Meta.Poisoned {
			attrs += ", color=red"
		}
		fmt.Fprintf(&b, "  t%d [%s];\n", t.ID, attrs)
	}
	for _, t := range txs {
		for _, p := range t.Parents {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", t.ID, p)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes the DAG for logging.
type Stats struct {
	Transactions int
	Tips         int
	MaxDepth     int
}

// Stats returns summary statistics.
func (d *DAG) Stats() Stats {
	depths := d.Depths()
	// Transaction and tip counts from one instant: both under the RLock
	// that Add's updates are atomic against.
	d.mu.RLock()
	txs := len(d.snapshot())
	tips := len(d.tips)
	d.mu.RUnlock()
	maxDepth := 0
	for _, dep := range depths {
		if dep > maxDepth {
			maxDepth = dep
		}
	}
	return Stats{Transactions: txs, Tips: tips, MaxDepth: maxDepth}
}
