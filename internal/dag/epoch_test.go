package dag

// Unit tests for epoch-based compaction: freezing semantics (guard blocking,
// empty epochs, parameter release), spill roundtrips, the live-suffix
// cumulative-weight sweep, the confirmed per-epoch weights, and the
// checkpoint restore path.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/specdag/specdag/internal/xrand"
)

// buildTangle grows a tangle under the uniform-broadcast regime compaction
// requires: every transaction approves two current tips, and Round advances
// by one every txPerRound transactions (monotone in ID). Params are small
// distinct vectors so release and reload are observable.
func buildTangle(rng *xrand.RNG, n, txPerRound int) *DAG {
	d := New([]float64{0, 0})
	for i := 0; i < n; i++ {
		tips := d.Tips()
		p1 := tips[rng.Intn(len(tips))]
		p2 := tips[rng.Intn(len(tips))]
		round := i / txPerRound
		params := []float64{float64(i + 1), float64(2 * (i + 1))}
		if _, err := d.Add(i%7, round, []ID{p1, p2}, params, Meta{TestAcc: float64(i%10) / 10}); err != nil {
			panic(err)
		}
	}
	return d
}

// bruteWeights computes cumulative weights (1 + transitive approvers) of
// every transaction by per-node reverse DFS — the reference the sweeps must
// match.
func bruteWeights(d *DAG) map[ID]int {
	out := make(map[ID]int, d.Size())
	for _, tx := range d.All() {
		seen := map[ID]bool{}
		stack := []ID{tx.ID}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range d.Children(id) {
				if !seen[c] {
					seen[c] = true
					stack = append(stack, c)
				}
			}
		}
		out[tx.ID] = 1 + len(seen)
	}
	return out
}

func TestCompactionValidate(t *testing.T) {
	cases := []struct {
		name    string
		c       Compaction
		wantErr bool
	}{
		{"disabled zero value", Compaction{}, false},
		{"valid", Compaction{Width: 10, Live: 2, GuardDepth: 5}, false},
		{"no live epochs", Compaction{Width: 10}, true},
		{"negative guard", Compaction{Width: 10, Live: 1, GuardDepth: -1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.c.Validate(); (err != nil) != tc.wantErr {
				t.Fatalf("Validate(%+v) = %v, wantErr %v", tc.c, err, tc.wantErr)
			}
		})
	}
}

func TestCompactToFreezesAndReleases(t *testing.T) {
	d := buildTangle(xrand.New(1), 200, 5) // rounds 0..39
	comp := Compaction{Width: 4, Live: 2, GuardDepth: 3}
	if err := d.SetCompaction(comp); err != nil {
		t.Fatal(err)
	}
	floor, err := d.CompactTo(39)
	if err != nil {
		t.Fatal(err)
	}
	if floor == 0 {
		t.Fatal("nothing froze on a 40-round tangle with 4-round epochs")
	}
	if got := d.LiveFloor(); got != floor {
		t.Fatalf("LiveFloor() = %d, CompactTo returned %d", got, floor)
	}
	epochs := d.FrozenEpochs()
	if len(epochs) == 0 {
		t.Fatal("no frozen epoch summaries")
	}
	// Summaries tile [0, floor) contiguously and stay below the live window.
	next := ID(0)
	for i, e := range epochs {
		if e.Epoch != i {
			t.Fatalf("summary %d has epoch %d", i, e.Epoch)
		}
		if e.FirstID != next {
			t.Fatalf("epoch %d starts at %d, want %d", e.Epoch, e.FirstID, next)
		}
		next = e.LastID + 1
		if e.MaxRound >= (39/comp.Width-comp.Live+1)*comp.Width {
			t.Fatalf("epoch %d contains round %d inside the live window", e.Epoch, e.MaxRound)
		}
	}
	if next != floor {
		t.Fatalf("summaries cover [0, %d), floor is %d", next, floor)
	}
	// Frozen params are released (except genesis); live params are intact.
	for _, tx := range d.All() {
		frozen := tx.ID < floor && tx.ID != 0
		if frozen && tx.Params != nil {
			t.Fatalf("frozen tx %d still holds params", tx.ID)
		}
		if !frozen && len(tx.Params) == 0 {
			t.Fatalf("live tx %d lost its params", tx.ID)
		}
	}
	// Idempotent: a second call at the same round does nothing.
	again, err := d.CompactTo(39)
	if err != nil || again != floor {
		t.Fatalf("second CompactTo moved the floor: %d -> %d (err %v)", floor, again, err)
	}
}

func TestCompactToGuardBlocksOnOrphanTip(t *testing.T) {
	d := New([]float64{1})
	// An early transaction that stays a tip forever: every later transaction
	// approves only the newest tip, orphaning it.
	orphan, _ := d.Add(0, 0, []ID{0}, []float64{2}, Meta{})
	last := orphan.ID
	first, _ := d.Add(1, 0, []ID{0}, []float64{3}, Meta{})
	last = first.ID
	for i := 0; i < 100; i++ {
		tx, err := d.Add(i%5, 1+i/2, []ID{last}, []float64{float64(i)}, Meta{})
		if err != nil {
			t.Fatal(err)
		}
		last = tx.ID
	}
	if err := d.SetCompaction(Compaction{Width: 5, Live: 1, GuardDepth: 2}); err != nil {
		t.Fatal(err)
	}
	// The orphan is a round-0 tip: the guard (min round within GuardDepth of
	// the tips) is 0, so no epoch may freeze.
	floor, err := d.CompactTo(51)
	if err != nil {
		t.Fatal(err)
	}
	if floor != 0 {
		t.Fatalf("froze up to %d despite a round-0 orphan tip", floor)
	}
	if len(d.FrozenEpochs()) != 0 {
		t.Fatalf("recorded %d frozen epochs despite the guard", len(d.FrozenEpochs()))
	}
}

func TestCompactToRecordsEmptyEpochs(t *testing.T) {
	d := New([]float64{1})
	last := ID(0)
	// Rounds 0..2, then a jump to rounds 40..49: epochs 1-3 (width 10) are
	// empty but must still be recorded so the summary list stays contiguous.
	for i := 0; i < 6; i++ {
		tx, _ := d.Add(i, i/2, []ID{last}, []float64{float64(i)}, Meta{})
		last = tx.ID
	}
	for i := 0; i < 20; i++ {
		tx, _ := d.Add(i, 40+i/2, []ID{last}, []float64{float64(i)}, Meta{})
		last = tx.ID
	}
	if err := d.SetCompaction(Compaction{Width: 10, Live: 1, GuardDepth: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CompactTo(49); err != nil {
		t.Fatal(err)
	}
	epochs := d.FrozenEpochs()
	if len(epochs) != 4 {
		t.Fatalf("got %d frozen epochs, want 4 (epoch 0 full, 1-3 empty)", len(epochs))
	}
	for _, e := range epochs[1:] {
		if e.Txs != 0 || e.LastID != e.FirstID-1 {
			t.Fatalf("epoch %d should be empty: %+v", e.Epoch, e)
		}
	}
	if epochs[0].Txs != 7 { // genesis + 6 round-0..2 transactions
		t.Fatalf("epoch 0 has %d txs, want 7", epochs[0].Txs)
	}
}

func TestSpillRoundtripAndParamsOf(t *testing.T) {
	dir := t.TempDir()
	rng := xrand.New(2)
	d := buildTangle(rng, 150, 5)
	// Record every param vector before freezing releases them.
	want := make(map[ID][]float64, d.Size())
	for _, tx := range d.All() {
		want[tx.ID] = append([]float64(nil), tx.Params...)
	}
	if err := d.SetCompaction(Compaction{Width: 3, Live: 2, GuardDepth: 3, SpillDir: dir}); err != nil {
		t.Fatal(err)
	}
	floor, err := d.CompactTo(29)
	if err != nil {
		t.Fatal(err)
	}
	if floor == 0 {
		t.Fatal("nothing froze")
	}
	// Every transaction's params — live or reloaded from spill — match the
	// pre-freeze originals.
	for id := ID(0); int(id) < d.Size(); id++ {
		got, err := d.ParamsOf(id)
		if err != nil {
			t.Fatalf("ParamsOf(%d): %v", id, err)
		}
		w := want[id]
		if len(got) != len(w) {
			t.Fatalf("ParamsOf(%d): %d params, want %d", id, len(got), len(w))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("ParamsOf(%d)[%d] = %v, want %v", id, i, got[i], w[i])
			}
		}
	}
	// Spill files decode standalone and carry the recorded sizes.
	for _, e := range d.FrozenEpochs() {
		if e.Txs == 0 {
			continue
		}
		if e.SpillFile == "" {
			t.Fatalf("epoch %d froze %d txs without a spill file", e.Epoch, e.Txs)
		}
		path := filepath.Join(dir, e.SpillFile)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != e.SpillBytes {
			t.Fatalf("epoch %d spill is %d bytes on disk, summary says %d", e.Epoch, fi.Size(), e.SpillBytes)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		txs, err := ReadSpill(f, e.FirstID)
		f.Close()
		if err != nil {
			t.Fatalf("epoch %d: %v", e.Epoch, err)
		}
		if len(txs) != e.Txs {
			t.Fatalf("epoch %d spill has %d txs, summary says %d", e.Epoch, len(txs), e.Txs)
		}
	}
}

func TestParamsOfWithoutSpillErrors(t *testing.T) {
	d := buildTangle(xrand.New(3), 100, 5)
	if err := d.SetCompaction(Compaction{Width: 3, Live: 1, GuardDepth: 3}); err != nil {
		t.Fatal(err)
	}
	floor, err := d.CompactTo(19)
	if err != nil {
		t.Fatal(err)
	}
	if floor < 2 {
		t.Fatal("need at least one frozen non-genesis transaction")
	}
	if _, err := d.ParamsOf(1); err == nil {
		t.Fatal("ParamsOf on a spill-less frozen transaction should fail")
	}
	if _, err := d.ParamsOf(0); err != nil {
		t.Fatalf("genesis params must survive compaction: %v", err)
	}
}

func TestLiveSuffixWeightsExact(t *testing.T) {
	d := buildTangle(xrand.New(4), 180, 6) // rounds 0..29
	full := bruteWeights(d)
	if err := d.SetCompaction(Compaction{Width: 3, Live: 2, GuardDepth: 3}); err != nil {
		t.Fatal(err)
	}
	floor, err := d.CompactTo(29)
	if err != nil {
		t.Fatal(err)
	}
	if floor == 0 {
		t.Fatal("nothing froze")
	}
	got := d.CumulativeWeights()
	if len(got) != d.Size()-int(floor) {
		t.Fatalf("suffix sweep returned %d weights, want %d live", len(got), d.Size()-int(floor))
	}
	// Approvers always carry larger IDs, so a live transaction's weight over
	// the suffix alone equals its weight over the full DAG.
	for id, w := range got {
		if id < floor {
			t.Fatalf("suffix sweep returned frozen id %d", id)
		}
		if w != full[id] {
			t.Fatalf("live tx %d: suffix weight %d, full weight %d", id, w, full[id])
		}
	}
}

func TestConfirmedEpochWeightsMatchBruteForce(t *testing.T) {
	d := buildTangle(xrand.New(5), 120, 4) // rounds 0..29
	full := bruteWeights(d)
	if err := d.SetCompaction(Compaction{Width: 5, Live: 1, GuardDepth: 3}); err != nil {
		t.Fatal(err)
	}
	floor, err := d.CompactTo(29)
	if err != nil {
		t.Fatal(err)
	}
	if floor == 0 {
		t.Fatal("nothing froze")
	}
	// A frozen transaction's weight restricted to its own epoch's ID range
	// is its confirmed weight. Recompute per epoch by counting, for each tx,
	// its in-range approvers from the full reachability.
	for _, e := range d.FrozenEpochs() {
		if e.Txs == 0 {
			continue
		}
		sum, max := 0, 0
		for id := e.FirstID; id <= e.LastID; id++ {
			seen := map[ID]bool{}
			stack := []ID{id}
			w := 1
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, c := range d.Children(cur) {
					if c <= e.LastID && !seen[c] {
						seen[c] = true
						w++
						stack = append(stack, c)
					}
				}
			}
			sum += w
			if w > max {
				max = w
			}
		}
		if e.WeightSum != sum || e.WeightMax != max {
			t.Fatalf("epoch %d: summary weights (%d, %d), brute force (%d, %d)", e.Epoch, e.WeightSum, e.WeightMax, sum, max)
		}
		_ = full // the full weights sanity-check the builder produced a connected tangle
	}
}

func TestRestoreCompactionRoundtrip(t *testing.T) {
	dir := t.TempDir()
	d := buildTangle(xrand.New(6), 150, 5)
	comp := Compaction{Width: 4, Live: 2, GuardDepth: 3, SpillDir: dir}
	if err := d.SetCompaction(comp); err != nil {
		t.Fatal(err)
	}
	floor, err := d.CompactTo(29)
	if err != nil {
		t.Fatal(err)
	}
	if floor == 0 {
		t.Fatal("nothing froze")
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadDAG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCompaction(comp, d.FrozenEpochs()); err != nil {
		t.Fatal(err)
	}
	if restored.LiveFloor() != floor {
		t.Fatalf("restored floor %d, want %d", restored.LiveFloor(), floor)
	}
	// Frozen params reload through the restored summaries' spill files.
	for id := ID(1); id < floor; id++ {
		want, err := d.ParamsOf(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.ParamsOf(id)
		if err != nil {
			t.Fatalf("restored ParamsOf(%d): %v", id, err)
		}
		if len(got) != len(want) {
			t.Fatalf("restored ParamsOf(%d): %d params, want %d", id, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("restored ParamsOf(%d)[%d] differs", id, i)
			}
		}
	}
	// And the restored suffix sweep matches the original's.
	a, b := d.CumulativeWeights(), restored.CumulativeWeights()
	if len(a) != len(b) {
		t.Fatalf("weight map sizes differ: %d vs %d", len(a), len(b))
	}
	for id, w := range a {
		if b[id] != w {
			t.Fatalf("restored weight of %d is %d, want %d", id, b[id], w)
		}
	}
}

func TestRestoreCompactionRejectsBadSummaries(t *testing.T) {
	d := buildTangle(xrand.New(7), 20, 5)
	good := []EpochSummary{{Epoch: 0, FirstID: 0, LastID: 4, Txs: 5}}
	cases := []struct {
		name   string
		comp   Compaction
		epochs []EpochSummary
	}{
		{"epochs without config", Compaction{}, good},
		{"non-contiguous epochs", Compaction{Width: 5, Live: 1},
			[]EpochSummary{{Epoch: 1, FirstID: 0, LastID: 4}}},
		{"gap in id coverage", Compaction{Width: 5, Live: 1},
			[]EpochSummary{{Epoch: 0, FirstID: 0, LastID: 4}, {Epoch: 1, FirstID: 6, LastID: 9}}},
		{"floor beyond dag", Compaction{Width: 5, Live: 1},
			[]EpochSummary{{Epoch: 0, FirstID: 0, LastID: 200}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := d.RestoreCompaction(tc.comp, tc.epochs); err == nil {
				t.Fatal("RestoreCompaction accepted an inconsistent summary set")
			}
		})
	}
	if err := d.RestoreCompaction(Compaction{Width: 5, Live: 1}, good); err != nil {
		t.Fatalf("valid restore rejected: %v", err)
	}
}

func TestSampleAtDepthMatchesDepths(t *testing.T) {
	// SampleAtDepth's bounded BFS must agree with the full Depths map: for a
	// fixed RNG stream, sampling with band [min, max] returns a transaction
	// whose full depth lies in the band (or genesis when the band is empty).
	d := buildTangle(xrand.New(8), 120, 4)
	depths := d.Depths()
	for _, band := range [][2]int{{0, 0}, {1, 3}, {5, 10}, {2, 6}} {
		rng := xrand.New(9)
		for i := 0; i < 50; i++ {
			tx := d.SampleAtDepth(rng, band[0], band[1])
			if tx.IsGenesis() {
				continue // empty-band fallback
			}
			if dep := depths[tx.ID]; dep < band[0] || dep > band[1] {
				t.Fatalf("band [%d,%d]: sampled tx %d at depth %d", band[0], band[1], tx.ID, dep)
			}
		}
	}
}
