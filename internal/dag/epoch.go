package dag

// Epoch-based compaction: the bounded-memory substrate for long-haul runs.
//
// Transactions are bucketed into fixed-width epochs by their Round value
// (simulated seconds for the async engine, round numbers for the sync one).
// Epochs older than the live suffix are frozen: their confirmed cumulative
// weights are summarized into an EpochSummary, their parameter vectors are
// optionally spilled to disk (reloadable on demand via ParamsOf), and the
// in-memory copies are released. The DAG's *structure* — IDs, issuers,
// rounds, parent edges, metadata — is retained for every frozen
// transaction, so Depths, Ancestors, Children, metrics and the SDG1 codec
// keep working unchanged; only the dominant memory (full model weights per
// transaction) is reclaimed.
//
// Safety argument (why freezing never changes results). Compaction requires
// the uniform-broadcast-delay regime (no per-link fault model), where two
// facts hold:
//
//  1. Round values are monotone non-decreasing in insertion ID, so every
//     epoch is a contiguous ID prefix and any child of a live transaction
//     is itself live (children always have larger IDs than their parents).
//  2. New transactions only ever approve current tips (depth-0 nodes of the
//     flushed tangle), so a transaction's depth — its shortest distance to
//     any tip along child edges — is monotone NON-DECREASING as the DAG
//     grows: an approval turns a depth-0 tip into a depth-1 node and adds a
//     fresh depth-0 tip; no other node's shortest path shortens.
//
// CompactTo freezes an epoch only when every transaction currently within
// GuardDepth of the tips has a strictly larger Round than everything in the
// epoch (GuardDepth is the walk entry band's DepthMax). By (2) the frozen
// transactions stay deeper than GuardDepth forever, so no future walk entry
// (sampled at depth <= DepthMax) is frozen; by (1) every transaction a walk
// visits, scores or returns from there is live. Frozen parameter vectors
// are therefore never read by tip selection, consensus references or
// publish averaging — byte-identical histories with compaction on or off.
//
// One refinement keeps that guard from deadlocking. Tips that fall out of
// fashion are never approved, stay depth-0 forever, and would pin the
// minimum-Round-within-GuardDepth at their (ancient) Round for the rest of
// the run — the first orphaned tip would end all freezing. When the entry
// band has DepthMin >= 1 (GuardDepthMin), such tips can be proven *dead*:
// walks enter only at depth >= DepthMin and descend along child edges, so a
// tip whose entire ancestry sits strictly below the band (anchored within
// GuardDepthMin-1 hops of a dead tip) or permanently beyond GuardDepth is
// unreachable by every future walk. deadTipsLocked computes the maximal
// self-consistent set of such tips as a shrinking fixpoint, and the guard
// measures depths from the remaining live tips only.
//
// CompactTo must be called at a quiescent point (between events or rounds,
// the engines' sequential sections): it releases Params fields in place,
// which lock-free readers must not race with.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Compaction configures epoch-based freezing of old DAG history. The zero
// value disables compaction entirely (every code path is bit-for-bit the
// uncompacted engine).
type Compaction struct {
	// Width is the epoch width in Round units (simulated seconds for the
	// async engine, rounds for the sync engine). Must be >= 1 when enabled.
	Width int
	// Live is the number of trailing epochs kept fully resident: the epoch
	// containing the current Round plus Live-1 predecessors never freeze.
	// Must be >= 1 when enabled.
	Live int
	// GuardDepth is the structural freeze guard: an epoch freezes only once
	// every transaction within GuardDepth approval hops of the current tips
	// postdates it. The engines derive it from the tip selector's entry
	// band (DepthMax), which is what makes freezing invisible to walks.
	GuardDepth int
	// GuardDepthMin is the walk entry band's DepthMin, also derived by the
	// engines. When positive it enables dead-cone exclusion: a tip whose
	// entire ancestry sits strictly below the entry band (or permanently
	// above GuardDepth) can never be reached by any future walk, so it — and
	// the cone it anchors — stops pinning the guard. Without it, the first
	// orphaned tip would block all freezing forever (see deadTipsLocked).
	GuardDepthMin int
	// SpillDir, when non-empty, receives one spill file per frozen epoch
	// (the SDG1 transaction record codec under an "SDS1" header); ParamsOf
	// reloads released parameter vectors from it on demand. When empty,
	// frozen parameters are dropped irrecoverably (cheapest mode — fine
	// when only the live suffix and the summaries matter).
	SpillDir string
}

// Enabled reports whether compaction is configured.
func (c Compaction) Enabled() bool { return c.Width > 0 }

// Validate reports configuration errors.
func (c Compaction) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Width < 1 {
		return fmt.Errorf("dag: Compaction.Width must be >= 1, got %d", c.Width)
	}
	if c.Live < 1 {
		return fmt.Errorf("dag: Compaction.Live must be >= 1, got %d", c.Live)
	}
	if c.GuardDepth < 0 {
		return fmt.Errorf("dag: Compaction.GuardDepth must be >= 0, got %d", c.GuardDepth)
	}
	if c.GuardDepthMin < 0 {
		return fmt.Errorf("dag: Compaction.GuardDepthMin must be >= 0, got %d", c.GuardDepthMin)
	}
	if c.GuardDepthMin > c.GuardDepth {
		return fmt.Errorf("dag: Compaction.GuardDepthMin %d exceeds GuardDepth %d", c.GuardDepthMin, c.GuardDepth)
	}
	return nil
}

// EpochSummary records what compaction kept of one frozen epoch.
type EpochSummary struct {
	// Epoch is the epoch index (Round / Width; genesis counts into epoch 0).
	Epoch int
	// FirstID/LastID bound the epoch's contiguous ID range. An epoch with
	// no transactions has LastID == FirstID-1.
	FirstID ID
	LastID  ID
	// Txs is the transaction count, Edges the number of distinct approval
	// edges leaving the epoch's transactions (to this or earlier epochs).
	Txs   int
	Edges int
	// MinRound/MaxRound bound the Round values observed in the epoch.
	MinRound int
	MaxRound int
	// MeanTestAcc/MaxTestAcc summarize publish-time test accuracies
	// (genesis excluded); Poisoned counts poisoned transactions.
	MeanTestAcc float64
	MaxTestAcc  float64
	Poisoned    int
	// WeightSum/WeightMax summarize the confirmed cumulative weights at
	// freeze time: a frozen transaction's approvers all carry larger IDs,
	// so its weight restricted to frozen history is exactly its weight
	// within the epoch's own ID range — computed by a bitset sweep over
	// just that range.
	WeightSum int
	WeightMax int
	// SpillFile/SpillBytes identify the epoch's spill file (basename,
	// relative to Compaction.SpillDir) and its size; empty/0 without spill.
	SpillFile  string
	SpillBytes int64
}

// spillMagic identifies epoch spill files: SDG1 transaction records under
// their own header so a spill file is never mistaken for a DAG snapshot.
var spillMagic = [4]byte{'S', 'D', 'S', '1'}

// SetCompaction configures compaction. Call it at construction time, before
// the DAG is shared, and before any transaction beyond genesis is added.
func (d *DAG) SetCompaction(c Compaction) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.Enabled() && c.SpillDir != "" {
		if err := os.MkdirAll(c.SpillDir, 0o755); err != nil {
			return fmt.Errorf("dag: creating spill dir: %w", err)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.comp = c
	return nil
}

// CompactionConfig returns the configured compaction settings.
func (d *DAG) CompactionConfig() Compaction {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.comp
}

// LiveFloor returns the first live (unfrozen) transaction ID: 0 when
// nothing is frozen. Lock-free.
func (d *DAG) LiveFloor() ID { return ID(d.floor.Load()) }

// FrozenEpochs returns a copy of the frozen epoch summaries in epoch order.
func (d *DAG) FrozenEpochs() []EpochSummary {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]EpochSummary(nil), d.frozen...)
}

// epochOfRound maps a Round value to its epoch index. Genesis (Round -1)
// counts into epoch 0.
func (c Compaction) epochOfRound(round int) int {
	if round < 0 {
		return 0
	}
	return round / c.Width
}

// CompactTo freezes every epoch that has aged out of the live suffix as of
// the given Round, subject to the GuardDepth safety check, and returns the
// resulting live floor. It is idempotent and cheap when no epoch is newly
// eligible, so engines call it after every event or round. Must be called
// at a quiescent point (no concurrent readers of the released Params).
func (d *DAG) CompactTo(round int) (ID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.comp.Enabled() {
		return ID(d.floor.Load()), nil
	}
	target := d.comp.epochOfRound(round) - d.comp.Live
	if target <= d.lastFrozenEpoch {
		return ID(d.floor.Load()), nil
	}
	// guard is the smallest Round within GuardDepth of the current tips:
	// nothing at or above it may freeze. Depths only grow as the DAG does
	// (see the package comment), so the check holds for all future walks.
	guard := d.guardRoundLocked()
	for e := d.lastFrozenEpoch + 1; e <= target; e++ {
		ok, err := d.freezeEpochLocked(e, guard)
		if err != nil {
			return ID(d.floor.Load()), err
		}
		if !ok {
			break // guard-blocked; a later CompactTo retries
		}
	}
	return ID(d.floor.Load()), nil
}

// guardRoundLocked returns the minimum Round among transactions within
// GuardDepth approval hops of the walk-reachable tips, via a depth-bounded
// BFS. Tips whose cones are provably dead (see deadTipsLocked) are excluded:
// no future walk can read them, so they must not pin the guard. Caller
// holds d.mu.
func (d *DAG) guardRoundLocked() int {
	const blocked = -1 << 30 // below any Round: freezes nothing
	tips := d.tipsSortedLocked()
	depths := d.depthsUpTo(d.txs, tips, d.comp.GuardDepth)
	if d.comp.GuardDepthMin > 0 {
		dead, bandEmpty := d.deadTipsLocked(tips, depths)
		if bandEmpty {
			// No transaction sits in the walk entry band yet, so walks fall
			// back to genesis entries and can read the whole DAG.
			return blocked
		}
		if len(dead) > 0 {
			live := tips[:0]
			for _, t := range tips {
				if !dead[t] {
					live = append(live, t)
				}
			}
			if len(live) == 0 {
				return blocked
			}
			depths = d.depthsUpTo(d.txs, live, d.comp.GuardDepth)
		}
	}
	min := int(^uint(0) >> 1)
	//speclint:allow maporder min update over an unordered set; visit order cannot affect the minimum
	for id := range depths {
		if r := d.txs[id].Round; r < min {
			min = r
		}
	}
	return min
}

// deadConeBudget caps the per-tip ancestor-closure walk in deadTipsLocked.
// Dead cones are young sub-DAGs that stalled before growing GuardDepthMin
// deep, so real closures are tiny; a tip whose closure exceeds the budget is
// conservatively treated as alive.
const deadConeBudget = 1 << 16

// deadTipsLocked identifies tips that no walk can ever reach again, so the
// guard may ignore them. It reports bandEmpty when no transaction currently
// sits in the walk entry band [GuardDepthMin, GuardDepth] — then entry
// sampling falls back to genesis and nothing at all is safe to freeze.
//
// Reachability argument. A walk enters at a transaction whose depth lies in
// the entry band and descends along child edges, so everything it visits,
// scores or selects is a descendant of a band transaction. A tip with no
// band ancestor is unreachable *now*; it stays unreachable forever if every
// ancestor y of the tip can never enter the band later:
//
//   - dist(y, some dead tip) < GuardDepthMin: that distance is fixed, and a
//     dead tip — never walk-selected — stays a tip forever, so depth(y)
//     stays pinned strictly below the band for all time; or
//   - depth(y) > GuardDepth already: depths are monotone non-decreasing
//     (package comment), so y can never drop back into the band.
//
// Unreachable tips are never approved, which closes the loop: the anchor
// distances above never change. The check is evaluated as a shrinking
// fixpoint — assuming every currently-unreachable tip dead, then discarding
// tips whose ancestor closure escapes both conditions until the remaining
// set is self-consistent. Caller holds d.mu.
func (d *DAG) deadTipsLocked(tips []ID, depths map[ID]int) (dead map[ID]bool, bandEmpty bool) {
	band := make([]ID, 0, len(depths))
	for id, dep := range depths {
		if dep >= d.comp.GuardDepthMin {
			band = append(band, id)
		}
	}
	if len(band) == 0 {
		return nil, true
	}
	sort.Slice(band, func(i, j int) bool { return band[i] < band[j] })

	// Tips reachable from the entry band: forward BFS along child edges.
	reach := make(map[ID]bool, len(band))
	queue := append([]ID(nil), band...)
	for _, id := range band {
		reach[id] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range d.kids.children(cur) {
			if !reach[c] {
				reach[c] = true
				queue = append(queue, c)
			}
		}
	}
	dead = make(map[ID]bool)
	for _, t := range tips {
		if !reach[t] {
			dead[t] = true
		}
	}
	if len(dead) == 0 {
		return nil, false
	}

	// Shrink to a self-consistent set: every ancestor of a dead tip must be
	// anchored strictly below the band by some (still-)dead tip, or already
	// be permanently below GuardDepth reach.
	for {
		anchored := d.anchoredLocked(tips, dead)
		removed := false
		for _, t := range tips {
			if dead[t] && !d.deadConsistentLocked(t, anchored, depths) {
				delete(dead, t)
				removed = true
			}
		}
		if !removed || len(dead) == 0 {
			return dead, false
		}
	}
}

// anchoredLocked returns the set of transactions within GuardDepthMin-1
// approval hops of a dead tip — the region whose depth is pinned strictly
// below the walk entry band for as long as those tips stay dead. Caller
// holds d.mu.
func (d *DAG) anchoredLocked(tips []ID, dead map[ID]bool) map[ID]bool {
	roots := make([]ID, 0, len(dead))
	for _, t := range tips {
		if dead[t] {
			roots = append(roots, t)
		}
	}
	dist := make(map[ID]int, len(roots))
	queue := append([]ID(nil), roots...)
	for _, id := range roots {
		dist[id] = 0
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if dist[cur] >= d.comp.GuardDepthMin-1 {
			continue
		}
		for _, p := range d.txs[cur].Parents {
			if _, seen := dist[p]; !seen {
				dist[p] = dist[cur] + 1
				queue = append(queue, p)
			}
		}
	}
	anchored := make(map[ID]bool, len(dist))
	for id := range dist {
		anchored[id] = true
	}
	return anchored
}

// deadConsistentLocked reports whether every ancestor of tip t is either
// anchored below the entry band or permanently beyond GuardDepth (absent
// from the bounded depth map). Closures larger than deadConeBudget bail out
// as "alive" — conservative, never unsound. Caller holds d.mu.
func (d *DAG) deadConsistentLocked(t ID, anchored map[ID]bool, depths map[ID]int) bool {
	seen := map[ID]bool{t: true}
	queue := []ID{t}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		_, inBound := depths[cur]
		if !anchored[cur] && inBound {
			return false
		}
		if len(seen) > deadConeBudget {
			return false
		}
		for _, p := range d.txs[cur].Parents {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return true
}

// tipsSortedLocked returns the tip IDs in ascending order. Caller holds
// d.mu (read or write).
func (d *DAG) tipsSortedLocked() []ID {
	out := make([]ID, 0, len(d.tips))
	for id := range d.tips {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// freezeEpochLocked freezes epoch e if the guard permits, summarizing it,
// spilling parameters when configured, and releasing the in-memory copies.
// It reports false when the epoch is still guard-blocked. Caller holds d.mu.
func (d *DAG) freezeEpochLocked(e, guard int) (bool, error) {
	first := ID(d.floor.Load())
	last := first - 1
	for int(last+1) < len(d.txs) && d.comp.epochOfRound(d.txs[last+1].Round) <= e {
		last++
	}
	if last < first {
		// Empty epoch: nothing to freeze, but the bookkeeping advances so
		// later epochs can.
		d.frozen = append(d.frozen, EpochSummary{Epoch: e, FirstID: first, LastID: last})
		d.lastFrozenEpoch = e
		return true, nil
	}
	// Rounds are monotone in ID under the uniform-delay regime, so the last
	// transaction carries the epoch's maximum Round.
	if d.txs[last].Round >= guard {
		return false, nil
	}

	sum := EpochSummary{
		Epoch:    e,
		FirstID:  first,
		LastID:   last,
		Txs:      int(last - first + 1),
		MinRound: d.txs[first].Round,
		MaxRound: d.txs[last].Round,
	}
	accN := 0
	for i := first; i <= last; i++ {
		t := d.txs[i]
		seen := ID(-1)
		for _, p := range t.Parents {
			if p != seen {
				sum.Edges++
			}
			seen = p
		}
		if t.Meta.Poisoned {
			sum.Poisoned++
		}
		if !t.IsGenesis() {
			accN++
			sum.MeanTestAcc += t.Meta.TestAcc
			if t.Meta.TestAcc > sum.MaxTestAcc {
				sum.MaxTestAcc = t.Meta.TestAcc
			}
		}
	}
	if accN > 0 {
		sum.MeanTestAcc /= float64(accN)
	}
	sum.WeightSum, sum.WeightMax = d.confirmedWeightsLocked(first, last)

	if d.comp.SpillDir != "" {
		name := fmt.Sprintf("epoch-%06d.sds", e)
		n, err := d.writeSpillLocked(filepath.Join(d.comp.SpillDir, name), first, last)
		if err != nil {
			return false, err
		}
		sum.SpillFile = name
		sum.SpillBytes = n
	}

	// Release the parameter vectors. Genesis keeps its copy: checkpoint
	// resume validates against it and it defines the parameter dimension.
	for i := first; i <= last; i++ {
		if i != 0 {
			d.txs[i].Params = nil
		}
	}
	d.frozen = append(d.frozen, sum)
	d.lastFrozenEpoch = e
	d.floor.Store(int64(last + 1))
	// The weights memo predates the freeze; live-suffix sweeps re-key on
	// the floor.
	d.cwCache.Store(nil)
	return true, nil
}

// confirmedWeightsLocked computes the sum and maximum of the cumulative
// weights of [first, last] restricted to that ID range — the weight each
// transaction has confirmed from frozen history (all of a frozen
// transaction's frozen approvers lie in its own epoch's range, because
// approvers have larger IDs and the frozen prefix ends at last). Caller
// holds d.mu.
func (d *DAG) confirmedWeightsLocked(first, last ID) (sum, max int) {
	m := int(last - first + 1)
	approvers := newBitsets(m)
	for i := last; i >= first; i-- {
		t := d.txs[i]
		for _, p := range t.Parents {
			if p < first {
				continue
			}
			dst := approvers[p-first]
			src := approvers[i-first]
			for w := range dst {
				dst[w] |= src[w]
			}
			dst[int(i-first)/64] |= 1 << (uint(i-first) % 64)
		}
	}
	for i := 0; i < m; i++ {
		w := 1 + popcountSet(approvers[i])
		sum += w
		if w > max {
			max = w
		}
	}
	return sum, max
}

// writeSpillLocked writes the transactions of [first, last] to an epoch
// spill file (atomically: temp file + rename) and returns its size. Caller
// holds d.mu.
func (d *DAG) writeSpillLocked(path string, first, last ID) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".spill-*")
	if err != nil {
		return 0, fmt.Errorf("dag: spilling epoch: %w", err)
	}
	defer os.Remove(tmp.Name())
	cw := &countingWriter{w: bufio.NewWriter(tmp)}
	if _, err := cw.Write(spillMagic[:]); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(last-first+1)); err != nil {
		tmp.Close()
		return 0, err
	}
	enc := txRecordWriter{cw: cw}
	for i := first; i <= last; i++ {
		if err := enc.write(d.txs[i]); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("dag: spilling tx %d: %w", i, err)
		}
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("dag: spilling epoch: %w", err)
	}
	return cw.n, nil
}

// ReadSpill decodes an epoch spill file: the transactions of one frozen
// epoch, in ID order, with their full parameter vectors. first is the
// expected FirstID (records are validated to be sequential from it).
func ReadSpill(r io.Reader, first ID) ([]*Transaction, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dag: reading spill magic: %w", err)
	}
	if magic != spillMagic {
		return nil, fmt.Errorf("dag: bad magic %q (not an SDS1 epoch spill)", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("dag: reading spill count: %w", err)
	}
	if count > maxSnapshotTxs {
		return nil, fmt.Errorf("dag: spill claims %d transactions (limit %d)", count, maxSnapshotTxs)
	}
	txs := make([]*Transaction, 0, count)
	for i := uint32(0); i < count; i++ {
		tx, err := readTxRecord(br, uint64(int64(first)+int64(i)))
		if err != nil {
			return nil, fmt.Errorf("dag: spill %w", err)
		}
		txs = append(txs, tx)
	}
	return txs, nil
}

// ParamsOf returns the parameter vector of the given transaction: the live
// in-memory copy, or — for a frozen transaction whose epoch was spilled —
// the copy reloaded from the spill file. It fails for frozen transactions
// compacted without a spill directory.
func (d *DAG) ParamsOf(id ID) ([]float64, error) {
	t, ok := d.Get(id)
	if !ok {
		return nil, fmt.Errorf("dag: no transaction %d", id)
	}
	if id == 0 || id >= d.LiveFloor() {
		return t.Params, nil
	}
	d.mu.RLock()
	comp := d.comp
	var sum EpochSummary
	found := false
	for _, s := range d.frozen {
		if id >= s.FirstID && id <= s.LastID {
			sum = s
			found = true
			break
		}
	}
	d.mu.RUnlock()
	if !found {
		return nil, fmt.Errorf("dag: transaction %d below the live floor but in no frozen epoch", id)
	}
	if sum.SpillFile == "" {
		return nil, fmt.Errorf("dag: transaction %d was compacted without a spill directory; its params are gone", id)
	}
	f, err := os.Open(filepath.Join(comp.SpillDir, sum.SpillFile))
	if err != nil {
		return nil, fmt.Errorf("dag: reloading epoch %d: %w", sum.Epoch, err)
	}
	defer f.Close()
	txs, err := ReadSpill(f, sum.FirstID)
	if err != nil {
		return nil, fmt.Errorf("dag: reloading epoch %d: %w", sum.Epoch, err)
	}
	idx := int(id - sum.FirstID)
	if idx >= len(txs) || txs[idx].ID != id {
		return nil, fmt.Errorf("dag: epoch %d spill does not contain transaction %d", sum.Epoch, id)
	}
	return txs[idx].Params, nil
}

// RestoreCompaction reinstates compaction state on a DAG rebuilt from a
// checkpoint: the configuration plus the frozen epoch summaries recorded
// when the checkpoint was written. Summaries must be contiguous from epoch
// 0 and consistent with the DAG's size.
func (d *DAG) RestoreCompaction(c Compaction, epochs []EpochSummary) error {
	if err := c.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !c.Enabled() && len(epochs) > 0 {
		return fmt.Errorf("dag: %d frozen epochs without a compaction config", len(epochs))
	}
	floor := ID(0)
	for i, s := range epochs {
		if s.Epoch != i {
			return fmt.Errorf("dag: frozen epochs not contiguous: entry %d has epoch %d", i, s.Epoch)
		}
		if s.FirstID != floor || s.LastID < s.FirstID-1 {
			return fmt.Errorf("dag: frozen epoch %d covers [%d, %d], want to start at %d", s.Epoch, s.FirstID, s.LastID, floor)
		}
		floor = s.LastID + 1
	}
	if int(floor) > len(d.txs) {
		return fmt.Errorf("dag: frozen epochs cover %d transactions but the DAG has %d", floor, len(d.txs))
	}
	d.comp = c
	d.frozen = append([]EpochSummary(nil), epochs...)
	d.lastFrozenEpoch = len(epochs) - 1
	d.floor.Store(int64(floor))
	d.cwCache.Store(nil)
	return nil
}
