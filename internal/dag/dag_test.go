package dag

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"github.com/specdag/specdag/internal/xrand"
)

func TestNewHasGenesisTip(t *testing.T) {
	d := New([]float64{1, 2})
	if d.Size() != 1 {
		t.Fatalf("new DAG size %d, want 1", d.Size())
	}
	g := d.Genesis()
	if !g.IsGenesis() || g.ID != 0 {
		t.Fatal("genesis malformed")
	}
	tips := d.Tips()
	if len(tips) != 1 || tips[0] != 0 {
		t.Fatalf("tips = %v, want [0]", tips)
	}
}

func TestAddValidation(t *testing.T) {
	d := New(nil)
	if _, err := d.Add(0, 0, nil, nil, Meta{}); err == nil {
		t.Error("no parents should fail")
	}
	if _, err := d.Add(0, 0, []ID{0, 0, 0}, nil, Meta{}); err == nil {
		t.Error("three parents should fail")
	}
	if _, err := d.Add(0, 0, []ID{99}, nil, Meta{}); err == nil {
		t.Error("unknown parent should fail")
	}
	if _, err := d.Add(0, 0, []ID{-1, 0}, nil, Meta{}); err == nil {
		t.Error("negative parent should fail")
	}
	if _, err := d.Add(0, 0, []ID{0, 0}, nil, Meta{}); err != nil {
		t.Errorf("double-approving genesis should be legal: %v", err)
	}
}

func TestTipsTracking(t *testing.T) {
	d := New(nil)
	a, _ := d.Add(1, 0, []ID{0, 0}, nil, Meta{})
	b, _ := d.Add(2, 0, []ID{0, 0}, nil, Meta{})
	// Genesis approved twice -> no longer a tip; a and b are tips.
	tips := d.Tips()
	if len(tips) != 2 || tips[0] != a.ID || tips[1] != b.ID {
		t.Fatalf("tips = %v, want [%d %d]", tips, a.ID, b.ID)
	}
	c, _ := d.Add(3, 1, []ID{a.ID, b.ID}, nil, Meta{})
	tips = d.Tips()
	if len(tips) != 1 || tips[0] != c.ID {
		t.Fatalf("tips = %v, want [%d]", tips, c.ID)
	}
	if !d.IsTip(c.ID) || d.IsTip(a.ID) {
		t.Fatal("IsTip disagrees with Tips")
	}
}

func TestChildrenIndex(t *testing.T) {
	d := New(nil)
	a, _ := d.Add(1, 0, []ID{0, 0}, nil, Meta{})
	b, _ := d.Add(2, 0, []ID{0}, nil, Meta{})
	kids := d.Children(0)
	if len(kids) != 2 || kids[0] != a.ID || kids[1] != b.ID {
		t.Fatalf("children(genesis) = %v", kids)
	}
	if d.NumChildren(0) != 2 || d.NumChildren(a.ID) != 0 {
		t.Fatal("NumChildren wrong")
	}
	// Duplicate parents should produce one child edge, not two.
	countA := 0
	for _, k := range d.Children(0) {
		if k == a.ID {
			countA++
		}
	}
	if countA != 1 {
		t.Fatalf("duplicate parent created %d child edges", countA)
	}
}

func TestGet(t *testing.T) {
	d := New(nil)
	a, _ := d.Add(1, 3, []ID{0}, []float64{7}, Meta{TestAcc: 0.5})
	got, ok := d.Get(a.ID)
	if !ok || got.Issuer != 1 || got.Round != 3 || got.Params[0] != 7 || got.Meta.TestAcc != 0.5 {
		t.Fatal("Get returned wrong transaction")
	}
	if _, ok := d.Get(99); ok {
		t.Fatal("Get(99) should fail")
	}
	if _, ok := d.Get(-1); ok {
		t.Fatal("Get(-1) should fail")
	}
}

// buildRandom constructs a random DAG of n transactions, each approving two
// random existing transactions (biased toward tips like a real tangle).
func buildRandom(rng *xrand.RNG, n int) *DAG {
	d := New(nil)
	for i := 0; i < n; i++ {
		tips := d.Tips()
		pick := func() ID {
			if rng.Bool(0.8) && len(tips) > 0 {
				return tips[rng.Intn(len(tips))]
			}
			return ID(rng.Intn(d.Size()))
		}
		p1, p2 := pick(), pick()
		if _, err := d.Add(rng.Intn(10), i, []ID{p1, p2}, nil, Meta{}); err != nil {
			panic(err)
		}
	}
	return d
}

func TestAcyclicityInvariantQuick(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := xrand.New(seed)
		n := int(size%50) + 2
		d := buildRandom(rng, n)
		// Parents always have smaller IDs than children: acyclic by order.
		for _, tx := range d.All() {
			for _, p := range tx.Parents {
				if p >= tx.ID {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTipSetExactQuick(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := xrand.New(seed)
		n := int(size%40) + 2
		d := buildRandom(rng, n)
		// A tip is exactly a transaction with no children.
		tipSet := map[ID]bool{}
		for _, id := range d.Tips() {
			tipSet[id] = true
		}
		for _, tx := range d.All() {
			hasKids := d.NumChildren(tx.ID) > 0
			if hasKids == tipSet[tx.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAncestors(t *testing.T) {
	d := New(nil)
	a, _ := d.Add(1, 0, []ID{0, 0}, nil, Meta{})
	b, _ := d.Add(2, 0, []ID{0, 0}, nil, Meta{})
	c, _ := d.Add(3, 1, []ID{a.ID, b.ID}, nil, Meta{})
	anc := d.Ancestors(c.ID)
	if len(anc) != 3 {
		t.Fatalf("ancestors(c) size %d, want 3", len(anc))
	}
	for _, id := range []ID{0, a.ID, b.ID} {
		if _, ok := anc[id]; !ok {
			t.Fatalf("ancestors(c) missing %d", id)
		}
	}
	if _, ok := anc[c.ID]; ok {
		t.Fatal("ancestors must exclude self")
	}
	if len(d.Ancestors(0)) != 0 {
		t.Fatal("genesis has no ancestors")
	}
}

func TestCumulativeWeightsChain(t *testing.T) {
	// Linear chain: weights count the suffix including self.
	d := New(nil)
	prev := ID(0)
	for i := 0; i < 4; i++ {
		tx, _ := d.Add(1, i, []ID{prev}, nil, Meta{})
		prev = tx.ID
	}
	w := d.CumulativeWeights()
	// genesis approved by 4 txs + self = 5; tip = 1.
	if w[0] != 5 {
		t.Fatalf("genesis weight %d, want 5", w[0])
	}
	if w[prev] != 1 {
		t.Fatalf("tip weight %d, want 1", w[prev])
	}
}

func TestCumulativeWeightsDiamond(t *testing.T) {
	d := New(nil)
	a, _ := d.Add(1, 0, []ID{0, 0}, nil, Meta{})
	b, _ := d.Add(2, 0, []ID{0, 0}, nil, Meta{})
	c, _ := d.Add(3, 1, []ID{a.ID, b.ID}, nil, Meta{})
	w := d.CumulativeWeights()
	// c approves a, b, genesis; each has weight 1(self)+descendants.
	if w[c.ID] != 1 || w[a.ID] != 2 || w[b.ID] != 2 || w[0] != 4 {
		t.Fatalf("diamond weights wrong: %v", w)
	}
}

func TestCumulativeWeightsMonotoneAlongEdges(t *testing.T) {
	rng := xrand.New(7)
	d := buildRandom(rng, 60)
	w := d.CumulativeWeights()
	for _, tx := range d.All() {
		for _, p := range tx.Parents {
			if w[p] <= w[tx.ID]-1 && w[p] < w[tx.ID] {
				continue // parent strictly heavier or equal is fine; check below
			}
			if w[p] < w[tx.ID] {
				t.Fatalf("parent %d weight %d < child %d weight %d", p, w[p], tx.ID, w[tx.ID])
			}
		}
	}
}

func TestDepths(t *testing.T) {
	d := New(nil)
	a, _ := d.Add(1, 0, []ID{0, 0}, nil, Meta{})
	b, _ := d.Add(2, 1, []ID{a.ID, a.ID}, nil, Meta{})
	c, _ := d.Add(3, 2, []ID{b.ID, b.ID}, nil, Meta{})
	depths := d.Depths()
	want := map[ID]int{c.ID: 0, b.ID: 1, a.ID: 2, 0: 3}
	for id, dep := range want {
		if depths[id] != dep {
			t.Fatalf("depth(%d) = %d, want %d", id, depths[id], dep)
		}
	}
}

func TestSampleAtDepth(t *testing.T) {
	rng := xrand.New(9)
	d := New(nil)
	prev := ID(0)
	for i := 0; i < 30; i++ {
		tx, _ := d.Add(1, i, []ID{prev}, nil, Meta{})
		prev = tx.ID
	}
	depths := d.Depths()
	for i := 0; i < 50; i++ {
		tx := d.SampleAtDepth(rng, 15, 25)
		if dep := depths[tx.ID]; dep < 15 || dep > 25 {
			t.Fatalf("sampled depth %d outside [15,25]", dep)
		}
	}
	// Small DAG: no tx at depth 15-25 -> genesis fallback.
	small := New(nil)
	small.Add(1, 0, []ID{0}, nil, Meta{})
	if tx := small.SampleAtDepth(rng, 15, 25); !tx.IsGenesis() {
		t.Fatal("expected genesis fallback for shallow DAG")
	}
}

func TestConcurrentAdds(t *testing.T) {
	d := New(nil)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 25
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(int64(w))
			for i := 0; i < perWorker; i++ {
				tips := d.Tips()
				p := tips[rng.Intn(len(tips))]
				if _, err := d.Add(w, i, []ID{p, p}, nil, Meta{}); err != nil {
					t.Errorf("concurrent add failed: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if d.Size() != workers*perWorker+1 {
		t.Fatalf("size %d, want %d", d.Size(), workers*perWorker+1)
	}
	// Structural invariants hold after concurrency.
	for _, tx := range d.All() {
		for _, p := range tx.Parents {
			if p >= tx.ID {
				t.Fatal("acyclicity violated under concurrency")
			}
		}
	}
}

func TestDOT(t *testing.T) {
	d := New(nil)
	d.Add(1, 0, []ID{0, 0}, nil, Meta{Poisoned: true})
	dot := d.DOT()
	for _, want := range []string{"digraph", "t1 -> t0", "fillcolor=gray", "color=red"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestStats(t *testing.T) {
	d := New(nil)
	a, _ := d.Add(1, 0, []ID{0, 0}, nil, Meta{})
	d.Add(2, 1, []ID{a.ID, a.ID}, nil, Meta{})
	s := d.Stats()
	if s.Transactions != 3 || s.Tips != 1 || s.MaxDepth != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func BenchmarkAdd(b *testing.B) {
	d := New(nil)
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tips := d.Tips()
		p := tips[rng.Intn(len(tips))]
		if _, err := d.Add(0, i, []ID{p, p}, nil, Meta{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCumulativeWeights1000(b *testing.B) {
	rng := xrand.New(2)
	d := buildRandom(rng, 1000)
	txs := d.snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Measure the sequential sweep itself, not the per-size memo.
		d.cumulativeWeightsSeq(txs)
	}
}
