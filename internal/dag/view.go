package dag

import (
	"fmt"
	"sort"

	"github.com/specdag/specdag/internal/xrand"
)

// View is a read-only, partial-visibility view of a DAG: the sub-DAG induced
// by a set of revealed transactions. It models non-ideal transaction
// dissemination — a client that has not yet received a transaction walks a
// tangle without it, so its tips and weights differ from the global ones.
//
// The paper's scalability discussion (§5.3.5) explicitly assumes ideal
// broadcast; View is the machinery for relaxing that assumption.
//
// Genesis is always visible. Reveal must be called in an order that keeps
// the visible set parent-closed (a transaction only after its parents),
// which holds automatically when revealing in insertion order.
//
// Concurrency: a View is NOT safe for concurrent use — its visibility maps
// are unsynchronized — so each simulated client owns one and all of that
// client's reveals and walks happen on a single goroutine. Distinct clients'
// views may be used concurrently with each other: the only state a View
// shares is the underlying *DAG, whose accessors take its RWMutex, and the
// round engine never adds transactions while views are being read.
type View struct {
	d *DAG
	// visible marks revealed transactions.
	visible map[ID]bool
	// visibleKids counts visible children per visible transaction, for O(1)
	// tip maintenance.
	visibleKids map[ID]int
	// cursor is the next global insertion index not yet considered by
	// RevealThrough.
	cursor ID
}

// NewView creates a view of d in which only genesis is visible.
func NewView(d *DAG) *View {
	v := &View{
		d:           d,
		visible:     map[ID]bool{0: true},
		visibleKids: map[ID]int{0: 0},
		cursor:      1,
	}
	return v
}

// Reveal makes the transaction with the given id visible. It returns an
// error if the id is unknown or any parent is not yet visible (the visible
// set must stay parent-closed so walks cannot dangle).
func (v *View) Reveal(id ID) error {
	if v.visible[id] {
		return nil
	}
	tx, ok := v.d.Get(id)
	if !ok {
		return fmt.Errorf("dag: view reveal of unknown transaction %d", id)
	}
	for _, p := range tx.Parents {
		if !v.visible[p] {
			return fmt.Errorf("dag: view reveal of %d before its parent %d", id, p)
		}
	}
	v.visible[id] = true
	v.visibleKids[id] = 0
	seen := map[ID]bool{}
	for _, p := range tx.Parents {
		if seen[p] {
			continue
		}
		seen[p] = true
		v.visibleKids[p]++
	}
	return nil
}

// RevealWhere reveals, in insertion order, every not-yet-considered
// transaction for which keep returns true. Transactions skipped by keep are
// not reconsidered by later RevealWhere calls if their IDs are below an
// already-revealed transaction's — callers should use monotone predicates
// (e.g. "published in round <= r"), which is how dissemination delays work.
// Transactions whose parents are not visible are skipped.
func (v *View) RevealWhere(keep func(*Transaction) bool) {
	size := ID(v.d.Size())
	for id := v.cursor; id < size; id++ {
		tx := v.d.MustGet(id)
		if !keep(tx) {
			continue
		}
		if err := v.Reveal(id); err != nil {
			continue // parent invisible: arrives later
		}
		if id == v.cursor {
			v.cursor++
		}
	}
	// Advance the cursor past any prefix that is fully visible.
	for v.cursor < size && v.visible[v.cursor] {
		v.cursor++
	}
}

// NumVisible returns the number of visible transactions.
func (v *View) NumVisible() int { return len(v.visible) }

// IsVisible reports whether id has been revealed.
func (v *View) IsVisible(id ID) bool { return v.visible[id] }

// Genesis returns the genesis transaction (always visible).
func (v *View) Genesis() *Transaction { return v.d.Genesis() }

// MustGet returns a visible transaction and panics for invisible or unknown
// IDs — walks over a view can only reach visible transactions, so reaching
// an invisible one is a bug.
func (v *View) MustGet(id ID) *Transaction {
	if !v.visible[id] {
		panic(fmt.Sprintf("dag: view access to invisible transaction %d", id))
	}
	return v.d.MustGet(id)
}

// Children returns the visible children of id, in insertion order.
func (v *View) Children(id ID) []ID {
	all := v.d.Children(id)
	out := make([]ID, 0, len(all))
	for _, c := range all {
		if v.visible[c] {
			out = append(out, c)
		}
	}
	return out
}

// Tips returns the visible transactions without visible children, in
// ascending order.
func (v *View) Tips() []ID {
	out := make([]ID, 0)
	for id, kids := range v.visibleKids {
		if kids == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Depths returns, per visible transaction, the shortest distance to a
// visible tip following visible child edges.
func (v *View) Depths() map[ID]int {
	depths := make(map[ID]int, len(v.visible))
	queue := v.Tips()
	for _, id := range queue {
		depths[id] = 0
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range v.d.MustGet(cur).Parents {
			if !v.visible[p] {
				continue
			}
			if _, seen := depths[p]; !seen {
				depths[p] = depths[cur] + 1
				queue = append(queue, p)
			}
		}
	}
	return depths
}

// SampleAtDepth returns a uniformly random visible transaction at depth
// [minDepth, maxDepth] from the visible tips, or genesis if none qualifies.
func (v *View) SampleAtDepth(rng *xrand.RNG, minDepth, maxDepth int) *Transaction {
	depths := v.Depths()
	var candidates []ID
	for id, depth := range depths {
		if depth >= minDepth && depth <= maxDepth {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return v.d.Genesis()
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	return v.d.MustGet(candidates[rng.Intn(len(candidates))])
}

// CumulativeWeights returns, per visible transaction, the number of visible
// transactions approving it directly or indirectly, plus one for itself.
func (v *View) CumulativeWeights() map[ID]int {
	ids := make([]ID, 0, len(v.visible))
	for id := range v.visible {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	index := make(map[ID]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}

	n := len(ids)
	words := (n + 63) / 64
	approvers := make([][]uint64, n)
	for i := range approvers {
		approvers[i] = make([]uint64, words)
	}
	for i := n - 1; i >= 0; i-- {
		tx := v.d.MustGet(ids[i])
		for _, p := range tx.Parents {
			pi, ok := index[p]
			if !ok {
				continue
			}
			dst, src := approvers[pi], approvers[i]
			for w := range dst {
				dst[w] |= src[w]
			}
			dst[i/64] |= 1 << (uint(i) % 64)
		}
	}
	weights := make(map[ID]int, n)
	for i, id := range ids {
		weights[id] = 1 + popcountSet(approvers[i])
	}
	return weights
}
