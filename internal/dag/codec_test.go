package dag

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/specdag/specdag/internal/xrand"
)

// roundTrip serializes and re-reads a DAG, failing the test on error.
func roundTrip(t *testing.T, d *DAG) *DAG {
	t.Helper()
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo returned %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadDAG(&buf)
	if err != nil {
		t.Fatalf("ReadDAG: %v", err)
	}
	return got
}

// assertEqualDAGs compares every transaction of two DAGs.
func assertEqualDAGs(t *testing.T, want, got *DAG) {
	t.Helper()
	if want.Size() != got.Size() {
		t.Fatalf("size %d, want %d", got.Size(), want.Size())
	}
	wantTxs, gotTxs := want.All(), got.All()
	for i := range wantTxs {
		w, g := wantTxs[i], gotTxs[i]
		if w.ID != g.ID || w.Issuer != g.Issuer || w.Round != g.Round {
			t.Fatalf("tx %d header mismatch: %+v vs %+v", i, w, g)
		}
		if len(w.Parents) != len(g.Parents) {
			t.Fatalf("tx %d parent count mismatch", i)
		}
		for j := range w.Parents {
			if w.Parents[j] != g.Parents[j] {
				t.Fatalf("tx %d parent %d mismatch", i, j)
			}
		}
		if w.Meta != g.Meta {
			t.Fatalf("tx %d meta mismatch: %+v vs %+v", i, w.Meta, g.Meta)
		}
		if len(w.Params) != len(g.Params) {
			t.Fatalf("tx %d param count mismatch", i)
		}
		for j := range w.Params {
			if w.Params[j] != g.Params[j] && !(math.IsNaN(w.Params[j]) && math.IsNaN(g.Params[j])) {
				t.Fatalf("tx %d param %d mismatch: %v vs %v", i, j, w.Params[j], g.Params[j])
			}
		}
	}
	// Derived state must also match.
	wantTips, gotTips := want.Tips(), got.Tips()
	if len(wantTips) != len(gotTips) {
		t.Fatalf("tips mismatch: %v vs %v", wantTips, gotTips)
	}
	for i := range wantTips {
		if wantTips[i] != gotTips[i] {
			t.Fatalf("tips mismatch: %v vs %v", wantTips, gotTips)
		}
	}
}

func TestCodecRoundTripSmall(t *testing.T) {
	d := New([]float64{0.25, -1, math.Pi})
	a, _ := d.Add(3, 0, []ID{0, 0}, []float64{1, 2}, Meta{TrainAcc: 0.5, TestAcc: 0.75})
	d.Add(7, 1, []ID{a.ID}, []float64{3}, Meta{Poisoned: true})
	assertEqualDAGs(t, d, roundTrip(t, d))
}

func TestCodecRoundTripGenesisOnly(t *testing.T) {
	d := New(nil)
	assertEqualDAGs(t, d, roundTrip(t, d))
}

func TestCodecRoundTripSpecialFloats(t *testing.T) {
	d := New([]float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -0.0})
	assertEqualDAGs(t, d, roundTrip(t, d))
}

func TestCodecRoundTripRandomQuick(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := xrand.New(seed)
		d := buildRandom(rng, int(size%60)+1)
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadDAG(&buf)
		if err != nil {
			return false
		}
		return got.Size() == d.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadDAGRejectsBadMagic(t *testing.T) {
	if _, err := ReadDAG(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadDAGRejectsEmpty(t *testing.T) {
	if _, err := ReadDAG(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadDAGRejectsTruncation(t *testing.T) {
	rng := xrand.New(5)
	d := buildRandom(rng, 20)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for _, cut := range []int{5, 9, len(full) / 2, len(full) - 1} {
		if _, err := ReadDAG(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated snapshot (%d/%d bytes) accepted", cut, len(full))
		}
	}
}

func TestReadDAGRejectsCorruptHeader(t *testing.T) {
	d := New([]float64{1})
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Claim an absurd transaction count.
	corrupt := append([]byte{}, data...)
	corrupt[4], corrupt[5], corrupt[6], corrupt[7] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadDAG(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("absurd tx count accepted")
	}
}

func TestReadDAGRejectsForwardParents(t *testing.T) {
	// Hand-craft a snapshot whose second transaction references itself.
	d := New(nil)
	d.Add(1, 0, []ID{0}, nil, Meta{})
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The parent uvarint of tx 1 is the byte right after its parent count;
	// find it by re-encoding: tx1 begins after genesis. Simpler: flip the
	// last occurrence of 0x00 parent byte to 0x01 (self-reference).
	// Locate: tx1 layout: id=0x01, issuer=0x02(zigzag 1), round=0x00,
	// parentCount=0x01, parent=0x00.
	idx := bytes.Index(data[8:], []byte{0x01, 0x02, 0x00, 0x01, 0x00})
	if idx < 0 {
		t.Skip("layout changed; self-reference corruption not applicable")
	}
	data[8+idx+4] = 0x01 // parent = 1 == own id
	if _, err := ReadDAG(bytes.NewReader(data)); err == nil {
		t.Fatal("forward/self parent accepted")
	}
}

func TestWriteToPropagatesWriterErrors(t *testing.T) {
	d := New([]float64{1, 2, 3})
	if _, err := d.WriteTo(failingWriter{}); err == nil {
		t.Fatal("writer error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func BenchmarkCodecWrite(b *testing.B) {
	rng := xrand.New(1)
	d := buildRandom(rng, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteTo(io.Discard)
	}
}

func BenchmarkCodecRead(b *testing.B) {
	rng := xrand.New(2)
	d := buildRandom(rng, 200)
	var buf bytes.Buffer
	d.WriteTo(&buf)
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadDAG(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
