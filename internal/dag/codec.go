package dag

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary snapshot format for DAGs. A deployed tangle needs a wire format to
// gossip transactions and to checkpoint state; this is a compact,
// versioned, self-validating encoding:
//
//	magic "SDG1" | u32 txCount
//	per transaction, in topological (insertion) order:
//	  uvarint ID | varint issuer | varint round
//	  u8 parentCount | uvarint parents...
//	  f64 trainAcc | f64 testAcc | u8 poisoned
//	  uvarint paramCount | f64 params...
//
// All integers are little-endian; floats are IEEE-754 bit patterns.
// Decoding validates structural invariants (sequential IDs, parents precede
// children), so a corrupted or adversarial snapshot cannot produce a cyclic
// or dangling DAG.
//
// The per-transaction record codec (txRecordWriter / readTxRecord) is shared
// with the "SDS1" epoch spill files written by compaction (see epoch.go),
// which carry the same records under their own header.

// codecMagic identifies snapshot files and fixes the version.
var codecMagic = [4]byte{'S', 'D', 'G', '1'}

// maxSnapshotTxs bounds decoding work against adversarial headers.
const maxSnapshotTxs = 1 << 24

// txRecordWriter encodes transaction records in the SDG1 layout.
type txRecordWriter struct {
	cw  *countingWriter
	buf [binary.MaxVarintLen64]byte
}

func (e *txRecordWriter) putUvarint(v uint64) error {
	n := binary.PutUvarint(e.buf[:], v)
	_, err := e.cw.Write(e.buf[:n])
	return err
}

func (e *txRecordWriter) putVarint(v int64) error {
	n := binary.PutVarint(e.buf[:], v)
	_, err := e.cw.Write(e.buf[:n])
	return err
}

// write encodes one transaction record.
func (e *txRecordWriter) write(t *Transaction) error {
	cw := e.cw
	if err := e.putUvarint(uint64(t.ID)); err != nil {
		return err
	}
	if err := e.putVarint(int64(t.Issuer)); err != nil {
		return err
	}
	if err := e.putVarint(int64(t.Round)); err != nil {
		return err
	}
	if len(t.Parents) > 255 {
		return fmt.Errorf("dag: transaction %d has %d parents", t.ID, len(t.Parents))
	}
	if _, err := cw.Write([]byte{byte(len(t.Parents))}); err != nil {
		return err
	}
	for _, p := range t.Parents {
		if err := e.putUvarint(uint64(p)); err != nil {
			return err
		}
	}
	for _, f := range []float64{t.Meta.TrainAcc, t.Meta.TestAcc} {
		if err := binary.Write(cw, binary.LittleEndian, math.Float64bits(f)); err != nil {
			return err
		}
	}
	poisoned := byte(0)
	if t.Meta.Poisoned {
		poisoned = 1
	}
	if _, err := cw.Write([]byte{poisoned}); err != nil {
		return err
	}
	if err := e.putUvarint(uint64(len(t.Params))); err != nil {
		return err
	}
	for _, f := range t.Params {
		if err := binary.Write(cw, binary.LittleEndian, math.Float64bits(f)); err != nil {
			return err
		}
	}
	return nil
}

// readTxRecord decodes one transaction record, validating that its ID equals
// want and that every parent strictly precedes it.
func readTxRecord(br *bufio.Reader, want uint64) (*Transaction, error) {
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tx %d: id: %w", want, err)
	}
	if id != want {
		return nil, fmt.Errorf("tx %d: non-sequential id %d", want, id)
	}
	issuer, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("tx %d: issuer: %w", want, err)
	}
	round, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("tx %d: round: %w", want, err)
	}
	var pc [1]byte
	if _, err := io.ReadFull(br, pc[:]); err != nil {
		return nil, fmt.Errorf("tx %d: parent count: %w", want, err)
	}
	parents := make([]ID, 0, pc[0])
	for i := 0; i < int(pc[0]); i++ {
		p, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("tx %d: parent %d: %w", want, i, err)
		}
		if p >= want {
			return nil, fmt.Errorf("tx %d: parent %d does not precede child", want, p)
		}
		parents = append(parents, ID(p))
	}
	var meta Meta
	var bits uint64
	if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
		return nil, fmt.Errorf("tx %d: trainAcc: %w", want, err)
	}
	meta.TrainAcc = math.Float64frombits(bits)
	if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
		return nil, fmt.Errorf("tx %d: testAcc: %w", want, err)
	}
	meta.TestAcc = math.Float64frombits(bits)
	var pb [1]byte
	if _, err := io.ReadFull(br, pb[:]); err != nil {
		return nil, fmt.Errorf("tx %d: poisoned flag: %w", want, err)
	}
	meta.Poisoned = pb[0] != 0
	nParams, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tx %d: param count: %w", want, err)
	}
	if nParams > 1<<28 {
		return nil, fmt.Errorf("tx %d: implausible param count %d", want, nParams)
	}
	params := make([]float64, nParams)
	for i := range params {
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("tx %d: param %d: %w", want, i, err)
		}
		params[i] = math.Float64frombits(bits)
	}
	return &Transaction{
		ID:      ID(id),
		Issuer:  int(issuer),
		Round:   int(round),
		Parents: parents,
		Params:  params,
		Meta:    meta,
	}, nil
}

// WriteTo serializes the DAG to w and returns the number of bytes written.
// Frozen transactions (below the compaction floor) serialize with their
// released, empty parameter vectors — checkpoint size stays proportional to
// the live suffix.
func (d *DAG) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()

	cw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := cw.Write(codecMagic[:]); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(d.txs))); err != nil {
		return cw.n, err
	}
	enc := txRecordWriter{cw: cw}
	for _, t := range d.txs {
		if err := enc.write(t); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadDAG deserializes a snapshot previously written with WriteTo,
// re-validating every structural invariant.
func ReadDAG(r io.Reader) (*DAG, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dag: reading magic: %w", err)
	}
	if magic != codecMagic {
		return nil, fmt.Errorf("dag: bad magic %q (not a SDG1 snapshot)", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("dag: reading count: %w", err)
	}
	if count == 0 {
		return nil, fmt.Errorf("dag: snapshot has no transactions (missing genesis)")
	}
	if count > maxSnapshotTxs {
		return nil, fmt.Errorf("dag: snapshot claims %d transactions (limit %d)", count, maxSnapshotTxs)
	}

	genesis, err := readTxRecord(br, 0)
	if err != nil {
		return nil, fmt.Errorf("dag: %w", err)
	}
	if !genesis.IsGenesis() {
		return nil, fmt.Errorf("dag: first transaction has issuer %d, want genesis (%d)", genesis.Issuer, GenesisIssuer)
	}
	if len(genesis.Parents) != 0 {
		return nil, fmt.Errorf("dag: genesis must have no parents, got %d", len(genesis.Parents))
	}
	d := New(genesis.Params)
	d.txs[0].Round = genesis.Round
	d.txs[0].Meta = genesis.Meta

	for i := uint32(1); i < count; i++ {
		tx, err := readTxRecord(br, uint64(i))
		if err != nil {
			return nil, fmt.Errorf("dag: %w", err)
		}
		if _, err := d.Add(tx.Issuer, tx.Round, tx.Parents, tx.Params, tx.Meta); err != nil {
			return nil, fmt.Errorf("dag: rebuilding tx %d: %w", i, err)
		}
	}
	return d, nil
}

// countingWriter tracks bytes written for WriteTo's return value.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
