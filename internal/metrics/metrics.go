// Package metrics derives the specialization and robustness measures of the
// paper's evaluation from a DAG of model updates: the client graph
// G_clients, approval pureness, Louvain-based misclassification fraction
// (§4.3), and the poisoning accounting of §5.3.4.
package metrics

import (
	"fmt"
	"strings"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/graphx"
	"github.com/specdag/specdag/internal/mathx"
)

// BuildClientGraph derives G_clients from the DAG (§4.3): the edge weight
// between clients a and b is the number of transactions published by a that
// directly approve a transaction of b, or vice versa. Approvals of one's own
// transactions and of genesis are ignored; every publishing client becomes a
// node even without cross-client edges.
func BuildClientGraph(d *dag.DAG) *graphx.Graph {
	g := graphx.NewGraph()
	for _, tx := range d.All() {
		if tx.IsGenesis() {
			continue
		}
		g.AddNode(tx.Issuer)
		for _, pid := range uniqueParents(tx) {
			parent := d.MustGet(pid)
			if parent.IsGenesis() || parent.Issuer == tx.Issuer {
				continue
			}
			g.AddEdge(tx.Issuer, parent.Issuer, 1)
		}
	}
	return g
}

// uniqueParents deduplicates a transaction's parent list: approving the same
// transaction twice is a single approval relationship.
func uniqueParents(tx *dag.Transaction) []dag.ID {
	if len(tx.Parents) == 2 && tx.Parents[0] == tx.Parents[1] {
		return tx.Parents[:1]
	}
	return tx.Parents
}

// ApprovalPureness returns the fraction of approval edges that connect
// transactions of clients from the same cluster (Table 2). Approvals of
// genesis and self-approvals are excluded. A DAG without qualifying edges
// yields 1 (vacuously pure).
func ApprovalPureness(d *dag.DAG, clusterOf map[int]int) float64 {
	same, total := 0, 0
	for _, tx := range d.All() {
		if tx.IsGenesis() {
			continue
		}
		for _, pid := range uniqueParents(tx) {
			parent := d.MustGet(pid)
			if parent.IsGenesis() || parent.Issuer == tx.Issuer {
				continue
			}
			total++
			if clusterOf[tx.Issuer] == clusterOf[parent.Issuer] {
				same++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(same) / float64(total)
}

// Misclassification computes the misclassification fraction of §4.3: given
// an inferred partition (client -> community) and ground-truth clusters
// (client -> cluster), a client is misclassified when the relative majority
// of its community belongs to a different cluster. Clients missing from
// truth are skipped.
func Misclassification(partition, truth map[int]int) float64 {
	if len(partition) == 0 {
		return 0
	}
	// Per community, count ground-truth clusters.
	counts := make(map[int]map[int]int)
	total := 0
	for client, comm := range partition {
		cluster, ok := truth[client]
		if !ok {
			continue
		}
		if counts[comm] == nil {
			counts[comm] = make(map[int]int)
		}
		counts[comm][cluster]++
		total++
	}
	if total == 0 {
		return 0
	}
	// Majority cluster per community (ties resolved to the lower cluster ID
	// for determinism; a tied client still counts as correctly classified
	// only if it is in the chosen majority).
	mis := 0
	for comm, clusterCounts := range counts {
		best, bestN := -1, -1
		for cluster, n := range clusterCounts {
			if n > bestN || (n == bestN && cluster < best) {
				best, bestN = cluster, n
			}
		}
		for client, c := range partition {
			if c != comm {
				continue
			}
			cluster, ok := truth[client]
			if !ok {
				continue
			}
			if cluster != best {
				mis++
			}
		}
	}
	return float64(mis) / float64(total)
}

// PoisonedApprovals counts the poisoned transactions among the ancestors
// (direct or indirect approvals) of the given transaction — the quantity
// plotted in Fig. 13 for the consensus reference transaction.
func PoisonedApprovals(d *dag.DAG, id dag.ID) int {
	n := 0
	for anc := range d.Ancestors(id) {
		if d.MustGet(anc).Meta.Poisoned {
			n++
		}
	}
	return n
}

// ClusterHistogram counts, per inferred community, how many of its clients
// are in the poisoned set (Fig. 14). The first return value is benign counts
// per community ID 0..k-1, the second poisoned counts.
func ClusterHistogram(partition map[int]int, poisoned map[int]bool) (benign, bad []int) {
	k := graphx.NumCommunities(partition)
	benign = make([]int, k)
	bad = make([]int, k)
	for client, comm := range partition {
		if poisoned[client] {
			bad[comm]++
		} else {
			benign[comm]++
		}
	}
	return benign, bad
}

// BoxStats summarizes a sample for box plots (Fig. 9): min, first quartile,
// median, third quartile, max, and the mean.
type BoxStats struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// NewBoxStats computes BoxStats for values; the zero value is returned for
// empty input.
func NewBoxStats(values []float64) BoxStats {
	if len(values) == 0 {
		return BoxStats{}
	}
	min, max := mathx.MinMax(values)
	return BoxStats{
		Min:    min,
		Q1:     mathx.Quantile(values, 0.25),
		Median: mathx.Quantile(values, 0.5),
		Q3:     mathx.Quantile(values, 0.75),
		Max:    max,
		Mean:   mathx.Mean(values),
		N:      len(values),
	}
}

// String renders the stats compactly.
func (b BoxStats) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f n=%d",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean, b.N)
}

// Series is a per-round record of named metric columns, used to regenerate
// the paper's figures as printable tables and CSV.
type Series struct {
	Name string
	Cols []string
	Rows [][]float64
}

// NewSeries creates a series with the given name and column headers.
func NewSeries(name string, cols ...string) *Series {
	return &Series{Name: name, Cols: cols}
}

// Add appends one row. It panics if the column count mismatches, which
// indicates a harness bug.
func (s *Series) Add(row ...float64) {
	if len(row) != len(s.Cols) {
		panic(fmt.Sprintf("metrics: series %q row has %d values, want %d", s.Name, len(row), len(s.Cols)))
	}
	s.Rows = append(s.Rows, append([]float64(nil), row...))
}

// Col returns the values of the named column. It panics on unknown names.
func (s *Series) Col(name string) []float64 {
	for i, c := range s.Cols {
		if c == name {
			out := make([]float64, len(s.Rows))
			for r, row := range s.Rows {
				out[r] = row[i]
			}
			return out
		}
	}
	panic(fmt.Sprintf("metrics: series %q has no column %q", s.Name, name))
}

// Last returns the final value of the named column, or 0 if empty.
func (s *Series) Last(name string) float64 {
	col := s.Col(name)
	if len(col) == 0 {
		return 0
	}
	return col[len(col)-1]
}

// Table renders the series as a GitHub-flavored markdown table.
func (s *Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", s.Name)
	b.WriteString("| " + strings.Join(s.Cols, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(s.Cols)) + "\n")
	for _, row := range s.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = formatCell(v)
		}
		b.WriteString("| " + strings.Join(parts, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the series as comma-separated values with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(s.Cols, ",") + "\n")
	for _, row := range s.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = formatCell(v)
		}
		b.WriteString(strings.Join(parts, ",") + "\n")
	}
	return b.String()
}

func formatCell(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}
