package metrics

import (
	"math"
	"strings"
	"testing"

	"github.com/specdag/specdag/internal/dag"
)

// buildClusteredDAG creates a DAG where clients 1,2 (cluster 0) approve each
// other and clients 3,4 (cluster 1) approve each other, plus one
// cross-cluster approval.
func buildClusteredDAG(t *testing.T) *dag.DAG {
	t.Helper()
	d := dag.New(nil)
	a, _ := d.Add(1, 0, []dag.ID{0, 0}, nil, dag.Meta{})
	b, _ := d.Add(2, 0, []dag.ID{a.ID, a.ID}, nil, dag.Meta{}) // 2->1 intra
	c, _ := d.Add(1, 1, []dag.ID{b.ID, b.ID}, nil, dag.Meta{}) // 1->2 intra
	x, _ := d.Add(3, 1, []dag.ID{0, 0}, nil, dag.Meta{})       // genesis only
	y, _ := d.Add(4, 2, []dag.ID{x.ID, x.ID}, nil, dag.Meta{}) // 4->3 intra
	_, _ = d.Add(3, 2, []dag.ID{y.ID, c.ID}, nil, dag.Meta{})  // 3->4 intra, 3->1 cross
	return d
}

var testClusters = map[int]int{1: 0, 2: 0, 3: 1, 4: 1}

func TestBuildClientGraph(t *testing.T) {
	d := buildClusteredDAG(t)
	g := BuildClientGraph(d)
	// Edges: 2-1 (w 1 from b) + 1-2 (w 1 from c) accumulate on the same
	// undirected edge => weight 2.
	if got := g.Weight(1, 2); got != 2 {
		t.Fatalf("weight(1,2) = %v, want 2", got)
	}
	if got := g.Weight(3, 4); got != 2 {
		t.Fatalf("weight(3,4) = %v, want 2", got)
	}
	if got := g.Weight(1, 3); got != 1 {
		t.Fatalf("weight(1,3) = %v, want 1", got)
	}
	// All four issuers are nodes; genesis is not.
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %v", g.Nodes())
	}
}

func TestBuildClientGraphIgnoresSelfAndGenesis(t *testing.T) {
	d := dag.New(nil)
	a, _ := d.Add(7, 0, []dag.ID{0, 0}, nil, dag.Meta{})
	d.Add(7, 1, []dag.ID{a.ID, a.ID}, nil, dag.Meta{}) // self-approval only
	g := BuildClientGraph(d)
	if g.TotalWeight() != 0 {
		t.Fatalf("self-approvals must not create edges, total weight %v", g.TotalWeight())
	}
	if g.NumNodes() != 1 {
		t.Fatalf("publishing client should still be a node: %v", g.Nodes())
	}
}

func TestApprovalPureness(t *testing.T) {
	d := buildClusteredDAG(t)
	// Cross-client approvals: 2->1, 1->2, 4->3, 3->4 (intra) and 3->1
	// (cross) => pureness 4/5.
	got := ApprovalPureness(d, testClusters)
	if math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("pureness = %v, want 0.8", got)
	}
}

func TestApprovalPurenessVacuous(t *testing.T) {
	d := dag.New(nil)
	d.Add(1, 0, []dag.ID{0, 0}, nil, dag.Meta{})
	if got := ApprovalPureness(d, testClusters); got != 1 {
		t.Fatalf("vacuous pureness = %v, want 1", got)
	}
}

func TestMisclassification(t *testing.T) {
	tests := []struct {
		name      string
		partition map[int]int
		truth     map[int]int
		want      float64
	}{
		{
			"perfect",
			map[int]int{1: 0, 2: 0, 3: 1, 4: 1},
			map[int]int{1: 0, 2: 0, 3: 1, 4: 1},
			0,
		},
		{
			"one stray",
			map[int]int{1: 0, 2: 0, 3: 0, 4: 1},
			map[int]int{1: 0, 2: 0, 3: 1, 4: 1},
			0.25,
		},
		{
			"merged communities",
			map[int]int{1: 0, 2: 0, 3: 0, 4: 0},
			map[int]int{1: 0, 2: 0, 3: 1, 4: 1},
			0.5,
		},
		{
			"empty",
			map[int]int{},
			map[int]int{},
			0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Misclassification(tt.partition, tt.truth); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Misclassification = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPoisonedApprovals(t *testing.T) {
	d := dag.New(nil)
	a, _ := d.Add(1, 0, []dag.ID{0, 0}, nil, dag.Meta{Poisoned: true})
	b, _ := d.Add(2, 1, []dag.ID{a.ID, a.ID}, nil, dag.Meta{})
	c, _ := d.Add(3, 2, []dag.ID{b.ID, b.ID}, nil, dag.Meta{Poisoned: true})
	if got := PoisonedApprovals(d, c.ID); got != 1 {
		t.Fatalf("poisoned ancestors of c = %d, want 1 (a, not c itself)", got)
	}
	if got := PoisonedApprovals(d, a.ID); got != 0 {
		t.Fatalf("poisoned ancestors of a = %d, want 0", got)
	}
}

func TestClusterHistogram(t *testing.T) {
	partition := map[int]int{1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
	poisoned := map[int]bool{3: true, 4: true}
	benign, bad := ClusterHistogram(partition, poisoned)
	if benign[0] != 2 || bad[0] != 0 {
		t.Fatalf("community 0: benign %d bad %d", benign[0], bad[0])
	}
	if benign[1] != 1 || bad[1] != 2 {
		t.Fatalf("community 1: benign %d bad %d", benign[1], bad[1])
	}
}

func TestNewBoxStats(t *testing.T) {
	b := NewBoxStats([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 || b.Mean != 3 || b.N != 5 {
		t.Fatalf("BoxStats = %+v", b)
	}
	empty := NewBoxStats(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty BoxStats = %+v", empty)
	}
	if !strings.Contains(b.String(), "med=3.000") {
		t.Fatalf("String() = %q", b.String())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("fig", "round", "acc")
	s.Add(0, 0.5)
	s.Add(1, 0.75)
	if got := s.Col("acc"); len(got) != 2 || got[1] != 0.75 {
		t.Fatalf("Col = %v", got)
	}
	if got := s.Last("acc"); got != 0.75 {
		t.Fatalf("Last = %v", got)
	}
	tbl := s.Table()
	for _, want := range []string{"### fig", "| round | acc |", "| 1 | 0.7500 |"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("Table missing %q:\n%s", want, tbl)
		}
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "round,acc\n0,0.5000\n") {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestSeriesPanics(t *testing.T) {
	s := NewSeries("x", "a", "b")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add with wrong arity should panic")
			}
		}()
		s.Add(1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Col with unknown name should panic")
			}
		}()
		s.Col("nope")
	}()
}
