// Package xrand provides deterministic, splittable random-number utilities
// for reproducible simulations.
//
// Every experiment in this repository derives all of its randomness from a
// single root seed. Sub-streams are created by name with Split, which hashes
// the parent seed together with the name, so that adding a new consumer of
// randomness does not perturb the streams of existing consumers.
package xrand

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// RNG is a deterministic random source with helpers used across the
// simulator. It is not safe for concurrent use; derive one RNG per goroutine
// with Split.
type RNG struct {
	seed int64
	src  *rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{seed: seed, src: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed this RNG was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Split derives an independent RNG from this RNG's seed and a name.
// Splitting is a pure function of (seed, name): it does not advance or
// observe the parent stream, so call order cannot change results.
func (r *RNG) Split(name string) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(r.seed >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(name))
	return New(int64(h.Sum64()))
}

// SplitIndex derives an independent RNG from this RNG's seed, a name, and an
// integer index (e.g. a client ID or a round number).
func (r *RNG) SplitIndex(name string, index int) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(r.seed >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(name))
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(index) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return New(int64(h.Sum64()))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Normal returns a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.src.NormFloat64()
}

// NormalVec fills a new length-n vector with N(mean, std^2) variates.
func (r *RNG) NormalVec(n int, mean, std float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Normal(mean, std)
	}
	return v
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.src.Float64() < p }

// IntRange returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.src.Intn(hi-lo+1)
}

// Choice returns a uniformly random index in [0, n).
func (r *RNG) Choice(n int) int { return r.src.Intn(n) }

// WeightedChoice returns an index sampled proportionally to weights.
// Non-positive weights are treated as zero. If all weights are zero (or the
// slice is empty after filtering) it falls back to a uniform choice.
// It panics on an empty slice.
func (r *RNG) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("xrand: WeightedChoice with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 && !math.IsInf(w, 1) && !math.IsNaN(w) {
			total += w
		}
	}
	if total <= 0 {
		return r.src.Intn(len(weights))
	}
	x := r.src.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w > 0 && !math.IsInf(w, 1) && !math.IsNaN(w) {
			acc += w
		}
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// SampleWithoutReplacement returns k distinct values from [0, n) in random
// order. If k >= n it returns a permutation of all n values.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	perm := r.Perm(n)
	return perm[:k]
}

// Gamma draws from a Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method. shape must be positive.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("xrand: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.src.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet draws from a symmetric Dirichlet distribution with concentration
// alpha over k categories. The result sums to 1.
func (r *RNG) Dirichlet(alpha float64, k int) []float64 {
	if k <= 0 {
		panic("xrand: Dirichlet with k <= 0")
	}
	v := make([]float64, k)
	total := 0.0
	for i := range v {
		v[i] = r.Gamma(alpha)
		total += v[i]
	}
	if total == 0 {
		for i := range v {
			v[i] = 1.0 / float64(k)
		}
		return v
	}
	for i := range v {
		v[i] /= total
	}
	return v
}

// LogNormalInt returns max(lo, round(exp(N(mu, sigma^2)))) capped at hi.
// It is used to draw per-client sample counts with a heavy tail, as in the
// FedProx synthetic dataset.
func (r *RNG) LogNormalInt(mu, sigma float64, lo, hi int) int {
	x := math.Exp(r.Normal(mu, sigma))
	n := int(math.Round(x))
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// SortedWeightedIndices is a deterministic helper that returns index order by
// descending weight, breaking ties by index. It is used by tests to assert
// weighting behaviour.
func SortedWeightedIndices(weights []float64) []int {
	idx := make([]int, len(weights))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return weights[idx[a]] > weights[idx[b]] })
	return idx
}
