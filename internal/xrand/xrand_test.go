package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitIndependentOfCallOrder(t *testing.T) {
	root1 := New(7)
	root2 := New(7)

	// Consume from root1's own stream before splitting; split streams must
	// be unaffected because Split is a pure function of (seed, name).
	for i := 0; i < 10; i++ {
		root1.Float64()
	}
	s1 := root1.Split("clients")
	s2 := root2.Split("clients")
	for i := 0; i < 50; i++ {
		if s1.Float64() != s2.Float64() {
			t.Fatalf("split stream depends on parent consumption at draw %d", i)
		}
	}
}

func TestSplitDistinctNames(t *testing.T) {
	root := New(7)
	a := root.Split("a")
	b := root.Split("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("distinct split names produced identical streams")
	}
}

func TestSplitIndex(t *testing.T) {
	root := New(99)
	a := root.SplitIndex("client", 3)
	b := root.SplitIndex("client", 4)
	c := root.SplitIndex("client", 3)
	if a.Float64() == b.Float64() {
		t.Error("different indexes should give different streams")
	}
	a2 := root.SplitIndex("client", 3)
	_ = c
	if a2.Seed() != a.Seed() {
		t.Error("same index should give the same seed")
	}
}

func TestIntRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(15, 25)
		if v < 15 || v > 25 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if got := New(2).IntRange(5, 5); got != 5 {
		t.Fatalf("degenerate range: got %d want 5", got)
	}
}

func TestIntRangePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	New(1).IntRange(3, 2)
}

func TestWeightedChoiceRespectsWeights(t *testing.T) {
	r := New(5)
	weights := []float64{0, 0, 1, 0}
	for i := 0; i < 200; i++ {
		if got := r.WeightedChoice(weights); got != 2 {
			t.Fatalf("all mass on index 2, got %d", got)
		}
	}
}

func TestWeightedChoiceProportions(t *testing.T) {
	r := New(11)
	weights := []float64{1, 3}
	counts := [2]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	frac := float64(counts[1]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("weighted choice proportion off: got %.3f want 0.75±0.02", frac)
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	r := New(3)
	// All-zero weights fall back to uniform over all indexes.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[r.WeightedChoice([]float64{0, 0, 0})] = true
	}
	if len(seen) != 3 {
		t.Fatalf("uniform fallback should cover all indexes, saw %v", seen)
	}
	// NaN and +Inf weights are ignored rather than hijacking the draw.
	for i := 0; i < 100; i++ {
		got := r.WeightedChoice([]float64{math.NaN(), 1, math.Inf(1)})
		if got != 1 {
			t.Fatalf("NaN/Inf weights must be ignored, got index %d", got)
		}
	}
}

func TestWeightedChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty weights")
		}
	}()
	New(1).WeightedChoice(nil)
}

func TestWeightedChoiceInBoundsQuick(t *testing.T) {
	r := New(17)
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		i := r.WeightedChoice(raw)
		return i >= 0 && i < len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(8)
	got := r.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("want 4 samples, got %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("sample out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample: %d", v)
		}
		seen[v] = true
	}
	all := r.SampleWithoutReplacement(5, 99)
	if len(all) != 5 {
		t.Fatalf("k>n should return all n, got %d", len(all))
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(21)
	for _, alpha := range []float64{0.1, 0.5, 1, 10} {
		v := r.Dirichlet(alpha, 20)
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				t.Fatalf("negative Dirichlet component: %v", x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet(alpha=%v) sums to %v", alpha, sum)
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	r := New(22)
	// Low alpha concentrates mass; high alpha spreads it.
	low := r.Dirichlet(0.05, 10)
	maxLow := 0.0
	for _, v := range low {
		if v > maxLow {
			maxLow = v
		}
	}
	highMax := 0.0
	const trials = 50
	for i := 0; i < trials; i++ {
		high := r.Dirichlet(100, 10)
		for _, v := range high {
			if v > highMax {
				highMax = v
			}
		}
	}
	if highMax > 0.5 {
		t.Fatalf("Dirichlet(100) should be near-uniform, max component %v", highMax)
	}
}

func TestGammaPositive(t *testing.T) {
	r := New(23)
	for _, shape := range []float64{0.1, 0.5, 1, 2, 10} {
		for i := 0; i < 100; i++ {
			if g := r.Gamma(shape); g < 0 || math.IsNaN(g) {
				t.Fatalf("Gamma(%v) produced %v", shape, g)
			}
		}
	}
}

func TestGammaMean(t *testing.T) {
	r := New(24)
	const shape, n = 3.0, 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Gamma(shape)
	}
	mean := sum / n
	if math.Abs(mean-shape) > 0.1 {
		t.Fatalf("Gamma(%v) sample mean %v, want ≈%v", shape, mean, shape)
	}
}

func TestLogNormalIntBounds(t *testing.T) {
	r := New(25)
	for i := 0; i < 1000; i++ {
		v := r.LogNormalInt(4, 2, 10, 500)
		if v < 10 || v > 500 {
			t.Fatalf("LogNormalInt out of [10,500]: %d", v)
		}
	}
}

func TestNormalVec(t *testing.T) {
	r := New(26)
	v := r.NormalVec(10000, 2, 3)
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	mean := sum / float64(len(v))
	if math.Abs(mean-2) > 0.1 {
		t.Fatalf("NormalVec mean %v, want ≈2", mean)
	}
}

func TestSortedWeightedIndices(t *testing.T) {
	got := SortedWeightedIndices([]float64{0.1, 0.9, 0.5})
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}
