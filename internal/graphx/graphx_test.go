package graphx

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/specdag/specdag/internal/xrand"
)

// clique adds a complete graph over the given nodes with unit weights.
func clique(g *Graph, nodes []int) {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			g.AddEdge(nodes[i], nodes[j], 1)
		}
	}
}

// twoCliques returns two 5-cliques joined by a single bridge edge.
func twoCliques() *Graph {
	g := NewGraph()
	clique(g, []int{0, 1, 2, 3, 4})
	clique(g, []int{5, 6, 7, 8, 9})
	g.AddEdge(4, 5, 1)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2, 3)
	g.AddEdge(1, 2, 2) // accumulates
	g.AddEdge(2, 3, 1)
	g.AddNode(7)

	if got := g.Weight(1, 2); got != 5 {
		t.Fatalf("Weight(1,2) = %v, want 5", got)
	}
	if got := g.Weight(2, 1); got != 5 {
		t.Fatalf("undirected symmetry broken: %v", got)
	}
	if got := g.Degree(1); got != 5 {
		t.Fatalf("Degree(1) = %v, want 5", got)
	}
	if got := g.Degree(2); got != 6 {
		t.Fatalf("Degree(2) = %v, want 6", got)
	}
	if got := g.TotalWeight(); got != 6 {
		t.Fatalf("TotalWeight = %v, want 6", got)
	}
	nodes := g.Nodes()
	want := []int{1, 2, 3, 7}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, want)
		}
	}
	if nb := g.Neighbors(2); len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Fatalf("Neighbors(2) = %v", nb)
	}
}

func TestSelfLoopDegree(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 1, 2)
	if got := g.Degree(1); got != 4 {
		t.Fatalf("self-loop degree = %v, want 4", got)
	}
	if got := g.TotalWeight(); got != 2 {
		t.Fatalf("self-loop total weight = %v, want 2", got)
	}
}

func TestModularityTwoCliques(t *testing.T) {
	g := twoCliques()
	good := map[int]int{}
	for u := 0; u <= 4; u++ {
		good[u] = 0
	}
	for u := 5; u <= 9; u++ {
		good[u] = 1
	}
	qGood := Modularity(g, good)

	all := map[int]int{}
	for u := 0; u <= 9; u++ {
		all[u] = 0
	}
	qAll := Modularity(g, all)

	if qGood <= 0.3 {
		t.Fatalf("two-clique partition should have high modularity, got %v", qGood)
	}
	if qAll != 0 {
		// Single community: Q = Σin/m − (Σdeg/2m)^2 = 1 − 1 = 0.
		t.Fatalf("single-community modularity should be 0, got %v", qAll)
	}
	if qGood <= qAll {
		t.Fatal("correct partition must beat the trivial one")
	}
}

func TestModularityKnownValue(t *testing.T) {
	// Two disconnected edges: perfect 2-community partition.
	// Q = Σ_c [in_c/m - (deg_c/2m)^2] = 2*(1/2 - (2/4)^2) = 1/2.
	g := NewGraph()
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	partition := map[int]int{0: 0, 1: 0, 2: 1, 3: 1}
	if got := Modularity(g, partition); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("modularity = %v, want 0.5", got)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	if got := Modularity(NewGraph(), nil); got != 0 {
		t.Fatalf("empty graph modularity = %v, want 0", got)
	}
}

func TestModularityBoundsQuick(t *testing.T) {
	f := func(seed int64, n uint8, extra uint8) bool {
		rng := xrand.New(seed)
		nodes := int(n%20) + 2
		g := NewGraph()
		for i := 0; i < nodes; i++ {
			g.AddNode(i)
		}
		edges := int(extra%64) + 1
		for e := 0; e < edges; e++ {
			g.AddEdge(rng.Intn(nodes), rng.Intn(nodes), 1+rng.Float64())
		}
		partition := map[int]int{}
		k := rng.Intn(nodes) + 1
		for i := 0; i < nodes; i++ {
			partition[i] = rng.Intn(k)
		}
		q := Modularity(g, partition)
		return q >= -0.5-1e-9 && q <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLouvainTwoCliques(t *testing.T) {
	g := twoCliques()
	part := Louvain(g, xrand.New(1))
	if got := NumCommunities(part); got != 2 {
		t.Fatalf("Louvain found %d communities, want 2 (partition %v)", got, part)
	}
	// All members of each clique must share a community.
	for u := 1; u <= 4; u++ {
		if part[u] != part[0] {
			t.Fatalf("clique 1 split: %v", part)
		}
	}
	for u := 6; u <= 9; u++ {
		if part[u] != part[5] {
			t.Fatalf("clique 2 split: %v", part)
		}
	}
	if part[0] == part[5] {
		t.Fatalf("cliques merged: %v", part)
	}
}

func TestLouvainRingOfCliques(t *testing.T) {
	// Four 4-cliques in a ring — the classic Louvain benchmark.
	g := NewGraph()
	for c := 0; c < 4; c++ {
		base := c * 4
		clique(g, []int{base, base + 1, base + 2, base + 3})
	}
	for c := 0; c < 4; c++ {
		g.AddEdge(c*4+3, ((c+1)%4)*4, 1)
	}
	part := Louvain(g, xrand.New(2))
	if got := NumCommunities(part); got != 4 {
		t.Fatalf("found %d communities, want 4: %v", got, part)
	}
	q := Modularity(g, part)
	if q < 0.5 {
		t.Fatalf("ring-of-cliques modularity %v, want >= 0.5", q)
	}
}

func TestLouvainDeterministicWithNilRNG(t *testing.T) {
	a := Louvain(twoCliques(), nil)
	b := Louvain(twoCliques(), nil)
	for u, c := range a {
		if b[u] != c {
			t.Fatal("Louvain with nil rng should be deterministic")
		}
	}
}

func TestLouvainPartitionCoversAllNodes(t *testing.T) {
	f := func(seed int64, n uint8, extra uint8) bool {
		rng := xrand.New(seed)
		nodes := int(n%25) + 1
		g := NewGraph()
		for i := 0; i < nodes; i++ {
			g.AddNode(i)
		}
		edges := int(extra % 50)
		for e := 0; e < edges; e++ {
			g.AddEdge(rng.Intn(nodes), rng.Intn(nodes), 1)
		}
		part := Louvain(g, rng)
		if len(part) != nodes {
			return false
		}
		// Community IDs must be dense: 0..k-1.
		k := NumCommunities(part)
		for _, c := range part {
			if c < 0 || c >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLouvainNeverDecreasesTrivialModularity(t *testing.T) {
	// The Louvain partition should always be at least as good as singletons.
	f := func(seed int64, n uint8, extra uint8) bool {
		rng := xrand.New(seed)
		nodes := int(n%15) + 2
		g := NewGraph()
		for i := 0; i < nodes; i++ {
			g.AddNode(i)
		}
		edges := int(extra%40) + 1
		for e := 0; e < edges; e++ {
			g.AddEdge(rng.Intn(nodes), rng.Intn(nodes), 1)
		}
		singletons := map[int]int{}
		for i := 0; i < nodes; i++ {
			singletons[i] = i
		}
		qSingle := Modularity(g, singletons)
		part := Louvain(g, rng)
		q := Modularity(g, part)
		return q >= qSingle-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLouvainEmptyAndSingleton(t *testing.T) {
	if part := Louvain(NewGraph(), nil); len(part) != 0 {
		t.Fatalf("empty graph partition = %v", part)
	}
	g := NewGraph()
	g.AddNode(5)
	part := Louvain(g, nil)
	if len(part) != 1 {
		t.Fatalf("singleton partition = %v", part)
	}
}

func TestNumCommunities(t *testing.T) {
	if got := NumCommunities(map[int]int{1: 0, 2: 0, 3: 1}); got != 2 {
		t.Fatalf("NumCommunities = %d, want 2", got)
	}
	if got := NumCommunities(nil); got != 0 {
		t.Fatalf("NumCommunities(nil) = %d, want 0", got)
	}
}

func BenchmarkLouvain100Nodes(b *testing.B) {
	rng := xrand.New(3)
	g := NewGraph()
	// 5 planted communities of 20 nodes.
	for c := 0; c < 5; c++ {
		for i := 0; i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				if rng.Bool(0.4) {
					g.AddEdge(c*20+i, c*20+j, 1)
				}
			}
		}
	}
	for e := 0; e < 100; e++ {
		g.AddEdge(rng.Intn(100), rng.Intn(100), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Louvain(g, xrand.New(int64(i)))
	}
}
