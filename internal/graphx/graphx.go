// Package graphx provides the weighted-graph machinery used to measure
// implicit specialization (paper §4.3): an undirected weighted graph of
// clients, Newman modularity, and Louvain community detection.
package graphx

import (
	"sort"

	"github.com/specdag/specdag/internal/xrand"
)

// Graph is an undirected weighted graph over integer node IDs. Parallel
// AddEdge calls accumulate weight. Self-loops are supported and, following
// the usual convention, contribute twice to a node's degree.
type Graph struct {
	adj   map[int]map[int]float64
	nodes map[int]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		adj:   make(map[int]map[int]float64),
		nodes: make(map[int]struct{}),
	}
}

// AddNode ensures u exists, even with no incident edges.
func (g *Graph) AddNode(u int) { g.nodes[u] = struct{}{} }

// AddEdge accumulates weight w onto the undirected edge {u, v}.
func (g *Graph) AddEdge(u, v int, w float64) {
	g.AddNode(u)
	g.AddNode(v)
	if g.adj[u] == nil {
		g.adj[u] = make(map[int]float64)
	}
	g.adj[u][v] += w
	if u == v {
		return
	}
	if g.adj[v] == nil {
		g.adj[v] = make(map[int]float64)
	}
	g.adj[v][u] += w
}

// Weight returns the weight of edge {u, v} (0 if absent).
func (g *Graph) Weight(u, v int) float64 { return g.adj[u][v] }

// Neighbors returns u's neighbors (including u itself if a self-loop
// exists) in ascending order.
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []int {
	out := make([]int, 0, len(g.nodes))
	for u := range g.nodes {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Degree returns the weighted degree of u; self-loops count twice.
func (g *Graph) Degree(u int) float64 {
	d := 0.0
	for v, w := range g.adj[u] {
		if v == u {
			d += 2 * w
		} else {
			d += w
		}
	}
	return d
}

// TotalWeight returns m, the sum of all edge weights (each undirected edge
// counted once; self-loops once).
func (g *Graph) TotalWeight() float64 {
	m := 0.0
	for u, nbrs := range g.adj {
		for v, w := range nbrs {
			if u < v {
				m += w
			} else if u == v {
				m += w
			}
		}
	}
	return m
}

// Modularity computes Newman's modularity Q ∈ [-1/2, 1] of the given
// partition (node -> community):
//
//	Q = (1/2m) Σ_ij [A_ij − k_i·k_j/(2m)] δ(c_i, c_j)
//
// Nodes missing from the partition are treated as singleton communities.
// A graph without edges has modularity 0 by convention.
func Modularity(g *Graph, partition map[int]int) float64 {
	m := g.TotalWeight()
	if m == 0 {
		return 0
	}
	two := 2 * m

	community := func(u int) int {
		if c, ok := partition[u]; ok {
			return c
		}
		// Singleton fallback: use a community ID that cannot collide with
		// provided IDs by offsetting with the node ID beyond any provided c.
		return -1 - u
	}

	// Σ of intra-community edge weights and of community degrees.
	intra := make(map[int]float64)
	degSum := make(map[int]float64)
	for _, u := range g.Nodes() {
		cu := community(u)
		degSum[cu] += g.Degree(u)
		for v, w := range g.adj[u] {
			cv := community(v)
			if cu != cv {
				continue
			}
			if u < v {
				intra[cu] += w
			} else if u == v {
				intra[cu] += w // self-loop counted once
			}
		}
	}

	q := 0.0
	for _, in := range intra {
		q += in / m
	}
	for _, ds := range degSum {
		q -= (ds / two) * (ds / two)
	}
	return q
}

// Louvain detects communities by modularity maximization (Blondel et al.):
// repeated local-move passes followed by graph aggregation, until no pass
// improves modularity. rng randomizes the node visiting order; pass nil for
// a deterministic ascending order.
//
// The returned map assigns every node a community ID in [0, #communities).
func Louvain(g *Graph, rng *xrand.RNG) map[int]int {
	if g.NumNodes() == 0 {
		return map[int]int{}
	}

	cur := g
	// current maps original node -> node ID in cur.
	current := make(map[int]int)
	for _, u := range g.Nodes() {
		current[u] = u
	}

	for level := 0; level < 64; level++ { // level cap guards non-termination
		local, improved := localMove(cur, rng)
		if !improved && level > 0 {
			break
		}
		// Compose: original node -> new community.
		for u, cu := range current {
			current[u] = local[cu]
		}
		if !improved {
			break
		}
		cur = aggregate(cur, local)
	}

	// Renumber communities densely for stable output.
	ids := make(map[int]int)
	out := make(map[int]int, len(current))
	for _, u := range g.Nodes() {
		c := current[u]
		id, ok := ids[c]
		if !ok {
			id = len(ids)
			ids[c] = id
		}
		out[u] = id
	}
	return out
}

// localMove runs one Louvain phase-1 pass: every node starts in its own
// community and greedily moves to the neighboring community with the best
// positive modularity gain, repeating until a full sweep makes no move.
func localMove(g *Graph, rng *xrand.RNG) (map[int]int, bool) {
	nodes := g.Nodes()
	if rng != nil {
		rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	}

	m := g.TotalWeight()
	comm := make(map[int]int, len(nodes))
	commDeg := make(map[int]float64) // Σ_tot per community
	for _, u := range nodes {
		comm[u] = u
		commDeg[u] += g.Degree(u)
	}
	if m == 0 {
		return comm, false
	}
	two := 2 * m

	improvedEver := false
	for sweep := 0; sweep < 128; sweep++ {
		moved := false
		for _, u := range nodes {
			cu := comm[u]
			ku := g.Degree(u)

			// Weight from u to each neighboring community.
			wTo := make(map[int]float64)
			for v, w := range g.adj[u] {
				if v == u {
					continue
				}
				wTo[comm[v]] += w
			}

			// Remove u from its community.
			commDeg[cu] -= ku

			// Gain of joining community c: wTo[c] − ku·Σ_tot(c)/2m.
			bestC, bestGain := cu, wTo[cu]-ku*commDeg[cu]/two
			// Deterministic iteration over candidate communities.
			cands := make([]int, 0, len(wTo))
			for c := range wTo {
				cands = append(cands, c)
			}
			sort.Ints(cands)
			for _, c := range cands {
				gain := wTo[c] - ku*commDeg[c]/two
				if gain > bestGain+1e-12 {
					bestGain = gain
					bestC = c
				}
			}

			commDeg[bestC] += ku
			if bestC != cu {
				comm[u] = bestC
				moved = true
				improvedEver = true
			}
		}
		if !moved {
			break
		}
	}
	return comm, improvedEver
}

// aggregate builds the next-level graph: one node per community, edge
// weights summed; intra-community weight becomes a self-loop.
func aggregate(g *Graph, comm map[int]int) *Graph {
	out := NewGraph()
	for c := range invertValues(comm) {
		out.AddNode(c)
	}
	for u, nbrs := range g.adj {
		cu := comm[u]
		for v, w := range nbrs {
			cv := comm[v]
			switch {
			case u < v:
				out.AddEdge(cu, cv, w)
			case u == v:
				out.AddEdge(cu, cv, w) // preserved self-loop
			}
		}
	}
	return out
}

func invertValues(m map[int]int) map[int]struct{} {
	out := make(map[int]struct{}, len(m))
	for _, v := range m {
		out[v] = struct{}{}
	}
	return out
}

// NumCommunities returns the number of distinct communities in a partition.
func NumCommunities(partition map[int]int) int {
	seen := make(map[int]struct{}, len(partition))
	for _, c := range partition {
		seen[c] = struct{}{}
	}
	return len(seen)
}
