package faults

import (
	"testing"

	"github.com/specdag/specdag/internal/xrand"
)

func ids(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"scalar", Scalar(0.5), true},
		{"negative delay", Config{Delay: -1}, false},
		{"drop without retransmit", Config{DropProb: 0.1}, false},
		{"drop with retransmit", Config{DropProb: 0.1, Retransmit: 2}, true},
		{"drop certainty", Config{DropProb: 1, Retransmit: 2}, false},
		{"straggler without factor", Config{StragglerFrac: 0.5}, false},
		{"straggler shrinking", Config{StragglerFrac: 0.5, StragglerFactor: 0.5}, false},
		{"straggler", Config{StragglerFrac: 0.5, StragglerFactor: 3}, true},
		{"churn without downtime", Config{ChurnFrac: 0.25}, false},
		{"churn", Config{ChurnFrac: 0.25, MaxDowntime: 10}, true},
		{"partition one group", Config{Partitions: []Partition{{From: 1, To: 2, Groups: 1}}}, false},
		{"partition inverted", Config{Partitions: []Partition{{From: 2, To: 1, Groups: 2}}}, false},
		{"partition overlap", Config{Partitions: []Partition{{From: 1, To: 5, Groups: 2}, {From: 4, To: 8, Groups: 2}}}, false},
		{"partitions sorted", Config{Partitions: []Partition{{From: 1, To: 5, Groups: 2}, {From: 5, To: 8, Groups: 3}}}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
}

func TestUniform(t *testing.T) {
	m, err := New(Scalar(0.5), xrand.New(1), ids(10), 100)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := m.Uniform(); !ok || d != 0.5 {
		t.Fatalf("Scalar model Uniform() = (%v, %v), want (0.5, true)", d, ok)
	}
	m, err = New(Config{Delay: 0.5, Jitter: 0.1}, xrand.New(1), ids(10), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Uniform(); ok {
		t.Fatal("jittered model reported Uniform() = true")
	}
}

// TestDeterminism pins that the whole schedule is a pure function of
// (config, seed, clients, horizon): two independently constructed models
// agree on every query, and a different seed produces a different schedule.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Delay: 0.5, Jitter: 0.3, DropProb: 0.2, Retransmit: 2, DupProb: 0.1,
		Partitions:    []Partition{{From: 20, To: 40, Groups: 2}},
		StragglerFrac: 0.3, StragglerFactor: 3,
		ChurnFrac: 0.3, MaxDowntime: 15,
	}
	a, err := New(cfg, xrand.New(42), ids(12), 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, xrand.New(42), ids(12), 100)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 12; id++ {
		if a.CycleFactor(id) != b.CycleFactor(id) {
			t.Fatalf("client %d: cycle factor %v vs %v", id, a.CycleFactor(id), b.CycleFactor(id))
		}
		wa, oka := a.CrashWindow(id)
		wb, okb := b.CrashWindow(id)
		if oka != okb || wa != wb {
			t.Fatalf("client %d: crash window (%v, %v) vs (%v, %v)", id, wa, oka, wb, okb)
		}
		for obs := 0; obs < 12; obs++ {
			da := a.Deliver(7, id, obs, 10)
			db := b.Deliver(7, id, obs, 10)
			if da != db {
				t.Fatalf("link %d->%d: delivery %+v vs %+v", id, obs, da, db)
			}
		}
	}
	// A different seed must not reproduce the same straggler/churn draw for
	// every client (astronomically unlikely if the seed actually matters).
	c, err := New(cfg, xrand.New(43), ids(12), 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for id := 0; id < 12; id++ {
		wa, _ := a.CrashWindow(id)
		wc, _ := c.CrashWindow(id)
		if a.CycleFactor(id) != c.CycleFactor(id) || wa != wc {
			same = false
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical schedules")
	}
}

func TestStragglerAndChurnCounts(t *testing.T) {
	cfg := Config{
		StragglerFrac: 0.25, StragglerFactor: 3,
		ChurnFrac: 0.5, MaxDowntime: 10,
	}
	m, err := New(cfg, xrand.New(7), ids(16), 100)
	if err != nil {
		t.Fatal(err)
	}
	stragglers, crashed := 0, 0
	for id := 0; id < 16; id++ {
		if m.CycleFactor(id) == 3 {
			stragglers++
		}
		if w, ok := m.CrashWindow(id); ok {
			crashed++
			if w.From < 0 || w.From >= 100 {
				t.Errorf("client %d crash start %v outside [0, horizon)", id, w.From)
			}
			if w.To <= w.From || w.To > w.From+10 {
				t.Errorf("client %d crash window %+v longer than MaxDowntime or empty", id, w)
			}
		}
	}
	if stragglers != 4 {
		t.Errorf("got %d stragglers, want 4 (25%% of 16)", stragglers)
	}
	if crashed != 8 {
		t.Errorf("got %d crashed clients, want 8 (50%% of 16)", crashed)
	}
	if m.CycleFactor(9999) != 1 {
		t.Error("unknown ID must never be a straggler")
	}
}

func TestCrashedAndRecovery(t *testing.T) {
	cfg := Config{ChurnFrac: 1, MaxDowntime: 10}
	m, err := New(cfg, xrand.New(3), ids(4), 100)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := m.CrashWindow(2)
	if !ok {
		t.Fatal("ChurnFrac 1 must crash every client")
	}
	if m.Crashed(2, w.From-0.001) || !m.Crashed(2, w.From) || m.Crashed(2, w.To) {
		t.Fatalf("crash window [%v, %v) must be half-open", w.From, w.To)
	}
	mid := (w.From + w.To) / 2
	if got := m.Recovery(2, mid); got != w.To {
		t.Fatalf("Recovery mid-window = %v, want %v", got, w.To)
	}
	if got := m.Recovery(2, w.To+1); got != w.To+1 {
		t.Fatalf("Recovery after the window = %v, want the query time", got)
	}
}

func TestPartitioned(t *testing.T) {
	cfg := Config{Partitions: []Partition{{From: 10, To: 20, Groups: 2}}}
	m, err := New(cfg, xrand.New(5), ids(8), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Find a split pair; with 8 clients and 2 groups one always exists
	// unless the draw degenerated, which the assertion below catches.
	var a, b = -1, -1
	for i := 0; i < 8 && a < 0; i++ {
		for j := i + 1; j < 8; j++ {
			if m.Partitioned(i, j, 15) {
				a, b = i, j
				break
			}
		}
	}
	if a < 0 {
		t.Fatal("no partitioned pair found inside the window")
	}
	if m.Partitioned(a, b, 5) || m.Partitioned(a, b, 20) {
		t.Error("partition must only hold inside [From, To)")
	}
	if m.Partitioned(a, a, 15) {
		t.Error("a client is never partitioned from itself")
	}
	if !m.PartitionDeferred(15, a, b, 18) {
		t.Error("message published mid-window across the split must be deferred while the window is live")
	}
	if m.PartitionDeferred(15, a, b, 20) {
		t.Error("heal time must release deferred messages")
	}
	if m.PartitionDeferred(5, a, b, 15) {
		t.Error("messages published before the window were already delivered")
	}
}

func TestDeliver(t *testing.T) {
	cfg := Config{
		Delay: 1, Jitter: 0.5, DropProb: 0.3, Retransmit: 2,
		Partitions: []Partition{{From: 10, To: 20, Groups: 2}},
	}
	m, err := New(cfg, xrand.New(11), ids(8), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Self-delivery: exactly the base delay, no drops, no duplicates.
	if d := m.Deliver(3, 2, 2, 7); d != (Delivery{VisibleAt: 8}) {
		t.Fatalf("self delivery = %+v, want bare base delay", d)
	}
	// Cross deliveries: at least base delay, jitter bounded, drops priced.
	for obs := 0; obs < 8; obs++ {
		d := m.Deliver(3, 2, obs, 7)
		min := 8.0 + float64(d.Dropped)*2
		if d.VisibleAt < min || (d.Dropped == 0 && d.VisibleAt >= 8.5 && !insidePartition(m, 2, obs, d.VisibleAt)) {
			t.Errorf("link 2->%d: VisibleAt %v outside [%v, %v) (+partition deferral), dropped %d", obs, d.VisibleAt, min, min+0.5, d.Dropped)
		}
	}
	// Partition deferral: a message arriving inside a separating window
	// waits for the heal.
	var split = -1
	for obs := 0; obs < 8; obs++ {
		if m.Partitioned(0, obs, 15) {
			split = obs
			break
		}
	}
	if split < 0 {
		t.Fatal("no partitioned pair")
	}
	plain := Config{Delay: 1, Partitions: cfg.Partitions}
	pm, err := New(plain, xrand.New(11), ids(8), 100)
	if err != nil {
		t.Fatal(err)
	}
	if d := pm.Deliver(0, 0, split, 12); d.VisibleAt != 20 {
		t.Fatalf("mid-partition delivery arrives at %v, want deferral to heal time 20", d.VisibleAt)
	}
	if d := pm.Deliver(0, 0, split, 5); d.VisibleAt != 6 {
		t.Fatalf("pre-partition delivery arrives at %v, want 6", d.VisibleAt)
	}
}

func insidePartition(m *Model, a, b int, t float64) bool {
	return m.Partitioned(a, b, t)
}

func TestConfigEqual(t *testing.T) {
	a := Config{Delay: 0.5, Partitions: []Partition{{From: 1, To: 2, Groups: 2}}}
	b := Config{Delay: 0.5, Partitions: []Partition{{From: 1, To: 2, Groups: 2}}}
	if !a.Equal(b) {
		t.Fatal("identical configs must compare equal")
	}
	b.Partitions[0].Groups = 3
	if a.Equal(b) {
		t.Fatal("different partition groups must compare unequal")
	}
	if a.Equal(Config{Delay: 0.5}) {
		t.Fatal("missing partitions must compare unequal")
	}
}
