// Package faults is the deterministic fault-injection subsystem: it turns a
// declarative fault schedule (Config) into a Model — a pure function of
// (config, seed, client set, horizon) that both engines consult for
// per-(publisher, observer) message visibility, scheduled network partitions
// that split and heal the federation, per-client straggler slowdowns, and
// client crash/recover churn windows.
//
// Everything is driven by internal/xrand seed splits keyed on stable
// identifiers (client IDs, publish sequence numbers), never by stream
// position: the same configuration and seed produce bit-identical fault
// schedules for any worker count, and a run resumed from a checkpoint
// re-derives the exact schedule the uninterrupted run had. The package is one
// of speclint's deterministic packages — no wall clock, no ambient
// randomness.
//
// The zero-cost degenerate case matters as much as the faults: Scalar(d)
// describes the engines' historical uniform broadcast delay, and a Model
// whose Uniform() reports true routes the async engine through its original
// single-visibility code path with unchanged numerics (pinned by the
// equivalence tests in internal/core).
package faults

import (
	"fmt"
	"math"
	"sort"

	"github.com/specdag/specdag/internal/xrand"
)

// Partition is one scheduled network split: during [From, To) the federation
// is divided into Groups disjoint groups (membership drawn deterministically
// per window from the seed) and messages do not cross group boundaries. At
// To the partition heals and deferred messages are delivered. Times are in
// the host engine's units — simulated seconds for the async engine, rounds
// for the synchronous one.
type Partition struct {
	From, To float64
	Groups   int
}

// Config declares a fault schedule. It is pure data: gob-serializable,
// comparable via Equal, and embedded verbatim in the SDA1/SDC1 checkpoint
// fault sections so a resume under a different schedule is rejected instead
// of silently diverging.
//
// The network fields (Delay, Jitter, DropProb, Retransmit, DupProb) shape
// per-(publisher, observer) delivery and apply to the async engine; the
// synchronous engine's round grid has its own delivery model (RevealDelay)
// and consults only Partitions and churn. Stragglers apply to the async
// engine's cycle times.
type Config struct {
	// Delay is the base one-way broadcast delay applied to every
	// (publisher, observer) link, including the publisher's own delivery —
	// exactly the semantics of the engines' historical scalar NetworkDelay.
	Delay float64
	// Jitter adds a per-(transaction, observer) uniform extra delay in
	// [0, Jitter): the heterogeneous-latency half of a latency matrix.
	Jitter float64
	// DropProb is the probability that one delivery attempt of a message on
	// one link is lost. Lost deliveries are recovered by periodic re-gossip:
	// each loss defers that observer's delivery by Retransmit. Must be < 1.
	DropProb float64
	// Retransmit is the re-gossip period that recovers dropped deliveries.
	// Required positive when DropProb > 0.
	Retransmit float64
	// DupProb is the probability that a link delivers a message twice. A
	// duplicate is idempotent for the DAG (the reveal is a no-op) but counts
	// toward the run's communication statistics.
	DupProb float64
	// Partitions are the scheduled split-and-heal windows, non-overlapping
	// and sorted by From.
	Partitions []Partition
	// StragglerFrac selects round(StragglerFrac · clients) clients whose
	// cycle time is multiplied by StragglerFactor (async engine).
	StragglerFrac   float64
	StragglerFactor float64
	// ChurnFrac selects round(ChurnFrac · clients) clients that each crash
	// once: during a window drawn within the run horizon (length up to
	// MaxDowntime) the client does not activate; it recovers at the window's
	// end. Required: MaxDowntime > 0 when ChurnFrac > 0.
	ChurnFrac   float64
	MaxDowntime float64
}

// Scalar is the compatibility schedule: the engines' historical uniform
// broadcast delay and nothing else. A model built from it reports
// Uniform() == (delay, true).
func Scalar(delay float64) Config { return Config{Delay: delay} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"Delay", c.Delay}, {"Jitter", c.Jitter}, {"Retransmit", c.Retransmit},
		{"DupProb", c.DupProb}, {"MaxDowntime", c.MaxDowntime},
	} {
		if v.val < 0 || math.IsNaN(v.val) || math.IsInf(v.val, 0) {
			return fmt.Errorf("faults: %s must be finite and >= 0, got %v", v.name, v.val)
		}
	}
	if c.DropProb < 0 || c.DropProb >= 1 || math.IsNaN(c.DropProb) {
		return fmt.Errorf("faults: DropProb must be in [0, 1), got %v", c.DropProb)
	}
	if c.DropProb > 0 && c.Retransmit <= 0 {
		return fmt.Errorf("faults: DropProb %v needs a positive Retransmit period to recover lost deliveries", c.DropProb)
	}
	if c.DupProb >= 1 {
		return fmt.Errorf("faults: DupProb must be in [0, 1), got %v", c.DupProb)
	}
	if c.StragglerFrac < 0 || c.StragglerFrac > 1 || math.IsNaN(c.StragglerFrac) {
		return fmt.Errorf("faults: StragglerFrac must be in [0, 1], got %v", c.StragglerFrac)
	}
	if c.StragglerFrac > 0 && c.StragglerFactor < 1 {
		return fmt.Errorf("faults: StragglerFactor must be >= 1 when StragglerFrac > 0, got %v", c.StragglerFactor)
	}
	if c.ChurnFrac < 0 || c.ChurnFrac > 1 || math.IsNaN(c.ChurnFrac) {
		return fmt.Errorf("faults: ChurnFrac must be in [0, 1], got %v", c.ChurnFrac)
	}
	if c.ChurnFrac > 0 && c.MaxDowntime <= 0 {
		return fmt.Errorf("faults: ChurnFrac %v needs a positive MaxDowntime", c.ChurnFrac)
	}
	last := math.Inf(-1)
	for i, p := range c.Partitions {
		if math.IsNaN(p.From) || math.IsNaN(p.To) || math.IsInf(p.From, 0) || math.IsInf(p.To, 0) {
			return fmt.Errorf("faults: partition %d has non-finite window [%v, %v)", i, p.From, p.To)
		}
		if p.From < 0 || p.To < p.From {
			return fmt.Errorf("faults: partition %d has invalid window [%v, %v)", i, p.From, p.To)
		}
		if p.Groups < 2 {
			return fmt.Errorf("faults: partition %d needs Groups >= 2, got %d", i, p.Groups)
		}
		if p.From < last {
			return fmt.Errorf("faults: partition %d window [%v, %v) overlaps or precedes the previous window (schedule must be sorted and non-overlapping)", i, p.From, p.To)
		}
		last = p.To
	}
	return nil
}

// Enabled reports whether the schedule contains any fault at all (a nil or
// zero Config means the engines skip fault bookkeeping entirely).
func (c Config) Enabled() bool {
	return c.Delay != 0 || !c.uniform()
}

// uniform reports whether the schedule is exactly the historical uniform
// broadcast delay: no per-link variation, no partitions, no stragglers, no
// churn, no drops or duplicates.
func (c Config) uniform() bool {
	return c.Jitter == 0 && c.DropProb == 0 && c.DupProb == 0 &&
		len(c.Partitions) == 0 && c.StragglerFrac == 0 && c.ChurnFrac == 0
}

// Equal reports whether two schedules are identical field-for-field. It is
// the checkpoint resume guard: a snapshot taken under one schedule must not
// resume under another.
func (c Config) Equal(o Config) bool {
	if c.Delay != o.Delay || c.Jitter != o.Jitter || c.DropProb != o.DropProb ||
		c.Retransmit != o.Retransmit || c.DupProb != o.DupProb ||
		c.StragglerFrac != o.StragglerFrac || c.StragglerFactor != o.StragglerFactor ||
		c.ChurnFrac != o.ChurnFrac || c.MaxDowntime != o.MaxDowntime ||
		len(c.Partitions) != len(o.Partitions) {
		return false
	}
	for i, p := range c.Partitions {
		if p != o.Partitions[i] {
			return false
		}
	}
	return true
}

// Window is a client's crash window (inspection and test hooks).
type Window struct {
	From, To float64
}

// Model is one run's instantiated fault schedule. It is immutable after New
// and safe for concurrent readers: every query is a pure lookup or a pure
// seed-split draw, so distinct worker goroutines can consult it freely.
type Model struct {
	cfg     Config
	rng     *xrand.RNG // split "faults" off the run's root; never advanced
	horizon float64

	// Per-client derived schedule, keyed by client ID.
	cycleFactor map[int]float64
	crash       map[int]Window
	// groups[w][id] is the client's group in partition window w.
	groups []map[int]int
}

// New instantiates the schedule for one run: root is the run's root RNG
// (New splits from it without advancing it), clientIDs the federation's
// client IDs, and horizon the run's time extent in engine units (simulated
// seconds for async, rounds for sync). The result is a pure function of
// (cfg, root seed, clientIDs, horizon) — reconstructing it after a
// checkpoint resume yields the identical schedule.
func New(cfg Config, root *xrand.RNG, clientIDs []int, horizon float64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ids := append([]int(nil), clientIDs...)
	sort.Ints(ids)
	m := &Model{
		cfg:         cfg,
		rng:         root.Split("faults"),
		horizon:     horizon,
		cycleFactor: make(map[int]float64, len(ids)),
		crash:       make(map[int]Window),
	}

	for _, id := range ids {
		m.cycleFactor[id] = 1
	}
	if cfg.StragglerFrac > 0 {
		n := int(math.Round(cfg.StragglerFrac * float64(len(ids))))
		for _, i := range m.rng.Split("stragglers").SampleWithoutReplacement(len(ids), n) {
			m.cycleFactor[ids[i]] = cfg.StragglerFactor
		}
	}
	if cfg.ChurnFrac > 0 {
		n := int(math.Round(cfg.ChurnFrac * float64(len(ids))))
		for _, i := range m.rng.Split("churn").SampleWithoutReplacement(len(ids), n) {
			id := ids[i]
			wrng := m.rng.SplitIndex("churn-window", id)
			from := wrng.Float64() * horizon
			to := from + (0.25+0.75*wrng.Float64())*cfg.MaxDowntime
			m.crash[id] = Window{From: from, To: to}
		}
	}
	m.groups = make([]map[int]int, len(cfg.Partitions))
	for w, p := range cfg.Partitions {
		g := make(map[int]int, len(ids))
		for _, id := range ids {
			g[id] = m.rng.SplitIndex("partition-group", w*1_000_003+id).Intn(p.Groups)
		}
		m.groups[w] = g
	}
	return m, nil
}

// Config returns the schedule the model was built from.
func (m *Model) Config() Config { return m.cfg }

// Uniform reports whether the model degenerates to the historical uniform
// broadcast delay, and that delay. Engines use it to keep the scalar
// compatibility path — and its exact numerics — when no real fault is
// scheduled.
func (m *Model) Uniform() (float64, bool) {
	return m.cfg.Delay, m.cfg.uniform()
}

// CycleFactor returns the client's cycle-time multiplier: 1 for ordinary
// clients, Config.StragglerFactor for selected stragglers. Unknown IDs
// (attackers, late joiners) are never stragglers.
func (m *Model) CycleFactor(id int) float64 {
	if f, ok := m.cycleFactor[id]; ok {
		return f
	}
	return 1
}

// Crashed reports whether the client is inside its crash window at time t.
func (m *Model) Crashed(id int, t float64) bool {
	w, ok := m.crash[id]
	return ok && t >= w.From && t < w.To
}

// CrashWindow returns the client's crash window, if it has one.
func (m *Model) CrashWindow(id int) (Window, bool) {
	w, ok := m.crash[id]
	return w, ok
}

// Recovery returns the time the client next recovers at or after t — the
// async engine reschedules a crashed client's activation there. When the
// client is not crashed at t, Recovery returns t.
func (m *Model) Recovery(id int, t float64) float64 {
	if m.Crashed(id, t) {
		return m.crash[id].To
	}
	return t
}

// groupOf returns the client's group in partition window w. IDs outside the
// federation (attackers) draw a group the same way, so the schedule extends
// to them deterministically.
func (m *Model) groupOf(w, id int) int {
	if g, ok := m.groups[w][id]; ok {
		return g
	}
	return m.rng.SplitIndex("partition-group", w*1_000_003+id).Intn(m.cfg.Partitions[w].Groups)
}

// Partitioned reports whether clients a and b are in different partition
// groups at time t.
func (m *Model) Partitioned(a, b int, t float64) bool {
	if a == b {
		return false
	}
	for w, p := range m.cfg.Partitions {
		if t >= p.From && t < p.To && m.groupOf(w, a) != m.groupOf(w, b) {
			return true
		}
	}
	return false
}

// PartitionDeferred reports whether a message published at pubTime by
// publisher is still withheld from observer at time now because the window
// containing pubTime separates them and has not healed yet. This is the
// synchronous engine's visibility rule: its round grid delivers everything
// published before the current round except what a live partition holds back.
func (m *Model) PartitionDeferred(pubTime float64, publisher, observer int, now float64) bool {
	if publisher == observer {
		return false
	}
	for w, p := range m.cfg.Partitions {
		if pubTime >= p.From && pubTime < p.To && now < p.To && m.groupOf(w, publisher) != m.groupOf(w, observer) {
			return true
		}
	}
	return false
}

// Delivery is one link's delivery outcome for one message.
type Delivery struct {
	// VisibleAt is the time the message becomes visible to the observer.
	VisibleAt float64
	// Dropped counts initial-broadcast losses recovered by re-gossip.
	Dropped int
	// Duplicated reports a duplicate delivery (stats only; the DAG reveal is
	// idempotent).
	Duplicated bool
}

// Deliver computes the delivery of publish #pubSeq, published by publisher
// at pubTime, to observer. It is a pure function of (model, pubSeq,
// publisher, observer, pubTime) — the same arguments always produce the same
// outcome, which is what makes fault schedules worker-count invariant and
// checkpoint-resumable.
//
// The delivery time is pubTime + Delay, plus a per-link jitter draw, plus
// one Retransmit period per lost gossip attempt; if the resulting arrival
// falls inside a partition window separating the two clients, delivery
// defers to the window's heal time. The publisher's own delivery uses the
// same base delay (matching the engines' historical semantics) but never
// drops, duplicates, or defers.
func (m *Model) Deliver(pubSeq, publisher, observer int, pubTime float64) Delivery {
	d := Delivery{VisibleAt: pubTime + m.cfg.Delay}
	if observer == publisher {
		return d
	}
	if m.cfg.Jitter > 0 || m.cfg.DropProb > 0 || m.cfg.DupProb > 0 {
		rng := m.rng.SplitIndex("deliver", pubSeq).SplitIndex("observer", observer)
		if m.cfg.Jitter > 0 {
			d.VisibleAt += rng.Float64() * m.cfg.Jitter
		}
		for m.cfg.DropProb > 0 && rng.Float64() < m.cfg.DropProb {
			d.VisibleAt += m.cfg.Retransmit
			d.Dropped++
			if d.Dropped >= 64 {
				break // DropProb < 1 makes this unreachable in practice; hard cap regardless
			}
		}
		if m.cfg.DupProb > 0 && rng.Float64() < m.cfg.DupProb {
			d.Duplicated = true
		}
	}
	// A message whose arrival falls inside a window that separates the two
	// clients waits for the heal. Windows are sorted and non-overlapping, so
	// one ascending pass settles the final arrival.
	for w, p := range m.cfg.Partitions {
		if d.VisibleAt >= p.From && d.VisibleAt < p.To && m.groupOf(w, publisher) != m.groupOf(w, observer) {
			d.VisibleAt = p.To
		}
	}
	return d
}
