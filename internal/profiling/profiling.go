// Package profiling is the shared pprof plumbing behind the CLIs'
// -cpuprofile/-memprofile flags, so hot-path work on the simulator is
// profile-driven rather than guessed:
//
//	experiments -exp fig9 -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins CPU profiling into path and returns a stop function that
// flushes and closes the profile.
func StartCPU(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("creating CPU profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("starting CPU profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap records an up-to-date heap profile to path.
func WriteHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating memory profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // up-to-date live-object statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("writing memory profile: %w", err)
	}
	return nil
}
