// Package profiling is the shared pprof plumbing behind the CLIs'
// -cpuprofile/-memprofile flags, so hot-path work on the simulator is
// profile-driven rather than guessed:
//
//	experiments -exp fig9 -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// StartCPU begins CPU profiling into path and returns a stop function that
// flushes and closes the profile.
func StartCPU(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("creating CPU profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("starting CPU profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap records an up-to-date heap profile to path.
func WriteHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating memory profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // up-to-date live-object statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("writing memory profile: %w", err)
	}
	return nil
}

// Stopwatch measures a wall-clock duration for advisory timing metrics
// (e.g. Config.MeasureWalkTime's walk-duration figures). It exists so
// deterministic packages never touch the clock directly: speclint's detrand
// analyzer forbids time.Now there, and this type is the audited choke point
// for measurements that are reported but never fed back into results.
type Stopwatch struct {
	start time.Time
}

// StartStopwatch begins a wall-clock measurement.
func StartStopwatch() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the wall-clock time since the stopwatch was started.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}
