package fl

import (
	"strings"
	"testing"

	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/nn"
)

func smallFed(seed int64) *dataset.Federation {
	return dataset.FMNISTClustered(dataset.FMNISTConfig{
		Clients:        12,
		TrainPerClient: 60,
		TestPerClient:  15,
		Seed:           seed,
	})
}

func smallConfig() Config {
	return Config{
		Rounds:          15,
		ClientsPerRound: 4,
		Local:           nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            nn.Arch{In: 64, Hidden: []int{32}, Out: 10},
		Seed:            7,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"valid", func(c *Config) {}, false},
		{"no rounds", func(c *Config) { c.Rounds = 0 }, true},
		{"no clients", func(c *Config) { c.ClientsPerRound = 0 }, true},
		{"bad arch", func(c *Config) { c.Arch.In = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(&dataset.Federation{}, smallConfig()); err == nil {
		t.Error("empty federation should be rejected")
	}
	cfg := smallConfig()
	cfg.Rounds = 0
	if _, err := Run(smallFed(1), cfg); err == nil {
		t.Error("bad config should be rejected")
	}
}

func TestFedAvgLearns(t *testing.T) {
	res, err := Run(smallFed(1), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "fedavg" {
		t.Fatalf("algorithm = %q", res.Algorithm)
	}
	if len(res.Rounds) != 15 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	accs := res.MeanAccs()
	first, last := accs[0], accs[len(accs)-1]
	if last < first+0.1 {
		t.Fatalf("FedAvg did not learn: acc %v -> %v", first, last)
	}
	if last < 0.4 {
		t.Fatalf("FedAvg final accuracy too low: %v", last)
	}
}

func TestFedProxLabelAndConvergence(t *testing.T) {
	cfg := smallConfig()
	cfg.ProxMu = 0.1
	res, err := Run(smallFed(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Algorithm, "fedprox") {
		t.Fatalf("algorithm = %q", res.Algorithm)
	}
	accs := res.MeanAccs()
	if accs[len(accs)-1] < 0.35 {
		t.Fatalf("FedProx failed to learn: %v", accs[len(accs)-1])
	}
}

func TestRoundResultShape(t *testing.T) {
	res, err := Run(smallFed(3), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range res.Rounds {
		if len(rr.Selected) != 4 || len(rr.Accs) != 4 || len(rr.Losses) != 4 {
			t.Fatalf("round %d has wrong arity: %+v", rr.Round, rr)
		}
		for _, a := range rr.Accs {
			if a < 0 || a > 1 {
				t.Fatalf("accuracy out of range: %v", a)
			}
		}
		for _, l := range rr.Losses {
			if l < 0 {
				t.Fatalf("negative loss: %v", l)
			}
		}
	}
	if res.Final == nil {
		t.Fatal("missing final model")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(smallFed(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallFed(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rounds {
		if a.Rounds[i].MeanAcc != b.Rounds[i].MeanAcc {
			t.Fatal("runs with identical seeds diverged")
		}
	}
}

func TestMeanCurvesLengths(t *testing.T) {
	res, err := Run(smallFed(5), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanAccs()) != 15 || len(res.MeanLosses()) != 15 {
		t.Fatal("curve lengths wrong")
	}
}

func TestFedProxStaysCloserToGlobal(t *testing.T) {
	// On strongly non-IID data, FedProx should not do worse than FedAvg on
	// the FedProx synthetic set (directional check of §5.3.3).
	fed := dataset.FedProxSynthetic(dataset.FedProxConfig{Clients: 12, MaxSamples: 200, Seed: 6})
	base := Config{
		Rounds:          20,
		ClientsPerRound: 5,
		Local:           nn.SGDConfig{LR: 0.03, Epochs: 2, BatchSize: 10},
		Arch:            nn.Arch{In: 60, Out: 10},
		Seed:            8,
	}
	avg, err := Run(fed, base)
	if err != nil {
		t.Fatal(err)
	}
	proxCfg := base
	proxCfg.ProxMu = 0.5
	prox, err := Run(fed, proxCfg)
	if err != nil {
		t.Fatal(err)
	}
	avgLoss := avg.MeanLosses()
	proxLoss := prox.MeanLosses()
	// Compare the tail means to tolerate per-round noise.
	tail := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs[len(xs)-5:] {
			s += v
		}
		return s / 5
	}
	if tail(proxLoss) > tail(avgLoss)*1.5 {
		t.Fatalf("FedProx much worse than FedAvg: %v vs %v", tail(proxLoss), tail(avgLoss))
	}
}

func BenchmarkFedAvgRound(b *testing.B) {
	fed := smallFed(9)
	cfg := smallConfig()
	cfg.Rounds = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(fed, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFLOversubscriptionRejected mirrors core's check: sampling more
// clients than the federation holds fails at construction with an
// actionable message for both baselines.
func TestFLOversubscriptionRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.ClientsPerRound = 13 // federation has 12
	if _, err := NewFederated(smallFed(10), cfg); err == nil || !strings.Contains(err.Error(), "12 clients") {
		t.Fatalf("federated oversubscription not rejected: %v", err)
	}
	gcfg := GossipConfig{Rounds: 5, ClientsPerRound: 13, Local: cfg.Local, Arch: cfg.Arch, Seed: 1}
	if _, err := NewGossip(smallFed(10), gcfg); err == nil || !strings.Contains(err.Error(), "12 clients") {
		t.Fatalf("gossip oversubscription not rejected: %v", err)
	}
}

// TestFedAvgWorkerInvariance: the new per-client training fan-out must be
// bit-identical for any worker count (each client trains a private clone
// with a pure split RNG stream; aggregation happens in sampling order).
func TestFedAvgWorkerInvariance(t *testing.T) {
	run := func(workers int) *Result {
		cfg := smallConfig()
		cfg.Workers = workers
		cfg.ProxMu = 0.1 // exercise the proximal path too
		res, err := Run(smallFed(11), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	for i := range a.Rounds {
		x, y := a.Rounds[i], b.Rounds[i]
		if x.MeanAcc != y.MeanAcc || x.MeanLoss != y.MeanLoss {
			t.Fatalf("round %d diverged across worker counts", i)
		}
		for j := range x.Accs {
			if x.Accs[j] != y.Accs[j] || x.Losses[j] != y.Losses[j] || x.Selected[j] != y.Selected[j] {
				t.Fatalf("round %d client %d diverged across worker counts", i, j)
			}
		}
	}
	fa, fb := a.Final.ParamsCopy(), b.Final.ParamsCopy()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("final global models diverged across worker counts")
		}
	}
}

func TestFLWorkersValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Workers should be rejected")
	}
}
