// Package fl implements the centralized federated-learning baselines the
// paper compares against (§5.3.2, §5.3.3): Federated Averaging (FedAvg,
// McMahan et al.) and FedProx (Li et al.), which adds a proximal term to the
// local objective to stabilize convergence on heterogeneous (non-IID) data —
// plus gossip learning, the serverless decentralized baseline (§3.2).
//
// FedAvg/FedProx run the classic client-server loop: each round the server
// samples a subset of clients, ships them the global model, the clients
// train locally and return updated parameters, and the server aggregates
// them weighted by local sample counts.
//
// Both baselines are exposed as steppers (Federated, Gossip) implementing
// the unified run API, so one specdag.Run call drives them with the same
// cancellation, observation and worker-budget machinery as the DAG engines.
package fl

import (
	"context"
	"fmt"

	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/xrand"
)

// Config parameterizes a FedAvg/FedProx run.
type Config struct {
	// Rounds is the number of communication rounds (Table 1: 100).
	Rounds int
	// ClientsPerRound is the number of clients sampled per round
	// (Table 1: 10).
	ClientsPerRound int
	// Local configures the client-side SGD (learning rate, epochs, batch
	// size, max batches — Table 1).
	Local nn.SGDConfig
	// ProxMu, when positive, turns the run into FedProx with the given
	// proximal coefficient; 0 gives plain FedAvg.
	ProxMu float64
	// Arch is the model architecture shared by server and clients.
	Arch nn.Arch
	// Workers bounds the goroutines that train the round's sampled clients
	// concurrently. 0 (the default) uses runtime.NumCPU(). Results are
	// bit-identical for every worker count: each client trains a private
	// clone of the global model with its own split RNG stream, and updates
	// are aggregated in sampling order.
	Workers int
	// Pool, when set, is the shared worker budget the per-client fan-out
	// draws from (see core.Config.Pool).
	Pool *par.Budget
	// Seed drives client sampling, initialization and batch shuffling.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("fl: Rounds must be positive, got %d", c.Rounds)
	}
	if c.ClientsPerRound <= 0 {
		return fmt.Errorf("fl: ClientsPerRound must be positive, got %d", c.ClientsPerRound)
	}
	if c.Workers < 0 {
		return fmt.Errorf("fl: Workers must be >= 0, got %d", c.Workers)
	}
	if err := c.Arch.Validate(); err != nil {
		return err
	}
	return nil
}

// RoundResult captures the evaluation of one communication round: the
// aggregated global model scored on the local test data of every client
// selected in that round (the quantity plotted in Figs. 9-11).
type RoundResult struct {
	Round    int
	Selected []int // client IDs sampled this round
	// Accs and Losses are per-selected-client results of the *new* global
	// model on that client's local test split.
	Accs   []float64
	Losses []float64
	// MeanAcc and MeanLoss are their means.
	MeanAcc  float64
	MeanLoss float64
}

// Result is a full run: per-round results plus the final global model.
type Result struct {
	Algorithm string
	Rounds    []RoundResult
	Final     *nn.MLP
}

// Federated is a running FedAvg/FedProx experiment: the centralized
// counterpart of core.Simulation, advanced one communication round at a
// time through the unified run API.
type Federated struct {
	cfg     Config
	fed     *dataset.Federation
	root    *xrand.RNG
	sampler *xrand.RNG
	global  *nn.MLP
	// Per-client train/test data: zero-copy views of the federation's flat
	// storage (this engine never mutates features or labels).
	trainX []mathx.Matrix
	trainY [][]int
	testX  []mathx.Matrix
	testY  [][]int
	res    *Result
	round  int
	// evalScratch holds one lazily created scratch model per parallel
	// evaluation slot, so the per-round fan-out evaluates the new global
	// model via zero-copy parameter aliasing (nn.EvaluateParams) instead of
	// cloning the model once per client per round.
	evalScratch []*nn.MLP
}

var (
	_ engine.Engine   = (*Federated)(nil)
	_ engine.PoolUser = (*Federated)(nil)
)

// NewFederated validates inputs and prepares a FedAvg/FedProx run.
func NewFederated(fed *dataset.Federation, cfg Config) (*Federated, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fed.Validate(); err != nil {
		return nil, err
	}
	if cfg.ClientsPerRound > len(fed.Clients) {
		return nil, fmt.Errorf("fl: ClientsPerRound %d exceeds the federation's %d clients — a round samples without replacement, so reduce ClientsPerRound or enlarge the federation",
			cfg.ClientsPerRound, len(fed.Clients))
	}
	root := xrand.New(cfg.Seed)
	algo := "fedavg"
	if cfg.ProxMu > 0 {
		algo = fmt.Sprintf("fedprox(mu=%g)", cfg.ProxMu)
	}
	f := &Federated{
		cfg:     cfg,
		fed:     fed,
		root:    root,
		sampler: root.Split("sampler"),
		global:  nn.New(cfg.Arch, root.Split("init")),
		res:     &Result{Algorithm: algo},
	}
	// Wire up the flat per-client views once; nothing is copied.
	f.trainX = make([]mathx.Matrix, len(fed.Clients))
	f.trainY = make([][]int, len(fed.Clients))
	f.testX = make([]mathx.Matrix, len(fed.Clients))
	f.testY = make([][]int, len(fed.Clients))
	for i, c := range fed.Clients {
		f.trainX[i], f.trainY[i] = c.Train.X, c.Train.Y
		f.testX[i], f.testY[i] = c.Test.X, c.Test.Y
	}
	return f, nil
}

// Name implements engine.Engine ("fedavg" or "fedprox(mu=…)").
func (f *Federated) Name() string { return f.res.Algorithm }

// SetPool implements engine.PoolUser (see Config.Pool).
func (f *Federated) SetPool(b *par.Budget) { f.cfg.Pool = b }

// Round returns the number of rounds executed so far.
func (f *Federated) Round() int { return f.round }

// Result returns the run so far: per-round results plus the current global
// model. It is valid mid-run (partial results after a canceled run) as well
// as after completion.
func (f *Federated) Result() *Result {
	f.res.Final = f.global
	return f.res
}

// Step implements engine.Engine: one communication round — sample, local
// training (fanned over Workers, bit-identical for any count), weighted
// aggregation, evaluation of the new global model on the selected clients.
func (f *Federated) Step(ctx context.Context) (*engine.StepResult, bool, error) {
	if f.round >= f.cfg.Rounds {
		return nil, true, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	round := f.round
	idxs := f.sampler.SampleWithoutReplacement(len(f.fed.Clients), f.cfg.ClientsPerRound)

	// Local training: every sampled client trains a private clone of the
	// global model with its own pure split RNG stream; updates land in
	// sampling order, so the aggregation below matches the sequential loop.
	updates := make([][]float64, len(idxs))
	weights := make([]float64, len(idxs))
	globalParams := f.global.ParamsCopy()
	par.ForEachIn(f.cfg.Pool, f.cfg.Workers, len(idxs), func(k int) {
		ci := idxs[k]
		local := f.global.Clone()
		localCfg := f.cfg.Local
		localCfg.Shuffle = true
		if f.cfg.ProxMu > 0 {
			localCfg.ProxMu = f.cfg.ProxMu
			localCfg.ProxCenter = globalParams
		}
		local.Train(f.trainX[ci], f.trainY[ci], localCfg, f.root.SplitIndex("train", round*1000+ci))
		updates[k] = local.ParamsCopy()
		weights[k] = float64(len(f.trainY[ci]))
	})
	f.global.SetParams(nn.WeightedAverageParams(updates, weights))

	// Evaluate the new global model on every selected client's test split.
	// A sequential run evaluates on the global model in place; parallel
	// workers alias the new parameters from per-slot scratch models
	// (Evaluate reuses scratch buffers, so the shared model must not run
	// concurrently) — no per-round model clones.
	rr := RoundResult{Round: round}
	accs := make([]float64, len(idxs))
	losses := make([]float64, len(idxs))
	if par.Workers(f.cfg.Workers) == 1 {
		for k, ci := range idxs {
			losses[k], accs[k] = f.global.Evaluate(f.testX[ci], f.testY[ci])
		}
	} else {
		if f.evalScratch == nil {
			f.evalScratch = make([]*nn.MLP, len(idxs))
		}
		newParams := f.global.Params() // read-only during the fan-out
		par.ForEachIn(f.cfg.Pool, f.cfg.Workers, len(idxs), func(k int) {
			if f.evalScratch[k] == nil {
				f.evalScratch[k] = f.global.Clone()
			}
			losses[k], accs[k] = f.evalScratch[k].EvaluateParams(newParams, f.testX[idxs[k]], f.testY[idxs[k]])
		})
	}
	for k, ci := range idxs {
		rr.Selected = append(rr.Selected, f.fed.Clients[ci].ID)
		rr.Accs = append(rr.Accs, accs[k])
		rr.Losses = append(rr.Losses, losses[k])
		rr.MeanAcc += accs[k]
		rr.MeanLoss += losses[k]
	}
	n := float64(len(idxs))
	rr.MeanAcc /= n
	rr.MeanLoss /= n
	f.res.Rounds = append(f.res.Rounds, rr)
	f.round++

	return &engine.StepResult{Round: engine.RoundEvent{
		Engine:   f.Name(),
		Round:    round,
		MeanAcc:  rr.MeanAcc,
		MeanLoss: rr.MeanLoss,
		Detail:   &f.res.Rounds[len(f.res.Rounds)-1],
	}}, false, nil
}

// Run executes FedAvg (or FedProx when cfg.ProxMu > 0) to completion.
//
// Deprecated: Run cannot be canceled or observed mid-flight. New code
// should construct the engine with NewFederated and drive it through the
// unified run API — specdag.Run(ctx, fedEngine, opts...) — then read
// Result; Run is kept as a thin convenience wrapper.
func Run(fed *dataset.Federation, cfg Config) (*Result, error) {
	f, err := NewFederated(fed, cfg)
	if err != nil {
		return nil, err
	}
	for {
		_, done, err := f.Step(context.Background())
		if err != nil {
			return nil, err
		}
		if done {
			return f.Result(), nil
		}
	}
}

// MeanAccs returns the per-round mean accuracy curve.
func (r *Result) MeanAccs() []float64 {
	out := make([]float64, len(r.Rounds))
	for i, rr := range r.Rounds {
		out[i] = rr.MeanAcc
	}
	return out
}

// MeanLosses returns the per-round mean loss curve.
func (r *Result) MeanLosses() []float64 {
	out := make([]float64, len(r.Rounds))
	for i, rr := range r.Rounds {
		out[i] = rr.MeanLoss
	}
	return out
}
