// Package fl implements the centralized federated-learning baselines the
// paper compares against (§5.3.2, §5.3.3): Federated Averaging (FedAvg,
// McMahan et al.) and FedProx (Li et al.), which adds a proximal term to the
// local objective to stabilize convergence on heterogeneous (non-IID) data.
//
// Both run the classic client-server loop: each round the server samples a
// subset of clients, ships them the global model, the clients train locally
// and return updated parameters, and the server aggregates them weighted by
// local sample counts.
package fl

import (
	"fmt"

	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/xrand"
)

// Config parameterizes a FedAvg/FedProx run.
type Config struct {
	// Rounds is the number of communication rounds (Table 1: 100).
	Rounds int
	// ClientsPerRound is the number of clients sampled per round
	// (Table 1: 10).
	ClientsPerRound int
	// Local configures the client-side SGD (learning rate, epochs, batch
	// size, max batches — Table 1).
	Local nn.SGDConfig
	// ProxMu, when positive, turns the run into FedProx with the given
	// proximal coefficient; 0 gives plain FedAvg.
	ProxMu float64
	// Arch is the model architecture shared by server and clients.
	Arch nn.Arch
	// Seed drives client sampling, initialization and batch shuffling.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("fl: Rounds must be positive, got %d", c.Rounds)
	}
	if c.ClientsPerRound <= 0 {
		return fmt.Errorf("fl: ClientsPerRound must be positive, got %d", c.ClientsPerRound)
	}
	if err := c.Arch.Validate(); err != nil {
		return err
	}
	return nil
}

// RoundResult captures the evaluation of one communication round: the
// aggregated global model scored on the local test data of every client
// selected in that round (the quantity plotted in Figs. 9-11).
type RoundResult struct {
	Round    int
	Selected []int // client IDs sampled this round
	// Accs and Losses are per-selected-client results of the *new* global
	// model on that client's local test split.
	Accs   []float64
	Losses []float64
	// MeanAcc and MeanLoss are their means.
	MeanAcc  float64
	MeanLoss float64
}

// Result is a full run: per-round results plus the final global model.
type Result struct {
	Algorithm string
	Rounds    []RoundResult
	Final     *nn.MLP
}

// Run executes FedAvg (or FedProx when cfg.ProxMu > 0) on the federation.
func Run(fed *dataset.Federation, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fed.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	global := nn.New(cfg.Arch, root.Split("init"))

	algo := "fedavg"
	if cfg.ProxMu > 0 {
		algo = fmt.Sprintf("fedprox(mu=%g)", cfg.ProxMu)
	}
	res := &Result{Algorithm: algo}

	// Pre-extract feature/label views once.
	trainX := make([][][]float64, len(fed.Clients))
	trainY := make([][]int, len(fed.Clients))
	testX := make([][][]float64, len(fed.Clients))
	testY := make([][]int, len(fed.Clients))
	for i, c := range fed.Clients {
		trainX[i], trainY[i] = c.Train.XY()
		testX[i], testY[i] = c.Test.XY()
	}

	sampler := root.Split("sampler")
	for round := 0; round < cfg.Rounds; round++ {
		idxs := sampler.SampleWithoutReplacement(len(fed.Clients), cfg.ClientsPerRound)

		updates := make([][]float64, 0, len(idxs))
		weights := make([]float64, 0, len(idxs))
		globalParams := global.ParamsCopy()
		for _, ci := range idxs {
			local := global.Clone()
			localCfg := cfg.Local
			localCfg.Shuffle = true
			if cfg.ProxMu > 0 {
				localCfg.ProxMu = cfg.ProxMu
				localCfg.ProxCenter = globalParams
			}
			local.Train(trainX[ci], trainY[ci], localCfg, root.SplitIndex("train", round*1000+ci))
			updates = append(updates, local.ParamsCopy())
			weights = append(weights, float64(len(trainY[ci])))
		}
		global.SetParams(nn.WeightedAverageParams(updates, weights))

		rr := RoundResult{Round: round}
		for _, ci := range idxs {
			loss, acc := global.Evaluate(testX[ci], testY[ci])
			rr.Selected = append(rr.Selected, fed.Clients[ci].ID)
			rr.Accs = append(rr.Accs, acc)
			rr.Losses = append(rr.Losses, loss)
			rr.MeanAcc += acc
			rr.MeanLoss += loss
		}
		n := float64(len(idxs))
		rr.MeanAcc /= n
		rr.MeanLoss /= n
		res.Rounds = append(res.Rounds, rr)
	}
	res.Final = global
	return res, nil
}

// MeanAccs returns the per-round mean accuracy curve.
func (r *Result) MeanAccs() []float64 {
	out := make([]float64, len(r.Rounds))
	for i, rr := range r.Rounds {
		out[i] = rr.MeanAcc
	}
	return out
}

// MeanLosses returns the per-round mean loss curve.
func (r *Result) MeanLosses() []float64 {
	out := make([]float64, len(r.Rounds))
	for i, rr := range r.Rounds {
		out[i] = rr.MeanLoss
	}
	return out
}
