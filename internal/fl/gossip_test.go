package fl

import (
	"testing"

	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/nn"
)

func gossipConfig() GossipConfig {
	return GossipConfig{
		Rounds:          15,
		ClientsPerRound: 4,
		Local:           nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            nn.Arch{In: 64, Hidden: []int{32}, Out: 10},
		Seed:            7,
	}
}

func TestGossipConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*GossipConfig)
		wantErr bool
	}{
		{"valid", func(c *GossipConfig) {}, false},
		{"no rounds", func(c *GossipConfig) { c.Rounds = 0 }, true},
		{"no clients", func(c *GossipConfig) { c.ClientsPerRound = 0 }, true},
		{"bad arch", func(c *GossipConfig) { c.Arch.Out = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := gossipConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestGossipRejectsBadInput(t *testing.T) {
	if _, err := RunGossip(&dataset.Federation{}, gossipConfig()); err == nil {
		t.Error("empty federation rejected")
	}
	single := dataset.FMNISTClustered(dataset.FMNISTConfig{
		Clients: 1, TrainPerClient: 20, TestPerClient: 10, Seed: 1,
	})
	if _, err := RunGossip(single, gossipConfig()); err == nil {
		t.Error("gossip with a single client should be rejected (no peers)")
	}
}

func TestGossipLearns(t *testing.T) {
	res, err := RunGossip(smallFed(1), gossipConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "gossip" {
		t.Fatalf("algorithm = %q", res.Algorithm)
	}
	accs := res.MeanAccs()
	if accs[len(accs)-1] < accs[0] {
		t.Fatalf("gossip did not learn: %v -> %v", accs[0], accs[len(accs)-1])
	}
	if accs[len(accs)-1] < 0.4 {
		t.Fatalf("gossip final accuracy too low: %v", accs[len(accs)-1])
	}
}

func TestGossipDeterminism(t *testing.T) {
	a, err := RunGossip(smallFed(2), gossipConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGossip(smallFed(2), gossipConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rounds {
		if a.Rounds[i].MeanAcc != b.Rounds[i].MeanAcc {
			t.Fatal("gossip runs with identical seeds diverged")
		}
	}
}

func TestGossipRoundShape(t *testing.T) {
	res, err := RunGossip(smallFed(3), gossipConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 15 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	for _, rr := range res.Rounds {
		if len(rr.Accs) != 4 || len(rr.Selected) != 4 {
			t.Fatalf("round %d arity wrong", rr.Round)
		}
		// A client never gossips with itself; peer choice is internal, but
		// accuracies must stay in range.
		for _, a := range rr.Accs {
			if a < 0 || a > 1 {
				t.Fatalf("accuracy out of range: %v", a)
			}
		}
	}
}
