package fl

import (
	"fmt"

	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/xrand"
)

// GossipConfig parameterizes the gossip-learning baseline (paper §3.2,
// after Ormándi/Hegedűs et al.): there is no server and no ledger — each
// client keeps a local model, periodically receives the model of a random
// peer, merges it with its own by parameter averaging, and trains the merge
// on local data.
//
// Gossip learning is the closest decentralized alternative to the
// Specializing DAG; the difference is that the merge partner is *random*
// rather than selected by model performance on local data, so on clustered
// non-IID data gossip keeps averaging across cluster boundaries.
type GossipConfig struct {
	// Rounds and ClientsPerRound mirror the DAG simulation so curves are
	// comparable: each round, ClientsPerRound clients perform one
	// receive-merge-train cycle.
	Rounds          int
	ClientsPerRound int
	// Local configures client-side SGD.
	Local nn.SGDConfig
	// Arch is the shared model architecture.
	Arch nn.Arch
	// Seed drives sampling and initialization.
	Seed int64
}

// Validate reports configuration errors.
func (c GossipConfig) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("fl: gossip Rounds must be positive, got %d", c.Rounds)
	}
	if c.ClientsPerRound <= 0 {
		return fmt.Errorf("fl: gossip ClientsPerRound must be positive, got %d", c.ClientsPerRound)
	}
	return c.Arch.Validate()
}

// RunGossip executes the gossip-learning baseline and returns per-round
// results shaped like Run's: the per-client accuracies are those of each
// active client's *own* local model on its own test split.
func RunGossip(fed *dataset.Federation, cfg GossipConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fed.Validate(); err != nil {
		return nil, err
	}
	if len(fed.Clients) < 2 {
		return nil, fmt.Errorf("fl: gossip needs at least 2 clients, got %d", len(fed.Clients))
	}
	root := xrand.New(cfg.Seed)

	// Every client starts from the same random initialization, as in the
	// DAG's genesis model.
	init := nn.New(cfg.Arch, root.Split("init"))
	models := make([][]float64, len(fed.Clients))
	for i := range models {
		models[i] = init.ParamsCopy()
	}
	scratch := init.Clone()

	trainX := make([][][]float64, len(fed.Clients))
	trainY := make([][]int, len(fed.Clients))
	testX := make([][][]float64, len(fed.Clients))
	testY := make([][]int, len(fed.Clients))
	for i, c := range fed.Clients {
		trainX[i], trainY[i] = c.Train.XY()
		testX[i], testY[i] = c.Test.XY()
	}

	res := &Result{Algorithm: "gossip"}
	sampler := root.Split("sampler")
	for round := 0; round < cfg.Rounds; round++ {
		idxs := sampler.SampleWithoutReplacement(len(fed.Clients), cfg.ClientsPerRound)
		rr := RoundResult{Round: round}
		for _, ci := range idxs {
			crng := root.SplitIndex("gossip", round*100003+ci)
			// Receive a random peer's current model and merge by averaging.
			peer := ci
			for peer == ci {
				peer = crng.Intn(len(fed.Clients))
			}
			merged := nn.AverageParams(models[ci], models[peer])
			scratch.SetParams(merged)
			localCfg := cfg.Local
			localCfg.Shuffle = true
			scratch.Train(trainX[ci], trainY[ci], localCfg, crng.Split("train"))
			models[ci] = scratch.ParamsCopy()

			loss, acc := scratch.Evaluate(testX[ci], testY[ci])
			rr.Selected = append(rr.Selected, fed.Clients[ci].ID)
			rr.Accs = append(rr.Accs, acc)
			rr.Losses = append(rr.Losses, loss)
			rr.MeanAcc += acc
			rr.MeanLoss += loss
		}
		n := float64(len(idxs))
		rr.MeanAcc /= n
		rr.MeanLoss /= n
		res.Rounds = append(res.Rounds, rr)
	}
	scratch.SetParams(models[0])
	res.Final = scratch
	return res, nil
}
