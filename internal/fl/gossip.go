package fl

import (
	"context"
	"fmt"

	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/xrand"
)

// GossipConfig parameterizes the gossip-learning baseline (paper §3.2,
// after Ormándi/Hegedűs et al.): there is no server and no ledger — each
// client keeps a local model, periodically receives the model of a random
// peer, merges it with its own by parameter averaging, and trains the merge
// on local data.
//
// Gossip learning is the closest decentralized alternative to the
// Specializing DAG; the difference is that the merge partner is *random*
// rather than selected by model performance on local data, so on clustered
// non-IID data gossip keeps averaging across cluster boundaries.
type GossipConfig struct {
	// Rounds and ClientsPerRound mirror the DAG simulation so curves are
	// comparable: each round, ClientsPerRound clients perform one
	// receive-merge-train cycle.
	Rounds          int
	ClientsPerRound int
	// Local configures client-side SGD.
	Local nn.SGDConfig
	// Arch is the shared model architecture.
	Arch nn.Arch
	// Seed drives sampling and initialization.
	Seed int64
}

// Validate reports configuration errors.
func (c GossipConfig) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("fl: gossip Rounds must be positive, got %d", c.Rounds)
	}
	if c.ClientsPerRound <= 0 {
		return fmt.Errorf("fl: gossip ClientsPerRound must be positive, got %d", c.ClientsPerRound)
	}
	return c.Arch.Validate()
}

// Gossip is a running gossip-learning experiment: the serverless baseline as
// a stepper for the unified run API. Within a round the receive-merge-train
// cycles run sequentially — a later client may receive a model its peer
// updated earlier in the same round, which is inherent to the protocol's
// semantics, so this engine has no per-round fan-out.
type Gossip struct {
	cfg     GossipConfig
	fed     *dataset.Federation
	root    *xrand.RNG
	sampler *xrand.RNG
	models  [][]float64
	scratch *nn.MLP
	// Per-client train/test data: zero-copy views of the federation's flat
	// storage (this engine never mutates features or labels) instead of
	// re-materialized per-sample slice headers.
	trainX []mathx.Matrix
	trainY [][]int
	testX  []mathx.Matrix
	testY  [][]int
	res    *Result
	round  int
}

var _ engine.Engine = (*Gossip)(nil)

// NewGossip validates inputs and prepares a gossip-learning run. Every
// client starts from the same random initialization, as in the DAG's genesis
// model.
func NewGossip(fed *dataset.Federation, cfg GossipConfig) (*Gossip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fed.Validate(); err != nil {
		return nil, err
	}
	if len(fed.Clients) < 2 {
		return nil, fmt.Errorf("fl: gossip needs at least 2 clients, got %d", len(fed.Clients))
	}
	if cfg.ClientsPerRound > len(fed.Clients) {
		return nil, fmt.Errorf("fl: gossip ClientsPerRound %d exceeds the federation's %d clients — a round samples without replacement, so reduce ClientsPerRound or enlarge the federation",
			cfg.ClientsPerRound, len(fed.Clients))
	}
	root := xrand.New(cfg.Seed)
	init := nn.New(cfg.Arch, root.Split("init"))
	g := &Gossip{
		cfg:     cfg,
		fed:     fed,
		root:    root,
		sampler: root.Split("sampler"),
		scratch: init.Clone(),
		res:     &Result{Algorithm: "gossip"},
	}
	g.models = make([][]float64, len(fed.Clients))
	for i := range g.models {
		g.models[i] = init.ParamsCopy()
	}
	g.trainX = make([]mathx.Matrix, len(fed.Clients))
	g.trainY = make([][]int, len(fed.Clients))
	g.testX = make([]mathx.Matrix, len(fed.Clients))
	g.testY = make([][]int, len(fed.Clients))
	for i, c := range fed.Clients {
		g.trainX[i], g.trainY[i] = c.Train.X, c.Train.Y
		g.testX[i], g.testY[i] = c.Test.X, c.Test.Y
	}
	return g, nil
}

// Name implements engine.Engine.
func (g *Gossip) Name() string { return "gossip" }

// Round returns the number of rounds executed so far.
func (g *Gossip) Round() int { return g.round }

// Result returns the run so far, shaped like Federated's: the per-client
// accuracies are those of each active client's *own* local model on its own
// test split. Valid mid-run as well as after completion.
func (g *Gossip) Result() *Result {
	g.scratch.SetParams(g.models[0])
	g.res.Final = g.scratch
	return g.res
}

// Step implements engine.Engine: one gossip round of receive-merge-train
// cycles.
func (g *Gossip) Step(ctx context.Context) (*engine.StepResult, bool, error) {
	if g.round >= g.cfg.Rounds {
		return nil, true, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	round := g.round
	idxs := g.sampler.SampleWithoutReplacement(len(g.fed.Clients), g.cfg.ClientsPerRound)
	rr := RoundResult{Round: round}
	for _, ci := range idxs {
		crng := g.root.SplitIndex("gossip", round*100003+ci)
		// Receive a random peer's current model and merge by averaging.
		peer := ci
		for peer == ci {
			peer = crng.Intn(len(g.fed.Clients))
		}
		merged := nn.AverageParams(g.models[ci], g.models[peer])
		g.scratch.SetParams(merged)
		localCfg := g.cfg.Local
		localCfg.Shuffle = true
		g.scratch.Train(g.trainX[ci], g.trainY[ci], localCfg, crng.Split("train"))
		g.models[ci] = g.scratch.ParamsCopy()

		loss, acc := g.scratch.Evaluate(g.testX[ci], g.testY[ci])
		rr.Selected = append(rr.Selected, g.fed.Clients[ci].ID)
		rr.Accs = append(rr.Accs, acc)
		rr.Losses = append(rr.Losses, loss)
		rr.MeanAcc += acc
		rr.MeanLoss += loss
	}
	n := float64(len(idxs))
	rr.MeanAcc /= n
	rr.MeanLoss /= n
	g.res.Rounds = append(g.res.Rounds, rr)
	g.round++

	return &engine.StepResult{Round: engine.RoundEvent{
		Engine:   g.Name(),
		Round:    round,
		MeanAcc:  rr.MeanAcc,
		MeanLoss: rr.MeanLoss,
		Detail:   &g.res.Rounds[len(g.res.Rounds)-1],
	}}, false, nil
}

// RunGossip executes the gossip-learning baseline to completion.
//
// Deprecated: RunGossip cannot be canceled or observed mid-flight. New code
// should construct the engine with NewGossip and drive it through the
// unified run API — specdag.Run(ctx, gossipEngine, opts...) — then read
// Result; RunGossip is kept as a thin convenience wrapper.
func RunGossip(fed *dataset.Federation, cfg GossipConfig) (*Result, error) {
	g, err := NewGossip(fed, cfg)
	if err != nil {
		return nil, err
	}
	for {
		_, done, err := g.Step(context.Background())
		if err != nil {
			return nil, err
		}
		if done {
			return g.Result(), nil
		}
	}
}
