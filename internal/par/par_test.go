package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultsToNumCPU(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Fatalf("Workers(-3) = %d, want %d", got, runtime.NumCPU())
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForEachVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 250
		counts := make([]atomic.Int64, n)
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("should not run") })
	ForEach(4, -1, func(int) { t.Fatal("should not run") })
}

func TestForEachOutputByIndexIsDeterministic(t *testing.T) {
	n := 100
	run := func(workers int) []int {
		out := make([]int, n)
		ForEach(workers, n, func(i int) { out[i] = i * i })
		return out
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestForEachErrReturnsLowestObservedError(t *testing.T) {
	// Every item fails; the sequential path must report item 0, and the
	// parallel path must report a deterministic (lowest-observed) index —
	// with every item failing, the lowest observed is always 0 because item
	// 0 is claimed first.
	for _, workers := range []int{1, 4} {
		err := ForEachErr(workers, 50, func(i int) error {
			return fmt.Errorf("item %d", i)
		})
		if err == nil || err.Error() != "item 0" {
			t.Fatalf("workers=%d: err = %v, want item 0", workers, err)
		}
	}
}

func TestForEachErrAbandonsAfterError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEachErr(2, 10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() == 10_000 {
		t.Fatal("no early abandon after error")
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	ForEach(4, 8, func(i int) {
		if i == 3 {
			panic("kaboom")
		}
	})
	t.Fatal("panic not propagated")
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Bool
	Do(2,
		func() { a.Store(true) },
		func() { b.Store(true) },
		func() { c.Store(true) },
	)
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do skipped a function")
	}
}
