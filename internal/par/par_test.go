package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefaultsToNumCPU(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Fatalf("Workers(-3) = %d, want %d", got, runtime.NumCPU())
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForEachVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 250
		counts := make([]atomic.Int64, n)
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("should not run") })
	ForEach(4, -1, func(int) { t.Fatal("should not run") })
}

func TestForEachOutputByIndexIsDeterministic(t *testing.T) {
	n := 100
	run := func(workers int) []int {
		out := make([]int, n)
		ForEach(workers, n, func(i int) { out[i] = i * i })
		return out
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestForEachErrReturnsLowestObservedError(t *testing.T) {
	// Every item fails; the sequential path must report item 0, and the
	// parallel path must report a deterministic (lowest-observed) index —
	// with every item failing, the lowest observed is always 0 because item
	// 0 is claimed first.
	for _, workers := range []int{1, 4} {
		err := ForEachErr(workers, 50, func(i int) error {
			return fmt.Errorf("item %d", i)
		})
		if err == nil || err.Error() != "item 0" {
			t.Fatalf("workers=%d: err = %v, want item 0", workers, err)
		}
	}
}

func TestForEachErrAbandonsAfterError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEachErr(2, 10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() == 10_000 {
		t.Fatal("no early abandon after error")
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	ForEach(4, 8, func(i int) {
		if i == 3 {
			panic("kaboom")
		}
	})
	t.Fatal("panic not propagated")
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Bool
	Do(2,
		func() { a.Store(true) },
		func() { b.Store(true) },
		func() { c.Store(true) },
	)
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do skipped a function")
	}
}

// ---- Shared worker budget (Budget) ----

func TestBudgetSizeDefaults(t *testing.T) {
	if NewBudget(0).Size() != Workers(0) {
		t.Fatal("Budget size 0 should default to NumCPU")
	}
	if NewBudget(3).Size() != 3 {
		t.Fatal("explicit size not kept")
	}
}

// TestBudgetBoundsNestedFanOut is the shared-pool guarantee behind the
// unified run API: a sweep-shaped nested fan-out (outer cells, each running
// an inner per-client fan-out) must never execute more goroutines than the
// budget's size, measured by the pool's own accounting.
func TestBudgetBoundsNestedFanOut(t *testing.T) {
	const size = 3
	b := NewBudget(size)
	var items atomic.Int64
	ForEachIn(b, size, 5, func(outer int) {
		ForEachIn(b, size, 8, func(inner int) {
			items.Add(1)
			time.Sleep(time.Millisecond)
		})
	})
	if items.Load() != 5*8 {
		t.Fatalf("ran %d items, want 40", items.Load())
	}
	if b.InUse() != 0 {
		t.Fatalf("in-use %d after completion, want 0", b.InUse())
	}
	if p := b.Peak(); p > size {
		t.Fatalf("peak concurrency %d exceeds budget %d", p, size)
	}
	if p := b.Peak(); p < 2 {
		t.Fatalf("peak concurrency %d: the budget prevented all parallelism", p)
	}
}

// TestBudgetSizeOneIsSequential: a one-slot budget degrades every fan-out
// to the plain sequential loop.
func TestBudgetSizeOneIsSequential(t *testing.T) {
	b := NewBudget(1)
	var cur, peak atomic.Int64
	ForEachIn(b, 8, 6, func(outer int) {
		ForEachIn(b, 8, 6, func(inner int) {
			if n := cur.Add(1); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(100 * time.Microsecond)
			cur.Add(-1)
		})
	})
	if peak.Load() != 1 {
		t.Fatalf("observed concurrency %d under a 1-slot budget", peak.Load())
	}
	if b.Peak() > 1 {
		t.Fatalf("accounting peak %d under a 1-slot budget", b.Peak())
	}
}

// TestBudgetNestedAccountingCountsGoroutinesOnce: a goroutine running an
// outer item that internally fans out again must not be double-counted.
func TestBudgetNestedAccountingCountsGoroutinesOnce(t *testing.T) {
	b := NewBudget(2)
	ForEachIn(b, 2, 2, func(outer int) {
		ForEachIn(b, 2, 2, func(inner int) {
			ForEachIn(b, 2, 2, func(deep int) {
				time.Sleep(time.Millisecond)
			})
		})
	})
	if p := b.Peak(); p > 2 {
		t.Fatalf("triple-nested fan-out peaked at %d goroutines on a 2-slot budget", p)
	}
}

func TestForEachErrInPropagatesError(t *testing.T) {
	b := NewBudget(4)
	err := ForEachErrIn(b, 4, 100, func(i int) error {
		if i == 7 {
			return errSeven
		}
		return nil
	})
	if err != errSeven {
		t.Fatalf("err = %v, want errSeven", err)
	}
	if b.InUse() != 0 {
		t.Fatal("slots leaked after error")
	}
}

func TestDoInRunsAll(t *testing.T) {
	b := NewBudget(2)
	var a, c atomic.Bool
	DoIn(b, 2,
		func() { a.Store(true) },
		func() { c.Store(true) },
	)
	if !a.Load() || !c.Load() {
		t.Fatal("DoIn skipped a function")
	}
}

// TestNilBudgetFallsBack: a nil budget behaves exactly like the unbudgeted
// helpers.
func TestNilBudgetFallsBack(t *testing.T) {
	var n atomic.Int64
	ForEachIn(nil, 4, 10, func(i int) { n.Add(1) })
	if n.Load() != 10 {
		t.Fatalf("ran %d items, want 10", n.Load())
	}
}

var errSeven = errors.New("seven")
