// Package par provides the bounded worker pools behind every parallel code
// path of the simulator: the per-client fan-out of a simulation round, the
// per-event evaluations of the asynchronous simulator, and the sweep cells
// (preset, seed, variant) of the experiment harness.
//
// The helpers deliberately know nothing about determinism; they only bound
// concurrency. Callers obtain reproducible results by writing each item's
// output to its own slice index and reducing sequentially afterwards, and by
// deriving all randomness from split RNG streams (xrand.Split*) rather than
// from a shared stream whose consumption order would depend on scheduling.
//
// With workers == 1 all helpers degrade to a plain loop on the calling
// goroutine, so a single-worker run is not merely equivalent to the
// sequential code — it is the sequential code.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values <= 0 select
// runtime.NumCPU(), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n), using at most workers
// goroutines (workers <= 0 selects runtime.NumCPU()). It returns when all
// invocations have finished. Items are claimed dynamically, so long items do
// not serialize behind short ones. A panic inside fn is re-raised on the
// calling goroutine after the remaining workers drain.
func ForEach(workers, n int, fn func(i int)) {
	_ = ForEachErr(workers, n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForEachErr is ForEach for item functions that can fail. Once any item
// errors, unclaimed items are abandoned (in-flight ones finish), and the
// lowest-indexed error observed is returned, which keeps the reported error
// stable when several concurrent items fail.
func ForEachErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		abort    atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		panicked any
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		abort.Store(true)
	}
	worker := func() {
		defer wg.Done()
		for {
			// Check abort before claiming: an index, once claimed, always
			// runs, so the first claimed index (0) is always observed.
			if abort.Load() {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						if panicked == nil {
							panicked = r
						}
						mu.Unlock()
						abort.Store(true)
						err = fmt.Errorf("par: item %d panicked", i)
					}
				}()
				return fn(i)
			}()
			if err != nil {
				record(i, err)
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}

// Do runs the given functions concurrently, bounded by workers, and waits
// for all of them. It is shorthand for ForEach over a fixed function list.
func Do(workers int, fns ...func()) {
	ForEach(workers, len(fns), func(i int) { fns[i]() })
}
