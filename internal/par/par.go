// Package par provides the bounded worker pools behind every parallel code
// path of the simulator: the per-client fan-out of a simulation round, the
// per-event evaluations of the asynchronous simulator, and the sweep cells
// (preset, seed, variant) of the experiment harness.
//
// Two concurrency regimes are offered:
//
//   - ForEach/ForEachErr/Do bound each call site independently by a worker
//     count — two nested fan-outs may together run workers² goroutines.
//   - A *Budget is one shared pool handed down through nested fan-outs
//     (sweep cell → round engine): ForEachIn/ForEachErrIn/DoIn draw extra
//     workers from the budget and fall back to inline execution when it is
//     exhausted, so the whole tree never exceeds the budget — and never
//     deadlocks, because a caller runs items on its own goroutine without
//     waiting for a slot.
//
// The helpers deliberately know nothing about determinism; they only bound
// concurrency. Callers obtain reproducible results by writing each item's
// output to its own slice index and reducing sequentially afterwards, and by
// deriving all randomness from split RNG streams (xrand.Split*) rather than
// from a shared stream whose consumption order would depend on scheduling.
//
// With workers == 1 all helpers degrade to a plain loop on the calling
// goroutine, so a single-worker run is not merely equivalent to the
// sequential code — it is the sequential code.
package par

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values <= 0 select
// runtime.NumCPU(), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Budget is a shared worker pool: a fixed number of concurrency slots that
// nested fan-outs draw from. A goroutine calling ForEachIn always processes
// items itself (it occupies the slot it already runs on); additional helper
// goroutines are spawned only while the budget has free slots. Consequently
// at most Size goroutines execute items concurrently, across every nesting
// level, and no call can deadlock waiting for slots.
//
// Accounting: InUse reports the goroutines currently executing items under
// this budget, Peak the maximum ever observed — the quantity tests assert to
// prove that nested fan-outs respect the budget. Both count each goroutine
// once regardless of nesting depth.
//
// A Budget is safe for concurrent use. The accounting assumes the budget has
// a single root: one goroutine (per budget) that enters ForEachIn from
// outside any budgeted work. Multiple independent roots sharing one Budget
// each add one slot of concurrency beyond Size.
type Budget struct {
	size   int
	tokens chan struct{} // capacity size-1: the root supplies the first slot
	inUse  atomic.Int64
	peak   atomic.Int64
	active sync.Map // goroutine id -> struct{}: goroutines inside budgeted loops
}

// NewBudget creates a shared pool with the given number of slots
// (size <= 0 selects runtime.NumCPU()).
func NewBudget(size int) *Budget {
	size = Workers(size)
	return &Budget{size: size, tokens: make(chan struct{}, size-1)}
}

// Size returns the number of concurrency slots.
func (b *Budget) Size() int { return b.size }

// InUse returns the number of goroutines currently executing budgeted items.
func (b *Budget) InUse() int { return int(b.inUse.Load()) }

// Peak returns the maximum InUse ever observed.
func (b *Budget) Peak() int { return int(b.peak.Load()) }

// tryAcquire claims a helper slot without blocking.
func (b *Budget) tryAcquire() bool {
	select {
	case b.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a helper slot.
func (b *Budget) release() { <-b.tokens }

// enterLoop registers the calling goroutine as an active worker. A goroutine
// already registered (a nested ForEachIn on the same budget) is not counted
// again; exitLoop must be passed the returned flag.
func (b *Budget) enterLoop() (fresh bool) {
	id := goid()
	if _, loaded := b.active.LoadOrStore(id, struct{}{}); loaded {
		return false
	}
	n := b.inUse.Add(1)
	for {
		p := b.peak.Load()
		if n <= p || b.peak.CompareAndSwap(p, n) {
			return true
		}
	}
}

// exitLoop undoes enterLoop.
func (b *Budget) exitLoop(fresh bool) {
	if !fresh {
		return
	}
	b.active.Delete(goid())
	b.inUse.Add(-1)
}

// goid returns the runtime id of the calling goroutine, parsed from the
// stack header ("goroutine 123 [running]:"). It is the only way to detect
// nested ForEachIn calls on one goroutine without threading context through
// every item function; the parse runs once per worker loop, not per item.
func goid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return -1
	}
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		return -1
	}
	return id
}

// Spawn runs fn on a new helper goroutine if the budget has a free slot,
// returning true; when the budget is exhausted it returns false without
// blocking and fn does not run. The goroutine holds its slot and is counted
// by InUse/Peak for fn's whole lifetime, so long-lived worker loops (the
// engine scheduler's job drivers) occupy budget capacity exactly like the
// fan-out helpers of ForEachIn do. Spawn is the one sanctioned way to start
// a budgeted background worker: everything else goes through the ForEach
// family, and the speclint budget analyzer forbids naked go statements
// outside this package.
//
// Callers must tolerate false — the usual pattern mirrors forEach's: the
// caller keeps making progress on its own goroutine and retries Spawn when
// more work arrives.
func (b *Budget) Spawn(fn func()) bool {
	if !b.tryAcquire() {
		return false
	}
	go func() {
		defer b.release()
		fresh := b.enterLoop()
		defer b.exitLoop(fresh)
		fn()
	}()
	return true
}

// ForEach invokes fn(i) for every i in [0, n), using at most workers
// goroutines (workers <= 0 selects runtime.NumCPU()). It returns when all
// invocations have finished. Items are claimed dynamically, so long items do
// not serialize behind short ones. A panic inside fn is re-raised on the
// calling goroutine after the remaining workers drain.
func ForEach(workers, n int, fn func(i int)) {
	_ = forEach(nil, workers, n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForEachErr is ForEach for item functions that can fail. Once any item
// errors, unclaimed items are abandoned (in-flight ones finish), and the
// lowest-indexed error observed is returned, which keeps the reported error
// stable when several concurrent items fail.
func ForEachErr(workers, n int, fn func(i int) error) error {
	return forEach(nil, workers, n, fn)
}

// ForEachIn is ForEach drawing helper workers from the shared budget b
// instead of spawning freely: the caller processes items inline, and up to
// min(workers, n) - 1 helpers join while b has free slots. A nil budget
// falls back to ForEach. workers retains its meaning as a per-call cap
// (and workers == 1 stays strictly sequential regardless of the budget).
func ForEachIn(b *Budget, workers, n int, fn func(i int)) {
	_ = forEach(b, workers, n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForEachErrIn is ForEachErr drawing helper workers from the shared budget.
func ForEachErrIn(b *Budget, workers, n int, fn func(i int) error) error {
	return forEach(b, workers, n, fn)
}

// Do runs the given functions concurrently, bounded by workers, and waits
// for all of them. It is shorthand for ForEach over a fixed function list.
func Do(workers int, fns ...func()) {
	ForEach(workers, len(fns), func(i int) { fns[i]() })
}

// DoIn is Do drawing helper workers from the shared budget.
func DoIn(b *Budget, workers int, fns ...func()) {
	ForEachIn(b, workers, len(fns), func(i int) { fns[i]() })
}

// forEach is the shared implementation: the calling goroutine always works,
// helpers are spawned up to workers-1 — gated by the budget when non-nil.
func forEach(b *Budget, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	// Accounting wraps worker loops, not items: a goroutine is counted once
	// for the whole time it processes items, no matter how deeply nested.
	runLoop := func(loop func()) {
		if b == nil {
			loop()
			return
		}
		fresh := b.enterLoop()
		defer b.exitLoop(fresh)
		loop()
	}

	if workers == 1 {
		var err error
		runLoop(func() {
			for i := 0; i < n; i++ {
				if err = fn(i); err != nil {
					return
				}
			}
		})
		return err
	}

	var (
		next     atomic.Int64
		abort    atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		panicked any
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		abort.Store(true)
	}
	worker := func() {
		for {
			// Check abort before claiming: an index, once claimed, always
			// runs, so the first claimed index (0) is always observed.
			if abort.Load() {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						if panicked == nil {
							panicked = r
						}
						mu.Unlock()
						abort.Store(true)
						err = fmt.Errorf("par: item %d panicked", i)
					}
				}()
				return fn(i)
			}()
			if err != nil {
				record(i, err)
				return
			}
		}
	}
	for w := 1; w < workers; w++ {
		if b != nil && !b.tryAcquire() {
			break // budget exhausted: the caller still makes progress inline
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b != nil {
				defer b.release()
			}
			runLoop(worker)
		}()
	}
	runLoop(worker)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}
