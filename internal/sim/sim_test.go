package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
)

const testSeed = 42

func TestPresets(t *testing.T) {
	if Quick.Rounds() >= Full.Rounds() {
		t.Error("quick preset should be smaller than full")
	}
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("preset names wrong")
	}
}

func TestSpecsAreWellFormed(t *testing.T) {
	specs := []Spec{
		FMNISTSpec(Quick, testSeed),
		RelaxedFMNISTSpec(Quick, testSeed),
		ByWriterFMNISTSpec(Quick, testSeed),
		PoetsSpec(Quick, testSeed),
		CIFARSpec(Quick, testSeed),
		FedProxSpec(Quick, testSeed),
	}
	for _, s := range specs {
		if err := s.Fed.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if err := s.Arch.Validate(); err != nil {
			t.Errorf("%s arch: %v", s.Name, err)
		}
		if s.Arch.In != s.Fed.InputDim || s.Arch.Out != s.Fed.NumClasses {
			t.Errorf("%s: arch/federation shape mismatch", s.Name)
		}
		if s.Local.LR <= 0 {
			t.Errorf("%s: missing learning rate", s.Name)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Training rounds", "SGD(0.05)", "SGD(0.8)", "SGD(0.01)", "| 100 | 100 | 100 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestTable2QuickShape(t *testing.T) {
	rows, err := Table2(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	wantClusters := []int{3, 2, 20}
	for i, r := range rows {
		if r.Clusters != wantClusters[i] {
			t.Errorf("%s clusters = %d, want %d", r.Dataset, r.Clusters, wantClusters[i])
		}
		if r.Pureness < 0 || r.Pureness > 1 {
			t.Errorf("%s pureness out of range: %v", r.Dataset, r.Pureness)
		}
		// The core claim: specialization above the random baseline.
		if r.Pureness <= r.Base {
			t.Errorf("%s pureness %v not above base %v", r.Dataset, r.Pureness, r.Base)
		}
	}
	if !strings.Contains(RenderTable2(rows), "approval pureness") {
		t.Error("RenderTable2 broken")
	}
}

func TestFigure5Quick(t *testing.T) {
	results, err := Figure5(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 alphas, got %d", len(results))
	}
	for _, r := range results {
		if len(r.Series.Rows) == 0 {
			t.Fatalf("alpha=%v: empty series", r.Alpha)
		}
		for _, mod := range r.Series.Col("modularity") {
			if mod < -0.5 || mod > 1 {
				t.Fatalf("modularity out of range: %v", mod)
			}
		}
		for _, np := range r.Series.Col("partitions") {
			if np < 1 {
				t.Fatalf("partition count %v < 1", np)
			}
		}
	}
	if !strings.Contains(RenderFig5(results), "Figure 5") {
		t.Error("RenderFig5 broken")
	}
}

func TestFigure6Quick(t *testing.T) {
	curves, err := Figure6(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("want 4 curves, got %d", len(curves))
	}
	for _, c := range curves {
		accs := c.Series.Col("acc")
		if len(accs) != Quick.Rounds() {
			t.Fatalf("%s: %d rounds", c.Label, len(accs))
		}
		for _, a := range accs {
			if a < 0 || a > 1 {
				t.Fatalf("%s: accuracy %v out of range", c.Label, a)
			}
		}
	}
	out := RenderCurves("Figure 6", curves)
	if !strings.Contains(out, "alpha=10") {
		t.Error("RenderCurves missing labels")
	}
}

func TestFigure7Quick(t *testing.T) {
	r, err := Figure7(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 4 {
		t.Fatalf("want 4 curves, got %d", len(r.Curves))
	}
	if _, ok := r.PurenessAlpha1["standard"]; !ok {
		t.Fatal("missing standard pureness")
	}
	if _, ok := r.PurenessAlpha1["dynamic"]; !ok {
		t.Fatal("missing dynamic pureness")
	}
	if !strings.Contains(RenderFig7(r), "alpha=1") {
		t.Error("RenderFig7 broken")
	}
}

func TestFigure8Quick(t *testing.T) {
	curves, err := Figure8(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("want 4 curves, got %d", len(curves))
	}
}

func TestFigure9Quick(t *testing.T) {
	results, err := Figure9(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(results))
	}
	for _, r := range results {
		if len(r.FedAvg) == 0 || len(r.DAG) == 0 {
			t.Fatalf("%s: empty groups", r.Dataset)
		}
		for _, g := range append(append([]Fig9Group{}, r.FedAvg...), r.DAG...) {
			if g.Stats.N == 0 {
				t.Fatalf("%s: empty box group", r.Dataset)
			}
		}
	}
	if !strings.Contains(RenderFig9(results), "FedAvg median") {
		t.Error("RenderFig9 broken")
	}
}

func TestFigure10And11Quick(t *testing.T) {
	curves, err := Figure10And11(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("want FedAvg/FedProx/DAG, got %d curves", len(curves))
	}
	names := map[string]bool{}
	for _, c := range curves {
		names[c.Algorithm] = true
		if len(c.Series.Rows) != Quick.Rounds() {
			t.Fatalf("%s: wrong round count", c.Algorithm)
		}
	}
	for _, want := range []string{"FedAvg", "FedProx", "DAG"} {
		if !names[want] {
			t.Fatalf("missing curve %s", want)
		}
	}
	if !strings.Contains(RenderFig1011(curves), "FedProx") {
		t.Error("RenderFig1011 broken")
	}
}

func TestFigure12And13Quick(t *testing.T) {
	curves, err := Figure12And13(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("want 4 scenarios, got %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Series.Rows) == 0 {
			t.Fatalf("%s: empty series", c.Label)
		}
		for _, v := range c.Series.Col("flippedPct") {
			if v < 0 || v > 100 {
				t.Fatalf("%s: flipped%% out of range: %v", c.Label, v)
			}
		}
	}
	if !strings.Contains(RenderPoison(curves), "p=0.3") {
		t.Error("RenderPoison broken")
	}
}

func TestFigure14Quick(t *testing.T) {
	r, err := Figure14(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Communities <= 0 {
		t.Fatal("no communities inferred")
	}
	totalPoisoned := 0
	for _, n := range r.Poisoned {
		totalPoisoned += n
	}
	if totalPoisoned == 0 {
		t.Fatal("no poisoned clients in histogram")
	}
	if r.Containment < 0 || r.Containment > 1 {
		t.Fatalf("containment out of range: %v", r.Containment)
	}
	if !strings.Contains(RenderFig14(r), "containment") {
		t.Error("RenderFig14 broken")
	}
}

func TestFigure15Quick(t *testing.T) {
	curves, err := Figure15(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("want 3 levels in quick mode, got %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Series.Rows) != Quick.Rounds() {
			t.Fatalf("active=%d: wrong round count", c.ActiveClients)
		}
	}
	if !strings.Contains(RenderFig15(curves), "active clients") {
		t.Error("RenderFig15 broken")
	}
}

func TestAblationsQuick(t *testing.T) {
	type ablation struct {
		name string
		run  func(context.Context, Preset, int64) ([]AblationRow, error)
		want int
	}
	ablations := []ablation{
		{"normalization", AblationNormalization, 2},
		{"publish-gate", AblationPublishGate, 2},
		{"walk-depth", AblationWalkDepth, 2},
		{"reference-walks", AblationReferenceWalks, 2},
		{"selectors", AblationSelectors, 3},
	}
	for _, a := range ablations {
		t.Run(a.name, func(t *testing.T) {
			rows, err := a.run(context.Background(), Quick, testSeed)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != a.want {
				t.Fatalf("want %d rows, got %d", a.want, len(rows))
			}
			for _, r := range rows {
				if r.FinalAcc < 0 || r.FinalAcc > 1 {
					t.Errorf("%s: acc out of range %v", r.Variant, r.FinalAcc)
				}
				if r.DAGSize < 1 {
					t.Errorf("%s: DAG empty", r.Variant)
				}
			}
			if !strings.Contains(RenderAblation(a.name, rows), a.name) {
				t.Error("RenderAblation broken")
			}
		})
	}
}

func TestAblationPublishGateGrowsDAG(t *testing.T) {
	rows, err := AblationPublishGate(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Without the gate, every activation publishes, so the DAG must be at
	// least as large as with the gate.
	if rows[1].DAGSize < rows[0].DAGSize {
		t.Fatalf("gate-off DAG (%d) smaller than gate-on (%d)", rows[1].DAGSize, rows[0].DAGSize)
	}
}

// TestHarnessSharedPoolBoundsNestedFanOut is the oversubscription
// regression test: a sweep (cells fanning out on the shared pool) whose
// cells each run a round engine (fanning out over clients on the same pool)
// must never exceed the configured worker budget, asserted via the pool's
// accounting. Before the shared pool, cells and round engines each used the
// full worker count, multiplying to ~NumCPU² goroutines.
func TestHarnessSharedPoolBoundsNestedFanOut(t *testing.T) {
	oldWorkers := Workers
	SetWorkers(2)
	defer SetWorkers(oldWorkers)

	if _, err := AblationPublishGate(context.Background(), Quick, testSeed); err != nil {
		t.Fatal(err)
	}
	if peak := Pool().Peak(); peak > 2 {
		t.Fatalf("nested sweep+round fan-out peaked at %d goroutines on a 2-slot budget", peak)
	}
	if Pool().InUse() != 0 {
		t.Fatalf("pool reports %d in use after the sweep", Pool().InUse())
	}
}

// TestHarnessRunsAreCancelable: canceling the context aborts a sweep
// mid-flight with a context error instead of running to completion.
func TestHarnessRunsAreCancelable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the sweep must abort before finishing
	_, err := Table2(ctx, Quick, testSeed)
	if err == nil {
		t.Fatal("canceled sweep completed successfully")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
}
