package sim

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/specdag/specdag/internal/engine"
)

// Cell is one unit of a sweep grid: a figure line, a table row, an ablation
// variant. Cells are submitted to an engine.Scheduler as lazy jobs, so a
// 10,000-cell grid costs 10,000 closures up front, not 10,000 live
// simulations, and cells run whenever the scheduler's workers reach them.
type Cell struct {
	// Name labels the cell in errors and, sanitized, names its checkpoint
	// file — it must be unique within the grid and stable across reruns for
	// crash-resume to find the right checkpoint.
	Name string
	// Priority orders dispatch (larger first); ties run in submission
	// order. Results are bit-identical for any priority assignment — see
	// TestSchedulerWorkerInvariance.
	Priority int
	// Build constructs the cell's engine on a scheduler worker at first
	// dispatch. ckpt is non-nil when the grid directory holds a checkpoint
	// for this cell; Build should then resume from it (falling back is
	// handled by the grid: if Build errors on a checkpoint, it is retried
	// with ckpt == nil and the cell restarts from scratch). Any returned
	// options (hooks, probes) are applied to the cell's run loop.
	Build func(ckpt io.Reader) (engine.Engine, []engine.Option, error)
	// Finish extracts the cell's results after its engine completed. Finish
	// calls run sequentially in cell order on RunGrid's goroutine, so they
	// may write shared state without locking.
	Finish func(eng engine.Engine) error
	// Snapshot enables per-cell checkpointing: the engine must implement
	// engine.Snapshotter, and when the grid has a checkpoint directory the
	// cell checkpoints every GridConfig.Every units plus once on
	// completion, so a crashed grid rerun resumes finished and in-flight
	// cells instead of recomputing them. Leave false for engines without
	// checkpoint support (fl baselines) or measurement cells where mid-run
	// I/O would contaminate timings — such cells simply recompute on
	// resume, which is safe because every cell is deterministic.
	Snapshot bool
}

// GridConfig configures RunGrid.
type GridConfig struct {
	// Dir is the per-cell checkpoint directory; "" falls back to the
	// harness-wide GridDir() (cmd/experiments -grid-dir, SPECDAG_GRID_DIR),
	// and if that is empty too the grid runs without checkpoints.
	Dir string
	// Every is the checkpoint cadence in engine units; <= 0 selects 5.
	Every int
	// Workers caps concurrently running cells; <= 0 inherits the harness
	// Workers setting (the shared pool's size). Workers == 1 runs cells
	// strictly sequentially on the calling goroutine.
	Workers int
	// Quantum is the scheduler dispatch quantum in engine units; <= 0
	// selects the scheduler default. Figure15 sets it large enough that
	// each timing cell runs start-to-finish in one dispatch.
	Quantum int
}

var gridDirSetting = os.Getenv("SPECDAG_GRID_DIR")

// GridDir returns the harness-wide default checkpoint directory for sweep
// grids ("" disables grid checkpointing). It is read from the
// SPECDAG_GRID_DIR environment variable at startup and can be overridden
// via SetGridDir (cmd/experiments -grid-dir).
func GridDir() string {
	poolMu.Lock()
	defer poolMu.Unlock()
	return gridDirSetting
}

// SetGridDir overrides the harness-wide grid checkpoint directory. Call it
// at flag-parsing time; grids already in flight keep the directory they
// started with.
func SetGridDir(dir string) {
	poolMu.Lock()
	defer poolMu.Unlock()
	gridDirSetting = dir
}

// RunGrid runs every cell to completion on an engine.Scheduler drawing from
// the shared harness pool, then runs the Finish callbacks sequentially in
// cell order. It replaces the naive per-sweep fan-out: cells become
// priority-ordered, work-stolen, pause-safe jobs, and with a checkpoint
// directory a mid-grid crash resumes instead of restarting — completed
// cells reload their final checkpoint, in-flight ones continue from their
// last unit boundary, and untouched ones build fresh.
//
// Results are bit-identical to driving each cell's engine directly with
// engine.Run, for every worker count and priority order: scheduling decides
// only when a cell's units run, and each cell's output is a pure function
// of its (config, seed).
//
// On context cancellation RunGrid returns ctx.Err() with unfinished cells
// stopped at unit boundaries; otherwise the first error in cell order is
// returned (wrapped with the cell name), after all cells have settled.
func RunGrid(ctx context.Context, cells []Cell, cfg GridConfig) error {
	dir := cfg.Dir
	if dir == "" {
		dir = GridDir()
	}
	every := cfg.Every
	if every <= 0 {
		every = 5
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("sim: creating grid checkpoint dir: %w", err)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = Pool().Size()
	}
	sched := engine.NewScheduler(engine.SchedulerConfig{
		Pool:    Pool(),
		Workers: workers,
		Quantum: cfg.Quantum,
	})
	handles := make([]*engine.Handle, len(cells))
	engines := make([]engine.Engine, len(cells))
	for i := range cells {
		i := i
		c := &cells[i]
		h, err := sched.Submit(engine.Job{
			Name:     c.Name,
			Priority: c.Priority,
			Build: func(context.Context) (engine.Engine, []engine.Option, error) {
				eng, opts, err := buildCell(c, dir, every)
				if err != nil {
					return nil, nil, err
				}
				engines[i] = eng
				return eng, opts, nil
			},
		})
		if err != nil {
			return err
		}
		handles[i] = h
	}
	if err := sched.Drain(ctx); err != nil {
		return err
	}
	for i := range cells {
		if err := handles[i].Err(); err != nil {
			return fmt.Errorf("%s: %w", cells[i].Name, err)
		}
	}
	for i := range cells {
		c := &cells[i]
		if c.Snapshot && dir != "" {
			// Final checkpoint: a rerun of the grid resumes this completed
			// cell instantly (the checkpoint carries the full history).
			snap, ok := engines[i].(engine.Snapshotter)
			if !ok {
				return fmt.Errorf("%s: Snapshot cell engine has no checkpoint support", c.Name)
			}
			if err := writeCellCheckpoint(dir, c.Name, snap); err != nil {
				return fmt.Errorf("%s: %w", c.Name, err)
			}
		}
		if c.Finish != nil {
			if err := c.Finish(engines[i]); err != nil {
				return fmt.Errorf("%s: %w", c.Name, err)
			}
		}
	}
	return nil
}

// buildCell resolves a cell into an engine plus options, handling the
// checkpoint life cycle: resume from an existing cell checkpoint when
// possible (restarting from scratch if the checkpoint is unreadable or
// stale), and install periodic checkpointing for the run ahead.
func buildCell(c *Cell, dir string, every int) (engine.Engine, []engine.Option, error) {
	if c.Snapshot && dir != "" {
		path := cellCheckpointPath(dir, c.Name)
		if f, err := os.Open(path); err == nil {
			eng, opts, berr := c.Build(f)
			f.Close()
			if berr == nil {
				return eng, withCellCheckpoints(opts, dir, c.Name, every), nil
			}
			// A checkpoint the cell cannot resume from (corrupted file,
			// changed config) is discarded; determinism makes the restart
			// produce identical results.
		}
	}
	eng, opts, err := c.Build(nil)
	if err != nil {
		return nil, nil, err
	}
	if c.Snapshot && dir != "" {
		opts = withCellCheckpoints(opts, dir, c.Name, every)
	}
	return eng, opts, nil
}

func withCellCheckpoints(opts []engine.Option, dir, name string, every int) []engine.Option {
	return append(opts, engine.WithCheckpoints(every, func(int) (io.WriteCloser, error) {
		return newAtomicFile(cellCheckpointPath(dir, name))
	}))
}

func writeCellCheckpoint(dir, name string, snap engine.Snapshotter) error {
	w, err := newAtomicFile(cellCheckpointPath(dir, name))
	if err != nil {
		return err
	}
	if _, err := snap.WriteCheckpoint(w); err != nil {
		w.abort()
		return err
	}
	return w.Close()
}

// cellCheckpointPath maps a cell name to its checkpoint file, sanitizing
// characters that are meaningful to filesystems.
func cellCheckpointPath(dir, name string) string {
	sanitized := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, name)
	return filepath.Join(dir, sanitized+".sdc")
}

// atomicFile writes through a temp file renamed into place on Close, so a
// crash mid-write never leaves a truncated checkpoint where a valid one
// (or nothing) should be.
type atomicFile struct {
	f    *os.File
	path string
}

func newAtomicFile(path string) (*atomicFile, error) {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, err
	}
	return &atomicFile{f: f, path: path}, nil
}

func (a *atomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

func (a *atomicFile) Close() error {
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	return os.Rename(a.f.Name(), a.path)
}

func (a *atomicFile) abort() {
	a.f.Close()
	os.Remove(a.f.Name())
}
