package sim

import (
	"context"
	"fmt"
	"io"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/tipselect"
)

// ThroughputGrid is the scheduler stress sweep behind the root
// BenchmarkSchedulerGridThroughput: n tiny FMNIST-clustered cells with
// mixed priorities submitted to the sweep scheduler, so job dispatch,
// work-stealing and settling — not training time — dominate the wall
// clock. It returns each cell's final-round mean trained-model accuracy,
// in cell order.
//
// Every accuracy is a pure function of (preset, seed, cell index): the
// benchmark gates the returned values byte-for-byte across worker counts
// (cmd/benchgate), turning "scheduling never changes results" into a CI
// invariant measured on a real grid rather than a fake engine.
func ThroughputGrid(ctx context.Context, p Preset, seed int64, n int) ([]float64, error) {
	rounds := 6
	if p == Full {
		rounds = 12
	}
	out := make([]float64, n)
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Name: fmt.Sprintf("throughput-%04d", i),
			// Mixed priorities exercise the aging-ordered pick path; results
			// are priority-invariant (TestSchedulerWorkerInvariance).
			Priority: i % 3,
			// Snapshot off: these cells exist to measure scheduler overhead,
			// and checkpoint I/O (if SPECDAG_GRID_DIR happens to be set)
			// would contaminate the timing. Cells are trivially recomputable.
			Build: func(io.Reader) (engine.Engine, []engine.Option, error) {
				fed := dataset.FMNISTClustered(dataset.FMNISTConfig{
					Seed:           seed + int64(i),
					Clients:        8,
					TrainPerClient: 30,
					TestPerClient:  10,
				})
				sim, err := core.NewSimulation(fed, core.Config{
					Rounds:          rounds,
					ClientsPerRound: 3,
					Local:           nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10, MaxBatches: 3},
					Arch:            nn.Arch{In: fed.InputDim, Hidden: []int{16}, Out: fed.NumClasses},
					Selector:        tipselect.AccuracyWalk{Alpha: 10},
					Workers:         Workers,
					Pool:            Pool(),
					Seed:            seed + int64(i),
				})
				if err != nil {
					return nil, nil, err
				}
				return sim, nil, nil
			},
			Finish: func(eng engine.Engine) error {
				res := eng.(*core.Simulation).Results()
				out[i] = res[len(res)-1].MeanTrainedAcc()
				return nil
			},
		}
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	return out, nil
}
