package sim

import (
	"fmt"
	"strings"
)

// RenderTable2 renders Table 2 rows as markdown.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("### Table 2: approval pureness after training\n\n")
	b.WriteString("| Dataset | # clusters | base pureness | pureness |\n|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %.2f | %.2f |\n", r.Dataset, r.Clusters, r.Base, r.Pureness)
	}
	return b.String()
}

// RenderFig5 renders the α-tuning metric trajectories of Fig. 5.
func RenderFig5(results []Fig5Result) string {
	var b strings.Builder
	b.WriteString("### Figure 5: choosing alpha (G_clients metrics)\n\n")
	for _, r := range results {
		b.WriteString(r.Series.Table())
		b.WriteString("\n")
	}
	return b.String()
}

// RenderCurves renders labeled accuracy curves (Figs. 6-8).
func RenderCurves(title string, curves []AccuracyCurve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", title)
	if len(curves) == 0 {
		return b.String()
	}
	// Merge curves into a single table keyed by round.
	b.WriteString("| round |")
	for _, c := range curves {
		fmt.Fprintf(&b, " %s |", c.Label)
	}
	b.WriteString("\n|---|")
	for range curves {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	rounds := curves[0].Series.Col("round")
	cols := make([][]float64, len(curves))
	for i, c := range curves {
		cols[i] = c.Series.Col("acc")
	}
	for r := range rounds {
		fmt.Fprintf(&b, "| %.0f |", rounds[r])
		for i := range curves {
			fmt.Fprintf(&b, " %.3f |", cols[i][r])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFig7 renders the dynamic-normalization comparison.
func RenderFig7(r *Fig7Result) string {
	var b strings.Builder
	b.WriteString(RenderCurves("Figure 7: accuracy by alpha (dynamic normalization)", r.Curves))
	b.WriteString("\nApproval pureness at alpha=1:\n")
	for _, norm := range []string{"standard", "dynamic"} {
		fmt.Fprintf(&b, "  %-8s: %.2f\n", norm, r.PurenessAlpha1[norm])
	}
	return b.String()
}

// RenderFig9 renders the FedAvg-vs-DAG accuracy distributions.
func RenderFig9(results []Fig9Result) string {
	var b strings.Builder
	b.WriteString("### Figure 9: accuracy distribution, FedAvg vs Specializing DAG\n\n")
	for _, r := range results {
		fmt.Fprintf(&b, "#### %s\n\n", r.Dataset)
		b.WriteString("| rounds | FedAvg median (q1–q3) | DAG median (q1–q3) |\n|---|---|---|\n")
		n := len(r.FedAvg)
		if len(r.DAG) < n {
			n = len(r.DAG)
		}
		for i := 0; i < n; i++ {
			f, d := r.FedAvg[i].Stats, r.DAG[i].Stats
			fmt.Fprintf(&b, "| %d+ | %.3f (%.3f–%.3f) | %.3f (%.3f–%.3f) |\n",
				r.FedAvg[i].StartRound, f.Median, f.Q1, f.Q3, d.Median, d.Q1, d.Q3)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFig1011 renders the FedAvg/FedProx/DAG accuracy and loss curves.
func RenderFig1011(curves []Fig1011Curve) string {
	var b strings.Builder
	b.WriteString("### Figures 10 & 11: FedAvg vs DAG vs FedProx on Synthetic(0.5,0.5)\n\n")
	if len(curves) == 0 {
		return b.String()
	}
	b.WriteString("| round |")
	for _, c := range curves {
		fmt.Fprintf(&b, " %s acc | %s loss |", c.Algorithm, c.Algorithm)
	}
	b.WriteString("\n|---|")
	for range curves {
		b.WriteString("---|---|")
	}
	b.WriteString("\n")
	rounds := curves[0].Series.Col("round")
	for r := range rounds {
		fmt.Fprintf(&b, "| %.0f |", rounds[r])
		for _, c := range curves {
			fmt.Fprintf(&b, " %.3f | %.3f |", c.Series.Col("acc")[r], c.Series.Col("loss")[r])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderPoison renders the Fig. 12/13 poisoning curves.
func RenderPoison(curves []PoisonCurve) string {
	var b strings.Builder
	b.WriteString("### Figures 12 & 13: flipped predictions and poisoned approvals\n\n")
	if len(curves) == 0 {
		return b.String()
	}
	b.WriteString("| round |")
	for _, c := range curves {
		fmt.Fprintf(&b, " %s flipped%% | %s benign%% | %s approvals |", c.Label, c.Label, c.Label)
	}
	b.WriteString("\n|---|")
	for range curves {
		b.WriteString("---|---|---|")
	}
	b.WriteString("\n")
	rounds := curves[0].Series.Col("round")
	for r := range rounds {
		fmt.Fprintf(&b, "| %.0f |", rounds[r])
		for _, c := range curves {
			fmt.Fprintf(&b, " %.1f | %.1f | %.1f |",
				c.Series.Col("flippedPct")[r],
				c.Series.Col("flippedBenignPct")[r],
				c.Series.Col("poisonedApprovals")[r])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFig14 renders the poisoned-client community histogram.
func RenderFig14(r *Fig14Result) string {
	var b strings.Builder
	b.WriteString("### Figure 14: distribution of poisoned clients over inferred clusters (p=0.3)\n\n")
	fmt.Fprintf(&b, "communities: %d, containment: %.2f\n\n", r.Communities, r.Containment)
	b.WriteString("| community | benign | poisoned |\n|---|---|---|\n")
	for i := range r.Benign {
		fmt.Fprintf(&b, "| %d | %d | %d |\n", i, r.Benign[i], r.Poisoned[i])
	}
	return b.String()
}

// RenderFig15 renders the walk-scalability curves.
func RenderFig15(curves []Fig15Curve) string {
	var b strings.Builder
	b.WriteString("### Figure 15: random-walk cost vs concurrently active clients\n\n")
	b.WriteString("| active clients | mean walk µs | mean evals/client | final-round evals/client |\n|---|---|---|---|\n")
	for _, c := range curves {
		micros := c.Series.Col("walkMicros")
		evals := c.Series.Col("evalsPerClient")
		fmt.Fprintf(&b, "| %d | %.0f | %.1f | %.1f |\n",
			c.ActiveClients, meanOf(micros), meanOf(evals), evals[len(evals)-1])
	}
	return b.String()
}

// RenderAblation renders ablation rows.
func RenderAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Ablation: %s\n\n", title)
	b.WriteString("| variant | final acc | pureness | DAG size | walk evals |\n|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %.3f | %.2f | %d | %d |\n", r.Variant, r.FinalAcc, r.Pureness, r.DAGSize, r.WalkEvals)
	}
	return b.String()
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
