package sim

import (
	"context"
	"fmt"
	"io"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/metrics"
	"github.com/specdag/specdag/internal/tipselect"
)

// Fig15Curve is one concurrency level of the scalability experiment: the
// average per-client random-walk cost per round.
type Fig15Curve struct {
	ActiveClients int
	Series        *metrics.Series // cols: round, walkMicros, evalsPerClient
}

// Figure15 reproduces Fig. 15: the time a client spends on the random walk
// as the number of concurrently active clients grows (5/10/20/40). Walks
// start at a transaction sampled at depth 15–25 from the tips, as in the
// paper; accuracy memoization is disabled so every walk re-evaluates
// children, matching the prototype's cost profile.
//
// Both wall-clock microseconds and the hardware-independent count of model
// evaluations per client are reported; the paper's claim is that neither
// grows with concurrency.
func Figure15(ctx context.Context, p Preset, seed int64) ([]Fig15Curve, error) {
	levels := []int{5, 10, 20, 40}
	rounds := p.Rounds()
	if p == Quick {
		levels = []int{5, 10, 20}
	}

	// This is a *measurement* experiment: walkMicros is per-walk wall
	// clock, which oversubscribed cores would contaminate with scheduler
	// contention. So the grid runs with Workers: 1 (strictly sequential
	// cells) and a quantum large enough that each timing cell runs
	// start-to-finish in one dispatch; each simulation runs its clients on
	// a single worker, off the shared pool — timing fidelity over
	// throughput. Snapshot stays off so no mid-run checkpoint I/O lands
	// inside the timed region. (The harness's other sweeps stay parallel;
	// their metrics are hardware-independent.)
	out := make([]Fig15Curve, len(levels))
	cells := make([]Cell, len(levels))
	for li := range levels {
		li, active := li, levels[li]
		var series *metrics.Series
		cells[li] = Cell{
			Name: fmt.Sprintf("fig15-active=%d", active),
			Build: func(io.Reader) (engine.Engine, []engine.Option, error) {
				spec := ByWriterFMNISTSpec(p, seed)
				if active > len(spec.Fed.Clients) {
					active = len(spec.Fed.Clients)
				}
				series = metrics.NewSeries(fmt.Sprintf("%d active clients", active),
					"round", "walkMicros", "evalsPerClient")
				cfg := spec.DAGConfig(p, tipselect.AccuracyWalk{Alpha: 10, DepthMin: 15, DepthMax: 25}, seed+int64(li))
				cfg.Rounds = rounds
				cfg.ClientsPerRound = active
				cfg.EvalScope = core.EvalScopeNone // re-evaluate on every walk, like the prototype
				cfg.MeasureWalkTime = true
				cfg.Workers = 1 // uncontended walks: see the fidelity note above
				cfg.Pool = nil
				sim, err := core.NewSimulation(spec.Fed, cfg)
				if err != nil {
					return nil, nil, err
				}
				return sim, []engine.Option{engine.WithHooks(engine.Hooks{
					OnRound: func(ev engine.RoundEvent) {
						rr := ev.Detail.(*core.RoundResult)
						series.Add(float64(ev.Round+1),
							float64(rr.MeanWalkDuration().Microseconds()),
							float64(rr.Walk.Evaluations)/float64(len(rr.Active)))
					},
				})}, nil
			},
			Finish: func(engine.Engine) error {
				out[li] = Fig15Curve{ActiveClients: active, Series: series}
				return nil
			},
		}
	}
	if err := RunGrid(ctx, cells, GridConfig{Workers: 1, Quantum: 1 << 30}); err != nil {
		return nil, err
	}
	return out, nil
}
