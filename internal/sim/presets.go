// Package sim is the experiment harness: it binds datasets, model
// architectures and Table-1 hyperparameters into ready-to-run
// configurations, and provides one runner per table and figure of the
// paper's evaluation (§5). Each runner exists in two scales: Quick for
// tests and benchmarks (seconds) and Full for paper-scale runs.
package sim

import (
	"fmt"
	"os"
	"strconv"
	"sync"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/fl"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/tipselect"
)

// Workers bounds the harness's parallelism: the total size of the shared
// worker budget that sweep cells (one figure line, ablation variant, or
// scenario each) and the round engines inside them draw from, and the
// Workers setting of every core.Config the harness assembles. 0 (the
// default) uses runtime.NumCPU(). Every experiment is deterministic for any
// value — cells write results by index and each DAG simulation is
// worker-count invariant — so this knob only trades wall clock for CPU. It
// is read once from the SPECDAG_WORKERS environment variable at startup
// (how the benchmark snapshots pin a sequential baseline) and can be
// overridden via SetWorkers (cmd/experiments -workers).
var Workers = workersFromEnv()

var (
	poolMu sync.Mutex
	pool   *par.Budget
)

// Pool returns the harness-wide shared worker budget, sized par.Workers
// (Workers) and created on first use. Every sweep cell fan-out and every
// round engine the harness assembles draws from this one pool, so nested
// fan-outs (a sweep of simulations, each fanning over its round's clients)
// never run more than the budget's goroutines in total — the resolution of
// the ~NumCPU² oversubscription the per-call-site pools allowed.
func Pool() *par.Budget {
	poolMu.Lock()
	defer poolMu.Unlock()
	if pool == nil {
		pool = par.NewBudget(par.Workers(Workers))
	}
	return pool
}

// SetWorkers overrides the harness worker budget and replaces the shared
// pool. Call it before running experiments (flag parsing time); experiments
// already in flight keep the pool they started with.
func SetWorkers(n int) {
	poolMu.Lock()
	defer poolMu.Unlock()
	Workers = n
	pool = par.NewBudget(par.Workers(n))
}

func workersFromEnv() int {
	v := os.Getenv("SPECDAG_WORKERS")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		// Fail loudly: silently falling back to full parallelism would turn
		// a typo'd "sequential baseline" benchmark into a parallel run.
		panic(fmt.Sprintf("sim: invalid SPECDAG_WORKERS=%q (want a non-negative integer)", v))
	}
	return n
}

// Preset selects the experiment scale.
type Preset int

const (
	// Quick shrinks client counts and rounds so every experiment finishes
	// in seconds; shapes (who wins, trends) are preserved.
	Quick Preset = iota
	// Full matches the paper's scale: 100 rounds, 10 clients per round,
	// full federation sizes.
	Full
)

// String returns the preset name.
func (p Preset) String() string {
	if p == Full {
		return "full"
	}
	return "quick"
}

// Rounds returns the number of training rounds for the preset (Table 1
// uses 100).
func (p Preset) Rounds() int {
	if p == Full {
		return 100
	}
	return 20
}

// ClientsPerRound returns the per-round activation count (Table 1: 10).
func (p Preset) ClientsPerRound() int {
	if p == Full {
		return 10
	}
	return 5
}

// Spec bundles a federation with its model architecture, the local training
// hyperparameters of Table 1, and the tip selector used for the headline
// experiments on this dataset.
type Spec struct {
	Name     string
	Fed      *dataset.Federation
	Arch     nn.Arch
	Local    nn.SGDConfig
	Selector tipselect.Selector
}

// FMNISTSpec builds the FMNIST-clustered setup. Table 1: 1 local epoch,
// 10 local batches, batch size 10, SGD(0.05).
func FMNISTSpec(p Preset, seed int64) Spec {
	// NoiseStd 2.5 makes classes overlap enough that convergence takes tens
	// of rounds, mirroring the paper's CNN trajectory: specialized models
	// (few classes) improve visibly earlier than generalized ones.
	cfg := dataset.FMNISTConfig{Seed: seed, NoiseStd: 2.5}
	if p == Quick {
		cfg.Clients = 30
		cfg.TrainPerClient = 60
		cfg.TestPerClient = 15
	}
	fed := dataset.FMNISTClustered(cfg)
	return Spec{
		Name:     "FMNIST-clustered",
		Fed:      fed,
		Arch:     nn.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Local:    nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10, MaxBatches: 10},
		Selector: tipselect.AccuracyWalk{Alpha: 10},
	}
}

// RelaxedFMNISTSpec builds the relaxed variant of Fig. 8 (15–20 % of each
// client's data comes from foreign clusters).
func RelaxedFMNISTSpec(p Preset, seed int64) Spec {
	cfg := dataset.FMNISTConfig{Seed: seed, RelaxedMin: 0.15, RelaxedMax: 0.20}
	if p == Quick {
		cfg.Clients = 30
		cfg.TrainPerClient = 60
		cfg.TestPerClient = 15
	}
	fed := dataset.FMNISTClustered(cfg)
	return Spec{
		Name:     "FMNIST-relaxed",
		Fed:      fed,
		Arch:     nn.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Local:    nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10, MaxBatches: 10},
		Selector: tipselect.AccuracyWalk{Alpha: 10},
	}
}

// ByWriterFMNISTSpec builds the authorship-split FMNIST used by the
// poisoning and scalability experiments (§5.3.4, §5.3.5): every client
// holds all classes plus a per-writer style offset.
func ByWriterFMNISTSpec(p Preset, seed int64) Spec {
	// NoiseStd 2.5 as in FMNISTSpec: a harder task means one round of local
	// training cannot fully undo a poisoned average, so poisoning exposure
	// becomes measurable (as with the paper's CNN).
	cfg := dataset.FMNISTConfig{Seed: seed, ByWriter: true, NoiseStd: 2.5}
	if p == Quick {
		cfg.Clients = 30
		cfg.TrainPerClient = 60
		cfg.TestPerClient = 20
	}
	fed := dataset.FMNISTClustered(cfg)
	return Spec{
		Name:     "FMNIST-bywriter",
		Fed:      fed,
		Arch:     nn.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Local:    nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10, MaxBatches: 10},
		Selector: tipselect.AccuracyWalk{Alpha: 10},
	}
}

// PoetsSpec builds the two-language next-character setup. Table 1: 1 local
// epoch, 35 local batches, batch size 10, SGD(0.8).
func PoetsSpec(p Preset, seed int64) Spec {
	cfg := dataset.PoetsConfig{Seed: seed}
	if p == Quick {
		cfg.ClientsPerLanguage = 6
		cfg.CharsPerClient = 250
	}
	fed := dataset.Poets(cfg)
	return Spec{
		Name:     "Poets",
		Fed:      fed,
		Arch:     nn.Arch{In: fed.InputDim, Hidden: []int{64}, Out: fed.NumClasses},
		Local:    nn.SGDConfig{LR: 0.8, Epochs: 1, BatchSize: 10, MaxBatches: 35},
		Selector: tipselect.AccuracyWalk{Alpha: 10},
	}
}

// CIFARSpec builds the CIFAR-100/PAM setup. Table 1: 5 local epochs, 45
// local batches, batch size 10, SGD(0.01).
func CIFARSpec(p Preset, seed int64) Spec {
	// NoiseStd 1.8 (vs. subclass offsets of 0.6) keeps the 100-class task
	// hard, like real CIFAR-100: a generalized model cannot master all
	// superclasses within 100 rounds, so specializing on the client's own
	// superclass mixture pays off — the condition behind the paper's
	// pureness of 0.51.
	// RootAlpha 0.02 concentrates each client on very few superclasses, as
	// TFF's PAM split does in practice; this gives clients a meaningful
	// majority-superclass affiliation for the pureness metric.
	cfg := dataset.CIFARConfig{Seed: seed, NoiseStd: 1.8, RootAlpha: 0.02}
	if p == Quick {
		cfg.Clients = 24
		cfg.TrainPerClient = 60
		cfg.TestPerClient = 15
	} else {
		// Table 1 trains 45 local batches of 10 per epoch, so full-scale
		// clients hold 450 train samples; 50 test samples keep walk
		// accuracy estimates from drowning in sampling noise.
		cfg.TrainPerClient = 450
		cfg.TestPerClient = 50
	}
	fed := dataset.CIFAR100PAM(cfg)
	// The narrow 32-unit trunk forces the 100 output classes to compete for
	// shared features — the analogue of the paper's shared CNN trunk, and
	// the source of cross-cluster interference that rewards specialization.
	//
	// CIFAR uses the dynamic normalization (Eq. 3) with a higher α: with 20
	// clusters the walk must overcome a 19:1 base rate against same-cluster
	// children, and the standard normalization's absolute accuracy gaps are
	// too small on this hard task (the exact failure mode Eq. 3 exists for).
	return Spec{
		Name:     "CIFAR-100",
		Fed:      fed,
		Arch:     nn.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Local:    nn.SGDConfig{LR: 0.05, Epochs: 5, BatchSize: 10, MaxBatches: 45},
		Selector: tipselect.AccuracyWalk{Alpha: 30, Norm: tipselect.NormDynamic},
	}
}

// FedProxSpec builds the Synthetic(0.5, 0.5) comparison setup of §5.3.3
// (30 clients, softmax regression, as in the FedProx paper).
func FedProxSpec(p Preset, seed int64) Spec {
	cfg := dataset.FedProxConfig{Seed: seed}
	if p == Quick {
		cfg.Clients = 15
		cfg.MaxSamples = 200
	}
	fed := dataset.FedProxSynthetic(cfg)
	return Spec{
		Name:     "FedProx-synthetic(0.5,0.5)",
		Fed:      fed,
		Arch:     nn.Arch{In: fed.InputDim, Out: fed.NumClasses},
		Local:    nn.SGDConfig{LR: 0.05, Epochs: 2, BatchSize: 10},
		Selector: tipselect.AccuracyWalk{Alpha: 10},
	}
}

// DAGConfig assembles a core.Config for the spec with the given selector.
// The simulation inherits the harness-wide Workers setting and draws its
// round fan-out from the shared pool.
func (s Spec) DAGConfig(p Preset, sel tipselect.Selector, seed int64) core.Config {
	return core.Config{
		Rounds:          p.Rounds(),
		ClientsPerRound: p.ClientsPerRound(),
		Local:           s.Local,
		Arch:            s.Arch,
		Selector:        sel,
		Workers:         Workers,
		Pool:            Pool(),
		Seed:            seed,
	}
}

// AsyncDAGConfig assembles a core.AsyncConfig for the spec — the
// event-driven engine's counterpart of DAGConfig, sharing the harness
// worker budget. Timing parameters are in simulated seconds.
func (s Spec) AsyncDAGConfig(duration, minCycle, maxCycle, netDelay float64, sel tipselect.Selector, seed int64) core.AsyncConfig {
	return core.AsyncConfig{
		Duration:     duration,
		MinCycle:     minCycle,
		MaxCycle:     maxCycle,
		NetworkDelay: netDelay,
		Local:        s.Local,
		Arch:         s.Arch,
		Selector:     sel,
		Workers:      Workers,
		Pool:         Pool(),
		Seed:         seed,
	}
}

// FLConfig assembles an fl.Config for the spec, mirroring the preset's
// round structure and sharing the harness worker budget.
func (s Spec) FLConfig(p Preset, proxMu float64, seed int64) fl.Config {
	return fl.Config{
		Rounds:          p.Rounds(),
		ClientsPerRound: p.ClientsPerRound(),
		Local:           s.Local,
		ProxMu:          proxMu,
		Arch:            s.Arch,
		Workers:         Workers,
		Pool:            Pool(),
		Seed:            seed,
	}
}

// Table1 renders the fixed training hyperparameters (Table 1 of the paper)
// as a markdown table. These values are encoded in the Spec constructors.
func Table1() string {
	return fmt.Sprintf(`### Table 1: hyperparameters

| Parameter | FMNIST-clustered | Poets | CIFAR-100 |
|---|---|---|---|
| Training rounds | %d | %d | %d |
| Clients / round | %d | %d | %d |
| Local epochs | 1 | 1 | 5 |
| Local batches | 10 | 35 | 45 |
| Batch size | 10 | 10 | 10 |
| Optimizer | SGD(0.05) | SGD(0.8) | SGD(0.01) |
`,
		Full.Rounds(), Full.Rounds(), Full.Rounds(),
		Full.ClientsPerRound(), Full.ClientsPerRound(), Full.ClientsPerRound())
}
