package sim

import (
	"context"
	"fmt"
	"io"
	"strings"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/faults"
)

// FaultScenarioNames lists the canned fault schedules, in sweep order.
func FaultScenarioNames() []string {
	return []string{"partition-heal", "straggler-3x", "churn-25"}
}

// FaultScenario resolves a named canned fault schedule against a run horizon
// (simulated seconds) and a base one-way link delay. Every scenario prices
// links individually — jittered lossy latency on top of the named disruption
// — so the async engine exercises the full per-link delivery model rather
// than the scalar compatibility path:
//
//   - partition-heal: the federation splits into two groups for the middle
//     quarter of the run ([T/4, T/2)) and heals; deferred transactions
//     deliver at the heal.
//   - straggler-3x: a quarter of the clients train 3× slower for the whole
//     run (cycle-time multiplier).
//   - churn-25: a quarter of the clients crash once, losing state, and
//     recover within T/4.
func FaultScenario(name string, horizon, delay float64) (faults.Config, error) {
	// The shared base is a lossy jittered network: 5% of initial broadcasts
	// drop and are recovered by one re-gossip round, 2% arrive twice.
	cfg := faults.Config{Delay: delay, Jitter: delay / 2, DropProb: 0.05, Retransmit: 1, DupProb: 0.02}
	switch name {
	case "partition-heal":
		cfg.Partitions = []faults.Partition{{From: horizon / 4, To: horizon / 2, Groups: 2}}
	case "straggler-3x":
		cfg.StragglerFrac = 0.25
		cfg.StragglerFactor = 3
	case "churn-25":
		cfg.ChurnFrac = 0.25
		cfg.MaxDowntime = horizon / 4
	default:
		return faults.Config{}, fmt.Errorf("sim: unknown fault scenario %q (want one of %s)",
			name, strings.Join(FaultScenarioNames(), " | "))
	}
	return cfg, nil
}

// FaultRow summarizes one fault scenario: the trained-model accuracy
// trajectory (first/last/mean over all client activations) and the
// communication counters the per-link delivery model produced.
type FaultRow struct {
	Scenario     string
	Events       int
	FirstAcc     float64
	LastAcc      float64
	MeanAcc      float64
	Transactions int
	Deliveries   int
	Dropped      int
	Duplicated   int
}

// FaultSweep runs every canned fault scenario on the async engine over the
// FMNIST-clustered federation and reports accuracy and communication
// outcomes. Like every sweep, the rows are bit-identical for any worker
// count (the per-event fault draws are keyed on stable identifiers, not on
// execution order), which is what lets the fault-* benchmark metrics be
// gated byte-for-byte.
func FaultSweep(ctx context.Context, p Preset, seed int64) ([]FaultRow, error) {
	duration := 12.0
	if p == Full {
		duration = 120
	}
	names := FaultScenarioNames()
	rows := make([]FaultRow, len(names))
	cells := make([]Cell, len(names))
	for i := range names {
		i, name := i, names[i]
		var accs []float64
		cells[i] = Cell{
			// No Snapshot: the row needs the full per-event accuracy trace,
			// which hooks cannot replay from a checkpoint. Cells recompute on
			// grid resume, which is safe because every cell is deterministic.
			Name: "faults-" + name,
			Build: func(io.Reader) (engine.Engine, []engine.Option, error) {
				spec := FMNISTSpec(p, seed)
				fc, err := FaultScenario(name, duration, 0.5)
				if err != nil {
					return nil, nil, err
				}
				cfg := spec.AsyncDAGConfig(duration, 1, 8, 0, spec.Selector, seed+int64(i))
				cfg.Faults = fc
				a, err := core.NewAsyncSimulation(spec.Fed, cfg)
				if err != nil {
					return nil, nil, err
				}
				return a, []engine.Option{engine.WithHooks(engine.Hooks{
					OnRound: func(ev engine.RoundEvent) {
						accs = append(accs, ev.Detail.(*core.AsyncEvent).TrainedAcc)
					},
				})}, nil
			},
			Finish: func(eng engine.Engine) error {
				if len(accs) == 0 {
					return fmt.Errorf("fault scenario %q produced no events", name)
				}
				res := eng.(*core.AsyncSimulation).Result()
				sum := 0.0
				for _, v := range accs {
					sum += v
				}
				rows[i] = FaultRow{
					Scenario:     name,
					Events:       len(accs),
					FirstAcc:     accs[0],
					LastAcc:      accs[len(accs)-1],
					MeanAcc:      sum / float64(len(accs)),
					Transactions: res.Transactions,
					Deliveries:   res.Deliveries,
					Dropped:      res.DroppedDeliveries,
					Duplicated:   res.DuplicatedDeliveries,
				}
				return nil
			},
		}
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFaults renders the fault-scenario sweep as a markdown table.
func RenderFaults(rows []FaultRow) string {
	var b strings.Builder
	b.WriteString("### Fault scenarios: training under partitions, stragglers and churn\n\n")
	b.WriteString("| scenario | events | first acc | last acc | mean acc | txs | deliveries | dropped→re-gossiped | duplicates |\n|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %.3f | %.3f | %.3f | %d | %d | %d | %d |\n",
			r.Scenario, r.Events, r.FirstAcc, r.LastAcc, r.MeanAcc,
			r.Transactions, r.Deliveries, r.Dropped, r.Duplicated)
	}
	return b.String()
}
