package sim

import (
	"context"
	"fmt"
	"io"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/fl"
	"github.com/specdag/specdag/internal/metrics"
)

// GossipComparison is an extension experiment beyond the paper's figures:
// it pits the Specializing DAG against gossip learning (the other
// decentralized family, §3.2) and FedAvg on the clustered dataset. The DAG's
// performance-aware merge partner selection should beat gossip's random
// partners on non-IID data. The three algorithm runs only read the shared
// federation; they run as independent cells on the shared scheduler.
func GossipComparison(ctx context.Context, p Preset, seed int64) ([]Fig1011Curve, error) {
	spec := FMNISTSpec(p, seed)
	out := make([]Fig1011Curve, 3)

	cells := []Cell{
		{
			Name: "gossipcmp-fedavg",
			Build: func(io.Reader) (engine.Engine, []engine.Option, error) {
				fedEng, err := fl.NewFederated(spec.Fed, spec.FLConfig(p, 0, seed+60))
				if err != nil {
					return nil, nil, err
				}
				return fedEng, nil, nil
			},
			Finish: func(eng engine.Engine) error {
				out[0] = curveFromFL("FedAvg", eng.(*fl.Federated).Result())
				return nil
			},
		},
		{
			Name: "gossipcmp-gossip",
			Build: func(io.Reader) (engine.Engine, []engine.Option, error) {
				gossipEng, err := fl.NewGossip(spec.Fed, fl.GossipConfig{
					Rounds:          p.Rounds(),
					ClientsPerRound: p.ClientsPerRound(),
					Local:           spec.Local,
					Arch:            spec.Arch,
					Seed:            seed + 61,
				})
				if err != nil {
					return nil, nil, err
				}
				return gossipEng, nil, nil
			},
			Finish: func(eng engine.Engine) error {
				out[1] = curveFromFL("Gossip", eng.(*fl.Gossip).Result())
				return nil
			},
		},
		dagCurveCell(p, spec, seed+62, "gossipcmp-dag", &out[2]),
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	return out, nil
}

func curveFromFL(name string, res *fl.Result) Fig1011Curve {
	series := metrics.NewSeries(name, "round", "acc", "loss")
	for r, rr := range res.Rounds {
		series.Add(float64(r+1), rr.MeanAcc, rr.MeanLoss)
	}
	return Fig1011Curve{Algorithm: name, Series: series}
}

// VisibilitySweep is an extension experiment relaxing the ideal-broadcast
// assumption the paper makes in §5.3.5: transactions become visible to other
// clients only RevealDelay rounds after publication. The sweep measures how
// stale views affect specialization (pureness) and accuracy.
func VisibilitySweep(ctx context.Context, p Preset, seed int64) ([]AblationRow, error) {
	delays := []int{0, 1, 3, 5}
	rows := make([]AblationRow, len(delays))
	cells := make([]Cell, len(delays))
	for i, d := range delays {
		d := d
		cells[i] = variantCell(p, seed, "visibility-", fmt.Sprintf("reveal-delay=%d", d), func(c *core.Config) {
			c.RevealDelay = d
		}, &rows[i])
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	return rows, nil
}
