package sim

import (
	"context"
	"fmt"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/fl"
	"github.com/specdag/specdag/internal/metrics"
	"github.com/specdag/specdag/internal/par"
)

// GossipComparison is an extension experiment beyond the paper's figures:
// it pits the Specializing DAG against gossip learning (the other
// decentralized family, §3.2) and FedAvg on the clustered dataset. The DAG's
// performance-aware merge partner selection should beat gossip's random
// partners on non-IID data.
func GossipComparison(ctx context.Context, p Preset, seed int64) ([]Fig1011Curve, error) {
	spec := FMNISTSpec(p, seed)
	out := make([]Fig1011Curve, 3)

	// The three algorithm runs only read the shared federation; run them as
	// independent cells.
	err := par.ForEachErrIn(Pool(), Workers, 3, func(i int) error {
		switch i {
		case 0:
			fedEng, err := fl.NewFederated(spec.Fed, spec.FLConfig(p, 0, seed+60))
			if err != nil {
				return fmt.Errorf("gossip comparison fedavg: %w", err)
			}
			flRes, err := runFL(ctx, fedEng)
			if err != nil {
				return fmt.Errorf("gossip comparison fedavg: %w", err)
			}
			out[i] = curveFromFL("FedAvg", flRes)
		case 1:
			gossipEng, err := fl.NewGossip(spec.Fed, fl.GossipConfig{
				Rounds:          p.Rounds(),
				ClientsPerRound: p.ClientsPerRound(),
				Local:           spec.Local,
				Arch:            spec.Arch,
				Seed:            seed + 61,
			})
			if err != nil {
				return fmt.Errorf("gossip comparison gossip: %w", err)
			}
			gossip, err := runFL(ctx, gossipEng)
			if err != nil {
				return fmt.Errorf("gossip comparison gossip: %w", err)
			}
			out[i] = curveFromFL("Gossip", gossip)
		case 2:
			curve, err := dagCurve(ctx, p, spec, seed+62)
			if err != nil {
				return fmt.Errorf("gossip comparison dag: %w", err)
			}
			out[i] = curve
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func curveFromFL(name string, res *fl.Result) Fig1011Curve {
	series := metrics.NewSeries(name, "round", "acc", "loss")
	for r, rr := range res.Rounds {
		series.Add(float64(r+1), rr.MeanAcc, rr.MeanLoss)
	}
	return Fig1011Curve{Algorithm: name, Series: series}
}

// VisibilitySweep is an extension experiment relaxing the ideal-broadcast
// assumption the paper makes in §5.3.5: transactions become visible to other
// clients only RevealDelay rounds after publication. The sweep measures how
// stale views affect specialization (pureness) and accuracy.
func VisibilitySweep(ctx context.Context, p Preset, seed int64) ([]AblationRow, error) {
	delays := []int{0, 1, 3, 5}
	rows := make([]AblationRow, len(delays))
	err := par.ForEachErrIn(Pool(), Workers, len(delays), func(i int) error {
		d := delays[i]
		row, err := runVariant(ctx, p, seed, fmt.Sprintf("reveal-delay=%d", d), func(c *core.Config) {
			c.RevealDelay = d
		})
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
