package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestFaultScenarioResolution(t *testing.T) {
	for _, name := range FaultScenarioNames() {
		cfg, err := FaultScenario(name, 12, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s resolves to an invalid schedule: %v", name, err)
		}
		if !cfg.Enabled() {
			t.Errorf("%s resolves to a disabled schedule", name)
		}
	}
	if _, err := FaultScenario("meteor-strike", 12, 0.5); err == nil ||
		!strings.Contains(err.Error(), "partition-heal") {
		t.Errorf("unknown scenario: got %v, want an error naming the valid scenarios", err)
	}
}

// TestFaultSweepDeterminism pins that the sweep's rows — accuracy
// trajectories and communication counters under partitions, stragglers and
// churn — are a pure function of (preset, seed): two runs on the shared
// worker pool produce identical rows. Cross-worker-count invariance of the
// underlying engine is pinned by TestAsyncFaultWorkerInvariance
// (internal/core) and byte-for-byte across processes by the gated fault-*
// benchmark metrics (cmd/benchgate).
func TestFaultSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fault sweeps")
	}
	a, err := FaultSweep(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(FaultScenarioNames()) {
		t.Fatalf("sweep produced %d rows, want %d", len(a), len(FaultScenarioNames()))
	}
	for _, r := range a {
		if r.Events == 0 || r.Transactions == 0 {
			t.Errorf("%s: empty run (%+v)", r.Scenario, r)
		}
		if r.Dropped == 0 || r.Duplicated == 0 {
			t.Errorf("%s: the lossy base network priced no drops/duplicates (%+v)", r.Scenario, r)
		}
	}
	b, err := FaultSweep(context.Background(), Quick, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault sweep not deterministic:\n first %+v\nsecond %+v", a, b)
	}
}
