package sim

import (
	"context"
	"fmt"
	"io"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/graphx"
	"github.com/specdag/specdag/internal/metrics"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/xrand"
)

// runDAG builds a simulation for cfg and drives it through the unified run
// API with the given options, returning the simulation for post-run metrics.
// Single-run experiments go through here; sweeps submit their cells to the
// scheduler via RunGrid instead.
func runDAG(ctx context.Context, spec Spec, cfg core.Config, opts ...engine.Option) (*core.Simulation, error) {
	sim, err := core.NewSimulation(spec.Fed, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := engine.Run(ctx, sim, opts...); err != nil {
		return nil, err
	}
	return sim, nil
}

// buildDAG constructs the simulation for one grid cell, resuming from a
// cell checkpoint when the grid hands one down.
func buildDAG(spec Spec, cfg core.Config, ckpt io.Reader) (*core.Simulation, error) {
	if ckpt != nil {
		return core.ResumeSimulation(spec.Fed, cfg, ckpt)
	}
	return core.NewSimulation(spec.Fed, cfg)
}

// Table2Row is one row of Table 2: the approval pureness in the DAG after
// training with the accuracy walk, against the random-approval baseline.
type Table2Row struct {
	Dataset  string
	Clusters int
	Base     float64
	Pureness float64
}

// Table2 reproduces Table 2: approval pureness after training on all three
// datasets, each with its spec's headline selector.
func Table2(ctx context.Context, p Preset, seed int64) ([]Table2Row, error) {
	specs := []Spec{FMNISTSpec(p, seed), PoetsSpec(p, seed+1), CIFARSpec(p, seed+2)}
	rows := make([]Table2Row, len(specs))
	cells := make([]Cell, len(specs))
	for i := range specs {
		i, spec := i, specs[i]
		cells[i] = Cell{
			Name:     "table2-" + spec.Name,
			Snapshot: true,
			Build: func(ckpt io.Reader) (engine.Engine, []engine.Option, error) {
				sim, err := buildDAG(spec, spec.DAGConfig(p, spec.Selector, seed+int64(10+i)), ckpt)
				if err != nil {
					return nil, nil, err
				}
				return sim, nil, nil
			},
			Finish: func(eng engine.Engine) error {
				sim := eng.(*core.Simulation)
				rows[i] = Table2Row{
					Dataset:  spec.Name,
					Clusters: spec.Fed.NumClusters,
					Base:     spec.Fed.BasePureness(),
					Pureness: metrics.ApprovalPureness(sim.DAG(), spec.Fed.ClusterOf()),
				}
				return nil
			},
		}
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig5Result is one α's trajectory of the three G_clients metrics of §4.3.
type Fig5Result struct {
	Alpha  float64
	Series *metrics.Series // cols: round, modularity, partitions, misclassification
}

// Figure5 reproduces Fig. 5: modularity, partition count and
// misclassification fraction of the Louvain partition of G_clients over
// training rounds, for α ∈ {1, 10, 100} on FMNIST-clustered. The periodic
// G_clients analysis rides the run as an observer hook — a mid-run metric
// probe over the live DAG.
func Figure5(ctx context.Context, p Preset, seed int64) ([]Fig5Result, error) {
	alphas := []float64{1, 10, 100}
	sampleEvery := 5
	if p == Quick {
		sampleEvery = 2
	}

	out := make([]Fig5Result, len(alphas))
	cells := make([]Cell, len(alphas))
	for ai := range alphas {
		ai, alpha := ai, alphas[ai]
		var series *metrics.Series
		cells[ai] = Cell{
			// The periodic Louvain analysis streams off live round events,
			// so the cell restarts rather than resumes after a crash
			// (Snapshot off): a resumed run could not replay the G_clients
			// snapshots of rounds before the checkpoint.
			Name: fmt.Sprintf("fig5-alpha=%g", alpha),
			Build: func(io.Reader) (engine.Engine, []engine.Option, error) {
				spec := FMNISTSpec(p, seed)
				sel := tipselect.AccuracyWalk{Alpha: alpha}
				sim, err := core.NewSimulation(spec.Fed, spec.DAGConfig(p, sel, seed+int64(ai)))
				if err != nil {
					return nil, nil, err
				}
				truth := spec.Fed.ClusterOf()
				series = metrics.NewSeries(fmt.Sprintf("fig5 alpha=%g", alpha),
					"round", "modularity", "partitions", "misclassification")
				lrng := xrand.New(seed + 100 + int64(ai))
				return sim, []engine.Option{engine.WithHooks(engine.Hooks{
					OnRound: func(ev engine.RoundEvent) {
						if (ev.Round+1)%sampleEvery != 0 {
							return
						}
						g := metrics.BuildClientGraph(sim.DAG())
						part := graphx.Louvain(g, lrng)
						series.Add(float64(ev.Round+1),
							graphx.Modularity(g, part),
							float64(graphx.NumCommunities(part)),
							metrics.Misclassification(part, truth))
					},
				})}, nil
			},
			Finish: func(engine.Engine) error {
				out[ai] = Fig5Result{Alpha: alpha, Series: series}
				return nil
			},
		}
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	return out, nil
}

// AccuracyCurve is a labeled per-round accuracy trajectory.
type AccuracyCurve struct {
	Label  string
	Series *metrics.Series // cols: round, acc
}

// accuracySweep runs the DAG once per α and records the mean trained-model
// accuracy per round, streamed through round events.
func accuracySweep(ctx context.Context, p Preset, spec func(int) Spec, norm tipselect.Normalization, seed int64) ([]AccuracyCurve, error) {
	alphas := []float64{0.1, 1, 10, 100}
	out := make([]AccuracyCurve, len(alphas))
	cells := make([]Cell, len(alphas))
	for ai := range alphas {
		ai, alpha := ai, alphas[ai]
		series := metrics.NewSeries(fmt.Sprintf("alpha=%g (%s)", alpha, norm), "round", "acc")
		cells[ai] = Cell{
			Name: fmt.Sprintf("accsweep-%s-%s-alpha=%g", spec(ai).Name, norm, alpha),
			Build: func(io.Reader) (engine.Engine, []engine.Option, error) {
				sp := spec(ai)
				sel := tipselect.AccuracyWalk{Alpha: alpha, Norm: norm}
				sim, err := core.NewSimulation(sp.Fed, sp.DAGConfig(p, sel, seed+int64(ai)))
				if err != nil {
					return nil, nil, err
				}
				return sim, []engine.Option{engine.WithHooks(engine.Hooks{
					OnRound: func(ev engine.RoundEvent) {
						series.Add(float64(ev.Round+1), ev.MeanAcc)
					},
				})}, nil
			},
			Finish: func(engine.Engine) error {
				out[ai] = AccuracyCurve{Label: fmt.Sprintf("alpha=%g", alpha), Series: series}
				return nil
			},
		}
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	return out, nil
}

// Figure6 reproduces Fig. 6: accuracy per round on FMNIST-clustered for
// α ∈ {0.1, 1, 10, 100} with the standard normalization (Eq. 1).
func Figure6(ctx context.Context, p Preset, seed int64) ([]AccuracyCurve, error) {
	return accuracySweep(ctx, p, func(int) Spec { return FMNISTSpec(p, seed) }, tipselect.NormStandard, seed)
}

// Fig7Result extends the accuracy sweep with the approval pureness achieved
// by each normalization at α = 1 (the paper reports 0.51 dynamic vs 0.40
// standard).
type Fig7Result struct {
	Curves []AccuracyCurve
	// PurenessAlpha1 maps normalization name to approval pureness of the
	// α=1 run.
	PurenessAlpha1 map[string]float64
}

// Figure7 reproduces Fig. 7: the accuracy sweep with the dynamic
// normalization (Eq. 3), plus the α=1 pureness comparison against the
// standard normalization.
func Figure7(ctx context.Context, p Preset, seed int64) (*Fig7Result, error) {
	curves, err := accuracySweep(ctx, p, func(int) Spec { return FMNISTSpec(p, seed) }, tipselect.NormDynamic, seed)
	if err != nil {
		return nil, err
	}
	norms := []tipselect.Normalization{tipselect.NormStandard, tipselect.NormDynamic}
	vals := make([]float64, len(norms))
	cells := make([]Cell, len(norms))
	for i := range norms {
		i, norm := i, norms[i]
		spec := FMNISTSpec(p, seed)
		cells[i] = Cell{
			Name:     fmt.Sprintf("fig7-norm-%s", norm),
			Snapshot: true,
			Build: func(ckpt io.Reader) (engine.Engine, []engine.Option, error) {
				sim, err := buildDAG(spec, spec.DAGConfig(p, tipselect.AccuracyWalk{Alpha: 1, Norm: norm}, seed+50), ckpt)
				if err != nil {
					return nil, nil, err
				}
				return sim, nil, nil
			},
			Finish: func(eng engine.Engine) error {
				vals[i] = metrics.ApprovalPureness(eng.(*core.Simulation).DAG(), spec.Fed.ClusterOf())
				return nil
			},
		}
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	pureness := make(map[string]float64, len(norms))
	for i, norm := range norms {
		pureness[norm.String()] = vals[i]
	}
	return &Fig7Result{Curves: curves, PurenessAlpha1: pureness}, nil
}

// Figure8 reproduces Fig. 8: the α accuracy sweep on the relaxed
// FMNIST-clustered dataset (15–20 % foreign-cluster data per client).
func Figure8(ctx context.Context, p Preset, seed int64) ([]AccuracyCurve, error) {
	return accuracySweep(ctx, p, func(int) Spec { return RelaxedFMNISTSpec(p, seed) }, tipselect.NormStandard, seed)
}
