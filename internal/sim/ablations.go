package sim

import (
	"context"
	"io"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/metrics"
	"github.com/specdag/specdag/internal/tipselect"
)

// AblationRow summarizes one design-choice variant on FMNIST-clustered:
// final accuracy (mean over the last five rounds), approval pureness, DAG
// size and total walk evaluations.
type AblationRow struct {
	Variant   string
	FinalAcc  float64
	Pureness  float64
	DAGSize   int
	WalkEvals int
}

// variantCell builds one grid cell running an FMNIST DAG simulation with the
// config customized by mutate, extracting an AblationRow into *out. prefix
// namespaces the cell (and its checkpoint file) per caller.
func variantCell(p Preset, seed int64, prefix, variant string, mutate func(*core.Config), out *AblationRow) Cell {
	spec := FMNISTSpec(p, seed)
	return Cell{
		Name:     prefix + variant,
		Snapshot: true,
		Build: func(ckpt io.Reader) (engine.Engine, []engine.Option, error) {
			cfg := spec.DAGConfig(p, tipselect.AccuracyWalk{Alpha: 10}, seed)
			mutate(&cfg)
			sim, err := buildDAG(spec, cfg, ckpt)
			if err != nil {
				return nil, nil, err
			}
			return sim, nil, nil
		},
		Finish: func(eng engine.Engine) error {
			sim := eng.(*core.Simulation)
			results := sim.Results()
			evals := 0
			accSum, accN := 0.0, 0
			tail := 5
			if len(results) < tail {
				tail = len(results)
			}
			for i, rr := range results {
				evals += rr.Walk.Evaluations
				if i >= len(results)-tail {
					accSum += rr.MeanTrainedAcc()
					accN++
				}
			}
			*out = AblationRow{
				Variant:   variant,
				FinalAcc:  accSum / float64(accN),
				Pureness:  metrics.ApprovalPureness(sim.DAG(), spec.Fed.ClusterOf()),
				DAGSize:   sim.DAG().Size(),
				WalkEvals: evals,
			}
			return nil
		},
	}
}

// runVariants submits every variant as an independent grid cell on the
// shared scheduler; rows come back in variant order.
func runVariants(ctx context.Context, p Preset, seed int64, variants []struct {
	name   string
	mutate func(*core.Config)
}) ([]AblationRow, error) {
	rows := make([]AblationRow, len(variants))
	cells := make([]Cell, len(variants))
	for i, v := range variants {
		cells[i] = variantCell(p, seed, "ablation-", v.name, v.mutate, &rows[i])
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationNormalization compares Eq. 1 vs Eq. 3 at α = 1, where the paper
// reports the dynamic normalization helps (pureness 0.51 vs 0.40).
func AblationNormalization(ctx context.Context, p Preset, seed int64) ([]AblationRow, error) {
	return runVariants(ctx, p, seed, []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"standard(alpha=1)", func(c *core.Config) { c.Selector = tipselect.AccuracyWalk{Alpha: 1} }},
		{"dynamic(alpha=1)", func(c *core.Config) {
			c.Selector = tipselect.AccuracyWalk{Alpha: 1, Norm: tipselect.NormDynamic}
		}},
	})
}

// AblationPublishGate compares the publish-if-better gate (§4.1) against
// unconditional publishing.
func AblationPublishGate(ctx context.Context, p Preset, seed int64) ([]AblationRow, error) {
	return runVariants(ctx, p, seed, []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"gate-on", func(c *core.Config) {}},
		{"gate-off", func(c *core.Config) { c.DisablePublishGate = true }},
	})
}

// AblationWalkDepth compares genesis-start walks against the depth-15–25
// entry sampling proposed by Popov and used in §5.3.5.
func AblationWalkDepth(ctx context.Context, p Preset, seed int64) ([]AblationRow, error) {
	return runVariants(ctx, p, seed, []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"genesis-start", func(c *core.Config) {}},
		{"depth-15-25", func(c *core.Config) {
			c.Selector = tipselect.AccuracyWalk{Alpha: 10, DepthMin: 15, DepthMax: 25}
		}},
	})
}

// AblationReferenceWalks compares 1 vs 3 walks for the consensus reference
// model.
func AblationReferenceWalks(ctx context.Context, p Preset, seed int64) ([]AblationRow, error) {
	return runVariants(ctx, p, seed, []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"ref-walks=1", func(c *core.Config) { c.ReferenceWalks = 1 }},
		{"ref-walks=3", func(c *core.Config) { c.ReferenceWalks = 3 }},
	})
}

// AblationPartialSharing compares full model sharing against the paper's
// future-work extension of sharing only the first layer (personal heads).
func AblationPartialSharing(ctx context.Context, p Preset, seed int64) ([]AblationRow, error) {
	return runVariants(ctx, p, seed, []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"share-all-layers", func(c *core.Config) {}},
		{"share-first-layer", func(c *core.Config) { c.SharedLayers = 1 }},
	})
}

// AblationSelectors compares the three selector families: the paper's
// accuracy walk, the classic cumulative-weight walk, and uniform random tip
// selection.
func AblationSelectors(ctx context.Context, p Preset, seed int64) ([]AblationRow, error) {
	return runVariants(ctx, p, seed, []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"accuracy-walk", func(c *core.Config) {}},
		{"weighted-walk", func(c *core.Config) { c.Selector = tipselect.WeightedWalk{Alpha: 0.1} }},
		{"urts", func(c *core.Config) { c.Selector = tipselect.URTS{} }},
	})
}
