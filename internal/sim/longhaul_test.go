package sim

import (
	"context"
	"os"
	"testing"
)

// TestLongHaulQuickCompacts runs the quick-scale long-haul preset end to end
// and checks that the bounded-memory machinery actually engages: epochs
// freeze, parameters spill, and the final checkpoint reflects the compacted
// DAG. Seed 7 is chosen to avoid an early orphan tip (a round-0 tip that is
// never approved pins the freeze guard at round 0 forever — conservative and
// correct, but it would make this test vacuous).
func TestLongHaulQuickCompacts(t *testing.T) {
	rep, err := LongHaul(context.Background(), Quick, t.TempDir(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events < 1000 {
		t.Fatalf("quick long-haul processed only %d events", rep.Events)
	}
	if rep.FrozenEpochs == 0 || rep.FrozenTxs == 0 || rep.LiveFloor == 0 {
		t.Fatalf("compaction never engaged: %+v", rep)
	}
	if rep.SpillBytes == 0 {
		t.Fatalf("frozen epochs spilled nothing: %+v", rep)
	}
	if rep.CheckpointBytes == 0 {
		t.Fatalf("checkpoint sizing failed: %+v", rep)
	}
	t.Log("\n" + RenderLongHaul(rep))
}

// TestLongHaulBoundedRSS is the ROADMAP item 2 acceptance run: ~10^6 events
// at full scale in bounded memory. It takes minutes, so it only runs when
// SPECDAG_LONG_HAUL=1 (the nightly long-haul CI lane sets it).
func TestLongHaulBoundedRSS(t *testing.T) {
	if os.Getenv("SPECDAG_LONG_HAUL") != "1" {
		t.Skip("long-haul endurance run; set SPECDAG_LONG_HAUL=1 to enable")
	}
	rep, err := LongHaul(context.Background(), Full, t.TempDir(), 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderLongHaul(rep))
	if rep.Events < 900_000 {
		t.Fatalf("full long-haul processed only %d events, want ~10^6", rep.Events)
	}
	if rep.FrozenEpochs == 0 {
		t.Fatal("full-scale run froze no epochs")
	}
	// The bounded-memory claim. Uncompacted, ~500k published transactions at
	// ~230 float64 params each would hold >0.9 GiB of parameters alone; the
	// ceiling below is far under that, so a retention regression trips it.
	const heapCeiling = 512 << 20
	if rep.PeakHeapBytes > heapCeiling {
		t.Fatalf("peak heap %d bytes exceeds the %d-byte ceiling", rep.PeakHeapBytes, uint64(heapCeiling))
	}
	// Checkpoints must track the live suffix, not history: at full scale the
	// frozen prefix dwarfs the live window, so a few tens of MiB means
	// frozen params leaked back into the snapshot.
	const ckptCeiling = 64 << 20
	if rep.CheckpointBytes > ckptCeiling {
		t.Fatalf("final checkpoint %d bytes exceeds the %d-byte ceiling", rep.CheckpointBytes, int64(ckptCeiling))
	}
}
