package sim

// Long-haul preset: the bounded-memory endurance run behind ROADMAP item 2.
// A deliberately small federation (tiny feature dimension, tiny model) keeps
// the per-event compute negligible, so a run of ~10^6 client activations
// finishes in minutes and the binding constraint is exactly what the preset
// exists to demonstrate: memory retention. With epoch compaction enabled the
// run completes in bounded RSS — old epochs freeze into summaries, parameter
// vectors spill to disk, and checkpoints stay proportional to the live
// suffix — while staying byte-identical to an uncompacted run.

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/tipselect"
)

// LongHaulSelector is the depth-banded accuracy walk the long-haul preset
// runs: walks enter the DAG 15-25 approval hops above the tips, which (a)
// matches the paper's biased-walk dynamics and (b) gives compaction its
// structural freeze guard — GuardDepth derives from DepthMax, so everything
// the walk can ever read stays in the live suffix.
func LongHaulSelector() tipselect.Selector {
	return tipselect.AccuracyWalk{Alpha: 10, DepthMin: 15, DepthMax: 25}
}

// LongHaulSpec builds the long-haul federation: 50 clients over the
// FMNIST-clustered generator at feature dimension 16 with a single 8-unit
// hidden layer. ~230 model parameters per transaction make per-event training
// cheap while still exercising every publish-gate and walk code path.
func LongHaulSpec(seed int64) Spec {
	cfg := dataset.FMNISTConfig{
		Seed:           seed,
		Clients:        50,
		TrainPerClient: 30,
		TestPerClient:  10,
		Dim:            16,
		NoiseStd:       1.5,
	}
	fed := dataset.FMNISTClustered(cfg)
	return Spec{
		Name:     "FMNIST-longhaul",
		Fed:      fed,
		Arch:     nn.Arch{In: fed.InputDim, Hidden: []int{8}, Out: fed.NumClasses},
		Local:    nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10, MaxBatches: 3},
		Selector: LongHaulSelector(),
	}
}

// longHaulScale returns the preset's event target and epoch width (simulated
// seconds). Full is the ROADMAP acceptance bar — a ~10^6-event run; Quick is
// sized for tests but still spans many epochs so freezing actually happens.
func longHaulScale(p Preset) (targetEvents, epochWidth int) {
	if p == Full {
		return 1_000_000, 60
	}
	return 6_000, 10
}

// LongHaulAsyncConfig assembles the event-driven configuration for the
// long-haul run: heterogeneous cycle times in [0.5s, 2s], 0.5s broadcast
// delay, and epoch compaction spilling frozen parameters to spillDir (or
// dropping them when spillDir is empty). The duration is derived from the
// preset's event target via the expected activation rate — for cycle times
// drawn uniformly from [a, b], E[1/c] = ln(b/a)/(b-a) per client.
func LongHaulAsyncConfig(p Preset, spillDir string, seed int64) core.AsyncConfig {
	spec := LongHaulSpec(seed)
	const minCycle, maxCycle, netDelay = 0.5, 2.0, 0.5
	target, width := longHaulScale(p)
	ratePerClient := 0.9242 // ln(maxCycle/minCycle)/(maxCycle-minCycle)
	duration := float64(target) / (float64(len(spec.Fed.Clients)) * ratePerClient)
	acfg := spec.AsyncDAGConfig(duration, minCycle, maxCycle, netDelay, spec.Selector, seed)
	acfg.Compaction.Width = width
	acfg.Compaction.Live = 2
	acfg.Compaction.SpillDir = spillDir
	return acfg
}

// LongHaulReport is the outcome of a long-haul run: scale, compaction
// effectiveness, and the two bounded-resource measurements (peak heap during
// the run, checkpoint size at the end).
type LongHaulReport struct {
	Preset          string
	Events          int     // client activations processed
	SimulatedTime   float64 // horizon in simulated seconds
	Transactions    int     // published transactions (incl. genesis)
	LiveFloor       int     // first live transaction ID
	FrozenEpochs    int
	FrozenTxs       int
	SpillBytes      int64  // on-disk bytes of spilled parameter vectors
	PeakHeapBytes   uint64 // max HeapAlloc observed (sampled every few k events)
	CheckpointBytes int64  // full SDA1 checkpoint size at the end of the run
	MeanFinalAcc    float64
}

// LongHaul runs the bounded-memory endurance preset to completion, sampling
// the heap as it goes, and reports compaction effectiveness and resource
// ceilings. spillDir receives one spill file per frozen epoch; the caller
// owns cleanup (tests pass t.TempDir()).
func LongHaul(ctx context.Context, p Preset, spillDir string, seed int64) (*LongHaulReport, error) {
	spec := LongHaulSpec(seed)
	acfg := LongHaulAsyncConfig(p, spillDir, seed)
	a, err := core.NewAsyncSimulation(spec.Fed, acfg)
	if err != nil {
		return nil, err
	}

	// Sample HeapAlloc on a fixed event stride. The stride is coarse enough
	// that ReadMemStats cost is invisible, fine enough (vs. the multi-second
	// epoch width) that growth between freezes cannot hide from it.
	const sampleEvery = 2048
	var (
		ms   runtime.MemStats
		peak uint64
	)
	events := 0
	for {
		_, done, err := a.Step(ctx)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		events++
		if events%sampleEvery == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}

	ckptBytes, err := a.WriteCheckpoint(io.Discard)
	if err != nil {
		return nil, fmt.Errorf("sizing final checkpoint: %w", err)
	}

	d := a.DAG()
	rep := &LongHaulReport{
		Preset:          p.String(),
		Events:          events,
		SimulatedTime:   acfg.Duration,
		Transactions:    d.Size(),
		LiveFloor:       int(d.LiveFloor()),
		PeakHeapBytes:   peak,
		CheckpointBytes: ckptBytes,
	}
	for _, e := range d.FrozenEpochs() {
		rep.FrozenEpochs++
		rep.FrozenTxs += e.Txs
		rep.SpillBytes += e.SpillBytes
	}
	res := a.Result()
	for _, c := range res.Clients {
		rep.MeanFinalAcc += c.FinalAcc
	}
	if len(res.Clients) > 0 {
		rep.MeanFinalAcc /= float64(len(res.Clients))
	}
	return rep, nil
}

// RenderLongHaul formats a long-haul report as markdown.
func RenderLongHaul(r *LongHaulReport) string {
	frozenFrac := 0.0
	if r.Transactions > 0 {
		frozenFrac = float64(r.FrozenTxs) / float64(r.Transactions)
	}
	return fmt.Sprintf(`### Long-haul bounded-memory run (%s scale)

| Metric | Value |
|---|---|
| Events processed | %d |
| Simulated time | %.0f s |
| Transactions | %d |
| Frozen epochs | %d |
| Frozen transactions | %d (%.1f%% of DAG, live floor %d) |
| Spilled parameters | %.2f MiB |
| Peak heap | %.1f MiB |
| Final checkpoint | %.2f MiB |
| Mean final accuracy | %.3f |
`,
		r.Preset, r.Events, r.SimulatedTime, r.Transactions,
		r.FrozenEpochs, r.FrozenTxs, 100*frozenFrac, r.LiveFloor,
		float64(r.SpillBytes)/(1<<20),
		float64(r.PeakHeapBytes)/(1<<20),
		float64(r.CheckpointBytes)/(1<<20),
		r.MeanFinalAcc)
}
