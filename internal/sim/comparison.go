package sim

import (
	"context"
	"fmt"

	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/fl"
	"github.com/specdag/specdag/internal/metrics"
	"github.com/specdag/specdag/internal/par"
)

// Fig9Group is one box of Fig. 9: the accuracy distribution over the clients
// selected in a group of five consecutive rounds.
type Fig9Group struct {
	StartRound int
	Stats      metrics.BoxStats
}

// Fig9Result compares FedAvg's aggregated-model accuracies against the
// DAG's locally trained model accuracies on one dataset.
type Fig9Result struct {
	Dataset string
	FedAvg  []Fig9Group
	DAG     []Fig9Group
}

// groupByFives folds per-round client accuracies into five-round box groups,
// the aggregation both halves of Fig. 9 share.
func groupByFives(perRound [][]float64) []Fig9Group {
	var groups []Fig9Group
	var accs []float64
	start := 0
	for r, roundAccs := range perRound {
		accs = append(accs, roundAccs...)
		if (r+1)%5 == 0 || r == len(perRound)-1 {
			groups = append(groups, Fig9Group{StartRound: start, Stats: metrics.NewBoxStats(accs)})
			accs = nil
			start = r + 1
		}
	}
	return groups
}

// runFL builds a FedAvg/FedProx/gossip-shaped engine and drives it through
// the unified run API, returning the result.
func runFL(ctx context.Context, eng interface {
	engine.Engine
	Result() *fl.Result
}) (*fl.Result, error) {
	if _, err := engine.Run(ctx, eng); err != nil {
		return nil, err
	}
	return eng.Result(), nil
}

// Figure9 reproduces Fig. 9: per-client accuracy distributions, grouped
// over five consecutive rounds, FedAvg vs the Specializing DAG, for all
// three datasets. The six underlying runs (three datasets × two algorithms)
// are independent cells on the shared worker pool.
func Figure9(ctx context.Context, p Preset, seed int64) ([]Fig9Result, error) {
	specs := []Spec{FMNISTSpec(p, seed), PoetsSpec(p, seed+1), CIFARSpec(p, seed+2)}
	out := make([]Fig9Result, len(specs))
	err := par.ForEachErrIn(Pool(), Workers, len(specs), func(i int) error {
		spec := specs[i]
		res := Fig9Result{Dataset: spec.Name}

		halves := []func() error{
			func() error {
				fedEng, err := fl.NewFederated(spec.Fed, spec.FLConfig(p, 0, seed+int64(20+i)))
				if err != nil {
					return fmt.Errorf("fig9 fedavg %s: %w", spec.Name, err)
				}
				flRes, err := runFL(ctx, fedEng)
				if err != nil {
					return fmt.Errorf("fig9 fedavg %s: %w", spec.Name, err)
				}
				perRound := make([][]float64, len(flRes.Rounds))
				for r, rr := range flRes.Rounds {
					perRound[r] = rr.Accs
				}
				res.FedAvg = groupByFives(perRound)
				return nil
			},
			func() error {
				sim, err := runDAG(ctx, spec, spec.DAGConfig(p, spec.Selector, seed+int64(30+i)))
				if err != nil {
					return fmt.Errorf("fig9 dag %s: %w", spec.Name, err)
				}
				dagRounds := sim.Results()
				perRound := make([][]float64, len(dagRounds))
				for r, rr := range dagRounds {
					perRound[r] = rr.TrainedAcc
				}
				res.DAG = groupByFives(perRound)
				return nil
			},
		}
		if err := par.ForEachErrIn(Pool(), Workers, len(halves), func(h int) error { return halves[h]() }); err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig1011Curve is one algorithm's mean accuracy and loss trajectory on the
// FedProx synthetic dataset (Figs. 10 and 11 share the same runs).
type Fig1011Curve struct {
	Algorithm string
	Series    *metrics.Series // cols: round, acc, loss
}

// dagCurve runs the Specializing DAG on spec and records its per-round mean
// accuracy/loss curve — the DAG half of every algorithm comparison — by
// observing round events.
func dagCurve(ctx context.Context, p Preset, spec Spec, seed int64) (Fig1011Curve, error) {
	series := metrics.NewSeries("DAG", "round", "acc", "loss")
	_, err := runDAG(ctx, spec, spec.DAGConfig(p, spec.Selector, seed),
		engine.WithHooks(engine.Hooks{OnRound: func(ev engine.RoundEvent) {
			series.Add(float64(ev.Round+1), ev.MeanAcc, ev.MeanLoss)
		}}))
	if err != nil {
		return Fig1011Curve{}, err
	}
	return Fig1011Curve{Algorithm: "DAG", Series: series}, nil
}

// Figure10And11 reproduces Figs. 10 and 11: average accuracy and loss per
// round for FedAvg, FedProx and the Specializing DAG on Synthetic(0.5, 0.5)
// with 30 clients, 10 active per round. The three algorithm runs are
// independent cells on the shared worker pool.
func Figure10And11(ctx context.Context, p Preset, seed int64) ([]Fig1011Curve, error) {
	spec := FedProxSpec(p, seed)

	algos := []struct {
		name   string
		proxMu float64
	}{{"FedAvg", 0}, {"FedProx", 1.0}, {"DAG", 0}}

	out := make([]Fig1011Curve, len(algos))
	err := par.ForEachErrIn(Pool(), Workers, len(algos), func(i int) error {
		algo := algos[i]
		if algo.name == "DAG" {
			curve, err := dagCurve(ctx, p, spec, seed+41)
			if err != nil {
				return fmt.Errorf("fig10/11 dag: %w", err)
			}
			out[i] = curve
			return nil
		}
		fedEng, err := fl.NewFederated(spec.Fed, spec.FLConfig(p, algo.proxMu, seed+40))
		if err != nil {
			return fmt.Errorf("fig10/11 %s: %w", algo.name, err)
		}
		series := metrics.NewSeries(algo.name, "round", "acc", "loss")
		_, err = engine.Run(ctx, fedEng, engine.WithHooks(engine.Hooks{
			OnRound: func(ev engine.RoundEvent) {
				series.Add(float64(ev.Round+1), ev.MeanAcc, ev.MeanLoss)
			},
		}))
		if err != nil {
			return fmt.Errorf("fig10/11 %s: %w", algo.name, err)
		}
		out[i] = Fig1011Curve{Algorithm: algo.name, Series: series}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
