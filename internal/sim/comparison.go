package sim

import (
	"context"
	"io"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/fl"
	"github.com/specdag/specdag/internal/metrics"
)

// Fig9Group is one box of Fig. 9: the accuracy distribution over the clients
// selected in a group of five consecutive rounds.
type Fig9Group struct {
	StartRound int
	Stats      metrics.BoxStats
}

// Fig9Result compares FedAvg's aggregated-model accuracies against the
// DAG's locally trained model accuracies on one dataset.
type Fig9Result struct {
	Dataset string
	FedAvg  []Fig9Group
	DAG     []Fig9Group
}

// groupByFives folds per-round client accuracies into five-round box groups,
// the aggregation both halves of Fig. 9 share.
func groupByFives(perRound [][]float64) []Fig9Group {
	var groups []Fig9Group
	var accs []float64
	start := 0
	for r, roundAccs := range perRound {
		accs = append(accs, roundAccs...)
		if (r+1)%5 == 0 || r == len(perRound)-1 {
			groups = append(groups, Fig9Group{StartRound: start, Stats: metrics.NewBoxStats(accs)})
			accs = nil
			start = r + 1
		}
	}
	return groups
}

// runFL builds a FedAvg/FedProx/gossip-shaped engine and drives it through
// the unified run API, returning the result.
func runFL(ctx context.Context, eng interface {
	engine.Engine
	Result() *fl.Result
}) (*fl.Result, error) {
	if _, err := engine.Run(ctx, eng); err != nil {
		return nil, err
	}
	return eng.Result(), nil
}

// Figure9 reproduces Fig. 9: per-client accuracy distributions, grouped
// over five consecutive rounds, FedAvg vs the Specializing DAG, for all
// three datasets. The six underlying runs (three datasets × two algorithms)
// are a flat grid of independent cells on the shared scheduler.
func Figure9(ctx context.Context, p Preset, seed int64) ([]Fig9Result, error) {
	specs := []Spec{FMNISTSpec(p, seed), PoetsSpec(p, seed+1), CIFARSpec(p, seed+2)}
	out := make([]Fig9Result, len(specs))
	cells := make([]Cell, 0, 2*len(specs))
	for i := range specs {
		i, spec := i, specs[i]
		out[i].Dataset = spec.Name
		cells = append(cells, Cell{
			Name: "fig9-fedavg-" + spec.Name,
			Build: func(io.Reader) (engine.Engine, []engine.Option, error) {
				fedEng, err := fl.NewFederated(spec.Fed, spec.FLConfig(p, 0, seed+int64(20+i)))
				if err != nil {
					return nil, nil, err
				}
				return fedEng, nil, nil
			},
			Finish: func(eng engine.Engine) error {
				flRes := eng.(*fl.Federated).Result()
				perRound := make([][]float64, len(flRes.Rounds))
				for r, rr := range flRes.Rounds {
					perRound[r] = rr.Accs
				}
				out[i].FedAvg = groupByFives(perRound)
				return nil
			},
		}, Cell{
			Name:     "fig9-dag-" + spec.Name,
			Snapshot: true,
			Build: func(ckpt io.Reader) (engine.Engine, []engine.Option, error) {
				sim, err := buildDAG(spec, spec.DAGConfig(p, spec.Selector, seed+int64(30+i)), ckpt)
				if err != nil {
					return nil, nil, err
				}
				return sim, nil, nil
			},
			Finish: func(eng engine.Engine) error {
				dagRounds := eng.(*core.Simulation).Results()
				perRound := make([][]float64, len(dagRounds))
				for r, rr := range dagRounds {
					perRound[r] = rr.TrainedAcc
				}
				out[i].DAG = groupByFives(perRound)
				return nil
			},
		})
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig1011Curve is one algorithm's mean accuracy and loss trajectory on the
// FedProx synthetic dataset (Figs. 10 and 11 share the same runs).
type Fig1011Curve struct {
	Algorithm string
	Series    *metrics.Series // cols: round, acc, loss
}

// dagCurveCell builds the grid cell for the Specializing DAG half of an
// algorithm comparison: it runs the DAG on spec and streams its per-round
// mean accuracy/loss curve into *out. The curve rides live round events, so
// the cell restarts rather than resumes after a crash (Snapshot off).
func dagCurveCell(p Preset, spec Spec, seed int64, name string, out *Fig1011Curve) Cell {
	series := metrics.NewSeries("DAG", "round", "acc", "loss")
	return Cell{
		Name: name,
		Build: func(io.Reader) (engine.Engine, []engine.Option, error) {
			sim, err := core.NewSimulation(spec.Fed, spec.DAGConfig(p, spec.Selector, seed))
			if err != nil {
				return nil, nil, err
			}
			return sim, []engine.Option{engine.WithHooks(engine.Hooks{
				OnRound: func(ev engine.RoundEvent) {
					series.Add(float64(ev.Round+1), ev.MeanAcc, ev.MeanLoss)
				},
			})}, nil
		},
		Finish: func(engine.Engine) error {
			*out = Fig1011Curve{Algorithm: "DAG", Series: series}
			return nil
		},
	}
}

// Figure10And11 reproduces Figs. 10 and 11: average accuracy and loss per
// round for FedAvg, FedProx and the Specializing DAG on Synthetic(0.5, 0.5)
// with 30 clients, 10 active per round. The three algorithm runs are
// independent cells on the shared scheduler.
func Figure10And11(ctx context.Context, p Preset, seed int64) ([]Fig1011Curve, error) {
	spec := FedProxSpec(p, seed)

	algos := []struct {
		name   string
		proxMu float64
	}{{"FedAvg", 0}, {"FedProx", 1.0}, {"DAG", 0}}

	out := make([]Fig1011Curve, len(algos))
	cells := make([]Cell, len(algos))
	for i := range algos {
		i, algo := i, algos[i]
		if algo.name == "DAG" {
			cells[i] = dagCurveCell(p, spec, seed+41, "fig10_11-dag", &out[i])
			continue
		}
		series := metrics.NewSeries(algo.name, "round", "acc", "loss")
		cells[i] = Cell{
			Name: "fig10_11-" + algo.name,
			Build: func(io.Reader) (engine.Engine, []engine.Option, error) {
				fedEng, err := fl.NewFederated(spec.Fed, spec.FLConfig(p, algo.proxMu, seed+40))
				if err != nil {
					return nil, nil, err
				}
				return fedEng, []engine.Option{engine.WithHooks(engine.Hooks{
					OnRound: func(ev engine.RoundEvent) {
						series.Add(float64(ev.Round+1), ev.MeanAcc, ev.MeanLoss)
					},
				})}, nil
			},
			Finish: func(engine.Engine) error {
				out[i] = Fig1011Curve{Algorithm: algo.name, Series: series}
				return nil
			},
		}
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	return out, nil
}
