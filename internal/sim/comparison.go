package sim

import (
	"fmt"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/fl"
	"github.com/specdag/specdag/internal/metrics"
)

// Fig9Group is one box of Fig. 9: the accuracy distribution over the clients
// selected in a group of five consecutive rounds.
type Fig9Group struct {
	StartRound int
	Stats      metrics.BoxStats
}

// Fig9Result compares FedAvg's aggregated-model accuracies against the
// DAG's locally trained model accuracies on one dataset.
type Fig9Result struct {
	Dataset string
	FedAvg  []Fig9Group
	DAG     []Fig9Group
}

// Figure9 reproduces Fig. 9: per-client accuracy distributions, grouped
// over five consecutive rounds, FedAvg vs the Specializing DAG, for all
// three datasets.
func Figure9(p Preset, seed int64) ([]Fig9Result, error) {
	specs := []Spec{FMNISTSpec(p, seed), PoetsSpec(p, seed+1), CIFARSpec(p, seed+2)}
	out := make([]Fig9Result, 0, len(specs))
	for i, spec := range specs {
		res := Fig9Result{Dataset: spec.Name}

		flRes, err := fl.Run(spec.Fed, fl.Config{
			Rounds:          p.Rounds(),
			ClientsPerRound: p.ClientsPerRound(),
			Local:           spec.Local,
			Arch:            spec.Arch,
			Seed:            seed + int64(20+i),
		})
		if err != nil {
			return nil, fmt.Errorf("fig9 fedavg %s: %w", spec.Name, err)
		}
		var accs []float64
		start := 0
		for r, rr := range flRes.Rounds {
			accs = append(accs, rr.Accs...)
			if (r+1)%5 == 0 || r == len(flRes.Rounds)-1 {
				res.FedAvg = append(res.FedAvg, Fig9Group{StartRound: start, Stats: metrics.NewBoxStats(accs)})
				accs = nil
				start = r + 1
			}
		}

		sim, err := core.NewSimulation(spec.Fed, spec.DAGConfig(p, spec.Selector, seed+int64(30+i)))
		if err != nil {
			return nil, fmt.Errorf("fig9 dag %s: %w", spec.Name, err)
		}
		dagRounds := sim.Run()
		accs = nil
		start = 0
		for r, rr := range dagRounds {
			accs = append(accs, rr.TrainedAcc...)
			if (r+1)%5 == 0 || r == len(dagRounds)-1 {
				res.DAG = append(res.DAG, Fig9Group{StartRound: start, Stats: metrics.NewBoxStats(accs)})
				accs = nil
				start = r + 1
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig1011Curve is one algorithm's mean accuracy and loss trajectory on the
// FedProx synthetic dataset (Figs. 10 and 11 share the same runs).
type Fig1011Curve struct {
	Algorithm string
	Series    *metrics.Series // cols: round, acc, loss
}

// Figure10And11 reproduces Figs. 10 and 11: average accuracy and loss per
// round for FedAvg, FedProx and the Specializing DAG on Synthetic(0.5, 0.5)
// with 30 clients, 10 active per round.
func Figure10And11(p Preset, seed int64) ([]Fig1011Curve, error) {
	spec := FedProxSpec(p, seed)
	out := make([]Fig1011Curve, 0, 3)

	for _, algo := range []struct {
		name   string
		proxMu float64
	}{{"FedAvg", 0}, {"FedProx", 1.0}} {
		res, err := fl.Run(spec.Fed, fl.Config{
			Rounds:          p.Rounds(),
			ClientsPerRound: p.ClientsPerRound(),
			Local:           spec.Local,
			ProxMu:          algo.proxMu,
			Arch:            spec.Arch,
			Seed:            seed + 40,
		})
		if err != nil {
			return nil, fmt.Errorf("fig10/11 %s: %w", algo.name, err)
		}
		series := metrics.NewSeries(algo.name, "round", "acc", "loss")
		for r, rr := range res.Rounds {
			series.Add(float64(r+1), rr.MeanAcc, rr.MeanLoss)
		}
		out = append(out, Fig1011Curve{Algorithm: algo.name, Series: series})
	}

	sim, err := core.NewSimulation(spec.Fed, spec.DAGConfig(p, spec.Selector, seed+41))
	if err != nil {
		return nil, fmt.Errorf("fig10/11 dag: %w", err)
	}
	series := metrics.NewSeries("DAG", "round", "acc", "loss")
	for r := 0; r < p.Rounds(); r++ {
		rr := sim.RunRound()
		series.Add(float64(r+1), rr.MeanTrainedAcc(), rr.MeanTrainedLoss())
	}
	out = append(out, Fig1011Curve{Algorithm: "DAG", Series: series})
	return out, nil
}
