package sim

import (
	"testing"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/xrand"
)

// TestProbeCIFARSignal measures the walk's discrimination signal on the
// CIFAR setup: after training, transactions issued by same-cluster clients
// must score visibly higher on a client's local test data than
// foreign-cluster transactions. This is the precondition for the approval
// pureness of Table 2.
func TestProbeCIFARSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("probe is a diagnostic, skipped in -short")
	}
	spec := CIFARSpec(Quick, 1)
	cfg := spec.DAGConfig(Quick, tipselect.AccuracyWalk{Alpha: 10}, 2)
	cfg.Rounds = 30
	sim, err := core.NewSimulation(spec.Fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()

	truth := spec.Fed.ClusterOf()
	model := nn.New(spec.Arch, xrand.New(3))

	var sameSum, foreignSum float64
	var sameN, foreignN int
	for _, client := range spec.Fed.Clients[:8] {
		testX, testY := client.Test.X, client.Test.Y
		for _, tx := range sim.DAG().All() {
			if tx.IsGenesis() || tx.Round < 20 {
				continue // only mature models
			}
			model.SetParams(tx.Params)
			_, acc := model.Evaluate(testX, testY)
			if truth[tx.Issuer] == client.Cluster {
				sameSum += acc
				sameN++
			} else {
				foreignSum += acc
				foreignN++
			}
		}
	}
	if sameN == 0 || foreignN == 0 {
		t.Skip("no transactions to probe")
	}
	same := sameSum / float64(sameN)
	foreign := foreignSum / float64(foreignN)
	t.Logf("same-cluster mean acc %.3f (n=%d), foreign %.3f (n=%d), gap %.3f",
		same, sameN, foreign, foreignN, same-foreign)
	if same <= foreign {
		t.Errorf("no specialization signal: same-cluster models score no better than foreign ones")
	}
}
