package sim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"testing"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/tipselect"
)

// tinyGridConfig is a small, fast DAG simulation config for grid tests; the
// same (config, seed) is used for scheduled and unscheduled runs so their
// checkpoint bytes must match exactly.
func tinyGridConfig(i int, seed int64) (*dataset.Federation, core.Config) {
	fed := dataset.FMNISTClustered(dataset.FMNISTConfig{
		Clients:        8,
		TrainPerClient: 30,
		TestPerClient:  10,
		Seed:           seed + int64(i),
	})
	cfg := core.Config{
		Rounds:          6,
		ClientsPerRound: 3,
		Local:           nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            nn.Arch{In: 64, Hidden: []int{16}, Out: 10},
		Selector:        tipselect.AccuracyWalk{Alpha: 10},
		Seed:            seed + int64(i),
		Workers:         Workers,
		Pool:            Pool(),
	}
	return fed, cfg
}

// tinyGridCells builds n independent DAG cells writing their finished
// simulations into sims. onRound, when non-nil, observes every completed
// round across all cells.
func tinyGridCells(n int, seed int64, prios []int, sims []*core.Simulation, onRound func()) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		prio := 0
		if prios != nil {
			prio = prios[i]
		}
		cells[i] = Cell{
			Name:     fmt.Sprintf("tiny-%02d", i),
			Priority: prio,
			Snapshot: true,
			Build: func(ckpt io.Reader) (engine.Engine, []engine.Option, error) {
				fed, cfg := tinyGridConfig(i, seed)
				var sim *core.Simulation
				var err error
				if ckpt != nil {
					sim, err = core.ResumeSimulation(fed, cfg, ckpt)
				} else {
					sim, err = core.NewSimulation(fed, cfg)
				}
				if err != nil {
					return nil, nil, err
				}
				var opts []engine.Option
				if onRound != nil {
					opts = append(opts, engine.WithHooks(engine.Hooks{
						OnRound: func(engine.RoundEvent) { onRound() },
					}))
				}
				return sim, opts, nil
			},
			Finish: func(eng engine.Engine) error {
				sims[i] = eng.(*core.Simulation)
				return nil
			},
		}
	}
	return cells
}

func checkpointBytes(t *testing.T, sim *core.Simulation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := sim.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSchedulerWorkerInvariance is the grid's bit-identity guarantee: cells
// run through the scheduler — for every worker count, quantum and priority
// order — produce byte-identical checkpoints to the same engines driven
// directly with engine.Run. Scheduling decides only when a cell's units
// execute, never what they compute.
func TestSchedulerWorkerInvariance(t *testing.T) {
	oldWorkers := Workers
	SetWorkers(2)
	defer SetWorkers(oldWorkers)

	const n = 4
	seed := int64(77)

	// Unscheduled reference: each cell's engine driven directly.
	ref := make([][]byte, n)
	for i := 0; i < n; i++ {
		fed, cfg := tinyGridConfig(i, seed)
		sim, err := core.NewSimulation(fed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engine.Run(context.Background(), sim); err != nil {
			t.Fatal(err)
		}
		ref[i] = checkpointBytes(t, sim)
	}

	variants := []struct {
		name  string
		cfg   GridConfig
		prios []int
	}{
		{"workers=1", GridConfig{Workers: 1}, nil},
		{"workers=pool", GridConfig{}, nil},
		{"quantum=1", GridConfig{Quantum: 1}, nil},
		{"priorities-reversed", GridConfig{Quantum: 1}, []int{0, 1, 2, 3}},
		{"priorities-mixed", GridConfig{Quantum: 2}, []int{5, 0, 5, 3}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			sims := make([]*core.Simulation, n)
			cells := tinyGridCells(n, seed, v.prios, sims, nil)
			if err := RunGrid(context.Background(), cells, v.cfg); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if got := checkpointBytes(t, sims[i]); !bytes.Equal(got, ref[i]) {
					t.Errorf("cell %d: scheduled checkpoint differs from unscheduled run (%d vs %d bytes)",
						i, len(got), len(ref[i]))
				}
			}
		})
	}
}

// TestGridCrashResume: cancel a checkpointing grid mid-flight, rerun it on
// the same directory, and the rerun (a) resumes instead of restarting —
// strictly fewer rounds execute than a full grid — and (b) still produces
// results byte-identical to an uninterrupted run.
func TestGridCrashResume(t *testing.T) {
	testGridCrashResume(t, 3, 7)
}

// TestGridCrashResumeLarge is the nightly large-grid smoke (set
// SPECDAG_LARGE_GRID=1): the same crash-and-resume contract over a grid an
// order of magnitude wider, canceled halfway through.
func TestGridCrashResumeLarge(t *testing.T) {
	if os.Getenv("SPECDAG_LARGE_GRID") == "" {
		t.Skip("set SPECDAG_LARGE_GRID=1 to run the large grid smoke")
	}
	testGridCrashResume(t, 24, 24*6/2)
}

func testGridCrashResume(t *testing.T, n, cancelAfter int) {
	seed := int64(99)
	totalRounds := n * 6
	dir := t.TempDir()

	// Crash run: cancel the grid after cancelAfter completed rounds; cells
	// checkpoint every round.
	var crashed atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sims := make([]*core.Simulation, n)
	cells := tinyGridCells(n, seed, nil, sims, func() {
		if crashed.Add(1) == int64(cancelAfter) {
			cancel()
		}
	})
	err := RunGrid(ctx, cells, GridConfig{Dir: dir, Every: 1, Workers: 1})
	if err == nil {
		t.Fatal("canceled grid completed successfully")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}

	// Resume run: same grid, same directory. It must complete while
	// executing strictly fewer rounds than a from-scratch grid would.
	var resumed atomic.Int64
	sims2 := make([]*core.Simulation, n)
	cells2 := tinyGridCells(n, seed, nil, sims2, func() { resumed.Add(1) })
	if err := RunGrid(context.Background(), cells2, GridConfig{Dir: dir, Every: 1, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if got := resumed.Load(); got >= int64(totalRounds) {
		t.Fatalf("resume executed %d rounds, want < %d (it restarted instead of resuming)", got, totalRounds)
	}

	// And the resumed grid's results are byte-identical to an uninterrupted
	// run without any checkpoint directory.
	sims3 := make([]*core.Simulation, n)
	cells3 := tinyGridCells(n, seed, nil, sims3, nil)
	if err := RunGrid(context.Background(), cells3, GridConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := checkpointBytes(t, sims2[i])
		want := checkpointBytes(t, sims3[i])
		if !bytes.Equal(got, want) {
			t.Errorf("cell %d: resumed checkpoint differs from uninterrupted run", i)
		}
	}
}
