package sim

import (
	"context"
	"fmt"
	"io"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/graphx"
	"github.com/specdag/specdag/internal/metrics"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/xrand"
)

// PoisonCurve is one scenario of the poisoning study (Figs. 12 and 13):
// flipped-prediction percentage and poisoned-approval counts per round,
// starting at the attack round.
type PoisonCurve struct {
	Label  string
	Series *metrics.Series // cols: round, flippedPct, poisonedApprovals
}

// poisonScenario describes one line of Figs. 12/13.
type poisonScenario struct {
	label    string
	fraction float64
	selector tipselect.Selector
}

// poisonRounds returns (clean rounds before attack, attack rounds).
func poisonRounds(p Preset) (clean, attack int) {
	if p == Full {
		return 100, 100 // paper: poison after 100 rounds, observe to 200
	}
	return 10, 30
}

// Figure12And13 reproduces Figs. 12 and 13: the flipped-label attack
// (labels 3↔8) on the by-writer FMNIST split. Scenarios: p=0.0 baseline,
// p=0.2 and p=0.3 with the accuracy tip selector, and p=0.2 with the random
// tip selector. The per-round attack metrics stream out of the run through
// round events (Detail carries the full core.RoundResult).
func Figure12And13(ctx context.Context, p Preset, seed int64) ([]PoisonCurve, error) {
	clean, attack := poisonRounds(p)
	scenarios := []poisonScenario{
		{"p=0.0", 0, tipselect.AccuracyWalk{Alpha: 10}},
		{"p=0.2", 0.2, tipselect.AccuracyWalk{Alpha: 10}},
		{"p=0.2 random", 0.2, tipselect.URTS{}},
		{"p=0.3", 0.3, tipselect.AccuracyWalk{Alpha: 10}},
	}

	// Each scenario owns its federation (poisoning flips labels in place on
	// the simulation's private copies), so the cells are fully independent.
	// The per-round metrics stream off live round events, so the cells restart
	// rather than resume after a crash (Snapshot off).
	out := make([]PoisonCurve, len(scenarios))
	cells := make([]Cell, len(scenarios))
	for si := range scenarios {
		si, sc := si, scenarios[si]
		series := metrics.NewSeries(sc.label, "round", "flippedPct", "flippedBenignPct", "poisonedApprovals")
		cells[si] = Cell{
			Name: "fig12_13-" + sc.label,
			Build: func(io.Reader) (engine.Engine, []engine.Option, error) {
				spec := ByWriterFMNISTSpec(p, seed)
				cfg := spec.DAGConfig(p, sc.selector, seed+int64(si))
				cfg.Rounds = clean + attack
				cfg.Poison = core.PoisonConfig{
					Fraction:   sc.fraction,
					FlipA:      3,
					FlipB:      8,
					StartRound: clean,
					Track:      true,
				}
				sim, err := core.NewSimulation(spec.Fed, cfg)
				if err != nil {
					return nil, nil, err
				}
				return sim, []engine.Option{engine.WithHooks(engine.Hooks{
					OnRound: func(ev engine.RoundEvent) {
						if ev.Round < clean {
							return // the figures start at the attack round
						}
						rr := ev.Detail.(*core.RoundResult)
						series.Add(float64(ev.Round),
							100*rr.MeanFlippedFrac(),
							100*rr.MeanFlippedFracBenign(),
							rr.MeanRefPoisonedApprovals())
					},
				})}, nil
			},
			Finish: func(engine.Engine) error {
				out[si] = PoisonCurve{Label: sc.label, Series: series}
				return nil
			},
		}
	}
	if err := RunGrid(ctx, cells, GridConfig{}); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig14Result is the distribution of poisoned clients over the communities
// inferred by Louvain at the end of a p=0.3 attack run.
type Fig14Result struct {
	Communities int
	Benign      []int
	Poisoned    []int
	// Containment is the fraction of poisoned clients that ended up in
	// communities where poisoned clients are the majority.
	Containment float64
}

// Figure14 reproduces Fig. 14: run the p=0.3 flipped-label attack, then
// cluster G_clients with Louvain and histogram benign vs poisoned clients
// per inferred community.
func Figure14(ctx context.Context, p Preset, seed int64) (*Fig14Result, error) {
	clean, attack := poisonRounds(p)
	spec := ByWriterFMNISTSpec(p, seed)
	cfg := spec.DAGConfig(p, tipselect.AccuracyWalk{Alpha: 10}, seed)
	cfg.Rounds = clean + attack
	cfg.Poison = core.PoisonConfig{Fraction: 0.3, FlipA: 3, FlipB: 8, StartRound: clean, Track: true}
	sim, err := runDAG(ctx, spec, cfg)
	if err != nil {
		return nil, fmt.Errorf("fig14: %w", err)
	}

	g := metrics.BuildClientGraph(sim.DAG())
	part := graphx.Louvain(g, xrand.New(seed+7))
	poisoned := sim.PoisonedClients()
	benign, bad := metrics.ClusterHistogram(part, poisoned)

	contained, total := 0, 0
	for client, comm := range part {
		if !poisoned[client] {
			continue
		}
		total++
		if bad[comm] > benign[comm] {
			contained++
		}
	}
	containment := 0.0
	if total > 0 {
		containment = float64(contained) / float64(total)
	}
	return &Fig14Result{
		Communities: graphx.NumCommunities(part),
		Benign:      benign,
		Poisoned:    bad,
		Containment: containment,
	}, nil
}
