package nn

import (
	"testing"

	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/xrand"
)

// Micro-benchmarks of the training/evaluation hot path, run with -benchmem
// by the CI bench job. benchArch and the sample counts mirror the simulator
// defaults (64-dim inputs, one 32-wide hidden layer, 10 classes, batch 10).
var benchArch = Arch{In: 64, Hidden: []int{32}, Out: 10}

func benchData(n int) (mathx.Matrix, []int) {
	rng := xrand.New(1)
	x := mathx.NewMatrix(n, benchArch.In)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		copy(x.Row(i), rng.NormalVec(benchArch.In, 0, 1))
		ys[i] = i % benchArch.Out
	}
	return x, ys
}

func BenchmarkForward(b *testing.B) {
	rng := xrand.New(1)
	m := New(benchArch, rng)
	x := rng.NormalVec(benchArch.In, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

// BenchmarkTrainEpoch measures one full shuffled epoch over a 100-sample
// client split — the per-round unit of work of every engine. The steady
// state must report 0 allocs/op (the scratch-reuse acceptance criterion).
func BenchmarkTrainEpoch(b *testing.B) {
	rng := xrand.New(1)
	m := New(benchArch, rng)
	x, ys := benchData(100)
	cfg := SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10, Shuffle: true}
	trainRNG := xrand.New(2)
	m.Train(x, ys, cfg, trainRNG) // warm up scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Train(x, ys, cfg, trainRNG)
	}
}

// BenchmarkEvaluateBatch measures one whole-test-split evaluation (20
// samples, the Table 1 split) — the unit the tip-selection walks pay per
// cache miss.
func BenchmarkEvaluateBatch(b *testing.B) {
	rng := xrand.New(1)
	m := New(benchArch, rng)
	x, ys := benchData(20)
	m.Evaluate(x, ys) // warm up scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Evaluate(x, ys)
	}
}

// BenchmarkBackward measures one gathered 10-sample minibatch
// forward+backward, the inner loop of Train.
func BenchmarkBackward(b *testing.B) {
	rng := xrand.New(1)
	m := New(benchArch, rng)
	x, ys := benchData(10)
	grads := make([]float64, m.NumParams())
	m.growTrain(x.Rows)
	batch := m.bs.in.Top(x.Rows)
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	mathx.GatherRows(batch, x, idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mathx.Fill(grads, 0)
		m.backwardBatch(batch, ys, grads)
	}
}
