package nn

import (
	"fmt"
	"math"

	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/xrand"
)

// This file retains the per-sample training and evaluation loops the batched
// kernels replaced. They are the executable specification of the
// float-determinism contract: the differential tests (nn_diff_test.go) pin
// Train/Evaluate/EvaluateMany bit-identical to these references across
// architectures, batch sizes and every SGD option. Production code never
// calls them — change them only together with the batched paths, and only
// for a deliberate, gate-refreshing numerics change.

// backward accumulates the gradient of the cross-entropy loss for one sample
// into grads (laid out identically to the flat parameter vector). It is the
// per-sample reference the batched backwardBatch must match bit for bit, and
// the subject of the finite-difference gradient check.
func (m *MLP) backward(x []float64, y int, grads []float64) {
	probs := m.Forward(x) // fills m.acts
	if y < 0 || y >= len(probs) {
		panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, len(probs)))
	}

	// Output delta for softmax + cross-entropy: p - onehot(y).
	last := len(m.layers) - 1
	outDelta := m.deltas[last]
	copy(outDelta, probs)
	outDelta[y] -= 1

	// Walk layers backwards, accumulating weight/bias gradients and
	// propagating deltas through the ReLUs.
	off := len(grads)
	for li := last; li >= 0; li-- {
		l := m.layers[li]
		in := m.acts[li]
		delta := m.deltas[li]

		off -= l.out // bias block
		bg := grads[off : off+l.out]
		off -= l.in * l.out // weight block
		wg := grads[off : off+l.in*l.out]

		for o := 0; o < l.out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			bg[o] += d
			row := wg[o*l.in : (o+1)*l.in]
			mathx.Axpy(d, in, row)
		}

		if li > 0 {
			prev := m.deltas[li-1]
			mathx.Fill(prev, 0)
			for o := 0; o < l.out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				row := l.w[o*l.in : (o+1)*l.in]
				mathx.Axpy(d, row, prev)
			}
			// ReLU derivative: zero where the forward activation was <= 0.
			act := m.acts[li]
			for i := range prev {
				if act[i] <= 0 {
					prev[i] = 0
				}
			}
		}
	}
}

// evaluateReference is the per-sample evaluation loop: one Forward call per
// sample, loss accumulated in sample order.
func (m *MLP) evaluateReference(x mathx.Matrix, ys []int) (loss, acc float64) {
	if x.Rows != len(ys) {
		panic("nn: Evaluate xs/ys length mismatch")
	}
	if len(ys) == 0 {
		return 0, 0
	}
	correct := 0
	for i := 0; i < x.Rows; i++ {
		probs := m.Forward(x.Row(i))
		y := ys[i]
		if y < 0 || y >= len(probs) {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, len(probs)))
		}
		loss += -math.Log(math.Max(probs[y], lossEps))
		if mathx.ArgMax(probs) == y {
			correct++
		}
	}
	n := float64(len(ys))
	return loss / n, float64(correct) / n
}

// trainReference is the per-sample SGD loop: every minibatch accumulates
// gradients one backward call at a time. It consumes rng identically to
// Train (one Shuffle per epoch), so running both from equal starting points
// must produce bit-identical parameters.
func (m *MLP) trainReference(x mathx.Matrix, ys []int, cfg SGDConfig, rng *xrand.RNG) int {
	if x.Rows != len(ys) {
		panic("nn: Train xs/ys length mismatch")
	}
	if len(ys) == 0 || cfg.Epochs <= 0 {
		return 0
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 10
	}
	if cfg.ProxMu > 0 && len(cfg.ProxCenter) != len(m.params) {
		panic("nn: ProxMu set without a matching ProxCenter")
	}

	grads := make([]float64, len(m.params))
	var velocity []float64
	if cfg.Momentum > 0 {
		velocity = make([]float64, len(m.params))
	}
	order := make([]int, x.Rows)
	for i := range order {
		order[i] = i
	}

	batches := 0
	for e := 0; e < cfg.Epochs; e++ {
		if cfg.Shuffle && rng != nil {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		inEpoch := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			if cfg.MaxBatches > 0 && inEpoch >= cfg.MaxBatches {
				break
			}
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			mathx.Fill(grads, 0)
			for _, idx := range order[start:end] {
				m.backward(x.Row(idx), ys[idx], grads)
			}
			invBatch := 1 / float64(end-start)
			if cfg.WeightDecay > 0 {
				// L2 term on the mean-gradient scale.
				k := cfg.WeightDecay / invBatch
				mathx.Axpy(k, m.params, grads)
			}
			if cfg.Momentum > 0 {
				for i, g := range grads {
					velocity[i] = cfg.Momentum*velocity[i] + g
				}
				mathx.Axpy(-cfg.LR*invBatch, velocity, m.params)
			} else {
				mathx.Axpy(-cfg.LR*invBatch, grads, m.params)
			}
			if cfg.ProxMu > 0 {
				// w -= lr * mu * (w - w0)
				k := cfg.LR * cfg.ProxMu
				for i := range m.params {
					m.params[i] -= k * (m.params[i] - cfg.ProxCenter[i])
				}
			}
			batches++
			inEpoch++
		}
	}
	return batches
}
