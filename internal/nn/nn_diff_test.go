package nn

import (
	"fmt"
	"testing"

	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/xrand"
)

// Differential suite: the batched Train/Evaluate/EvaluateMany paths must be
// bit-identical to the retained per-sample reference (reference.go) across
// architectures, batch sizes and every SGD option. This is the executable
// form of the float-determinism contract — a failure here means the batched
// kernels changed numerics, which would break the CI metric gate.

// diffArchs covers the architecture space the simulator uses: softmax
// regression (no hidden layer), one hidden layer, deep and skinny.
var diffArchs = []Arch{
	{In: 7, Out: 4},                      // no-hidden-layer softmax regression
	{In: 9, Hidden: []int{12}, Out: 5},   // the simulator's shape
	{In: 5, Hidden: []int{8, 6}, Out: 3}, // two hidden layers
	{In: 3, Hidden: []int{1, 1}, Out: 2}, // degenerate widths
	{In: 16, Hidden: []int{32}, Out: 10}, // wider than the batch
}

func sameParams(t *testing.T, label string, got, want []float64) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: param %d differs bitwise: %v vs %v", label, i, got[i], want[i])
		}
	}
}

// TestEvaluateMatchesReference: batched evaluation equals the per-sample
// loop bit for bit, for every arch and sample count (including n=1 and a
// set larger than any internal blocking factor).
func TestEvaluateMatchesReference(t *testing.T) {
	for ai, arch := range diffArchs {
		for _, n := range []int{1, 2, 3, 4, 5, 17, 64} {
			rng := xrand.New(int64(100*ai + n))
			m := New(arch, rng)
			x, ys := randomSamples(rng, n, arch.In, arch.Out)
			gotLoss, gotAcc := m.Evaluate(x, ys)
			wantLoss, wantAcc := m.evaluateReference(x, ys)
			if gotLoss != wantLoss || gotAcc != wantAcc {
				t.Fatalf("arch %d n=%d: batched (%v, %v) vs reference (%v, %v)",
					ai, n, gotLoss, gotAcc, wantLoss, wantAcc)
			}
		}
	}
}

// TestTrainMatchesReference sweeps batch sizes (1, smaller than n, exactly
// n, larger than n), MaxBatches, shuffle, and the momentum / weight-decay /
// proximal options, checking bit-identical parameters and batch counts.
func TestTrainMatchesReference(t *testing.T) {
	const n = 23
	configs := []SGDConfig{
		{LR: 0.1, Epochs: 2, BatchSize: 1},
		{LR: 0.1, Epochs: 2, BatchSize: 4},
		{LR: 0.1, Epochs: 1, BatchSize: 10},
		{LR: 0.1, Epochs: 2, BatchSize: n},     // one full-set batch
		{LR: 0.1, Epochs: 2, BatchSize: n + 9}, // batch larger than the data
		{LR: 0.1, Epochs: 3, BatchSize: 4, MaxBatches: 2},
		{LR: 0.1, Epochs: 2, BatchSize: 5, Shuffle: true},
		{LR: 0.05, Epochs: 2, BatchSize: 4, Momentum: 0.9},
		{LR: 0.1, Epochs: 2, BatchSize: 4, WeightDecay: 0.05},
		{LR: 0.1, Epochs: 2, BatchSize: 4, ProxMu: 1.5},
		{LR: 0.05, Epochs: 2, BatchSize: 7, Momentum: 0.9, WeightDecay: 0.01, ProxMu: 0.5, Shuffle: true},
	}
	for ai, arch := range diffArchs {
		for ci, cfg := range configs {
			t.Run(fmt.Sprintf("arch%d/cfg%d", ai, ci), func(t *testing.T) {
				rng := xrand.New(int64(1000*ai + ci))
				base := New(arch, rng)
				x, ys := randomSamples(rng, n, arch.In, arch.Out)
				if cfg.ProxMu > 0 {
					cfg.ProxCenter = base.ParamsCopy()
				}

				batched := base.Clone()
				gotBatches := batched.Train(x, ys, cfg, xrand.New(int64(ci)))

				ref := base.Clone()
				wantBatches := ref.trainReference(x, ys, cfg, xrand.New(int64(ci)))

				if gotBatches != wantBatches {
					t.Fatalf("batch counts diverge: %d vs %d", gotBatches, wantBatches)
				}
				sameParams(t, "trained params", batched.Params(), ref.Params())

				// Re-running Train on the same (warm-scratch) model must
				// still match a fresh reference — scratch reuse leaks no
				// state between calls.
				gotBatches = batched.Train(x, ys, cfg, xrand.New(int64(ci)+7))
				wantBatches = ref.trainReference(x, ys, cfg, xrand.New(int64(ci)+7))
				if gotBatches != wantBatches {
					t.Fatalf("second-call batch counts diverge: %d vs %d", gotBatches, wantBatches)
				}
				sameParams(t, "second-call params", batched.Params(), ref.Params())
			})
		}
	}
}

// TestEvaluateManyMatchesReference: the parameter-aliasing batch evaluator
// equals per-vector reference evaluation bit for bit.
func TestEvaluateManyMatchesReference(t *testing.T) {
	arch := Arch{In: 6, Hidden: []int{9}, Out: 4}
	rng := xrand.New(77)
	m := New(arch, rng)
	x, ys := randomSamples(rng, 19, arch.In, arch.Out)
	var list [][]float64
	for i := 0; i < 5; i++ {
		list = append(list, New(arch, rng.SplitIndex("p", i)).ParamsCopy())
	}
	losses, accs := m.EvaluateMany(list, x, ys)
	scratch := m.Clone()
	for i, p := range list {
		scratch.SetParams(p)
		wantLoss, wantAcc := scratch.evaluateReference(x, ys)
		if losses[i] != wantLoss || accs[i] != wantAcc {
			t.Fatalf("vector %d: batched (%v, %v) vs reference (%v, %v)", i, losses[i], accs[i], wantLoss, wantAcc)
		}
	}
}

// TestBatchedGradientMatchesPerSample compares one raw backward pass: the
// gradient a gathered minibatch accumulates must equal the sum of per-sample
// backward calls bit for bit (softmax regression included).
func TestBatchedGradientMatchesPerSample(t *testing.T) {
	for ai, arch := range diffArchs {
		rng := xrand.New(int64(ai) + 500)
		m := New(arch, rng)
		x, ys := randomSamples(rng, 11, arch.In, arch.Out)

		batched := make([]float64, m.NumParams())
		m.growTrain(x.Rows)
		gather := m.bs.in.Top(x.Rows)
		idx := make([]int, x.Rows)
		for i := range idx {
			idx[i] = i
		}
		mathx.GatherRows(gather, x, idx)
		m.backwardBatch(gather, ys, batched)

		want := make([]float64, m.NumParams())
		for i := 0; i < x.Rows; i++ {
			m.backward(x.Row(i), ys[i], want)
		}
		sameParams(t, fmt.Sprintf("arch %d gradient", ai), batched, want)
	}
}

// TestTrainZeroAllocSteadyState asserts the scratch-reuse contract directly:
// after a warm-up call, Train must not allocate.
func TestTrainZeroAllocSteadyState(t *testing.T) {
	rng := xrand.New(21)
	arch := Arch{In: 12, Hidden: []int{16}, Out: 5}
	m := New(arch, rng)
	x, ys := randomSamples(rng, 40, arch.In, arch.Out)
	cfg := SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10, Shuffle: true, Momentum: 0.9}
	trainRNG := xrand.New(3)
	m.Train(x, ys, cfg, trainRNG) // warm up scratch

	allocs := testing.AllocsPerRun(10, func() {
		m.Train(x, ys, cfg, trainRNG)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Train allocates %v times per call, want 0", allocs)
	}
}
