// Package nn is a minimal, dependency-free neural-network library: dense
// feed-forward networks with ReLU activations and a softmax cross-entropy
// head, trained by mini-batch SGD.
//
// It substitutes for the TensorFlow models of the original paper (CNNs for
// the image tasks, an LSTM for next-character prediction). The DAG mechanism
// under study only requires that models (a) expose their parameters as a flat
// vector that can be averaged and (b) exhibit per-cluster loss landscapes on
// non-IID data; both hold for the MLPs built here.
//
// Training and evaluation are batched: sample sets are mathx.Matrix values
// (contiguous row-major storage), whole minibatches flow through the blocked
// kernels of internal/mathx, and all working memory lives in scratch buffers
// the model reuses across calls — steady-state training performs zero
// allocations per batch.
//
// # Float-determinism contract
//
// The batched paths are bit-identical to the per-sample loops they replaced
// (retained in reference.go and pinned by the differential tests): every
// accumulator consumes its contributions in the documented per-sample order,
// so accuracies, losses and trained parameters are byte-for-byte unchanged
// across the batching boundary — the invariant the engines' worker-count
// guarantee and the CI metric gate build on. Treat any reordering of these
// loops as a numerics change.
//
// Models are deliberately not safe for concurrent mutation; the simulator
// clones models per client before training.
package nn

import (
	"fmt"
	"math"

	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/xrand"
)

// Arch describes a feed-forward architecture: In inputs, the given Hidden
// layer widths (possibly empty, yielding softmax regression), and Out
// classes.
type Arch struct {
	In     int
	Hidden []int
	Out    int
}

// Validate reports whether the architecture is well-formed.
func (a Arch) Validate() error {
	if a.In <= 0 {
		return fmt.Errorf("nn: architecture needs In > 0, got %d", a.In)
	}
	if a.Out <= 0 {
		return fmt.Errorf("nn: architecture needs Out > 0, got %d", a.Out)
	}
	for i, h := range a.Hidden {
		if h <= 0 {
			return fmt.Errorf("nn: hidden layer %d has non-positive width %d", i, h)
		}
	}
	return nil
}

// NumParams returns the total number of trainable parameters.
func (a Arch) NumParams() int {
	n := 0
	for _, l := range a.ParamsPerLayer() {
		n += l
	}
	return n
}

// NumLayers returns the number of dense layers (hidden layers plus the
// output layer).
func (a Arch) NumLayers() int { return len(a.Hidden) + 1 }

// ParamsPerLayer returns the parameter count of each dense layer (weights
// plus biases), in order from input to output.
func (a Arch) ParamsPerLayer() []int {
	out := make([]int, 0, a.NumLayers())
	prev := a.In
	for _, h := range a.Hidden {
		out = append(out, prev*h+h)
		prev = h
	}
	return append(out, prev*a.Out+a.Out)
}

// PrefixParams returns the number of parameters in the first k layers.
// It clamps k into [0, NumLayers()]. Used for partial-layer sharing, where
// only an early slice of the network is averaged across clients.
func (a Arch) PrefixParams(k int) int {
	per := a.ParamsPerLayer()
	if k > len(per) {
		k = len(per)
	}
	n := 0
	for i := 0; i < k; i++ {
		n += per[i]
	}
	return n
}

// layer is one dense layer; W is row-major [out][in], b has length out.
// Both are sub-slices of the owning network's flat parameter vector.
type layer struct {
	in, out int
	w, b    []float64
}

// batchScratch is the reusable working memory of the batched forward and
// backward passes. Buffers are grown to the largest row count seen and then
// reused — the zero-allocations-per-batch property BenchmarkTrainEpoch
// verifies. Scratch is never cloned and never part of a model's value.
type batchScratch struct {
	actRows   int            // row capacity of acts
	trainRows int            // row capacity of deltas/in/ys
	in        mathx.Matrix   // gathered minibatch inputs
	ys        []int          // gathered minibatch labels
	acts      []mathx.Matrix // post-activation per layer
	deltas    []mathx.Matrix // error terms per layer
}

// MLP is a feed-forward network with ReLU hidden activations and a softmax
// output. The zero value is not usable; construct with New.
type MLP struct {
	arch   Arch
	params []float64 // single flat backing store; layers view into it
	layers []layer

	// scratch buffers reused across per-sample Forward calls (Predict and
	// the retained reference path in reference.go).
	acts   [][]float64 // post-activation per layer (len = len(layers)+1); acts[0] aliases the input
	deltas [][]float64 // error terms per layer

	// bs is the batched-path scratch (forward/backward over whole
	// minibatches); grads/velocity/order persist across Train calls so
	// steady-state training allocates nothing.
	bs       batchScratch
	grads    []float64
	velocity []float64
	order    []int
}

// New constructs an MLP with Glorot-uniform initial weights drawn from rng.
// It panics on an invalid architecture (programmer error).
func New(arch Arch, rng *xrand.RNG) *MLP {
	if err := arch.Validate(); err != nil {
		panic(err)
	}
	m := &MLP{arch: arch}
	m.params = make([]float64, arch.NumParams())
	m.bindLayers()
	m.init(rng)
	return m
}

// bindLayers slices the flat parameter vector into per-layer views and
// allocates the per-sample scratch buffers.
func (m *MLP) bindLayers() {
	dims := make([]int, 0, len(m.arch.Hidden)+2)
	dims = append(dims, m.arch.In)
	dims = append(dims, m.arch.Hidden...)
	dims = append(dims, m.arch.Out)

	m.layers = m.layers[:0]
	off := 0
	for i := 0; i+1 < len(dims); i++ {
		in, out := dims[i], dims[i+1]
		w := m.params[off : off+in*out]
		off += in * out
		b := m.params[off : off+out]
		off += out
		m.layers = append(m.layers, layer{in: in, out: out, w: w, b: b})
	}

	m.acts = make([][]float64, len(m.layers)+1)
	m.deltas = make([][]float64, len(m.layers))
	for i, l := range m.layers {
		m.acts[i+1] = make([]float64, l.out)
		m.deltas[i] = make([]float64, l.out)
	}
}

// growActs sizes the batched activation scratch for rows samples.
func (m *MLP) growActs(rows int) {
	bs := &m.bs
	if bs.acts == nil {
		bs.acts = make([]mathx.Matrix, len(m.layers))
	}
	if bs.actRows >= rows {
		return
	}
	for i, l := range m.layers {
		bs.acts[i] = bs.acts[i].Grow(rows, l.out)
	}
	bs.actRows = rows
}

// growTrain sizes the gather buffer, gathered labels and delta scratch for
// minibatches of rows samples.
func (m *MLP) growTrain(rows int) {
	bs := &m.bs
	if bs.deltas == nil {
		bs.deltas = make([]mathx.Matrix, len(m.layers))
	}
	if bs.trainRows >= rows {
		return
	}
	for i, l := range m.layers {
		bs.deltas[i] = bs.deltas[i].Grow(rows, l.out)
	}
	bs.in = bs.in.Grow(rows, m.arch.In)
	if cap(bs.ys) < rows {
		bs.ys = make([]int, rows)
	}
	bs.trainRows = rows
}

// init applies Glorot-uniform initialization to weights; biases start at 0.
func (m *MLP) init(rng *xrand.RNG) {
	for _, l := range m.layers {
		limit := math.Sqrt(6.0 / float64(l.in+l.out))
		for i := range l.w {
			l.w[i] = (rng.Float64()*2 - 1) * limit
		}
		mathx.Fill(l.b, 0)
	}
}

// Arch returns the architecture of the network.
func (m *MLP) Arch() Arch { return m.arch }

// NumParams returns the length of the flat parameter vector.
func (m *MLP) NumParams() int { return len(m.params) }

// Params returns the live flat parameter vector. Callers must copy it before
// storing it (use ParamsCopy), since training mutates it in place.
func (m *MLP) Params() []float64 { return m.params }

// ParamsCopy returns a fresh copy of the flat parameter vector.
func (m *MLP) ParamsCopy() []float64 { return mathx.CloneVec(m.params) }

// SetParams copies p into the network. It panics if the length does not
// match the architecture.
func (m *MLP) SetParams(p []float64) {
	if len(p) != len(m.params) {
		panic(fmt.Sprintf("nn: SetParams length %d, want %d", len(p), len(m.params)))
	}
	copy(m.params, p)
}

// Clone returns a deep copy sharing nothing with the receiver. Scratch
// buffers are not copied; the clone grows its own on first use.
func (m *MLP) Clone() *MLP {
	c := &MLP{arch: m.arch}
	c.params = mathx.CloneVec(m.params)
	c.bindLayers()
	return c
}

// Forward computes class probabilities for input x into the returned slice.
// The returned slice is scratch owned by the model: it is valid until the
// next Forward/Train call. x must have length Arch().In.
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.arch.In {
		panic(fmt.Sprintf("nn: Forward input length %d, want %d", len(x), m.arch.In))
	}
	m.acts[0] = x
	for li, l := range m.layers {
		in := m.acts[li]
		out := m.acts[li+1]
		last := li == len(m.layers)-1
		for o := 0; o < l.out; o++ {
			row := l.w[o*l.in : (o+1)*l.in]
			v := l.b[o] + mathx.Dot(row, in)
			if !last && v < 0 {
				v = 0 // ReLU
			}
			out[o] = v
		}
		if last {
			mathx.SoftmaxInPlace(out)
		}
	}
	return m.acts[len(m.layers)]
}

// Predict returns the argmax class for x.
func (m *MLP) Predict(x []float64) int {
	return mathx.ArgMax(m.Forward(x))
}

// forwardBatch runs the network over every row of x through the batched
// kernels, returning the probability matrix (a view of model scratch, valid
// until the next batched call). Bit-identical per row to Forward.
func (m *MLP) forwardBatch(x mathx.Matrix) mathx.Matrix {
	if x.Cols != m.arch.In {
		panic(fmt.Sprintf("nn: Forward input length %d, want %d", x.Cols, m.arch.In))
	}
	m.growActs(x.Rows)
	in := x
	last := len(m.layers) - 1
	for li := range m.layers {
		l := &m.layers[li]
		out := m.bs.acts[li].Top(x.Rows)
		if li == last {
			mathx.AffineRows(in, l.w, l.b, out)
			mathx.SoftmaxRows(out)
		} else {
			mathx.AffineRowsReLU(in, l.w, l.b, out)
		}
		in = out
	}
	return in
}

// lossEps floors probabilities inside log() to keep losses finite.
const lossEps = 1e-12

// score is the shared body of Evaluate and Accuracy: one batched forward
// pass, then a per-row reduction in ascending sample order (bit-identical
// to the per-sample reference loop). The loss term is computed only when
// withLoss is set — the walk engines' selection weights never consume
// losses, so their scorers skip the log reduction; accuracy is identical
// either way. name labels panics with the public entry point.
func (m *MLP) score(name string, x mathx.Matrix, ys []int, withLoss bool) (loss, acc float64) {
	if x.Rows != len(ys) {
		panic("nn: " + name + " xs/ys length mismatch")
	}
	if len(ys) == 0 {
		return 0, 0
	}
	probs := m.forwardBatch(x)
	correct := 0
	for r := 0; r < probs.Rows; r++ {
		pr := probs.Row(r)
		y := ys[r]
		if y < 0 || y >= len(pr) {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, len(pr)))
		}
		if withLoss {
			loss += -math.Log(math.Max(pr[y], lossEps))
		}
		if mathx.ArgMax(pr) == y {
			correct++
		}
	}
	n := float64(len(ys))
	return loss / n, float64(correct) / n
}

// Evaluate returns the mean cross-entropy loss and accuracy of the model on
// the given samples (one row of x per label). An empty input yields (0, 0).
func (m *MLP) Evaluate(x mathx.Matrix, ys []int) (loss, acc float64) {
	return m.score("Evaluate", x, ys, true)
}

// Accuracy returns just the accuracy on the given samples: Evaluate with
// the loss reduction skipped, bit-identical in its accuracy.
func (m *MLP) Accuracy(x mathx.Matrix, ys []int) float64 {
	_, acc := m.score("Accuracy", x, ys, false)
	return acc
}

// AccuracyParams is the accuracy-only EvaluateParams: zero-copy parameter
// aliasing, loss reduction skipped, result bit-identical to EvaluateParams'
// accuracy.
func (m *MLP) AccuracyParams(p []float64, x mathx.Matrix, ys []int) float64 {
	if len(p) != len(m.params) {
		panic(fmt.Sprintf("nn: AccuracyParams length %d, want %d", len(p), len(m.params)))
	}
	saved := m.params
	defer m.alias(saved)
	m.alias(p)
	_, acc := m.score("AccuracyParams", x, ys, false)
	return acc
}

// AccuracyManyInto is the accuracy-only EvaluateMany: it scores every
// parameter vector on one (x, ys) set via aliasing, appending to dst (which
// may be nil) and returning it — the walk engines reuse one buffer across
// steps. Each appended value is bit-identical to the corresponding
// EvaluateMany accuracy.
func (m *MLP) AccuracyManyInto(dst []float64, paramsList [][]float64, x mathx.Matrix, ys []int) []float64 {
	saved := m.params
	defer m.alias(saved)
	for i, p := range paramsList {
		if len(p) != len(saved) {
			panic(fmt.Sprintf("nn: AccuracyManyInto params[%d] length %d, want %d", i, len(p), len(saved)))
		}
		m.alias(p)
		_, acc := m.score("AccuracyManyInto", x, ys, false)
		dst = append(dst, acc)
	}
	return dst
}

// alias re-points the model's parameter storage and per-layer views at p
// without copying. The caller must restore the original storage before the
// model is used as a value holder again.
func (m *MLP) alias(p []float64) {
	m.params = p
	off := 0
	for i := range m.layers {
		l := &m.layers[i]
		l.w = p[off : off+l.in*l.out]
		off += l.in * l.out
		l.b = p[off : off+l.out]
		off += l.out
	}
}

// EvaluateParams scores an arbitrary flat parameter vector on the given
// samples, using the receiver only for its scratch buffers: the layers
// temporarily alias p — no O(P) copy, unlike SetParams — and the model's own
// weights are untouched afterwards. p must stay unmodified for the duration
// of the call (the DAG's published transaction parameters are immutable, so
// the tip-selection hot path satisfies this for free). Results are
// bit-identical to SetParams(p) followed by Evaluate.
func (m *MLP) EvaluateParams(p []float64, x mathx.Matrix, ys []int) (loss, acc float64) {
	if len(p) != len(m.params) {
		panic(fmt.Sprintf("nn: EvaluateParams length %d, want %d", len(p), len(m.params)))
	}
	saved := m.params
	defer m.alias(saved)
	m.alias(p)
	return m.Evaluate(x, ys)
}

// EvaluateMany is the batched evaluation path of the walk engine: it scores
// every parameter vector in paramsList on one (x, ys) set, reusing the
// receiver's scratch buffers across the whole batch and aliasing each vector
// in turn (no per-vector parameter copies). Each (losses[i], accs[i]) is
// bit-identical to SetParams(paramsList[i]) followed by Evaluate; the
// model's own weights are untouched.
func (m *MLP) EvaluateMany(paramsList [][]float64, x mathx.Matrix, ys []int) (losses, accs []float64) {
	losses = make([]float64, len(paramsList))
	accs = make([]float64, len(paramsList))
	saved := m.params
	defer m.alias(saved)
	for i, p := range paramsList {
		if len(p) != len(saved) {
			panic(fmt.Sprintf("nn: EvaluateMany params[%d] length %d, want %d", i, len(p), len(saved)))
		}
		m.alias(p)
		losses[i], accs[i] = m.Evaluate(x, ys)
	}
	return losses, accs
}

// SGDConfig controls local training.
type SGDConfig struct {
	// LR is the learning rate.
	LR float64
	// Epochs is the number of passes over the local data. If MaxBatches > 0
	// the pass is truncated to that many batches per epoch, matching the
	// paper's fixed "local batches" hyperparameter (Table 1).
	Epochs int
	// BatchSize is the mini-batch size (Table 1: 10).
	BatchSize int
	// MaxBatches caps the number of batches per epoch; 0 means no cap.
	MaxBatches int
	// ProxMu, when positive, adds the FedProx proximal term
	// (mu/2)*||w - w0||^2 to the objective, where w0 = ProxCenter.
	ProxMu float64
	// ProxCenter is the global model the proximal term anchors to. Required
	// when ProxMu > 0.
	ProxCenter []float64
	// Momentum, when positive, applies classical momentum: the update uses
	// a velocity v = Momentum*v + grad instead of the raw gradient.
	Momentum float64
	// WeightDecay, when positive, adds L2 regularization: the gradient is
	// augmented with WeightDecay * w.
	WeightDecay float64
	// Shuffle, when true, visits samples in a random order each epoch using
	// the provided RNG.
	Shuffle bool
}

// Train runs mini-batch SGD on (x, ys) according to cfg. rng is used only
// for shuffling and may be nil when cfg.Shuffle is false. It returns the
// number of batches processed.
//
// Each minibatch is gathered from the contiguous sample matrix into reusable
// scratch and runs through the batched forward/backward kernels; gradients,
// momentum state and the visit order also persist on the model, so
// steady-state training performs zero allocations per batch. Updates are
// bit-identical to the retained per-sample reference (reference.go).
func (m *MLP) Train(x mathx.Matrix, ys []int, cfg SGDConfig, rng *xrand.RNG) int {
	if x.Rows != len(ys) {
		panic("nn: Train xs/ys length mismatch")
	}
	if len(ys) == 0 || cfg.Epochs <= 0 {
		return 0
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 10
	}
	if cfg.ProxMu > 0 && len(cfg.ProxCenter) != len(m.params) {
		panic("nn: ProxMu set without a matching ProxCenter")
	}

	n := x.Rows
	if m.grads == nil {
		m.grads = make([]float64, len(m.params))
	}
	grads := m.grads
	var velocity []float64
	if cfg.Momentum > 0 {
		if m.velocity == nil {
			m.velocity = make([]float64, len(m.params))
		}
		velocity = m.velocity
		mathx.Fill(velocity, 0)
	}
	if cap(m.order) < n {
		m.order = make([]int, n)
	}
	order := m.order[:n]
	for i := range order {
		order[i] = i
	}
	maxBatch := cfg.BatchSize
	if maxBatch > n {
		maxBatch = n
	}
	m.growTrain(maxBatch)

	batches := 0
	for e := 0; e < cfg.Epochs; e++ {
		if cfg.Shuffle && rng != nil {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		inEpoch := 0
		for start := 0; start < n; start += cfg.BatchSize {
			if cfg.MaxBatches > 0 && inEpoch >= cfg.MaxBatches {
				break
			}
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			rows := end - start
			batch := m.bs.in.Top(rows)
			mathx.GatherRows(batch, x, order[start:end])
			bys := m.bs.ys[:rows]
			for k, idx := range order[start:end] {
				bys[k] = ys[idx]
			}

			mathx.Fill(grads, 0)
			m.backwardBatch(batch, bys, grads)

			invBatch := 1 / float64(rows)
			if cfg.WeightDecay > 0 {
				// L2 term on the mean-gradient scale.
				k := cfg.WeightDecay / invBatch
				mathx.Axpy(k, m.params, grads)
			}
			if cfg.Momentum > 0 {
				for i, g := range grads {
					velocity[i] = cfg.Momentum*velocity[i] + g
				}
				mathx.Axpy(-cfg.LR*invBatch, velocity, m.params)
			} else {
				mathx.Axpy(-cfg.LR*invBatch, grads, m.params)
			}
			if cfg.ProxMu > 0 {
				// w -= lr * mu * (w - w0)
				k := cfg.LR * cfg.ProxMu
				for i := range m.params {
					m.params[i] -= k * (m.params[i] - cfg.ProxCenter[i])
				}
			}
			batches++
			inEpoch++
		}
	}
	return batches
}

// backwardBatch accumulates the cross-entropy gradient of a whole gathered
// minibatch into grads (laid out identically to the flat parameter vector).
// Per destination element the contributions arrive in ascending sample
// order with exact-zero deltas skipped — the accumulation order of the
// per-sample backward, so the summed gradient is bit-identical to it.
func (m *MLP) backwardBatch(x mathx.Matrix, ys []int, grads []float64) {
	probs := m.forwardBatch(x)
	for _, y := range ys {
		if y < 0 || y >= probs.Cols {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, probs.Cols))
		}
	}
	rows := x.Rows
	last := len(m.layers) - 1
	mathx.SoftmaxCEDelta(probs, ys, m.bs.deltas[last].Top(rows))

	off := len(grads)
	for li := last; li >= 0; li-- {
		l := m.layers[li]
		act := x
		if li > 0 {
			act = m.bs.acts[li-1].Top(rows)
		}
		off -= l.out // bias block
		bg := grads[off : off+l.out]
		off -= l.in * l.out // weight block
		wg := grads[off : off+l.in*l.out]
		mathx.AccumGrads(m.bs.deltas[li].Top(rows), act, wg, bg)
		if li > 0 {
			mathx.BackpropReLUDelta(m.bs.deltas[li].Top(rows), l.w, m.bs.acts[li-1].Top(rows), m.bs.deltas[li-1].Top(rows))
		}
	}
}

// AverageParams returns the element-wise mean of the given parameter
// vectors. It panics if vecs is empty or lengths differ. This is the model
// averaging step of both FedAvg and the specializing DAG.
func AverageParams(vecs ...[]float64) []float64 {
	return mathx.MeanVecs(vecs...)
}

// WeightedAverageParams returns sum(w_i * v_i) / sum(w_i), the
// sample-count-weighted FedAvg aggregate. It panics if inputs are empty,
// lengths differ, or all weights are zero.
func WeightedAverageParams(vecs [][]float64, weights []float64) []float64 {
	if len(vecs) == 0 || len(vecs) != len(weights) {
		panic("nn: WeightedAverageParams needs matching non-empty vecs and weights")
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("nn: WeightedAverageParams with non-positive total weight")
	}
	out := make([]float64, len(vecs[0]))
	for i, v := range vecs {
		if len(v) != len(out) {
			panic("nn: WeightedAverageParams length mismatch")
		}
		mathx.Axpy(weights[i]/total, v, out)
	}
	return out
}
