// Package nn is a minimal, dependency-free neural-network library: dense
// feed-forward networks with ReLU activations and a softmax cross-entropy
// head, trained by mini-batch SGD.
//
// It substitutes for the TensorFlow models of the original paper (CNNs for
// the image tasks, an LSTM for next-character prediction). The DAG mechanism
// under study only requires that models (a) expose their parameters as a flat
// vector that can be averaged and (b) exhibit per-cluster loss landscapes on
// non-IID data; both hold for the MLPs built here.
//
// Models are deliberately not safe for concurrent mutation; the simulator
// clones models per client before training.
package nn

import (
	"fmt"
	"math"

	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/xrand"
)

// Arch describes a feed-forward architecture: In inputs, the given Hidden
// layer widths (possibly empty, yielding softmax regression), and Out
// classes.
type Arch struct {
	In     int
	Hidden []int
	Out    int
}

// Validate reports whether the architecture is well-formed.
func (a Arch) Validate() error {
	if a.In <= 0 {
		return fmt.Errorf("nn: architecture needs In > 0, got %d", a.In)
	}
	if a.Out <= 0 {
		return fmt.Errorf("nn: architecture needs Out > 0, got %d", a.Out)
	}
	for i, h := range a.Hidden {
		if h <= 0 {
			return fmt.Errorf("nn: hidden layer %d has non-positive width %d", i, h)
		}
	}
	return nil
}

// NumParams returns the total number of trainable parameters.
func (a Arch) NumParams() int {
	n := 0
	for _, l := range a.ParamsPerLayer() {
		n += l
	}
	return n
}

// NumLayers returns the number of dense layers (hidden layers plus the
// output layer).
func (a Arch) NumLayers() int { return len(a.Hidden) + 1 }

// ParamsPerLayer returns the parameter count of each dense layer (weights
// plus biases), in order from input to output.
func (a Arch) ParamsPerLayer() []int {
	out := make([]int, 0, a.NumLayers())
	prev := a.In
	for _, h := range a.Hidden {
		out = append(out, prev*h+h)
		prev = h
	}
	return append(out, prev*a.Out+a.Out)
}

// PrefixParams returns the number of parameters in the first k layers.
// It clamps k into [0, NumLayers()]. Used for partial-layer sharing, where
// only an early slice of the network is averaged across clients.
func (a Arch) PrefixParams(k int) int {
	per := a.ParamsPerLayer()
	if k > len(per) {
		k = len(per)
	}
	n := 0
	for i := 0; i < k; i++ {
		n += per[i]
	}
	return n
}

// layer is one dense layer; W is row-major [out][in], b has length out.
// Both are sub-slices of the owning network's flat parameter vector.
type layer struct {
	in, out int
	w, b    []float64
}

// MLP is a feed-forward network with ReLU hidden activations and a softmax
// output. The zero value is not usable; construct with New.
type MLP struct {
	arch   Arch
	params []float64 // single flat backing store; layers view into it
	layers []layer

	// scratch buffers reused across Forward/backward calls to avoid
	// allocating in the training hot loop.
	acts   [][]float64 // post-activation per layer (len = len(layers)+1); acts[0] aliases the input
	deltas [][]float64 // error terms per layer
}

// New constructs an MLP with Glorot-uniform initial weights drawn from rng.
// It panics on an invalid architecture (programmer error).
func New(arch Arch, rng *xrand.RNG) *MLP {
	if err := arch.Validate(); err != nil {
		panic(err)
	}
	m := &MLP{arch: arch}
	m.params = make([]float64, arch.NumParams())
	m.bindLayers()
	m.init(rng)
	return m
}

// bindLayers slices the flat parameter vector into per-layer views and
// allocates scratch buffers.
func (m *MLP) bindLayers() {
	dims := make([]int, 0, len(m.arch.Hidden)+2)
	dims = append(dims, m.arch.In)
	dims = append(dims, m.arch.Hidden...)
	dims = append(dims, m.arch.Out)

	m.layers = m.layers[:0]
	off := 0
	for i := 0; i+1 < len(dims); i++ {
		in, out := dims[i], dims[i+1]
		w := m.params[off : off+in*out]
		off += in * out
		b := m.params[off : off+out]
		off += out
		m.layers = append(m.layers, layer{in: in, out: out, w: w, b: b})
	}

	m.acts = make([][]float64, len(m.layers)+1)
	m.deltas = make([][]float64, len(m.layers))
	for i, l := range m.layers {
		m.acts[i+1] = make([]float64, l.out)
		m.deltas[i] = make([]float64, l.out)
	}
}

// init applies Glorot-uniform initialization to weights; biases start at 0.
func (m *MLP) init(rng *xrand.RNG) {
	for _, l := range m.layers {
		limit := math.Sqrt(6.0 / float64(l.in+l.out))
		for i := range l.w {
			l.w[i] = (rng.Float64()*2 - 1) * limit
		}
		mathx.Fill(l.b, 0)
	}
}

// Arch returns the architecture of the network.
func (m *MLP) Arch() Arch { return m.arch }

// NumParams returns the length of the flat parameter vector.
func (m *MLP) NumParams() int { return len(m.params) }

// Params returns the live flat parameter vector. Callers must copy it before
// storing it (use ParamsCopy), since training mutates it in place.
func (m *MLP) Params() []float64 { return m.params }

// ParamsCopy returns a fresh copy of the flat parameter vector.
func (m *MLP) ParamsCopy() []float64 { return mathx.CloneVec(m.params) }

// SetParams copies p into the network. It panics if the length does not
// match the architecture.
func (m *MLP) SetParams(p []float64) {
	if len(p) != len(m.params) {
		panic(fmt.Sprintf("nn: SetParams length %d, want %d", len(p), len(m.params)))
	}
	copy(m.params, p)
}

// Clone returns a deep copy sharing nothing with the receiver.
func (m *MLP) Clone() *MLP {
	c := &MLP{arch: m.arch}
	c.params = mathx.CloneVec(m.params)
	c.bindLayers()
	return c
}

// Forward computes class probabilities for input x into the returned slice.
// The returned slice is scratch owned by the model: it is valid until the
// next Forward/Train call. x must have length Arch().In.
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.arch.In {
		panic(fmt.Sprintf("nn: Forward input length %d, want %d", len(x), m.arch.In))
	}
	m.acts[0] = x
	for li, l := range m.layers {
		in := m.acts[li]
		out := m.acts[li+1]
		last := li == len(m.layers)-1
		for o := 0; o < l.out; o++ {
			row := l.w[o*l.in : (o+1)*l.in]
			v := l.b[o] + mathx.Dot(row, in)
			if !last && v < 0 {
				v = 0 // ReLU
			}
			out[o] = v
		}
		if last {
			mathx.SoftmaxInPlace(out)
		}
	}
	return m.acts[len(m.layers)]
}

// Predict returns the argmax class for x.
func (m *MLP) Predict(x []float64) int {
	return mathx.ArgMax(m.Forward(x))
}

// lossEps floors probabilities inside log() to keep losses finite.
const lossEps = 1e-12

// Evaluate returns the mean cross-entropy loss and accuracy of the model on
// the given samples. An empty input yields (0, 0).
func (m *MLP) Evaluate(xs [][]float64, ys []int) (loss, acc float64) {
	if len(xs) != len(ys) {
		panic("nn: Evaluate xs/ys length mismatch")
	}
	if len(xs) == 0 {
		return 0, 0
	}
	correct := 0
	for i, x := range xs {
		probs := m.Forward(x)
		y := ys[i]
		if y < 0 || y >= len(probs) {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, len(probs)))
		}
		loss += -math.Log(math.Max(probs[y], lossEps))
		if mathx.ArgMax(probs) == y {
			correct++
		}
	}
	n := float64(len(xs))
	return loss / n, float64(correct) / n
}

// Accuracy returns just the accuracy on the given samples.
func (m *MLP) Accuracy(xs [][]float64, ys []int) float64 {
	_, acc := m.Evaluate(xs, ys)
	return acc
}

// alias re-points the model's parameter storage and per-layer views at p
// without copying. The caller must restore the original storage before the
// model is used as a value holder again.
func (m *MLP) alias(p []float64) {
	m.params = p
	off := 0
	for i := range m.layers {
		l := &m.layers[i]
		l.w = p[off : off+l.in*l.out]
		off += l.in * l.out
		l.b = p[off : off+l.out]
		off += l.out
	}
}

// EvaluateParams scores an arbitrary flat parameter vector on the given
// samples, using the receiver only for its scratch buffers: the layers
// temporarily alias p — no O(P) copy, unlike SetParams — and the model's own
// weights are untouched afterwards. p must stay unmodified for the duration
// of the call (the DAG's published transaction parameters are immutable, so
// the tip-selection hot path satisfies this for free). Results are
// bit-identical to SetParams(p) followed by Evaluate.
func (m *MLP) EvaluateParams(p []float64, xs [][]float64, ys []int) (loss, acc float64) {
	if len(p) != len(m.params) {
		panic(fmt.Sprintf("nn: EvaluateParams length %d, want %d", len(p), len(m.params)))
	}
	saved := m.params
	defer m.alias(saved)
	m.alias(p)
	return m.Evaluate(xs, ys)
}

// EvaluateMany is the batched evaluation path of the walk engine: it scores
// every parameter vector in paramsList on one (xs, ys) set, reusing the
// receiver's scratch buffers across the whole batch and aliasing each vector
// in turn (no per-vector parameter copies). Each (losses[i], accs[i]) is
// bit-identical to SetParams(paramsList[i]) followed by Evaluate; the
// model's own weights are untouched.
func (m *MLP) EvaluateMany(paramsList [][]float64, xs [][]float64, ys []int) (losses, accs []float64) {
	losses = make([]float64, len(paramsList))
	accs = make([]float64, len(paramsList))
	saved := m.params
	defer m.alias(saved)
	for i, p := range paramsList {
		if len(p) != len(saved) {
			panic(fmt.Sprintf("nn: EvaluateMany params[%d] length %d, want %d", i, len(p), len(saved)))
		}
		m.alias(p)
		losses[i], accs[i] = m.Evaluate(xs, ys)
	}
	return losses, accs
}

// SGDConfig controls local training.
type SGDConfig struct {
	// LR is the learning rate.
	LR float64
	// Epochs is the number of passes over the local data. If MaxBatches > 0
	// the pass is truncated to that many batches per epoch, matching the
	// paper's fixed "local batches" hyperparameter (Table 1).
	Epochs int
	// BatchSize is the mini-batch size (Table 1: 10).
	BatchSize int
	// MaxBatches caps the number of batches per epoch; 0 means no cap.
	MaxBatches int
	// ProxMu, when positive, adds the FedProx proximal term
	// (mu/2)*||w - w0||^2 to the objective, where w0 = ProxCenter.
	ProxMu float64
	// ProxCenter is the global model the proximal term anchors to. Required
	// when ProxMu > 0.
	ProxCenter []float64
	// Momentum, when positive, applies classical momentum: the update uses
	// a velocity v = Momentum*v + grad instead of the raw gradient.
	Momentum float64
	// WeightDecay, when positive, adds L2 regularization: the gradient is
	// augmented with WeightDecay * w.
	WeightDecay float64
	// Shuffle, when true, visits samples in a random order each epoch using
	// the provided RNG.
	Shuffle bool
}

// Train runs mini-batch SGD on (xs, ys) according to cfg. rng is used only
// for shuffling and may be nil when cfg.Shuffle is false. It returns the
// number of batches processed.
func (m *MLP) Train(xs [][]float64, ys []int, cfg SGDConfig, rng *xrand.RNG) int {
	if len(xs) != len(ys) {
		panic("nn: Train xs/ys length mismatch")
	}
	if len(xs) == 0 || cfg.Epochs <= 0 {
		return 0
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 10
	}
	if cfg.ProxMu > 0 && len(cfg.ProxCenter) != len(m.params) {
		panic("nn: ProxMu set without a matching ProxCenter")
	}

	grads := make([]float64, len(m.params))
	var velocity []float64
	if cfg.Momentum > 0 {
		velocity = make([]float64, len(m.params))
	}
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}

	batches := 0
	for e := 0; e < cfg.Epochs; e++ {
		if cfg.Shuffle && rng != nil {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		inEpoch := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			if cfg.MaxBatches > 0 && inEpoch >= cfg.MaxBatches {
				break
			}
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			mathx.Fill(grads, 0)
			for _, idx := range order[start:end] {
				m.backward(xs[idx], ys[idx], grads)
			}
			invBatch := 1 / float64(end-start)
			if cfg.WeightDecay > 0 {
				// L2 term on the mean-gradient scale.
				k := cfg.WeightDecay / invBatch
				mathx.Axpy(k, m.params, grads)
			}
			if cfg.Momentum > 0 {
				for i, g := range grads {
					velocity[i] = cfg.Momentum*velocity[i] + g
				}
				mathx.Axpy(-cfg.LR*invBatch, velocity, m.params)
			} else {
				mathx.Axpy(-cfg.LR*invBatch, grads, m.params)
			}
			if cfg.ProxMu > 0 {
				// w -= lr * mu * (w - w0)
				k := cfg.LR * cfg.ProxMu
				for i := range m.params {
					m.params[i] -= k * (m.params[i] - cfg.ProxCenter[i])
				}
			}
			batches++
			inEpoch++
		}
	}
	return batches
}

// backward accumulates the gradient of the cross-entropy loss for one sample
// into grads (laid out identically to the flat parameter vector).
func (m *MLP) backward(x []float64, y int, grads []float64) {
	probs := m.Forward(x) // fills m.acts
	if y < 0 || y >= len(probs) {
		panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, len(probs)))
	}

	// Output delta for softmax + cross-entropy: p - onehot(y).
	last := len(m.layers) - 1
	outDelta := m.deltas[last]
	copy(outDelta, probs)
	outDelta[y] -= 1

	// Walk layers backwards, accumulating weight/bias gradients and
	// propagating deltas through the ReLUs.
	off := len(grads)
	for li := last; li >= 0; li-- {
		l := m.layers[li]
		in := m.acts[li]
		delta := m.deltas[li]

		off -= l.out // bias block
		bg := grads[off : off+l.out]
		off -= l.in * l.out // weight block
		wg := grads[off : off+l.in*l.out]

		for o := 0; o < l.out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			bg[o] += d
			row := wg[o*l.in : (o+1)*l.in]
			mathx.Axpy(d, in, row)
		}

		if li > 0 {
			prev := m.deltas[li-1]
			mathx.Fill(prev, 0)
			for o := 0; o < l.out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				row := l.w[o*l.in : (o+1)*l.in]
				mathx.Axpy(d, row, prev)
			}
			// ReLU derivative: zero where the forward activation was <= 0.
			act := m.acts[li]
			for i := range prev {
				if act[i] <= 0 {
					prev[i] = 0
				}
			}
		}
	}
}

// AverageParams returns the element-wise mean of the given parameter
// vectors. It panics if vecs is empty or lengths differ. This is the model
// averaging step of both FedAvg and the specializing DAG.
func AverageParams(vecs ...[]float64) []float64 {
	return mathx.MeanVecs(vecs...)
}

// WeightedAverageParams returns sum(w_i * v_i) / sum(w_i), the
// sample-count-weighted FedAvg aggregate. It panics if inputs are empty,
// lengths differ, or all weights are zero.
func WeightedAverageParams(vecs [][]float64, weights []float64) []float64 {
	if len(vecs) == 0 || len(vecs) != len(weights) {
		panic("nn: WeightedAverageParams needs matching non-empty vecs and weights")
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("nn: WeightedAverageParams with non-positive total weight")
	}
	out := make([]float64, len(vecs[0]))
	for i, v := range vecs {
		if len(v) != len(out) {
			panic("nn: WeightedAverageParams length mismatch")
		}
		mathx.Axpy(weights[i]/total, v, out)
	}
	return out
}
