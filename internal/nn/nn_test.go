package nn

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/xrand"
)

func TestArchValidate(t *testing.T) {
	tests := []struct {
		name    string
		arch    Arch
		wantErr bool
	}{
		{"valid plain", Arch{In: 4, Out: 2}, false},
		{"valid hidden", Arch{In: 4, Hidden: []int{8, 8}, Out: 2}, false},
		{"zero in", Arch{In: 0, Out: 2}, true},
		{"zero out", Arch{In: 4, Out: 0}, true},
		{"bad hidden", Arch{In: 4, Hidden: []int{0}, Out: 2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.arch.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestArchNumParams(t *testing.T) {
	tests := []struct {
		arch Arch
		want int
	}{
		{Arch{In: 3, Out: 2}, 3*2 + 2},
		{Arch{In: 4, Hidden: []int{5}, Out: 2}, 4*5 + 5 + 5*2 + 2},
		{Arch{In: 2, Hidden: []int{3, 4}, Out: 5}, 2*3 + 3 + 3*4 + 4 + 4*5 + 5},
	}
	for _, tt := range tests {
		if got := tt.arch.NumParams(); got != tt.want {
			t.Errorf("NumParams(%+v) = %d, want %d", tt.arch, got, tt.want)
		}
	}
	m := New(Arch{In: 4, Hidden: []int{5}, Out: 3}, xrand.New(1))
	if m.NumParams() != m.Arch().NumParams() {
		t.Error("model param count disagrees with Arch.NumParams")
	}
}

func TestParamsPerLayer(t *testing.T) {
	a := Arch{In: 4, Hidden: []int{5, 3}, Out: 2}
	per := a.ParamsPerLayer()
	want := []int{4*5 + 5, 5*3 + 3, 3*2 + 2}
	if len(per) != len(want) {
		t.Fatalf("ParamsPerLayer = %v", per)
	}
	total := 0
	for i := range want {
		if per[i] != want[i] {
			t.Fatalf("layer %d: %d params, want %d", i, per[i], want[i])
		}
		total += per[i]
	}
	if total != a.NumParams() {
		t.Fatal("ParamsPerLayer does not sum to NumParams")
	}
	if a.NumLayers() != 3 {
		t.Fatalf("NumLayers = %d, want 3", a.NumLayers())
	}
}

func TestPrefixParams(t *testing.T) {
	a := Arch{In: 4, Hidden: []int{5}, Out: 2}
	tests := []struct {
		k    int
		want int
	}{
		{0, 0},
		{1, 4*5 + 5},
		{2, a.NumParams()},
		{99, a.NumParams()}, // clamped
	}
	for _, tt := range tests {
		if got := a.PrefixParams(tt.k); got != tt.want {
			t.Errorf("PrefixParams(%d) = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestForwardIsDistribution(t *testing.T) {
	rng := xrand.New(2)
	m := New(Arch{In: 6, Hidden: []int{10}, Out: 4}, rng)
	f := func(seed int64) bool {
		r := xrand.New(seed)
		x := r.NormalVec(6, 0, 3)
		p := m.Forward(x)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := xrand.New(3)
	m := New(Arch{In: 4, Hidden: []int{6}, Out: 3}, rng)
	c := m.Clone()
	before := m.ParamsCopy()
	c.Params()[0] += 100
	after := m.ParamsCopy()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("mutating a clone changed the original")
		}
	}
	// The clone must still produce valid outputs (layer views rebound).
	x := rng.NormalVec(4, 0, 1)
	_ = c.Forward(x)
}

func TestSetParamsRoundTrip(t *testing.T) {
	rng := xrand.New(4)
	m := New(Arch{In: 3, Out: 2}, rng)
	p := rng.NormalVec(m.NumParams(), 0, 1)
	m.SetParams(p)
	got := m.ParamsCopy()
	for i := range p {
		if got[i] != p[i] {
			t.Fatal("SetParams/ParamsCopy round trip failed")
		}
	}
}

func TestSetParamsPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Arch{In: 3, Out: 2}, xrand.New(1)).SetParams([]float64{1})
}

// gradCheck compares the analytic gradient against central finite
// differences for a single sample.
func TestGradientCheck(t *testing.T) {
	rng := xrand.New(5)
	m := New(Arch{In: 5, Hidden: []int{7}, Out: 3}, rng)
	x := rng.NormalVec(5, 0, 1)
	y := 1

	grads := make([]float64, m.NumParams())
	m.backward(x, y, grads)

	lossAt := func(p []float64) float64 {
		c := m.Clone()
		c.SetParams(p)
		l, _ := c.Evaluate(mathx.MatrixFromRows([][]float64{x}), []int{y})
		return l
	}

	const h = 1e-5
	base := m.ParamsCopy()
	maxRel := 0.0
	for i := 0; i < len(base); i += 7 { // spot-check a spread of indices
		pp := mathx.CloneVec(base)
		pp[i] += h
		up := lossAt(pp)
		pp[i] -= 2 * h
		down := lossAt(pp)
		numeric := (up - down) / (2 * h)
		denom := math.Max(1e-8, math.Abs(numeric)+math.Abs(grads[i]))
		rel := math.Abs(numeric-grads[i]) / denom
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 1e-4 {
		t.Fatalf("gradient check failed: max relative error %v", maxRel)
	}
}

// makeBlobs builds a linearly separable 3-class toy problem in flat storage.
func makeBlobs(rng *xrand.RNG, n int) (x mathx.Matrix, ys []int) {
	centers := [][]float64{{3, 0}, {-3, 3}, {0, -3}}
	x = mathx.NewMatrix(n, 2)
	ys = make([]int, n)
	for i := 0; i < n; i++ {
		c := i % len(centers)
		row := x.Row(i)
		row[0] = rng.Normal(centers[c][0], 0.5)
		row[1] = rng.Normal(centers[c][1], 0.5)
		ys[i] = c
	}
	return x, ys
}

func TestTrainingLearnsBlobs(t *testing.T) {
	rng := xrand.New(6)
	xs, ys := makeBlobs(rng, 300)
	m := New(Arch{In: 2, Hidden: []int{16}, Out: 3}, rng)
	_, accBefore := m.Evaluate(xs, ys)
	m.Train(xs, ys, SGDConfig{LR: 0.2, Epochs: 20, BatchSize: 10, Shuffle: true}, rng)
	loss, accAfter := m.Evaluate(xs, ys)
	if accAfter < 0.95 {
		t.Fatalf("training failed to learn blobs: acc %v -> %v (loss %v)", accBefore, accAfter, loss)
	}
}

func TestSoftmaxRegressionLearns(t *testing.T) {
	rng := xrand.New(7)
	xs, ys := makeBlobs(rng, 300)
	m := New(Arch{In: 2, Out: 3}, rng) // no hidden layers
	m.Train(xs, ys, SGDConfig{LR: 0.5, Epochs: 15, BatchSize: 10, Shuffle: true}, rng)
	if acc := m.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("softmax regression accuracy %v, want >= 0.95", acc)
	}
}

func TestTrainMaxBatchesCapsWork(t *testing.T) {
	rng := xrand.New(8)
	xs, ys := makeBlobs(rng, 200)
	m := New(Arch{In: 2, Out: 3}, rng)
	got := m.Train(xs, ys, SGDConfig{LR: 0.1, Epochs: 2, BatchSize: 10, MaxBatches: 3}, rng)
	if got != 6 {
		t.Fatalf("expected 2 epochs x 3 batches = 6, got %d", got)
	}
	full := m.Train(xs, ys, SGDConfig{LR: 0.1, Epochs: 1, BatchSize: 10}, rng)
	if full != 20 {
		t.Fatalf("expected 20 uncapped batches, got %d", full)
	}
}

func TestTrainEmptyAndNoEpochs(t *testing.T) {
	rng := xrand.New(9)
	m := New(Arch{In: 2, Out: 2}, rng)
	if got := m.Train(mathx.Matrix{}, nil, SGDConfig{LR: 0.1, Epochs: 5}, rng); got != 0 {
		t.Errorf("training on empty data should do nothing, got %d batches", got)
	}
	xs, ys := makeBlobs(rng, 10)
	if got := m.Train(xs, ys, SGDConfig{LR: 0.1, Epochs: 0}, rng); got != 0 {
		t.Errorf("zero epochs should do nothing, got %d batches", got)
	}
}

func TestProximalTermPullsTowardCenter(t *testing.T) {
	rng := xrand.New(10)
	xs, ys := makeBlobs(rng, 200)

	base := New(Arch{In: 2, Out: 3}, rng)
	center := base.ParamsCopy()

	// Keep lr*mu well below the explicit-Euler stability bound of 2.
	plain := base.Clone()
	plain.Train(xs, ys, SGDConfig{LR: 0.1, Epochs: 10, BatchSize: 10}, rng)

	prox := base.Clone()
	prox.Train(xs, ys, SGDConfig{LR: 0.1, Epochs: 10, BatchSize: 10, ProxMu: 2, ProxCenter: center}, rng)

	dPlain := mathx.L2Dist(plain.Params(), center)
	dProx := mathx.L2Dist(prox.Params(), center)
	if dProx >= dPlain {
		t.Fatalf("proximal term should keep weights closer to center: prox %v >= plain %v", dProx, dPlain)
	}
}

func TestProxPanicsWithoutCenter(t *testing.T) {
	rng := xrand.New(11)
	m := New(Arch{In: 2, Out: 2}, rng)
	xs, ys := makeBlobs(rng, 20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when ProxMu set without center")
		}
	}()
	m.Train(xs, ys, SGDConfig{LR: 0.1, Epochs: 1, ProxMu: 1}, rng)
}

func TestMomentumAccelerates(t *testing.T) {
	rng := xrand.New(14)
	xs, ys := makeBlobs(rng, 200)
	base := New(Arch{In: 2, Hidden: []int{16}, Out: 3}, rng)

	plain := base.Clone()
	plain.Train(xs, ys, SGDConfig{LR: 0.05, Epochs: 3, BatchSize: 10}, rng)
	lossPlain, _ := plain.Evaluate(xs, ys)

	mom := base.Clone()
	mom.Train(xs, ys, SGDConfig{LR: 0.05, Epochs: 3, BatchSize: 10, Momentum: 0.9}, rng)
	lossMom, _ := mom.Evaluate(xs, ys)

	if lossMom >= lossPlain {
		t.Fatalf("momentum should speed up early convergence: loss %v vs plain %v", lossMom, lossPlain)
	}
}

func TestWeightDecayShrinksNorm(t *testing.T) {
	rng := xrand.New(15)
	xs, ys := makeBlobs(rng, 200)
	base := New(Arch{In: 2, Out: 3}, rng)

	plain := base.Clone()
	plain.Train(xs, ys, SGDConfig{LR: 0.1, Epochs: 20, BatchSize: 10}, rng)

	decayed := base.Clone()
	decayed.Train(xs, ys, SGDConfig{LR: 0.1, Epochs: 20, BatchSize: 10, WeightDecay: 0.05}, rng)

	if mathx.L2Norm(decayed.Params()) >= mathx.L2Norm(plain.Params()) {
		t.Fatalf("weight decay should shrink the parameter norm: %v vs %v",
			mathx.L2Norm(decayed.Params()), mathx.L2Norm(plain.Params()))
	}
	// It must still learn.
	if acc := decayed.Accuracy(xs, ys); acc < 0.9 {
		t.Fatalf("weight decay destroyed learning: acc %v", acc)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := New(Arch{In: 2, Out: 2}, xrand.New(12))
	loss, acc := m.Evaluate(mathx.Matrix{}, nil)
	if loss != 0 || acc != 0 {
		t.Fatalf("Evaluate(empty) = (%v, %v), want (0, 0)", loss, acc)
	}
}

func TestAverageParamsIsMean(t *testing.T) {
	a := []float64{0, 2, 4}
	b := []float64{2, 2, 0}
	got := AverageParams(a, b)
	want := []float64{1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AverageParams got %v want %v", got, want)
		}
	}
}

func TestWeightedAverageParams(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{4, 8}
	got := WeightedAverageParams([][]float64{a, b}, []float64{3, 1})
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("WeightedAverageParams got %v", got)
	}
}

func TestWeightedAverageParamsPanics(t *testing.T) {
	cases := []func(){
		func() { WeightedAverageParams(nil, nil) },
		func() { WeightedAverageParams([][]float64{{1}}, []float64{0}) },
		func() { WeightedAverageParams([][]float64{{1}, {1, 2}}, []float64{1, 1}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Averaging two identical models must produce the same predictions — the
// foundation of the DAG averaging step.
func TestAverageOfIdenticalModelsIsIdentity(t *testing.T) {
	rng := xrand.New(13)
	m := New(Arch{In: 4, Hidden: []int{5}, Out: 3}, rng)
	avg := AverageParams(m.ParamsCopy(), m.ParamsCopy())
	c := m.Clone()
	c.SetParams(avg)
	x := rng.NormalVec(4, 0, 1)
	p1 := mathx.CloneVec(m.Forward(x))
	p2 := c.Forward(x)
	for i := range p1 {
		if math.Abs(p1[i]-p2[i]) > 1e-12 {
			t.Fatal("average of identical models changed predictions")
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() *MLP {
		rng := xrand.New(99)
		m := New(Arch{In: 2, Hidden: []int{8}, Out: 3}, rng.Split("init"))
		xs, ys := makeBlobs(rng.Split("data"), 100)
		m.Train(xs, ys, SGDConfig{LR: 0.3, Epochs: 5, BatchSize: 10, Shuffle: true}, rng.Split("train"))
		return m
	}
	a, b := build(), build()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("training is not deterministic under a fixed seed")
		}
	}
}

// TestEvaluateParamsMatchesSetParams pins the zero-copy evaluation path: it
// must be bit-identical to SetParams+Evaluate and must leave the model's own
// weights untouched.
func TestEvaluateParamsMatchesSetParams(t *testing.T) {
	rng := xrand.New(3)
	arch := Arch{In: 6, Hidden: []int{5, 4}, Out: 3}
	m := New(arch, rng)
	other := New(arch, rng.Split("other"))
	xs, ys := randomSamples(rng, 40, arch.In, arch.Out)

	own := m.ParamsCopy()
	wantLoss, wantAcc := func() (float64, float64) {
		c := m.Clone()
		c.SetParams(other.Params())
		return c.Evaluate(xs, ys)
	}()
	gotLoss, gotAcc := m.EvaluateParams(other.Params(), xs, ys)
	if gotLoss != wantLoss || gotAcc != wantAcc {
		t.Fatalf("EvaluateParams = (%v, %v), want (%v, %v)", gotLoss, gotAcc, wantLoss, wantAcc)
	}
	for i, p := range m.Params() {
		if p != own[i] {
			t.Fatalf("EvaluateParams mutated model weights at %d", i)
		}
	}
	// The model must still evaluate its own weights after the aliasing round
	// trip.
	selfLoss, selfAcc := m.Evaluate(xs, ys)
	c := m.Clone()
	cLoss, cAcc := c.Evaluate(xs, ys)
	if selfLoss != cLoss || selfAcc != cAcc {
		t.Fatalf("model state corrupted after EvaluateParams: (%v, %v) vs (%v, %v)", selfLoss, selfAcc, cLoss, cAcc)
	}
}

// TestEvaluateManyMatchesLoop: the batched path must equal per-vector
// SetParams+Evaluate bit for bit, in order.
func TestEvaluateManyMatchesLoop(t *testing.T) {
	rng := xrand.New(9)
	arch := Arch{In: 5, Hidden: []int{7}, Out: 4}
	m := New(arch, rng)
	xs, ys := randomSamples(rng, 30, arch.In, arch.Out)

	var batch [][]float64
	for i := 0; i < 6; i++ {
		batch = append(batch, New(arch, rng.SplitIndex("b", i)).ParamsCopy())
	}
	losses, accs := m.EvaluateMany(batch, xs, ys)
	if len(losses) != len(batch) || len(accs) != len(batch) {
		t.Fatalf("EvaluateMany returned %d/%d results for %d vectors", len(losses), len(accs), len(batch))
	}
	scratch := m.Clone()
	for i, p := range batch {
		scratch.SetParams(p)
		wantLoss, wantAcc := scratch.Evaluate(xs, ys)
		if losses[i] != wantLoss || accs[i] != wantAcc {
			t.Fatalf("vector %d: batched (%v, %v) vs sequential (%v, %v)", i, losses[i], accs[i], wantLoss, wantAcc)
		}
	}
}

// TestEvaluateParamsLengthMismatchPanics: aliasing a wrong-shaped vector
// must fail loudly, exactly like SetParams.
func TestEvaluateParamsLengthMismatchPanics(t *testing.T) {
	m := New(Arch{In: 3, Out: 2}, xrand.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("EvaluateParams with short vector did not panic")
		}
	}()
	m.EvaluateParams([]float64{1, 2}, mathx.Matrix{}, nil)
}

// randomSamples draws labeled samples for the evaluation tests.
func randomSamples(rng *xrand.RNG, n, in, classes int) (mathx.Matrix, []int) {
	x := mathx.NewMatrix(n, in)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		copy(x.Row(i), rng.NormalVec(in, 0, 1))
		ys[i] = rng.Intn(classes)
	}
	return x, ys
}
