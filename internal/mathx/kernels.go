package mathx

import "fmt"

// Batched neural-network kernels over Matrix storage.
//
// # Float-determinism contract
//
// The accumulation order of every kernel in this file is part of its API:
// each output element is produced by one scalar accumulator that consumes
// its contributions in the same order as the per-sample reference loops
// (Dot's ascending-index product sum, sample-ascending gradient
// accumulation, output-ascending delta backpropagation), and zero
// contributions are skipped exactly where the reference skips them.
// Blocking is only applied across independent output elements (e.g. four
// samples sharing one weight-row sweep), never inside one element's sum, so
// results are bit-identical to the scalar loops — the property the
// simulation's worker-count invariance, checkpoint resume, and the CI
// metric gate (cmd/benchgate) all rest on. Any change to these loop orders
// is a numerics change, even if it is algebraically neutral.

// AffineRows computes the dense-layer pre-activations for a whole batch:
//
//	out[r][o] = b[o] + sum_i x[r][i] * w[o*x.Cols+i]
//
// w is row-major [len(b)][x.Cols] — the layer's weight matrix. For each
// (r, o) the product sum runs over ascending i into a single accumulator and
// the bias is added after the sum, exactly like b[o] + Dot(wRow, xRow).
// Rows are processed in blocks that share each weight-row sweep (the cache
// win of batching); each row keeps its own accumulator, so blocking does not
// alter any element's accumulation order.
func AffineRows(x Matrix, w, b []float64, out Matrix) {
	affineRows(x, w, b, out, false)
}

// AffineRowsReLU is AffineRows with the ReLU clamp fused into the output
// write: out[r][o] = max(0, b[o] + sum). Bit-identical to AffineRows
// followed by ReLURows, one pass over out cheaper.
func AffineRowsReLU(x Matrix, w, b []float64, out Matrix) {
	affineRows(x, w, b, out, true)
}

func affineRows(x Matrix, w, b []float64, out Matrix, relu bool) {
	in, outDim := x.Cols, len(b)
	if len(w) != in*outDim {
		panic(fmt.Sprintf("mathx: AffineRows weights %d, want %dx%d", len(w), outDim, in))
	}
	if out.Rows != x.Rows || out.Cols != outDim {
		panic(fmt.Sprintf("mathx: AffineRows out %dx%d, want %dx%d", out.Rows, out.Cols, x.Rows, outDim))
	}
	r := 0
	// Eight samples per weight-row sweep: each output element keeps its own
	// serial accumulator (the order contract), and eight independent add
	// chains are enough to hide scalar FP-add latency on current cores.
	for ; r+8 <= x.Rows; r += 8 {
		x0, x1, x2, x3 := x.Row(r)[:in], x.Row(r + 1)[:in], x.Row(r + 2)[:in], x.Row(r + 3)[:in]
		x4, x5, x6, x7 := x.Row(r + 4)[:in], x.Row(r + 5)[:in], x.Row(r + 6)[:in], x.Row(r + 7)[:in]
		o0, o1, o2, o3 := out.Row(r)[:outDim], out.Row(r + 1)[:outDim], out.Row(r + 2)[:outDim], out.Row(r + 3)[:outDim]
		o4, o5, o6, o7 := out.Row(r + 4)[:outDim], out.Row(r + 5)[:outDim], out.Row(r + 6)[:outDim], out.Row(r + 7)[:outDim]
		for o := 0; o < outDim; o++ {
			row := w[o*in : o*in+in]
			x0, x1, x2, x3 := x0[:len(row)], x1[:len(row)], x2[:len(row)], x3[:len(row)]
			x4, x5, x6, x7 := x4[:len(row)], x5[:len(row)], x6[:len(row)], x7[:len(row)]
			var a0, a1, a2, a3, a4, a5, a6, a7 float64
			for i, wv := range row {
				a0 += x0[i] * wv
				a1 += x1[i] * wv
				a2 += x2[i] * wv
				a3 += x3[i] * wv
				a4 += x4[i] * wv
				a5 += x5[i] * wv
				a6 += x6[i] * wv
				a7 += x7[i] * wv
			}
			bo := b[o]
			a0, a1, a2, a3 = bo+a0, bo+a1, bo+a2, bo+a3
			a4, a5, a6, a7 = bo+a4, bo+a5, bo+a6, bo+a7
			if relu {
				a0, a1, a2, a3 = clamp0(a0), clamp0(a1), clamp0(a2), clamp0(a3)
				a4, a5, a6, a7 = clamp0(a4), clamp0(a5), clamp0(a6), clamp0(a7)
			}
			o0[o], o1[o], o2[o], o3[o] = a0, a1, a2, a3
			o4[o], o5[o], o6[o], o7[o] = a4, a5, a6, a7
		}
	}
	for ; r+4 <= x.Rows; r += 4 {
		// The [:in] re-slices pin every row's length to the loop bound so
		// the compiler drops the per-element bounds checks.
		x0, x1, x2, x3 := x.Row(r)[:in], x.Row(r + 1)[:in], x.Row(r + 2)[:in], x.Row(r + 3)[:in]
		o0, o1, o2, o3 := out.Row(r)[:outDim], out.Row(r + 1)[:outDim], out.Row(r + 2)[:outDim], out.Row(r + 3)[:outDim]
		for o := 0; o < outDim; o++ {
			row := w[o*in : o*in+in]
			x0, x1, x2, x3 := x0[:len(row)], x1[:len(row)], x2[:len(row)], x3[:len(row)]
			var a0, a1, a2, a3 float64
			for i, wv := range row {
				a0 += x0[i] * wv
				a1 += x1[i] * wv
				a2 += x2[i] * wv
				a3 += x3[i] * wv
			}
			bo := b[o]
			a0, a1, a2, a3 = bo+a0, bo+a1, bo+a2, bo+a3
			if relu {
				a0, a1, a2, a3 = clamp0(a0), clamp0(a1), clamp0(a2), clamp0(a3)
			}
			o0[o], o1[o], o2[o], o3[o] = a0, a1, a2, a3
		}
	}
	// Remainder rows: a single row is one serial add chain per output, so
	// block over four outputs instead — four independent accumulators keep
	// the FP units busy while each element's sum order stays Dot's.
	for ; r < x.Rows; r++ {
		xr, or := x.Row(r)[:in], out.Row(r)[:outDim]
		o := 0
		for ; o+4 <= outDim; o += 4 {
			w0 := w[o*in : o*in+in]
			w1, w2, w3 := w[(o+1)*in:(o+2)*in], w[(o+2)*in:(o+3)*in], w[(o+3)*in:(o+4)*in]
			w1, w2, w3 = w1[:len(w0)], w2[:len(w0)], w3[:len(w0)]
			xr := xr[:len(w0)]
			var a0, a1, a2, a3 float64
			for i, xv := range xr {
				a0 += xv * w0[i]
				a1 += xv * w1[i]
				a2 += xv * w2[i]
				a3 += xv * w3[i]
			}
			a0, a1, a2, a3 = b[o]+a0, b[o+1]+a1, b[o+2]+a2, b[o+3]+a3
			if relu {
				a0, a1, a2, a3 = clamp0(a0), clamp0(a1), clamp0(a2), clamp0(a3)
			}
			or[o], or[o+1], or[o+2], or[o+3] = a0, a1, a2, a3
		}
		for ; o < outDim; o++ {
			row := w[o*in : o*in+in]
			xr := xr[:len(row)]
			var acc float64
			for i, wv := range row {
				acc += xr[i] * wv
			}
			acc = b[o] + acc
			if relu {
				acc = clamp0(acc)
			}
			or[o] = acc
		}
	}
}

// clamp0 is the ReLU: negatives become zero, exactly like the scalar
// forward pass's `if v < 0 { v = 0 }`.
func clamp0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// ReLURows clamps negative entries of m to zero in place, matching the
// per-element `if v < 0 { v = 0 }` of the scalar forward pass.
func ReLURows(m Matrix) {
	data := m.Data[:m.Rows*m.Cols]
	for i, v := range data {
		if v < 0 {
			data[i] = 0
		}
	}
}

// SoftmaxRows applies SoftmaxInPlace to every row of m — the batched softmax
// head. Each row goes through the identical stable shifted-exponent code
// path as the per-sample loop.
func SoftmaxRows(m Matrix) {
	for r := 0; r < m.Rows; r++ {
		SoftmaxInPlace(m.Row(r))
	}
}

// SoftmaxCEDelta fills delta with the softmax-cross-entropy output error for
// a whole batch: delta[r] = probs[r] - onehot(ys[r]). Labels must be in
// range; callers validate them (with their own diagnostics) first.
func SoftmaxCEDelta(probs Matrix, ys []int, delta Matrix) {
	if probs.Rows != len(ys) || delta.Rows != probs.Rows || delta.Cols != probs.Cols {
		panic(fmt.Sprintf("mathx: SoftmaxCEDelta probs %dx%d, delta %dx%d, %d labels",
			probs.Rows, probs.Cols, delta.Rows, delta.Cols, len(ys)))
	}
	for r, y := range ys {
		dr := delta.Row(r)
		copy(dr, probs.Row(r))
		dr[y]--
	}
}

// AccumGrads accumulates a batch's dense-layer gradient into wg (row-major
// [delta.Cols][act.Cols]) and bg (len delta.Cols):
//
//	wg[o][i] += sum_r delta[r][o] * act[r][i]
//	bg[o]    += sum_r delta[r][o]
//
// For every destination element the contributions are applied in ascending
// sample order r, and samples with delta[r][o] == 0 are skipped — exactly
// the order and sparsity of the per-sample reference loop, so the
// accumulated gradient is bit-identical to running backward sample by
// sample.
func AccumGrads(delta, act Matrix, wg, bg []float64) {
	in, outDim := act.Cols, delta.Cols
	if delta.Rows != act.Rows {
		panic(fmt.Sprintf("mathx: AccumGrads delta has %d rows, act %d", delta.Rows, act.Rows))
	}
	if len(wg) != in*outDim || len(bg) != outDim {
		panic(fmt.Sprintf("mathx: AccumGrads wg %d, bg %d, want %dx%d and %d", len(wg), len(bg), outDim, in, outDim))
	}
	rows := delta.Rows
	dd := delta.Data
	for o := 0; o < outDim; o++ {
		wrow := wg[o*in : o*in+in]
		r := 0
		// Four samples per weight-row sweep: one pass over wrow applies the
		// four contributions as consecutive scalar adds — the same ordered
		// sequence the per-sample loop produces, at a quarter of the wg
		// memory traffic. Any exact-zero delta falls back to the per-sample
		// loop so the reference's skip is reproduced faithfully.
		for ; r+4 <= rows; r += 4 {
			d0, d1, d2, d3 := dd[r*outDim+o], dd[(r+1)*outDim+o], dd[(r+2)*outDim+o], dd[(r+3)*outDim+o]
			if d0 != 0 && d1 != 0 && d2 != 0 && d3 != 0 {
				bo := bg[o]
				bo += d0
				bo += d1
				bo += d2
				bo += d3
				bg[o] = bo
				a0 := act.Row(r)[:len(wrow)]
				a1 := act.Row(r + 1)[:len(wrow)]
				a2 := act.Row(r + 2)[:len(wrow)]
				a3 := act.Row(r + 3)[:len(wrow)]
				for i := range wrow {
					t := wrow[i]
					t += d0 * a0[i]
					t += d1 * a1[i]
					t += d2 * a2[i]
					t += d3 * a3[i]
					wrow[i] = t
				}
				continue
			}
			for k := 0; k < 4; k++ {
				accumGradRow(dd[(r+k)*outDim+o], act.Row(r+k), wrow, bg, o)
			}
		}
		for ; r < rows; r++ {
			accumGradRow(dd[r*outDim+o], act.Row(r), wrow, bg, o)
		}
	}
}

// accumGradRow applies one sample's contribution to a weight row and its
// bias gradient, skipping exact zeros like the per-sample reference.
func accumGradRow(d float64, actRow, wrow []float64, bg []float64, o int) {
	if d == 0 {
		return
	}
	bg[o] += d
	actRow = actRow[:len(wrow)]
	for i, av := range actRow {
		wrow[i] += d * av
	}
}

// BackpropReLUDelta propagates a batch's error terms through a dense layer
// and its ReLU: for every row r,
//
//	prev[r][i] = sum_o delta[r][o] * w[o*prev.Cols+i]   (ascending o,
//	                                                     delta == 0 skipped)
//
// then prev[r][i] is zeroed wherever the forward activation act[r][i] <= 0
// (the ReLU derivative). Identical, element for element, to the per-sample
// reference loop.
func BackpropReLUDelta(delta Matrix, w []float64, act, prev Matrix) {
	in, outDim := prev.Cols, delta.Cols
	if len(w) != in*outDim {
		panic(fmt.Sprintf("mathx: BackpropReLUDelta weights %d, want %dx%d", len(w), outDim, in))
	}
	if act.Rows != delta.Rows || prev.Rows != delta.Rows || act.Cols != in {
		panic(fmt.Sprintf("mathx: BackpropReLUDelta delta %dx%d, act %dx%d, prev %dx%d",
			delta.Rows, delta.Cols, act.Rows, act.Cols, prev.Rows, prev.Cols))
	}
	for r := 0; r < delta.Rows; r++ {
		pr := prev.Row(r)[:in]
		Fill(pr, 0)
		for o, d := range delta.Row(r) {
			if d == 0 {
				continue
			}
			wrow := w[o*in : o*in+in]
			pr := pr[:len(wrow)]
			for i, wv := range wrow {
				pr[i] += d * wv
			}
		}
		ar := act.Row(r)[:in]
		for i, v := range ar {
			if v <= 0 {
				pr[i] = 0
			}
		}
	}
}
