package mathx

import "fmt"

// Matrix is contiguous row-major float64 storage: Rows rows of Cols values
// in one flat backing slice, so iterating rows walks memory sequentially and
// a whole sample set is a single allocation. Row i occupies
// Data[i*Cols : (i+1)*Cols] — the stride equals Cols, with no padding.
//
// A Matrix is a view: copying the struct aliases the backing slice. Use
// Clone for a deep copy, Top/RowRange for zero-copy sub-views, and
// GatherRows to materialize an arbitrary row subset (the shuffled-minibatch
// path of the training loop).
//
// The zero value is an empty matrix.
type Matrix struct {
	Data []float64
	Rows int
	Cols int
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mathx: NewMatrix(%d, %d) with negative dimension", rows, cols))
	}
	return Matrix{Data: make([]float64, rows*cols), Rows: rows, Cols: cols}
}

// MatrixFromRows copies the given equal-length rows into fresh contiguous
// storage. It panics on ragged input. An empty input yields an empty matrix.
func MatrixFromRows(rows [][]float64) Matrix {
	if len(rows) == 0 {
		return Matrix{}
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mathx: MatrixFromRows row %d has %d values, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns the zero-copy view of row i.
func (m Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Top returns the zero-copy view of the first rows rows. It is the scratch
// idiom of the batched kernels: buffers are allocated at capacity once and
// narrowed per batch.
func (m Matrix) Top(rows int) Matrix {
	return m.RowRange(0, rows)
}

// RowRange returns the zero-copy view of rows [i, j).
func (m Matrix) RowRange(i, j int) Matrix {
	if i < 0 || j < i || j > m.Rows {
		panic(fmt.Sprintf("mathx: RowRange(%d, %d) outside matrix with %d rows", i, j, m.Rows))
	}
	return Matrix{Data: m.Data[i*m.Cols : j*m.Cols], Rows: j - i, Cols: m.Cols}
}

// Clone returns a deep copy sharing no storage with the receiver.
func (m Matrix) Clone() Matrix {
	out := Matrix{Data: make([]float64, len(m.Data)), Rows: m.Rows, Cols: m.Cols}
	copy(out.Data, m.Data)
	return out
}

// Grow returns a matrix with at least rows x cols capacity, reusing the
// receiver's backing storage when it is large enough. Contents are
// unspecified; the returned matrix has exactly rows x cols shape. This keeps
// steady-state scratch buffers allocation-free once they have reached their
// working size.
func (m Matrix) Grow(rows, cols int) Matrix {
	need := rows * cols
	if cap(m.Data) < need {
		return Matrix{Data: make([]float64, need), Rows: rows, Cols: cols}
	}
	return Matrix{Data: m.Data[:need], Rows: rows, Cols: cols}
}

// GatherRows copies src rows idx[0], idx[1], ... into dst's rows, in order:
// the batched gather that materializes a shuffled minibatch from contiguous
// dataset storage. dst must have len(idx) rows of src.Cols values; values
// are copied bit-exactly, so downstream kernels see exactly the samples the
// per-sample loop would have visited.
func GatherRows(dst Matrix, src Matrix, idx []int) {
	if dst.Rows != len(idx) || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mathx: GatherRows into %dx%d from %d indices of width %d",
			dst.Rows, dst.Cols, len(idx), src.Cols))
	}
	for k, i := range idx {
		copy(dst.Row(k), src.Row(i))
	}
}
