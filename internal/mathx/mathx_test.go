package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"ones", []float64{1, 1, 1}, []float64{1, 2, 3}, 6},
		{"orthogonal", []float64{1, 0}, []float64{0, 5}, 0},
		{"negative", []float64{-1, 2}, []float64{3, 4}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dot() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, y)
	want := []float64{3, 4, 5}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy got %v want %v", y, want)
		}
	}
}

func TestScaleAndFill(t *testing.T) {
	x := []float64{1, 2}
	Scale(3, x)
	if x[0] != 3 || x[1] != 6 {
		t.Fatalf("Scale got %v", x)
	}
	Fill(x, -1)
	if x[0] != -1 || x[1] != -1 {
		t.Fatalf("Fill got %v", x)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if Std([]float64{5}) != 0 {
		t.Error("Std of singleton should be 0")
	}
	if got := Std([]float64{2, 4}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Std = %v, want 1", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax got (%v, %v)", min, max)
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5}}
	for _, tt := range tests {
		if got := Quantile(x, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Quantile must not mutate its input.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Error("Quantile mutated input")
	}
}

func TestArgMax(t *testing.T) {
	tests := []struct {
		x    []float64
		want int
	}{
		{[]float64{1}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{5, 5, 5}, 0}, // ties break low
		{[]float64{-3, -1, -2}, 1},
	}
	for _, tt := range tests {
		if got := ArgMax(tt.x); got != tt.want {
			t.Errorf("ArgMax(%v) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestSoftmaxIsDistribution(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			// Clamp wild quick-generated values into a sane logit range.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = Clip(v, -1e3, 1e3)
		}
		SoftmaxInPlace(x)
		sum := 0.0
		for _, p := range x {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := []float64{1000, 1000, 1000}
	SoftmaxInPlace(x)
	for _, p := range x {
		if !almostEqual(p, 1.0/3.0, 1e-9) {
			t.Fatalf("softmax of equal huge logits should be uniform, got %v", x)
		}
	}
	y := []float64{-1e308, 0}
	SoftmaxInPlace(y)
	if !almostEqual(y[1], 1, 1e-9) {
		t.Fatalf("softmax should concentrate on the max, got %v", y)
	}
}

func TestLogSumExp(t *testing.T) {
	x := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(x); !almostEqual(got, math.Log(6), 1e-9) {
		t.Errorf("LogSumExp = %v, want log(6)", got)
	}
	big := []float64{1e6, 1e6}
	if got := LogSumExp(big); !almostEqual(got, 1e6+math.Log(2), 1e-3) {
		t.Errorf("LogSumExp overflow handling broken: %v", got)
	}
}

func TestMeanVecs(t *testing.T) {
	got := MeanVecs([]float64{0, 2}, []float64{2, 4})
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("MeanVecs got %v", got)
	}
}

func TestMeanVecsIsElementwiseMeanQuick(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		for i := 0; i < n; i++ {
			// Skip values whose sum would overflow; MeanVecs is not
			// specified for inputs outside the representable-sum range.
			if math.IsNaN(a[i]) || math.Abs(a[i]) > 1e150 || math.IsNaN(b[i]) || math.Abs(b[i]) > 1e150 {
				return true
			}
		}
		m := MeanVecs(a, b)
		for i := 0; i < n; i++ {
			want := (a[i] + b[i]) / 2
			if !almostEqual(m[i], want, 1e-9*math.Max(1, math.Abs(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL2(t *testing.T) {
	if got := L2Dist([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("L2Dist = %v, want 5", got)
	}
	if got := L2Norm([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("L2Norm = %v, want 5", got)
	}
}

func TestClip(t *testing.T) {
	if Clip(5, 0, 1) != 1 || Clip(-5, 0, 1) != 0 || Clip(0.5, 0, 1) != 0.5 {
		t.Error("Clip misbehaves")
	}
}

func TestCloneVecIndependent(t *testing.T) {
	a := []float64{1, 2}
	b := CloneVec(a)
	b[0] = 99
	if a[0] != 1 {
		t.Error("CloneVec aliases its input")
	}
}
