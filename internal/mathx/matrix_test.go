package mathx

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator so the kernel tests do not depend on
// xrand (which sits above mathx in the package graph).
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	// Map the top bits into [-1, 1).
	return float64(int64(*g>>11))/float64(1<<52) - 1
}

func randMatrix(g *lcg, rows, cols int) Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = g.next()
	}
	return m
}

func randVec(g *lcg, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = g.next()
	}
	return v
}

func TestMatrixRowViewsAlias(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Row(1)[0] = 7
	if m.Data[2] != 7 {
		t.Fatal("Row is not a view into Data")
	}
	v := m.RowRange(1, 3)
	if v.Rows != 2 || v.Cols != 2 || &v.Data[0] != &m.Data[2] {
		t.Fatal("RowRange is not a zero-copy view")
	}
	if top := m.Top(1); top.Rows != 1 || &top.Data[0] != &m.Data[0] {
		t.Fatal("Top is not a zero-copy prefix view")
	}
}

func TestMatrixFromRowsAndClone(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 || m.Data[3] != 4 {
		t.Fatalf("MatrixFromRows got %+v", m)
	}
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
	if e := MatrixFromRows(nil); e.Rows != 0 || len(e.Data) != 0 {
		t.Fatal("empty MatrixFromRows should be the zero matrix")
	}
}

func TestMatrixFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged input should panic")
		}
	}()
	MatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestMatrixGrowReusesStorage(t *testing.T) {
	m := NewMatrix(8, 4)
	p := &m.Data[0]
	g := m.Grow(2, 4)
	if g.Rows != 2 || g.Cols != 4 || &g.Data[0] != p {
		t.Fatal("Grow within capacity should reuse storage")
	}
	big := m.Grow(16, 4)
	if big.Rows != 16 || len(big.Data) != 64 {
		t.Fatal("Grow beyond capacity should reallocate to the new shape")
	}
}

func TestGatherRows(t *testing.T) {
	src := MatrixFromRows([][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	dst := NewMatrix(3, 2)
	GatherRows(dst, src, []int{3, 1, 3})
	want := []float64{3, 3, 1, 1, 3, 3}
	for i, v := range want {
		if dst.Data[i] != v {
			t.Fatalf("GatherRows got %v, want %v", dst.Data, want)
		}
	}
}

// TestAffineRowsMatchesDot pins the float-determinism contract: every batch
// row must equal b[o] + Dot(wRow, xRow) bit for bit, across the blocked
// (>= 4 rows) and the remainder paths.
func TestAffineRowsMatchesDot(t *testing.T) {
	g := lcg(1)
	for _, rows := range []int{1, 2, 3, 4, 5, 8, 11} {
		x := randMatrix(&g, rows, 7)
		w := randVec(&g, 5*7)
		b := randVec(&g, 5)
		out := NewMatrix(rows, 5)
		AffineRows(x, w, b, out)
		for r := 0; r < rows; r++ {
			for o := 0; o < 5; o++ {
				want := b[o] + Dot(w[o*7:(o+1)*7], x.Row(r))
				if got := out.Row(r)[o]; got != want {
					t.Fatalf("rows=%d: out[%d][%d] = %v, want %v (bitwise)", rows, r, o, got, want)
				}
			}
		}
	}
}

// TestAffineRowsReLUMatchesTwoPass pins the fused variant bit-identical to
// AffineRows followed by ReLURows, across the blocked and remainder paths.
func TestAffineRowsReLUMatchesTwoPass(t *testing.T) {
	g := lcg(9)
	for _, rows := range []int{1, 3, 4, 7, 8, 9, 16, 21} {
		x := randMatrix(&g, rows, 6)
		w := randVec(&g, 5*6)
		b := randVec(&g, 5)
		fused := NewMatrix(rows, 5)
		AffineRowsReLU(x, w, b, fused)
		twoPass := NewMatrix(rows, 5)
		AffineRows(x, w, b, twoPass)
		ReLURows(twoPass)
		for i := range fused.Data {
			if fused.Data[i] != twoPass.Data[i] {
				t.Fatalf("rows=%d: fused ReLU diverges at %d: %v vs %v", rows, i, fused.Data[i], twoPass.Data[i])
			}
		}
	}
}

func TestReLUAndSoftmaxRowsMatchScalar(t *testing.T) {
	g := lcg(2)
	m := randMatrix(&g, 6, 5)
	relu := m.Clone()
	ReLURows(relu)
	soft := m.Clone()
	SoftmaxRows(soft)
	for r := 0; r < m.Rows; r++ {
		wantRelu := CloneVec(m.Row(r))
		for i, v := range wantRelu {
			if v < 0 {
				wantRelu[i] = 0
			}
		}
		wantSoft := CloneVec(m.Row(r))
		SoftmaxInPlace(wantSoft)
		for i := range wantRelu {
			if relu.Row(r)[i] != wantRelu[i] {
				t.Fatal("ReLURows differs from scalar clamp")
			}
			if soft.Row(r)[i] != wantSoft[i] {
				t.Fatal("SoftmaxRows differs from SoftmaxInPlace")
			}
		}
	}
}

func TestSoftmaxCEDelta(t *testing.T) {
	probs := MatrixFromRows([][]float64{{0.2, 0.8}, {0.6, 0.4}})
	delta := NewMatrix(2, 2)
	SoftmaxCEDelta(probs, []int{1, 0}, delta)
	want := CloneVec(probs.Data)
	want[1]-- // label 1 of row 0
	want[2]-- // label 0 of row 1
	for i, v := range want {
		if delta.Data[i] != v {
			t.Fatalf("SoftmaxCEDelta got %v, want %v", delta.Data, want)
		}
	}
}

// TestAccumGradsMatchesPerSample pins bit-identity of the batched gradient
// accumulation against the sample-by-sample reference order, including the
// zero-delta skip.
func TestAccumGradsMatchesPerSample(t *testing.T) {
	g := lcg(3)
	const rows, in, out = 9, 6, 4
	delta := randMatrix(&g, rows, out)
	act := randMatrix(&g, rows, in)
	// Inject exact zeros to exercise the skip path.
	delta.Row(0)[1] = 0
	delta.Row(4)[0] = 0

	wg := randVec(&g, in*out)
	bg := randVec(&g, out)
	wantWG := CloneVec(wg)
	wantBG := CloneVec(bg)

	// Reference: per-sample accumulation exactly as MLP.backward orders it.
	for r := 0; r < rows; r++ {
		for o := 0; o < out; o++ {
			d := delta.Row(r)[o]
			if d == 0 {
				continue
			}
			wantBG[o] += d
			Axpy(d, act.Row(r), wantWG[o*in:(o+1)*in])
		}
	}

	AccumGrads(delta, act, wg, bg)
	for i := range wantWG {
		if wg[i] != wantWG[i] {
			t.Fatalf("weight grad %d: %v != %v (bitwise)", i, wg[i], wantWG[i])
		}
	}
	for i := range wantBG {
		if bg[i] != wantBG[i] {
			t.Fatalf("bias grad %d: %v != %v (bitwise)", i, bg[i], wantBG[i])
		}
	}
}

// TestBackpropReLUDeltaMatchesPerSample pins the batched delta propagation
// (including the ReLU mask) against the scalar reference.
func TestBackpropReLUDeltaMatchesPerSample(t *testing.T) {
	g := lcg(4)
	const rows, in, out = 7, 5, 3
	delta := randMatrix(&g, rows, out)
	delta.Row(2)[1] = 0
	w := randVec(&g, in*out)
	act := randMatrix(&g, rows, in)
	// Exact non-positives exercise the mask.
	act.Row(1)[0] = 0
	act.Row(3)[4] = -0.5

	prev := NewMatrix(rows, in)
	BackpropReLUDelta(delta, w, act, prev)

	for r := 0; r < rows; r++ {
		want := make([]float64, in)
		for o := 0; o < out; o++ {
			d := delta.Row(r)[o]
			if d == 0 {
				continue
			}
			Axpy(d, w[o*in:(o+1)*in], want)
		}
		for i, v := range act.Row(r) {
			if v <= 0 {
				want[i] = 0
			}
		}
		for i := range want {
			if prev.Row(r)[i] != want[i] {
				t.Fatalf("row %d elem %d: %v != %v (bitwise)", r, i, prev.Row(r)[i], want[i])
			}
		}
	}
}

func TestKernelShapePanics(t *testing.T) {
	cases := map[string]func(){
		"affine weights":  func() { AffineRows(NewMatrix(2, 3), make([]float64, 5), make([]float64, 2), NewMatrix(2, 2)) },
		"affine out":      func() { AffineRows(NewMatrix(2, 3), make([]float64, 6), make([]float64, 2), NewMatrix(1, 2)) },
		"gather shape":    func() { GatherRows(NewMatrix(1, 2), NewMatrix(3, 2), []int{0, 1}) },
		"ce delta shape":  func() { SoftmaxCEDelta(NewMatrix(2, 2), []int{0}, NewMatrix(2, 2)) },
		"accum shapes":    func() { AccumGrads(NewMatrix(2, 2), NewMatrix(3, 2), make([]float64, 4), make([]float64, 2)) },
		"backprop shapes": func() { BackpropReLUDelta(NewMatrix(2, 2), make([]float64, 3), NewMatrix(2, 2), NewMatrix(2, 2)) },
		"row range":       func() { NewMatrix(2, 2).RowRange(1, 3) },
		"negative dims":   func() { NewMatrix(-1, 2) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestAffineRowsBlockedEqualsRemainder cross-checks that the 4-row blocked
// path and the scalar remainder path agree bitwise for identical rows.
func TestAffineRowsBlockedEqualsRemainder(t *testing.T) {
	g := lcg(5)
	row := randVec(&g, 6)
	w := randVec(&g, 4*6)
	b := randVec(&g, 4)
	// 5 identical rows: rows 0-3 go through the blocked path, row 4 through
	// the remainder path.
	x := NewMatrix(5, 6)
	for r := 0; r < 5; r++ {
		copy(x.Row(r), row)
	}
	out := NewMatrix(5, 4)
	AffineRows(x, w, b, out)
	for r := 1; r < 5; r++ {
		for o := 0; o < 4; o++ {
			if out.Row(r)[o] != out.Row(0)[o] {
				t.Fatalf("row %d diverges from row 0 at %d: %v vs %v — blocked and remainder paths disagree",
					r, o, out.Row(r)[o], out.Row(0)[o])
			}
		}
	}
	if math.IsNaN(out.Row(0)[0]) {
		t.Fatal("unexpected NaN")
	}
}
