// Package mathx provides the dense float64 kernels used by the neural-network
// substrate and the metrics code: vector arithmetic, softmax/log-sum-exp,
// basic summary statistics, and the batched matrix kernels of the training
// and evaluation hot paths.
//
// Vector functions operate on plain []float64 slices. Batched kernels
// operate on Matrix — contiguous row-major storage with zero-copy row views
// (matrix.go, kernels.go) — which keeps the hot loops free of interface
// dispatch and pointer chasing.
//
// Accumulation order is part of this package's API: every kernel documents
// the exact order in which each output element consumes its contributions,
// and the batched kernels are bit-identical to the scalar loops they
// replace (see the float-determinism contract in kernels.go). Callers
// throughout the repository — worker-count invariance, checkpoint resume,
// the CI metric gate — depend on that, so reordering a reduction is a
// breaking change even when it is algebraically neutral.
package mathx

import (
	"math"
	"sort"
)

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place. It panics if lengths differ.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mathx: Axpy length mismatch")
	}
	y = y[:len(x)] // bounds-check elimination
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// AddTo computes dst += src in place. It panics if lengths differ.
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("mathx: AddTo length mismatch")
	}
	dst = dst[:len(src)] // bounds-check elimination
	for i, v := range src {
		dst[i] += v
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation of x, or 0 if len(x) < 2.
func Std(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// MinMax returns the minimum and maximum of x.
// It panics on an empty slice.
func MinMax(x []float64) (min, max float64) {
	if len(x) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 <= q <= 1) of x using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		panic("mathx: Quantile of empty slice")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := CloneVec(x)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ArgMax returns the index of the largest element, breaking ties by the
// lowest index. It panics on an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("mathx: ArgMax of empty slice")
	}
	best := 0
	for i, v := range x[1:] {
		if v > x[best] {
			best = i + 1
		}
	}
	return best
}

// LogSumExp returns log(sum(exp(x_i))) computed stably.
// It panics on an empty slice.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		panic("mathx: LogSumExp of empty slice")
	}
	_, max := MinMax(x)
	if math.IsInf(max, -1) {
		return math.Inf(-1)
	}
	s := 0.0
	for _, v := range x {
		s += math.Exp(v - max)
	}
	return max + math.Log(s)
}

// SoftmaxInPlace converts logits x to a probability distribution in place,
// using the stable shifted-exponent formulation.
func SoftmaxInPlace(x []float64) {
	if len(x) == 0 {
		return
	}
	_, max := MinMax(x)
	s := 0.0
	for i, v := range x {
		e := math.Exp(v - max)
		x[i] = e
		s += e
	}
	if s == 0 {
		Fill(x, 1/float64(len(x)))
		return
	}
	for i := range x {
		x[i] /= s
	}
}

// Clip bounds v into [lo, hi].
func Clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MeanVecs returns the element-wise mean of the given equal-length vectors.
// It panics if vecs is empty or lengths differ.
//
// Each output element sums its contributions in argument order starting from
// zero and scales by 1/len once at the end — the historical
// AddTo-then-Scale sequence, fused into one pass per element, so results
// are bit-identical to it.
func MeanVecs(vecs ...[]float64) []float64 {
	if len(vecs) == 0 {
		panic("mathx: MeanVecs of no vectors")
	}
	n := len(vecs[0])
	for _, v := range vecs {
		if len(v) != n {
			panic("mathx: MeanVecs length mismatch")
		}
	}
	out := make([]float64, n)
	inv := 1 / float64(len(vecs))
	if len(vecs) == 2 {
		// The model-averaging fast path: every DAG client averages exactly
		// two tip models per round. The sum still starts from zero so even
		// signed-zero inputs reduce exactly like the generic loop.
		a, b := vecs[0], vecs[1][:n]
		for i, av := range a {
			t := 0.0
			t += av
			t += b[i]
			out[i] = t * inv
		}
		return out
	}
	for i := range out {
		t := 0.0
		for _, v := range vecs {
			t += v[i]
		}
		out[i] = t * inv
	}
	return out
}

// L2Dist returns the Euclidean distance between a and b.
// It panics if lengths differ.
func L2Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: L2Dist length mismatch")
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// L2Norm returns the Euclidean norm of x.
func L2Norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
