package tipselect

import (
	"sync"
	"sync/atomic"

	"github.com/specdag/specdag/internal/dag"
)

// BatchEvaluator is an Evaluator that can score several transactions in one
// call. The walk engines prefer this interface when the evaluator provides
// it: at every step of an accuracy walk all children of the current
// transaction are scored together, so a batch-aware evaluator can resolve
// cache hits in one lookup pass and amortize the misses through a single
// batched model-evaluation call (nn.EvaluateMany) instead of per-child
// SetParams+Evaluate round trips.
type BatchEvaluator interface {
	Evaluator
	// AccuracyMany returns the accuracy of each transaction, aligned with
	// txs. It must be equivalent to calling Accuracy per transaction.
	AccuracyMany(txs []*dag.Transaction) []float64
}

// WeightsMemo is an optional evaluator capability the accuracy walk uses:
// memoizing each transaction's selection-weight vector keyed by its child
// count and the walk's weight parameters (alpha, normalization), so
// revisits skip child gathering, accuracy lookups and weight
// exponentiation entirely. Implementations must return weight vectors
// identical to what the compute callback produces.
type WeightsMemo interface {
	StepWeights(id dag.ID, nChildren int, alpha float64, norm Normalization, compute func() []float64) []float64
}

// BatchIntoEvaluator is an optional extension of BatchEvaluator for
// evaluators that can append their results to a caller-provided buffer: the
// walk loop reuses one slice across all steps of a walk instead of
// allocating per step.
type BatchIntoEvaluator interface {
	BatchEvaluator
	// AccuracyManyInto appends the accuracy of each transaction to dst
	// (which may be nil) and returns it, with values identical to
	// AccuracyMany's.
	AccuracyManyInto(dst []float64, txs []*dag.Transaction) []float64
}

// EvalCache is the shared evaluation cache of the walk hot path: one cache
// per (client, scope) holds the accuracies of every transaction the client's
// walkers have scored, so the tip-walk/ReferenceWalks fan-out of a round
// never evaluates the same transaction twice. It replaces MemoEvaluator in
// the engines (which keep MemoEvaluator's semantics available through the
// Scope knob on core.Config).
//
// Unlike MemoEvaluator, an EvalCache is safe for concurrent use: lookups
// take a read lock, misses are inserted under the write lock, and the
// hit/miss counters are atomic. Scoring itself is serialized — at most one
// goroutine runs Score/ScoreBatch at a time, with a cache re-check after
// acquiring the scoring lock — because the engines' scorers close over the
// client's single scratch model, which is not safe for concurrent use. Hits
// never touch the scoring lock, so concurrent walkers only serialize on
// genuinely new transactions.
//
// Accuracies are pure per-transaction values (published parameters are
// immutable, local test data fixed), so a cache may live as long as the test
// split it scores against; Reset drops all entries when the owner shortens
// that lifetime (per-round scope, poisoned test data).
type EvalCache struct {
	// Score evaluates one parameter vector. Required.
	Score func(params []float64) float64
	// ScoreBatch evaluates several parameter vectors at once, aligned with
	// the input. Optional: when nil, misses fall back to Score in a loop.
	ScoreBatch func(params [][]float64) []float64
	// Disable turns caching off: every call scores afresh (the paper
	// prototype's cost profile, used by the Fig. 15 scalability experiment).
	Disable bool

	mu sync.RWMutex
	// The cache is indexed by transaction ID — IDs are dense small ints
	// (the DAG allocates them sequentially), so a flat slice replaces the
	// former map: hits cost one bounds check and two loads instead of a
	// hash probe on the walk hot path. Slot i holds transaction floor+i;
	// floor is 0 until epoch compaction calls Advance, after which frozen
	// IDs below it are permanent misses (walks never score them).
	floor dag.ID
	have  []bool
	vals  []float64
	// stepWeights memoizes, per transaction, the walk-selection weight
	// vector computed for a given child count (see StepWeights).
	stepWeights []weightsEntry
	// scoreMu serializes Score/ScoreBatch calls: the scorers the engines
	// install share one scratch model per client.
	scoreMu sync.Mutex

	hits   atomic.Int64
	misses atomic.Int64
}

var _ BatchIntoEvaluator = (*EvalCache)(nil)

// NewEvalCache returns an EvalCache around the given scorers. scoreBatch may
// be nil.
func NewEvalCache(score func(params []float64) float64, scoreBatch func(params [][]float64) []float64) *EvalCache {
	return &EvalCache{Score: score, ScoreBatch: scoreBatch}
}

// get reads the cached accuracy of id, if present. Callers hold mu.
func (e *EvalCache) get(id dag.ID) (float64, bool) {
	i := int(id - e.floor)
	if i >= 0 && i < len(e.have) && e.have[i] {
		return e.vals[i], true
	}
	return 0, false
}

// put records the accuracy of id. Callers hold mu for writing.
func (e *EvalCache) put(id dag.ID, acc float64) {
	i := int(id - e.floor)
	if i < 0 {
		return // frozen transaction: never cached
	}
	if i >= len(e.have) {
		n := i + 1
		if n < 2*len(e.have) {
			n = 2 * len(e.have)
		}
		have := make([]bool, n)
		copy(have, e.have)
		vals := make([]float64, n)
		copy(vals, e.vals)
		e.have, e.vals = have, vals
	}
	e.have[i] = true
	e.vals[i] = acc
}

// weightsEntry is one memoized selection-weight vector: valid while its
// transaction still has n children and the walk still uses the same weight
// parameters.
type weightsEntry struct {
	n     int
	alpha float64
	norm  Normalization
	w     []float64
}

// StepWeights returns the memoized tip-selection weights of transaction id
// for its current child count and walk parameters, calling compute on a
// miss and caching the result. A transaction's weights are a pure function
// of its ordered child set (append-only, so a given count always denotes
// the same set), the walker's cached child accuracies, and (alpha, norm) —
// all part of the key — so a hit returns exactly what compute would; Reset
// drops this memo together with the accuracies. When Disable is set every
// call computes afresh, preserving the no-caching cost profile. compute
// must return a slice the cache may retain.
func (e *EvalCache) StepWeights(id dag.ID, nChildren int, alpha float64, norm Normalization, compute func() []float64) []float64 {
	if e.Disable {
		return compute()
	}
	e.mu.RLock()
	if i := int(id - e.floor); i >= 0 && i < len(e.stepWeights) {
		if ent := e.stepWeights[i]; ent.w != nil && ent.n == nChildren && ent.alpha == alpha && ent.norm == norm {
			e.mu.RUnlock()
			return ent.w
		}
	}
	e.mu.RUnlock()
	w := compute()
	e.mu.Lock()
	i := int(id - e.floor)
	if i < 0 {
		// Frozen transaction: never memoized.
		e.mu.Unlock()
		return w
	}
	if i >= len(e.stepWeights) {
		n := i + 1
		if n < 2*len(e.stepWeights) {
			n = 2 * len(e.stepWeights)
		}
		grown := make([]weightsEntry, n)
		copy(grown, e.stepWeights)
		e.stepWeights = grown
	}
	e.stepWeights[i] = weightsEntry{n: nChildren, alpha: alpha, norm: norm, w: w}
	e.mu.Unlock()
	return w
}

// Advance rebases the dense index to a new live floor after epoch
// compaction: entries for frozen transactions are dropped and the retained
// suffix moves into freshly allocated live-sized storage, so the cache's
// footprint tracks the live suffix rather than the lifetime maximum.
// Frozen IDs become permanent misses — the compaction guard ensures walks
// never score them.
func (e *EvalCache) Advance(floor dag.ID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if floor <= e.floor {
		return
	}
	shift := int(floor - e.floor)
	if shift >= len(e.have) {
		e.have, e.vals = nil, nil
	} else {
		e.have = append([]bool(nil), e.have[shift:]...)
		e.vals = append([]float64(nil), e.vals[shift:]...)
	}
	if shift >= len(e.stepWeights) {
		e.stepWeights = nil
	} else {
		e.stepWeights = append([]weightsEntry(nil), e.stepWeights[shift:]...)
	}
	e.floor = floor
}

// Hits returns the number of cache hits so far.
func (e *EvalCache) Hits() int { return int(e.hits.Load()) }

// Misses returns the number of scoring calls (cache misses) so far.
func (e *EvalCache) Misses() int { return int(e.misses.Load()) }

// Reset drops all cached accuracies (counters are kept). Call it when the
// data the scores depend on changes (label poisoning) or when the owner
// scopes the cache to a shorter lifetime than the run (per-round caching).
// Without compaction, storage is retained so scoped caches do not
// reallocate every round; once Advance has raised the floor, the high-water
// capacity reflects frozen history, so storage is released and regrows to
// the live-suffix size on the next put.
func (e *EvalCache) Reset() {
	e.mu.Lock()
	if e.floor > 0 {
		e.have, e.vals, e.stepWeights = nil, nil, nil
		e.mu.Unlock()
		return
	}
	for i := range e.have {
		e.have[i] = false
	}
	// The weight memo derives from the accuracies; it must fall with them.
	for i := range e.stepWeights {
		e.stepWeights[i] = weightsEntry{}
	}
	e.mu.Unlock()
}

// Accuracy implements Evaluator.
func (e *EvalCache) Accuracy(tx *dag.Transaction) float64 {
	if e.Disable {
		e.scoreMu.Lock()
		defer e.scoreMu.Unlock()
		e.misses.Add(1)
		return e.Score(tx.Params)
	}
	e.mu.RLock()
	acc, ok := e.get(tx.ID)
	e.mu.RUnlock()
	if ok {
		e.hits.Add(1)
		return acc
	}
	e.scoreMu.Lock()
	defer e.scoreMu.Unlock()
	// Re-check: a concurrent walker may have scored tx while we waited.
	e.mu.RLock()
	acc, ok = e.get(tx.ID)
	e.mu.RUnlock()
	if ok {
		e.hits.Add(1)
		return acc
	}
	e.misses.Add(1)
	acc = e.Score(tx.Params)
	e.mu.Lock()
	e.put(tx.ID, acc)
	e.mu.Unlock()
	return acc
}

// AccuracyMany implements BatchEvaluator: one lookup pass under a single
// read lock, then one batched scoring call for the misses (serialized, with
// a re-check, like Accuracy).
func (e *EvalCache) AccuracyMany(txs []*dag.Transaction) []float64 {
	return e.AccuracyManyInto(nil, txs)
}

// AccuracyManyInto implements BatchIntoEvaluator: AccuracyMany appending
// into a caller-provided buffer.
func (e *EvalCache) AccuracyManyInto(dst []float64, txs []*dag.Transaction) []float64 {
	start := len(dst)
	for range txs {
		dst = append(dst, 0)
	}
	accs := dst[start:]
	e.accuracyMany(accs, txs)
	return dst
}

// accuracyMany fills accs (len(txs) zeroed slots) with the transactions'
// accuracies.
func (e *EvalCache) accuracyMany(accs []float64, txs []*dag.Transaction) {
	if e.Disable {
		e.scoreMu.Lock()
		defer e.scoreMu.Unlock()
		e.misses.Add(int64(len(txs)))
		e.scoreInto(accs, txs, nil)
		return
	}

	// Lookup pass. missIdx collects the positions still unscored.
	missIdx := e.lookup(accs, txs, nil)
	e.hits.Add(int64(len(txs) - len(missIdx)))
	if len(missIdx) == 0 {
		return
	}
	e.scoreMu.Lock()
	defer e.scoreMu.Unlock()
	// Re-check: a concurrent walker may have scored some misses while we
	// waited for the scoring lock.
	stillMissing := e.lookup(accs, txs, missIdx)
	e.hits.Add(int64(len(missIdx) - len(stillMissing)))
	if len(stillMissing) == 0 {
		return
	}
	e.misses.Add(int64(len(stillMissing)))
	e.scoreInto(accs, txs, stillMissing)
	e.mu.Lock()
	for _, i := range stillMissing {
		e.put(txs[i].ID, accs[i])
	}
	e.mu.Unlock()
}

// lookup fills accs from the cache for the given positions (all when idx is
// nil) and returns the positions still missing.
func (e *EvalCache) lookup(accs []float64, txs []*dag.Transaction, idx []int) []int {
	var missing []int
	e.mu.RLock()
	if idx == nil {
		for i, tx := range txs {
			if acc, ok := e.get(tx.ID); ok {
				accs[i] = acc
			} else {
				missing = append(missing, i)
			}
		}
	} else {
		for _, i := range idx {
			if acc, ok := e.get(txs[i].ID); ok {
				accs[i] = acc
			} else {
				missing = append(missing, i)
			}
		}
	}
	e.mu.RUnlock()
	return missing
}

// scoreInto fills accs for the given positions (all positions when idx is
// nil) using the batch scorer when available.
func (e *EvalCache) scoreInto(accs []float64, txs []*dag.Transaction, idx []int) {
	if idx == nil {
		idx = make([]int, len(txs))
		for i := range idx {
			idx[i] = i
		}
	}
	if e.ScoreBatch != nil && len(idx) > 1 {
		params := make([][]float64, len(idx))
		for k, i := range idx {
			params[k] = txs[i].Params
		}
		for k, acc := range e.ScoreBatch(params) {
			accs[idx[k]] = acc
		}
		return
	}
	for _, i := range idx {
		accs[i] = e.Score(txs[i].Params)
	}
}
