package tipselect

import (
	"sync"
	"sync/atomic"

	"github.com/specdag/specdag/internal/dag"
)

// BatchEvaluator is an Evaluator that can score several transactions in one
// call. The walk engines prefer this interface when the evaluator provides
// it: at every step of an accuracy walk all children of the current
// transaction are scored together, so a batch-aware evaluator can resolve
// cache hits in one lookup pass and amortize the misses through a single
// batched model-evaluation call (nn.EvaluateMany) instead of per-child
// SetParams+Evaluate round trips.
type BatchEvaluator interface {
	Evaluator
	// AccuracyMany returns the accuracy of each transaction, aligned with
	// txs. It must be equivalent to calling Accuracy per transaction.
	AccuracyMany(txs []*dag.Transaction) []float64
}

// EvalCache is the shared evaluation cache of the walk hot path: one cache
// per (client, scope) holds the accuracies of every transaction the client's
// walkers have scored, so the tip-walk/ReferenceWalks fan-out of a round
// never evaluates the same transaction twice. It replaces MemoEvaluator in
// the engines (which keep MemoEvaluator's semantics available through the
// Scope knob on core.Config).
//
// Unlike MemoEvaluator, an EvalCache is safe for concurrent use: lookups
// take a read lock, misses are inserted under the write lock, and the
// hit/miss counters are atomic. Scoring itself is serialized — at most one
// goroutine runs Score/ScoreBatch at a time, with a cache re-check after
// acquiring the scoring lock — because the engines' scorers close over the
// client's single scratch model, which is not safe for concurrent use. Hits
// never touch the scoring lock, so concurrent walkers only serialize on
// genuinely new transactions.
//
// Accuracies are pure per-transaction values (published parameters are
// immutable, local test data fixed), so a cache may live as long as the test
// split it scores against; Reset drops all entries when the owner shortens
// that lifetime (per-round scope, poisoned test data).
type EvalCache struct {
	// Score evaluates one parameter vector. Required.
	Score func(params []float64) float64
	// ScoreBatch evaluates several parameter vectors at once, aligned with
	// the input. Optional: when nil, misses fall back to Score in a loop.
	ScoreBatch func(params [][]float64) []float64
	// Disable turns caching off: every call scores afresh (the paper
	// prototype's cost profile, used by the Fig. 15 scalability experiment).
	Disable bool

	mu    sync.RWMutex
	cache map[dag.ID]float64
	// scoreMu serializes Score/ScoreBatch calls: the scorers the engines
	// install share one scratch model per client.
	scoreMu sync.Mutex

	hits   atomic.Int64
	misses atomic.Int64
}

var _ BatchEvaluator = (*EvalCache)(nil)

// NewEvalCache returns an EvalCache around the given scorers. scoreBatch may
// be nil.
func NewEvalCache(score func(params []float64) float64, scoreBatch func(params [][]float64) []float64) *EvalCache {
	return &EvalCache{Score: score, ScoreBatch: scoreBatch, cache: make(map[dag.ID]float64)}
}

// Hits returns the number of cache hits so far.
func (e *EvalCache) Hits() int { return int(e.hits.Load()) }

// Misses returns the number of scoring calls (cache misses) so far.
func (e *EvalCache) Misses() int { return int(e.misses.Load()) }

// Reset drops all cached accuracies (counters are kept). Call it when the
// data the scores depend on changes (label poisoning) or when the owner
// scopes the cache to a shorter lifetime than the run (per-round caching).
func (e *EvalCache) Reset() {
	e.mu.Lock()
	e.cache = make(map[dag.ID]float64)
	e.mu.Unlock()
}

// Accuracy implements Evaluator.
func (e *EvalCache) Accuracy(tx *dag.Transaction) float64 {
	if e.Disable {
		e.scoreMu.Lock()
		defer e.scoreMu.Unlock()
		e.misses.Add(1)
		return e.Score(tx.Params)
	}
	e.mu.RLock()
	acc, ok := e.cache[tx.ID]
	e.mu.RUnlock()
	if ok {
		e.hits.Add(1)
		return acc
	}
	e.scoreMu.Lock()
	defer e.scoreMu.Unlock()
	// Re-check: a concurrent walker may have scored tx while we waited.
	e.mu.RLock()
	acc, ok = e.cache[tx.ID]
	e.mu.RUnlock()
	if ok {
		e.hits.Add(1)
		return acc
	}
	e.misses.Add(1)
	acc = e.Score(tx.Params)
	e.mu.Lock()
	e.cache[tx.ID] = acc
	e.mu.Unlock()
	return acc
}

// AccuracyMany implements BatchEvaluator: one lookup pass under a single
// read lock, then one batched scoring call for the misses (serialized, with
// a re-check, like Accuracy).
func (e *EvalCache) AccuracyMany(txs []*dag.Transaction) []float64 {
	accs := make([]float64, len(txs))
	if e.Disable {
		e.scoreMu.Lock()
		defer e.scoreMu.Unlock()
		e.misses.Add(int64(len(txs)))
		e.scoreInto(accs, txs, nil)
		return accs
	}

	// Lookup pass. missIdx collects the positions still unscored.
	missIdx := e.lookup(accs, txs, nil)
	e.hits.Add(int64(len(txs) - len(missIdx)))
	if len(missIdx) == 0 {
		return accs
	}
	e.scoreMu.Lock()
	defer e.scoreMu.Unlock()
	// Re-check: a concurrent walker may have scored some misses while we
	// waited for the scoring lock.
	stillMissing := e.lookup(accs, txs, missIdx)
	e.hits.Add(int64(len(missIdx) - len(stillMissing)))
	if len(stillMissing) == 0 {
		return accs
	}
	e.misses.Add(int64(len(stillMissing)))
	e.scoreInto(accs, txs, stillMissing)
	e.mu.Lock()
	for _, i := range stillMissing {
		e.cache[txs[i].ID] = accs[i]
	}
	e.mu.Unlock()
	return accs
}

// lookup fills accs from the cache for the given positions (all when idx is
// nil) and returns the positions still missing.
func (e *EvalCache) lookup(accs []float64, txs []*dag.Transaction, idx []int) []int {
	var missing []int
	e.mu.RLock()
	if idx == nil {
		for i, tx := range txs {
			if acc, ok := e.cache[tx.ID]; ok {
				accs[i] = acc
			} else {
				missing = append(missing, i)
			}
		}
	} else {
		for _, i := range idx {
			if acc, ok := e.cache[txs[i].ID]; ok {
				accs[i] = acc
			} else {
				missing = append(missing, i)
			}
		}
	}
	e.mu.RUnlock()
	return missing
}

// scoreInto fills accs for the given positions (all positions when idx is
// nil) using the batch scorer when available.
func (e *EvalCache) scoreInto(accs []float64, txs []*dag.Transaction, idx []int) {
	if idx == nil {
		idx = make([]int, len(txs))
		for i := range idx {
			idx[i] = i
		}
	}
	if e.ScoreBatch != nil && len(idx) > 1 {
		params := make([][]float64, len(idx))
		for k, i := range idx {
			params[k] = txs[i].Params
		}
		for k, acc := range e.ScoreBatch(params) {
			accs[idx[k]] = acc
		}
		return
	}
	for _, i := range idx {
		accs[i] = e.Score(txs[i].Params)
	}
}
