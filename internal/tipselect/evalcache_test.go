package tipselect

import (
	"sync"
	"testing"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/xrand"
)

// cacheTestDAG builds a small diamond-heavy tangle for walk tests.
func cacheTestDAG(t testing.TB, n int, seed int64) *dag.DAG {
	t.Helper()
	rng := xrand.New(seed)
	d := dag.New([]float64{0})
	for i := 1; i < n; i++ {
		p1 := dag.ID(rng.Intn(i))
		p2 := dag.ID(rng.Intn(i))
		if _, err := d.Add(i, i, []dag.ID{p1, p2}, []float64{float64(i)}, dag.Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// scoreByFirstParam is a deterministic stand-in scorer: accuracy is a pure
// function of the (single-element) parameter vector.
func scoreByFirstParam(params []float64) float64 {
	return 1 / (1 + params[0])
}

func TestEvalCacheHitsMissesAndBatch(t *testing.T) {
	d := cacheTestDAG(t, 10, 1)
	var batchCalls, batchSize int
	e := NewEvalCache(scoreByFirstParam, func(ps [][]float64) []float64 {
		batchCalls++
		batchSize += len(ps)
		out := make([]float64, len(ps))
		for i, p := range ps {
			out[i] = scoreByFirstParam(p)
		}
		return out
	})

	txs := []*dag.Transaction{d.MustGet(1), d.MustGet(2), d.MustGet(3)}
	accs := e.AccuracyMany(txs)
	for i, tx := range txs {
		if want := scoreByFirstParam(tx.Params); accs[i] != want {
			t.Fatalf("accs[%d] = %v, want %v", i, accs[i], want)
		}
	}
	if e.Misses() != 3 || e.Hits() != 0 {
		t.Fatalf("after cold batch: hits=%d misses=%d, want 0/3", e.Hits(), e.Misses())
	}
	if batchCalls != 1 || batchSize != 3 {
		t.Fatalf("cold batch used %d calls over %d vectors, want 1 call over 3", batchCalls, batchSize)
	}

	// Second batch: 2 hits, 1 new miss — the miss goes through Score (single
	// element batches skip ScoreBatch).
	txs2 := []*dag.Transaction{d.MustGet(2), d.MustGet(4), d.MustGet(3)}
	accs2 := e.AccuracyMany(txs2)
	if accs2[0] != accs[1] {
		t.Fatal("cache returned a different value for the same transaction")
	}
	if e.Hits() != 2 || e.Misses() != 4 {
		t.Fatalf("after warm batch: hits=%d misses=%d, want 2/4", e.Hits(), e.Misses())
	}
	if batchCalls != 1 {
		t.Fatalf("single-miss batch should not have used ScoreBatch (calls=%d)", batchCalls)
	}

	// Single-transaction path.
	if got := e.Accuracy(d.MustGet(4)); got != accs2[1] {
		t.Fatalf("Accuracy = %v, want cached %v", got, accs2[1])
	}
	if e.Hits() != 3 {
		t.Fatalf("hits = %d, want 3", e.Hits())
	}

	e.Reset()
	e.AccuracyMany(txs)
	if e.Misses() != 4+3 {
		t.Fatalf("Reset did not drop entries: misses=%d, want 7", e.Misses())
	}
}

func TestEvalCacheDisable(t *testing.T) {
	d := cacheTestDAG(t, 5, 2)
	e := NewEvalCache(scoreByFirstParam, nil)
	e.Disable = true
	tx := d.MustGet(1)
	e.Accuracy(tx)
	e.Accuracy(tx)
	e.AccuracyMany([]*dag.Transaction{tx, tx})
	if e.Hits() != 0 || e.Misses() != 4 {
		t.Fatalf("disabled cache: hits=%d misses=%d, want 0/4", e.Hits(), e.Misses())
	}
}

// TestEvalCacheConcurrent hammers one cache from many goroutines; values
// must stay consistent and the race detector must stay quiet.
func TestEvalCacheConcurrent(t *testing.T) {
	d := cacheTestDAG(t, 64, 3)
	e := NewEvalCache(scoreByFirstParam, func(ps [][]float64) []float64 {
		out := make([]float64, len(ps))
		for i, p := range ps {
			out[i] = scoreByFirstParam(p)
		}
		return out
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for i := 0; i < 200; i++ {
				k := 1 + rng.Intn(4)
				txs := make([]*dag.Transaction, k)
				for j := range txs {
					txs[j] = d.MustGet(dag.ID(rng.Intn(64)))
				}
				accs := e.AccuracyMany(txs)
				for j, tx := range txs {
					if want := scoreByFirstParam(tx.Params); accs[j] != want {
						t.Errorf("tx %d: got %v, want %v", tx.ID, accs[j], want)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if e.Hits()+e.Misses() == 0 {
		t.Fatal("counters not advanced")
	}
}

// TestAccuracyWalkSameTipsWithAnyEvaluator: the walk must select identical
// tips with identical stats whether the evaluator is the legacy
// MemoEvaluator, a shared EvalCache, a disabled cache, or a bare
// EvaluatorFunc — caching and batching are invisible to the protocol.
func TestAccuracyWalkSameTipsWithAnyEvaluator(t *testing.T) {
	d := cacheTestDAG(t, 120, 4)
	sel := AccuracyWalk{Alpha: 5}
	run := func(eval Evaluator) (dag.ID, WalkStats) {
		rng := xrand.New(77)
		var total WalkStats
		var last dag.ID
		for i := 0; i < 10; i++ {
			tip, st := sel.SelectTip(d, eval, rng)
			total.Add(st)
			last = tip.ID
		}
		return last, total
	}

	memo := NewMemoEvaluator(scoreByFirstParam)
	cache := NewEvalCache(scoreByFirstParam, func(ps [][]float64) []float64 {
		out := make([]float64, len(ps))
		for i, p := range ps {
			out[i] = scoreByFirstParam(p)
		}
		return out
	})
	disabled := NewEvalCache(scoreByFirstParam, nil)
	disabled.Disable = true

	wantTip, wantStats := run(EvaluatorFunc(func(tx *dag.Transaction) float64 { return scoreByFirstParam(tx.Params) }))
	for name, eval := range map[string]Evaluator{"memo": memo, "cache": cache, "disabled-cache": disabled} {
		tip, stats := run(eval)
		if tip != wantTip || stats != wantStats {
			t.Fatalf("%s: walk diverged: tip %d stats %+v, want tip %d stats %+v", name, tip, stats, wantTip, wantStats)
		}
	}
	if cache.Hits() == 0 {
		t.Fatal("shared cache saw no hits across 10 walks")
	}
}
