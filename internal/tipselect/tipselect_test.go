package tipselect

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/xrand"
)

// accByFirstParam evaluates a transaction by its first parameter value,
// giving tests direct control over "accuracies".
var accByFirstParam = EvaluatorFunc(func(tx *dag.Transaction) float64 {
	if len(tx.Params) == 0 {
		return 0
	}
	return tx.Params[0]
})

func TestWeightsStandard(t *testing.T) {
	accs := []float64{0.9, 0.5}
	w := Weights(accs, 10, NormStandard)
	if w[0] != 1 {
		t.Fatalf("best child must have weight 1, got %v", w[0])
	}
	want := math.Exp((0.5 - 0.9) * 10)
	if math.Abs(w[1]-want) > 1e-12 {
		t.Fatalf("w[1] = %v, want %v", w[1], want)
	}
}

func TestWeightsDynamic(t *testing.T) {
	// Dynamic normalization divides by the spread, so the weights depend
	// only on relative position within [min, max].
	a := Weights([]float64{0.9, 0.5}, 5, NormDynamic)
	b := Weights([]float64{0.52, 0.48}, 5, NormDynamic) // same relative layout
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("dynamic weights should be scale-invariant: %v vs %v", a, b)
		}
	}
	if a[0] != 1 || math.Abs(a[1]-math.Exp(-5)) > 1e-12 {
		t.Fatalf("dynamic weights wrong: %v", a)
	}
}

func TestWeightsDegenerateSpread(t *testing.T) {
	for _, norm := range []Normalization{NormStandard, NormDynamic} {
		w := Weights([]float64{0.5, 0.5, 0.5}, 100, norm)
		for _, v := range w {
			if v != 1 {
				t.Fatalf("equal accuracies must give uniform weight 1, got %v (%v)", w, norm)
			}
		}
	}
}

func TestWeightsAlphaZeroUniform(t *testing.T) {
	w := Weights([]float64{0.1, 0.9, 0.5}, 0, NormStandard)
	for _, v := range w {
		if v != 1 {
			t.Fatalf("alpha=0 must be uniform, got %v", w)
		}
	}
}

func TestWeightsPropertiesQuick(t *testing.T) {
	f := func(raw []float64, alphaRaw float64) bool {
		if len(raw) == 0 {
			return true
		}
		accs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			accs[i] = math.Mod(math.Abs(v), 1)
		}
		alpha := math.Mod(math.Abs(alphaRaw), 100)
		for _, norm := range []Normalization{NormStandard, NormDynamic} {
			w := Weights(accs, alpha, norm)
			maxW := 0.0
			for _, v := range w {
				if v <= 0 || v > 1+1e-12 || math.IsNaN(v) {
					return false
				}
				if v > maxW {
					maxW = v
				}
			}
			if math.Abs(maxW-1) > 1e-12 {
				return false // the best child always has weight exactly 1
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWeightsEmpty(t *testing.T) {
	if w := Weights(nil, 10, NormStandard); w != nil {
		t.Fatalf("Weights(nil) = %v, want nil", w)
	}
}

// buildForkDAG builds a DAG with two long branches behind genesis:
// a "good" branch whose models score high for the evaluator and a "bad"
// branch scoring low. Returns the two branch tip IDs.
func buildForkDAG(t *testing.T, depth int) (*dag.DAG, dag.ID, dag.ID) {
	t.Helper()
	d := dag.New([]float64{0.5})
	good, bad := dag.ID(0), dag.ID(0)
	for i := 0; i < depth; i++ {
		g, err := d.Add(1, i, []dag.ID{good, good}, []float64{0.9}, dag.Meta{})
		if err != nil {
			t.Fatal(err)
		}
		good = g.ID
		b, err := d.Add(2, i, []dag.ID{bad, bad}, []float64{0.1}, dag.Meta{})
		if err != nil {
			t.Fatal(err)
		}
		bad = b.ID
	}
	return d, good, bad
}

func TestAccuracyWalkReachesTip(t *testing.T) {
	d, _, _ := buildForkDAG(t, 10)
	rng := xrand.New(1)
	w := AccuracyWalk{Alpha: 10}
	for i := 0; i < 20; i++ {
		tip, _ := w.SelectTip(d, accByFirstParam, rng)
		if !d.IsTip(tip.ID) {
			t.Fatalf("walk ended at non-tip %d", tip.ID)
		}
	}
}

func TestAccuracyWalkHighAlphaFollowsAccuracy(t *testing.T) {
	d, good, _ := buildForkDAG(t, 8)
	rng := xrand.New(2)
	w := AccuracyWalk{Alpha: 100}
	hits := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		tip, _ := w.SelectTip(d, accByFirstParam, rng)
		if tip.ID == good {
			hits++
		}
	}
	if hits < trials*9/10 {
		t.Fatalf("alpha=100 should almost always reach the good tip, got %d/%d", hits, trials)
	}
}

func TestAccuracyWalkLowAlphaIsRandomish(t *testing.T) {
	d, good, bad := buildForkDAG(t, 8)
	rng := xrand.New(3)
	w := AccuracyWalk{Alpha: 0}
	goodHits, badHits := 0, 0
	const trials = 400
	for i := 0; i < trials; i++ {
		tip, _ := w.SelectTip(d, accByFirstParam, rng)
		switch tip.ID {
		case good:
			goodHits++
		case bad:
			badHits++
		}
	}
	// With alpha=0 the first step from genesis is a fair coin between
	// branches; expect both branches hit a substantial fraction.
	if goodHits < trials/4 || badHits < trials/4 {
		t.Fatalf("alpha=0 walk is too deterministic: good=%d bad=%d", goodHits, badHits)
	}
}

func TestAccuracyWalkStats(t *testing.T) {
	d, _, _ := buildForkDAG(t, 5)
	rng := xrand.New(4)
	w := AccuracyWalk{Alpha: 10}
	_, stats := w.SelectTip(d, accByFirstParam, rng)
	// From genesis: first step sees 2 children, then 1 child per level.
	if stats.Steps != 5 {
		t.Fatalf("steps = %d, want 5", stats.Steps)
	}
	if stats.Evaluations != 6 {
		t.Fatalf("evaluations = %d, want 6", stats.Evaluations)
	}
}

func TestSelectTips(t *testing.T) {
	d, _, _ := buildForkDAG(t, 5)
	rng := xrand.New(5)
	tips, stats := SelectTips(AccuracyWalk{Alpha: 10}, d, accByFirstParam, rng, 2)
	if len(tips) != 2 {
		t.Fatalf("want 2 tips, got %d", len(tips))
	}
	for _, tip := range tips {
		if !d.IsTip(tip.ID) {
			t.Fatal("SelectTips returned a non-tip")
		}
	}
	if stats.Steps == 0 || stats.Evaluations == 0 {
		t.Fatal("stats not accumulated")
	}
}

func TestWeightedWalkPrefersHeavySubtree(t *testing.T) {
	// Genesis has two children; the "heavy" child gains a long approving
	// chain, the "light" child stays a tip.
	d := dag.New(nil)
	heavy, _ := d.Add(1, 0, []dag.ID{0, 0}, nil, dag.Meta{})
	light, _ := d.Add(2, 0, []dag.ID{0, 0}, nil, dag.Meta{})
	cur := heavy.ID
	for i := 0; i < 10; i++ {
		tx, _ := d.Add(1, i+1, []dag.ID{cur, cur}, nil, dag.Meta{})
		cur = tx.ID
	}
	rng := xrand.New(6)
	w := WeightedWalk{Alpha: 2}
	lightHits := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		tip, _ := w.SelectTip(d, nil, rng)
		if tip.ID == light.ID {
			lightHits++
		}
	}
	if lightHits > trials/5 {
		t.Fatalf("weighted walk ignored subtree weight: light tip hit %d/%d", lightHits, trials)
	}
}

func TestURTSUniformOverTips(t *testing.T) {
	d := dag.New(nil)
	var tips []dag.ID
	for i := 0; i < 4; i++ {
		tx, _ := d.Add(i, 0, []dag.ID{0, 0}, nil, dag.Meta{})
		tips = append(tips, tx.ID)
	}
	rng := xrand.New(7)
	counts := map[dag.ID]int{}
	const trials = 4000
	for i := 0; i < trials; i++ {
		tip, stats := URTS{}.SelectTip(d, nil, rng)
		if stats.Evaluations != 0 {
			t.Fatal("URTS must not evaluate models")
		}
		counts[tip.ID]++
	}
	for _, id := range tips {
		frac := float64(counts[id]) / trials
		if math.Abs(frac-0.25) > 0.05 {
			t.Fatalf("URTS not uniform: tip %d frac %.3f", id, frac)
		}
	}
}

func TestUniformWalkTerminates(t *testing.T) {
	rng := xrand.New(8)
	d := dag.New(nil)
	for i := 0; i < 50; i++ {
		tips := d.Tips()
		p1 := tips[rng.Intn(len(tips))]
		p2 := tips[rng.Intn(len(tips))]
		d.Add(i%5, i, []dag.ID{p1, p2}, nil, dag.Meta{})
	}
	for i := 0; i < 50; i++ {
		tip, _ := UniformWalk{}.SelectTip(d, nil, rng)
		if !d.IsTip(tip.ID) {
			t.Fatal("uniform walk ended off-tip")
		}
	}
}

func TestWalkDepthStart(t *testing.T) {
	// Deep chain; starting at depth 2-4 must skip most of the walk.
	d := dag.New(nil)
	cur := dag.ID(0)
	for i := 0; i < 30; i++ {
		tx, _ := d.Add(1, i, []dag.ID{cur, cur}, nil, dag.Meta{})
		cur = tx.ID
	}
	rng := xrand.New(9)
	w := AccuracyWalk{Alpha: 1, DepthMin: 2, DepthMax: 4}
	_, stats := w.SelectTip(d, accByFirstParam, rng)
	if stats.Steps < 2 || stats.Steps > 4 {
		t.Fatalf("depth-banded walk took %d steps, want within [2,4]", stats.Steps)
	}
}

func TestMemoEvaluator(t *testing.T) {
	calls := 0
	m := NewMemoEvaluator(func(params []float64) float64 {
		calls++
		return params[0]
	})
	tx := &dag.Transaction{ID: 5, Params: []float64{0.7}}
	if got := m.Accuracy(tx); got != 0.7 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := m.Accuracy(tx); got != 0.7 {
		t.Fatalf("Accuracy (cached) = %v", got)
	}
	if calls != 1 || m.Hits != 1 || m.Misses != 1 {
		t.Fatalf("memo ineffective: calls=%d hits=%d misses=%d", calls, m.Hits, m.Misses)
	}

	m.Disable = true
	m.Accuracy(tx)
	if calls != 2 {
		t.Fatal("Disable should bypass the memo")
	}
}

func TestSelectorNames(t *testing.T) {
	tests := []struct {
		sel  Selector
		want string
	}{
		{AccuracyWalk{Alpha: 10}, "accuracy-walk(alpha=10,standard)"},
		{AccuracyWalk{Alpha: 0.5, Norm: NormDynamic}, "accuracy-walk(alpha=0.5,dynamic)"},
		{WeightedWalk{Alpha: 2}, "weighted-walk(alpha=2)"},
		{URTS{}, "urts"},
		{UniformWalk{}, "uniform-walk"},
	}
	for _, tt := range tests {
		if got := tt.sel.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestWalkOnGenesisOnlyDAG(t *testing.T) {
	d := dag.New([]float64{0.3})
	rng := xrand.New(10)
	for _, sel := range []Selector{AccuracyWalk{Alpha: 10}, WeightedWalk{Alpha: 1}, URTS{}, UniformWalk{}} {
		tip, stats := sel.SelectTip(d, accByFirstParam, rng)
		if !tip.IsGenesis() {
			t.Fatalf("%s: expected genesis on empty DAG", sel.Name())
		}
		if stats.Steps != 0 {
			t.Fatalf("%s: no steps expected on empty DAG", sel.Name())
		}
	}
}

func BenchmarkAccuracyWalk(b *testing.B) {
	rng := xrand.New(1)
	d := dag.New([]float64{0.5})
	for i := 0; i < 500; i++ {
		tips := d.Tips()
		p1 := tips[rng.Intn(len(tips))]
		p2 := tips[rng.Intn(len(tips))]
		d.Add(i%10, i, []dag.ID{p1, p2}, []float64{rng.Float64()}, dag.Meta{})
	}
	w := AccuracyWalk{Alpha: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.SelectTip(d, accByFirstParam, rng)
	}
}
