package tipselect

import "fmt"

// CompactionGuardBand returns the dag.Compaction guard parameters that let
// epoch compaction freeze history out from under the given selector without
// changing a single walk: the selector's entry band [DepthMin, DepthMax].
//
// GuardDepth (= DepthMax) keeps everything a walk can visit resident: walk
// entries are sampled at depth <= DepthMax and walks only descend toward the
// tips. GuardDepthMin (= DepthMin) additionally lets the guard prove stale
// cones dead: a tip whose whole ancestry sits strictly below the entry band
// can never be reached by any walk again, so it stops blocking freezes.
// Selectors whose walks reach arbitrarily deep history — genesis-anchored
// walks (no depth band) and the cumulative-weight walk, which weighs the
// full DAG — are incompatible with compaction and return an error.
func CompactionGuardBand(s Selector) (depthMin, depthMax int, err error) {
	switch sel := s.(type) {
	case AccuracyWalk:
		if sel.DepthMax < 1 {
			return 0, 0, fmt.Errorf("tipselect: %s starts walks at genesis; compaction requires a depth band (DepthMax >= 1)", sel.Name())
		}
		return sel.DepthMin, sel.DepthMax, nil
	case UniformWalk:
		if sel.DepthMax < 1 {
			return 0, 0, fmt.Errorf("tipselect: %s starts walks at genesis; compaction requires a depth band (DepthMax >= 1)", sel.Name())
		}
		return sel.DepthMin, sel.DepthMax, nil
	case URTS:
		return 0, 0, nil
	case WeightedWalk:
		return 0, 0, fmt.Errorf("tipselect: %s weighs the full DAG; incompatible with compaction", sel.Name())
	default:
		return 0, 0, fmt.Errorf("tipselect: no compaction guard known for selector %s", s.Name())
	}
}

// CompactionGuardDepth returns only the GuardDepth half of
// CompactionGuardBand, for callers that do not use dead-cone exclusion.
func CompactionGuardDepth(s Selector) (int, error) {
	_, max, err := CompactionGuardBand(s)
	return max, err
}
