// Package tipselect implements the tip-selection strategies of the
// specializing DAG (paper §4.2).
//
// Tip selection is a random walk through the DAG in the opposite direction
// of approvals (from the past toward the tips). The paper's contribution is
// the accuracy-aware walk (Algorithm 1): at every step all children of the
// current transaction are evaluated on the walker's local test data and the
// walk moves to a child with probability proportional to
//
//	weight = exp(normalized × α)
//
// where normalized is the child's accuracy normalized per Eq. 1 (standard)
// or Eq. 3 (dynamic). α tunes determinism: high α follows the best child
// almost surely (specialization), low α approaches a uniform walk
// (generalization).
//
// Also provided: the classic cumulative-weight walk of traditional tangles
// (Fig. 3) and uniform random tip selection (the "random tip selector"
// poisoning baseline of §5.3.4).
package tipselect

import (
	"math"
	"strconv"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/xrand"
)

// Graph is the read view of a tangle that tip selection walks over: either
// a full *dag.DAG or a partial-visibility *dag.View (non-ideal transaction
// dissemination). All methods mirror the corresponding dag.DAG methods.
//
// Concurrency: the parallel round engine runs many walkers over one Graph at
// the same time, so a Graph shared between walkers must tolerate concurrent
// method calls as long as no transaction is added during the walks. *dag.DAG
// satisfies this unconditionally (internal RWMutex). *dag.View is owned by a
// single client and must not be shared, but walking it concurrently with
// other clients' walks is safe because its reads of the underlying DAG go
// through the DAG's lock.
type Graph interface {
	Genesis() *dag.Transaction
	MustGet(id dag.ID) *dag.Transaction
	Children(id dag.ID) []dag.ID
	Tips() []dag.ID
	SampleAtDepth(rng *xrand.RNG, minDepth, maxDepth int) *dag.Transaction
	CumulativeWeights() map[dag.ID]int
}

var (
	_ Graph = (*dag.DAG)(nil)
	_ Graph = (*dag.View)(nil)
)

// Evaluator scores a transaction's model on a walker's local data, returning
// an accuracy in [0, 1]. Each client owns one Evaluator over its private
// test split. Implementations may memoize by transaction ID: published
// parameters are immutable and local test data never changes.
type Evaluator interface {
	Accuracy(tx *dag.Transaction) float64
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(tx *dag.Transaction) float64

// Accuracy implements Evaluator.
func (f EvaluatorFunc) Accuracy(tx *dag.Transaction) float64 { return f(tx) }

// MemoEvaluator wraps a parameter-scoring function with a memo keyed by
// transaction ID. Hits and Misses expose cache effectiveness; the paper's
// prototype re-evaluates children on every walk, so the scalability
// experiment (Fig. 15) disables memoization to reproduce its cost profile.
//
// MemoEvaluator is NOT safe for concurrent use (unsynchronized map and
// counters): all of one evaluator's walks must run on a single goroutine,
// and only distinct evaluators may run concurrently. The engines have moved
// to the concurrency-safe, batch-aware EvalCache; MemoEvaluator remains for
// single-goroutine callers that want zero synchronization overhead.
type MemoEvaluator struct {
	Score func(params []float64) float64
	// Disable turns the memo off (every call is a miss).
	Disable bool

	cache  map[dag.ID]float64
	Hits   int
	Misses int
}

// NewMemoEvaluator returns a MemoEvaluator around score.
func NewMemoEvaluator(score func(params []float64) float64) *MemoEvaluator {
	return &MemoEvaluator{Score: score, cache: make(map[dag.ID]float64)}
}

// Accuracy implements Evaluator.
func (m *MemoEvaluator) Accuracy(tx *dag.Transaction) float64 {
	if !m.Disable {
		if acc, ok := m.cache[tx.ID]; ok {
			m.Hits++
			return acc
		}
	}
	m.Misses++
	acc := m.Score(tx.Params)
	if !m.Disable {
		m.cache[tx.ID] = acc
	}
	return acc
}

// AccuracyMany implements BatchEvaluator (a per-transaction loop; the
// batched fast path lives in EvalCache).
func (m *MemoEvaluator) AccuracyMany(txs []*dag.Transaction) []float64 {
	accs := make([]float64, len(txs))
	for i, tx := range txs {
		accs[i] = m.Accuracy(tx)
	}
	return accs
}

// stepScratch is per-walk reusable memory: one SelectTip call allocates at
// most one scratch set and reuses it across every step of the walk instead
// of allocating fresh slices per step.
type stepScratch struct {
	txs     []*dag.Transaction
	accs    []float64
	weights []float64
}

// childAccuracies scores all children of one walk step, preferring the
// batched evaluator path. It accounts one evaluation per child in stats —
// the walk-cost quantity of Fig. 15 counts accuracy lookups, not cache
// misses, so the count is identical whether or not the evaluator caches or
// batches. buf, when non-nil, provides the reusable backing storage; the
// returned slice is valid until the next call with the same buf.
func childAccuracies(d Graph, eval Evaluator, children []dag.ID, stats *WalkStats, buf *stepScratch) []float64 {
	stats.Evaluations += len(children)
	if buf == nil {
		buf = &stepScratch{}
	}
	if be, ok := eval.(BatchEvaluator); ok && len(children) > 1 {
		txs := buf.txs[:0]
		for _, id := range children {
			txs = append(txs, d.MustGet(id))
		}
		buf.txs = txs
		if bi, ok := eval.(BatchIntoEvaluator); ok {
			buf.accs = bi.AccuracyManyInto(buf.accs[:0], txs)
			return buf.accs
		}
		return be.AccuracyMany(txs)
	}
	accs := buf.accs[:0]
	for _, id := range children {
		accs = append(accs, eval.Accuracy(d.MustGet(id)))
	}
	buf.accs = accs
	return accs
}

// WalkStats accounts for the cost of one tip selection, the quantity behind
// the scalability experiment (Fig. 15): the number of steps taken and the
// number of child-model evaluations performed.
type WalkStats struct {
	Steps       int
	Evaluations int
}

// Add accumulates other into s.
func (s *WalkStats) Add(other WalkStats) {
	s.Steps += other.Steps
	s.Evaluations += other.Evaluations
}

// Selector chooses one tip of the DAG for approval. Implementations must be
// stateless with respect to the walk (all per-walk state is local) so a
// single Selector value can be shared across clients — including across the
// concurrently running walkers of the parallel round engine, which share one
// Selector value without synchronization.
type Selector interface {
	// Name identifies the selector in logs and experiment output.
	Name() string
	// SelectTip walks d and returns the chosen tip along with cost stats.
	// eval provides the walker's local accuracy function; rng drives the
	// randomness of the walk.
	SelectTip(d Graph, eval Evaluator, rng *xrand.RNG) (*dag.Transaction, WalkStats)
}

// SelectTips runs n independent walks and returns the chosen tips (which may
// repeat, as in the paper: a client may approve the same transaction twice).
func SelectTips(s Selector, d Graph, eval Evaluator, rng *xrand.RNG, n int) ([]*dag.Transaction, WalkStats) {
	tips := make([]*dag.Transaction, 0, n)
	var total WalkStats
	for i := 0; i < n; i++ {
		tip, st := s.SelectTip(d, eval, rng)
		tips = append(tips, tip)
		total.Add(st)
	}
	return tips, total
}

// Normalization selects how child accuracies are normalized before
// exponentiation.
type Normalization int

const (
	// NormStandard is Eq. 1: normalized = acc − max(accs).
	NormStandard Normalization = iota
	// NormDynamic is Eq. 3: normalized* = (acc − max) / (max − min),
	// which adapts the weighting to the observed accuracy spread.
	NormDynamic
)

// String returns the normalization's name.
func (n Normalization) String() string {
	switch n {
	case NormStandard:
		return "standard"
	case NormDynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// Weights converts child accuracies into positive selection weights per
// Eqs. 1–3. The maximum-accuracy child always receives weight 1. With
// NormDynamic and a degenerate spread (max == min) all weights are 1,
// yielding a uniform choice.
func Weights(accs []float64, alpha float64, norm Normalization) []float64 {
	if len(accs) == 0 {
		return nil
	}
	return WeightsInto(make([]float64, 0, len(accs)), accs, alpha, norm)
}

// WeightsInto appends the selection weights of accs to dst (which may be
// nil) and returns it — the allocation-free variant the walk loop reuses a
// buffer with. Values are identical to Weights'.
func WeightsInto(dst []float64, accs []float64, alpha float64, norm Normalization) []float64 {
	if len(accs) == 0 {
		return dst
	}
	min, max := mathx.MinMax(accs)
	spread := max - min
	for _, a := range accs {
		normalized := a - max
		if norm == NormDynamic {
			if spread > 0 {
				normalized /= spread
			} else {
				normalized = 0
			}
		}
		dst = append(dst, math.Exp(normalized*alpha))
	}
	return dst
}

// AccuracyWalk is the paper's accuracy-biased random walk (Algorithm 1).
type AccuracyWalk struct {
	// Alpha is the specialization parameter α of Eq. 2.
	Alpha float64
	// Norm selects Eq. 1 (standard) or Eq. 3 (dynamic) normalization.
	Norm Normalization
	// DepthMin/DepthMax, when positive, start the walk at a transaction
	// sampled at that depth interval from the tips (§5.3.5 uses 15–25,
	// following Popov). When zero the walk starts at genesis.
	DepthMin int
	DepthMax int
}

var _ Selector = AccuracyWalk{}

// Name implements Selector.
func (w AccuracyWalk) Name() string {
	return "accuracy-walk(alpha=" + trimFloat(w.Alpha) + "," + w.Norm.String() + ")"
}

// SelectTip implements Selector.
func (w AccuracyWalk) SelectTip(d Graph, eval Evaluator, rng *xrand.RNG) (*dag.Transaction, WalkStats) {
	cur := walkStart(d, rng, w.DepthMin, w.DepthMax)
	var stats WalkStats
	var buf stepScratch
	memo, hasMemo := eval.(WeightsMemo)
	for {
		children := d.Children(cur.ID)
		if len(children) == 0 {
			return cur, stats
		}
		stats.Steps++
		var weights []float64
		if hasMemo {
			// A transaction's weights are pure in its child set and the
			// walker's cached accuracies, so repeat visits skip the whole
			// scoring step. The evaluation count stays the per-step child
			// count either way — Fig. 15's walk-cost metric counts accuracy
			// lookups, not what the caches short-circuit.
			stats.Evaluations += len(children)
			weights = memo.StepWeights(cur.ID, len(children), w.Alpha, w.Norm, func() []float64 {
				var scored WalkStats // already accounted above
				accs := childAccuracies(d, eval, children, &scored, &buf)
				return WeightsInto(nil, accs, w.Alpha, w.Norm)
			})
		} else {
			accs := childAccuracies(d, eval, children, &stats, &buf)
			buf.weights = WeightsInto(buf.weights[:0], accs, w.Alpha, w.Norm)
			weights = buf.weights
		}
		next := children[rng.WeightedChoice(weights)]
		cur = d.MustGet(next)
	}
}

// WeightedWalk is the traditional tangle walk of Fig. 3: the bias comes from
// the cumulative weight of each child's subgraph instead of local model
// accuracy. Alpha plays the same determinism role as in the accuracy walk.
type WeightedWalk struct {
	Alpha    float64
	DepthMin int
	DepthMax int
}

var _ Selector = WeightedWalk{}

// Name implements Selector.
func (w WeightedWalk) Name() string { return "weighted-walk(alpha=" + trimFloat(w.Alpha) + ")" }

// SelectTip implements Selector. The evaluator is unused; the walk is a
// function of DAG structure only.
func (w WeightedWalk) SelectTip(d Graph, _ Evaluator, rng *xrand.RNG) (*dag.Transaction, WalkStats) {
	cumWeights := d.CumulativeWeights()
	cur := walkStart(d, rng, w.DepthMin, w.DepthMax)
	var stats WalkStats
	for {
		children := d.Children(cur.ID)
		if len(children) == 0 {
			return cur, stats
		}
		stats.Steps++
		ws := make([]float64, len(children))
		maxW := 0
		for _, id := range children {
			if cw := cumWeights[id]; cw > maxW {
				maxW = cw
			}
		}
		for i, id := range children {
			ws[i] = math.Exp(w.Alpha * float64(cumWeights[id]-maxW))
		}
		next := children[rng.WeightedChoice(ws)]
		cur = d.MustGet(next)
	}
}

// URTS is uniform random tip selection: it ignores the DAG interior and
// picks a tip uniformly at random — the "random tip selector" used as a
// poisoning baseline (§5.3.4) and for attack cross-checking.
type URTS struct{}

var _ Selector = URTS{}

// Name implements Selector.
func (URTS) Name() string { return "urts" }

// SelectTip implements Selector.
func (URTS) SelectTip(d Graph, _ Evaluator, rng *xrand.RNG) (*dag.Transaction, WalkStats) {
	tips := d.Tips()
	return d.MustGet(tips[rng.Intn(len(tips))]), WalkStats{}
}

// UniformWalk is an unbiased random walk (every child equally likely). It is
// the α→0 limit of both biased walks and is used in ablations.
type UniformWalk struct {
	DepthMin int
	DepthMax int
}

var _ Selector = UniformWalk{}

// Name implements Selector.
func (UniformWalk) Name() string { return "uniform-walk" }

// SelectTip implements Selector.
func (w UniformWalk) SelectTip(d Graph, _ Evaluator, rng *xrand.RNG) (*dag.Transaction, WalkStats) {
	cur := walkStart(d, rng, w.DepthMin, w.DepthMax)
	var stats WalkStats
	for {
		children := d.Children(cur.ID)
		if len(children) == 0 {
			return cur, stats
		}
		stats.Steps++
		cur = d.MustGet(children[rng.Intn(len(children))])
	}
}

// walkStart returns the walk entry transaction: sampled at the configured
// depth band, or genesis when the band is unset.
func walkStart(d Graph, rng *xrand.RNG, depthMin, depthMax int) *dag.Transaction {
	if depthMax > 0 {
		return d.SampleAtDepth(rng, depthMin, depthMax)
	}
	return d.Genesis()
}

func trimFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
