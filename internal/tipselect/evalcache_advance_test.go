package tipselect

// Tests for the compaction-facing surface of EvalCache: Advance rebasing the
// dense index to the live floor, frozen IDs becoming permanent misses, and
// Reset releasing high-water storage once a floor is set.

import (
	"testing"

	"github.com/specdag/specdag/internal/dag"
)

func TestEvalCacheAdvanceRebasesAndDropsFrozen(t *testing.T) {
	d := cacheTestDAG(t, 20, 3)
	e := NewEvalCache(scoreByFirstParam, nil)
	for i := 1; i < 20; i++ {
		e.Accuracy(d.MustGet(dag.ID(i)))
	}
	if e.Misses() != 19 {
		t.Fatalf("cold pass: %d misses, want 19", e.Misses())
	}

	e.Advance(10)
	// Live entries survive the rebase: re-reading them is all hits.
	h0 := e.Hits()
	for i := 10; i < 20; i++ {
		e.Accuracy(d.MustGet(dag.ID(i)))
	}
	if got := e.Hits() - h0; got != 10 {
		t.Fatalf("live entries after Advance: %d hits, want 10", got)
	}
	// Frozen IDs are permanent misses — scored afresh and never stored.
	m0 := e.Misses()
	e.Accuracy(d.MustGet(5))
	e.Accuracy(d.MustGet(5))
	if got := e.Misses() - m0; got != 2 {
		t.Fatalf("frozen ID re-scores: %d misses, want 2", got)
	}

	// Advance never goes backwards.
	e.Advance(4)
	h1 := e.Hits()
	e.Accuracy(d.MustGet(15))
	if e.Hits() != h1+1 {
		t.Fatal("backwards Advance disturbed live entries")
	}

	// Advancing past everything empties the cache.
	e.Advance(100)
	m1 := e.Misses()
	e.Accuracy(d.MustGet(15))
	if e.Misses() != m1+1 {
		t.Fatal("Advance past the end should drop every entry")
	}
}

func TestEvalCacheAdvanceRebasesStepWeights(t *testing.T) {
	e := NewEvalCache(scoreByFirstParam, nil)
	computes := 0
	compute := func() []float64 { computes++; return []float64{0.5, 0.5} }

	e.StepWeights(8, 2, 10, NormStandard, compute)
	e.StepWeights(20, 2, 10, NormStandard, compute)
	if computes != 2 {
		t.Fatalf("cold memo: %d computes, want 2", computes)
	}
	e.Advance(10)
	// The surviving entry still hits; the frozen one is gone and — being
	// below the floor — is recomputed on every call without being stored.
	e.StepWeights(20, 2, 10, NormStandard, compute)
	if computes != 2 {
		t.Fatalf("live memo entry lost by Advance: %d computes", computes)
	}
	e.StepWeights(8, 2, 10, NormStandard, compute)
	e.StepWeights(8, 2, 10, NormStandard, compute)
	if computes != 4 {
		t.Fatalf("frozen memo entries must recompute: %d computes, want 4", computes)
	}
}

func TestEvalCacheResetReleasesStorageAfterAdvance(t *testing.T) {
	d := cacheTestDAG(t, 40, 4)
	e := NewEvalCache(scoreByFirstParam, nil)
	for i := 1; i < 40; i++ {
		e.Accuracy(d.MustGet(dag.ID(i)))
	}

	// Without a floor, Reset keeps storage (scoped caches reuse it) but
	// drops every entry.
	e.Reset()
	if cap(e.vals) == 0 {
		t.Fatal("floor-0 Reset should retain storage")
	}
	m0 := e.Misses()
	e.Accuracy(d.MustGet(30))
	if e.Misses() != m0+1 {
		t.Fatal("Reset retained an entry")
	}

	// With a floor, Reset releases the high-water arrays; the cache regrows
	// at live size and stays correct.
	e.Advance(35)
	e.Reset()
	if e.vals != nil || e.have != nil || e.stepWeights != nil {
		t.Fatal("post-Advance Reset should release storage")
	}
	acc := e.Accuracy(d.MustGet(36))
	if want := scoreByFirstParam(d.MustGet(36).Params); acc != want {
		t.Fatalf("post-release accuracy %v, want %v", acc, want)
	}
	if len(e.vals) > 5 {
		t.Fatalf("regrown storage holds %d slots, want live-sized (<=5)", len(e.vals))
	}
	h0 := e.Hits()
	e.Accuracy(d.MustGet(36))
	if e.Hits() != h0+1 {
		t.Fatal("regrown cache does not hit")
	}
}
