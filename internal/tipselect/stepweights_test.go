package tipselect

import (
	"sync"
	"testing"

	"github.com/specdag/specdag/internal/dag"
)

// TestStepWeightsMemo: hits return the cached vector without recomputing, a
// changed child count invalidates, and Reset drops the memo.
func TestStepWeightsMemo(t *testing.T) {
	e := NewEvalCache(scoreByFirstParam, nil)
	computes := 0
	compute := func() []float64 {
		computes++
		return []float64{1, 2}
	}

	w1 := e.StepWeights(5, 2, 10, NormStandard, compute)
	if computes != 1 || len(w1) != 2 {
		t.Fatalf("cold StepWeights: computes=%d, w=%v", computes, w1)
	}
	w2 := e.StepWeights(5, 2, 10, NormStandard, compute)
	if computes != 1 {
		t.Fatalf("memo hit recomputed: computes=%d", computes)
	}
	if &w1[0] != &w2[0] {
		t.Fatal("memo hit should return the cached vector")
	}

	// A new child arriving at tx 5 invalidates the entry.
	if got := e.StepWeights(5, 3, 10, NormStandard, compute); computes != 2 || len(got) != 2 {
		t.Fatalf("child-count change should recompute: computes=%d", computes)
	}

	// Another transaction has its own slot (also exercises slice growth).
	e.StepWeights(1000, 1, 10, NormStandard, compute)
	if computes != 3 {
		t.Fatalf("distinct transaction should compute: computes=%d", computes)
	}
	if e.StepWeights(5, 3, 10, NormStandard, compute); computes != 3 {
		t.Fatalf("growth must keep existing entries: computes=%d", computes)
	}

	e.Reset()
	e.StepWeights(5, 3, 10, NormStandard, compute)
	if computes != 4 {
		t.Fatalf("Reset should drop the weight memo: computes=%d", computes)
	}
}

// TestStepWeightsKeyedByWalkParameters: a cache shared across walks with
// different alpha or normalization must never serve one walk's weights to
// the other.
func TestStepWeightsKeyedByWalkParameters(t *testing.T) {
	e := NewEvalCache(scoreByFirstParam, nil)
	computes := 0
	compute := func() []float64 {
		computes++
		return []float64{float64(computes)}
	}
	a := e.StepWeights(5, 2, 1, NormStandard, compute)
	if b := e.StepWeights(5, 2, 100, NormStandard, compute); computes != 2 || b[0] == a[0] {
		t.Fatalf("alpha change must recompute: computes=%d", computes)
	}
	if c := e.StepWeights(5, 2, 100, NormDynamic, compute); computes != 3 || c[0] != 3 {
		t.Fatalf("normalization change must recompute: computes=%d", computes)
	}
	if d := e.StepWeights(5, 2, 100, NormDynamic, compute); computes != 3 || d[0] != 3 {
		t.Fatalf("same parameters must hit: computes=%d", computes)
	}
}

// TestStepWeightsDisable: the no-caching cost profile recomputes every call.
func TestStepWeightsDisable(t *testing.T) {
	e := NewEvalCache(scoreByFirstParam, nil)
	e.Disable = true
	computes := 0
	for i := 0; i < 3; i++ {
		e.StepWeights(1, 2, 10, NormStandard, func() []float64 { computes++; return []float64{1} })
	}
	if computes != 3 {
		t.Fatalf("Disable must bypass the memo: computes=%d", computes)
	}
}

// TestStepWeightsConcurrent hammers the memo from several goroutines under
// -race; all callers must observe a valid vector.
func TestStepWeightsConcurrent(t *testing.T) {
	e := NewEvalCache(scoreByFirstParam, nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := dag.ID(i % 37)
				w := e.StepWeights(id, 1+i%3, 10, NormStandard, func() []float64 { return []float64{float64(id)} })
				if len(w) != 1 || w[0] != float64(id) {
					t.Errorf("goroutine %d: bad weights %v for id %d", g, w, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestAccuracyManyIntoAppends: the buffer-reusing batch path appends values
// identical to AccuracyMany.
func TestAccuracyManyIntoAppends(t *testing.T) {
	d := cacheTestDAG(t, 8, 3)
	e := NewEvalCache(scoreByFirstParam, nil)
	txs := []*dag.Transaction{d.MustGet(1), d.MustGet(2), d.MustGet(3)}

	dst := append(make([]float64, 0, 8), -1) // pre-existing content survives
	dst = e.AccuracyManyInto(dst, txs)
	if len(dst) != 4 || dst[0] != -1 {
		t.Fatalf("AccuracyManyInto mangled dst: %v", dst)
	}
	want := e.AccuracyMany(txs)
	for i, w := range want {
		if dst[i+1] != w {
			t.Fatalf("AccuracyManyInto[%d] = %v, want %v", i, dst[i+1], w)
		}
	}
}

// TestWeightsIntoMatchesWeights: the appending variant produces identical
// values.
func TestWeightsIntoMatchesWeights(t *testing.T) {
	accs := []float64{0.1, 0.9, 0.4}
	for _, norm := range []Normalization{NormStandard, NormDynamic} {
		want := Weights(accs, 7, norm)
		got := WeightsInto(nil, accs, 7, norm)
		if len(got) != len(want) {
			t.Fatalf("length mismatch: %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("norm %v: WeightsInto[%d] = %v, want %v", norm, i, got[i], want[i])
			}
		}
	}
	if out := WeightsInto(nil, nil, 1, NormStandard); len(out) != 0 {
		t.Fatalf("empty accs should append nothing, got %v", out)
	}
}
