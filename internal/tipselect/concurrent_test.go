package tipselect

import (
	"sync"
	"testing"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/xrand"
)

// buildWideDAG grows a tangle with some width so concurrent walks exercise
// Children/MustGet/Tips on interior nodes, mirroring what the parallel round
// engine does (many walkers, no writers).
func buildWideDAG(t *testing.T) *dag.DAG {
	t.Helper()
	d := dag.New([]float64{0.5})
	rng := xrand.New(7)
	for i := 0; i < 120; i++ {
		tips := d.Tips()
		p1 := tips[rng.Intn(len(tips))]
		p2 := tips[rng.Intn(len(tips))]
		if _, err := d.Add(i%10, i/10, []dag.ID{p1, p2}, []float64{float64(i) / 120}, dag.Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestConcurrentWalksOverSharedDAG is the -race-exercised guarantee behind
// the parallel round engine: any number of walkers — each with its own
// evaluator and RNG, as each simulated client has — may walk one DAG
// concurrently, and every walker's choice is reproducible regardless of
// scheduling.
func TestConcurrentWalksOverSharedDAG(t *testing.T) {
	d := buildWideDAG(t)
	selectors := []Selector{
		AccuracyWalk{Alpha: 10},
		AccuracyWalk{Alpha: 1, Norm: NormDynamic, DepthMin: 2, DepthMax: 5},
		WeightedWalk{Alpha: 0.5},
		UniformWalk{},
		URTS{},
	}
	const walkers = 16

	run := func() []dag.ID {
		picked := make([]dag.ID, walkers)
		var wg sync.WaitGroup
		wg.Add(walkers)
		for w := 0; w < walkers; w++ {
			go func(w int) {
				defer wg.Done()
				eval := EvaluatorFunc(func(tx *dag.Transaction) float64 {
					if len(tx.Params) == 0 {
						return 0
					}
					return tx.Params[0]
				})
				rng := xrand.New(int64(1000 + w))
				tip, _ := selectors[w%len(selectors)].SelectTip(d, eval, rng)
				picked[w] = tip.ID
			}(w)
		}
		wg.Wait()
		return picked
	}

	a, b := run(), run()
	for w := range a {
		if !d.IsTip(a[w]) && d.NumChildren(a[w]) != 0 {
			t.Fatalf("walker %d stopped on non-tip %d", w, a[w])
		}
		if a[w] != b[w] {
			t.Fatalf("walker %d not reproducible under concurrency: %d vs %d", w, a[w], b[w])
		}
	}
}

// TestConcurrentMemoEvaluatorsDistinctClients mirrors the engine's
// ownership rule: distinct clients' MemoEvaluators may run concurrently
// (they share nothing), even though a single MemoEvaluator is not
// goroutine-safe.
func TestConcurrentMemoEvaluatorsDistinctClients(t *testing.T) {
	d := buildWideDAG(t)
	const clients = 8
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			m := NewMemoEvaluator(func(params []float64) float64 {
				if len(params) == 0 {
					return 0
				}
				return params[0]
			})
			rng := xrand.New(int64(c))
			for i := 0; i < 5; i++ {
				AccuracyWalk{Alpha: 10}.SelectTip(d, m, rng)
			}
			if m.Misses == 0 {
				t.Errorf("client %d: memo never consulted", c)
			}
		}(c)
	}
	wg.Wait()
}
