//go:build !race

package serve

// stressFrames is the append count for TestBroadcastStress. The full-size
// loop is microseconds per append; see stress_race_test.go for the
// race-instrumented scale.
const stressFrames = 30_000
