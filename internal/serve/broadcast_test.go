package serve

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/wire"
)

func probeFrame(n int) wire.Frame {
	return wire.Frame{Kind: wire.KindProbe, Probe: &engine.ProbeEvent{Engine: "t", Step: n, Name: "p", Value: float64(n)}}
}

// TestBroadcastOrder pins in-order delivery and clean EOF after Close.
func TestBroadcastOrder(t *testing.T) {
	b := NewBroadcaster(64, 0)
	for i := 0; i < 10; i++ {
		b.Append(probeFrame(i))
	}
	b.Close()
	sub := b.Subscribe(0)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		f, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Index != uint64(i) || f.Probe.Step != i {
			t.Fatalf("frame %d: index %d step %d", i, f.Index, f.Probe.Step)
		}
	}
	if _, err := sub.Next(ctx); err != io.EOF {
		t.Fatalf("after drain: %v, want io.EOF", err)
	}
}

// TestBroadcastGapResync pins the drop semantics: a subscriber behind the
// ring gets a GapError naming the missed range and Resync continues from
// the oldest retained frame.
func TestBroadcastGapResync(t *testing.T) {
	b := NewBroadcaster(4, 0)
	for i := 0; i < 10; i++ {
		b.Append(probeFrame(i))
	}
	sub := b.Subscribe(0)
	_, err := sub.Next(context.Background())
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("want GapError, got %v", err)
	}
	if gap.From != 0 || gap.To != 6 {
		t.Fatalf("gap [%d, %d), want [0, 6)", gap.From, gap.To)
	}
	if got := sub.Resync(); got != 6 {
		t.Fatalf("Resync = %d, want 6", got)
	}
	for i := 6; i < 10; i++ {
		f, err := sub.Next(context.Background())
		if err != nil || f.Index != uint64(i) {
			t.Fatalf("post-resync frame: %v %v", f.Index, err)
		}
	}
}

// TestBroadcastBlocksUntilAppend pins that a caught-up subscriber blocks in
// Next (honoring ctx) rather than spinning or erroring.
func TestBroadcastBlocksUntilAppend(t *testing.T) {
	b := NewBroadcaster(8, 0)
	sub := b.Subscribe(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("empty log: %v, want deadline", err)
	}
	done := make(chan wire.Frame, 1)
	go func() {
		f, err := sub.Next(context.Background())
		if err != nil {
			t.Error(err)
		}
		done <- f
	}()
	b.Append(probeFrame(42))
	f := <-done
	if f.Probe.Step != 42 {
		t.Fatalf("woke with step %d, want 42", f.Probe.Step)
	}
}

// TestBroadcastResumedLogStart pins that a log can start at a nonzero index
// (a daemon re-hosting a run from a checkpoint).
func TestBroadcastResumedLogStart(t *testing.T) {
	b := NewBroadcaster(8, 1000)
	b.Append(probeFrame(0))
	if b.Earliest() != 1000 || b.NextIndex() != 1001 {
		t.Fatalf("resumed log at [%d, %d), want [1000, 1001)", b.Earliest(), b.NextIndex())
	}
	f, err := b.Subscribe(1000).Next(context.Background())
	if err != nil || f.Index != 1000 {
		t.Fatalf("resumed read: %v %v", f.Index, err)
	}
}

// TestAppendAfterClosePanics pins the lifecycle contract.
func TestAppendAfterClosePanics(t *testing.T) {
	b := NewBroadcaster(4, 0)
	b.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Append after Close did not panic")
		}
	}()
	b.Append(probeFrame(0))
}

// TestBroadcastStress is the acceptance-criteria stress test: ≥1000
// subscribers — one artificially stalled forever — while the appender (the
// engine's step loop stand-in) pushes tens of thousands of frames. The
// appender must finish without ever waiting on a subscriber, every reading
// subscriber must observe a strictly ordered (possibly gapped) stream, and
// the stalled subscriber must cost nothing.
func TestBroadcastStress(t *testing.T) {
	const (
		subscribers = 1000
		frames      = stressFrames
		ring        = 1024
	)
	b := NewBroadcaster(ring, 0)

	// The stalled subscriber: subscribes, then never calls Next until the
	// very end. If Append waited on subscribers this test would deadlock.
	stalled := b.Subscribe(0)

	var wg sync.WaitGroup
	var delivered, gaps atomic.Int64
	ctx := context.Background()
	for i := 0; i < subscribers; i++ {
		sub := b.Subscribe(0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := int64(-1)
			for {
				f, err := sub.Next(ctx)
				switch {
				case err == nil:
					if int64(f.Index) <= last {
						t.Errorf("index %d not after %d", f.Index, last)
						return
					}
					last = int64(f.Index)
					delivered.Add(1)
				case errors.As(err, new(*GapError)):
					gaps.Add(1)
					if got := sub.Resync(); int64(got) <= last {
						t.Errorf("resync to %d not after %d", got, last)
						return
					}
				case errors.Is(err, io.EOF):
					return
				default:
					t.Error(err)
					return
				}
			}
		}()
	}

	// The step loop: appends are synchronous and must complete regardless
	// of subscriber progress. A generous wall-clock bound guards against a
	// regression that makes Append wait on subscribers (which would turn
	// this loop from microseconds-per-append into seconds or a deadlock).
	start := time.Now()
	for i := 0; i < frames; i++ {
		b.Append(probeFrame(i))
	}
	appendTime := time.Since(start)
	b.Close()
	wg.Wait()

	if appendTime > 30*time.Second {
		t.Fatalf("append loop took %v — the step loop is blocking on subscribers", appendTime)
	}
	if delivered.Load() == 0 {
		t.Fatal("no frames delivered")
	}
	// The stalled subscriber wakes at the very end and finds a gap — the
	// ring moved on without it, exactly the contract.
	_, err := stalled.Next(ctx)
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("stalled subscriber got %v, want GapError", err)
	}
	if gap.To != frames-ring {
		t.Fatalf("stalled gap ends at %d, want %d", gap.To, frames-ring)
	}
	if stalled.Resync() != frames-ring {
		t.Fatal("stalled subscriber cannot resync")
	}
	t.Logf("%d frames to %d subscribers in %v (%d delivered, %d gaps)",
		frames, subscribers, appendTime, delivered.Load(), gaps.Load())
}
