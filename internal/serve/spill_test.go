package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/specdag/specdag/internal/wire"
)

// TestSpillReplayEquivalence pins snapshot-free overrun recovery: with a
// 1-slot ring — every frame overwritten almost immediately — and a spill
// directory, a subscriber following the run from index 0 still receives a
// stream field-for-field identical to an uninterrupted local run, with no
// Gap frame ever emitted (the server replays the overwritten ranges from the
// spill file).
func TestSpillReplayEquivalence(t *testing.T) {
	spillDir := t.TempDir()
	req := RunRequest{Dataset: "fmnist", Seed: 17, Rounds: 6, ClientsPerRound: 2, Workers: 2, CheckpointEvery: 2, Label: "spill"}
	s := NewServer(Config{Workers: 4, Ring: 1, SpillDir: spillDir})
	want := localReference(t, s, req)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Subscribe immediately, mid-run: with a single-slot ring the cursor is
	// lapped over and over, so the stream is stitched from many replays.
	got := &recorder{}
	gaps := 0
	end, err := Subscribe(context.Background(), ts.URL, id, SubscribeOptions{
		Hooks: got.hooks(),
		OnGap: func(wire.Gap) { gaps++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !end.Completed || end.Steps != req.Rounds {
		t.Fatalf("end frame %+v, want %d completed steps", end, req.Rounds)
	}
	if gaps != 0 {
		t.Fatalf("subscriber saw %d gap frames despite the spill file", gaps)
	}
	mustEqualEvents(t, got, want)

	// The spill file is a complete standalone SDE1 log of the run.
	blob, err := os.ReadFile(filepath.Join(spillDir, "run-1.sde"))
	if err != nil {
		t.Fatal(err)
	}
	frames, err := wire.ReadAll(strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 || frames[0].Kind != wire.KindStart || frames[len(frames)-1].Kind != wire.KindEnd {
		t.Fatalf("spill file holds %d frames, want a Start…End log", len(frames))
	}
	for i, f := range frames {
		if f.Index != uint64(i) {
			t.Fatalf("spill frame %d carries index %d — the file is not the contiguous log", i, f.Index)
		}
	}
}

// TestReplayGapFallsBackWithoutSpill pins that a broadcaster without a spill
// file reports "cannot replay" rather than erroring, and that the HTTP layer
// then still emits the Gap frame (drop semantics preserved).
func TestReplayGapFallsBackWithoutSpill(t *testing.T) {
	b := NewBroadcaster(4, 0)
	replayed, err := b.ReplayGap(0, 2, func(*wire.Frame) error { return nil })
	if replayed || err != nil {
		t.Fatalf("ReplayGap without spill = (%v, %v), want (false, nil)", replayed, err)
	}
}

// TestQuotaTooManyRuns pins the submit caps: a server at MaxRuns answers 429
// with Retry-After until an active run settles; MaxRunsPerTenant isolates
// tenants from each other.
func TestQuotaTooManyRuns(t *testing.T) {
	long := RunRequest{Dataset: "fmnist", Seed: 51, Rounds: 500, ClientsPerRound: 2, Workers: 2}

	t.Run("server-wide", func(t *testing.T) {
		s := NewServer(Config{Workers: 4, MaxRuns: 1})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		id, err := s.Submit(long)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(long); err == nil || !strings.Contains(err.Error(), "quota") {
			t.Fatalf("second submit at MaxRuns=1: got %v, want a quota error", err)
		}
		resp, err := http.Post(ts.URL+"/runs", "application/json",
			strings.NewReader(`{"dataset":"fmnist","seed":52,"rounds":2,"clients_per_round":2,"workers":2}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("submit over quota: %s, want 429", resp.Status)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 response carries no Retry-After")
		}
		// Settling the active run frees the slot.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if err := s.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
		waitState(t, s, id, func(st RunStatus) bool { return st.State == StateCanceled })
		if _, err := s.Submit(RunRequest{Dataset: "fmnist", Seed: 53, Rounds: 2, ClientsPerRound: 2, Workers: 2}); err != nil {
			t.Fatalf("submit after the quota freed: %v", err)
		}
	})

	t.Run("per-tenant", func(t *testing.T) {
		s := NewServer(Config{Workers: 4, MaxRunsPerTenant: 1})
		a := long
		a.Tenant = "alice"
		if _, err := s.Submit(a); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(a); err == nil || !strings.Contains(err.Error(), `"alice"`) {
			t.Fatalf("second submit for alice: got %v, want her quota error", err)
		}
		b := long
		b.Seed = 54
		b.Tenant = "bob"
		if _, err := s.Submit(b); err != nil {
			t.Fatalf("bob blocked by alice's quota: %v", err)
		}
	})
}
