package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/wire"
)

// recorder collects hook events for field-for-field comparison.
type recorder struct {
	mu     sync.Mutex
	rounds []engine.RoundEvent
	pubs   []engine.PublishEvent
	probes []engine.ProbeEvent
}

func (r *recorder) hooks() engine.Hooks {
	return engine.Hooks{
		OnRound: func(ev engine.RoundEvent) {
			r.mu.Lock()
			r.rounds = append(r.rounds, ev)
			r.mu.Unlock()
		},
		OnPublish: func(ev engine.PublishEvent) {
			r.mu.Lock()
			r.pubs = append(r.pubs, ev)
			r.mu.Unlock()
		},
		OnProbe: func(ev engine.ProbeEvent) {
			r.mu.Lock()
			r.probes = append(r.probes, ev)
			r.mu.Unlock()
		},
	}
}

// mustEqualEvents compares two recorded event sequences field-for-field,
// including the interface-typed Detail payloads.
func mustEqualEvents(t *testing.T, got, want *recorder) {
	t.Helper()
	if len(got.rounds) != len(want.rounds) {
		t.Fatalf("got %d round events, want %d", len(got.rounds), len(want.rounds))
	}
	for i := range want.rounds {
		if !reflect.DeepEqual(got.rounds[i], want.rounds[i]) {
			t.Fatalf("round event %d diverged:\n got %+v\nwant %+v", i, got.rounds[i], want.rounds[i])
		}
	}
	if !reflect.DeepEqual(got.pubs, want.pubs) {
		t.Fatalf("publish events diverged:\n got %+v\nwant %+v", got.pubs, want.pubs)
	}
	if !reflect.DeepEqual(got.probes, want.probes) {
		t.Fatalf("probe events diverged: got %+v want %+v", got.probes, want.probes)
	}
}

// localReference runs the same request's engine in-process and records the
// events a local engine.Hooks observer sees.
func localReference(t *testing.T, s *Server, req RunRequest) *recorder {
	t.Helper()
	req.normalize()
	eng, err := s.buildEngine(&req, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	if _, err := engine.Run(context.Background(), eng, engine.WithPool(s.Pool()), engine.WithHooks(rec.hooks())); err != nil {
		t.Fatal(err)
	}
	return rec
}

// waitState polls a run's status until pred holds (the hosted run advances
// on its own goroutine).
func waitState(t *testing.T, s *Server, id int, pred func(RunStatus) bool) RunStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := s.lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		st := r.status()
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %d stuck at %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubscribeEquivalence is the acceptance-criteria round trip: events
// decoded via Subscribe must be field-for-field identical to the events a
// local engine.Hooks observer receives for the same seeded run — including
// across a disconnect/reconnect at an arbitrary event index.
func TestSubscribeEquivalence(t *testing.T) {
	req := RunRequest{Dataset: "fmnist", Seed: 11, Rounds: 6, ClientsPerRound: 2, Workers: 2, CheckpointEvery: 2, Label: "eq"}
	s := NewServer(Config{Workers: 4})
	want := localReference(t, s, req)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// First connection: drop it deliberately after a handful of frames —
	// mid-stream, at no special boundary.
	const cutAfter = 5
	got := &recorder{}
	frames := 0
	var next uint64
	ctx, cancel := context.WithCancel(context.Background())
	_, err = Subscribe(ctx, ts.URL, id, SubscribeOptions{
		Hooks:      got.hooks(),
		Reconnects: -1, // make the disconnect terminal so the test controls the resume
		OnFrame: func(f wire.Frame) {
			frames++
			next = f.Index + 1
			if frames == cutAfter {
				cancel()
			}
		},
	})
	cancel()
	if err == nil {
		t.Fatal("first connection was not cut")
	}

	// Reconnect from the exact next index; the combined replay must equal
	// the local observation with no duplicated or missing events.
	end, err := Subscribe(context.Background(), ts.URL, id, SubscribeOptions{Hooks: got.hooks(), From: next})
	if err != nil {
		t.Fatal(err)
	}
	if !end.Completed || end.Steps != 6 {
		t.Fatalf("end frame %+v, want 6 completed steps", end)
	}
	mustEqualEvents(t, got, want)

	// The Detail payloads must arrive as their concrete engine types.
	if _, ok := got.rounds[0].Detail.(*core.RoundResult); !ok {
		t.Fatalf("remote Detail decoded as %T, want *core.RoundResult", got.rounds[0].Detail)
	}
}

// TestSubscribeEquivalenceAsync runs the same round trip against the
// event-driven engine (simulated-time units, *core.AsyncEvent details).
func TestSubscribeEquivalenceAsync(t *testing.T) {
	req := RunRequest{Dataset: "fmnist", Seed: 5, Async: true, Duration: 5, MinCycle: 1, MaxCycle: 4, Workers: 2, Label: "async-eq"}
	s := NewServer(Config{Workers: 4})
	want := localReference(t, s, req)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got := &recorder{}
	if _, err := Subscribe(context.Background(), ts.URL, id, SubscribeOptions{Hooks: got.hooks()}); err != nil {
		t.Fatal(err)
	}
	mustEqualEvents(t, got, want)
	if len(got.rounds) == 0 {
		t.Fatal("async run produced no events")
	}
	if _, ok := got.rounds[0].Detail.(*core.AsyncEvent); !ok {
		t.Fatalf("remote Detail decoded as %T, want *core.AsyncEvent", got.rounds[0].Detail)
	}
}

// TestPauseResumeEquivalence pins that pause-to-checkpoint + resume leaves
// the served event stream identical to an uninterrupted run's: same events,
// each exactly once, across the pause point.
func TestPauseResumeEquivalence(t *testing.T) {
	req := RunRequest{Dataset: "fmnist", Seed: 23, Rounds: 10, ClientsPerRound: 2, Workers: 2, CheckpointEvery: 3, Label: "pr"}
	s := NewServer(Config{Workers: 4})
	want := localReference(t, s, req)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, func(st RunStatus) bool { return st.Steps >= 2 || st.State != StateRunning })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ckptIndex, err := s.Pause(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, id, func(st RunStatus) bool { return st.State == StatePaused })
	if !st.HasCheckpoint || st.CheckpointIndex != ckptIndex {
		t.Fatalf("paused status %+v does not carry checkpoint index %d", st, ckptIndex)
	}
	if st.Steps >= 10 {
		t.Fatalf("run finished (%d steps) before pause — widen the window", st.Steps)
	}
	if err := s.Resume(id); err != nil {
		t.Fatal(err)
	}

	got := &recorder{}
	end, err := Subscribe(context.Background(), ts.URL, id, SubscribeOptions{Hooks: got.hooks()})
	if err != nil {
		t.Fatal(err)
	}
	if !end.Completed || end.Steps != 10 {
		t.Fatalf("end frame %+v, want 10 completed steps", end)
	}
	mustEqualEvents(t, got, want)
}

// TestHTTPLifecycle walks the HTTP surface end to end: submit, status,
// list, error statuses for bad requests, 416 beyond the log head, cancel.
func TestHTTPLifecycle(t *testing.T) {
	s := NewServer(Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [4096]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [4096]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}

	if resp, _ := post("/runs", "{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %s", resp.Status)
	}
	if resp, body := post("/runs", `{"dataset":"nope","seed":1}`); resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "unknown dataset") {
		t.Fatalf("unknown dataset: %s %s", resp.Status, body)
	}
	if resp, _ := post("/runs", `{"dataset":"fmnist","seed":1,"bogus":true}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %s", resp.Status)
	}
	if resp, _ := get("/runs/7"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %s", resp.Status)
	}

	resp, body := post("/runs", `{"dataset":"fmnist","seed":3,"rounds":2,"clients_per_round":2,"workers":2,"label":"http"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s %s", resp.Status, body)
	}
	var st RunStatus
	if err := json.Unmarshal(body, &st); err != nil || st.ID == 0 {
		t.Fatalf("submit body %q: %v", body, err)
	}

	waitState(t, s, st.ID, func(st RunStatus) bool { return st.State == StateDone })
	resp, body = get("/runs/1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %s", resp.Status)
	}
	if err := json.Unmarshal(body, &st); err != nil || st.State != StateDone || st.Steps != 2 {
		t.Fatalf("final status %s: %v", body, err)
	}

	if resp, _ = get("/runs"); resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %s", resp.Status)
	}
	if resp, _ = get("/runs/1/events?from=99999"); resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("beyond head: %s, want 416", resp.Status)
	}
	if resp, _ = post("/runs/1/pause", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("pause done run: %s, want 409", resp.Status)
	}

	// Cancel a second, longer run and observe the canceled End frame.
	resp, body = post("/runs", `{"dataset":"fmnist","seed":4,"rounds":500,"clients_per_round":2,"workers":2}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit long run: %s %s", resp.Status, body)
	}
	json.Unmarshal(body, &st)
	if resp, _ = post("/runs/2/cancel", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", resp.Status)
	}
	end, err := Subscribe(context.Background(), ts.URL, st.ID, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if end.Completed || end.Err != "canceled" {
		t.Fatalf("canceled end frame %+v", end)
	}
}

// TestGapFrameOnSlowHTTPSubscriber pins the served form of drop semantics:
// a subscriber that asks for long-gone indices gets a Gap frame naming the
// missed range (and the checkpoint to resume from), then the live tail.
func TestGapFrameOnSlowHTTPSubscriber(t *testing.T) {
	// A tiny ring forces the gap without a slow reader: by the time the run
	// finishes, early indices are long overwritten.
	s := NewServer(Config{Workers: 4, Ring: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id, err := s.Submit(RunRequest{Dataset: "fmnist", Seed: 9, Rounds: 6, ClientsPerRound: 2, Workers: 2, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, func(st RunStatus) bool { return st.State == StateDone })

	var gotGap *wire.Gap
	var after []uint64
	_, err = Subscribe(context.Background(), ts.URL, id, SubscribeOptions{
		OnGap: func(g wire.Gap) { gotGap = &g },
		OnFrame: func(f wire.Frame) {
			if f.Kind != wire.KindGap {
				after = append(after, f.Index)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotGap == nil {
		t.Fatal("no gap frame for a subscriber behind the ring")
	}
	if gotGap.From != 0 || gotGap.To == 0 {
		t.Fatalf("gap %+v does not name the missed range", gotGap)
	}
	if gotGap.CheckpointIndex == 0 {
		t.Fatal("gap frame does not point at a checkpoint to resume from")
	}
	if len(after) == 0 || after[0] != gotGap.To {
		t.Fatalf("stream after gap starts at %v, want %d", after, gotGap.To)
	}
}

// TestShutdownRestore pins the daemon lifecycle: Shutdown pauses running
// runs to checkpoints and persists them; a new server over the same
// directory restores them and Resume carries the run to completion.
func TestShutdownRestore(t *testing.T) {
	dir := t.TempDir()
	s1 := NewServer(Config{Workers: 4, CheckpointEvery: 3, Dir: dir})
	req := RunRequest{Dataset: "fmnist", Seed: 31, Rounds: 30, ClientsPerRound: 2, Workers: 2, Label: "restore"}
	id, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, id, func(st RunStatus) bool { return st.Steps >= 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "runs.json")); err != nil {
		t.Fatalf("manifest not persisted: %v", err)
	}

	s2 := NewServer(Config{Workers: 4, CheckpointEvery: 3, Dir: dir})
	n, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d runs, want 1", n)
	}
	st := waitState(t, s2, id, func(st RunStatus) bool { return st.State == StatePaused })
	if !st.HasCheckpoint || st.Label != "restore" {
		t.Fatalf("restored status %+v", st)
	}
	if err := s2.Resume(id); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	end, err := Subscribe(context.Background(), ts.URL, id, SubscribeOptions{From: st.CheckpointIndex})
	if err != nil {
		t.Fatal(err)
	}
	if !end.Completed {
		t.Fatalf("restored run did not complete: %+v", end)
	}
	final := waitState(t, s2, id, func(st RunStatus) bool { return st.State == StateDone })
	if final.Steps != req.Rounds {
		t.Fatalf("restored run finished at %d steps, want %d", final.Steps, req.Rounds)
	}
}

// TestSchedulerMultiplexesRunsByPriority pins the scheduler-backed server:
// concurrent runs with different priorities multiplex onto the shared
// budget a quantum at a time, every run completes, and each run's event
// stream is field-for-field identical to the same engine driven unscheduled
// — priority and interleaving decide only when units execute.
func TestSchedulerMultiplexesRunsByPriority(t *testing.T) {
	s := NewServer(Config{Workers: 2, Quantum: 1})
	reqs := []RunRequest{
		{Dataset: "fmnist", Seed: 81, Rounds: 4, ClientsPerRound: 2, Workers: 2, Priority: 0, Label: "low"},
		{Dataset: "fmnist", Seed: 82, Rounds: 4, ClientsPerRound: 2, Workers: 2, Priority: 5, Label: "high"},
		{Dataset: "fmnist", Seed: 83, Rounds: 4, ClientsPerRound: 2, Workers: 2, Priority: 2, Label: "mid"},
	}
	want := make([]*recorder, len(reqs))
	for i, req := range reqs {
		want[i] = localReference(t, s, req)
	}
	ids := make([]int, len(reqs))
	for i, req := range reqs {
		id, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		st := waitState(t, s, id, func(st RunStatus) bool { return st.State != StateRunning })
		if st.State != StateDone || st.Steps != reqs[i].Rounds {
			t.Fatalf("run %q settled as %+v, want %d done steps", reqs[i].Label, st, reqs[i].Rounds)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i, id := range ids {
		got := &recorder{}
		if _, err := Subscribe(context.Background(), ts.URL, id, SubscribeOptions{Hooks: got.hooks()}); err != nil {
			t.Fatal(err)
		}
		mustEqualEvents(t, got, want[i])
	}
}

// TestSchedulerPauseFreesWorkerForOtherRuns: pausing one hosted run parks
// its job in the scheduler — it stops stepping, while another run submitted
// afterwards runs to completion through the freed capacity; resume then
// carries the parked run to its own natural end.
func TestSchedulerPauseFreesWorkerForOtherRuns(t *testing.T) {
	s := NewServer(Config{Workers: 1, Quantum: 1})
	long := RunRequest{Dataset: "fmnist", Seed: 84, Rounds: 30, ClientsPerRound: 2, Workers: 1, CheckpointEvery: 3, Label: "parked"}
	lid, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, lid, func(st RunStatus) bool { return st.Steps >= 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Pause(ctx, lid); err != nil {
		t.Fatal(err)
	}
	frozen := waitState(t, s, lid, func(st RunStatus) bool { return st.State == StatePaused }).Steps

	quick := RunRequest{Dataset: "fmnist", Seed: 85, Rounds: 3, ClientsPerRound: 2, Workers: 1, Label: "through"}
	qid, err := s.Submit(quick)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, qid, func(st RunStatus) bool { return st.State != StateRunning })
	if st.State != StateDone || st.Steps != quick.Rounds {
		t.Fatalf("run through freed worker settled as %+v", st)
	}
	if got := waitState(t, s, lid, func(RunStatus) bool { return true }); got.State != StatePaused || got.Steps != frozen {
		t.Fatalf("paused run advanced to %+v while parked (was %d steps)", got, frozen)
	}

	if err := s.Resume(lid); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, lid, func(st RunStatus) bool { return st.State != StateRunning })
	if final.State != StateDone || final.Steps != long.Rounds {
		t.Fatalf("resumed run settled as %+v, want %d done steps", final, long.Rounds)
	}
}
