package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/wire"
)

// SubscribeOptions configures Subscribe. The zero value follows a run from
// its first event with default reconnection.
type SubscribeOptions struct {
	// Hooks receives the replayed events exactly as a local engine.Hooks
	// observer would: same types, same order, same field values.
	Hooks engine.Hooks
	// From is the event index to start (or resume) from.
	From uint64
	// OnFrame, when set, receives every raw frame (including Start,
	// Checkpoint, Gap and End) before Hooks dispatch.
	OnFrame func(wire.Frame)
	// OnGap, when set, is told when the server dropped frames this
	// subscriber was too slow for (drop semantics). After the callback the
	// stream continues from the oldest retained frame; a caller that wants
	// snapshot semantics instead cancels ctx, fetches
	// /runs/{id}/checkpoint, and re-subscribes from the checkpoint's index.
	OnGap func(wire.Gap)
	// Reconnects bounds consecutive failed connection attempts (a
	// connection that delivered at least one frame resets the count).
	// 0 selects 3; negative disables reconnection.
	Reconnects int
	// Backoff shapes the wait between reconnect attempts (the zero value
	// selects the capped exponential defaults; see Backoff).
	Backoff Backoff
	// Client is the HTTP client to use (nil selects http.DefaultClient).
	Client *http.Client
}

// Subscribe follows run id's event stream at baseURL (e.g.
// "http://127.0.0.1:9477") and replays it into opt.Hooks, reconnecting and
// resuming from the last delivered index when the connection drops — so a
// remote observer sees the same events as a local one, across any number of
// disconnects. It returns the run's End frame when the stream completes,
// or ctx.Err() / the last transport error when it cannot.
func Subscribe(ctx context.Context, baseURL string, id int, opt SubscribeOptions) (*wire.End, error) {
	client := opt.Client
	if client == nil {
		client = http.DefaultClient
	}
	budget := opt.Reconnects
	if budget == 0 {
		budget = 3
	}
	next := opt.From
	fails := 0
	for {
		end, progressed, err := subscribeOnce(ctx, client, baseURL, id, &next, &opt)
		if end != nil {
			return end, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if progressed {
			fails = 0
		} else {
			fails++
		}
		if budget < 0 || fails > budget {
			return nil, fmt.Errorf("serve: subscription to run %d failed at index %d: %w", id, next, err)
		}
		// Capped exponential backoff with deterministic jitter before
		// redialing; resume from `next`, the first index not yet delivered.
		select {
		case <-time.After(opt.Backoff.Delay(fails)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// subscribeOnce runs one connection, advancing *next past every delivered
// frame. It returns the End payload when the log completed, and whether any
// frame arrived on this connection.
func subscribeOnce(ctx context.Context, client *http.Client, baseURL string, id int, next *uint64, opt *SubscribeOptions) (*wire.End, bool, error) {
	url := fmt.Sprintf("%s/runs/%d/events?from=%s", baseURL, id, strconv.FormatUint(*next, 10))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, false, fmt.Errorf("events endpoint answered %s: %s", resp.Status, body)
	}
	r, err := wire.NewReader(resp.Body)
	if err != nil {
		return nil, false, err
	}
	progressed := false
	for {
		f, err := r.ReadFrame()
		if err != nil {
			// io.EOF without an End frame means the server went away
			// mid-run (or the connection broke): resume from *next.
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, progressed, err
		}
		progressed = true
		*next = f.Index + 1
		if opt.OnFrame != nil {
			opt.OnFrame(*f)
		}
		switch f.Kind {
		case wire.KindRound:
			if opt.Hooks.OnRound != nil {
				opt.Hooks.OnRound(*f.Round)
			}
		case wire.KindPublish:
			if opt.Hooks.OnPublish != nil {
				opt.Hooks.OnPublish(*f.Publish)
			}
		case wire.KindProbe:
			if opt.Hooks.OnProbe != nil {
				opt.Hooks.OnProbe(*f.Probe)
			}
		case wire.KindGap:
			if opt.OnGap != nil {
				opt.OnGap(*f.Gap)
			}
		case wire.KindEnd:
			return f.End, true, nil
		}
		// Honor cancellation between frames even when the remaining stream
		// is already buffered locally (short runs arrive in one read).
		if err := ctx.Err(); err != nil {
			return nil, progressed, err
		}
	}
}
