//go:build race

package serve

// stressFrames under the race detector: every append's notify-channel swap
// is instrumented across a thousand goroutines, which is ~1000x slower than
// the real path. The blocking property is scale-invariant, so a smaller
// log keeps the race run meaningful and fast.
const stressFrames = 2_000
