package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/sim"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the size of the shared worker budget every hosted run's
	// internal fan-out draws from (<= 0 selects the number of CPUs). One
	// budget bounds the whole daemon: N concurrent runs share it instead of
	// each claiming the machine.
	Workers int
	// Ring is the per-run event ring capacity in frames (<= 0 selects
	// DefaultRingSize). A subscriber lagging by more than this observes a
	// gap (see Broadcaster).
	Ring int
	// CheckpointEvery is the default checkpoint cadence in engine units for
	// runs that do not choose their own (<= 0 selects 25).
	CheckpointEvery int
	// Quantum is the scheduler dispatch quantum in engine units: how many
	// units one hosted run executes per dispatch before the scheduler
	// re-picks by priority (<= 0 selects the scheduler default).
	Quantum int
	// Dir, when non-empty, is where Shutdown persists the checkpoints of
	// in-flight runs (and Restore re-registers them on the next boot).
	Dir string
	// SpillDir, when non-empty, is where each run's event log is mirrored to
	// disk (run-<id>.sde, SDE1). A subscriber that falls behind the ring then
	// gets the overwritten frames replayed from the spill file instead of a
	// Gap frame — the stream stays complete regardless of ring size.
	SpillDir string
	// MaxRuns caps concurrently active (running or paused) runs; further
	// submissions answer 429 until one settles. 0 means unlimited.
	MaxRuns int
	// MaxRunsPerTenant caps active runs per RunRequest.Tenant (the empty
	// tenant is a tenant like any other). 0 means unlimited.
	MaxRunsPerTenant int
}

// EventStreamContentType is the Content-Type of the SDE1 events endpoint.
const EventStreamContentType = "application/x-specdag-event-stream"

// CheckpointIndexHeader carries a checkpoint's event-log index on the
// checkpoint download endpoint.
const CheckpointIndexHeader = "X-Specdag-Checkpoint-Index"

// A Server hosts many concurrent experiment runs on one shared worker
// budget and serves their live event streams and lifecycle over HTTP. Use
// NewServer, mount Handler on any http.Server (or use it directly with
// httptest), and stop with Shutdown.
//
// Underneath Submit/Pause/Resume/Cancel sits one engine.Scheduler: every
// hosted run is a scheduler job, multiplexed with the others onto the shared
// budget by priority a quantum of units at a time, instead of each run
// claiming its own goroutine for its whole lifetime.
type Server struct {
	cfg       Config
	pool      *par.Budget
	mux       *http.ServeMux
	sched     *engine.Scheduler
	stopSched context.CancelFunc

	mu     sync.Mutex
	runs   map[int]*run
	nextID int
	wg     sync.WaitGroup // the scheduler supervisor goroutine
}

// Run states reported by the status endpoints.
const (
	StateRunning  = "running"
	StatePaused   = "paused"
	StateDone     = "done"
	StateCanceled = "canceled"
	StateFailed   = "failed"
)

// run is one hosted experiment.
type run struct {
	id  int
	req RunRequest
	b   *Broadcaster

	mu        sync.Mutex
	state     string
	steps     int // completed engine units
	err       string
	started   time.Time
	handle    *engine.Handle // the run's scheduler job; nil for restored runs until resumed
	snap      engine.Snapshotter
	ckpt      []byte // latest checkpoint, nil if none yet
	ckptIndex uint64 // event-log index the checkpoint resumes from
	ckptStep  int    // engine units completed at the checkpoint
}

// NewServer creates a server with its shared worker budget and routes.
func NewServer(cfg Config) *Server {
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 25
	}
	s := &Server{
		cfg:    cfg,
		pool:   par.NewBudget(cfg.Workers),
		mux:    http.NewServeMux(),
		runs:   make(map[int]*run),
		nextID: 1,
	}
	s.sched = engine.NewScheduler(engine.SchedulerConfig{
		Pool:    s.pool,
		Quantum: cfg.Quantum,
	})
	ctx, cancel := context.WithCancel(context.Background())
	s.stopSched = cancel
	s.wg.Add(1)
	// The scheduler's serve loop: one supervisor goroutine multiplexes every
	// hosted run onto the shared budget; everything nondeterministic
	// (subscribers, HTTP) stays on the other side of the broadcaster.
	// Transport-boundary supervisor, audited:
	//speclint:allow budget one long-lived scheduler supervisor per server, joined via s.wg on Shutdown
	go func() {
		defer s.wg.Done()
		s.sched.Serve(ctx)
	}()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("POST /runs", s.handleSubmit)
	s.mux.HandleFunc("GET /runs", s.handleList)
	s.mux.HandleFunc("GET /runs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /runs/{id}/pause", s.handlePause)
	s.mux.HandleFunc("POST /runs/{id}/resume", s.handleResume)
	s.mux.HandleFunc("POST /runs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /runs/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	return s
}

// Handler returns the HTTP surface of the server.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the shared worker budget (tests assert its bounds).
func (s *Server) Pool() *par.Budget { return s.pool }

// RunRequest is the JSON body of POST /runs: the network form of the
// cmd/specdag flag set. The sync round engine runs by default; Async
// selects the event-driven engine, whose horizon is Duration (simulated
// seconds) instead of Rounds.
type RunRequest struct {
	// Dataset names a sim preset: fmnist | fmnist-relaxed | fmnist-bywriter
	// | poets | cifar100 | fedprox.
	Dataset string `json:"dataset"`
	// Preset is the experiment scale: quick (default) | full.
	Preset string `json:"preset,omitempty"`
	// Seed is the root random seed (the run is a pure function of it).
	Seed int64 `json:"seed"`
	// Selector is the tip selector: accuracy (default) | weighted | urts |
	// uniform; Alpha and Norm parameterize it. DepthMin/DepthMax, when
	// positive, band the walk entry depth (required for compaction).
	Selector string  `json:"selector,omitempty"`
	Alpha    float64 `json:"alpha,omitempty"`
	Norm     string  `json:"norm,omitempty"`
	DepthMin int     `json:"depth_min,omitempty"`
	DepthMax int     `json:"depth_max,omitempty"`
	// Rounds and ClientsPerRound override the preset (sync engine only).
	Rounds          int `json:"rounds,omitempty"`
	ClientsPerRound int `json:"clients_per_round,omitempty"`
	// Async switches to the event-driven engine with the given timing
	// parameters (defaults: 120s horizon, [1s, 8s] cycles, 0.5s delay).
	Async    bool    `json:"async,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	MinCycle float64 `json:"min_cycle,omitempty"`
	MaxCycle float64 `json:"max_cycle,omitempty"`
	NetDelay float64 `json:"net_delay,omitempty"`
	// Workers caps this run's internal fan-out; the actual concurrency is
	// additionally bounded by the server's shared budget.
	Workers int `json:"workers,omitempty"`
	// Priority orders this run against the server's other runs on the shared
	// scheduler (larger dispatches first; ties run in submission order).
	// Priority only affects when units execute, never their results.
	Priority int `json:"priority,omitempty"`
	// CheckpointEvery is the checkpoint cadence in engine units (rounds or
	// events; 0 selects the server default).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Label is a free-form run name for listings and event logs.
	Label string `json:"label,omitempty"`
	// Tenant attributes the run for per-tenant submit quotas
	// (Config.MaxRunsPerTenant); empty is a valid tenant.
	Tenant string `json:"tenant,omitempty"`
	// CompactWidth enables epoch-based DAG compaction with the given epoch
	// width (rounds or simulated seconds); CompactLive is the number of
	// trailing epochs kept live (default 2). Requires a depth-banded selector
	// (DepthMax >= 1 for walk selectors). Frozen parameter vectors are
	// released without spilling — requests cannot name server filesystem
	// paths — so the run stays byte-identical while its memory is bounded by
	// the live suffix.
	CompactWidth int `json:"compact_width,omitempty"`
	CompactLive  int `json:"compact_live,omitempty"`
}

// RunStatus is the JSON shape of the status and list endpoints.
type RunStatus struct {
	ID              int    `json:"id"`
	Label           string `json:"label,omitempty"`
	Engine          string `json:"engine"`
	Dataset         string `json:"dataset"`
	Seed            int64  `json:"seed"`
	State           string `json:"state"`
	Steps           int    `json:"steps"`
	Err             string `json:"error,omitempty"`
	NextIndex       uint64 `json:"next_index"`
	EarliestIndex   uint64 `json:"earliest_index"`
	HasCheckpoint   bool   `json:"has_checkpoint"`
	CheckpointIndex uint64 `json:"checkpoint_index"`
	CheckpointStep  int    `json:"checkpoint_step"`
}

// normalize fills request defaults in place.
func (r *RunRequest) normalize() {
	if r.Preset == "" {
		r.Preset = "quick"
	}
	if r.Selector == "" {
		r.Selector = "accuracy"
	}
	if r.Alpha == 0 {
		r.Alpha = 10
	}
	if r.Norm == "" {
		r.Norm = "standard"
	}
	if r.Async {
		if r.Duration == 0 {
			r.Duration = 120
		}
		if r.MinCycle == 0 {
			r.MinCycle = 1
		}
		if r.MaxCycle == 0 {
			r.MaxCycle = 8
		}
		if r.NetDelay == 0 {
			r.NetDelay = 0.5
		}
	}
}

// buildSpec resolves the request's dataset, preset and selector.
func buildSpec(req *RunRequest) (sim.Spec, sim.Preset, tipselect.Selector, error) {
	preset := sim.Quick
	switch req.Preset {
	case "quick":
	case "full":
		preset = sim.Full
	default:
		return sim.Spec{}, preset, nil, fmt.Errorf("unknown preset %q (quick | full)", req.Preset)
	}
	var spec sim.Spec
	switch req.Dataset {
	case "fmnist":
		spec = sim.FMNISTSpec(preset, req.Seed)
	case "fmnist-relaxed":
		spec = sim.RelaxedFMNISTSpec(preset, req.Seed)
	case "fmnist-bywriter":
		spec = sim.ByWriterFMNISTSpec(preset, req.Seed)
	case "poets":
		spec = sim.PoetsSpec(preset, req.Seed)
	case "cifar100":
		spec = sim.CIFARSpec(preset, req.Seed)
	case "fedprox":
		spec = sim.FedProxSpec(preset, req.Seed)
	default:
		return sim.Spec{}, preset, nil, fmt.Errorf("unknown dataset %q (fmnist | fmnist-relaxed | fmnist-bywriter | poets | cifar100 | fedprox)", req.Dataset)
	}
	var norm tipselect.Normalization
	switch req.Norm {
	case "standard":
		norm = tipselect.NormStandard
	case "dynamic":
		norm = tipselect.NormDynamic
	default:
		return sim.Spec{}, preset, nil, fmt.Errorf("unknown normalization %q (standard | dynamic)", req.Norm)
	}
	var sel tipselect.Selector
	switch req.Selector {
	case "accuracy":
		sel = tipselect.AccuracyWalk{Alpha: req.Alpha, Norm: norm, DepthMin: req.DepthMin, DepthMax: req.DepthMax}
	case "weighted":
		sel = tipselect.WeightedWalk{Alpha: req.Alpha, DepthMin: req.DepthMin, DepthMax: req.DepthMax}
	case "urts":
		sel = tipselect.URTS{}
	case "uniform":
		sel = tipselect.UniformWalk{DepthMin: req.DepthMin, DepthMax: req.DepthMax}
	default:
		return sim.Spec{}, preset, nil, fmt.Errorf("unknown selector %q (accuracy | weighted | urts | uniform)", req.Selector)
	}
	return spec, preset, sel, nil
}

// compactionFor maps the request's compaction fields to the engine config.
// SpillDir stays empty by design: requests must not name server filesystem
// paths, and the live suffix plus epoch summaries are what a served run's
// stream and checkpoints expose anyway.
func compactionFor(req *RunRequest) dag.Compaction {
	if req.CompactWidth <= 0 {
		return dag.Compaction{}
	}
	live := req.CompactLive
	if live == 0 {
		live = 2
	}
	return dag.Compaction{Width: req.CompactWidth, Live: live}
}

// buildEngine constructs the run's engine — fresh when ckpt is nil, resumed
// from the checkpoint otherwise. Construction is a pure function of the
// request (and the server's shared budget), which is what makes pause,
// resume and daemon restarts bit-identical to an uninterrupted run.
func (s *Server) buildEngine(req *RunRequest, ckpt []byte) (engine.Engine, error) {
	spec, preset, sel, err := buildSpec(req)
	if err != nil {
		return nil, err
	}
	if req.Async {
		acfg := core.AsyncConfig{
			Duration:     req.Duration,
			MinCycle:     req.MinCycle,
			MaxCycle:     req.MaxCycle,
			NetworkDelay: req.NetDelay,
			Local:        spec.Local,
			Arch:         spec.Arch,
			Selector:     sel,
			Workers:      req.Workers,
			Pool:         s.pool,
			Seed:         req.Seed,
			Compaction:   compactionFor(req),
		}
		if ckpt != nil {
			return core.ResumeAsyncSimulation(spec.Fed, acfg, bytes.NewReader(ckpt))
		}
		return core.NewAsyncSimulation(spec.Fed, acfg)
	}
	cfg := core.Config{
		Rounds:          preset.Rounds(),
		ClientsPerRound: preset.ClientsPerRound(),
		Local:           spec.Local,
		Arch:            spec.Arch,
		Selector:        sel,
		Workers:         req.Workers,
		Pool:            s.pool,
		Seed:            req.Seed,
		Compaction:      compactionFor(req),
	}
	if req.Rounds > 0 {
		cfg.Rounds = req.Rounds
	}
	if req.ClientsPerRound > 0 {
		cfg.ClientsPerRound = req.ClientsPerRound
	}
	if ckpt != nil {
		return core.ResumeSimulation(spec.Fed, cfg, bytes.NewReader(ckpt))
	}
	return core.NewSimulation(spec.Fed, cfg)
}

// runInfo summarizes the request for the event log's start frame.
func runInfo(eng engine.Engine, req *RunRequest) wire.RunInfo {
	cfg := map[string]string{
		"dataset":  req.Dataset,
		"preset":   req.Preset,
		"selector": req.Selector,
		"alpha":    strconv.FormatFloat(req.Alpha, 'g', -1, 64),
		"norm":     req.Norm,
	}
	if req.DepthMax > 0 {
		cfg["depth_min"] = strconv.Itoa(req.DepthMin)
		cfg["depth_max"] = strconv.Itoa(req.DepthMax)
	}
	if c := compactionFor(req); c.Enabled() {
		cfg["compact_width"] = strconv.Itoa(c.Width)
		cfg["compact_live"] = strconv.Itoa(c.Live)
	}
	if req.Async {
		cfg["duration"] = strconv.FormatFloat(req.Duration, 'g', -1, 64)
		cfg["min_cycle"] = strconv.FormatFloat(req.MinCycle, 'g', -1, 64)
		cfg["max_cycle"] = strconv.FormatFloat(req.MaxCycle, 'g', -1, 64)
		cfg["net_delay"] = strconv.FormatFloat(req.NetDelay, 'g', -1, 64)
	} else {
		if req.Rounds > 0 {
			cfg["rounds"] = strconv.Itoa(req.Rounds)
		}
		if req.ClientsPerRound > 0 {
			cfg["clients_per_round"] = strconv.Itoa(req.ClientsPerRound)
		}
	}
	return wire.RunInfo{Engine: eng.Name(), Label: req.Label, Seed: req.Seed, Config: cfg}
}

// Submit registers and starts a run, returning its ID. It is the
// programmatic form of POST /runs (examples and tests drive the server
// in-process through it).
func (s *Server) Submit(req RunRequest) (int, error) {
	req.normalize()
	eng, err := s.buildEngine(&req, nil)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	if err := s.checkQuotaLocked(req.Tenant); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	id := s.nextID
	s.nextID++
	r := &run{
		id:    id,
		req:   req,
		b:     NewBroadcaster(s.cfg.Ring, 0),
		state: StateRunning,
	}
	s.runs[id] = r
	s.mu.Unlock()
	if s.cfg.SpillDir != "" {
		// Spill failure degrades to drop semantics, it never blocks a run.
		if err := os.MkdirAll(s.cfg.SpillDir, 0o755); err == nil {
			r.b.EnableSpill(filepath.Join(s.cfg.SpillDir, fmt.Sprintf("run-%d.sde", id)))
		}
	}
	info := runInfo(eng, &req)
	r.b.Append(wire.Frame{Kind: wire.KindStart, Start: &info})
	if err := s.launch(r, eng); err != nil {
		return 0, err
	}
	return id, nil
}

// checkQuotaLocked enforces Config.MaxRuns and MaxRunsPerTenant against the
// currently active (running or paused) runs. Callers hold s.mu.
func (s *Server) checkQuotaLocked(tenant string) error {
	if s.cfg.MaxRuns <= 0 && s.cfg.MaxRunsPerTenant <= 0 {
		return nil
	}
	total, mine := 0, 0
	for _, r := range s.runs {
		r.mu.Lock()
		active := r.state == StateRunning || r.state == StatePaused
		rt := r.req.Tenant
		r.mu.Unlock()
		if !active {
			continue
		}
		total++
		if rt == tenant {
			mine++
		}
	}
	if s.cfg.MaxRuns > 0 && total >= s.cfg.MaxRuns {
		return &quotaError{scope: "server", limit: s.cfg.MaxRuns}
	}
	if s.cfg.MaxRunsPerTenant > 0 && mine >= s.cfg.MaxRunsPerTenant {
		return &quotaError{scope: "tenant", tenant: tenant, limit: s.cfg.MaxRunsPerTenant}
	}
	return nil
}

// quotaError is a submit rejected by an active-run cap (HTTP 429). It is not
// a lifecycle conflict: the request is well-formed and will succeed once an
// active run settles, which is what Retry-After communicates.
type quotaError struct {
	scope  string // "server" | "tenant"
	tenant string
	limit  int
}

func (e *quotaError) Error() string {
	if e.scope == "tenant" {
		return fmt.Sprintf("serve: tenant %q is at its active-run quota (%d) — retry after a run settles", e.tenant, e.limit)
	}
	return fmt.Sprintf("serve: server is at its active-run quota (%d) — retry after a run settles", e.limit)
}

// launch submits (or resubmits, after restore) the run to the scheduler.
// Callers hold no locks; the run must be in StateRunning.
func (s *Server) launch(r *run, eng engine.Engine) error {
	r.mu.Lock()
	r.snap, _ = eng.(engine.Snapshotter)
	if r.started.IsZero() {
		r.started = time.Now()
	}
	hasSnap := r.snap != nil
	r.mu.Unlock()

	every := r.req.CheckpointEvery
	if every <= 0 {
		every = s.cfg.CheckpointEvery
	}
	opts := []engine.Option{
		engine.WithPool(s.pool),
		engine.WithHooks(r.b.Hooks()),
		engine.WithHooks(engine.Hooks{OnRound: func(engine.RoundEvent) {
			r.mu.Lock()
			r.steps++
			r.mu.Unlock()
		}}),
	}
	if hasSnap {
		opts = append(opts, engine.WithCheckpoints(every, func(step int) (io.WriteCloser, error) {
			return &memCheckpoint{r: r, step: step}, nil
		}))
	}

	h, err := s.sched.Submit(engine.Job{
		Engine:   eng,
		Name:     fmt.Sprintf("run-%d", r.id),
		Priority: r.req.Priority,
		Opts:     opts,
		OnSettle: func(err error) { s.settle(r, err) },
	})
	if err != nil {
		return fmt.Errorf("serve: submitting run %d: %w", r.id, err)
	}
	r.mu.Lock()
	r.handle = h
	r.mu.Unlock()
	return nil
}

// settle records the outcome of a settled scheduler job: completion,
// cancellation, or failure. (Pause does not settle the job — a paused run's
// engine stays parked in the scheduler.) Invoked from the job's OnSettle on
// a scheduler worker; guarded so an outcome recorded by the lifecycle
// methods themselves (e.g. a failed pause checkpoint) is not overwritten.
func (s *Server) settle(r *run, err error) {
	r.mu.Lock()
	switch r.state {
	case StateDone, StateCanceled, StateFailed:
		r.mu.Unlock()
		return
	}
	steps := r.steps
	if err == nil {
		r.state = StateDone
		r.mu.Unlock()
		r.b.Append(wire.Frame{Kind: wire.KindEnd, End: &wire.End{Steps: steps, Completed: true}})
		r.b.Close()
		return
	}
	state, msg := StateFailed, err.Error()
	if errors.Is(err, engine.ErrJobCanceled) {
		state, msg = StateCanceled, "canceled"
	}
	r.state = state
	r.err = msg
	r.mu.Unlock()
	r.b.Append(wire.Frame{Kind: wire.KindEnd, End: &wire.End{Steps: steps, Err: msg}})
	r.b.Close()
}

// checkpointNow snapshots an engine's state into the run record and logs the
// checkpoint frame. Only called while the run's job is parked (paused at a
// unit boundary), so the engine and the event log cannot advance
// concurrently.
func (s *Server) checkpointNow(r *run) error {
	r.mu.Lock()
	snap := r.snap
	step := r.steps
	r.mu.Unlock()
	if snap == nil {
		return fmt.Errorf("engine does not support checkpoints")
	}
	var buf bytes.Buffer
	n, err := snap.WriteCheckpoint(&buf)
	if err != nil {
		return fmt.Errorf("checkpointing run %d: %w", r.id, err)
	}
	r.mu.Lock()
	r.ckpt = buf.Bytes()
	r.ckptIndex = r.b.NextIndex()
	r.ckptStep = step
	r.mu.Unlock()
	r.b.Append(wire.Frame{Kind: wire.KindCheckpoint, Checkpoint: &wire.Checkpoint{Step: step, Size: n}})
	return nil
}

// memCheckpoint collects a periodic checkpoint in memory and installs it on
// Close — called by engine.Run between units, so NextIndex() at Close time
// is exactly the index the checkpoint resumes from.
type memCheckpoint struct {
	r    *run
	step int
	buf  bytes.Buffer
}

func (m *memCheckpoint) Write(p []byte) (int, error) { return m.buf.Write(p) }

func (m *memCheckpoint) Close() error {
	r := m.r
	r.mu.Lock()
	r.ckpt = append([]byte(nil), m.buf.Bytes()...)
	r.ckptIndex = r.b.NextIndex()
	r.ckptStep = m.step
	r.mu.Unlock()
	r.b.Append(wire.Frame{Kind: wire.KindCheckpoint, Checkpoint: &wire.Checkpoint{Step: m.step, Size: int64(m.buf.Len())}})
	return nil
}

// status snapshots a run's externally visible state.
func (r *run) status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunStatus{
		ID:              r.id,
		Label:           r.req.Label,
		Engine:          engineName(&r.req),
		Dataset:         r.req.Dataset,
		Seed:            r.req.Seed,
		State:           r.state,
		Steps:           r.steps,
		Err:             r.err,
		NextIndex:       r.b.NextIndex(),
		EarliestIndex:   r.b.Earliest(),
		HasCheckpoint:   r.ckpt != nil,
		CheckpointIndex: r.ckptIndex,
		CheckpointStep:  r.ckptStep,
	}
}

func engineName(req *RunRequest) string {
	if req.Async {
		return "specdag-async"
	}
	return "specdag"
}

// Pause parks the run's scheduler job at its next unit boundary and
// checkpoints it; the programmatic form of POST /runs/{id}/pause. It blocks
// until the engine has parked (bounded by ctx) and returns the checkpoint's
// event index. The paused engine stays resident in the scheduler, so Resume
// continues it in place.
func (s *Server) Pause(ctx context.Context, id int) (uint64, error) {
	r, err := s.lookup(id)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	if r.state != StateRunning {
		defer r.mu.Unlock()
		return 0, &stateError{id: id, state: r.state, want: "pause"}
	}
	if r.snap == nil {
		r.mu.Unlock()
		return 0, &stateError{id: id, state: "unsupported", want: "pause"}
	}
	h := r.handle
	r.mu.Unlock()
	if err := h.Pause(ctx); err != nil {
		if errors.Is(err, engine.ErrJobSettled) {
			r.mu.Lock()
			defer r.mu.Unlock()
			return 0, fmt.Errorf("serve: run %d settled as %s instead of pausing: %s", id, r.state, r.err)
		}
		return 0, err
	}
	// The job is parked at a unit boundary with its engine state intact;
	// snapshot it as the resume point. The log stays open — subscribers
	// block until resume (or cancel).
	if cerr := s.checkpointNow(r); cerr != nil {
		r.mu.Lock()
		r.state = StateFailed
		r.err = cerr.Error()
		steps := r.steps
		r.mu.Unlock()
		r.b.Append(wire.Frame{Kind: wire.KindEnd, End: &wire.End{Steps: steps, Err: cerr.Error()}})
		r.b.Close()
		return 0, cerr
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = StatePaused
	return r.ckptIndex, nil
}

// Resume restarts a paused run; the programmatic form of
// POST /runs/{id}/resume. A live job resumes in place in the scheduler; a
// restored run (daemon restart) is rebuilt from its checkpoint and
// resubmitted. Either way the resumed run's remaining event stream is
// bit-identical to an uninterrupted run's.
func (s *Server) Resume(id int) error {
	r, err := s.lookup(id)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.state != StatePaused {
		defer r.mu.Unlock()
		return &stateError{id: id, state: r.state, want: "resume"}
	}
	h, ckpt := r.handle, r.ckpt
	r.state = StateRunning
	r.mu.Unlock()
	if h != nil {
		if err := h.Resume(); err != nil {
			r.mu.Lock()
			defer r.mu.Unlock()
			return &stateError{id: id, state: r.state, want: "resume"}
		}
		return nil
	}
	eng, err := s.buildEngine(&r.req, ckpt)
	if err != nil {
		r.mu.Lock()
		r.state = StateFailed
		r.err = err.Error()
		r.mu.Unlock()
		r.b.Append(wire.Frame{Kind: wire.KindEnd, End: &wire.End{Steps: r.steps, Err: err.Error()}})
		r.b.Close()
		return fmt.Errorf("serve: resuming run %d: %w", id, err)
	}
	return s.launch(r, eng)
}

// Cancel stops a run for good; the programmatic form of
// POST /runs/{id}/cancel. Canceling a paused run closes its event log.
func (s *Server) Cancel(ctx context.Context, id int) error {
	r, err := s.lookup(id)
	if err != nil {
		return err
	}
	r.mu.Lock()
	switch r.state {
	case StateRunning, StatePaused:
		h := r.handle
		if h == nil {
			// A restored paused run with no live job: terminal bookkeeping
			// happens here.
			r.state = StateCanceled
			r.err = "canceled"
			steps := r.steps
			r.mu.Unlock()
			r.b.Append(wire.Frame{Kind: wire.KindEnd, End: &wire.End{Steps: steps, Err: "canceled"}})
			r.b.Close()
			return nil
		}
		r.mu.Unlock()
		// Canceling the job settles it; the OnSettle callback records the
		// outcome and closes the log before Cancel returns.
		if err := h.Cancel(ctx); err != nil {
			if errors.Is(err, engine.ErrJobSettled) {
				r.mu.Lock()
				defer r.mu.Unlock()
				return &stateError{id: id, state: r.state, want: "cancel"}
			}
			return err
		}
		return nil
	default:
		defer r.mu.Unlock()
		return &stateError{id: id, state: r.state, want: "cancel"}
	}
}

// stateError is a lifecycle conflict (HTTP 409).
type stateError struct {
	id    int
	state string
	want  string
}

func (e *stateError) Error() string {
	if e.state == "unsupported" {
		return fmt.Sprintf("serve: run %d's engine does not support checkpoints", e.id)
	}
	return fmt.Sprintf("serve: cannot %s run %d in state %s", e.want, e.id, e.state)
}

// notFoundError is an unknown run ID (HTTP 404).
type notFoundError struct{ id int }

func (e *notFoundError) Error() string { return fmt.Sprintf("serve: no run %d", e.id) }

func (s *Server) lookup(id int) (*run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return nil, &notFoundError{id: id}
	}
	return r, nil
}

// Shutdown stops the server's runs: running ones are paused to a
// checkpoint (engines without checkpoint support are canceled), and — when
// Config.Dir is set — the checkpoints and a manifest are persisted so
// Restore can re-host everything after a restart. HTTP listeners are the
// caller's to close (the daemon shuts its http.Server down around this).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].id < runs[j].id })

	var firstErr error
	for _, r := range runs {
		r.mu.Lock()
		state, hasSnap := r.state, r.snap != nil
		r.mu.Unlock()
		if state != StateRunning {
			continue
		}
		var err error
		if hasSnap {
			_, err = s.Pause(ctx, r.id)
		} else {
			err = s.Cancel(ctx, r.id)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Every run is now parked or settled; stop the scheduler's serve loop.
	s.stopSched()
	done := make(chan struct{})
	// Joiner for the scheduler supervisor; WaitGroup has no context-aware wait.
	//speclint:allow budget short-lived shutdown joiner, exits when the supervisor drains
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.cfg.Dir != "" {
		if err := s.persist(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// manifest is the on-disk index of persisted runs (Config.Dir).
type manifest struct {
	NextID int             `json:"next_id"`
	Runs   []manifestEntry `json:"runs"`
}

type manifestEntry struct {
	ID              int        `json:"id"`
	Request         RunRequest `json:"request"`
	State           string     `json:"state"`
	Steps           int        `json:"steps"`
	CheckpointFile  string     `json:"checkpoint_file,omitempty"`
	CheckpointIndex uint64     `json:"checkpoint_index"`
	CheckpointStep  int        `json:"checkpoint_step"`
}

// persist writes every paused run's checkpoint and the manifest to Dir.
func (s *Server) persist() error {
	s.mu.Lock()
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	nextID := s.nextID
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].id < runs[j].id })

	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("serve: creating checkpoint dir: %w", err)
	}
	m := manifest{NextID: nextID}
	for _, r := range runs {
		r.mu.Lock()
		e := manifestEntry{
			ID:              r.id,
			Request:         r.req,
			State:           r.state,
			Steps:           r.steps,
			CheckpointIndex: r.ckptIndex,
			CheckpointStep:  r.ckptStep,
		}
		ckpt := r.ckpt
		r.mu.Unlock()
		if e.State == StatePaused && ckpt != nil {
			ext := ".sdc"
			if e.Request.Async {
				ext = ".sda"
			}
			e.CheckpointFile = fmt.Sprintf("run-%d%s", e.ID, ext)
			if err := os.WriteFile(filepath.Join(s.cfg.Dir, e.CheckpointFile), ckpt, 0o644); err != nil {
				return fmt.Errorf("serve: persisting run %d: %w", e.ID, err)
			}
		}
		m.Runs = append(m.Runs, e)
	}
	blob, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.cfg.Dir, "runs.json"), blob, 0o644)
}

// Restore re-registers the runs a previous daemon persisted on shutdown.
// Paused runs come back paused, with their checkpoints loaded and their
// event logs restarting at the checkpoint index (earlier frames are gone
// with the old process — subscribers resume from the checkpoint, which is
// the snapshot-semantics recovery the format is built around). Terminal
// runs come back as closed status records. Missing manifest is not an
// error: a fresh Dir restores nothing.
func (s *Server) Restore() (int, error) {
	if s.cfg.Dir == "" {
		return 0, nil
	}
	blob, err := os.ReadFile(filepath.Join(s.cfg.Dir, "runs.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("serve: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return 0, fmt.Errorf("serve: decoding manifest: %w", err)
	}
	restored := 0
	for _, e := range m.Runs {
		e.Request.normalize()
		r := &run{
			id:       e.ID,
			req:      e.Request,
			state:    e.State,
			steps:    e.Steps,
			ckptStep: e.CheckpointStep,
		}
		switch e.State {
		case StatePaused:
			if e.CheckpointFile == "" {
				continue
			}
			ckpt, err := os.ReadFile(filepath.Join(s.cfg.Dir, e.CheckpointFile))
			if err != nil {
				return restored, fmt.Errorf("serve: reading run %d checkpoint: %w", e.ID, err)
			}
			r.ckpt = ckpt
			r.ckptIndex = e.CheckpointIndex
			r.b = NewBroadcaster(s.cfg.Ring, e.CheckpointIndex)
			if s.cfg.SpillDir != "" {
				// The old process's spill is stale (its frames predate the
				// checkpoint); the reborn log spills to a fresh file.
				if err := os.MkdirAll(s.cfg.SpillDir, 0o755); err == nil {
					r.b.EnableSpill(filepath.Join(s.cfg.SpillDir, fmt.Sprintf("run-%d.sde", e.ID)))
				}
			}
			// A fresh start frame anchors the reborn log at the resume
			// index, so late subscribers still learn the run identity.
			eng, err := s.buildEngine(&e.Request, nil)
			if err != nil {
				return restored, fmt.Errorf("serve: restoring run %d: %w", e.ID, err)
			}
			info := runInfo(eng, &e.Request)
			r.b.Append(wire.Frame{Kind: wire.KindStart, Start: &info})
			r.ckptIndex = r.b.NextIndex()
		case StateRunning:
			// The old process died before pausing it; nothing to restore.
			continue
		default:
			r.b = NewBroadcaster(s.cfg.Ring, 0)
			r.err = "terminated before daemon restart"
			r.b.Append(wire.Frame{Kind: wire.KindEnd, End: &wire.End{Steps: e.Steps, Err: r.err}})
			r.b.Close()
		}
		s.mu.Lock()
		s.runs[r.id] = r
		if r.id >= s.nextID {
			s.nextID = r.id + 1
		}
		if m.NextID > s.nextID {
			s.nextID = m.NextID
		}
		s.mu.Unlock()
		restored++
	}
	return restored, nil
}
