package serve

import (
	"context"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffDelay pins the backoff shape: deterministic per (Seed, attempt),
// equal-jittered within [d/2, d) for d = min(Base<<(attempt-1), Max), and
// capped at Max for large attempts (including ones that would overflow a
// naive shift).
func TestBackoffDelay(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second, Seed: 7}
	for attempt, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		7: 5 * time.Second, // 100ms<<6 = 6.4s, capped
		// Attempt counts far beyond the cap, where Base<<(n-1) overflows.
		64:  5 * time.Second,
		500: 5 * time.Second,
	} {
		d := b.Delay(attempt)
		if d < want/2 || d >= want {
			t.Errorf("Delay(%d) = %v, want in [%v, %v)", attempt, d, want/2, want)
		}
		if again := b.Delay(attempt); again != d {
			t.Errorf("Delay(%d) not deterministic: %v then %v", attempt, d, again)
		}
	}
	// The zero value works with the documented defaults.
	var zero Backoff
	if d := zero.Delay(1); d < DefaultBackoffBase/2 || d >= DefaultBackoffBase {
		t.Errorf("zero-value Delay(1) = %v, want in [%v, %v)", d, DefaultBackoffBase/2, DefaultBackoffBase)
	}
	if d := zero.Delay(0); d < DefaultBackoffBase/2 || d >= DefaultBackoffBase {
		t.Errorf("Delay(0) = %v, want the attempt clamped to 1", d)
	}
	// Different seeds de-synchronize: at least one of the first attempts
	// must differ (the point of the jitter).
	other := Backoff{Base: b.Base, Max: b.Max, Seed: 8}
	same := true
	for attempt := 1; attempt <= 4; attempt++ {
		if b.Delay(attempt) != other.Delay(attempt) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical first four delays — jitter not keyed on Seed")
	}
}

// TestSubscribeReconnectBudget pins the retry loop against a refusing
// address: with Reconnects=2 the client dials exactly three times (the
// initial attempt plus two reconnects), backing off between attempts, and
// then reports the transport error.
func TestSubscribeReconnectBudget(t *testing.T) {
	// Reserve an address and close the listener so every dial is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var dials atomic.Int32
	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, address string) (net.Conn, error) {
			dials.Add(1)
			return (&net.Dialer{}).DialContext(ctx, network, address)
		},
	}}
	_, err = Subscribe(context.Background(), "http://"+addr, 1, SubscribeOptions{
		Client:     client,
		Reconnects: 2,
		Backoff:    Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	if err == nil {
		t.Fatal("subscription to a refusing address succeeded")
	}
	if !strings.Contains(err.Error(), "failed at index 0") {
		t.Fatalf("error %v does not name the resume index", err)
	}
	if got := dials.Load(); got != 3 {
		t.Fatalf("dialed %d times, want exactly 3 (1 initial + 2 reconnects)", got)
	}
}
