package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"github.com/specdag/specdag/internal/wire"
)

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// apiError is the JSON error body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

// writeError maps lifecycle errors to HTTP statuses: unknown run → 404,
// lifecycle conflict → 409, quota exhaustion → 429 with Retry-After,
// everything else → 400.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var nf *notFoundError
	var st *stateError
	var qe *quotaError
	switch {
	case errors.As(err, &nf):
		status = http.StatusNotFound
	case errors.As(err, &st):
		status = http.StatusConflict
	case errors.As(err, &qe):
		status = http.StatusTooManyRequests
		// A coarse hint: quota frees when an active run settles, which is
		// run-length-dependent; clients should poll, not hammer.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// pathID parses the {id} path segment, answering 404 itself on garbage.
func pathID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id <= 0 {
		writeJSON(w, http.StatusNotFound, apiError{Error: "run IDs are positive integers"})
		return 0, false
	}
	return id, true
}

// handleSubmit implements POST /runs: decode the RunRequest, start the run,
// answer 201 with its initial status.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decoding run request: " + err.Error()})
		return
	}
	id, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	run, _ := s.lookup(id)
	writeJSON(w, http.StatusCreated, run.status())
}

// handleList implements GET /runs: every run's status, ordered by ID.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statuses())
}

// handleStatus implements GET /runs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	run, err := s.lookup(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, run.status())
}

// handlePause implements POST /runs/{id}/pause: stop at the next unit
// boundary, checkpoint, answer with the status (whose CheckpointIndex is
// the event index a subscriber resumes from).
func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if _, err := s.Pause(r.Context(), id); err != nil {
		writeError(w, err)
		return
	}
	run, _ := s.lookup(id)
	writeJSON(w, http.StatusOK, run.status())
}

// handleResume implements POST /runs/{id}/resume.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := s.Resume(id); err != nil {
		writeError(w, err)
		return
	}
	run, _ := s.lookup(id)
	writeJSON(w, http.StatusOK, run.status())
}

// handleCancel implements POST /runs/{id}/cancel.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := s.Cancel(r.Context(), id); err != nil {
		writeError(w, err)
		return
	}
	run, _ := s.lookup(id)
	writeJSON(w, http.StatusOK, run.status())
}

// handleCheckpoint implements GET /runs/{id}/checkpoint: the latest
// checkpoint blob (SDC1/SDA1, exactly what cmd/specdag -resume accepts),
// with CheckpointIndexHeader carrying the event index it resumes from.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	run, err := s.lookup(id)
	if err != nil {
		writeError(w, err)
		return
	}
	run.mu.Lock()
	ckpt, index := run.ckpt, run.ckptIndex
	run.mu.Unlock()
	if ckpt == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "run has no checkpoint yet"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(CheckpointIndexHeader, strconv.FormatUint(index, 10))
	w.WriteHeader(http.StatusOK)
	w.Write(ckpt)
}

// handleEvents implements GET /runs/{id}/events?from=N: an SDE1 stream of
// the run's event log from index N (default 0) until the run ends or the
// client disconnects. Any index at or before the log head is valid; if the
// ring has already dropped it, the stream opens with a Gap frame naming the
// missed range and the latest checkpoint's index, then continues from the
// oldest retained frame — the client chooses between accepting the drop and
// re-subscribing from the checkpoint. An index beyond the head answers 416
// (a client asking for events that do not exist yet is confused, not early:
// reconnecting clients resume from indices they have already seen).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	run, err := s.lookup(id)
	if err != nil {
		writeError(w, err)
		return
	}
	from := uint64(0)
	if q := r.URL.Query().Get("from"); q != "" {
		from, err = strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "from must be a non-negative integer"})
			return
		}
	}
	if next := run.b.NextIndex(); from > next {
		writeJSON(w, http.StatusRequestedRangeNotSatisfiable, apiError{
			Error: "from " + strconv.FormatUint(from, 10) + " is beyond the log head " + strconv.FormatUint(next, 10),
		})
		return
	}

	w.Header().Set("Content-Type", EventStreamContentType)
	w.WriteHeader(http.StatusOK)
	ww, err := wire.NewWriter(w)
	if err != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush() // commit the header so clients see the magic before the first event

	sub := run.b.Subscribe(from)
	for {
		f, err := sub.Next(r.Context())
		var gap *GapError
		switch {
		case err == nil:
			if ww.WriteFrame(&f) != nil {
				return // client gone
			}
			flush()
		case errors.As(err, &gap):
			// Resync first: the cursor lands on the oldest frame still in
			// the ring *now*, so the dropped range is [gap.From, to) exactly.
			// (Resyncing after a slow replay would silently skip whatever
			// the ring overwrote meanwhile.)
			to := sub.Resync()
			// First choice: replay the overwritten range from the spill file
			// — the subscriber sees a complete stream, no gap at all. Should
			// the ring lap the cursor again during the replay, the next
			// iteration handles the fresh GapError the same way.
			replayed, rerr := run.b.ReplayGap(gap.From, to, func(f *wire.Frame) error {
				if err := ww.WriteFrame(f); err != nil {
					return err
				}
				flush()
				return nil
			})
			if replayed {
				if rerr != nil {
					return // client gone mid-replay
				}
				continue
			}
			// No spill coverage: tell the subscriber exactly what it missed
			// and where the latest checkpoint resumes, then continue with
			// what remains (drop semantics).
			run.mu.Lock()
			ckptIndex := run.ckptIndex
			run.mu.Unlock()
			gf := wire.Frame{
				Index: gap.From,
				Kind:  wire.KindGap,
				Gap:   &wire.Gap{From: gap.From, To: to, CheckpointIndex: ckptIndex},
			}
			if ww.WriteFrame(&gf) != nil {
				return
			}
			flush()
		case errors.Is(err, io.EOF):
			return // log complete: the End frame was the last write
		default:
			return // client context canceled
		}
	}
}

// Statuses returns every run's status ordered by ID (the list endpoint's
// body, also used by the daemon's shutdown log).
func (s *Server) Statuses() []RunStatus {
	s.mu.Lock()
	ids := make([]int, 0, len(s.runs))
	for id := range s.runs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	statuses := make([]RunStatus, 0, len(ids))
	for _, id := range ids {
		if r, err := s.lookup(id); err == nil {
			statuses = append(statuses, r.status())
		}
	}
	for i := 1; i < len(statuses); i++ {
		for j := i; j > 0 && statuses[j-1].ID > statuses[j].ID; j-- {
			statuses[j-1], statuses[j] = statuses[j], statuses[j-1]
		}
	}
	return statuses
}
