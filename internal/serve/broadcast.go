// Package serve is the live-experiment serving subsystem: a run registry
// hosting many concurrent engine.Runs on one shared par.Budget, a per-run
// broadcaster fanning each run's event stream out to many subscribers, HTTP
// handlers for run lifecycle (submit/status/pause-to-checkpoint/resume/
// cancel) and event subscription, and a client-side reader (Subscribe) that
// replays a stream back into engine.Hooks — so remote consumption is
// indistinguishable from local observation.
//
// The package sits at the transport boundary and is deliberately NOT one of
// the deterministic packages (see internal/lint): it reads the wall clock
// for status reporting and reconnect backoff, and it supervises run
// goroutines. The engines it hosts remain fully deterministic — serving a
// run changes none of its numerics, which is what the round-trip
// equivalence tests pin.
//
// # Backpressure
//
// Each run's events flow through a Broadcaster: a bounded ring buffer the
// engine appends to without ever blocking, and per-subscriber cursors that
// read from it. A slow subscriber therefore can never stall the engine —
// if it falls behind by more than the ring's capacity, the overwritten
// frames are dropped *for that subscriber only* and it is told exactly
// which index range it missed (drop semantics). Because every run
// checkpoints periodically and any checkpoint's event index is a valid
// resume point, the subscriber may instead fetch the latest checkpoint and
// continue from its index with full state (snapshot semantics). The choice
// is the subscriber's; the engine never waits either way.
package serve

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"

	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/wire"
)

// DefaultRingSize is the per-run frame ring capacity when the server (or a
// direct NewBroadcaster caller) does not choose one. It is sized to hold
// several checkpoint intervals of a busy run, so a subscriber that
// reconnects "from the last checkpoint's event index" ordinarily finds that
// index still in the ring.
const DefaultRingSize = 1 << 14

// A Broadcaster fans one run's event stream out to any number of
// subscribers through a bounded ring buffer.
//
// The appending side (the engine's hooks) is wait-free with respect to
// subscribers: Append takes the mutex for an O(1) ring write and a channel
// swap — it never waits for any subscriber to catch up. Subscribers block
// only in Subscription.Next, on their own goroutines.
type Broadcaster struct {
	mu     sync.Mutex
	ring   []wire.Frame
	start  uint64 // index of the oldest retained frame
	next   uint64 // index the next appended frame will get
	closed bool
	notify chan struct{} // closed and replaced on every append

	// Spill state (EnableSpill): every appended frame is also written to an
	// SDE1 file, so frames the ring has overwritten remain replayable.
	spillPath  string
	spillFile  *os.File
	spillW     *wire.Writer
	spillStart uint64 // index of the first frame in the spill file
	spillErr   error  // first spill write error; spilling stops on it
}

// NewBroadcaster creates a broadcaster whose ring retains the last
// `capacity` frames (capacity <= 0 selects DefaultRingSize), with the event
// log starting at index start — 0 for a fresh run, the checkpoint's event
// index when a daemon re-hosts a resumed run.
func NewBroadcaster(capacity int, start uint64) *Broadcaster {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Broadcaster{
		ring:   make([]wire.Frame, capacity),
		start:  start,
		next:   start,
		notify: make(chan struct{}),
	}
}

// Append stamps the frame with the next log index and publishes it. It
// never blocks on subscribers: when the ring is full the oldest frame is
// overwritten (subscribers still pointing at it will observe a gap).
// Appending to a closed broadcaster panics — the engine's hooks are wired
// before the run starts and the End frame is appended last, so a
// post-close append is a lifecycle bug, not an operational condition.
func (b *Broadcaster) Append(f wire.Frame) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		panic("serve: Append after Close")
	}
	f.Index = b.next
	b.ring[int(b.next%uint64(len(b.ring)))] = f
	b.next++
	if b.next-b.start > uint64(len(b.ring)) {
		b.start = b.next - uint64(len(b.ring))
	}
	if b.spillW != nil {
		// The spill write happens inside the lock so the file's frame order
		// is the log order. A frame that is fully written before a gap is
		// detected is durably readable by ReplayGap's independent handle.
		if err := b.spillW.WriteFrame(&f); err != nil {
			b.spillErr = err
			b.spillW = nil
			b.spillFile.Close()
			b.spillFile = nil
		}
	}
	notify := b.notify
	b.notify = make(chan struct{})
	b.mu.Unlock()
	close(notify)
}

// EnableSpill starts mirroring every subsequently appended frame to an SDE1
// file at path, making overwritten ring frames replayable via ReplayGap
// (call it before the first Append to cover the whole log). A spill write
// error stops spilling — the ring and its subscribers are unaffected, gaps
// simply fall back to drop semantics.
func (b *Broadcaster) EnableSpill(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("serve: creating spill file: %w", err)
	}
	w, err := wire.NewWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.spillW != nil || b.closed {
		f.Close()
		return fmt.Errorf("serve: spill already enabled or log closed")
	}
	b.spillPath, b.spillFile, b.spillW = path, f, w
	b.spillStart = b.next
	return nil
}

// SpillPath returns the spill file's path, empty when spilling never
// started. The file remains readable after Close.
func (b *Broadcaster) SpillPath() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spillPath
}

// ReplayGap streams the spilled frames in [from, to) to emit, in order. It
// reports false when the range cannot be served from disk — spilling never
// started, failed, or began after `from` — in which case the caller falls
// back to drop semantics (Gap frame + Resync). An emit error aborts the
// replay and is returned as-is (the consumer is gone, not the file).
func (b *Broadcaster) ReplayGap(from, to uint64, emit func(*wire.Frame) error) (bool, error) {
	b.mu.Lock()
	path, ok := b.spillPath, b.spillErr == nil && b.spillPath != "" && from >= b.spillStart
	b.mu.Unlock()
	if !ok || from >= to {
		return false, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return false, nil
	}
	defer f.Close()
	r, err := wire.NewReader(f)
	if err != nil {
		return false, nil
	}
	for {
		fr, err := r.ReadFrame()
		if err != nil {
			// Truncated or corrupt spill before reaching `to`: the caller
			// falls back to the Gap frame rather than a silently short replay.
			return false, nil
		}
		if fr.Index < from {
			continue
		}
		if fr.Index >= to {
			return true, nil
		}
		if err := emit(fr); err != nil {
			return true, err
		}
		if fr.Index == to-1 {
			return true, nil
		}
	}
}

// Close marks the log complete (after the End frame). Blocked subscribers
// drain the remaining frames and then see io.EOF via Subscription.Next.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	if b.spillFile != nil {
		// The log is complete; the file stays on disk for ReplayGap, which
		// opens its own read handle.
		b.spillFile.Close()
		b.spillFile, b.spillW = nil, nil
	}
	notify := b.notify
	b.notify = make(chan struct{})
	b.mu.Unlock()
	close(notify)
}

// Hooks returns engine hooks that append every event to the log. They are
// invoked on the run goroutine, in the strict event order engine.Run
// guarantees, so log order equals observation order.
func (b *Broadcaster) Hooks() engine.Hooks {
	return engine.Hooks{
		OnRound:   func(ev engine.RoundEvent) { b.Append(wire.Frame{Kind: wire.KindRound, Round: &ev}) },
		OnPublish: func(ev engine.PublishEvent) { b.Append(wire.Frame{Kind: wire.KindPublish, Publish: &ev}) },
		OnProbe:   func(ev engine.ProbeEvent) { b.Append(wire.Frame{Kind: wire.KindProbe, Probe: &ev}) },
	}
}

// NextIndex returns the index the next appended frame will get — equal to
// the length of the run's event log so far.
func (b *Broadcaster) NextIndex() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// Earliest returns the index of the oldest frame still in the ring.
func (b *Broadcaster) Earliest() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.start
}

// Closed reports whether the log is complete.
func (b *Broadcaster) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// A GapError reports that the frames in [From, To) were overwritten before
// the subscriber read them. The subscription remains usable: Resync skips
// to the oldest retained frame (drop semantics), or the caller fetches the
// latest checkpoint and subscribes anew from its index (snapshot
// semantics).
type GapError struct {
	From, To uint64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("serve: subscriber fell behind the ring: frames [%d, %d) were dropped — resync or resume from the latest checkpoint", e.From, e.To)
}

// A Subscription is one reader's cursor into a broadcaster's log. It is not
// safe for concurrent use; each subscriber goroutine owns its own.
type Subscription struct {
	b      *Broadcaster
	cursor uint64
}

// Subscribe opens a cursor at the given log index. Any index is accepted:
// one before the ring's tail reports a GapError on the first Next (telling
// the caller exactly what was missed), one beyond the current head blocks
// until the log grows to it.
func (b *Broadcaster) Subscribe(from uint64) *Subscription {
	return &Subscription{b: b, cursor: from}
}

// Next returns the frame at the cursor, blocking until it is available.
// It returns io.EOF once the log is complete and fully consumed, a
// *GapError when the cursor's frame was overwritten, and ctx.Err() when the
// context ends first.
func (s *Subscription) Next(ctx context.Context) (wire.Frame, error) {
	b := s.b
	for {
		b.mu.Lock()
		if s.cursor < b.start {
			gap := &GapError{From: s.cursor, To: b.start}
			b.mu.Unlock()
			return wire.Frame{}, gap
		}
		if s.cursor < b.next {
			f := b.ring[int(s.cursor%uint64(len(b.ring)))]
			b.mu.Unlock()
			s.cursor++
			return f, nil
		}
		if b.closed {
			b.mu.Unlock()
			return wire.Frame{}, io.EOF
		}
		notify := b.notify
		b.mu.Unlock()
		select {
		case <-ctx.Done():
			return wire.Frame{}, ctx.Err()
		case <-notify:
		}
	}
}

// Resync jumps the cursor past a gap to the oldest retained frame and
// returns the new cursor (drop semantics). A no-op when not behind.
func (s *Subscription) Resync() uint64 {
	b := s.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.cursor < b.start {
		s.cursor = b.start
	}
	return s.cursor
}

// Cursor returns the index of the next frame Next will deliver.
func (s *Subscription) Cursor() uint64 { return s.cursor }
