package serve

import (
	"time"

	"github.com/specdag/specdag/internal/xrand"
)

// Default reconnect backoff bounds (see Backoff).
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffMax  = 5 * time.Second
)

// A Backoff computes capped exponential reconnect delays with deterministic
// equal jitter: attempt n waits between half and all of min(Base<<(n-1), Max).
// The jitter fraction comes from an xrand seed split keyed on the attempt
// number, so a given (Seed, attempt) pair always yields the same delay —
// retry schedules are reproducible in tests and logs, while distinct Seeds
// de-synchronize a fleet of subscribers re-dialing after one server restart
// (the thundering-herd failure mode of the old fixed linear backoff).
//
// The zero value selects DefaultBackoffBase/DefaultBackoffMax with Seed 0.
type Backoff struct {
	// Base is the first attempt's full delay; later attempts double it.
	Base time.Duration
	// Max caps the un-jittered delay.
	Max time.Duration
	// Seed keys the jitter stream.
	Seed int64
}

// Delay returns the wait before reconnect attempt n (1-based; values < 1 are
// treated as 1). The result lies in [d/2, d) for d = min(Base<<(n-1), Max).
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if attempt < 1 {
		attempt = 1
	}
	d := max
	// The shift bound keeps base<<(attempt-1) from overflowing before the
	// cap comparison; 40 doublings already exceed any sane Max.
	if shift := attempt - 1; shift < 40 && base<<shift < max {
		d = base << shift
	}
	f := xrand.New(b.Seed).SplitIndex("backoff", attempt).Float64()
	return d/2 + time.Duration(float64(d/2)*f)
}
