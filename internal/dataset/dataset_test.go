package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/specdag/specdag/internal/xrand"
)

func TestXY(t *testing.T) {
	d := FromSamples(Sample{X: []float64{1, 2}, Y: 0}, Sample{X: []float64{3, 4}, Y: 1})
	xs, ys := d.XY()
	if len(xs) != 2 || len(ys) != 2 {
		t.Fatal("XY lengths wrong")
	}
	if xs[1][0] != 3 || ys[1] != 1 {
		t.Fatal("XY content wrong")
	}
	// Feature slices view the flat storage; labels are copied.
	xs[0][0] = 42
	if d.Row(0)[0] != 42 {
		t.Fatal("XY feature slices should alias the flat storage")
	}
	ys[0] = 9
	if d.Y[0] != 0 {
		t.Fatal("XY labels should be copies")
	}
}

func TestFlatStorageIsContiguous(t *testing.T) {
	d := FromSamples(Sample{X: []float64{1, 2}, Y: 0}, Sample{X: []float64{3, 4}, Y: 1})
	if d.X.Rows != 2 || d.X.Cols != 2 || len(d.X.Data) != 4 {
		t.Fatalf("flat storage has wrong shape: %dx%d over %d values", d.X.Rows, d.X.Cols, len(d.X.Data))
	}
	if &d.Row(1)[0] != &d.X.Data[2] {
		t.Fatal("Row(1) is not a view into the flat backing store")
	}
	s := d.At(1)
	if s.Y != 1 || &s.X[0] != &d.X.Data[2] {
		t.Fatal("At must return a zero-copy sample view")
	}
}

func TestBuilderGrowAndRelabel(t *testing.T) {
	b := NewBuilder(3, 2)
	row := b.Grow(7)
	if len(row) != 3 || row[0] != 0 || row[1] != 0 || row[2] != 0 {
		t.Fatalf("Grow should hand out a zeroed row, got %v", row)
	}
	row[1] = 5
	b.Relabel(1)
	b.Append([]float64{9, 9, 9}, 2)
	d := b.Dataset()
	if d.Len() != 2 || d.Y[0] != 1 || d.Y[1] != 2 {
		t.Fatalf("builder labels wrong: %v", d.Y)
	}
	if d.Row(0)[1] != 5 || d.Row(1)[0] != 9 {
		t.Fatal("builder rows wrong")
	}
	// Growing past the pre-sized capacity must still produce zeroed rows.
	extra := b.Grow(3)
	for _, v := range extra {
		if v != 0 {
			t.Fatal("Grow past capacity returned a dirty row")
		}
	}
}

func TestBuilderAppendPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong row width")
		}
	}()
	NewBuilder(2, 1).Append([]float64{1}, 0)
}

func TestCloneIsDeep(t *testing.T) {
	d := FromSamples(Sample{X: []float64{1}, Y: 0})
	c := d.Clone()
	c.Row(0)[0] = 99
	c.Y[0] = 5
	if d.Row(0)[0] != 1 || d.Y[0] != 0 {
		t.Fatal("Clone aliases original")
	}
}

func TestGather(t *testing.T) {
	d := FromSamples(
		Sample{X: []float64{0}, Y: 0},
		Sample{X: []float64{1}, Y: 1},
		Sample{X: []float64{2}, Y: 2},
	)
	g := d.Gather([]int{2, 0})
	if g.Len() != 2 || g.Row(0)[0] != 2 || g.Y[1] != 0 {
		t.Fatalf("Gather wrong: %+v", g)
	}
	// Gathered storage is fresh.
	g.Row(0)[0] = 77
	if d.Row(2)[0] != 2 {
		t.Fatal("Gather must copy rows")
	}
}

func makeIota(n int) Dataset {
	b := NewBuilder(1, n)
	for i := 0; i < n; i++ {
		b.Grow(i % 3)[0] = float64(i)
	}
	return b.Dataset()
}

func TestSplitRatios(t *testing.T) {
	rng := xrand.New(1)
	d := makeIota(100)
	train, test := d.Split(0.1, rng)
	if test.Len() != 10 || train.Len() != 90 {
		t.Fatalf("90:10 split got %d:%d", train.Len(), test.Len())
	}
	// No sample lost or duplicated.
	seen := map[float64]bool{}
	for _, part := range []Dataset{train, test} {
		for i := 0; i < part.Len(); i++ {
			v := part.Row(i)[0]
			if seen[v] {
				t.Fatal("duplicate sample after split")
			}
			seen[v] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("split lost samples: %d", len(seen))
	}
}

// TestSplitMatchesSampleSliceReference pins the storage refactor's
// order-preservation contract: Split must visit the identical rng.Shuffle
// call and emit the identical sample order as the historical []Sample
// implementation (shuffle the samples, test = first nTest, train = rest).
func TestSplitMatchesSampleSliceReference(t *testing.T) {
	d := makeIota(23)
	train, test := d.Split(0.3, xrand.New(7))

	// Reference: shuffle a sample slice with an identically seeded stream.
	ref := make([]Sample, d.Len())
	for i := range ref {
		ref[i] = Sample{X: []float64{d.Row(i)[0]}, Y: d.Y[i]}
	}
	rng := xrand.New(7)
	rng.Shuffle(len(ref), func(i, j int) { ref[i], ref[j] = ref[j], ref[i] })
	nTest := int(float64(len(ref)) * 0.3)
	refTrain, refTest := ref[nTest:], ref[:nTest]

	if train.Len() != len(refTrain) || test.Len() != len(refTest) {
		t.Fatalf("split sizes diverge from reference: %d/%d vs %d/%d",
			train.Len(), test.Len(), len(refTrain), len(refTest))
	}
	for i := range refTrain {
		if train.Row(i)[0] != refTrain[i].X[0] || train.Y[i] != refTrain[i].Y {
			t.Fatalf("train sample %d diverges from the sample-slice reference", i)
		}
	}
	for i := range refTest {
		if test.Row(i)[0] != refTest[i].X[0] || test.Y[i] != refTest[i].Y {
			t.Fatalf("test sample %d diverges from the sample-slice reference", i)
		}
	}
}

func TestSplitNeverEmptyParts(t *testing.T) {
	rng := xrand.New(2)
	d := FromSamples(Sample{X: []float64{1}, Y: 0}, Sample{X: []float64{2}, Y: 1})
	train, test := d.Split(0.0, rng)
	if test.Len() == 0 || train.Len() == 0 {
		t.Fatalf("both parts should be non-empty for n>=2: %d/%d", train.Len(), test.Len())
	}
	train, test = d.Split(1.0, rng)
	if test.Len() == 0 || train.Len() == 0 {
		t.Fatalf("both parts should be non-empty for n>=2: %d/%d", train.Len(), test.Len())
	}
}

func TestCountLabels(t *testing.T) {
	d := FromSamples(Sample{Y: 0}, Sample{Y: 2}, Sample{Y: 2}, Sample{Y: 7})
	counts := d.CountLabels(3)
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 2 {
		t.Fatalf("CountLabels got %v", counts)
	}
}

func TestFlipLabels(t *testing.T) {
	d := FromSamples(Sample{Y: 3}, Sample{Y: 8}, Sample{Y: 5}, Sample{Y: 3})
	FlipLabels(d, 3, 8)
	want := []int{8, 3, 5, 8}
	for i := range want {
		if d.Y[i] != want[i] {
			t.Fatalf("FlipLabels got %v at %d, want %v", d.Y[i], i, want[i])
		}
	}
	// Flipping twice is the identity.
	FlipLabels(d, 3, 8)
	if d.Y[0] != 3 || d.Y[1] != 8 {
		t.Fatal("double flip should restore labels")
	}
}

func TestFMNISTClusteredStructure(t *testing.T) {
	fed := FMNISTClustered(FMNISTConfig{Clients: 30, Seed: 1})
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	if fed.NumClusters != 3 || fed.NumClasses != 10 {
		t.Fatalf("unexpected shape: %d clusters, %d classes", fed.NumClusters, fed.NumClasses)
	}
	perCluster := fed.ClientsPerCluster()
	for ci, n := range perCluster {
		if n != 10 {
			t.Fatalf("cluster %d has %d clients, want 10", ci, n)
		}
	}
	// Every client's labels must stay inside its cluster's class set.
	clusterClasses := map[int]map[int]bool{
		0: {0: true, 1: true, 2: true, 3: true},
		1: {4: true, 5: true, 6: true},
		2: {7: true, 8: true, 9: true},
	}
	for _, c := range fed.Clients {
		for _, part := range []Dataset{c.Train, c.Test} {
			for _, y := range part.Y {
				if !clusterClasses[c.Cluster][y] {
					t.Fatalf("client %d (cluster %d) holds foreign class %d", c.ID, c.Cluster, y)
				}
			}
		}
	}
}

func TestFMNISTRelaxedHasForeignSamples(t *testing.T) {
	fed := FMNISTClustered(FMNISTConfig{Clients: 9, RelaxedMin: 0.15, RelaxedMax: 0.20, Seed: 2})
	clusterClasses := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for _, c := range fed.Clients {
		own := map[int]bool{}
		for _, cl := range clusterClasses[c.Cluster] {
			own[cl] = true
		}
		foreign := 0
		total := 0
		for _, part := range []Dataset{c.Train, c.Test} {
			for _, y := range part.Y {
				if !own[y] {
					foreign++
				}
				total++
			}
		}
		frac := float64(foreign) / float64(total)
		if frac < 0.05 || frac > 0.35 {
			t.Fatalf("client %d foreign fraction %.2f outside plausible [0.05,0.35] band", c.ID, frac)
		}
	}
}

func TestFMNISTByWriter(t *testing.T) {
	fed := FMNISTClustered(FMNISTConfig{Clients: 10, ByWriter: true, Seed: 3})
	if fed.NumClusters != 1 {
		t.Fatalf("by-writer federation should have 1 cluster, got %d", fed.NumClusters)
	}
	// Each client should hold (almost) all classes.
	for _, c := range fed.Clients {
		counts := c.Train.CountLabels(10)
		nonzero := 0
		for _, n := range counts {
			if n > 0 {
				nonzero++
			}
		}
		if nonzero < 8 {
			t.Fatalf("by-writer client %d holds only %d classes", c.ID, nonzero)
		}
	}
}

func TestFMNISTDeterminism(t *testing.T) {
	a := FMNISTClustered(FMNISTConfig{Clients: 6, Seed: 42})
	b := FMNISTClustered(FMNISTConfig{Clients: 6, Seed: 42})
	for i := range a.Clients {
		at, bt := a.Clients[i].Train, b.Clients[i].Train
		if at.Len() != bt.Len() {
			t.Fatal("determinism broken: lengths differ")
		}
		for j := 0; j < at.Len(); j++ {
			if at.Y[j] != bt.Y[j] || at.Row(j)[0] != bt.Row(j)[0] {
				t.Fatal("determinism broken: content differs")
			}
		}
	}
	c := FMNISTClustered(FMNISTConfig{Clients: 6, Seed: 43})
	if c.Clients[0].Train.Row(0)[0] == a.Clients[0].Train.Row(0)[0] {
		t.Fatal("different seeds should give different data")
	}
}

func TestPoetsStructure(t *testing.T) {
	fed := Poets(PoetsConfig{ClientsPerLanguage: 4, CharsPerClient: 200, Seed: 4})
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	if fed.NumClusters != 2 {
		t.Fatalf("Poets should have 2 clusters, got %d", fed.NumClusters)
	}
	if len(fed.Clients) != 8 {
		t.Fatalf("want 8 clients, got %d", len(fed.Clients))
	}
	if fed.InputDim != 3*27 {
		t.Fatalf("input dim %d, want %d", fed.InputDim, 3*27)
	}
	// One-hot structure: every window position has exactly one hot unit.
	x := fed.Clients[0].Train.Row(0)
	for w := 0; w < 3; w++ {
		sum := 0.0
		for j := 0; j < 27; j++ {
			sum += x[w*27+j]
		}
		if sum != 1 {
			t.Fatalf("window %d is not one-hot (sum %v)", w, sum)
		}
	}
}

func TestPoetsLanguagesDiffer(t *testing.T) {
	fed := Poets(PoetsConfig{ClientsPerLanguage: 1, CharsPerClient: 2000, Seed: 5})
	// Bigram distributions of the two languages must differ substantially:
	// count successor matches between the two clients' label streams.
	counts := make([][]float64, 2)
	for li, c := range fed.Clients {
		hist := make([]float64, 27)
		for _, y := range c.Train.Y {
			hist[y]++
		}
		counts[li] = hist
	}
	// Normalized L1 distance between label distributions.
	var dist, total float64
	for j := 0; j < 27; j++ {
		dist += math.Abs(counts[0][j] - counts[1][j])
		total += counts[0][j] + counts[1][j]
	}
	if dist/total < 0.1 {
		t.Fatalf("language label distributions too similar: %v", dist/total)
	}
}

func TestCIFARStructure(t *testing.T) {
	fed := CIFAR100PAM(CIFARConfig{Clients: 20, TrainPerClient: 50, TestPerClient: 10, Seed: 6})
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	if fed.NumClasses != 100 || fed.NumClusters != 20 {
		t.Fatalf("unexpected shape: %d classes, %d clusters", fed.NumClasses, fed.NumClusters)
	}
	// PAM with a low root alpha concentrates clients on few superclasses.
	for _, c := range fed.Clients {
		supers := map[int]bool{}
		for _, y := range c.Train.Y {
			supers[y/5] = true
		}
		if len(supers) > 15 {
			t.Fatalf("client %d spread over %d superclasses; root alpha not concentrating", c.ID, len(supers))
		}
	}
}

func TestCIFARClusterIsMajoritySuperclass(t *testing.T) {
	fed := CIFAR100PAM(CIFARConfig{Clients: 10, TrainPerClient: 200, TestPerClient: 20, Seed: 7})
	for _, c := range fed.Clients {
		counts := make([]int, 20)
		for _, part := range []Dataset{c.Train, c.Test} {
			for _, y := range part.Y {
				counts[y/5]++
			}
		}
		maxCount := 0
		for _, n := range counts {
			if n > maxCount {
				maxCount = n
			}
		}
		if counts[c.Cluster] != maxCount {
			t.Fatalf("client %d cluster %d has count %d, but max is %d", c.ID, c.Cluster, counts[c.Cluster], maxCount)
		}
	}
}

func TestFedProxSyntheticStructure(t *testing.T) {
	fed := FedProxSynthetic(FedProxConfig{Clients: 10, Seed: 8})
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	if fed.InputDim != 60 || fed.NumClasses != 10 || fed.NumClusters != 1 {
		t.Fatalf("unexpected shape: dim %d, classes %d, clusters %d", fed.InputDim, fed.NumClasses, fed.NumClusters)
	}
	// Sample counts include the +50 floor and respect the cap.
	for _, c := range fed.Clients {
		n := c.Train.Len() + c.Test.Len()
		if n < 50 || n > 600 {
			t.Fatalf("client %d has %d samples, want [50, 600]", c.ID, n)
		}
	}
}

func TestFedProxHeterogeneity(t *testing.T) {
	// With beta > 0, different clients' feature means must differ.
	fed := FedProxSynthetic(FedProxConfig{Clients: 5, Seed: 9})
	means := make([]float64, len(fed.Clients))
	for i, c := range fed.Clients {
		sum := 0.0
		for j := 0; j < c.Train.Len(); j++ {
			sum += c.Train.Row(j)[0]
		}
		means[i] = sum / float64(c.Train.Len())
	}
	allSame := true
	for i := 1; i < len(means); i++ {
		if math.Abs(means[i]-means[0]) > 0.3 {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("FedProx synthetic clients look identically distributed; beta has no effect")
	}
}

func TestBasePureness(t *testing.T) {
	tests := []struct {
		clusters int
		want     float64
	}{{3, 1.0 / 3}, {2, 0.5}, {20, 0.05}}
	for _, tt := range tests {
		f := &Federation{NumClusters: tt.clusters}
		if got := f.BasePureness(); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("BasePureness(%d) = %v, want %v", tt.clusters, got, tt.want)
		}
	}
	if (&Federation{}).BasePureness() != 0 {
		t.Error("BasePureness with zero clusters should be 0")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fed := FMNISTClustered(FMNISTConfig{Clients: 3, Seed: 10})
	fed.Clients[0].Train.Y[0] = 99
	if err := fed.Validate(); err == nil {
		t.Fatal("Validate should reject out-of-range labels")
	}

	fed = FMNISTClustered(FMNISTConfig{Clients: 3, Seed: 10})
	fed.Clients[0].Cluster = -1
	if err := fed.Validate(); err == nil {
		t.Fatal("Validate should reject out-of-range clusters")
	}

	fed = FMNISTClustered(FMNISTConfig{Clients: 3, Seed: 10})
	fed.Clients[0].Test = Dataset{}
	if err := fed.Validate(); err == nil {
		t.Fatal("Validate should reject empty test sets")
	}

	fed = FMNISTClustered(FMNISTConfig{Clients: 3, Seed: 10})
	fed.Clients[0].Train.Y = fed.Clients[0].Train.Y[:3] // rows/labels mismatch
	if err := fed.Validate(); err == nil {
		t.Fatal("Validate should reject inconsistent flat storage")
	}

	if err := (&Federation{}).Validate(); err == nil {
		t.Fatal("Validate should reject empty federations")
	}
}

func TestClusterOf(t *testing.T) {
	fed := FMNISTClustered(FMNISTConfig{Clients: 6, Seed: 11})
	m := fed.ClusterOf()
	for _, c := range fed.Clients {
		if m[c.ID] != c.Cluster {
			t.Fatal("ClusterOf mismatch")
		}
	}
}

func TestSplitPreservesAllSamplesQuick(t *testing.T) {
	rng := xrand.New(12)
	f := func(n uint8, frac float64) bool {
		if math.IsNaN(frac) {
			return true
		}
		frac = math.Mod(math.Abs(frac), 1)
		d := makeIota(int(n))
		train, test := d.Split(frac, rng)
		return train.Len()+test.Len() == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
