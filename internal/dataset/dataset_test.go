package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/specdag/specdag/internal/xrand"
)

func TestXY(t *testing.T) {
	d := Dataset{{X: []float64{1, 2}, Y: 0}, {X: []float64{3, 4}, Y: 1}}
	xs, ys := d.XY()
	if len(xs) != 2 || len(ys) != 2 {
		t.Fatal("XY lengths wrong")
	}
	if xs[1][0] != 3 || ys[1] != 1 {
		t.Fatal("XY content wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := Dataset{{X: []float64{1}, Y: 0}}
	c := d.Clone()
	c[0].X[0] = 99
	c[0].Y = 5
	if d[0].X[0] != 1 || d[0].Y != 0 {
		t.Fatal("Clone aliases original")
	}
}

func TestSplitRatios(t *testing.T) {
	rng := xrand.New(1)
	d := make(Dataset, 100)
	for i := range d {
		d[i] = Sample{X: []float64{float64(i)}, Y: i % 3}
	}
	train, test := d.Split(0.1, rng)
	if len(test) != 10 || len(train) != 90 {
		t.Fatalf("90:10 split got %d:%d", len(train), len(test))
	}
	// No sample lost or duplicated.
	seen := map[float64]bool{}
	for _, s := range append(append(Dataset{}, train...), test...) {
		if seen[s.X[0]] {
			t.Fatal("duplicate sample after split")
		}
		seen[s.X[0]] = true
	}
	if len(seen) != 100 {
		t.Fatalf("split lost samples: %d", len(seen))
	}
}

func TestSplitNeverEmptyParts(t *testing.T) {
	rng := xrand.New(2)
	d := Dataset{{X: []float64{1}, Y: 0}, {X: []float64{2}, Y: 1}}
	train, test := d.Split(0.0, rng)
	if len(test) == 0 || len(train) == 0 {
		t.Fatalf("both parts should be non-empty for n>=2: %d/%d", len(train), len(test))
	}
	train, test = d.Split(1.0, rng)
	if len(test) == 0 || len(train) == 0 {
		t.Fatalf("both parts should be non-empty for n>=2: %d/%d", len(train), len(test))
	}
}

func TestCountLabels(t *testing.T) {
	d := Dataset{{Y: 0}, {Y: 2}, {Y: 2}, {Y: 7}}
	counts := d.CountLabels(3)
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 2 {
		t.Fatalf("CountLabels got %v", counts)
	}
}

func TestFlipLabels(t *testing.T) {
	d := Dataset{{Y: 3}, {Y: 8}, {Y: 5}, {Y: 3}}
	FlipLabels(d, 3, 8)
	want := []int{8, 3, 5, 8}
	for i := range want {
		if d[i].Y != want[i] {
			t.Fatalf("FlipLabels got %v at %d, want %v", d[i].Y, i, want[i])
		}
	}
	// Flipping twice is the identity.
	FlipLabels(d, 3, 8)
	if d[0].Y != 3 || d[1].Y != 8 {
		t.Fatal("double flip should restore labels")
	}
}

func TestFMNISTClusteredStructure(t *testing.T) {
	fed := FMNISTClustered(FMNISTConfig{Clients: 30, Seed: 1})
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	if fed.NumClusters != 3 || fed.NumClasses != 10 {
		t.Fatalf("unexpected shape: %d clusters, %d classes", fed.NumClusters, fed.NumClasses)
	}
	perCluster := fed.ClientsPerCluster()
	for ci, n := range perCluster {
		if n != 10 {
			t.Fatalf("cluster %d has %d clients, want 10", ci, n)
		}
	}
	// Every client's labels must stay inside its cluster's class set.
	clusterClasses := map[int]map[int]bool{
		0: {0: true, 1: true, 2: true, 3: true},
		1: {4: true, 5: true, 6: true},
		2: {7: true, 8: true, 9: true},
	}
	for _, c := range fed.Clients {
		for _, s := range append(append(Dataset{}, c.Train...), c.Test...) {
			if !clusterClasses[c.Cluster][s.Y] {
				t.Fatalf("client %d (cluster %d) holds foreign class %d", c.ID, c.Cluster, s.Y)
			}
		}
	}
}

func TestFMNISTRelaxedHasForeignSamples(t *testing.T) {
	fed := FMNISTClustered(FMNISTConfig{Clients: 9, RelaxedMin: 0.15, RelaxedMax: 0.20, Seed: 2})
	clusterClasses := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for _, c := range fed.Clients {
		own := map[int]bool{}
		for _, cl := range clusterClasses[c.Cluster] {
			own[cl] = true
		}
		foreign := 0
		total := 0
		for _, s := range append(append(Dataset{}, c.Train...), c.Test...) {
			if !own[s.Y] {
				foreign++
			}
			total++
		}
		frac := float64(foreign) / float64(total)
		if frac < 0.05 || frac > 0.35 {
			t.Fatalf("client %d foreign fraction %.2f outside plausible [0.05,0.35] band", c.ID, frac)
		}
	}
}

func TestFMNISTByWriter(t *testing.T) {
	fed := FMNISTClustered(FMNISTConfig{Clients: 10, ByWriter: true, Seed: 3})
	if fed.NumClusters != 1 {
		t.Fatalf("by-writer federation should have 1 cluster, got %d", fed.NumClusters)
	}
	// Each client should hold (almost) all classes.
	for _, c := range fed.Clients {
		counts := c.Train.CountLabels(10)
		nonzero := 0
		for _, n := range counts {
			if n > 0 {
				nonzero++
			}
		}
		if nonzero < 8 {
			t.Fatalf("by-writer client %d holds only %d classes", c.ID, nonzero)
		}
	}
}

func TestFMNISTDeterminism(t *testing.T) {
	a := FMNISTClustered(FMNISTConfig{Clients: 6, Seed: 42})
	b := FMNISTClustered(FMNISTConfig{Clients: 6, Seed: 42})
	for i := range a.Clients {
		at, bt := a.Clients[i].Train, b.Clients[i].Train
		if len(at) != len(bt) {
			t.Fatal("determinism broken: lengths differ")
		}
		for j := range at {
			if at[j].Y != bt[j].Y || at[j].X[0] != bt[j].X[0] {
				t.Fatal("determinism broken: content differs")
			}
		}
	}
	c := FMNISTClustered(FMNISTConfig{Clients: 6, Seed: 43})
	if c.Clients[0].Train[0].X[0] == a.Clients[0].Train[0].X[0] {
		t.Fatal("different seeds should give different data")
	}
}

func TestPoetsStructure(t *testing.T) {
	fed := Poets(PoetsConfig{ClientsPerLanguage: 4, CharsPerClient: 200, Seed: 4})
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	if fed.NumClusters != 2 {
		t.Fatalf("Poets should have 2 clusters, got %d", fed.NumClusters)
	}
	if len(fed.Clients) != 8 {
		t.Fatalf("want 8 clients, got %d", len(fed.Clients))
	}
	if fed.InputDim != 3*27 {
		t.Fatalf("input dim %d, want %d", fed.InputDim, 3*27)
	}
	// One-hot structure: every window position has exactly one hot unit.
	s := fed.Clients[0].Train[0]
	for w := 0; w < 3; w++ {
		sum := 0.0
		for j := 0; j < 27; j++ {
			sum += s.X[w*27+j]
		}
		if sum != 1 {
			t.Fatalf("window %d is not one-hot (sum %v)", w, sum)
		}
	}
}

func TestPoetsLanguagesDiffer(t *testing.T) {
	fed := Poets(PoetsConfig{ClientsPerLanguage: 1, CharsPerClient: 2000, Seed: 5})
	// Bigram distributions of the two languages must differ substantially:
	// count successor matches between the two clients' label streams.
	counts := make([][]float64, 2)
	for li, c := range fed.Clients {
		hist := make([]float64, 27)
		for _, s := range c.Train {
			hist[s.Y]++
		}
		counts[li] = hist
	}
	// Normalized L1 distance between label distributions.
	var dist, total float64
	for j := 0; j < 27; j++ {
		dist += math.Abs(counts[0][j] - counts[1][j])
		total += counts[0][j] + counts[1][j]
	}
	if dist/total < 0.1 {
		t.Fatalf("language label distributions too similar: %v", dist/total)
	}
}

func TestCIFARStructure(t *testing.T) {
	fed := CIFAR100PAM(CIFARConfig{Clients: 20, TrainPerClient: 50, TestPerClient: 10, Seed: 6})
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	if fed.NumClasses != 100 || fed.NumClusters != 20 {
		t.Fatalf("unexpected shape: %d classes, %d clusters", fed.NumClasses, fed.NumClusters)
	}
	// PAM with a low root alpha concentrates clients on few superclasses.
	for _, c := range fed.Clients {
		supers := map[int]bool{}
		for _, s := range c.Train {
			supers[s.Y/5] = true
		}
		if len(supers) > 15 {
			t.Fatalf("client %d spread over %d superclasses; root alpha not concentrating", c.ID, len(supers))
		}
	}
}

func TestCIFARClusterIsMajoritySuperclass(t *testing.T) {
	fed := CIFAR100PAM(CIFARConfig{Clients: 10, TrainPerClient: 200, TestPerClient: 20, Seed: 7})
	for _, c := range fed.Clients {
		counts := make([]int, 20)
		for _, s := range append(append(Dataset{}, c.Train...), c.Test...) {
			counts[s.Y/5]++
		}
		maxCount := 0
		for _, n := range counts {
			if n > maxCount {
				maxCount = n
			}
		}
		if counts[c.Cluster] != maxCount {
			t.Fatalf("client %d cluster %d has count %d, but max is %d", c.ID, c.Cluster, counts[c.Cluster], maxCount)
		}
	}
}

func TestFedProxSyntheticStructure(t *testing.T) {
	fed := FedProxSynthetic(FedProxConfig{Clients: 10, Seed: 8})
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	if fed.InputDim != 60 || fed.NumClasses != 10 || fed.NumClusters != 1 {
		t.Fatalf("unexpected shape: dim %d, classes %d, clusters %d", fed.InputDim, fed.NumClasses, fed.NumClusters)
	}
	// Sample counts include the +50 floor and respect the cap.
	for _, c := range fed.Clients {
		n := len(c.Train) + len(c.Test)
		if n < 50 || n > 600 {
			t.Fatalf("client %d has %d samples, want [50, 600]", c.ID, n)
		}
	}
}

func TestFedProxHeterogeneity(t *testing.T) {
	// With beta > 0, different clients' feature means must differ.
	fed := FedProxSynthetic(FedProxConfig{Clients: 5, Seed: 9})
	means := make([]float64, len(fed.Clients))
	for i, c := range fed.Clients {
		sum := 0.0
		for _, s := range c.Train {
			sum += s.X[0]
		}
		means[i] = sum / float64(len(c.Train))
	}
	allSame := true
	for i := 1; i < len(means); i++ {
		if math.Abs(means[i]-means[0]) > 0.3 {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("FedProx synthetic clients look identically distributed; beta has no effect")
	}
}

func TestBasePureness(t *testing.T) {
	tests := []struct {
		clusters int
		want     float64
	}{{3, 1.0 / 3}, {2, 0.5}, {20, 0.05}}
	for _, tt := range tests {
		f := &Federation{NumClusters: tt.clusters}
		if got := f.BasePureness(); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("BasePureness(%d) = %v, want %v", tt.clusters, got, tt.want)
		}
	}
	if (&Federation{}).BasePureness() != 0 {
		t.Error("BasePureness with zero clusters should be 0")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fed := FMNISTClustered(FMNISTConfig{Clients: 3, Seed: 10})
	fed.Clients[0].Train[0].Y = 99
	if err := fed.Validate(); err == nil {
		t.Fatal("Validate should reject out-of-range labels")
	}

	fed = FMNISTClustered(FMNISTConfig{Clients: 3, Seed: 10})
	fed.Clients[0].Cluster = -1
	if err := fed.Validate(); err == nil {
		t.Fatal("Validate should reject out-of-range clusters")
	}

	fed = FMNISTClustered(FMNISTConfig{Clients: 3, Seed: 10})
	fed.Clients[0].Test = nil
	if err := fed.Validate(); err == nil {
		t.Fatal("Validate should reject empty test sets")
	}

	if err := (&Federation{}).Validate(); err == nil {
		t.Fatal("Validate should reject empty federations")
	}
}

func TestClusterOf(t *testing.T) {
	fed := FMNISTClustered(FMNISTConfig{Clients: 6, Seed: 11})
	m := fed.ClusterOf()
	for _, c := range fed.Clients {
		if m[c.ID] != c.Cluster {
			t.Fatal("ClusterOf mismatch")
		}
	}
}

func TestSplitPreservesAllSamplesQuick(t *testing.T) {
	rng := xrand.New(12)
	f := func(n uint8, frac float64) bool {
		if math.IsNaN(frac) {
			return true
		}
		frac = math.Mod(math.Abs(frac), 1)
		d := make(Dataset, int(n))
		for i := range d {
			d[i] = Sample{X: []float64{float64(i)}, Y: 0}
		}
		train, test := d.Split(frac, rng)
		return len(train)+len(test) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
