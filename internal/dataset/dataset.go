// Package dataset defines the federated data model (samples, per-client
// train/test splits, cluster labels) and the synthetic generators that stand
// in for the paper's datasets.
//
// The original evaluation uses FEMNIST/LEAF, a Shakespeare+Goethe corpus and
// CIFAR-100 — none of which can be fetched in this offline, stdlib-only
// reproduction. Each generator here reproduces the property the paper's
// evaluation actually depends on: cluster-structured non-IID client data in
// which model updates from the same cluster help and updates from other
// clusters hurt. See DESIGN.md §2 for the substitution table.
//
// Storage is flat: a Dataset keeps all features in one contiguous row-major
// mathx.Matrix plus a label slice, so the training and evaluation hot paths
// stream cache-line-sequential memory instead of chasing per-sample
// pointers. Generators build that storage directly through Builder; Split,
// Clone and Gather materialize new contiguous datasets.
package dataset

import (
	"fmt"

	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/xrand"
)

// Sample is a single labeled example. It is the per-sample view/exchange
// type; bulk storage lives in Dataset's flat matrix.
type Sample struct {
	X []float64
	Y int
}

// Dataset is an ordered collection of samples over one contiguous backing
// store: X holds the features row-major (one row per sample), Y the labels.
// The struct is a view — copying it aliases the storage; Clone deep-copies.
type Dataset struct {
	X mathx.Matrix
	Y []int
}

// FromSamples copies the given samples into fresh contiguous storage.
func FromSamples(samples ...Sample) Dataset {
	if len(samples) == 0 {
		return Dataset{}
	}
	b := NewBuilder(len(samples[0].X), len(samples))
	for _, s := range samples {
		b.Append(s.X, s.Y)
	}
	return b.Dataset()
}

// Len returns the number of samples.
func (d Dataset) Len() int { return len(d.Y) }

// Row returns the zero-copy feature view of sample i.
func (d Dataset) Row(i int) []float64 { return d.X.Row(i) }

// At returns sample i; its X aliases the dataset's storage.
func (d Dataset) At(i int) Sample { return Sample{X: d.X.Row(i), Y: d.Y[i]} }

// CopyLabels returns a fresh copy of the label slice — for consumers that
// mutate labels privately (the simulator's poisoning attack) without
// touching the federation's data.
func (d Dataset) CopyLabels() []int {
	return append([]int(nil), d.Y...)
}

// XY unzips the dataset into per-sample feature slices and labels. The
// feature slices are zero-copy views of the flat storage; labels are copied.
//
// Deprecated: XY re-materializes a [][]float64 header per sample. New code
// should use the X matrix and Y labels directly (nn.Train/Evaluate consume
// mathx.Matrix); XY is kept as an adapter for per-sample consumers.
func (d Dataset) XY() (xs [][]float64, ys []int) {
	xs = make([][]float64, d.Len())
	for i := range xs {
		xs[i] = d.X.Row(i)
	}
	return xs, d.CopyLabels()
}

// Clone returns a deep copy of the dataset (features and labels copied).
func (d Dataset) Clone() Dataset {
	return Dataset{X: d.X.Clone(), Y: d.CopyLabels()}
}

// Gather returns a new contiguous dataset holding rows idx[0], idx[1], ...
// in order — the batched row gather behind Split.
func (d Dataset) Gather(idx []int) Dataset {
	out := Dataset{X: mathx.NewMatrix(len(idx), d.X.Cols), Y: make([]int, len(idx))}
	mathx.GatherRows(out.X, d.X, idx)
	for k, i := range idx {
		out.Y[k] = d.Y[i]
	}
	return out
}

// Split shuffles the dataset with rng and divides it into train and test
// partitions where the test partition holds testFrac of the samples
// (rounded, at least one sample in each part when len >= 2). The paper uses
// a 90:10 train-test split per client. Both parts get their own contiguous
// storage; the receiver is left untouched.
//
// The shuffle permutes an index vector with exactly the same rng.Shuffle
// call the sample-slice implementation used, so the sample order of both
// parts — and therefore every downstream metric — is unchanged.
func (d Dataset) Split(testFrac float64, rng *xrand.RNG) (train, test Dataset) {
	n := d.Len()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	nTest := int(float64(n) * testFrac)
	if n >= 2 {
		if nTest == 0 {
			nTest = 1
		}
		if nTest == n {
			nTest = n - 1
		}
	}
	return d.Gather(perm[nTest:]), d.Gather(perm[:nTest])
}

// CountLabels returns a histogram over labels 0..numClasses-1. Labels outside
// the range are ignored.
func (d Dataset) CountLabels(numClasses int) []int {
	counts := make([]int, numClasses)
	for _, y := range d.Y {
		if y >= 0 && y < numClasses {
			counts[y]++
		}
	}
	return counts
}

// FlipLabels swaps labels a and b in place. It implements the paper's
// flipped-label poisoning attack (§4.4, §5.3.4: labels 3 and 8).
func FlipLabels(d Dataset, a, b int) {
	for i, y := range d.Y {
		switch y {
		case a:
			d.Y[i] = b
		case b:
			d.Y[i] = a
		}
	}
}

// Builder accumulates samples into one contiguous backing store. Generators
// pre-size it with the expected sample count and fill rows in place (Grow),
// so building a federation performs one feature allocation per client
// instead of one per sample.
type Builder struct {
	cols int
	x    []float64
	y    []int
}

// NewBuilder returns a builder for rows of the given width, pre-allocating
// capacity rows.
func NewBuilder(cols, capacity int) *Builder {
	if cols < 0 || capacity < 0 {
		panic(fmt.Sprintf("dataset: NewBuilder(%d, %d) with negative argument", cols, capacity))
	}
	return &Builder{cols: cols, x: make([]float64, 0, cols*capacity), y: make([]int, 0, capacity)}
}

// Len returns the number of samples appended so far.
func (b *Builder) Len() int { return len(b.y) }

// Grow appends a zeroed sample with label y and returns the zero-copy view
// of its feature row for in-place filling.
func (b *Builder) Grow(y int) []float64 {
	start := len(b.x)
	need := start + b.cols
	if need <= cap(b.x) {
		b.x = b.x[:need]
	} else {
		b.x = append(b.x, make([]float64, b.cols)...)
	}
	row := b.x[start:need]
	mathx.Fill(row, 0) // callers rely on zeroed rows (one-hot encoders)
	b.y = append(b.y, y)
	return row
}

// Relabel replaces the label of the most recently appended sample — for
// generators whose label depends on the filled feature row.
func (b *Builder) Relabel(y int) {
	b.y[len(b.y)-1] = y
}

// Append copies x as a new sample with label y. It panics if x does not
// match the builder's row width.
func (b *Builder) Append(x []float64, y int) {
	if len(x) != b.cols {
		panic(fmt.Sprintf("dataset: Builder.Append row of %d values, want %d", len(x), b.cols))
	}
	copy(b.Grow(y), x)
}

// Dataset returns the accumulated samples. The dataset views the builder's
// storage; the builder must not be reused afterwards.
func (b *Builder) Dataset() Dataset {
	return Dataset{X: mathx.Matrix{Data: b.x, Rows: len(b.y), Cols: b.cols}, Y: b.y}
}

// Client is one federated participant with a private train/test split and a
// ground-truth cluster assignment (used only for evaluation metrics, never
// by the learning algorithm itself).
type Client struct {
	ID      int
	Cluster int
	Train   Dataset
	Test    Dataset
}

// Federation is a complete federated dataset: all clients plus the model
// input/output dimensions.
type Federation struct {
	Name        string
	Clients     []*Client
	InputDim    int
	NumClasses  int
	NumClusters int
}

// Validate checks structural invariants of the federation: consistent
// feature dimensions, coherent flat storage, labels in range, cluster labels
// in range, and non-empty client splits.
func (f *Federation) Validate() error {
	if len(f.Clients) == 0 {
		return fmt.Errorf("dataset: federation %q has no clients", f.Name)
	}
	for _, c := range f.Clients {
		if c.Train.Len() == 0 || c.Test.Len() == 0 {
			return fmt.Errorf("dataset: client %d has empty train or test set", c.ID)
		}
		if c.Cluster < 0 || c.Cluster >= f.NumClusters {
			return fmt.Errorf("dataset: client %d cluster %d out of range [0,%d)", c.ID, c.Cluster, f.NumClusters)
		}
		for _, part := range []Dataset{c.Train, c.Test} {
			if part.X.Rows != len(part.Y) || len(part.X.Data) != part.X.Rows*part.X.Cols {
				return fmt.Errorf("dataset: client %d has inconsistent flat storage (%d rows x %d cols, %d labels, %d values)",
					c.ID, part.X.Rows, part.X.Cols, len(part.Y), len(part.X.Data))
			}
			if part.X.Cols != f.InputDim {
				return fmt.Errorf("dataset: client %d sample dim %d, want %d", c.ID, part.X.Cols, f.InputDim)
			}
			for _, y := range part.Y {
				if y < 0 || y >= f.NumClasses {
					return fmt.Errorf("dataset: client %d label %d out of range [0,%d)", c.ID, y, f.NumClasses)
				}
			}
		}
	}
	return nil
}

// ClusterOf returns a lookup from client ID to ground-truth cluster.
func (f *Federation) ClusterOf() map[int]int {
	m := make(map[int]int, len(f.Clients))
	for _, c := range f.Clients {
		m[c.ID] = c.Cluster
	}
	return m
}

// BasePureness is the approval pureness expected if approvals were spread
// randomly across clusters (Table 2's "base pureness" column): 1/numClusters
// for equally sized clusters.
func (f *Federation) BasePureness() float64 {
	if f.NumClusters == 0 {
		return 0
	}
	return 1 / float64(f.NumClusters)
}

// ClientsPerCluster returns the number of clients in each cluster.
func (f *Federation) ClientsPerCluster() []int {
	counts := make([]int, f.NumClusters)
	for _, c := range f.Clients {
		if c.Cluster >= 0 && c.Cluster < f.NumClusters {
			counts[c.Cluster]++
		}
	}
	return counts
}
