// Package dataset defines the federated data model (samples, per-client
// train/test splits, cluster labels) and the synthetic generators that stand
// in for the paper's datasets.
//
// The original evaluation uses FEMNIST/LEAF, a Shakespeare+Goethe corpus and
// CIFAR-100 — none of which can be fetched in this offline, stdlib-only
// reproduction. Each generator here reproduces the property the paper's
// evaluation actually depends on: cluster-structured non-IID client data in
// which model updates from the same cluster help and updates from other
// clusters hurt. See DESIGN.md §2 for the substitution table.
package dataset

import (
	"fmt"

	"github.com/specdag/specdag/internal/xrand"
)

// Sample is a single labeled example.
type Sample struct {
	X []float64
	Y int
}

// Dataset is an ordered collection of samples.
type Dataset []Sample

// XY unzips the dataset into feature and label slices. The feature slices
// alias the samples' X vectors; labels are copied.
func (d Dataset) XY() (xs [][]float64, ys []int) {
	xs = make([][]float64, len(d))
	ys = make([]int, len(d))
	for i, s := range d {
		xs[i] = s.X
		ys[i] = s.Y
	}
	return xs, ys
}

// Clone returns a deep copy of the dataset (features copied).
func (d Dataset) Clone() Dataset {
	out := make(Dataset, len(d))
	for i, s := range d {
		x := make([]float64, len(s.X))
		copy(x, s.X)
		out[i] = Sample{X: x, Y: s.Y}
	}
	return out
}

// Split shuffles the dataset with rng and divides it into train and test
// partitions where the test partition holds testFrac of the samples
// (rounded, at least one sample in each part when len >= 2). The paper uses
// a 90:10 train-test split per client.
func (d Dataset) Split(testFrac float64, rng *xrand.RNG) (train, test Dataset) {
	shuffled := make(Dataset, len(d))
	copy(shuffled, d)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	nTest := int(float64(len(shuffled)) * testFrac)
	if len(shuffled) >= 2 {
		if nTest == 0 {
			nTest = 1
		}
		if nTest == len(shuffled) {
			nTest = len(shuffled) - 1
		}
	}
	return shuffled[nTest:], shuffled[:nTest]
}

// CountLabels returns a histogram over labels 0..numClasses-1. Labels outside
// the range are ignored.
func (d Dataset) CountLabels(numClasses int) []int {
	counts := make([]int, numClasses)
	for _, s := range d {
		if s.Y >= 0 && s.Y < numClasses {
			counts[s.Y]++
		}
	}
	return counts
}

// FlipLabels swaps labels a and b in place. It implements the paper's
// flipped-label poisoning attack (§4.4, §5.3.4: labels 3 and 8).
func FlipLabels(d Dataset, a, b int) {
	for i := range d {
		switch d[i].Y {
		case a:
			d[i].Y = b
		case b:
			d[i].Y = a
		}
	}
}

// Client is one federated participant with a private train/test split and a
// ground-truth cluster assignment (used only for evaluation metrics, never
// by the learning algorithm itself).
type Client struct {
	ID      int
	Cluster int
	Train   Dataset
	Test    Dataset
}

// Federation is a complete federated dataset: all clients plus the model
// input/output dimensions.
type Federation struct {
	Name        string
	Clients     []*Client
	InputDim    int
	NumClasses  int
	NumClusters int
}

// Validate checks structural invariants of the federation: consistent
// feature dimensions, labels in range, cluster labels in range, and
// non-empty client splits.
func (f *Federation) Validate() error {
	if len(f.Clients) == 0 {
		return fmt.Errorf("dataset: federation %q has no clients", f.Name)
	}
	for _, c := range f.Clients {
		if len(c.Train) == 0 || len(c.Test) == 0 {
			return fmt.Errorf("dataset: client %d has empty train or test set", c.ID)
		}
		if c.Cluster < 0 || c.Cluster >= f.NumClusters {
			return fmt.Errorf("dataset: client %d cluster %d out of range [0,%d)", c.ID, c.Cluster, f.NumClusters)
		}
		for _, part := range []Dataset{c.Train, c.Test} {
			for _, s := range part {
				if len(s.X) != f.InputDim {
					return fmt.Errorf("dataset: client %d sample dim %d, want %d", c.ID, len(s.X), f.InputDim)
				}
				if s.Y < 0 || s.Y >= f.NumClasses {
					return fmt.Errorf("dataset: client %d label %d out of range [0,%d)", c.ID, s.Y, f.NumClasses)
				}
			}
		}
	}
	return nil
}

// ClusterOf returns a lookup from client ID to ground-truth cluster.
func (f *Federation) ClusterOf() map[int]int {
	m := make(map[int]int, len(f.Clients))
	for _, c := range f.Clients {
		m[c.ID] = c.Cluster
	}
	return m
}

// BasePureness is the approval pureness expected if approvals were spread
// randomly across clusters (Table 2's "base pureness" column): 1/numClusters
// for equally sized clusters.
func (f *Federation) BasePureness() float64 {
	if f.NumClusters == 0 {
		return 0
	}
	return 1 / float64(f.NumClusters)
}

// ClientsPerCluster returns the number of clients in each cluster.
func (f *Federation) ClientsPerCluster() []int {
	counts := make([]int, f.NumClusters)
	for _, c := range f.Clients {
		if c.Cluster >= 0 && c.Cluster < f.NumClusters {
			counts[c.Cluster]++
		}
	}
	return counts
}
