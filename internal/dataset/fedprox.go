package dataset

import (
	"fmt"
	"math"

	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/xrand"
)

// FedProxConfig parameterizes the Synthetic(alpha, beta) dataset proposed by
// the FedProx paper (Li et al.) and used in §5.3.3 of the reproduced paper
// with alpha = beta = 0.5. Unlike the other generators, this one is fully
// specified in its source paper, so we implement it exactly:
//
//	u_k ~ N(0, alpha);  W_k[i][j] ~ N(u_k, 1);  b_k[i] ~ N(u_k, 1)
//	B_k ~ N(0, beta);   v_k[j] ~ N(B_k, 1)
//	x ~ N(v_k, Sigma) with Sigma_jj = j^{-1.2}
//	y = argmax(softmax(W_k x + b_k))
//
// alpha controls how much local models differ from each other; beta controls
// how much the local data distributions differ.
type FedProxConfig struct {
	// Clients defaults to the paper's 30.
	Clients int
	// Alpha and Beta default to 0.5 each (the paper's Synthetic(0.5, 0.5)).
	// The zero value selects the default; to genuinely use 0, set Exact0.
	Alpha float64
	Beta  float64
	// Exact0 forces Alpha = Beta = 0 (the IID variant Synthetic(0,0)).
	Exact0 bool
	// Dim is the input dimensionality (default 60); Classes the number of
	// output classes (default 10) — both from the FedProx reference code.
	Dim     int
	Classes int
	// MaxSamples caps per-client sample counts drawn from
	// lognormal(4, 2) + 50 (default cap 600 to bound simulation time).
	MaxSamples int
	// Seed drives all randomness.
	Seed int64
}

func (c FedProxConfig) withDefaults() FedProxConfig {
	if c.Clients == 0 {
		c.Clients = 30
	}
	if c.Exact0 {
		c.Alpha, c.Beta = 0, 0
	} else {
		if c.Alpha == 0 {
			c.Alpha = 0.5
		}
		if c.Beta == 0 {
			c.Beta = 0.5
		}
	}
	if c.Dim == 0 {
		c.Dim = 60
	}
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = 600
	}
	return c
}

// FedProxSynthetic generates the Synthetic(alpha, beta) federation. There is
// no ground-truth clustering (every client's optimum differs), so all
// clients carry cluster 0 and NumClusters is 1.
func FedProxSynthetic(cfg FedProxConfig) *Federation {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed).Split("fedprox")

	// Diagonal covariance Sigma_jj = j^{-1.2} (1-indexed as in the paper).
	sigma := make([]float64, cfg.Dim)
	for j := range sigma {
		sigma[j] = math.Pow(float64(j+1), -1.2)
	}

	fed := &Federation{
		Name:        fmt.Sprintf("fedprox-synthetic(%.1f,%.1f)", cfg.Alpha, cfg.Beta),
		InputDim:    cfg.Dim,
		NumClasses:  cfg.Classes,
		NumClusters: 1,
	}

	for id := 0; id < cfg.Clients; id++ {
		crng := rng.SplitIndex("client", id)

		uk := crng.Normal(0, math.Sqrt(cfg.Alpha))
		bk := crng.Normal(0, math.Sqrt(cfg.Beta))

		// Local true model.
		w := make([][]float64, cfg.Classes)
		for i := range w {
			w[i] = crng.NormalVec(cfg.Dim, uk, 1)
		}
		bias := crng.NormalVec(cfg.Classes, uk, 1)

		// Local input distribution center.
		vk := crng.NormalVec(cfg.Dim, bk, 1)

		n := crng.LogNormalInt(4, 2, 0, cfg.MaxSamples-50) + 50
		bld := NewBuilder(cfg.Dim, n)
		logits := make([]float64, cfg.Classes)
		for s := 0; s < n; s++ {
			x := bld.Grow(0)
			for j := range x {
				x[j] = crng.Normal(vk[j], math.Sqrt(sigma[j]))
			}
			for i := range logits {
				logits[i] = mathx.Dot(w[i], x) + bias[i]
			}
			bld.Relabel(mathx.ArgMax(logits))
		}

		train, test := bld.Dataset().Split(0.1, crng.Split("split"))
		fed.Clients = append(fed.Clients, &Client{ID: id, Cluster: 0, Train: train, Test: test})
	}
	if err := fed.Validate(); err != nil {
		panic(fmt.Sprintf("dataset: generated invalid FedProx federation: %v", err))
	}
	return fed
}
