package dataset

import (
	"fmt"

	"github.com/specdag/specdag/internal/xrand"
)

// PoetsConfig parameterizes the synthetic stand-in for the paper's Poets
// dataset (§5.1.2): next-character prediction on texts from two "poets"
// (Shakespeare in English, Goethe in German), each client holding text from
// exactly one language — two natural clusters.
//
// Each language is modeled as an order-1 Markov chain over a 27-symbol
// alphabet (a–z plus space) with a distinct, seeded transition structure.
// Clients generate a private stream from their language's chain; samples are
// sliding windows of Window one-hot characters with the following character
// as the label. The dominant-successor structure bounds achievable accuracy
// around 0.5–0.6, matching the flavor of LSTM next-char accuracy in LEAF.
type PoetsConfig struct {
	// ClientsPerLanguage is the number of clients holding each language
	// (default 15, i.e. 30 clients total).
	ClientsPerLanguage int
	// CharsPerClient is the length of each client's private text stream
	// (default 620, yielding ~555 train / 62 test windows).
	CharsPerClient int
	// Window is the number of preceding characters fed to the model
	// (default 3; input dim = Window*27).
	Window int
	// Seed drives all randomness.
	Seed int64
}

func (c PoetsConfig) withDefaults() PoetsConfig {
	if c.ClientsPerLanguage == 0 {
		c.ClientsPerLanguage = 15
	}
	if c.CharsPerClient == 0 {
		c.CharsPerClient = 620
	}
	if c.Window == 0 {
		c.Window = 3
	}
	return c
}

// poetsAlphabet is the symbol count: 26 letters plus space.
const poetsAlphabet = 27

// Poets generates the two-language next-character-prediction federation.
func Poets(cfg PoetsConfig) *Federation {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed).Split("poets")

	languages := []string{"english", "german"}
	chains := make([][][]float64, len(languages))
	for li, lang := range languages {
		chains[li] = markovChain(rng.Split("chain-" + lang))
	}

	fed := &Federation{
		Name:        "poets",
		InputDim:    cfg.Window * poetsAlphabet,
		NumClasses:  poetsAlphabet,
		NumClusters: len(languages),
	}

	id := 0
	for li := range languages {
		for k := 0; k < cfg.ClientsPerLanguage; k++ {
			crng := rng.SplitIndex("client", id)
			text := sampleChain(crng.Split("text"), chains[li], cfg.CharsPerClient)
			data := windows(text, cfg.Window)
			train, test := data.Split(0.1, crng.Split("split"))
			fed.Clients = append(fed.Clients, &Client{ID: id, Cluster: li, Train: train, Test: test})
			id++
		}
	}
	if err := fed.Validate(); err != nil {
		panic(fmt.Sprintf("dataset: generated invalid Poets federation: %v", err))
	}
	return fed
}

// markovChain builds a 27x27 row-stochastic transition matrix with a skewed
// successor structure: every character has three preferred successors
// carrying most of the probability mass, with the remainder spread uniformly.
// Different seeds (languages) get different preferred-successor patterns.
func markovChain(rng *xrand.RNG) [][]float64 {
	const n = poetsAlphabet
	chain := make([][]float64, n)
	for c := 0; c < n; c++ {
		row := make([]float64, n)
		// Background mass.
		rest := 0.10
		for j := range row {
			row[j] = rest / float64(n)
		}
		// Three preferred successors with 0.55/0.25/0.10.
		succ := rng.SampleWithoutReplacement(n, 3)
		row[succ[0]] += 0.55
		row[succ[1]] += 0.25
		row[succ[2]] += 0.10
		chain[c] = row
	}
	return chain
}

// sampleChain draws a character stream of the given length from the chain.
func sampleChain(rng *xrand.RNG, chain [][]float64, length int) []int {
	text := make([]int, length)
	cur := rng.Intn(len(chain))
	for i := 0; i < length; i++ {
		cur = rng.WeightedChoice(chain[cur])
		text[i] = cur
	}
	return text
}

// windows converts a character stream into (window -> next char) samples
// with one-hot encoded inputs, filled directly into flat storage.
func windows(text []int, window int) Dataset {
	n := len(text) - window
	if n < 0 {
		n = 0
	}
	bld := NewBuilder(window*poetsAlphabet, n)
	for i := window; i < len(text); i++ {
		x := bld.Grow(text[i])
		for w := 0; w < window; w++ {
			x[w*poetsAlphabet+text[i-window+w]] = 1
		}
	}
	return bld.Dataset()
}
