package dataset

import (
	"fmt"

	"github.com/specdag/specdag/internal/xrand"
)

// FMNISTConfig parameterizes the synthetic stand-in for the paper's
// FMNIST-clustered dataset (§5.1.1): a 10-class recognition task whose
// clients are synthetically grouped into three disjoint class clusters
// {0,1,2,3}, {4,5,6} and {7,8,9}.
//
// Samples are Gaussian perturbations of per-class prototype vectors. The
// prototypes are drawn once per federation seed, so all clients of a cluster
// share the same underlying class-conditional distributions — exactly the
// property that makes intra-cluster model averaging productive and
// cross-cluster averaging counter-productive.
type FMNISTConfig struct {
	// Clients is the total number of clients, spread as evenly as possible
	// over the three clusters. Default 100 (the paper's Fig. 5 subset).
	Clients int
	// TrainPerClient / TestPerClient size each client's split. Defaults
	// 100/20, mirroring Table 1 (10 local batches of size 10 per round).
	TrainPerClient int
	TestPerClient  int
	// Dim is the feature dimensionality (default 64). The paper uses 28x28
	// images with a CNN; a 64-dim prototype task preserves per-cluster
	// learnability without a conv stack (see DESIGN.md §2).
	Dim int
	// NoiseStd is the class-conditional noise (default 1.0).
	NoiseStd float64
	// RelaxedMin/RelaxedMax, when positive, build the paper's *relaxed*
	// variant (Fig. 8): each client draws a fraction in [RelaxedMin,
	// RelaxedMax] of its samples from classes outside its cluster.
	RelaxedMin float64
	RelaxedMax float64
	// ByWriter, when true, abandons class clustering and instead gives every
	// client all 10 classes plus a per-client "writing style" offset — the
	// stand-in for the original FEMNIST split by author used in the
	// poisoning and scalability experiments (§5.3.4, §5.3.5).
	ByWriter bool
	// WriterStd is the standard deviation of the per-client style offset
	// used with ByWriter (default 0.5).
	WriterStd float64
	// Seed drives all randomness of the generator.
	Seed int64
}

func (c FMNISTConfig) withDefaults() FMNISTConfig {
	if c.Clients == 0 {
		c.Clients = 100
	}
	if c.TrainPerClient == 0 {
		c.TrainPerClient = 100
	}
	if c.TestPerClient == 0 {
		c.TestPerClient = 20
	}
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 1.0
	}
	if c.WriterStd == 0 {
		c.WriterStd = 0.5
	}
	return c
}

// fmnistClusters is the paper's synthetic class clustering.
var fmnistClusters = [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}}

// FMNISTClustered generates the synthetic FMNIST-clustered federation.
func FMNISTClustered(cfg FMNISTConfig) *Federation {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed).Split("fmnist")

	const numClasses = 10
	protos := classPrototypes(rng.Split("prototypes"), numClasses, cfg.Dim)

	classToCluster := make([]int, numClasses)
	for ci, classes := range fmnistClusters {
		for _, cl := range classes {
			classToCluster[cl] = ci
		}
	}

	name := "fmnist-clustered"
	numClusters := len(fmnistClusters)
	if cfg.ByWriter {
		name = "fmnist-bywriter"
		numClusters = 1
	} else if cfg.RelaxedMax > 0 {
		name = "fmnist-relaxed"
	}

	fed := &Federation{
		Name:        name,
		InputDim:    cfg.Dim,
		NumClasses:  numClasses,
		NumClusters: numClusters,
	}

	for id := 0; id < cfg.Clients; id++ {
		crng := rng.SplitIndex("client", id)
		total := cfg.TrainPerClient + cfg.TestPerClient
		var cluster int
		bld := NewBuilder(cfg.Dim, total)
		if cfg.ByWriter {
			cluster = 0
			style := crng.Split("style").NormalVec(cfg.Dim, 0, cfg.WriterStd)
			for i := 0; i < total; i++ {
				class := crng.Intn(numClasses)
				x := bld.Grow(class)
				sampleAroundInto(crng, protos[class], cfg.NoiseStd, x)
				for d := range x {
					x[d] += style[d]
				}
			}
		} else {
			cluster = id % numClusters
			classes := fmnistClusters[cluster]
			foreignFrac := 0.0
			if cfg.RelaxedMax > 0 {
				lo, hi := cfg.RelaxedMin, cfg.RelaxedMax
				foreignFrac = lo + crng.Float64()*(hi-lo)
			}
			for i := 0; i < total; i++ {
				var class int
				if foreignFrac > 0 && crng.Bool(foreignFrac) {
					// Draw uniformly from the classes outside this cluster.
					for {
						class = crng.Intn(numClasses)
						if classToCluster[class] != cluster {
							break
						}
					}
				} else {
					class = classes[crng.Intn(len(classes))]
				}
				sampleAroundInto(crng, protos[class], cfg.NoiseStd, bld.Grow(class))
			}
		}
		train, test := bld.Dataset().Split(float64(cfg.TestPerClient)/float64(total), crng.Split("split"))
		fed.Clients = append(fed.Clients, &Client{ID: id, Cluster: cluster, Train: train, Test: test})
	}
	if err := fed.Validate(); err != nil {
		panic(fmt.Sprintf("dataset: generated invalid FMNIST federation: %v", err))
	}
	return fed
}

// classPrototypes draws one prototype vector per class.
func classPrototypes(rng *xrand.RNG, classes, dim int) [][]float64 {
	protos := make([][]float64, classes)
	for c := range protos {
		protos[c] = rng.NormalVec(dim, 0, 1)
	}
	return protos
}

// sampleAroundInto fills dst with prototype + N(0, std^2) noise, drawing
// the per-dimension noise in the same order as the old allocating variant so
// generated federations are byte-identical.
func sampleAroundInto(rng *xrand.RNG, proto []float64, std float64, dst []float64) {
	for i, p := range proto {
		dst[i] = p + rng.Normal(0, std)
	}
}
