package dataset

import (
	"fmt"

	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/xrand"
)

// CIFARConfig parameterizes the synthetic stand-in for the paper's
// CIFAR-100 federation (§5.1.3): 100 classes organized into 20 superclasses
// of 5 subclasses each, allocated to 94 clients with the Pachinko Allocation
// Method (PAM) — per-client Dirichlet draws over superclasses and, within a
// superclass, over its subclasses. Clients hold data from more than one
// superclass, so there is no clean client↔cluster affiliation; the cluster
// label is the majority superclass (ties broken randomly), as in the paper.
//
// The original PAM draws real CIFAR images without replacement from a finite
// pool; our generator synthesizes fresh samples, so replacement is
// irrelevant — the mixed-membership allocation structure is what matters and
// is preserved.
type CIFARConfig struct {
	// Clients defaults to the paper's 94.
	Clients int
	// Superclasses (default 20) each contain SubPerSuper (default 5)
	// subclasses; classes = Superclasses*SubPerSuper.
	Superclasses int
	SubPerSuper  int
	// TrainPerClient / TestPerClient size each client's split
	// (defaults 100/20).
	TrainPerClient int
	TestPerClient  int
	// Dim is the feature dimensionality (default 64).
	Dim int
	// RootAlpha is the symmetric Dirichlet concentration over superclasses
	// (default 0.1 — strongly non-IID, as in TensorFlow Federated's split).
	RootAlpha float64
	// LeafAlpha is the concentration over subclasses within a superclass
	// (default 10 — near-uniform within a drawn superclass).
	LeafAlpha float64
	// SuperStd scales superclass prototype spread, SubStd the subclass
	// offset from its superclass prototype, NoiseStd the per-sample noise
	// (defaults 1.0 / 0.6 / 0.6). SubStd < SuperStd makes subclasses of a
	// superclass related, like the semantic grouping in CIFAR-100.
	SuperStd float64
	SubStd   float64
	NoiseStd float64
	// Seed drives all randomness.
	Seed int64
}

func (c CIFARConfig) withDefaults() CIFARConfig {
	if c.Clients == 0 {
		c.Clients = 94
	}
	if c.Superclasses == 0 {
		c.Superclasses = 20
	}
	if c.SubPerSuper == 0 {
		c.SubPerSuper = 5
	}
	if c.TrainPerClient == 0 {
		c.TrainPerClient = 100
	}
	if c.TestPerClient == 0 {
		c.TestPerClient = 20
	}
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.RootAlpha == 0 {
		c.RootAlpha = 0.1
	}
	if c.LeafAlpha == 0 {
		c.LeafAlpha = 10
	}
	if c.SuperStd == 0 {
		c.SuperStd = 1.0
	}
	if c.SubStd == 0 {
		c.SubStd = 0.6
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.6
	}
	return c
}

// CIFAR100PAM generates the synthetic CIFAR-100 federation with
// Pachinko-style client allocation.
func CIFAR100PAM(cfg CIFARConfig) *Federation {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed).Split("cifar100")

	numClasses := cfg.Superclasses * cfg.SubPerSuper

	// Hierarchical prototypes: subclass = superclass center + offset.
	prng := rng.Split("prototypes")
	protos := make([][]float64, numClasses)
	for super := 0; super < cfg.Superclasses; super++ {
		center := prng.NormalVec(cfg.Dim, 0, cfg.SuperStd)
		for sub := 0; sub < cfg.SubPerSuper; sub++ {
			p := mathx.CloneVec(center)
			offset := prng.NormalVec(cfg.Dim, 0, cfg.SubStd)
			mathx.AddTo(p, offset)
			protos[super*cfg.SubPerSuper+sub] = p
		}
	}

	fed := &Federation{
		Name:        "cifar100",
		InputDim:    cfg.Dim,
		NumClasses:  numClasses,
		NumClusters: cfg.Superclasses,
	}

	for id := 0; id < cfg.Clients; id++ {
		crng := rng.SplitIndex("client", id)

		// Pachinko allocation: client-specific Dirichlet over superclasses,
		// then one Dirichlet per superclass over its subclasses.
		rootDist := crng.Dirichlet(cfg.RootAlpha, cfg.Superclasses)
		leafDists := make([][]float64, cfg.Superclasses)

		total := cfg.TrainPerClient + cfg.TestPerClient
		bld := NewBuilder(cfg.Dim, total)
		superCounts := make([]int, cfg.Superclasses)
		for i := 0; i < total; i++ {
			super := crng.WeightedChoice(rootDist)
			if leafDists[super] == nil {
				leafDists[super] = crng.Dirichlet(cfg.LeafAlpha, cfg.SubPerSuper)
			}
			sub := crng.WeightedChoice(leafDists[super])
			class := super*cfg.SubPerSuper + sub
			sampleAroundInto(crng, protos[class], cfg.NoiseStd, bld.Grow(class))
			superCounts[super]++
		}

		// Cluster label: the majority superclass, ties broken randomly.
		cluster := majorityWithRandomTies(superCounts, crng.Split("tie"))
		train, test := bld.Dataset().Split(float64(cfg.TestPerClient)/float64(total), crng.Split("split"))
		fed.Clients = append(fed.Clients, &Client{ID: id, Cluster: cluster, Train: train, Test: test})
	}
	if err := fed.Validate(); err != nil {
		panic(fmt.Sprintf("dataset: generated invalid CIFAR federation: %v", err))
	}
	return fed
}

// majorityWithRandomTies returns the index of the maximum count, choosing
// uniformly among tied maxima.
func majorityWithRandomTies(counts []int, rng *xrand.RNG) int {
	best := -1
	var ties []int
	for i, c := range counts {
		switch {
		case best == -1 || c > counts[best]:
			best = i
			ties = ties[:0]
			ties = append(ties, i)
		case c == counts[best]:
			ties = append(ties, i)
		}
	}
	if len(ties) > 1 {
		return ties[rng.Intn(len(ties))]
	}
	return best
}
