package lint

import (
	"go/ast"
	"go/types"
)

// Deprecated flags internal callers of the pre-engine entry points that PR 2
// and PR 4 kept only as public-compat wrappers. New internal code must drive
// engines through specdag.Run(ctx, engine, opts...) — the deprecated paths
// cannot be canceled, observed, or checkpointed, and (for Dataset.XY) copy
// per-sample headers the flat layout exists to avoid. Uses inside the
// declaring package (the wrapper bodies and compat shims themselves) and in
// _test.go files (equivalence tests pin the wrappers' numerics on purpose)
// are exempt.
var Deprecated = &Analyzer{
	Name: "deprecated",
	Doc: "forbid internal use of deprecated pre-engine entry points " +
		"(Simulation.Run, core.RunAsync, fl.Run, fl.RunGossip, Dataset.XY, " +
		"Config.DisableEvalMemo, specdag.RunAsync/RunFederated); use the unified " +
		"run API instead",
	Run: runDeprecated,
}

// deprecatedEntry identifies one deprecated object by declaring-package path
// suffix, receiver type name (empty for package-level functions and fields),
// and name.
type deprecatedEntry struct {
	pkg     string // path suffix of the declaring package
	recv    string // receiver type for methods, "" otherwise
	name    string
	instead string // the sanctioned replacement, quoted in the message
}

// deprecatedEntries is the audited list of pre-engine entry points. Keep it
// in sync with the Deprecated: doc markers on the declarations; the
// analyzer cannot read those markers itself because dependency packages
// arrive as export data, which carries no doc comments.
var deprecatedEntries = []deprecatedEntry{
	{"internal/core", "Simulation", "Run", "specdag.Run(ctx, sim) / engine.Run"},
	{"internal/core", "", "RunAsync", "specdag.Run(ctx, NewAsyncSimulation(...))"},
	{"internal/core", "", "DisableEvalMemo", "Config.EvalScope = EvalScopeNone"},
	{"internal/fl", "", "Run", "specdag.Run(ctx, fl.NewFederated(...))"},
	{"internal/fl", "", "RunGossip", "specdag.Run(ctx, fl.NewGossip(...))"},
	{"internal/dataset", "Dataset", "XY", "the flat Dataset.X matrix views"},
	{"specdag", "", "RunAsync", "specdag.Run(ctx, engine, opts...)"},
	{"specdag", "", "RunFederated", "specdag.Run(ctx, engine, opts...)"},
}

func runDeprecated(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			// Deprecated objects are reached either through a selector
			// (sim.Run(), cfg.DisableEvalMemo) or as a keyed field in a
			// composite literal (Config{DisableEvalMemo: true}).
			var id *ast.Ident
			switch n := n.(type) {
			case *ast.SelectorExpr:
				id = n.Sel
			case *ast.KeyValueExpr:
				var ok bool
				if id, ok = n.Key.(*ast.Ident); !ok {
					return true
				}
			default:
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg() == pass.Pkg {
				return true // same-package uses are the compat shims themselves
			}
			if e := lookupDeprecated(obj); e != nil {
				pass.Reportf(id.Pos(),
					"%s is a deprecated pre-engine entry point; use %s instead", selName(e), e.instead)
			}
			return true
		})
	}
	return nil
}

func selName(e *deprecatedEntry) string {
	if e.recv != "" {
		return e.recv + "." + e.name
	}
	return lastPathElem(e.pkg) + "." + e.name
}

func lastPathElem(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

// lookupDeprecated matches obj against the deprecated table by declaring
// package, receiver, and name.
func lookupDeprecated(obj types.Object) *deprecatedEntry {
	recv := ""
	switch o := obj.(type) {
	case *types.Func:
		if r := o.Type().(*types.Signature).Recv(); r != nil {
			recv = receiverTypeName(r.Type())
		}
	case *types.Var:
		if !o.IsField() {
			return nil
		}
	default:
		return nil
	}
	for i := range deprecatedEntries {
		e := &deprecatedEntries[i]
		if obj.Name() == e.name && e.recv == recv && pathHasSuffix(obj.Pkg().Path(), e.pkg) {
			return e
		}
	}
	return nil
}

func receiverTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
