package lint

import (
	"go/ast"
)

// Budget enforces the goroutine-accounting contract from PR 2: all fan-out
// flows through internal/par, whose Budget caps live helper goroutines
// module-wide (nested ForEachIn/DoIn callers run inline when the budget is
// exhausted, so the bound holds across engine, sweep, and DAG layers). A
// naked go statement anywhere else escapes that accounting and reintroduces
// the ~6×NumCPU oversubscription the budget was built to end — or worse, an
// unbounded leak under the multi-run schedulers the roadmap adds next.
var Budget = &Analyzer{
	Name: "budget",
	Doc: "forbid naked go statements outside internal/par; spawn through the shared " +
		"par.Budget (ForEachIn/ForEachErrIn/DoIn) so goroutine fan-out stays bounded",
	Run: runBudget,
}

func runBudget(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/par") {
		return nil // the one package allowed to spawn: it implements the budget
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"naked go statement outside internal/par: spawn through the shared par.Budget (par.ForEachIn/ForEachErrIn/DoIn) so goroutine fan-out stays within the accounting bound")
			}
			return true
		})
	}
	return nil
}
