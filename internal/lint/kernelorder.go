package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// KernelOrder guards the float-determinism contract of internal/mathx: the
// default backend documents its accumulation order as API (kernels.go), so
// every engine result is bit-identical across worker counts, batch shapes,
// and releases. math.FMA contracts a multiply-add into one rounding step and
// float32 arithmetic rounds to a different lattice entirely — either one in
// a default-backend kernel silently changes every golden metric. The
// deliberate-numerics fast tier planned by the roadmap relaxes this under a
// fastmath build tag, which this analyzer exempts.
var KernelOrder = &Analyzer{
	Name: "kernelorder",
	Doc: "forbid math.FMA and float32 arithmetic in the default mathx backend, " +
		"whose accumulation order is documented API; relaxed kernels belong behind " +
		"the fastmath build tag",
	Run: runKernelOrder,
}

// arithmeticAssignOps are the compound assignments that perform float
// arithmetic on their operands.
var arithmeticAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

func runKernelOrder(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.Path(), "internal/mathx") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) || hasFastmathTag(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if obj := pass.TypesInfo.Uses[n.Sel]; obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "math" && obj.Name() == "FMA" {
					pass.Reportf(n.Pos(),
						"math.FMA in the default mathx backend: fused rounding changes the documented accumulation order; use separate multiply and add, or move the kernel behind the fastmath build tag")
				}
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					if isFloat32(pass.TypeOf(n.X)) || isFloat32(pass.TypeOf(n.Y)) {
						pass.Reportf(n.Pos(),
							"float32 arithmetic in the default mathx backend: kernels accumulate in float64 as documented API; use float64, or move the kernel behind the fastmath build tag")
					}
				}
			case *ast.AssignStmt:
				if arithmeticAssignOps[n.Tok] && len(n.Lhs) == 1 && isFloat32(pass.TypeOf(n.Lhs[0])) {
					pass.Reportf(n.Pos(),
						"float32 arithmetic in the default mathx backend: kernels accumulate in float64 as documented API; use float64, or move the kernel behind the fastmath build tag")
				}
			}
			return true
		})
	}
	return nil
}

func isFloat32(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float32
}

// hasFastmathTag reports whether the file carries a //go:build constraint
// mentioning the fastmath tag — the opt-in relaxed-numerics tier, which
// gates against its own golden metrics instead of the default backend's.
func hasFastmathTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		// Build constraints must precede the package clause.
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build") && strings.Contains(c.Text, "fastmath") {
				return true
			}
		}
	}
	return false
}
