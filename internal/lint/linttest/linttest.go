// Package linttest is a self-contained analogue of
// golang.org/x/tools/go/analysis/analysistest for the speclint suite: it
// loads fixture packages from a testdata/src tree, type-checks them, runs
// one analyzer through the shared lint.Check entry point (so suppression
// directives and the directive audit behave exactly as under go vet), and
// compares the diagnostics against `// want "regexp"` expectations embedded
// in the fixtures.
//
// Fixture import paths are directory paths relative to testdata/src, so a
// fixture that must count as a deterministic package simply lives at a path
// ending in one — e.g. testdata/src/detrand/internal/core. Imports between
// fixtures resolve within the tree; all other imports (the standard
// library) resolve through `go list -export`, which works offline against
// the local toolchain.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/specdag/specdag/internal/lint"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package below dir/src, applies the analyzer, and
// reports mismatches between its diagnostics and the fixtures' // want
// expectations as test errors.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		src:  filepath.Join(dir, "src"),
		fset: token.NewFileSet(),
		pkgs: map[string]*loadedPkg{},
	}
	for _, path := range pkgPaths {
		p, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := lint.Check(l.fset, p.files, p.pkg, p.info, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("checking fixture %s: %v", path, err)
		}
		checkExpectations(t, l.fset, p.files, diags)
	}
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	src     string
	fset    *token.FileSet
	pkgs    map[string]*loadedPkg
	exports map[string]string // import path -> export data file (go list -export)
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle marker
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: importerFunc(l.importPkg)}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// importPkg resolves an import from a fixture: fixture-local paths load
// recursively from source, anything else comes from the toolchain's export
// data.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	imp := importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := l.exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return imp.Import(path)
}

// exportFile asks the go command for the compiled export data of a
// non-fixture package, caching results across imports.
func (l *loader) exportFile(path string) (string, error) {
	if f, ok := l.exports[path]; ok {
		return f, nil
	}
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return "", fmt.Errorf("go list -export %s: %v: %s", path, err, ee.Stderr)
		}
		return "", fmt.Errorf("go list -export %s: %v", path, err)
	}
	file := strings.TrimSpace(string(out))
	if file == "" {
		return "", fmt.Errorf("no export data for %s", path)
	}
	if l.exports == nil {
		l.exports = map[string]string{}
	}
	l.exports[path] = file
	return file, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one parsed `// want "re"` marker.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, lit := range splitLiterals(m[1]) {
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want literal %s: %v", posn, lit, err)
						continue
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, pattern, err)
						continue
					}
					out = append(out, &expectation{file: posn.Filename, line: posn.Line, re: re, text: pattern})
				}
			}
		}
	}
	return out
}

// splitLiterals extracts the Go string literals ("..." or `...`) from the
// tail of a want comment.
func splitLiterals(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return out
			}
			out = append(out, s[:end+1])
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[:end+2])
			s = s[end+2:]
		default:
			return out
		}
	}
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	wants := collectExpectations(t, fset, files)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", posn, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}
