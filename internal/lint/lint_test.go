package lint_test

import (
	"testing"

	"github.com/specdag/specdag/internal/lint"
	"github.com/specdag/specdag/internal/lint/linttest"
)

// Each analyzer's fixture tree covers positive hits, clean code, and
// audited suppressions; the harness also exercises the suppression
// machinery itself, because lint.Check is the same entry point the vettool
// uses.

func TestDetrand(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Detrand,
		"detrand/internal/core", "detrand/internal/faults", "detrand/outside")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.MapOrder,
		"maporder/internal/core")
}

func TestBudget(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Budget,
		"budget/app", "budget/internal/par", "budget/internal/serve",
		"budget/internal/engine")
}

func TestKernelOrder(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.KernelOrder,
		"kernelorder/internal/mathx")
}

func TestDeprecated(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Deprecated,
		"deprecated/app", "deprecated/internal/core")
}

// TestDirectiveAudit pins the directive diagnostics: malformed verbs,
// unknown analyzers, missing reasons, and stale suppressions are findings.
func TestDirectiveAudit(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Budget, "directives/app")
}

// TestDeterministicPkgSet pins the scope of the determinism contract so a
// rename or addition is a conscious decision here, not an accident.
func TestDeterministicPkgSet(t *testing.T) {
	for _, path := range []string{
		"github.com/specdag/specdag/internal/core",
		"github.com/specdag/specdag/internal/dag",
		"github.com/specdag/specdag/internal/faults",
		"github.com/specdag/specdag/internal/nn",
		"github.com/specdag/specdag/internal/mathx",
		"github.com/specdag/specdag/internal/tipselect",
		"github.com/specdag/specdag/internal/fl",
		"github.com/specdag/specdag/internal/engine",
		"github.com/specdag/specdag/internal/dataset",
		"github.com/specdag/specdag/internal/sim",
	} {
		if !lint.IsDeterministicPkg(path) {
			t.Errorf("IsDeterministicPkg(%q) = false, want true", path)
		}
	}
	for _, path := range []string{
		"github.com/specdag/specdag/internal/par",
		"github.com/specdag/specdag/internal/xrand",
		"github.com/specdag/specdag/internal/profiling",
		"github.com/specdag/specdag/internal/lint",
		"github.com/specdag/specdag/cmd/specdag",
		"github.com/specdag/specdag/internal/coreutils", // suffix must respect segment boundaries
		// The serving subsystem is the transport boundary: wall clock and
		// supervised goroutines are its job (see deterministicPkgs' doc).
		// Its exclusion is policy, pinned here.
		"github.com/specdag/specdag/internal/serve",
		"github.com/specdag/specdag/internal/wire",
		"github.com/specdag/specdag/cmd/specdagd",
	} {
		if lint.IsDeterministicPkg(path) {
			t.Errorf("IsDeterministicPkg(%q) = true, want false", path)
		}
	}
}
