// Package lint implements speclint: a suite of static analyzers that move
// this repository's determinism and concurrency contracts from test-time to
// compile-time. The contracts themselves predate the linter — bit-identical
// results for any worker count, RNG streams as pure seed splits, goroutine
// fan-out bounded by par.Budget, accumulation order as documented API, and
// byte-stable checkpoint codecs — but until now they were enforced only by
// the invariance and resume-equivalence suites, which a new code path can
// silently bypass.
//
// The five analyzers (see All):
//
//	detrand     — no ambient randomness or wall clock in deterministic packages
//	maporder    — no order-sensitive iteration over maps in deterministic packages
//	budget      — no naked go statements outside internal/par
//	kernelorder — no math.FMA or float32 arithmetic in the default mathx backend
//	deprecated  — no internal callers of deprecated pre-engine entry points
//
// The suite runs as a vettool (cmd/speclint) under "go vet -vettool=", using
// a small local reimplementation of the golang.org/x/tools/go/analysis
// surface: the build environment is hermetic (no module downloads), so the
// framework is written against the standard library only. Analyzers receive
// a type-checked package and report position-tagged diagnostics; the runner
// applies suppression directives and audits them.
//
// # Suppressions
//
// A finding can be suppressed with a directive comment on the offending line
// or on the line directly above it:
//
//	//speclint:allow <analyzer> <reason>
//
// The reason is mandatory and should say why the contract does not apply
// (not what the code does). Directives are audited by the runner itself:
// a directive with a missing reason, an unknown analyzer name, or one that
// suppresses no diagnostic is reported as a diagnostic in its own right, so
// suppressions cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one speclint check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer (Name/Doc/Run over a Pass) so the
// checks could migrate to the upstream framework without rewriting, but it
// is self-contained: no facts, no sub-results, no dependencies between
// analyzers.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //speclint:allow directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description of the contract the analyzer
	// enforces.
	Doc string
	// Run inspects the package and reports findings through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with a single type-checked package to
// inspect.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos. The message should name the violated
// contract and the sanctioned alternative.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by the identifier, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Test files may violate the runtime contracts on purpose (stress tests
// spawn raw goroutines; equivalence tests call deprecated entry points to
// pin their numerics), so most analyzers skip them.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// deterministicPkgs are the final path elements of packages whose results
// must be a pure function of (config, seed): everything that executes
// between "construct an engine" and "read its results". Packages outside
// this set (CLIs, profiling, the par runtime, xrand itself) may touch the
// wall clock and ambient randomness.
//
// The serving subsystem is deliberately absent: internal/serve and
// internal/wire sit at the transport boundary, where wall-clock time
// (status reporting, reconnect backoff, shutdown grace) and long-lived
// supervisor goroutines are the job, not a contract violation. The engines
// they host and the event payloads they carry stay inside the deterministic
// set — serving a run changes none of its numerics, which the serve
// package's round-trip equivalence tests pin. The budget analyzer still
// applies there: serve's run supervisors are audited //speclint:allow
// sites, not an exempt package (see TestDeterministicPkgSet and the
// budget/internal/serve fixture).
var deterministicPkgs = []string{
	"internal/core",
	"internal/dag",
	"internal/faults",
	"internal/nn",
	"internal/mathx",
	"internal/tipselect",
	"internal/fl",
	"internal/engine",
	"internal/dataset",
	"internal/sim",
}

// pathHasSuffix reports whether path ends with the given slash-separated
// suffix on a path-segment boundary ("x/internal/core" matches
// "internal/core"; "x/internal/coreutils" does not). Matching by suffix
// rather than full path keeps the analyzers testable against fixture
// packages whose import paths mirror the real layout under a test prefix.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// IsDeterministicPkg reports whether the import path names one of the
// packages bound by the determinism contract.
func IsDeterministicPkg(path string) bool {
	for _, p := range deterministicPkgs {
		if pathHasSuffix(path, p) {
			return true
		}
	}
	return false
}

// All returns the full speclint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, MapOrder, Budget, KernelOrder, Deprecated}
}

// directivePrefix introduces a speclint control comment. gofmt preserves
// the no-space directive form (like //go:build and //nolint).
const directivePrefix = "//speclint:"

// A directive is one parsed //speclint:allow comment.
type directive struct {
	pos       token.Pos
	line      int
	analyzer  string
	reason    string
	malformed string // non-empty: why the directive is invalid
	used      bool
}

// parseDirectives extracts every speclint directive from a file, validating
// verb, analyzer name, and the mandatory reason.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			d := &directive{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			// A nested "//" ends the directive (it introduces a trailing
			// comment, e.g. the // want markers in the fixture suites).
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			rest = strings.TrimSpace(rest)
			verb, args, _ := strings.Cut(rest, " ")
			if verb != "allow" {
				d.malformed = fmt.Sprintf("unknown speclint verb %q (only //speclint:allow is defined)", verb)
				out = append(out, d)
				continue
			}
			name, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
			reason = strings.TrimSpace(reason)
			switch {
			case name == "":
				d.malformed = "//speclint:allow needs an analyzer name and a reason"
			case !known[name]:
				d.malformed = fmt.Sprintf("//speclint:allow names unknown analyzer %q", name)
			case reason == "":
				d.malformed = fmt.Sprintf("//speclint:allow %s needs a reason: say why the contract does not apply here", name)
			default:
				d.analyzer = name
				d.reason = reason
			}
			out = append(out, d)
		}
	}
	return out
}

// Check runs every analyzer over one type-checked package, applies the
// //speclint:allow directives, audits them, and returns the surviving
// diagnostics sorted by position. It is the single entry point shared by
// the vettool driver and the analysistest-style harness.
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var directives []*directive
	for _, f := range files {
		directives = append(directives, parseDirectives(fset, f, known)...)
	}
	// Index valid directives by the lines they govern: their own line and
	// the line below (the "directive on the line above" style).
	byLine := make(map[string]map[int]*directive)
	for _, d := range directives {
		if d.malformed != "" {
			continue
		}
		file := fset.Position(d.pos).Filename
		if byLine[file] == nil {
			byLine[file] = make(map[int]*directive)
		}
		byLine[file][d.line] = d
	}

	var kept []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report: func(diag Diagnostic) {
				posn := fset.Position(diag.Pos)
				if m := byLine[posn.Filename]; m != nil {
					for _, l := range []int{posn.Line, posn.Line - 1} {
						if d := m[l]; d != nil && d.analyzer == diag.Analyzer {
							d.used = true
							return
						}
					}
				}
				kept = append(kept, diag)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("speclint: analyzer %s: %w", a.Name, err)
		}
	}

	// Audit the directives themselves: malformed ones and ones that
	// suppress nothing are findings. Stale suppressions are how audited
	// exceptions silently outlive the code they excused.
	for _, d := range directives {
		switch {
		case d.malformed != "":
			kept = append(kept, Diagnostic{Analyzer: "speclint", Pos: d.pos, Message: d.malformed})
		case !d.used:
			kept = append(kept, Diagnostic{
				Analyzer: "speclint",
				Pos:      d.pos,
				Message:  fmt.Sprintf("//speclint:allow %s suppresses no diagnostic; delete the stale directive", d.analyzer),
			})
		}
	}

	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}
