package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// unitConfig is the JSON configuration the go command writes for a vettool
// invocation (one file per package, suffixed .cfg). The field set mirrors
// the contract documented in golang.org/x/tools/go/analysis/unitchecker;
// only the fields this driver consumes are listed.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitFile executes the speclint suite for one package described by a go
// vet .cfg file, printing diagnostics to w in the standard
// file:line:col: message form. It returns the process exit code: 0 clean,
// 1 driver/type-check failure, 2 diagnostics reported — the unitchecker
// convention the go command expects.
func RunUnitFile(cfgFile string, analyzers []*Analyzer, w io.Writer) int {
	cfg, err := readUnitConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(w, "speclint: %v\n", err)
		return 1
	}
	// The go command schedules a facts-only pass over every dependency.
	// speclint uses no cross-package facts, so dependency passes only need
	// to produce their (empty) output file.
	if cfg.VetxOnly {
		if err := writeVetx(cfg); err != nil {
			fmt.Fprintf(w, "speclint: %v\n", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(w, "speclint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, compilerOrGC(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	tcfg := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compilerOrGC(cfg.Compiler), build.Default.GOARCH),
	}
	info := newTypesInfo()
	pkg, err := tcfg.Check(normalizeImportPath(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "speclint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := Check(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintf(w, "%v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if err := writeVetx(cfg); err != nil {
		fmt.Fprintf(w, "speclint: %v\n", err)
		return 1
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readUnitConfig(cfgFile string) (*unitConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}
	return cfg, nil
}

// writeVetx writes the (empty) facts output the go command caches for this
// package. The file must exist even when speclint has nothing to record.
func writeVetx(cfg *unitConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, nil, 0o666)
}

func compilerOrGC(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

// normalizeImportPath strips the " [pkg.test]" variant suffix the go
// command appends for test builds, so the path-based package predicates
// treat a package and its internal-test variant identically.
func normalizeImportPath(p string) string {
	if i := strings.IndexByte(p, ' '); i >= 0 {
		return p[:i]
	}
	return p
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
