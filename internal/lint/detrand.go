package lint

import (
	"go/ast"
)

// Detrand enforces the seed-split randomness contract: inside deterministic
// packages, every random draw must come from an internal/xrand stream
// (derived from the root seed by Split/SplitIndex) and nothing may read the
// wall clock. A single math/rand global call or time.Now comparison is
// enough to make two runs with the same seed diverge — exactly the class of
// bug the worker-count-invariance and resume-equivalence suites exist to
// catch, surfaced here at vet time instead.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid ambient randomness (math/rand, crypto/rand) and wall-clock reads " +
		"(time.Now and friends) in deterministic packages; use internal/xrand seed " +
		"splits and internal/profiling instead",
	Run: runDetrand,
}

// wallClockFuncs are the time-package functions that observe or depend on
// the wall clock or scheduler timing. Pure conversions and constructors
// (time.Duration arithmetic, time.Unix on stored values) stay legal: they
// are functions of their inputs.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func runDetrand(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "math/rand", "math/rand/v2", "crypto/rand":
				pass.Reportf(sel.Pos(),
					"%s.%s in deterministic package %s: all randomness must come from internal/xrand seed splits",
					obj.Pkg().Path(), obj.Name(), pass.Pkg.Name())
			case "time":
				if wallClockFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s in deterministic package %s: results must not depend on the wall clock; route measurements through internal/profiling",
						obj.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}
