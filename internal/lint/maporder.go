package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// MapOrder guards against nondeterministic map iteration in deterministic
// packages. Go randomizes map range order per run, so a map-ordered loop in
// an encode path (checkpoint codecs, history assembly, metric reduction) is
// a latent byte-stability bug that no fixed-seed test reliably catches —
// it may pass a thousand runs and fail the benchgate on the next.
//
// A range over a map is accepted without annotation when the loop is
// provably order-insensitive, meaning every statement in its body is one of:
//
//   - delete(m, k)
//   - an idempotent or per-key-distinct indexed write (m2[k] = pure-expr)
//   - a commutative integer/bitset accumulation (+=, -=, ++, --, |=, &=, ^=
//     on integer types — never on floats, whose addition is order-sensitive)
//   - a min/max update (if a < b { b = a })
//   - an append to a slice that the enclosing function sorts after the loop
//     (the collect-then-sort idiom used throughout internal/dag)
//   - an if statement with a pure condition whose branches are themselves
//     order-insensitive, or a continue
//
// Everything else needs either a deterministic iteration order (sort the
// keys first) or an audited //speclint:allow maporder directive.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range over a map in deterministic packages unless the loop body is " +
		"provably order-insensitive; map order is randomized per run, so an " +
		"order-sensitive loop breaks byte-stable results",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		// Walk with an explicit stack of enclosing function bodies so the
		// collect-then-sort check can scan the statements after the loop.
		var funcs []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
				ast.Inspect(funcBody(n), walk)
				funcs = funcs[:len(funcs)-1]
				return false
			case *ast.RangeStmt:
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				var enclosing ast.Node
				if len(funcs) > 0 {
					enclosing = funcs[len(funcs)-1]
				}
				if !orderInsensitiveLoop(pass, n, enclosing) {
					pass.Reportf(n.Pos(),
						"range over map has nondeterministic order and the loop body is not provably order-insensitive; iterate over sorted keys, or annotate with //speclint:allow maporder <reason>")
				}
			}
			return true
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				funcs = append(funcs, fd)
				ast.Inspect(fd.Body, walk)
				funcs = funcs[:len(funcs)-1]
			}
		}
	}
	return nil
}

func funcBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// orderInsensitiveLoop reports whether the range statement's result cannot
// depend on map iteration order under the recognized patterns above.
func orderInsensitiveLoop(pass *Pass, rs *ast.RangeStmt, enclosing ast.Node) bool {
	env := &loopEnv{pass: pass, loopVars: map[types.Object]bool{}}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				env.loopVars[obj] = true
				if v == rs.Key {
					env.keyVar = obj
				}
			}
		}
	}
	if enclosing != nil {
		env.sortedAfter = sortedSliceIdents(pass, funcBody(enclosing), rs.End())
	}
	for _, s := range rs.Body.List {
		if !env.stmtInsensitive(s) {
			return false
		}
	}
	return true
}

type loopEnv struct {
	pass     *Pass
	keyVar   types.Object
	loopVars map[types.Object]bool
	// sortedAfter holds slice variables passed to a sort call after the
	// loop in the enclosing function: appends to them are order-insensitive
	// because the sort erases insertion order.
	sortedAfter map[types.Object]bool
}

func (e *loopEnv) stmtInsensitive(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return e.assignInsensitive(s)
	case *ast.IncDecStmt:
		return isIntegerType(e.pass.TypeOf(s.X))
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := e.pass.TypesInfo.Uses[id].(*types.Builtin)
		return ok && b.Name() == "delete"
	case *ast.IfStmt:
		if s.Init != nil || !e.pureExpr(s.Cond) {
			return false
		}
		if e.isMinMaxUpdate(s) {
			return true
		}
		for _, b := range s.Body.List {
			if !e.stmtInsensitive(b) {
				return false
			}
		}
		if s.Else != nil {
			return e.stmtInsensitive(s.Else)
		}
		return true
	case *ast.BlockStmt:
		for _, b := range s.List {
			if !e.stmtInsensitive(b) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		// break/goto make the set of visited keys order-dependent.
		return s.Tok == token.CONTINUE
	}
	return false
}

// assignInsensitive recognizes the commutative/idempotent assignment forms.
func (e *loopEnv) assignInsensitive(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative and associative only over integers: float addition
		// rounds per step, so its result depends on iteration order.
		return len(s.Lhs) == 1 && isIntegerType(e.pass.TypeOf(s.Lhs[0])) && e.pureExpr(s.Rhs[0])
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		// x = append(x, pure...) where x is sorted after the loop.
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := e.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					target, ok := lhs.(*ast.Ident)
					if !ok || len(call.Args) == 0 || !sameIdent(e.pass, call.Args[0], target) {
						return false
					}
					obj := e.pass.TypesInfo.ObjectOf(target)
					if obj == nil || !e.sortedAfter[obj] {
						return false
					}
					for _, a := range call.Args[1:] {
						if !e.pureExpr(a) {
							return false
						}
					}
					return true
				}
			}
		}
		// dst[i] = pure-expr: per-key-distinct when the index involves the
		// key variable (distinct keys write distinct slots); idempotent when
		// the written value involves no loop variable (collisions overwrite
		// with the same value).
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if !e.pureExpr(ix.Index) || !e.pureExpr(rhs) {
				return false
			}
			if e.keyVar != nil && e.refersTo(ix.Index, e.keyVar) {
				return true
			}
			return !e.refersToAnyLoopVar(rhs)
		}
	}
	return false
}

// isMinMaxUpdate matches `if a OP b { b = a }` where OP is an ordering
// comparison between exactly the assignment's two operands: b converges to
// the extremum of the a's regardless of visit order.
func (e *loopEnv) isMinMaxUpdate(s *ast.IfStmt) bool {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	if len(s.Body.List) != 1 {
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, rhs := exprString(asg.Lhs[0]), exprString(asg.Rhs[0])
	x, y := exprString(cond.X), exprString(cond.Y)
	return (lhs == x && rhs == y) || (lhs == y && rhs == x)
}

// pureExpr reports whether evaluating the expression has no side effects
// and no dependence on anything a loop iteration could mutate indirectly:
// identifiers, literals, field/index reads, arithmetic, len/cap, and
// composite literals only.
func (e *loopEnv) pureExpr(x ast.Expr) bool {
	pure := true
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case nil, *ast.Ident, *ast.BasicLit, *ast.SelectorExpr, *ast.IndexExpr,
			*ast.ParenExpr, *ast.BinaryExpr, *ast.StarExpr, *ast.CompositeLit,
			*ast.KeyValueExpr, *ast.ArrayType, *ast.MapType:
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // channel receive: a side effect
				pure = false
			}
			return pure
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := e.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "min", "max":
						return true
					}
				}
				// Type conversions (float64(x), ID(i)) are pure.
				if _, ok := e.pass.TypesInfo.Uses[id].(*types.TypeName); ok {
					return true
				}
			}
			pure = false
			return false
		default:
			pure = false
			return false
		}
	})
	return pure
}

func (e *loopEnv) refersTo(x ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && e.pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func (e *loopEnv) refersToAnyLoopVar(x ast.Expr) bool {
	for obj := range e.loopVars {
		if e.refersTo(x, obj) {
			return true
		}
	}
	return false
}

// sortedSliceIdents scans the function body for sort calls positioned after
// the loop and returns the objects of the slice variables they sort.
func sortedSliceIdents(pass *Pass, body ast.Node, after token.Pos) map[types.Object]bool {
	out := map[types.Object]bool{}
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok {
			if o := pass.TypesInfo.ObjectOf(arg); o != nil {
				out[o] = true
			}
		}
		return true
	})
	return out
}

func sameIdent(pass *Pass, a ast.Expr, b *ast.Ident) bool {
	ai, ok := a.(*ast.Ident)
	if !ok {
		return false
	}
	ao, bo := pass.TypesInfo.ObjectOf(ai), pass.TypesInfo.ObjectOf(b)
	return ao != nil && ao == bo
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func exprString(x ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), x)
	return buf.String()
}
