//go:build fastmath

// The deliberate-numerics fast tier relaxes the accumulation-order contract
// behind the fastmath build tag and gates against its own golden metrics;
// the analyzer must not flag it.
package mathx

import "math"

func fusedFast(a, b, c float64) float64 {
	return math.FMA(a, b, c)
}

func narrowDotFast(xs, ys []float32) float32 {
	var acc float32
	for i := range xs {
		acc += xs[i] * ys[i]
	}
	return acc
}
