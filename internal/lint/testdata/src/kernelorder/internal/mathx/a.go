// Package mathx is a fixture standing in for the default kernel backend,
// whose accumulation order is documented API.
package mathx

import "math"

func fused(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want `math\.FMA in the default mathx backend`
}

func narrowDot(xs, ys []float32) float32 {
	var acc float32
	for i := range xs {
		acc += xs[i] * ys[i] // want `float32 arithmetic in the default mathx backend` `float32 arithmetic in the default mathx backend`
	}
	return acc
}

func narrowScale(x, y float32) float32 {
	return x * y // want `float32 arithmetic in the default mathx backend`
}

// wideDot is the sanctioned form: float64 accumulation in documented order.
func wideDot(xs, ys []float64) float64 {
	acc := 0.0
	for i := range xs {
		acc += xs[i] * ys[i]
	}
	return acc
}

// float32 conversion at an API boundary is not arithmetic.
func narrowResult(x float64) float32 {
	return float32(x)
}

func audited(x, y float32) float32 {
	return x * y //speclint:allow kernelorder fixture demonstrating an audited suppression
}
