// Package app exercises the directive audit: malformed and stale
// suppressions are findings in their own right.
package app

//speclint:frobnicate // want `unknown speclint verb "frobnicate"`

//speclint:allow nosuch because reasons // want `names unknown analyzer "nosuch"`

//speclint:allow budget // want `needs a reason`

//speclint:allow // want `needs an analyzer name and a reason`

//speclint:allow budget this line suppresses nothing // want `suppresses no diagnostic; delete the stale directive`

func quiet() int { return 0 }
