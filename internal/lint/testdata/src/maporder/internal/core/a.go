// Package core is a fixture standing in for a deterministic package: map
// iteration order must not be observable in results.
package core

import "sort"

// encodeOrderSensitive writes map entries in iteration order — the latent
// checkpoint-nondeterminism bug the analyzer exists for.
func encodeOrderSensitive(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m { // want `range over map has nondeterministic order`
		out = append(out, v)
	}
	return out
}

// floatAccumulation is order-sensitive: float addition rounds per step.
func floatAccumulation(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over map has nondeterministic order`
		total += v
	}
	return total
}

// earlyExit makes the visited-key set order-dependent.
func earlyExit(m map[int]bool) int {
	n := 0
	for range m { // want `range over map has nondeterministic order`
		n++
		if n > 3 {
			break
		}
	}
	return n
}

// collectThenSort is the sanctioned idiom: the sort erases insertion order.
func collectThenSort(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// guardedCollectThenSort mirrors dag.SampleAtDepth: a pure guard around the
// append keeps the loop order-insensitive.
func guardedCollectThenSort(m map[int]int, lo, hi int) []int {
	var out []int
	for id, depth := range m {
		if depth >= lo && depth <= hi {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// intCounter accumulates over the integers, which commute exactly.
func intCounter(m map[int]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n += v
		}
	}
	return n
}

// maxUpdate converges to the extremum in any visit order.
func maxUpdate(m map[int]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// keyedWrites land on per-key-distinct slots; idempotentWrites overwrite
// collisions with the same constant.
func keyedWrites(src map[int]int) (map[int]int, map[int]bool) {
	dst := make(map[int]int, len(src))
	set := make(map[int]bool, len(src))
	for k, v := range src {
		dst[k] = v
		set[v] = true
	}
	return dst, set
}

// pruning deletes as it goes: delete is order-insensitive.
func pruning(m map[int]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// sliceIteration is ordered by construction; the analyzer must stay quiet.
func sliceIteration(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}

// audited keeps an order-sensitive loop behind an audited suppression.
func audited(m map[int]float64) float64 {
	total := 0.0
	//speclint:allow maporder fixture demonstrating an audited suppression
	for _, v := range m {
		total += v
	}
	return total
}
