// Package outside is not a deterministic package: ambient randomness and
// the wall clock are allowed (CLIs, profiling, the par runtime).
package outside

import (
	"math/rand"
	"time"
)

func allowedHere() (int, time.Time) {
	return rand.Intn(10), time.Now()
}
