// Package core is a fixture standing in for a deterministic package (its
// import path ends in internal/core).
package core

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func ambientRandomness() int {
	return rand.Intn(10) // want `math/rand\.Intn in deterministic package core: all randomness must come from internal/xrand seed splits`
}

func ambientSource() *rand.Rand { // want `math/rand\.Rand in deterministic package core`
	src := rand.NewSource(1) // want `math/rand\.NewSource in deterministic package core`
	return rand.New(src)     // want `math/rand\.New in deterministic package core`
}

func cryptoRandomness(buf []byte) {
	crand.Read(buf) // want `crypto/rand\.Read in deterministic package core`
}

func wallClock() time.Duration {
	start := time.Now()          // want `time\.Now in deterministic package core: results must not depend on the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep in deterministic package core`
	return time.Since(start)     // want `time\.Since in deterministic package core`
}

// durationArithmetic is clean: time.Duration values are pure data.
func durationArithmetic(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}

// audited keeps a wall-clock read behind an audited suppression.
func audited() time.Time {
	return time.Now() //speclint:allow detrand fixture demonstrating an audited suppression
}
