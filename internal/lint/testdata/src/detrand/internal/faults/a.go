// Package faults is a fixture standing in for the fault-injection package
// (its import path ends in internal/faults): a fault model that reaches for
// ambient randomness or the wall clock silently breaks worker-count
// invariance and checkpoint resume, so the vettool must catch it.
package faults

import (
	"math/rand"
	"time"
)

// Model is a fake fault model with nondeterministic schedule draws.
type Model struct {
	delay float64
}

func (m *Model) jitter() float64 {
	return rand.Float64() * m.delay // want `math/rand\.Float64 in deterministic package faults: all randomness must come from internal/xrand seed splits`
}

func (m *Model) deliverAt() time.Time {
	return time.Now().Add(time.Second) // want `time\.Now in deterministic package faults: results must not depend on the wall clock`
}

func dropped(p float64) bool {
	return rand.New(rand.NewSource(time.Now().UnixNano())).Float64() < p // want `math/rand\.New in deterministic package faults` `math/rand\.NewSource in deterministic package faults` `math/rand\.Float64 in deterministic package faults` `time\.Now in deterministic package faults`
}

// clean: pure schedule arithmetic over plain data needs no annotation.
func healTime(windowEnd, arrival float64) float64 {
	if arrival < windowEnd {
		return windowEnd
	}
	return arrival
}

// audited keeps a wall-clock read behind an audited suppression.
func audited() time.Time {
	return time.Now() //speclint:allow detrand fixture demonstrating an audited suppression
}
