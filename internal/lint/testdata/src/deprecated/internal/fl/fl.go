// Package fl is a fixture mirroring the deprecated entry points of the real
// internal/fl.
package fl

// Run mirrors the deprecated fl.Run.
func Run() error { return nil }

// RunGossip mirrors the deprecated fl.RunGossip.
func RunGossip() error { return nil }

// NewFederated is the sanctioned constructor.
func NewFederated() int { return 0 }
