// Package core is a fixture mirroring the deprecated pre-engine entry
// points of the real internal/core.
package core

// Simulation mirrors core.Simulation.
type Simulation struct {
	rounds int
}

// Run mirrors the deprecated core.Simulation.Run.
func (s *Simulation) Run() int { return s.rounds }

// Step is the sanctioned engine-interface method.
func (s *Simulation) Step() bool { return false }

// RunAsync mirrors the deprecated core.RunAsync.
func RunAsync() error { return nil }

// Config mirrors core.Config with its deprecated alias field.
type Config struct {
	EvalScope       int
	DisableEvalMemo bool
}

// normalize is a same-package use of the deprecated field — the compat shim
// itself — which the analyzer must not flag.
func (c *Config) normalize() {
	if c.DisableEvalMemo {
		c.EvalScope = 2
	}
}
