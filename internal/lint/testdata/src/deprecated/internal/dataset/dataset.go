// Package dataset is a fixture mirroring the deprecated XY adapter of the
// real internal/dataset.
package dataset

// Dataset mirrors dataset.Dataset.
type Dataset struct {
	n int
}

// XY mirrors the deprecated copying adapter.
func (d Dataset) XY() ([][]float64, []int) { return nil, nil }

// Len is a sanctioned method.
func (d Dataset) Len() int { return d.n }
