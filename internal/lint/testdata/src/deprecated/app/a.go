// Package app is an internal caller of the deprecated entry points; every
// use outside the declaring package and outside tests must be flagged.
package app

import (
	"deprecated/internal/core"
	"deprecated/internal/dataset"
	"deprecated/internal/fl"
)

func driveEverything(sim *core.Simulation, d dataset.Dataset) {
	sim.Run()       // want `Simulation\.Run is a deprecated pre-engine entry point`
	core.RunAsync() // want `core\.RunAsync is a deprecated pre-engine entry point`
	fl.Run()        // want `fl\.Run is a deprecated pre-engine entry point`
	fl.RunGossip()  // want `fl\.RunGossip is a deprecated pre-engine entry point`
	d.XY()          // want `Dataset\.XY is a deprecated pre-engine entry point`

	cfg := core.Config{
		DisableEvalMemo: true, // want `core\.DisableEvalMemo is a deprecated pre-engine entry point`
	}
	_ = cfg

	// Sanctioned replacements stay quiet.
	sim.Step()
	fl.NewFederated()
	_ = d.Len()
}

func audited(sim *core.Simulation) {
	//speclint:allow deprecated fixture demonstrating an audited suppression
	sim.Run()
}
