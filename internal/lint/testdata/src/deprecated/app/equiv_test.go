package app

import (
	"deprecated/internal/core"
	"deprecated/internal/fl"
)

// Equivalence tests pin the deprecated wrappers' numerics on purpose, so
// _test.go files are exempt from the deprecated analyzer.
func pinLegacyNumerics(sim *core.Simulation) (int, error) {
	n := sim.Run()
	if err := fl.Run(); err != nil {
		return 0, err
	}
	return n, nil
}
