package app

// Test files may spawn raw goroutines (stress and race tests do so on
// purpose), so the budget analyzer must not flag this.
func testOnlyFanOut(n int, ch chan int) {
	for i := 0; i < n; i++ {
		go func(i int) { ch <- i }(i)
	}
}
