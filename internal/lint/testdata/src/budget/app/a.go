// Package app is a fixture outside internal/par: every naked go statement
// escapes the shared goroutine budget.
package app

func fanOut(work []func()) {
	for _, w := range work {
		go w() // want `naked go statement outside internal/par`
	}
}

func supervised(done chan struct{}) {
	go func() { // want `naked go statement outside internal/par`
		close(done)
	}()
}

func audited(stop chan struct{}) {
	//speclint:allow budget fixture demonstrating an audited long-lived supervisor
	go func() { <-stop }()
}
