// Package par is a fixture standing in for internal/par — the one package
// allowed to spawn goroutines, because it implements the budget.
package par

func spawn(f func()) {
	go f()
}
