// Package serve is a fixture pinning the serving subsystem's concurrency
// policy: being outside the deterministic-package set does NOT exempt it
// from the goroutine budget. Its long-lived run supervisors are audited
// //speclint:allow sites; anything unaudited is a finding.
package serve

func runSupervisor(start func()) {
	// The sanctioned form: one supervisor per hosted run, audited.
	//speclint:allow budget one long-lived supervisor goroutine per hosted run, joined on shutdown
	go start()
}

func leakyFanOut(subscribers []func()) {
	for _, s := range subscribers {
		go s() // want `naked go statement outside internal/par`
	}
}
