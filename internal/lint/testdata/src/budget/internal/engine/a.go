// Package engine is a fixture pinning the scheduler's concurrency policy:
// the work-stealing scheduler's helper workers must come from the shared
// budget (par.Budget.Spawn-style, token-backed), never from naked go
// statements — hosting many runs does not exempt internal/engine from the
// goroutine budget.
package engine

type budget struct{}

// Spawn mimics par.Budget.Spawn: a helper runs only if a budget token is
// free, so the scheduler can never oversubscribe the pool.
func (budget) Spawn(fn func()) bool { fn(); return true }

func spawnHelpers(pool budget, workers int) {
	// The sanctioned form: budget-token helpers that exit when idle.
	for i := 1; i < workers; i++ {
		if !pool.Spawn(func() {}) {
			break
		}
	}
}

func leakyWorker(loop func()) {
	go loop() // want `naked go statement outside internal/par`
}
