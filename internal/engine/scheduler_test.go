package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/par"
)

// fakeEngine is a deterministic synthetic engine for scheduler-semantics
// tests: total units, an optional per-step trace callback, and an optional
// gate channel that each step must receive from (for blocking tests).
type fakeEngine struct {
	name  string
	total int
	steps int
	trace func(name string, step int)
	gate  chan struct{}
}

func (f *fakeEngine) Name() string { return f.name }

func (f *fakeEngine) Step(ctx context.Context) (*engine.StepResult, bool, error) {
	if f.steps >= f.total {
		return nil, true, nil
	}
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f.steps++
	if f.trace != nil {
		f.trace(f.name, f.steps)
	}
	return &engine.StepResult{Round: engine.RoundEvent{Engine: f.name, Round: f.steps - 1}}, false, nil
}

// settleLog records OnSettle order across jobs.
type settleLog struct {
	mu    sync.Mutex
	order []string
}

func (l *settleLog) hook(name string) func(error) {
	return func(error) {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.order = append(l.order, name)
	}
}

func (l *settleLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.order...)
}

// TestSchedulerRunsAllJobsToCompletion: the basic contract — every submitted
// job runs to its engine's natural end, with concurrent workers drawn from
// the budget.
func TestSchedulerRunsAllJobsToCompletion(t *testing.T) {
	s := engine.NewScheduler(engine.SchedulerConfig{Pool: par.NewBudget(4), Quantum: 3})
	var handles []*engine.Handle
	for i := 0; i < 9; i++ {
		h, err := s.Submit(engine.Job{Engine: &fakeEngine{name: fmt.Sprintf("j%d", i), total: 10}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		if st := h.State(); st != engine.JobDone {
			t.Fatalf("job %d state = %v, want done (err %v)", i, st, h.Err())
		}
		if h.Steps() != 10 {
			t.Fatalf("job %d ran %d steps, want 10", i, h.Steps())
		}
		rep := h.Report()
		if rep == nil || !rep.Completed || rep.Steps != 10 {
			t.Fatalf("job %d report %+v", i, rep)
		}
	}
	if st := s.Stats(); st.Settled != 9 || st.Dispatches < 9 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSchedulerPriorityOrderingUnderContention: with one worker and every
// job contending for it, dispatch is a strict priority queue — higher
// Priority first, ties in submission order — and a dispatched job keeps its
// worker across requeues (locality tiebreak) until it completes.
func TestSchedulerPriorityOrderingUnderContention(t *testing.T) {
	var mu sync.Mutex
	var trace []string
	s := engine.NewScheduler(engine.SchedulerConfig{Pool: par.NewBudget(1), Workers: 1, Quantum: 1})
	prios := []int{0, 5, 3, 5}
	for i, p := range prios {
		name := fmt.Sprintf("p%d-j%d", p, i)
		_, err := s.Submit(engine.Job{
			Engine: &fakeEngine{name: name, total: 3, trace: func(n string, _ int) {
				mu.Lock()
				trace = append(trace, n)
				mu.Unlock()
			}},
			Name:     name,
			Priority: p,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, i := range []int{1, 3, 2, 0} { // priority desc, then submission order
		for k := 0; k < 3; k++ {
			want = append(want, fmt.Sprintf("p%d-j%d", prios[i], i))
		}
	}
	if got := strings.Join(trace, " "); got != strings.Join(want, " ") {
		t.Fatalf("step trace\n got %s\nwant %s", got, strings.Join(want, " "))
	}
}

// TestSchedulerDeadlineFailsWithTypedError: a job past its wall-clock
// deadline settles as JobFailed with a *DeadlineError that unwraps to
// ErrJobDeadline.
func TestSchedulerDeadlineFailsWithTypedError(t *testing.T) {
	s := engine.NewScheduler(engine.SchedulerConfig{Pool: par.NewBudget(1)})
	h, err := s.Submit(engine.Job{
		Engine:   &fakeEngine{name: "doomed", total: 1 << 30},
		Deadline: time.Nanosecond, // expired by the time a worker looks
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Submit(engine.Job{Engine: &fakeEngine{name: "fine", total: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := h.State(); st != engine.JobFailed {
		t.Fatalf("state = %v, want failed", st)
	}
	if !errors.Is(h.Err(), engine.ErrJobDeadline) {
		t.Fatalf("err = %v, want ErrJobDeadline", h.Err())
	}
	var de *engine.DeadlineError
	if !errors.As(h.Err(), &de) || de.Job != "doomed" || de.Deadline != time.Nanosecond {
		t.Fatalf("err = %#v, want *DeadlineError for job doomed", h.Err())
	}
	if ok.State() != engine.JobDone {
		t.Fatalf("undeadlined job state = %v, want done", ok.State())
	}
}

// TestSchedulerStarvationFreedomViaAging: a low-priority job under a
// continuous stream of high-priority arrivals still runs, because waiting
// raises its effective priority above later arrivals. The contrast case
// (aging effectively off) pins that it is the aging doing it.
func TestSchedulerStarvationFreedomViaAging(t *testing.T) {
	// Two self-regenerating high-priority streams: each settle submits the
	// next generation, so high-priority work never dries up until the
	// generations are exhausted. Single worker keeps dispatch deterministic.
	run := func(agingQuanta int) []string {
		var log settleLog
		s := engine.NewScheduler(engine.SchedulerConfig{
			Pool: par.NewBudget(1), Workers: 1, Quantum: 1, AgingQuanta: agingQuanta,
		})
		if _, err := s.Submit(engine.Job{
			Engine:   &fakeEngine{name: "low", total: 1},
			Name:     "low",
			Priority: 0,
			OnSettle: log.hook("low"),
		}); err != nil {
			t.Fatal(err)
		}
		const generations = 40
		var submitGen func(stream string, gen int)
		submitGen = func(stream string, gen int) {
			name := fmt.Sprintf("%s-g%d", stream, gen)
			_, err := s.Submit(engine.Job{
				Engine:   &fakeEngine{name: name, total: 1},
				Name:     name,
				Priority: 10,
				OnSettle: func(err error) {
					if gen+1 < generations {
						submitGen(stream, gen+1)
					}
					log.hook(name)(err)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		submitGen("a", 0)
		submitGen("b", 0)
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		return log.snapshot()
	}

	pos := func(order []string, name string) int {
		for i, n := range order {
			if n == name {
				return i
			}
		}
		return -1
	}

	aged := run(1)
	if len(aged) != 2*40+1 {
		t.Fatalf("with aging: %d settles, want 81", len(aged))
	}
	if p := pos(aged, "low"); p < 0 || p == len(aged)-1 {
		t.Fatalf("with aging: low settled at position %d of %d — starved", p, len(aged))
	}

	unaged := run(1 << 30)
	if p := pos(unaged, "low"); p != len(unaged)-1 {
		t.Fatalf("without aging: low settled at position %d, want last %d — contrast broken",
			p, len(unaged)-1)
	}
}

// TestSchedulerStealsFromForeignDeque: submissions land round-robin on the
// worker deques; a worker with an empty deque takes runnable jobs from a
// foreign one, and the steal is counted.
func TestSchedulerStealsFromForeignDeque(t *testing.T) {
	// Two deques but a one-slot budget: the root worker (deque 0) is the
	// only driver, so after finishing its own job it must steal job 1 from
	// deque 1.
	s := engine.NewScheduler(engine.SchedulerConfig{Pool: par.NewBudget(1), Workers: 2, Quantum: 8})
	var handles []*engine.Handle
	for i := 0; i < 2; i++ {
		h, err := s.Submit(engine.Job{Engine: &fakeEngine{name: fmt.Sprintf("j%d", i), total: 4}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		if h.State() != engine.JobDone {
			t.Fatalf("job %d: %v (%v)", i, h.State(), h.Err())
		}
	}
	if st := s.Stats(); st.Steals != 1 || st.Dispatches != 2 {
		t.Fatalf("stats %+v, want exactly 1 steal in 2 dispatches", st)
	}
}

// TestSchedulerPauseResumeCancel: pause parks at a unit boundary and the
// job makes no further progress while other jobs run; resume continues the
// same engine; cancel settles with ErrJobCanceled.
func TestSchedulerPauseResumeCancel(t *testing.T) {
	s := engine.NewScheduler(engine.SchedulerConfig{Pool: par.NewBudget(1), Workers: 1, Quantum: 2})
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx) }()

	stepped := make(chan struct{}, 1)
	h, err := s.Submit(engine.Job{
		Engine: &fakeEngine{name: "long", total: 1 << 30, trace: func(string, int) {
			select {
			case stepped <- struct{}{}:
			default:
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-stepped // the job is running
	if err := h.Pause(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := h.State(); st != engine.JobPaused {
		t.Fatalf("state after pause = %v", st)
	}
	for len(stepped) > 0 {
		<-stepped
	}
	frozen := h.Steps()

	// The worker is free while the job is parked: another job runs to
	// completion, and the paused job gains no steps.
	other, err := s.Submit(engine.Job{Engine: &fakeEngine{name: "other", total: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := h.Steps(); got != frozen {
		t.Fatalf("paused job advanced from %d to %d steps", frozen, got)
	}
	if err := h.Pause(context.Background()); err != nil {
		t.Fatal("pausing a paused job should be a no-op, got", err)
	}

	if err := h.Resume(); err != nil {
		t.Fatal(err)
	}
	<-stepped // progressing again, same engine
	if err := h.Cancel(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := h.State(); st != engine.JobCanceled {
		t.Fatalf("state after cancel = %v", st)
	}
	if !errors.Is(h.Err(), engine.ErrJobCanceled) {
		t.Fatalf("err = %v, want ErrJobCanceled", h.Err())
	}
	if err := h.Cancel(context.Background()); !errors.Is(err, engine.ErrJobSettled) {
		t.Fatalf("double cancel err = %v, want ErrJobSettled", err)
	}
	if err := h.Resume(); !errors.Is(err, engine.ErrJobSettled) {
		t.Fatalf("resume after cancel err = %v, want ErrJobSettled", err)
	}

	stop()
	if err := <-served; !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// TestSchedulerCancelBeforeDrive: queued jobs can be canceled before any
// drive loop exists, and Drain then has nothing to do for them.
func TestSchedulerCancelBeforeDrive(t *testing.T) {
	var log settleLog
	s := engine.NewScheduler(engine.SchedulerConfig{Pool: par.NewBudget(2)})
	doomed, err := s.Submit(engine.Job{
		Engine: &fakeEngine{name: "doomed", total: 100}, OnSettle: log.hook("doomed"),
	})
	if err != nil {
		t.Fatal(err)
	}
	kept, err := s.Submit(engine.Job{Engine: &fakeEngine{name: "kept", total: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := doomed.Cancel(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(doomed.Err(), engine.ErrJobCanceled) || doomed.Steps() != 0 {
		t.Fatalf("canceled queued job: err=%v steps=%d", doomed.Err(), doomed.Steps())
	}
	if got := log.snapshot(); len(got) != 1 || got[0] != "doomed" {
		t.Fatalf("OnSettle log %v", got)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if kept.State() != engine.JobDone {
		t.Fatalf("kept job %v (%v)", kept.State(), kept.Err())
	}
}

// TestSchedulerDrainStopsAtBoundariesAndResumes: canceling Drain's context
// stops jobs at unit boundaries without settling them; a fresh Drain picks
// them back up and completes the identical work.
func TestSchedulerDrainStopsAtBoundariesAndResumes(t *testing.T) {
	s := engine.NewScheduler(engine.SchedulerConfig{Pool: par.NewBudget(1), Workers: 1, Quantum: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var total int
	var handles []*engine.Handle
	for i := 0; i < 3; i++ {
		h, err := s.Submit(engine.Job{Engine: &fakeEngine{name: fmt.Sprintf("j%d", i), total: 10,
			trace: func(string, int) {
				total++
				if total == 7 {
					cancel() // mid-grid crash
				}
			}}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := s.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted Drain returned %v", err)
	}
	settledEarly := 0
	for _, h := range handles {
		if h.State() == engine.JobDone {
			settledEarly++
		}
	}
	if settledEarly == len(handles) {
		t.Fatal("every job finished before the interrupt — test proves nothing")
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		if h.State() != engine.JobDone || h.Steps() != 10 {
			t.Fatalf("job %d after resumed drain: %v steps=%d", i, h.State(), h.Steps())
		}
	}
	if total != 30 {
		t.Fatalf("engines stepped %d total units, want exactly 30 (no rework)", total)
	}
}

// TestSchedulerLazyBuild: Build jobs construct their engine at first
// dispatch; a failing build settles the job as failed without killing the
// drain.
func TestSchedulerLazyBuild(t *testing.T) {
	s := engine.NewScheduler(engine.SchedulerConfig{Pool: par.NewBudget(2)})
	built := 0
	ok, err := s.Submit(engine.Job{
		Name: "lazy",
		Build: func(ctx context.Context) (engine.Engine, []engine.Option, error) {
			built++
			return &fakeEngine{name: "lazy", total: 4}, nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if built != 0 {
		t.Fatal("Build ran at submit, want first dispatch")
	}
	bad, err := s.Submit(engine.Job{
		Name: "bad",
		Build: func(ctx context.Context) (engine.Engine, []engine.Option, error) {
			return nil, nil, errors.New("no such dataset")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ok.State() != engine.JobDone || built != 1 {
		t.Fatalf("lazy job %v, built %d times", ok.State(), built)
	}
	if bad.State() != engine.JobFailed || !strings.Contains(bad.Err().Error(), "no such dataset") {
		t.Fatalf("bad build job %v (%v)", bad.State(), bad.Err())
	}

	if _, err := s.Submit(engine.Job{}); err == nil {
		t.Fatal("submit with neither Engine nor Build must fail")
	}
	if _, err := s.Submit(engine.Job{
		Engine: &fakeEngine{name: "x", total: 1},
		Build: func(ctx context.Context) (engine.Engine, []engine.Option, error) {
			return nil, nil, nil
		},
	}); err == nil {
		t.Fatal("submit with both Engine and Build must fail")
	}
}

// TestSchedulerSharedBudgetBound: real simulations with internal fan-out,
// scheduled concurrently on one budget — total budgeted concurrency never
// exceeds the budget size, and everything is released afterwards.
func TestSchedulerSharedBudgetBound(t *testing.T) {
	pool := par.NewBudget(2)
	s := engine.NewScheduler(engine.SchedulerConfig{Pool: pool, Quantum: 2})
	var handles []*engine.Handle
	for i := 0; i < 3; i++ {
		seed := int64(20 + i)
		h, err := s.Submit(engine.Job{
			Name: fmt.Sprintf("sim%d", i),
			Build: func(ctx context.Context) (engine.Engine, []engine.Option, error) {
				cfg := testConfig()
				cfg.Rounds = 4
				cfg.Workers = 2
				cfg.Pool = pool
				sim, err := core.NewSimulation(testFed(seed), cfg)
				return sim, nil, err
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		if h.State() != engine.JobDone {
			t.Fatalf("sim job %d: %v (%v)", i, h.State(), h.Err())
		}
	}
	if peak := pool.Peak(); peak > 2 {
		t.Fatalf("budget peak %d exceeds size 2", peak)
	}
	if inUse := pool.InUse(); inUse != 0 {
		t.Fatalf("budget still reports %d in use after drain", inUse)
	}
}

// TestSchedulerRejectsConcurrentDrives: one root at a time.
func TestSchedulerRejectsConcurrentDrives(t *testing.T) {
	s := engine.NewScheduler(engine.SchedulerConfig{Pool: par.NewBudget(1)})
	ctx, stop := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx) }()
	// The serve loop is up once a submitted job completes.
	h, err := s.Submit(engine.Job{Engine: &fakeEngine{name: "probe", total: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); !errors.Is(err, engine.ErrSchedulerBusy) {
		t.Fatalf("second drive returned %v, want ErrSchedulerBusy", err)
	}
	stop()
	<-served
	// After the drive ends the scheduler is drivable again.
	if _, err := s.Submit(engine.Job{Engine: &fakeEngine{name: "again", total: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkScheduler measures pure scheduling overhead: many tiny jobs whose
// steps do no work, so ns/op is dominated by dispatch, requeue and steal
// bookkeeping. Advisory timing only — no experiment metrics are reported.
func BenchmarkScheduler(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := engine.NewScheduler(engine.SchedulerConfig{
					Pool: par.NewBudget(workers), Workers: workers, Quantum: 8,
				})
				for j := 0; j < 64; j++ {
					if _, err := s.Submit(engine.Job{
						Engine: &fakeEngine{name: fmt.Sprintf("j%d", j), total: 64},
					}); err != nil {
						b.Fatal(err)
					}
				}
				if err := s.Drain(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
