// Package engine defines the unified run surface behind every experiment:
// a single Run loop that drives any Engine — the synchronous round
// simulation, the event-driven asynchronous simulation, the FedAvg/FedProx
// baselines and the gossip baseline — with context cancellation at round or
// event granularity, typed progress events delivered through Hooks or an
// Observer, periodic mid-run metric probes, periodic checkpoints for engines
// that support them, and a shared worker budget handed down to the engine's
// internal fan-out.
//
// The paper's deployment model (§5.3.3: each client "continuously runs the
// training process … independent from all other clients") treats a runner as
// a long-lived, monitorable process rather than a batch call; Run is that
// process's control loop. Engines remain plain steppers — all policy
// (cancel, observe, checkpoint, budget) lives here, so every engine gains
// every capability at once.
package engine

import (
	"context"
	"fmt"
	"io"

	"github.com/specdag/specdag/internal/par"
)

// RoundEvent reports one completed unit of work: a training round for the
// round-based engines, or a single client activation for the event-driven
// engine.
type RoundEvent struct {
	// Engine is the emitting engine's Name.
	Engine string
	// Round is the 0-based index of the completed unit.
	Round int
	// Time is the simulated time in seconds for event-driven engines, 0 for
	// round-based ones.
	Time float64
	// MeanAcc and MeanLoss summarize the unit's evaluation.
	MeanAcc  float64
	MeanLoss float64
	// Published counts model updates published by this unit.
	Published int
	// DAGSize is the tangle size after the unit (0 for DAG-free engines).
	DAGSize int
	// Detail carries the engine-specific result for this unit — e.g. a
	// *core.RoundResult, *core.AsyncEvent or *fl.RoundResult — for observers
	// that need more than the summary fields above.
	Detail any
}

// PublishEvent reports one model update entering (or being scheduled to
// enter) the DAG.
type PublishEvent struct {
	Engine string
	// Round is the unit in which the publish happened.
	Round int
	// Time is the publish time in simulated seconds (event-driven engines).
	Time float64
	// Issuer is the publishing client ID (negative for attackers/genesis).
	Issuer int
	// Tx is the transaction ID, or -1 when the ID is not assigned yet (the
	// asynchronous engine delays insertion by the network propagation time).
	Tx int
	// Acc is the publisher's local test accuracy stamped on the update.
	Acc float64
	// Poisoned marks updates published from poisoned data.
	Poisoned bool
}

// ProbeEvent reports one mid-run metric probe (see WithProbe).
type ProbeEvent struct {
	Engine string
	// Step is the number of completed units when the probe ran.
	Step  int
	Name  string
	Value float64
}

// Hooks receives typed progress events during Run. Nil fields are skipped.
// Hooks are invoked synchronously on Run's goroutine, strictly ordered by
// unit — an observer sees exactly one RoundEvent per completed unit, in
// order, regardless of how many workers the engine uses internally.
type Hooks struct {
	OnRound   func(RoundEvent)
	OnPublish func(PublishEvent)
	OnProbe   func(ProbeEvent)
}

// Observer is the interface form of Hooks, for stateful observers.
type Observer interface {
	OnRound(RoundEvent)
	OnPublish(PublishEvent)
	OnProbe(ProbeEvent)
}

// StepResult is what an Engine reports for one completed unit of work.
type StepResult struct {
	Round     RoundEvent
	Publishes []PublishEvent
}

// Engine is a resumable experiment stepper. Implementations: the round
// simulation (core.Simulation), the event simulation (core.AsyncSimulation),
// the centralized baselines (fl.Federated) and gossip learning (fl.Gossip).
//
// Step advances by one unit (round or event) and reports it; done is true —
// with a nil result — once the run is complete. Step must honor ctx: a
// canceled context aborts the unit's fan-out as soon as practical and
// returns ctx.Err(). Engines keep their accumulated results internally, so
// a canceled run's partial results remain accessible.
type Engine interface {
	// Name identifies the engine in events and logs.
	Name() string
	Step(ctx context.Context) (res *StepResult, done bool, err error)
}

// Snapshotter is implemented by engines whose full state can be checkpointed
// mid-run and later resumed bit-identically (core.Simulation via
// WriteCheckpoint/ResumeSimulation).
type Snapshotter interface {
	WriteCheckpoint(w io.Writer) (int64, error)
}

// PoolUser is implemented by engines whose internal fan-out can draw from a
// shared worker budget instead of spawning freely.
type PoolUser interface {
	SetPool(*par.Budget)
}

// Report summarizes a Run.
type Report struct {
	Engine string
	// Steps is the number of completed units.
	Steps int
	// Completed is true when the engine reached its natural end, false when
	// the run was canceled or failed.
	Completed bool
}

// Option configures Run.
type Option func(*options)

type probe struct {
	name  string
	every int
	fn    func() float64
}

type options struct {
	hooks      []Hooks
	probes     []probe
	pool       *par.Budget
	checkEvery int
	checkOpen  func(step int) (io.WriteCloser, error)
}

// WithHooks registers progress hooks. Multiple WithHooks/WithObserver
// options compose; each event is delivered to all of them in option order.
func WithHooks(h Hooks) Option {
	return func(o *options) { o.hooks = append(o.hooks, h) }
}

// WithObserver registers an Observer (the interface form of WithHooks).
func WithObserver(obs Observer) Option {
	return WithHooks(Hooks{
		OnRound:   obs.OnRound,
		OnPublish: obs.OnPublish,
		OnProbe:   obs.OnProbe,
	})
}

// WithPool hands the engine a shared worker budget: its internal per-client
// or per-event fan-out draws helpers from the pool instead of spawning
// freely, so nested fan-outs (sweep cell → round engine) never exceed the
// pool size in total. Engines that are not PoolUsers ignore the option.
func WithPool(b *par.Budget) Option {
	return func(o *options) { o.pool = b }
}

// WithProbe evaluates fn after every `every` completed units and delivers
// the value as a ProbeEvent — mid-run metric probes (e.g. ApprovalPureness
// over the live DAG) without stopping the run. fn runs on Run's goroutine
// between units, so it may safely read engine state.
func WithProbe(name string, every int, fn func() float64) Option {
	return func(o *options) {
		if every <= 0 {
			every = 1
		}
		o.probes = append(o.probes, probe{name: name, every: every, fn: fn})
	}
}

// WithCheckpoints writes a checkpoint every `every` completed units: open is
// called with the current step count and must return the destination, which
// Run closes after writing. The engine must implement Snapshotter; Run fails
// fast otherwise.
func WithCheckpoints(every int, open func(step int) (io.WriteCloser, error)) Option {
	return func(o *options) {
		if every <= 0 {
			every = 1
		}
		o.checkEvery = every
		o.checkOpen = open
	}
}

// loop is one engine's run loop, factored out of Run so the Scheduler can
// drive the identical per-unit body (step, hooks, probes, checkpoints) a
// quantum at a time. Every semantic guarantee Run documents — hooks strictly
// ordered by unit, probes between units on the driving goroutine, checkpoints
// at unit boundaries — holds because both paths execute this one body.
type loop struct {
	e    Engine
	o    options
	rep  *Report
	snap Snapshotter
}

func newLoop(e Engine, opts ...Option) (*loop, error) {
	l := &loop{e: e, rep: &Report{Engine: e.Name()}}
	for _, opt := range opts {
		opt(&l.o)
	}
	var isSnap bool
	l.snap, isSnap = e.(Snapshotter)
	if l.o.checkOpen != nil && !isSnap {
		return l, fmt.Errorf("engine: %s does not support checkpoints", e.Name())
	}
	if l.o.pool != nil {
		if pu, ok := e.(PoolUser); ok {
			pu.SetPool(l.o.pool)
		}
	}
	return l, nil
}

// step runs exactly one unit: the context check, the engine step, hook
// delivery, due probes and a due checkpoint. It reports done=true when the
// engine reached its natural end.
func (l *loop) step(ctx context.Context) (done bool, err error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	res, done, err := l.e.Step(ctx)
	if err != nil {
		return false, err
	}
	if done {
		l.rep.Completed = true
		return true, nil
	}
	l.rep.Steps++
	for _, h := range l.o.hooks {
		if h.OnPublish != nil {
			for _, p := range res.Publishes {
				h.OnPublish(p)
			}
		}
		if h.OnRound != nil {
			h.OnRound(res.Round)
		}
	}
	for _, pr := range l.o.probes {
		if l.rep.Steps%pr.every != 0 {
			continue
		}
		ev := ProbeEvent{Engine: l.e.Name(), Step: l.rep.Steps, Name: pr.name, Value: pr.fn()}
		for _, h := range l.o.hooks {
			if h.OnProbe != nil {
				h.OnProbe(ev)
			}
		}
	}
	if l.o.checkOpen != nil && l.rep.Steps%l.o.checkEvery == 0 {
		if err := writeCheckpoint(l.snap, l.o.checkOpen, l.rep.Steps); err != nil {
			return false, err
		}
	}
	return false, nil
}

// Run drives e to completion (or cancellation): the one entry point behind
// every experiment. It returns the report alongside the first error — on
// cancellation that is ctx.Err(), and the engine retains the partial results
// of the units completed so far.
func Run(ctx context.Context, e Engine, opts ...Option) (*Report, error) {
	l, err := newLoop(e, opts...)
	if err != nil {
		return l.rep, err
	}
	for {
		done, err := l.step(ctx)
		if err != nil {
			return l.rep, err
		}
		if done {
			return l.rep, nil
		}
	}
}

func writeCheckpoint(s Snapshotter, open func(int) (io.WriteCloser, error), step int) error {
	w, err := open(step)
	if err != nil {
		return fmt.Errorf("engine: opening checkpoint at step %d: %w", step, err)
	}
	if _, err := s.WriteCheckpoint(w); err != nil {
		w.Close()
		return fmt.Errorf("engine: writing checkpoint at step %d: %w", step, err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("engine: closing checkpoint at step %d: %w", step, err)
	}
	return nil
}
