// The multi-run scheduler: N engines multiplexed onto one par.Budget.
//
// Run (engine.go) drives one engine to completion on the calling goroutine.
// The Scheduler drives many: sweep grids submit every cell as a job and the
// serving daemon submits every hosted run, and both draw their concurrency
// from the same shared budget the engines' internal fan-outs use, so the
// whole process never exceeds one worker bound no matter how many runs are
// in flight.
//
// Design:
//
//   - Each job is driven a quantum at a time (Quantum engine units per
//     dispatch) by the exact per-unit loop body Run uses, so hooks, probes
//     and checkpoints behave identically on both paths.
//   - Work-stealing deques: every worker slot has a queue; a job requeues to
//     the slot it last ran on (locality), and an idle worker takes the best
//     job from any slot — taking from a foreign slot is a steal. Among
//     runnable jobs the pick is the highest effective priority, preferring
//     the worker's own deque on ties, then submission order, which makes
//     single-worker dispatch a strict priority queue.
//   - Starvation-freedom by aging: a job's effective priority grows by one
//     for every AgingQuanta dispatches it waits, so low-priority jobs are
//     eventually picked even under a steady stream of high-priority work.
//   - Worker loops respect the budget: the goroutine calling Drain or Serve
//     is the root worker, and helper workers are spawned through
//     par.Budget.Spawn — they occupy budget slots while alive and exit when
//     no runnable job remains, returning their slots to the engines'
//     fan-outs. There is no naked go statement in this package.
//   - Determinism: scheduling decides only *when* a job's units run, never
//     what they compute — every engine's results are a pure function of
//     (config, seed) — so grid results are bit-identical for every worker
//     count and priority order. Deadlines are the one wall-clock input:
//     they decide whether a job completes, not what a completed job
//     computes, and are measured through profiling.Stopwatch (the audited
//     wall-clock choke point; see the detrand contract).
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/profiling"
)

// JobState is the lifecycle state of a scheduled job.
type JobState int

const (
	// JobQueued: submitted (or requeued between quanta), waiting for a worker.
	JobQueued JobState = iota
	// JobRunning: a worker is inside the job's quantum.
	JobRunning
	// JobPaused: parked at a unit boundary; Resume requeues it.
	JobPaused
	// JobDone: the engine reached its natural end.
	JobDone
	// JobCanceled: canceled via Handle.Cancel.
	JobCanceled
	// JobFailed: the engine (or its build, or its deadline) failed.
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobPaused:
		return "paused"
	case JobDone:
		return "done"
	case JobCanceled:
		return "canceled"
	case JobFailed:
		return "failed"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobCanceled || s == JobFailed
}

// ErrJobCanceled is the settle error of a job canceled via Handle.Cancel.
var ErrJobCanceled = errors.New("engine: job canceled")

// ErrJobSettled is wrapped by Pause/Resume/Cancel when the job already
// reached a terminal state.
var ErrJobSettled = errors.New("engine: job already settled")

// ErrSchedulerBusy is returned by Drain/Serve when a drive loop is already
// active: a Scheduler has exactly one root worker at a time.
var ErrSchedulerBusy = errors.New("engine: scheduler is already being driven")

// DeadlineError is the typed settle error of a job that exceeded its
// wall-clock deadline. It matches errors.Is(err, ErrJobDeadline).
type DeadlineError struct {
	Job      string
	Deadline time.Duration
	Elapsed  time.Duration
}

// ErrJobDeadline is the sentinel DeadlineError unwraps to.
var ErrJobDeadline = errors.New("engine: job deadline exceeded")

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("engine: job %s exceeded its %v deadline after %v", e.Job, e.Deadline, e.Elapsed)
}

func (e *DeadlineError) Unwrap() error { return ErrJobDeadline }

// Job describes one engine submitted to the Scheduler.
//
// Exactly one of Engine and Build must be set. Build defers engine
// construction to the first dispatch, on a worker goroutine: a 10,000-cell
// grid submits 10,000 cheap closures, not 10,000 live simulations, and cells
// that resume from a checkpoint open it only when they actually run.
type Job struct {
	// Engine is a pre-built engine.
	Engine Engine
	// Build constructs the engine lazily at first dispatch. The context is
	// the job's context (canceled by Handle.Cancel). Options returned by
	// Build are applied before Opts.
	Build func(ctx context.Context) (Engine, []Option, error)
	// Name labels the job in errors and stats; defaults to Engine.Name()
	// (or "job-<seq>" for Build jobs).
	Name string
	// Priority orders dispatch: larger runs first. Ties run in submission
	// order. Subject to aging (SchedulerConfig.AgingQuanta).
	Priority int
	// Deadline, when positive, bounds the job's wall-clock time measured
	// from Submit. An exceeded deadline settles the job as JobFailed with a
	// *DeadlineError at the next unit boundary (or at dispatch, for a job
	// still queued).
	Deadline time.Duration
	// Opts are the Run options applied to the job's loop — hooks, probes,
	// checkpoints, pool — exactly as they would be passed to Run.
	Opts []Option
	// OnSettle, when non-nil, is called exactly once when the job reaches a
	// terminal state, with nil for JobDone, ErrJobCanceled for JobCanceled,
	// and the failure (possibly a *DeadlineError) for JobFailed. It runs on
	// the settling goroutine before Handle.Wait unblocks.
	OnSettle func(err error)
}

// SchedulerConfig configures a Scheduler.
type SchedulerConfig struct {
	// Pool is the shared worker budget. Worker loops and the engines'
	// internal fan-outs draw from the same pool, so total concurrency stays
	// bounded by its size. Nil selects par.NewBudget(0).
	Pool *par.Budget
	// Workers caps concurrently driven jobs; <= 0 selects Pool.Size().
	// Workers == 1 is strictly sequential: the root worker drives jobs one
	// quantum at a time in priority order.
	Workers int
	// Quantum is the number of engine units per dispatch; <= 0 selects 8.
	// Smaller quanta interleave jobs more finely (lower priority latency),
	// larger quanta amortize dispatch overhead.
	Quantum int
	// AgingQuanta is the number of dispatches a waiting job needs to gain
	// one effective priority; <= 0 selects 64.
	AgingQuanta int
}

// Stats are cumulative scheduler counters.
type Stats struct {
	// Dispatches counts quanta handed to workers.
	Dispatches int64
	// Steals counts dispatches that took a job from a foreign deque.
	Steals int64
	// Settled counts jobs that reached a terminal state.
	Settled int64
}

// Scheduler multiplexes many engine run loops onto one shared par.Budget
// with priority/deadline ordering, work stealing, aging, per-job
// pause/resume/cancel and per-job checkpoints (via WithCheckpoints in
// Job.Opts). Construct with NewScheduler, submit with Submit, and drive with
// Drain (until the backlog settles) or Serve (until the context ends).
//
// All methods are safe for concurrent use.
type Scheduler struct {
	pool    *par.Budget
	workers int
	quantum int
	aging   int64

	// wake is the root worker's doorbell: capacity 1, non-blocking sends.
	// Every enqueue, settle, park and helper exit rings it.
	wake chan struct{}

	mu        sync.Mutex
	deques    [][]*job // per-worker-slot runnable queues
	freeSlots []int    // helper slot indices not currently driven
	nextSeq   int64
	nextRR    int   // next deque for round-robin placement of submissions
	clock     int64 // dispatch counter: the aging clock
	queued    int
	running   int
	helpers   int
	driveCtx  context.Context // non-nil while a drive loop is active
	stats     Stats
}

type job struct {
	s    *Scheduler
	spec Job
	name string
	seq  int64

	watch  profiling.Stopwatch // deadline clock, started at Submit
	ctx    context.Context     // job context: canceled by Handle.Cancel
	cancel context.CancelFunc

	done chan struct{} // closed after settle (and after OnSettle returns)

	// Guarded by s.mu.
	state     JobState
	stateCh   chan struct{} // closed+replaced on every state change
	home      int           // deque index the job queues on
	enq       int64         // clock value at the last enqueue (aging)
	pauseReq  bool
	cancelReq bool
	steps     int
	err       error
	l         *loop // built at first dispatch
}

// NewScheduler creates a Scheduler on the given budget.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	pool := cfg.Pool
	if pool == nil {
		pool = par.NewBudget(0)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = pool.Size()
	}
	quantum := cfg.Quantum
	if quantum <= 0 {
		quantum = 8
	}
	aging := cfg.AgingQuanta
	if aging <= 0 {
		aging = 64
	}
	s := &Scheduler{
		pool:    pool,
		workers: workers,
		quantum: quantum,
		aging:   int64(aging),
		wake:    make(chan struct{}, 1),
		deques:  make([][]*job, workers),
	}
	for w := workers - 1; w >= 1; w-- {
		s.freeSlots = append(s.freeSlots, w)
	}
	return s
}

// Pool returns the shared budget the scheduler draws workers from.
func (s *Scheduler) Pool() *par.Budget { return s.pool }

// Stats returns a snapshot of the cumulative counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Submit enqueues a job and returns its handle. Jobs may be submitted before
// or during Drain/Serve; nothing runs until a drive loop is active.
func (s *Scheduler) Submit(spec Job) (*Handle, error) {
	if (spec.Engine == nil) == (spec.Build == nil) {
		return nil, errors.New("engine: a Job needs exactly one of Engine or Build")
	}
	jctx, cancel := context.WithCancel(context.Background())
	j := &job{
		s:       s,
		spec:    spec,
		watch:   profiling.StartStopwatch(),
		ctx:     jctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   JobQueued,
		stateCh: make(chan struct{}),
	}
	s.mu.Lock()
	j.seq = s.nextSeq
	s.nextSeq++
	j.name = spec.Name
	if j.name == "" {
		if spec.Engine != nil {
			j.name = spec.Engine.Name()
		} else {
			j.name = fmt.Sprintf("job-%d", j.seq)
		}
	}
	j.home = s.nextRR % s.workers
	s.nextRR++
	j.enq = s.clock
	s.deques[j.home] = append(s.deques[j.home], j)
	s.queued++
	driving := s.driveCtx != nil
	s.mu.Unlock()
	if driving {
		s.ring()
		s.addHelpers()
	}
	return &Handle{j: j}, nil
}

// Drain drives submitted jobs until every job has settled or parked (paused)
// — the grid-runner mode. The calling goroutine is the root worker; helpers
// join through the budget while runnable jobs remain. Drain returns ctx.Err()
// if the context ends first, leaving unfinished jobs queued at unit
// boundaries (their engines retain partial results and checkpoints).
func (s *Scheduler) Drain(ctx context.Context) error { return s.drive(ctx, false) }

// Serve drives jobs until ctx ends — the daemon mode. The root worker parks
// when idle and wakes on new submissions.
func (s *Scheduler) Serve(ctx context.Context) error { return s.drive(ctx, true) }

func (s *Scheduler) drive(ctx context.Context, persistent bool) error {
	s.mu.Lock()
	if s.driveCtx != nil {
		s.mu.Unlock()
		return ErrSchedulerBusy
	}
	s.driveCtx = ctx
	s.mu.Unlock()
	s.addHelpers() // pick up any backlog submitted before the drive started
	s.work(ctx, 0, true, persistent)
	// Root loop done: wait for the helpers to park their slots. Each helper
	// exit rings the doorbell, so this loop always observes helpers == 0.
	for {
		s.mu.Lock()
		if s.helpers == 0 {
			s.driveCtx = nil
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		<-s.wake
	}
	return ctx.Err()
}

// ring wakes the root worker (non-blocking, coalescing).
func (s *Scheduler) ring() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// addHelpers spawns helper workers through the budget while there is more
// runnable work than workers to run it. Helpers exit on their own when the
// runnable queue is empty, returning both their slot and their budget token.
func (s *Scheduler) addHelpers() {
	for {
		s.mu.Lock()
		ctx := s.driveCtx
		need := ctx != nil && ctx.Err() == nil &&
			len(s.freeSlots) > 0 && s.queued > s.helpers
		if !need {
			s.mu.Unlock()
			return
		}
		slot := s.freeSlots[len(s.freeSlots)-1]
		s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
		s.helpers++
		s.mu.Unlock()
		if !s.pool.Spawn(func() { s.work(ctx, slot, false, false) }) {
			s.mu.Lock()
			s.helpers--
			s.freeSlots = append(s.freeSlots, slot)
			s.mu.Unlock()
			return
		}
	}
}

// work is a worker loop on deque slot w. The root worker (Drain/Serve
// caller) parks on the doorbell when idle; helpers exit instead, freeing
// their budget token for the engines' fan-outs.
func (s *Scheduler) work(ctx context.Context, w int, root, persistent bool) {
	if !root {
		defer func() {
			s.mu.Lock()
			s.helpers--
			s.freeSlots = append(s.freeSlots, w)
			s.mu.Unlock()
			s.ring()
		}()
	}
	for {
		if ctx.Err() != nil {
			return
		}
		// Recruit helpers for any backlog that built up while the last
		// quantum ran (requeues outpacing settles, bursty submissions).
		s.addHelpers()
		s.mu.Lock()
		j, stolen := s.pick(w)
		if j == nil {
			if !root {
				s.mu.Unlock()
				return // helper: park the slot, free the budget token
			}
			idle := s.queued == 0 && s.running == 0
			s.mu.Unlock()
			if !persistent && idle {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-s.wake:
			}
			continue
		}
		s.queued--
		s.running++
		s.clock++
		s.stats.Dispatches++
		if stolen {
			s.stats.Steals++
		}
		j.toState(JobRunning)
		s.mu.Unlock()
		s.runQuantum(ctx, w, j)
	}
}

// pick removes and returns the runnable job with the highest effective
// priority across all deques (preferring deque w on ties, then submission
// order), plus whether it came from a foreign deque. Caller holds s.mu.
func (s *Scheduler) pick(w int) (*job, bool) {
	eff := func(j *job) int64 {
		return int64(j.spec.Priority) + (s.clock-j.enq)/s.aging
	}
	bestD, bestI := -1, -1
	var best *job
	var bestEff int64
	for d := range s.deques {
		for i, j := range s.deques[d] {
			e := eff(j)
			better := best == nil || e > bestEff
			if !better && e == bestEff {
				if (d == w) != (bestD == w) {
					better = d == w
				} else {
					better = j.seq < best.seq
				}
			}
			if better {
				best, bestD, bestI, bestEff = j, d, i, e
			}
		}
	}
	if best == nil {
		return nil, false
	}
	dq := s.deques[bestD]
	s.deques[bestD] = append(dq[:bestI:bestI], dq[bestI+1:]...)
	return best, bestD != w
}

// runQuantum drives one job for up to quantum units on worker slot w,
// building the engine first if the job is lazy. It either settles the job,
// parks it paused, or requeues it to this worker's deque.
func (s *Scheduler) runQuantum(ctx context.Context, w int, j *job) {
	defer func() {
		// A panicking engine settles its job as failed instead of killing a
		// worker goroutine (which would strand Drain); the panic message is
		// preserved in the job error.
		if r := recover(); r != nil {
			s.settle(j, JobFailed, fmt.Errorf("engine: job %s panicked: %v", j.name, r))
		}
	}()
	if j.l == nil {
		eng := j.spec.Engine
		opts := j.spec.Opts
		if j.spec.Build != nil {
			var extra []Option
			var err error
			eng, extra, err = j.spec.Build(j.ctx)
			if err != nil {
				s.settle(j, JobFailed, fmt.Errorf("engine: building job %s: %w", j.name, err))
				return
			}
			opts = append(append([]Option{}, extra...), opts...)
		}
		l, err := newLoop(eng, opts...)
		if err != nil {
			s.settle(j, JobFailed, err)
			return
		}
		s.mu.Lock()
		j.l = l
		s.mu.Unlock()
	}
	for n := 0; n < s.quantum; n++ {
		s.mu.Lock()
		pause, canceled := j.pauseReq, j.cancelReq
		s.mu.Unlock()
		if canceled {
			s.settle(j, JobCanceled, ErrJobCanceled)
			return
		}
		if pause || ctx.Err() != nil {
			break // park or requeue at the unit boundary
		}
		if d := j.spec.Deadline; d > 0 && j.watch.Elapsed() > d {
			j.cancel()
			s.settle(j, JobFailed, &DeadlineError{Job: j.name, Deadline: d, Elapsed: j.watch.Elapsed()})
			return
		}
		done, err := j.l.step(j.ctx)
		if err != nil {
			s.mu.Lock()
			canceled := j.cancelReq
			s.mu.Unlock()
			if canceled && errors.Is(err, context.Canceled) {
				s.settle(j, JobCanceled, ErrJobCanceled)
			} else {
				s.settle(j, JobFailed, err)
			}
			return
		}
		if done {
			s.settle(j, JobDone, nil)
			return
		}
	}
	s.mu.Lock()
	j.steps = j.l.rep.Steps
	if j.cancelReq {
		s.mu.Unlock()
		s.settle(j, JobCanceled, ErrJobCanceled)
		return
	}
	s.running--
	if j.pauseReq {
		j.pauseReq = false
		j.toState(JobPaused)
		s.mu.Unlock()
		s.ring()
		return
	}
	j.home = w // locality: requeue where the engine's state is warm
	j.enq = s.clock
	j.toState(JobQueued)
	s.queued++
	s.deques[w] = append(s.deques[w], j)
	s.mu.Unlock()
	s.ring()
}

// settle moves a job to a terminal state exactly once, runs OnSettle, then
// unblocks Wait/Cancel. Caller must not hold s.mu.
func (s *Scheduler) settle(j *job, st JobState, err error) {
	s.mu.Lock()
	if j.state.terminal() {
		s.mu.Unlock()
		return
	}
	if j.state == JobRunning {
		s.running--
	}
	if j.l != nil {
		j.steps = j.l.rep.Steps
	}
	j.err = err
	j.toState(st)
	s.stats.Settled++
	s.mu.Unlock()
	j.cancel()
	if j.spec.OnSettle != nil {
		j.spec.OnSettle(err)
	}
	close(j.done)
	s.ring()
}

// toState transitions the job and signals state waiters. Caller holds s.mu.
func (j *job) toState(st JobState) {
	j.state = st
	close(j.stateCh)
	j.stateCh = make(chan struct{})
}

// removeQueued takes a queued job off its deque. Caller holds s.mu.
func (s *Scheduler) removeQueued(j *job) {
	dq := s.deques[j.home]
	for i, q := range dq {
		if q == j {
			s.deques[j.home] = append(dq[:i:i], dq[i+1:]...)
			s.queued--
			return
		}
	}
}

// Handle controls one submitted job.
type Handle struct{ j *job }

// Name returns the job's label.
func (h *Handle) Name() string { return h.j.name }

// State returns the job's current lifecycle state.
func (h *Handle) State() JobState {
	h.j.s.mu.Lock()
	defer h.j.s.mu.Unlock()
	return h.j.state
}

// Steps returns the number of completed units, updated at quantum
// boundaries and on settle.
func (h *Handle) Steps() int {
	h.j.s.mu.Lock()
	defer h.j.s.mu.Unlock()
	return h.j.steps
}

// Err returns the settle error: nil while the job is live or after JobDone,
// ErrJobCanceled after Cancel, the failure (possibly a *DeadlineError)
// after JobFailed.
func (h *Handle) Err() error {
	h.j.s.mu.Lock()
	defer h.j.s.mu.Unlock()
	return h.j.err
}

// Report returns the job's run report after it settled, nil before.
func (h *Handle) Report() *Report {
	h.j.s.mu.Lock()
	defer h.j.s.mu.Unlock()
	if !h.j.state.terminal() || h.j.l == nil {
		return nil
	}
	return h.j.l.rep
}

// Wait blocks until the job settles (returning its settle error) or ctx
// ends (returning ctx.Err()).
func (h *Handle) Wait(ctx context.Context) error {
	select {
	case <-h.j.done:
		return h.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Pause parks the job at its next unit boundary and returns once it is
// parked: a queued job parks immediately, a running one finishes the current
// unit first. The engine retains its full state; Resume continues it without
// rebuilding. Pausing a paused job is a no-op; pausing a settled job returns
// an error wrapping ErrJobSettled. If ctx ends first the request is
// withdrawn.
func (h *Handle) Pause(ctx context.Context) error {
	j := h.j
	s := j.s
	s.mu.Lock()
	switch {
	case j.state.terminal():
		s.mu.Unlock()
		return fmt.Errorf("engine: pausing %s job %s: %w", j.state, j.name, ErrJobSettled)
	case j.state == JobPaused:
		s.mu.Unlock()
		return nil
	case j.state == JobQueued:
		s.removeQueued(j)
		j.toState(JobPaused)
		s.mu.Unlock()
		s.ring()
		return nil
	}
	j.pauseReq = true
	for {
		st := j.state
		ch := j.stateCh
		s.mu.Unlock()
		switch {
		case st == JobPaused:
			return nil
		case st.terminal():
			return fmt.Errorf("engine: pausing %s job %s: %w", st, j.name, ErrJobSettled)
		}
		select {
		case <-ch:
		case <-ctx.Done():
			s.mu.Lock()
			j.pauseReq = false
			s.mu.Unlock()
			return ctx.Err()
		}
		s.mu.Lock()
	}
}

// Resume requeues a paused job on its home deque. Resuming a queued or
// running job is a no-op; resuming a settled job returns an error wrapping
// ErrJobSettled.
func (h *Handle) Resume() error {
	j := h.j
	s := j.s
	s.mu.Lock()
	switch {
	case j.state.terminal():
		s.mu.Unlock()
		return fmt.Errorf("engine: resuming %s job %s: %w", j.state, j.name, ErrJobSettled)
	case j.state != JobPaused:
		s.mu.Unlock()
		return nil
	}
	j.enq = s.clock
	j.toState(JobQueued)
	s.queued++
	s.deques[j.home] = append(s.deques[j.home], j)
	driving := s.driveCtx != nil
	s.mu.Unlock()
	if driving {
		s.ring()
		s.addHelpers()
	}
	return nil
}

// Cancel settles the job as JobCanceled: a queued or paused job immediately,
// a running one by canceling the job context (aborting the unit's fan-out as
// soon as practical) and waiting for it to settle. Canceling a settled job
// returns an error wrapping ErrJobSettled.
func (h *Handle) Cancel(ctx context.Context) error {
	j := h.j
	s := j.s
	s.mu.Lock()
	switch {
	case j.state.terminal():
		s.mu.Unlock()
		return fmt.Errorf("engine: canceling %s job %s: %w", j.state, j.name, ErrJobSettled)
	case j.state == JobQueued:
		s.removeQueued(j)
		s.mu.Unlock()
		s.settle(j, JobCanceled, ErrJobCanceled)
		return nil
	case j.state == JobPaused:
		s.mu.Unlock()
		s.settle(j, JobCanceled, ErrJobCanceled)
		return nil
	}
	j.cancelReq = true
	s.mu.Unlock()
	j.cancel()
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
