package engine_test

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/fl"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/tipselect"
)

func testFed(seed int64) *dataset.Federation {
	return dataset.FMNISTClustered(dataset.FMNISTConfig{
		Clients:        12,
		TrainPerClient: 60,
		TestPerClient:  15,
		Seed:           seed,
	})
}

func testConfig() core.Config {
	return core.Config{
		Rounds:          10,
		ClientsPerRound: 4,
		Local:           nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            nn.Arch{In: 64, Hidden: []int{32}, Out: 10},
		Selector:        tipselect.AccuracyWalk{Alpha: 10},
		Seed:            1,
	}
}

// TestObserverSeesEveryRoundInOrder is the ordering guarantee of the run
// API: exactly cfg.Rounds round events, strictly ordered, under any worker
// count — the engine's internal parallelism must never leak into the event
// stream.
func TestObserverSeesEveryRoundInOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		cfg := testConfig()
		cfg.Workers = workers
		sim, err := core.NewSimulation(testFed(2), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var rounds []int
		publishes := 0
		rep, err := engine.Run(context.Background(), sim, engine.WithHooks(engine.Hooks{
			OnRound: func(ev engine.RoundEvent) {
				rounds = append(rounds, ev.Round)
				if ev.Engine != "specdag" {
					t.Fatalf("engine name %q", ev.Engine)
				}
				if ev.Detail.(*core.RoundResult).Round != ev.Round {
					t.Fatal("Detail does not match the round")
				}
			},
			OnPublish: func(ev engine.PublishEvent) {
				publishes++
				if ev.Tx <= 0 {
					t.Fatalf("publish with bad tx id %d", ev.Tx)
				}
			},
		}))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Completed || rep.Steps != cfg.Rounds {
			t.Fatalf("workers=%d: report %+v, want %d completed steps", workers, rep, cfg.Rounds)
		}
		if len(rounds) != cfg.Rounds {
			t.Fatalf("workers=%d: observer saw %d rounds, want %d", workers, len(rounds), cfg.Rounds)
		}
		for i, r := range rounds {
			if r != i {
				t.Fatalf("workers=%d: event %d reports round %d — out of order", workers, i, r)
			}
		}
		if publishes != sim.DAG().Size()-1 {
			t.Fatalf("workers=%d: %d publish events for %d non-genesis transactions",
				workers, publishes, sim.DAG().Size()-1)
		}
	}
}

// TestCancellationReturnsPartialResults: a canceled Run stops at unit
// granularity and the engine keeps the completed prefix.
func TestCancellationReturnsPartialResults(t *testing.T) {
	sim, err := core.NewSimulation(testFed(3), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := engine.Run(ctx, sim, engine.WithHooks(engine.Hooks{
		OnRound: func(ev engine.RoundEvent) {
			if ev.Round == 2 {
				cancel()
			}
		},
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Completed {
		t.Fatal("canceled run reported completion")
	}
	if rep.Steps != 3 || len(sim.Results()) != 3 {
		t.Fatalf("partial results: steps=%d results=%d, want 3", rep.Steps, len(sim.Results()))
	}
	// The partial prefix matches an uninterrupted run's.
	ref, err := core.NewSimulation(testFed(3), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	refHist := ref.Run()
	for i, rr := range sim.Results() {
		if rr.MeanTrainedAcc() != refHist[i].MeanTrainedAcc() {
			t.Fatalf("partial round %d diverges from uninterrupted run", i)
		}
	}
}

// TestDeadlineCancelsRun: context deadlines work like explicit cancellation.
func TestDeadlineCancelsRun(t *testing.T) {
	cfg := testConfig()
	cfg.Rounds = 1 << 20 // would run forever
	sim, err := core.NewSimulation(testFed(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, err := engine.Run(ctx, sim)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if rep.Completed || rep.Steps == 0 {
		t.Fatalf("deadline report %+v: want some steps, not completed", rep)
	}
}

// TestProbesFireOnCadence: probes run every N units and deliver values.
func TestProbesFireOnCadence(t *testing.T) {
	sim, err := core.NewSimulation(testFed(5), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var steps []int
	_, err = engine.Run(context.Background(), sim,
		engine.WithProbe("dag-size", 3, func() float64 { return float64(sim.DAG().Size()) }),
		engine.WithHooks(engine.Hooks{OnProbe: func(ev engine.ProbeEvent) {
			if ev.Name != "dag-size" || ev.Value < 1 {
				t.Fatalf("bad probe event %+v", ev)
			}
			steps = append(steps, ev.Step)
		}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 6, 9}
	if len(steps) != len(want) {
		t.Fatalf("probe fired at %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("probe fired at %v, want %v", steps, want)
		}
	}
}

// TestHooksCompose: multiple WithHooks options each see every event.
func TestHooksCompose(t *testing.T) {
	sim, err := core.NewSimulation(testFed(6), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := 0, 0
	_, err = engine.Run(context.Background(), sim,
		engine.WithHooks(engine.Hooks{OnRound: func(engine.RoundEvent) { a++ }}),
		engine.WithHooks(engine.Hooks{OnRound: func(engine.RoundEvent) { b++ }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if a != 10 || b != 10 {
		t.Fatalf("hooks saw %d/%d rounds, want 10/10", a, b)
	}
}

// TestCheckpointsRequireSnapshotter: WithCheckpoints fails fast on engines
// without checkpoint support instead of silently skipping.
func TestCheckpointsRequireSnapshotter(t *testing.T) {
	eng, err := fl.NewFederated(testFed(7), fl.Config{
		Rounds: 3, ClientsPerRound: 4,
		Local: nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:  nn.Arch{In: 64, Hidden: []int{32}, Out: 10},
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.Run(context.Background(), eng,
		engine.WithCheckpoints(1, func(int) (io.WriteCloser, error) { return nil, nil }))
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("err = %v, want checkpoint-unsupported error", err)
	}
}

// TestEveryEngineRunsThroughUnifiedAPI: one Run call drives all four engine
// families to completion, and each wrapper-based legacy entry point agrees
// with the engine it wraps.
func TestEveryEngineRunsThroughUnifiedAPI(t *testing.T) {
	fedSeed := int64(8)
	local := nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10}
	arch := nn.Arch{In: 64, Hidden: []int{32}, Out: 10}

	t.Run("async", func(t *testing.T) {
		mk := func() *core.AsyncSimulation {
			a, err := core.NewAsyncSimulation(testFed(fedSeed), core.AsyncConfig{
				Duration: 30, MinCycle: 1, MaxCycle: 8, NetworkDelay: 0.5,
				Local: local, Arch: arch, Selector: tipselect.AccuracyWalk{Alpha: 10}, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
		eng := mk()
		events := 0
		rep, err := engine.Run(context.Background(), eng, engine.WithHooks(engine.Hooks{
			OnRound: func(ev engine.RoundEvent) {
				if ev.Detail.(*core.AsyncEvent).Seq != events {
					t.Fatal("async events out of order")
				}
				events++
			},
		}))
		if err != nil || !rep.Completed {
			t.Fatalf("async run: %v %+v", err, rep)
		}
		if events != eng.Events() || events == 0 {
			t.Fatalf("observer saw %d events, engine processed %d", events, eng.Events())
		}
		// The wrapper produces identical results.
		legacy, err := core.RunAsync(testFed(fedSeed), core.AsyncConfig{
			Duration: 30, MinCycle: 1, MaxCycle: 8, NetworkDelay: 0.5,
			Local: local, Arch: arch, Selector: tipselect.AccuracyWalk{Alpha: 10}, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := eng.Result()
		if got.Transactions != legacy.Transactions || len(got.Clients) != len(legacy.Clients) {
			t.Fatal("engine result diverges from deprecated RunAsync")
		}
		for i := range got.Clients {
			if got.Clients[i] != legacy.Clients[i] {
				t.Fatalf("client %d stats diverge", i)
			}
		}
	})

	t.Run("federated", func(t *testing.T) {
		cfg := fl.Config{Rounds: 8, ClientsPerRound: 4, Local: local, Arch: arch, Seed: 2}
		eng, err := fl.NewFederated(testFed(fedSeed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rounds := 0
		rep, err := engine.Run(context.Background(), eng, engine.WithHooks(engine.Hooks{
			OnRound: func(ev engine.RoundEvent) { rounds++ },
		}))
		if err != nil || !rep.Completed || rounds != cfg.Rounds {
			t.Fatalf("federated run: %v %+v rounds=%d", err, rep, rounds)
		}
		legacy, err := fl.Run(testFed(fedSeed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := eng.Result()
		for i := range got.Rounds {
			if got.Rounds[i].MeanAcc != legacy.Rounds[i].MeanAcc {
				t.Fatalf("round %d diverges from deprecated fl.Run", i)
			}
		}
	})

	t.Run("gossip", func(t *testing.T) {
		cfg := fl.GossipConfig{Rounds: 8, ClientsPerRound: 4, Local: local, Arch: arch, Seed: 3}
		eng, err := fl.NewGossip(testFed(fedSeed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := engine.Run(context.Background(), eng)
		if err != nil || !rep.Completed || rep.Steps != cfg.Rounds {
			t.Fatalf("gossip run: %v %+v", err, rep)
		}
		legacy, err := fl.RunGossip(testFed(fedSeed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := eng.Result()
		for i := range got.Rounds {
			if got.Rounds[i].MeanAcc != legacy.Rounds[i].MeanAcc {
				t.Fatalf("round %d diverges from deprecated fl.RunGossip", i)
			}
		}
	})
}

// TestAsyncCancellationPartialResult: canceling the event engine mid-run
// leaves a usable partial Result.
func TestAsyncCancellationPartialResult(t *testing.T) {
	a, err := core.NewAsyncSimulation(testFed(9), core.AsyncConfig{
		Duration: 60, MinCycle: 1, MaxCycle: 4, NetworkDelay: 0.5,
		Local: nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:  nn.Arch{In: 64, Hidden: []int{32}, Out: 10},
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := engine.Run(ctx, a, engine.WithHooks(engine.Hooks{
		OnRound: func(ev engine.RoundEvent) {
			if ev.Round == 19 {
				cancel()
			}
		},
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if rep.Steps != 20 || a.Events() != 20 {
		t.Fatalf("steps=%d events=%d, want 20", rep.Steps, a.Events())
	}
	res := a.Result()
	cycles := 0
	for _, c := range res.Clients {
		cycles += c.Cycles
	}
	if cycles != 20 {
		t.Fatalf("partial result has %d cycles, want 20", cycles)
	}
}
