package core

import (
	"testing"
	"time"

	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/tipselect"
)

// runWithWorkers executes a full simulation with the given worker count and
// returns its history and final tangle.
func runWithWorkers(t *testing.T, cfg Config, fedSeed int64, workers int) ([]RoundResult, *Simulation) {
	t.Helper()
	cfg.Workers = workers
	sim, err := NewSimulation(smallFed(fedSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Run(), sim
}

// assertHistoriesIdentical compares two RoundResult histories field by field.
// WalkDurations is wall-clock and excluded; everything else must be
// bit-identical.
func assertHistoriesIdentical(t *testing.T, a, b []RoundResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for r := range a {
		x, y := a[r], b[r]
		if x.Round != y.Round {
			t.Fatalf("round %d: Round %d vs %d", r, x.Round, y.Round)
		}
		eqInts := func(name string, xs, ys []int) {
			if len(xs) != len(ys) {
				t.Fatalf("round %d: %s lengths differ", r, name)
			}
			for i := range xs {
				if xs[i] != ys[i] {
					t.Fatalf("round %d: %s[%d] = %d vs %d", r, name, i, xs[i], ys[i])
				}
			}
		}
		eqFloats := func(name string, xs, ys []float64) {
			if len(xs) != len(ys) {
				t.Fatalf("round %d: %s lengths differ", r, name)
			}
			for i := range xs {
				if xs[i] != ys[i] {
					t.Fatalf("round %d: %s[%d] = %v vs %v", r, name, i, xs[i], ys[i])
				}
			}
		}
		eqInts("Active", x.Active, y.Active)
		eqFloats("TrainedAcc", x.TrainedAcc, y.TrainedAcc)
		eqFloats("TrainedLoss", x.TrainedLoss, y.TrainedLoss)
		eqFloats("RefAcc", x.RefAcc, y.RefAcc)
		eqFloats("RefLoss", x.RefLoss, y.RefLoss)
		eqFloats("FlippedFrac", x.FlippedFrac, y.FlippedFrac)
		eqInts("RefPoisonedApprovals", x.RefPoisonedApprovals, y.RefPoisonedApprovals)
		if len(x.Published) != len(y.Published) {
			t.Fatalf("round %d: Published lengths differ", r)
		}
		for i := range x.Published {
			if x.Published[i] != y.Published[i] {
				t.Fatalf("round %d: Published[%d] differs", r, i)
			}
		}
		if len(x.RefTx) != len(y.RefTx) {
			t.Fatalf("round %d: RefTx lengths differ", r)
		}
		for i := range x.RefTx {
			if x.RefTx[i] != y.RefTx[i] {
				t.Fatalf("round %d: RefTx[%d] = %d vs %d", r, i, x.RefTx[i], y.RefTx[i])
			}
		}
		if len(x.ActivePoisoned) != len(y.ActivePoisoned) {
			t.Fatalf("round %d: ActivePoisoned lengths differ", r)
		}
		for i := range x.ActivePoisoned {
			if x.ActivePoisoned[i] != y.ActivePoisoned[i] {
				t.Fatalf("round %d: ActivePoisoned[%d] differs", r, i)
			}
		}
		if x.Walk != y.Walk {
			t.Fatalf("round %d: WalkStats %+v vs %+v", r, x.Walk, y.Walk)
		}
	}
}

// assertDAGsIdentical compares every transaction of two tangles.
func assertDAGsIdentical(t *testing.T, a, b *Simulation) {
	t.Helper()
	txa, txb := a.DAG().All(), b.DAG().All()
	if len(txa) != len(txb) {
		t.Fatalf("DAG sizes differ: %d vs %d", len(txa), len(txb))
	}
	for i := range txa {
		x, y := txa[i], txb[i]
		if x.ID != y.ID || x.Issuer != y.Issuer || x.Round != y.Round || x.Meta != y.Meta {
			t.Fatalf("tx %d: header differs: %+v vs %+v", i, x, y)
		}
		if len(x.Parents) != len(y.Parents) {
			t.Fatalf("tx %d: parent counts differ", i)
		}
		for j := range x.Parents {
			if x.Parents[j] != y.Parents[j] {
				t.Fatalf("tx %d: parent %d = %d vs %d", i, j, x.Parents[j], y.Parents[j])
			}
		}
		if len(x.Params) != len(y.Params) {
			t.Fatalf("tx %d: param counts differ", i)
		}
		for j := range x.Params {
			if x.Params[j] != y.Params[j] {
				t.Fatalf("tx %d: param %d = %v vs %v", i, j, x.Params[j], y.Params[j])
			}
		}
	}
}

// TestWorkerCountInvariance is the parallel engine's core guarantee: a
// Workers=1 run and a Workers=8 run of the same configuration produce
// bit-identical round histories and DAG contents, across every feature that
// touches the per-client code path (poisoning, reference averaging, partial
// sharing, partial visibility, the publish gate, and walk accounting).
func TestWorkerCountInvariance(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"baseline", func(c *Config) {}},
		{"poisoned", func(c *Config) {
			c.Poison = PoisonConfig{Fraction: 0.25, FlipA: 3, FlipB: 8, StartRound: 4, RandomAttackers: 1}
		}},
		{"reference-walks-3", func(c *Config) { c.ReferenceWalks = 3 }},
		{"partial-sharing", func(c *Config) { c.SharedLayers = 1 }},
		{"reveal-delay", func(c *Config) { c.RevealDelay = 2 }},
		{"gate-off-measure-time", func(c *Config) { c.DisablePublishGate = true; c.MeasureWalkTime = true }},
		{"weighted-walk", func(c *Config) { c.Selector = tipselect.WeightedWalk{Alpha: 0.1} }},
		{"memo-disabled", func(c *Config) { c.DisableEvalMemo = true }},
		{"eval-scope-round", func(c *Config) { c.EvalScope = EvalScopeRound }},
		{"eval-scope-none", func(c *Config) { c.EvalScope = EvalScopeNone }},
		// Grow the tangle past the parallel cumulative-weight threshold with
		// a shared budget, so the Workers=8 run exercises the level-parallel
		// sweep (and the nested budget accounting) while Workers=1 stays on
		// the sequential sweep — the sweeps must agree bit for bit.
		{"weighted-walk-parallel-sweep", func(c *Config) {
			c.Selector = tipselect.WeightedWalk{Alpha: 0.1}
			c.DisablePublishGate = true
			c.Rounds = 23
			c.Pool = par.NewBudget(4)
		}},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig()
			cfg.ClientsPerRound = 6
			tc.mutate(&cfg)
			fedSeed := int64(60 + i)
			seqHist, seqSim := runWithWorkers(t, cfg, fedSeed, 1)
			parHist, parSim := runWithWorkers(t, cfg, fedSeed, 8)
			assertHistoriesIdentical(t, seqHist, parHist)
			assertDAGsIdentical(t, seqSim, parSim)
		})
	}
}

// TestAsyncWorkerCountInvariance: the async engine's per-event evaluation
// fan-out must not change results either.
func TestAsyncWorkerCountInvariance(t *testing.T) {
	run := func(workers int) *AsyncResult {
		cfg := asyncConfig()
		cfg.Workers = workers
		res, err := RunAsync(smallFed(70), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	if a.Transactions != b.Transactions {
		t.Fatalf("DAG size differs across worker counts: %d vs %d", a.Transactions, b.Transactions)
	}
	for i := range a.Clients {
		if a.Clients[i] != b.Clients[i] {
			t.Fatalf("client %d stats differ: %+v vs %+v", i, a.Clients[i], b.Clients[i])
		}
	}
}

func TestWorkersValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Workers should be rejected")
	}
	acfg := asyncConfig()
	acfg.Workers = -1
	if err := acfg.Validate(); err == nil {
		t.Error("negative async Workers should be rejected")
	}
}

// TestMeanWalkDurationEmpty guards the MeasureWalkTime-off path: a round
// with no recorded walk durations must report 0, not divide by zero.
func TestMeanWalkDurationEmpty(t *testing.T) {
	var rr RoundResult
	if got := rr.MeanWalkDuration(); got != 0 {
		t.Fatalf("MeanWalkDuration on empty slice = %v, want 0", got)
	}
	rr.WalkDurations = []time.Duration{2 * time.Millisecond, 4 * time.Millisecond}
	if got := rr.MeanWalkDuration(); got != 3*time.Millisecond {
		t.Fatalf("MeanWalkDuration = %v, want 3ms", got)
	}
}

// benchmarkRoundWorkers measures RunRound at a fixed worker count; compare
// the Workers1 and WorkersMax variants for the engine's wall-clock speedup.
func benchmarkRoundWorkers(b *testing.B, workers int) {
	fed := smallFed(16)
	cfg := smallConfig()
	cfg.ClientsPerRound = 8
	cfg.Rounds = b.N + 1
	cfg.Workers = workers
	sim, err := NewSimulation(fed, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunRound()
	}
}

func BenchmarkSimulationRoundWorkers1(b *testing.B)   { benchmarkRoundWorkers(b, 1) }
func BenchmarkSimulationRoundWorkers4(b *testing.B)   { benchmarkRoundWorkers(b, 4) }
func BenchmarkSimulationRoundWorkersMax(b *testing.B) { benchmarkRoundWorkers(b, 0) }
