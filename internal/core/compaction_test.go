package core

// The compaction equivalence suite: with a depth-banded selector, turning
// epoch compaction on must not change a single byte of a run's observable
// output — round/event histories, final statistics, and the final DAG
// (frozen parameter vectors rehydrated from their spill files) are compared
// against the keep-everything reference, across worker counts. Compacted
// checkpoints must additionally resume bit-identically from any event index
// (the crash-anywhere contract, with epoch state riding in the snapshot).

import (
	"bytes"
	"strings"
	"testing"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/faults"
	"github.com/specdag/specdag/internal/tipselect"
)

// bandedSelector is the depth-banded accuracy walk the compaction tests run
// under; GuardDepth derives from its DepthMax.
func bandedSelector() tipselect.Selector {
	return tipselect.AccuracyWalk{Alpha: 10, DepthMin: 2, DepthMax: 5}
}

// assertDAGsEquivalent compares two DAGs transaction by transaction —
// structure and metadata directly, parameter vectors through ParamsOf so a
// compacted DAG's frozen epochs are rehydrated from their spill files.
func assertDAGsEquivalent(t *testing.T, ref, got *dag.DAG) {
	t.Helper()
	if ref.Size() != got.Size() {
		t.Fatalf("DAG sizes differ: %d vs %d", ref.Size(), got.Size())
	}
	for _, rtx := range ref.All() {
		gtx := got.MustGet(rtx.ID)
		if rtx.Issuer != gtx.Issuer || rtx.Round != gtx.Round || rtx.Meta != gtx.Meta {
			t.Fatalf("tx %d differs: %+v vs %+v", rtx.ID, rtx, gtx)
		}
		if len(rtx.Parents) != len(gtx.Parents) {
			t.Fatalf("tx %d parent counts differ", rtx.ID)
		}
		for i := range rtx.Parents {
			if rtx.Parents[i] != gtx.Parents[i] {
				t.Fatalf("tx %d parent %d differs: %d vs %d", rtx.ID, i, rtx.Parents[i], gtx.Parents[i])
			}
		}
		rp, err := ref.ParamsOf(rtx.ID)
		if err != nil {
			t.Fatalf("reference ParamsOf(%d): %v", rtx.ID, err)
		}
		gp, err := got.ParamsOf(rtx.ID)
		if err != nil {
			t.Fatalf("compacted ParamsOf(%d): %v", rtx.ID, err)
		}
		if len(rp) != len(gp) {
			t.Fatalf("tx %d param dims differ: %d vs %d", rtx.ID, len(rp), len(gp))
		}
		for i := range rp {
			if rp[i] != gp[i] {
				t.Fatalf("tx %d param %d differs: %v vs %v", rtx.ID, i, rp[i], gp[i])
			}
		}
	}
}

// TestCompactionEquivalenceSync pins the tentpole claim for the round
// engine: identical history and final DAG with compaction on or off, across
// worker counts.
func TestCompactionEquivalenceSync(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "workers-1", 4: "workers-4"}[workers], func(t *testing.T) {
			cfg := smallConfig()
			cfg.Rounds = 24
			cfg.Selector = bandedSelector()
			cfg.Workers = workers
			fed := smallFed(31)

			ref, err := NewSimulation(fed, cfg)
			if err != nil {
				t.Fatal(err)
			}
			refHist := ref.Run()

			ccfg := cfg
			ccfg.Compaction = dag.Compaction{Width: 3, Live: 2, SpillDir: t.TempDir()}
			comp, err := NewSimulation(smallFed(31), ccfg)
			if err != nil {
				t.Fatal(err)
			}
			compHist := comp.Run()

			if comp.DAG().LiveFloor() == 0 {
				t.Fatal("compaction never froze an epoch; the equivalence run is vacuous")
			}
			assertHistoriesIdentical(t, refHist, compHist)
			assertDAGsEquivalent(t, ref.DAG(), comp.DAG())
		})
	}
}

// TestCompactionEquivalenceAsync pins the tentpole claim for the
// event-driven engine: identical event stream, final statistics and final
// DAG with compaction on or off, across worker counts.
func TestCompactionEquivalenceAsync(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "workers-1", 4: "workers-4"}[workers], func(t *testing.T) {
			cfg := asyncConfig()
			cfg.Duration = 45
			cfg.Selector = bandedSelector()
			cfg.Workers = workers
			fedSeed := int64(32)

			ref, err := NewAsyncSimulation(smallFed(fedSeed), cfg)
			if err != nil {
				t.Fatal(err)
			}
			refEvents := drainAsync(ref)

			ccfg := cfg
			ccfg.Compaction = dag.Compaction{Width: 5, Live: 2, SpillDir: t.TempDir()}
			comp, err := NewAsyncSimulation(smallFed(fedSeed), ccfg)
			if err != nil {
				t.Fatal(err)
			}
			compEvents := drainAsync(comp)

			if comp.DAG().LiveFloor() == 0 {
				t.Fatal("compaction never froze an epoch; the equivalence run is vacuous")
			}
			assertAsyncEventsIdentical(t, refEvents, compEvents)
			assertAsyncResultsIdentical(t, ref.Result(), comp.Result())
			assertDAGsEquivalent(t, ref.DAG(), comp.DAG())
		})
	}
}

// TestCompactionEquivalenceDeadCones pins byte-identity for the guard's
// dead-cone exclusion. With a wide entry band, the pre-band-era DAG strands
// orphan tips that no walk can ever reach again; the guard must freeze past
// them (without the exclusion they would pin it at round ~0 forever) while
// still not changing a byte of the run. Seed 31 over this configuration is
// known to freeze several orphan tips below the live floor — the test
// asserts that, so the exclusion path is provably exercised, then demands
// full event-stream and DAG equivalence against the keep-everything run.
func TestCompactionEquivalenceDeadCones(t *testing.T) {
	cfg := asyncConfig()
	cfg.Duration = 240
	cfg.Selector = tipselect.AccuracyWalk{Alpha: 10, DepthMin: 8, DepthMax: 16}
	fedSeed := int64(31)

	ref, err := NewAsyncSimulation(smallFed(fedSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	refEvents := drainAsync(ref)

	ccfg := cfg
	ccfg.Compaction = dag.Compaction{Width: 30, Live: 2, SpillDir: t.TempDir()}
	comp, err := NewAsyncSimulation(smallFed(fedSeed), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	compEvents := drainAsync(comp)

	floor := comp.DAG().LiveFloor()
	if floor == 0 {
		t.Fatal("compaction never froze an epoch; the dead-cone run is vacuous")
	}
	deadFrozen := 0
	for _, id := range comp.DAG().Tips() {
		if id < floor {
			deadFrozen++
		}
	}
	if deadFrozen == 0 {
		t.Fatalf("no orphan tip below the live floor %d; dead-cone exclusion never engaged", floor)
	}
	t.Logf("froze past %d orphan tips (live floor %d of %d txs)", deadFrozen, floor, comp.DAG().Size())

	assertAsyncEventsIdentical(t, refEvents, compEvents)
	assertAsyncResultsIdentical(t, ref.Result(), comp.Result())
	assertDAGsEquivalent(t, ref.DAG(), comp.DAG())
}

// TestCompactionCrashAnywhereResumeAsync extends the crash-anywhere contract
// to compacted runs: a checkpoint taken at every event index of a compacting
// run — epoch summaries and the truncated live-suffix DAG riding in the
// snapshot — resumes into a run whose remaining events, statistics and
// final DAG match the uninterrupted compacted reference bit for bit.
func TestCompactionCrashAnywhereResumeAsync(t *testing.T) {
	cfg := asyncConfig()
	cfg.Duration = 30
	cfg.Selector = bandedSelector()
	cfg.Workers = 2
	cfg.Compaction = dag.Compaction{Width: 4, Live: 2, SpillDir: t.TempDir()}
	fedSeed := int64(33)

	ckpts, refEvents, ref := asyncCheckpointsAtEveryEvent(t, cfg, fedSeed)
	if ref.DAG().LiveFloor() == 0 {
		t.Fatal("compaction never froze an epoch; the crash-anywhere run is vacuous")
	}
	refDAG := asyncDAGBytes(t, ref)
	sawFrozen := false
	for _, c := range ckpts {
		info, _, err := InspectCheckpoint(bytes.NewReader(c.blob))
		if err != nil {
			t.Fatalf("inspect at event %d: %v", c.k, err)
		}
		sawFrozen = sawFrozen || info.FrozenEpochs > 0
		resumeAsyncAndCompare(t, cfg, fedSeed, c.k, c.blob, refEvents, ref, refDAG)
	}
	if !sawFrozen {
		t.Fatal("no checkpoint carried frozen epoch state")
	}
}

// TestCompactionCrashAnywhereResumeSync is the synchronous counterpart:
// every round boundary of a compacting run must resume bit-identically.
func TestCompactionCrashAnywhereResumeSync(t *testing.T) {
	// Seed 31 is known (from the equivalence suite) to produce a run where
	// epochs actually freeze: an early orphan tip would otherwise hold the
	// guard at round 0 forever, making the test vacuous.
	cfg := smallConfig()
	cfg.Rounds = 24
	cfg.Selector = bandedSelector()
	cfg.Workers = 2
	cfg.Compaction = dag.Compaction{Width: 3, Live: 2, SpillDir: t.TempDir()}
	fedSeed := int64(31)

	ckpts, refHist, ref := syncCheckpointsAtEveryRound(t, cfg, fedSeed)
	if ref.DAG().LiveFloor() == 0 {
		t.Fatal("compaction never froze an epoch; the crash-anywhere run is vacuous")
	}
	refDAG := dagBytes(t, ref)
	for k, ckpt := range ckpts {
		resumed, err := ResumeSimulation(smallFed(fedSeed), cfg, bytes.NewReader(ckpt))
		if err != nil {
			t.Fatalf("resume at round %d: %v", k, err)
		}
		resHist := resumed.Run()
		assertHistoriesIdentical(t, refHist, resHist)
		if !bytes.Equal(refDAG, dagBytes(t, resumed)) {
			t.Fatalf("resume at round %d: serialized DAGs differ byte-for-byte", k)
		}
	}
}

// TestCompactionCheckpointSizeTracksLiveSuffix is the bounded-checkpoint
// half of the acceptance bar: once epochs freeze, a compacted checkpoint
// must be much smaller than the keep-everything one at the same point.
func TestCompactionCheckpointSizeTracksLiveSuffix(t *testing.T) {
	// Seed 32 matches the async equivalence run, where epochs are known to
	// freeze under this width/horizon.
	cfg := asyncConfig()
	cfg.Duration = 45
	cfg.Selector = bandedSelector()
	fedSeed := int64(32)

	ref, err := NewAsyncSimulation(smallFed(fedSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	drainAsync(ref)
	var refSnap bytes.Buffer
	if _, err := ref.WriteCheckpoint(&refSnap); err != nil {
		t.Fatal(err)
	}

	ccfg := cfg
	ccfg.Compaction = dag.Compaction{Width: 5, Live: 2, SpillDir: t.TempDir()}
	comp, err := NewAsyncSimulation(smallFed(fedSeed), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	drainAsync(comp)
	var compSnap bytes.Buffer
	if _, err := comp.WriteCheckpoint(&compSnap); err != nil {
		t.Fatal(err)
	}

	floor := int(comp.DAG().LiveFloor())
	if floor == 0 {
		t.Fatal("nothing froze")
	}
	frozenFrac := float64(floor) / float64(comp.DAG().Size())
	// The frozen transactions' parameter vectors dominate checkpoint size;
	// releasing them must shrink the snapshot roughly in proportion.
	if got, want := float64(compSnap.Len())/float64(refSnap.Len()), 1-frozenFrac/2; got > want {
		t.Fatalf("compacted checkpoint is %.2fx the reference (floor %d/%d txs); want <= %.2fx",
			got, floor, comp.DAG().Size(), want)
	}
}

// TestCompactionConfigRejections pins the restrictions that make the safety
// argument hold: no fault injection, no partial visibility, and a selector
// with a depth band.
func TestCompactionConfigRejections(t *testing.T) {
	comp := dag.Compaction{Width: 5, Live: 2}

	t.Run("sync reveal delay", func(t *testing.T) {
		cfg := smallConfig()
		cfg.Selector = bandedSelector()
		cfg.Compaction = comp
		cfg.RevealDelay = 2
		if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "ideal broadcast") {
			t.Fatalf("RevealDelay + Compaction accepted: %v", err)
		}
	})
	t.Run("async faults", func(t *testing.T) {
		cfg := asyncConfig()
		cfg.Selector = bandedSelector()
		cfg.Compaction = comp
		cfg.NetworkDelay = 0
		cfg.Faults = faults.Scalar(0.5)
		if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "Faults") {
			t.Fatalf("Faults + Compaction accepted: %v", err)
		}
	})
	t.Run("unbanded accuracy walk", func(t *testing.T) {
		cfg := smallConfig()
		cfg.Compaction = comp // default selector has no depth band
		if _, err := NewSimulation(smallFed(36), cfg); err == nil || !strings.Contains(err.Error(), "depth band") {
			t.Fatalf("unbanded selector accepted: %v", err)
		}
	})
	t.Run("weighted walk", func(t *testing.T) {
		cfg := asyncConfig()
		cfg.Selector = tipselect.WeightedWalk{Alpha: 1, DepthMin: 2, DepthMax: 5}
		cfg.Compaction = comp
		if _, err := NewAsyncSimulation(smallFed(37), cfg); err == nil || !strings.Contains(err.Error(), "incompatible") {
			t.Fatalf("weighted walk accepted: %v", err)
		}
	})
	t.Run("resume under different compaction", func(t *testing.T) {
		cfg := asyncConfig()
		cfg.Duration = 10
		cfg.Selector = bandedSelector()
		cfg.Compaction = comp
		a, err := NewAsyncSimulation(smallFed(38), cfg)
		if err != nil {
			t.Fatal(err)
		}
		drainAsync(a)
		var snap bytes.Buffer
		if _, err := a.WriteCheckpoint(&snap); err != nil {
			t.Fatal(err)
		}
		other := cfg
		other.Compaction = dag.Compaction{}
		if _, err := ResumeAsyncSimulation(smallFed(38), other, bytes.NewReader(snap.Bytes())); err == nil {
			t.Fatal("resume under a different compaction config accepted")
		}
	})
}
