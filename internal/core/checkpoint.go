package core

// Checkpoint/resume for the round simulation: the full simulation state —
// tangle, per-client training state, poisoning flags, round counter and the
// recorded history — serialized to a versioned binary snapshot, extending
// the DAG codec (internal/dag, "SDG1") to whole simulations. A run resumed
// from a checkpoint is bit-identical to one that was never interrupted:
//
//   - All randomness derives from Config.Seed through pure splits keyed by
//     round and client (xrand.Split*), so the "RNG streams" of a checkpoint
//     are just the seed — no mutable generator state exists to save. The
//     seed is stored and verified so a snapshot cannot silently resume under
//     a different randomness universe.
//   - Client-side carried state (lastParams for partial-layer sharing,
//     poisoned flags and the label flips they imply) is restored explicitly.
//   - Partial-visibility views and evaluator memo caches are reconstructed,
//     not stored: reveal predicates are monotone in the round counter, so a
//     fresh view reveals exactly the accumulated set, and memoization only
//     caches pure per-transaction accuracies (a cold cache re-computes the
//     same values; walk stats count accuracy lookups, not cache misses).
//
// Format: magic "SDC1", then a single gob-encoded checkpointState whose DAG
// field holds the tangle in the SDG1 codec.

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/faults"
)

// checkpointMagic identifies synchronous simulation checkpoints and fixes
// the version. The event-driven engine's checkpoints are the async variant
// of the same family (asyncCheckpointMagic, checkpoint_async.go).
var checkpointMagic = [4]byte{'S', 'D', 'C', '1'}

// codecMagicSDG1 mirrors the DAG codec's magic so the checkpoint readers can
// tell a user who hands them a bare tangle snapshot what they actually have.
var codecMagicSDG1 = [4]byte{'S', 'D', 'G', '1'}

// eventStreamMagicSDE1 mirrors the event-stream codec's magic
// (internal/wire) for the same reason: a user who points a resume at a
// saved event log gets told what the file actually is.
var eventStreamMagicSDE1 = [4]byte{'S', 'D', 'E', '1'}

// clientCheckpoint is the per-client carried state.
type clientCheckpoint struct {
	ID         int
	Poisoned   bool
	LastParams []float64
}

// checkpointState is the serialized simulation.
type checkpointState struct {
	Seed    int64
	Poison  PoisonConfig // restoring label flips needs the attack parameters
	Round   int
	Rounds  int // configured horizon at checkpoint time (informational)
	Clients []clientCheckpoint
	Results []RoundResult
	DAG     []byte // SDG1 snapshot (dag.WriteTo)

	// Versioned fault-state section. FaultsVersion is 0 for pre-fault
	// snapshots and fault-free runs (gob leaves absent fields zero, so old
	// snapshots decode cleanly) and 1 when a fault schedule was active —
	// the schedule itself is all that needs saving, because the instantiated
	// model is a pure function of (schedule, seed, clients, horizon).
	FaultsVersion int
	Faults        faults.Config

	// Versioned epoch-compaction section (0 = compaction off or pre-epoch
	// snapshot; old snapshots decode cleanly). When 1, Compaction holds the
	// active config and Epochs the frozen epoch summaries; the embedded DAG
	// carries frozen transactions with released (empty) parameter vectors,
	// so checkpoint size stays proportional to the live suffix.
	CompactionVersion int
	Compaction        dag.Compaction
	Epochs            []dag.EpochSummary
}

// WriteCheckpoint serializes the simulation's full state to w and returns
// the number of bytes written. The simulation can keep running afterwards;
// the checkpoint captures the state between rounds.
func (s *Simulation) WriteCheckpoint(w io.Writer) (int64, error) {
	var dagBuf bytes.Buffer
	if _, err := s.tangle.WriteTo(&dagBuf); err != nil {
		return 0, fmt.Errorf("core: checkpointing DAG: %w", err)
	}
	st := checkpointState{
		Seed:    s.cfg.Seed,
		Poison:  s.cfg.Poison,
		Round:   s.round,
		Rounds:  s.cfg.Rounds,
		Results: s.results,
		DAG:     dagBuf.Bytes(),
	}
	if s.cfg.Faults.Enabled() {
		st.FaultsVersion = 1
		st.Faults = s.cfg.Faults
	}
	if s.cfg.Compaction.Enabled() {
		st.CompactionVersion = 1
		st.Compaction = s.cfg.Compaction
		st.Epochs = s.tangle.FrozenEpochs()
	}
	for _, c := range s.clients {
		st.Clients = append(st.Clients, clientCheckpoint{
			ID:         c.id,
			Poisoned:   c.poisoned,
			LastParams: c.lastParams,
		})
	}
	cw := &countingWriter{w: w}
	if _, err := cw.Write(checkpointMagic[:]); err != nil {
		return cw.n, err
	}
	if err := gob.NewEncoder(cw).Encode(st); err != nil {
		return cw.n, fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	return cw.n, nil
}

// countingWriter tracks bytes written for WriteCheckpoint's return value.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// readCheckpointState decodes and structurally validates a checkpoint.
func readCheckpointState(r io.Reader) (*checkpointState, *dag.DAG, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	switch magic {
	case checkpointMagic:
	case asyncCheckpointMagic:
		return nil, nil, fmt.Errorf("core: this is an asynchronous event-simulation checkpoint (magic %q) — resume it with ResumeAsyncSimulation, not ResumeSimulation", magic)
	case codecMagicSDG1:
		return nil, nil, fmt.Errorf("core: bad magic %q — this is a bare DAG snapshot, not a simulation checkpoint (inspect it with dagstat or dag.ReadDAG)", magic)
	case eventStreamMagicSDE1:
		return nil, nil, fmt.Errorf("core: bad magic %q — this is an event-stream log, not a simulation checkpoint (inspect it with dagstat or wire.ReadAll)", magic)
	default:
		return nil, nil, fmt.Errorf("core: bad magic %q (not a SDC1 checkpoint)", magic)
	}
	var st checkpointState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if st.Round < 0 {
		return nil, nil, fmt.Errorf("core: checkpoint has negative round %d", st.Round)
	}
	if len(st.Results) != st.Round {
		return nil, nil, fmt.Errorf("core: checkpoint records %d results for %d rounds", len(st.Results), st.Round)
	}
	if st.FaultsVersion < 0 || st.FaultsVersion > 1 {
		return nil, nil, fmt.Errorf("core: checkpoint fault section has version %d, this build understands 0 and 1 — written by a newer version?", st.FaultsVersion)
	}
	if st.FaultsVersion == 1 {
		if err := st.Faults.Validate(); err != nil {
			return nil, nil, fmt.Errorf("core: checkpoint fault schedule: %w", err)
		}
	}
	if st.CompactionVersion < 0 || st.CompactionVersion > 1 {
		return nil, nil, fmt.Errorf("core: checkpoint epoch section has version %d, this build understands 0 and 1 — written by a newer version?", st.CompactionVersion)
	}
	if st.CompactionVersion == 1 {
		if !st.Compaction.Enabled() {
			return nil, nil, fmt.Errorf("core: checkpoint epoch section is versioned but its compaction config is disabled")
		}
		if err := st.Compaction.Validate(); err != nil {
			return nil, nil, fmt.Errorf("core: checkpoint compaction config: %w", err)
		}
	}
	d, err := dag.ReadDAG(bytes.NewReader(st.DAG))
	if err != nil {
		return nil, nil, fmt.Errorf("core: checkpoint DAG: %w", err)
	}
	if st.CompactionVersion == 1 {
		if err := d.RestoreCompaction(st.Compaction, st.Epochs); err != nil {
			return nil, nil, fmt.Errorf("core: checkpoint epoch state: %w", err)
		}
	}
	return &st, d, nil
}

// compactionMatches verifies that a checkpoint's compaction config equals
// the resume config. The guard band is excluded: engines derive it from the
// selector on both sides, and the checkpointed copy carries the derived
// values while a fresh config usually leaves them zero.
func compactionMatches(st, cfg dag.Compaction) bool {
	st.GuardDepth, cfg.GuardDepth = 0, 0
	st.GuardDepthMin, cfg.GuardDepthMin = 0, 0
	return st == cfg
}

// ResumeSimulation reconstructs a simulation from a checkpoint written by
// WriteCheckpoint, using the same federation and configuration as the
// original run. The resumed simulation continues from the checkpointed
// round and produces a history and DAG bit-identical to a run that was
// never interrupted. cfg.Rounds may exceed the original horizon to extend
// the run.
func ResumeSimulation(fed *dataset.Federation, cfg Config, r io.Reader) (*Simulation, error) {
	st, d, err := readCheckpointState(r)
	if err != nil {
		return nil, err
	}
	if st.Seed != cfg.Seed {
		return nil, fmt.Errorf("core: checkpoint was taken with Seed %d, config has %d — resuming under a different seed would diverge",
			st.Seed, cfg.Seed)
	}
	if st.Poison != cfg.Poison {
		// The label flips applied before the checkpoint are a function of
		// the attack parameters; resuming under different ones would leave
		// client data inconsistent with the poisoned flags.
		return nil, fmt.Errorf("core: checkpoint was taken with Poison %+v, config has %+v — resuming under a different attack would diverge",
			st.Poison, cfg.Poison)
	}
	if !st.Faults.Equal(cfg.Faults) {
		return nil, fmt.Errorf("core: checkpoint was taken with fault schedule %+v, config has %+v — resuming under a different schedule would diverge",
			st.Faults, cfg.Faults)
	}
	if !compactionMatches(st.Compaction, cfg.Compaction) {
		return nil, fmt.Errorf("core: checkpoint was taken with compaction %+v, config has %+v — resuming under a different epoch config would diverge",
			st.Compaction, cfg.Compaction)
	}
	if cfg.Faults.Enabled() && st.Rounds != cfg.Rounds {
		// The instantiated fault model draws churn windows within [0, Rounds)
		// and partitions are phrased against it; a different horizon is a
		// different schedule.
		return nil, fmt.Errorf("core: checkpoint was taken with a %d-round horizon, config has %d — the fault schedule is drawn against the horizon, so it cannot be extended on resume",
			st.Rounds, cfg.Rounds)
	}
	s, err := NewSimulation(fed, cfg)
	if err != nil {
		return nil, err
	}
	if len(st.Clients) != len(s.clients) {
		return nil, fmt.Errorf("core: checkpoint has %d clients, federation has %d", len(st.Clients), len(s.clients))
	}
	// The checkpointed genesis must match the one the seed regenerates:
	// a mismatch means the checkpoint belongs to a different architecture
	// or a tampered snapshot.
	want, got := s.tangle.Genesis().Params, d.Genesis().Params
	if len(want) != len(got) {
		return nil, fmt.Errorf("core: checkpoint genesis has %d params, config architecture needs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return nil, fmt.Errorf("core: checkpoint genesis diverges from the seeded genesis at param %d", i)
		}
	}

	s.tangle = d
	// The restored tangle replaces the one NewSimulation configured: re-wire
	// its cumulative-weight sweep to the configured budget, as NewSimulation
	// did for the original.
	s.tangle.SetParallelism(cfg.Pool, cfg.Workers)
	if st.CompactionVersion == 1 {
		// readCheckpointState restored the frozen-epoch state on d; rebase
		// the (cold) eval caches so their dense indexing starts at the live
		// floor, exactly as the uninterrupted run's caches did.
		s.compFloor = s.tangle.LiveFloor()
		for _, c := range s.clients {
			c.eval.Advance(s.compFloor)
		}
	}
	s.round = st.Round
	s.results = st.Results
	for i, cc := range st.Clients {
		c := s.clients[i]
		if c.id != cc.ID {
			return nil, fmt.Errorf("core: checkpoint client %d has ID %d, federation has %d", i, cc.ID, c.id)
		}
		c.lastParams = cc.LastParams
		if cc.Poisoned {
			// Re-apply the label flips the attack performed before the
			// checkpoint; origTestY keeps the pre-attack labels for the
			// flipped-prediction metric, exactly as in the original run.
			c.poisoned = true
			flipLabels(c.trainY, cfg.Poison.FlipA, cfg.Poison.FlipB)
			flipLabels(c.testY, cfg.Poison.FlipA, cfg.Poison.FlipB)
			c.eval = s.newEvalFor(c)
		}
		if s.needsViews() {
			// Partial views must read the restored tangle. Reveal state is
			// reconstructed lazily at the client's next walk: the reveal
			// predicate is monotone in the round counter, so the fresh view
			// reveals exactly the set the uninterrupted run had accumulated.
			c.view = dag.NewView(s.tangle)
		}
	}
	return s, nil
}

// CheckpointInfo summarizes a checkpoint without reconstructing the
// simulation (cmd/dagstat uses it to inspect snapshots of either kind).
// Kind is "sync" (SDC1) or "async" (SDA1); Round/Rounds describe the sync
// resume point, Events/Duration/Pending/Done the async one.
type CheckpointInfo struct {
	Kind    string
	Seed    int64
	Round   int
	Rounds  int
	Clients int

	// Async checkpoints only:
	Events   int     // processed client activations
	Duration float64 // configured simulated-time horizon in seconds
	Pending  int     // published transactions still propagating
	Done     bool    // the run had reached its horizon

	// Epoch compaction (both kinds; zero when compaction was off):
	FrozenEpochs int   // epochs frozen out of the live suffix
	FrozenTxs    int   // transactions whose params were released
	SpillBytes   int64 // total size of the epoch spill files
}

// fillCompaction populates the epoch-compaction summary fields.
func (info *CheckpointInfo) fillCompaction(epochs []dag.EpochSummary) {
	info.FrozenEpochs = len(epochs)
	for _, e := range epochs {
		info.FrozenTxs += e.Txs
		info.SpillBytes += e.SpillBytes
	}
}

// InspectCheckpoint reads a checkpoint of either kind — synchronous (SDC1)
// or asynchronous (SDA1) — and returns its summary along with the embedded
// tangle.
func InspectCheckpoint(r io.Reader) (*CheckpointInfo, *dag.DAG, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, nil, fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	if [4]byte(magic) == asyncCheckpointMagic {
		st, d, err := readAsyncCheckpointState(br)
		if err != nil {
			return nil, nil, err
		}
		info := &CheckpointInfo{
			Kind:     "async",
			Seed:     st.Seed,
			Clients:  len(st.Clients),
			Events:   st.Events,
			Duration: st.Duration,
			Pending:  len(st.Pending),
			Done:     st.Done,
		}
		info.fillCompaction(st.Epochs)
		return info, d, nil
	}
	st, d, err := readCheckpointState(br)
	if err != nil {
		return nil, nil, err
	}
	info := &CheckpointInfo{
		Kind:    "sync",
		Seed:    st.Seed,
		Round:   st.Round,
		Rounds:  st.Rounds,
		Clients: len(st.Clients),
	}
	info.fillCompaction(st.Epochs)
	return info, d, nil
}
