package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/engine"
)

// runPrefix runs sim for n rounds.
func runPrefix(t *testing.T, sim *Simulation, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		sim.RunRound()
	}
}

// dagBytes serializes a tangle for byte-level comparison.
func dagBytes(t *testing.T, s *Simulation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.DAG().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointResumeBitIdentical is the resumability guarantee behind the
// unified run API: interrupt a run at any round, checkpoint, resume from the
// snapshot, finish — the full history and the DAG must be bit-identical to
// an uninterrupted run, across every feature that carries client state
// between rounds (poisoning labels, partial-sharing heads, partial views,
// reference averaging).
func TestCheckpointResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name    string
		cutAt   int // round after which to checkpoint
		mutate  func(*Config)
		workers int
	}{
		{"baseline", 5, func(c *Config) {}, 1},
		{"parallel-workers", 5, func(c *Config) {}, 8},
		{"poisoned-after-start", 7, func(c *Config) {
			c.Poison = PoisonConfig{Fraction: 0.25, FlipA: 3, FlipB: 8, StartRound: 4, RandomAttackers: 1}
		}, 4},
		{"poisoned-before-start", 3, func(c *Config) {
			c.Poison = PoisonConfig{Fraction: 0.25, FlipA: 3, FlipB: 8, StartRound: 4}
		}, 1},
		{"checkpoint-at-poison-start", 4, func(c *Config) {
			c.Poison = PoisonConfig{Fraction: 0.25, FlipA: 3, FlipB: 8, StartRound: 4}
		}, 1},
		{"partial-sharing", 6, func(c *Config) { c.SharedLayers = 1 }, 2},
		{"reveal-delay", 6, func(c *Config) { c.RevealDelay = 2 }, 2},
		{"reference-walks-3", 5, func(c *Config) { c.ReferenceWalks = 3 }, 1},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig()
			cfg.ClientsPerRound = 6
			cfg.Workers = tc.workers
			tc.mutate(&cfg)
			fedSeed := int64(90 + i)

			// Uninterrupted reference run.
			ref, err := NewSimulation(smallFed(fedSeed), cfg)
			if err != nil {
				t.Fatal(err)
			}
			refHist := ref.Run()

			// Interrupted run: cut, checkpoint, resume, finish.
			cut, err := NewSimulation(smallFed(fedSeed), cfg)
			if err != nil {
				t.Fatal(err)
			}
			runPrefix(t, cut, tc.cutAt)
			var snap bytes.Buffer
			if n, err := cut.WriteCheckpoint(&snap); err != nil || n != int64(snap.Len()) {
				t.Fatalf("WriteCheckpoint: n=%d err=%v (buffered %d)", n, err, snap.Len())
			}
			resumed, err := ResumeSimulation(smallFed(fedSeed), cfg, &snap)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Round() != tc.cutAt {
				t.Fatalf("resumed at round %d, want %d", resumed.Round(), tc.cutAt)
			}
			resHist := resumed.Run()

			assertHistoriesIdentical(t, refHist, resHist)
			assertDAGsIdentical(t, ref, resumed)
			if !bytes.Equal(dagBytes(t, ref), dagBytes(t, resumed)) {
				t.Fatal("serialized DAGs differ byte-for-byte")
			}
		})
	}
}

// TestCheckpointThroughRunAPI exercises the full loop the way a user would:
// cancel a Run mid-flight via its observer, checkpoint through the
// WithCheckpoints option, resume, and compare with an uninterrupted Run.
func TestCheckpointThroughRunAPI(t *testing.T) {
	cfg := smallConfig()
	fedSeed := int64(110)

	ref, err := NewSimulation(smallFed(fedSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(context.Background(), ref); err != nil {
		t.Fatal(err)
	}

	sim, err := NewSimulation(smallFed(fedSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := engine.Run(ctx, sim,
		engine.WithCheckpoints(1, func(int) (io.WriteCloser, error) {
			snap.Reset()
			return closerBuffer{&snap}, nil
		}),
		engine.WithHooks(engine.Hooks{OnRound: func(ev engine.RoundEvent) {
			if ev.Round == 4 {
				cancel() // cancel mid-run; the checkpoint for round 5 exists
			}
		}}),
	)
	if err != context.Canceled {
		t.Fatalf("Run after cancel = %v, want context.Canceled", err)
	}
	if rep.Completed {
		t.Fatal("canceled run must not report completion")
	}
	if rep.Steps != 5 || sim.Round() != 5 {
		t.Fatalf("canceled after %d steps (round %d), want 5", rep.Steps, sim.Round())
	}
	if len(sim.Results()) != 5 {
		t.Fatalf("partial results = %d rounds, want 5", len(sim.Results()))
	}

	resumed, err := ResumeSimulation(smallFed(fedSeed), cfg, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(context.Background(), resumed); err != nil {
		t.Fatal(err)
	}
	assertHistoriesIdentical(t, ref.Results(), resumed.Results())
	assertDAGsIdentical(t, ref, resumed)
}

// closerBuffer adapts a bytes.Buffer to io.WriteCloser for WithCheckpoints.
type closerBuffer struct{ *bytes.Buffer }

func (closerBuffer) Close() error { return nil }

func TestResumeRejectsMismatches(t *testing.T) {
	cfg := smallConfig()
	sim, err := NewSimulation(smallFed(120), cfg)
	if err != nil {
		t.Fatal(err)
	}
	runPrefix(t, sim, 3)
	var snap bytes.Buffer
	if _, err := sim.WriteCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}

	// Different seed: the randomness universe diverged.
	badSeed := cfg
	badSeed.Seed = cfg.Seed + 1
	if _, err := ResumeSimulation(smallFed(120), badSeed, bytes.NewReader(snap.Bytes())); err == nil || !strings.Contains(err.Error(), "Seed") {
		t.Fatalf("seed mismatch not rejected: %v", err)
	}

	// Different federation size.
	smaller := dataset.FMNISTClustered(dataset.FMNISTConfig{
		Clients: 9, TrainPerClient: 60, TestPerClient: 15, Seed: 120,
	})
	if _, err := ResumeSimulation(smaller, cfg, bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("federation size mismatch not rejected")
	}

	// Different architecture: the genesis parameter vector cannot match.
	badArch := cfg
	badArch.Arch.Hidden = []int{16}
	if _, err := ResumeSimulation(smallFed(120), badArch, bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("architecture mismatch not rejected")
	}

	// Different attack parameters: the checkpointed label flips would be
	// inconsistent with the resumed configuration.
	badPoison := cfg
	badPoison.Poison = PoisonConfig{Fraction: 0.25, FlipA: 3, FlipB: 8, StartRound: 1}
	if _, err := ResumeSimulation(smallFed(120), badPoison, bytes.NewReader(snap.Bytes())); err == nil || !strings.Contains(err.Error(), "Poison") {
		t.Fatalf("poison mismatch not rejected: %v", err)
	}

	// Not a checkpoint at all.
	if _, err := ResumeSimulation(smallFed(120), cfg, strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted as checkpoint")
	}

	// Truncated checkpoint.
	if _, err := ResumeSimulation(smallFed(120), cfg, bytes.NewReader(snap.Bytes()[:snap.Len()/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestInspectCheckpoint(t *testing.T) {
	cfg := smallConfig()
	sim, err := NewSimulation(smallFed(122), cfg)
	if err != nil {
		t.Fatal(err)
	}
	runPrefix(t, sim, 4)
	var snap bytes.Buffer
	if _, err := sim.WriteCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	info, d, err := InspectCheckpoint(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if info.Round != 4 || info.Rounds != cfg.Rounds || info.Seed != cfg.Seed || info.Clients != 12 {
		t.Fatalf("bad checkpoint info: %+v", info)
	}
	if d.Size() != sim.DAG().Size() {
		t.Fatalf("checkpoint DAG size %d, want %d", d.Size(), sim.DAG().Size())
	}
}

// TestResumeBeyondHorizon: a finished run's checkpoint can seed a longer
// run, and its prefix matches a run configured long from the start.
func TestResumeBeyondHorizon(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 6
	sim, err := NewSimulation(smallFed(123), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	var snap bytes.Buffer
	if _, err := sim.WriteCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	longCfg := cfg
	longCfg.Rounds = 10
	resumed, err := ResumeSimulation(smallFed(123), longCfg, &snap)
	if err != nil {
		t.Fatal(err)
	}
	resumedHist := resumed.Run()

	ref, err := NewSimulation(smallFed(123), longCfg)
	if err != nil {
		t.Fatal(err)
	}
	refHist := ref.Run()
	assertHistoriesIdentical(t, refHist, resumedHist)
}

// TestCheckpointCorruptionPaths is the systematic corruption battery: a
// checkpoint damaged in any of the ways a real file gets damaged — cut off
// at any byte (partial write, full disk), wrong magic (not a checkpoint, or
// a bare SDG1 DAG snapshot), flipped header bytes — must come back from
// ResumeSimulation and InspectCheckpoint as an actionable error, never a
// panic and never a silently wrong simulation.
func TestCheckpointCorruptionPaths(t *testing.T) {
	cfg := smallConfig()
	sim, err := NewSimulation(smallFed(130), cfg)
	if err != nil {
		t.Fatal(err)
	}
	runPrefix(t, sim, 2)
	var snap bytes.Buffer
	if _, err := sim.WriteCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	// Both readers must agree that a blob is broken; neither may panic.
	check := func(t *testing.T, blob []byte, what string) {
		t.Helper()
		if _, err := ResumeSimulation(smallFed(130), cfg, bytes.NewReader(blob)); err == nil {
			t.Fatalf("ResumeSimulation accepted %s", what)
		} else if err.Error() == "" {
			t.Fatalf("ResumeSimulation returned an empty error for %s", what)
		}
		if _, _, err := InspectCheckpoint(bytes.NewReader(blob)); err == nil {
			t.Fatalf("InspectCheckpoint accepted %s", what)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		// Every prefix, including the empty file, a partial magic, and a cut
		// inside the gob payload and inside the embedded DAG bytes.
		for _, n := range []int{0, 1, 3, 4, 5, len(good) / 4, len(good) / 2, len(good) - 1} {
			check(t, good[:n], fmt.Sprintf("a checkpoint truncated to %d of %d bytes", n, len(good)))
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		wrong := append([]byte(nil), good...)
		copy(wrong, "NOPE")
		check(t, wrong, "a blob with wrong magic")

		// A valid SDG1 DAG snapshot is not a simulation checkpoint; the
		// magic check must say so instead of feeding the DAG bytes to gob.
		var dagOnly bytes.Buffer
		if _, err := sim.DAG().WriteTo(&dagOnly); err != nil {
			t.Fatal(err)
		}
		_, err := ResumeSimulation(smallFed(130), cfg, bytes.NewReader(dagOnly.Bytes()))
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("bare DAG snapshot not rejected by magic check: %v", err)
		}

		// Same for an SDE1 event log (internal/wire): the resume paths must
		// name the format instead of gob-decoding stream frames.
		events := append([]byte("SDE1"), good[4:]...)
		_, err = ResumeSimulation(smallFed(130), cfg, bytes.NewReader(events))
		if err == nil || !strings.Contains(err.Error(), "event-stream log") {
			t.Fatalf("SDE1 event log not identified by the sync magic check: %v", err)
		}
		_, err = ResumeAsyncSimulation(smallFed(130), goldenAsyncConfig(), bytes.NewReader(events))
		if err == nil || !strings.Contains(err.Error(), "event-stream log") {
			t.Fatalf("SDE1 event log not identified by the async magic check: %v", err)
		}
	})

	t.Run("flipped-header-bytes", func(t *testing.T) {
		// Corrupt each of the first bytes after the magic (gob stream
		// headers). Decoding may or may not fail depending on the byte, but
		// it must never panic; when it "succeeds", the structural checks
		// (round/results consistency, genesis match, seed) must still hold,
		// so we only require: no panic, and an error OR a state identical to
		// the intact checkpoint.
		for off := 4; off < 24 && off < len(good); off++ {
			blob := append([]byte(nil), good...)
			blob[off] ^= 0xff
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("byte %d flipped: panic %v", off, r)
					}
				}()
				resumed, err := ResumeSimulation(smallFed(130), cfg, bytes.NewReader(blob))
				if err == nil && resumed.Round() != sim.Round() {
					t.Fatalf("byte %d flipped: silently resumed at round %d, want %d or an error",
						off, resumed.Round(), sim.Round())
				}
				_, _, _ = func() (*CheckpointInfo, int, error) {
					info, d, err := InspectCheckpoint(bytes.NewReader(blob))
					if err != nil {
						return nil, 0, err
					}
					return info, d.Size(), nil
				}()
			}()
		}
	})

	t.Run("mismatched-seed-is-actionable", func(t *testing.T) {
		other := cfg
		other.Seed = cfg.Seed + 7
		_, err := ResumeSimulation(smallFed(130), other, bytes.NewReader(good))
		if err == nil {
			t.Fatal("seed mismatch accepted")
		}
		for _, want := range []string{"Seed", "diverge"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("seed-mismatch error %q does not mention %q", err, want)
			}
		}
	})
}
