package core

// Golden-checkpoint fixtures: one sync (SDC1) and one async (SDA1)
// checkpoint, generated once and committed under testdata/. Every test run
// decodes and fully resumes them, so a codec change that silently breaks
// previously written checkpoints fails CI here instead of corrupting a
// user's resume. The generating configuration is pinned below — it must
// never change, or the fixtures stop being "old files" and start being
// "files this very commit wrote".
//
// Regenerate (only after a deliberate, versioned format change):
//
//	SPECDAG_REGEN_GOLDEN=1 go test ./internal/core/ -run TestGoldenCheckpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/tipselect"
)

// goldenFed is the fixture federation: deliberately tiny (the fixtures are
// committed binaries) and independent of the other tests' helpers so that
// tuning smallFed/smallConfig never invalidates the fixtures.
func goldenFed() *dataset.Federation {
	return dataset.FMNISTClustered(dataset.FMNISTConfig{
		Clients:        3,
		TrainPerClient: 12,
		TestPerClient:  6,
		Seed:           7,
	})
}

func goldenSyncConfig() Config {
	return Config{
		Rounds:          4,
		ClientsPerRound: 2,
		Local:           nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 4},
		Arch:            nn.Arch{In: 64, Hidden: []int{4}, Out: 10},
		Selector:        tipselect.AccuracyWalk{Alpha: 10},
		Seed:            9,
	}
}

func goldenAsyncConfig() AsyncConfig {
	return AsyncConfig{
		Duration:     8,
		MinCycle:     1,
		MaxCycle:     4,
		NetworkDelay: 0.5,
		Local:        nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 4},
		Arch:         nn.Arch{In: 64, Hidden: []int{4}, Out: 10},
		Selector:     tipselect.AccuracyWalk{Alpha: 10},
		Seed:         9,
	}
}

const (
	goldenSyncPath  = "testdata/golden_sync.sdc"
	goldenAsyncPath = "testdata/golden_async.sdc"
	goldenSyncCut   = 2 // rounds completed when the fixture was written
	goldenAsyncCut  = 3 // events processed when the fixture was written
)

// writeGoldenFixtures regenerates both fixture files from the pinned
// configuration.
func writeGoldenFixtures(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenSyncPath), 0o755); err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(goldenFed(), goldenSyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < goldenSyncCut; i++ {
		sim.RunRound()
	}
	var syncBuf bytes.Buffer
	if _, err := sim.WriteCheckpoint(&syncBuf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenSyncPath, syncBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	async, err := NewAsyncSimulation(goldenFed(), goldenAsyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	for async.Events() < goldenAsyncCut {
		async.step()
	}
	var asyncBuf bytes.Buffer
	if _, err := async.WriteCheckpoint(&asyncBuf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenAsyncPath, asyncBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s (%d bytes) and %s (%d bytes)",
		goldenSyncPath, syncBuf.Len(), goldenAsyncPath, asyncBuf.Len())
}

// TestGoldenCheckpointFixtures decodes the committed fixtures and resumes
// them to completion: the resumed history and DAG must match a
// never-interrupted run of the pinned configuration bit for bit. A decoder
// or codec change that cannot read yesterday's files fails here.
func TestGoldenCheckpointFixtures(t *testing.T) {
	if os.Getenv("SPECDAG_REGEN_GOLDEN") != "" {
		writeGoldenFixtures(t)
	}

	t.Run("sync", func(t *testing.T) {
		blob, err := os.ReadFile(goldenSyncPath)
		if err != nil {
			t.Fatalf("missing fixture (regenerate with SPECDAG_REGEN_GOLDEN=1): %v", err)
		}
		info, _, err := InspectCheckpoint(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("golden sync checkpoint no longer decodes: %v", err)
		}
		if info.Kind != "sync" || info.Round != goldenSyncCut || info.Seed != goldenSyncConfig().Seed {
			t.Fatalf("golden sync checkpoint summary drifted: %+v", info)
		}

		resumed, err := ResumeSimulation(goldenFed(), goldenSyncConfig(), bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("golden sync checkpoint no longer resumes: %v", err)
		}
		resHist := resumed.Run()

		ref, err := NewSimulation(goldenFed(), goldenSyncConfig())
		if err != nil {
			t.Fatal(err)
		}
		refHist := ref.Run()
		assertHistoriesIdentical(t, refHist, resHist)
		if !bytes.Equal(dagBytes(t, ref), dagBytes(t, resumed)) {
			t.Fatal("golden sync resume diverged: serialized DAGs differ")
		}
	})

	t.Run("async", func(t *testing.T) {
		blob, err := os.ReadFile(goldenAsyncPath)
		if err != nil {
			t.Fatalf("missing fixture (regenerate with SPECDAG_REGEN_GOLDEN=1): %v", err)
		}
		info, _, err := InspectCheckpoint(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("golden async checkpoint no longer decodes: %v", err)
		}
		if info.Kind != "async" || info.Events != goldenAsyncCut || info.Seed != goldenAsyncConfig().Seed {
			t.Fatalf("golden async checkpoint summary drifted: %+v", info)
		}

		resumed, err := ResumeAsyncSimulation(goldenFed(), goldenAsyncConfig(), bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("golden async checkpoint no longer resumes: %v", err)
		}
		drainAsync(resumed)

		ref, err := NewAsyncSimulation(goldenFed(), goldenAsyncConfig())
		if err != nil {
			t.Fatal(err)
		}
		drainAsync(ref)
		assertAsyncResultsIdentical(t, ref.Result(), resumed.Result())
		if !bytes.Equal(asyncDAGBytes(t, ref), asyncDAGBytes(t, resumed)) {
			t.Fatal("golden async resume diverged: serialized DAGs differ")
		}
	})
}
