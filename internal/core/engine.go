package core

// This file adapts both simulators to the unified run API (internal/engine):
// they become cancelable, observable steppers that specdag.Run drives with a
// context, delivering typed round/publish events and drawing their fan-out
// workers from a shared pool.

import (
	"context"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/par"
)

var (
	_ engine.Engine      = (*Simulation)(nil)
	_ engine.Snapshotter = (*Simulation)(nil)
	_ engine.PoolUser    = (*Simulation)(nil)
	_ engine.Engine      = (*AsyncSimulation)(nil)
	_ engine.Snapshotter = (*AsyncSimulation)(nil)
	_ engine.PoolUser    = (*AsyncSimulation)(nil)
)

// Name implements engine.Engine.
func (s *Simulation) Name() string { return "specdag" }

// SetPool implements engine.PoolUser: the round fan-out and the tangle's
// cumulative-weight sweep draw helper goroutines from b (see Config.Pool).
func (s *Simulation) SetPool(b *par.Budget) {
	s.cfg.Pool = b
	s.tangle.SetParallelism(b, s.cfg.Workers)
}

// Step implements engine.Engine: it runs one round and reports it, with one
// PublishEvent per transaction that entered the tangle (honest clients and
// attackers alike). The run is done once all configured rounds completed.
func (s *Simulation) Step(ctx context.Context) (*engine.StepResult, bool, error) {
	if s.round >= s.cfg.Rounds {
		return nil, true, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	before := s.tangle.Size()
	rr := s.RunRound()
	res := &engine.StepResult{Round: engine.RoundEvent{
		Engine:   s.Name(),
		Round:    rr.Round,
		MeanAcc:  rr.MeanTrainedAcc(),
		MeanLoss: rr.MeanTrainedLoss(),
		DAGSize:  s.tangle.Size(),
		Detail:   &s.results[len(s.results)-1],
	}}
	for id := before; id < s.tangle.Size(); id++ {
		tx := s.tangle.MustGet(dag.ID(id))
		res.Round.Published++
		res.Publishes = append(res.Publishes, engine.PublishEvent{
			Engine:   s.Name(),
			Round:    rr.Round,
			Issuer:   tx.Issuer,
			Tx:       int(tx.ID),
			Acc:      tx.Meta.TestAcc,
			Poisoned: tx.Meta.Poisoned,
		})
	}
	return res, false, nil
}

// Name implements engine.Engine.
func (a *AsyncSimulation) Name() string { return "specdag-async" }

// SetPool implements engine.PoolUser (see AsyncConfig.Pool).
func (a *AsyncSimulation) SetPool(b *par.Budget) {
	a.cfg.Pool = b
	a.tangle.SetParallelism(b, a.cfg.Workers)
}

// Step implements engine.Engine at event granularity: one Step is one client
// activation, so cancellation takes effect between events. The RoundEvent's
// Round field is the event ordinal and Detail is an *AsyncEvent.
func (a *AsyncSimulation) Step(ctx context.Context) (*engine.StepResult, bool, error) {
	if a.done {
		return nil, true, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	ev := a.step()
	if ev == nil {
		return nil, true, nil
	}
	res := &engine.StepResult{Round: engine.RoundEvent{
		Engine:   a.Name(),
		Round:    ev.Seq,
		Time:     ev.Time,
		MeanAcc:  ev.TrainedAcc,
		MeanLoss: ev.TrainedLoss,
		DAGSize:  a.tangle.Size(),
		Detail:   ev,
	}}
	if ev.Published {
		res.Round.Published = 1
		res.Publishes = append(res.Publishes, engine.PublishEvent{
			Engine: a.Name(),
			Round:  ev.Seq,
			Time:   ev.Time,
			Issuer: ev.Client,
			Tx:     -1, // assigned when the network delay elapses
			Acc:    ev.TrainedAcc,
		})
	}
	return res, false, nil
}
