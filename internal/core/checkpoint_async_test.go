package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/tipselect"
)

// drainAsync steps the simulation to completion, returning every event.
func drainAsync(a *AsyncSimulation) []AsyncEvent {
	var evs []AsyncEvent
	for !a.done {
		if ev := a.step(); ev != nil {
			evs = append(evs, *ev)
		}
	}
	return evs
}

// asyncDAGBytes serializes the tangle for byte-level comparison.
func asyncDAGBytes(t *testing.T, a *AsyncSimulation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := a.DAG().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertAsyncResultsIdentical compares final per-client statistics.
func assertAsyncResultsIdentical(t *testing.T, a, b *AsyncResult) {
	t.Helper()
	if a.Transactions != b.Transactions {
		t.Fatalf("transaction counts differ: %d vs %d", a.Transactions, b.Transactions)
	}
	if len(a.Clients) != len(b.Clients) {
		t.Fatalf("client stat counts differ: %d vs %d", len(a.Clients), len(b.Clients))
	}
	for i := range a.Clients {
		if a.Clients[i] != b.Clients[i] {
			t.Fatalf("client %d stats differ: %+v vs %+v", i, a.Clients[i], b.Clients[i])
		}
	}
}

// assertAsyncEventsIdentical compares two event histories field by field.
func assertAsyncEventsIdentical(t *testing.T, a, b []AsyncEvent) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("event histories differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestAsyncCheckpointResumeBitIdentical is the async counterpart of
// TestCheckpointResumeBitIdentical: interrupt an event-driven run at an
// event index, checkpoint, resume, finish — the remaining event stream, the
// final per-client statistics and the DAG must be bit-identical to a run
// that was never interrupted, across worker counts, propagation delays,
// reference averaging, in-flight (pending) transactions, and the
// parallel cumulative-weight sweep.
func TestAsyncCheckpointResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name          string
		cutAt         int // events processed before the checkpoint
		mutate        func(*AsyncConfig)
		resumeMutate  func(*AsyncConfig) // applied to the resuming config only
		wantPending   bool               // require in-flight transactions at the cut
		wantParallel  bool               // require the DAG to cross the parallel-CW threshold
		minEventsLeft int                // sanity: the cut must leave work to resume
	}{
		{name: "baseline", cutAt: 10, mutate: func(c *AsyncConfig) {}, minEventsLeft: 5},
		{name: "workers-4", cutAt: 10, mutate: func(c *AsyncConfig) { c.Workers = 4 }, minEventsLeft: 5},
		{name: "no-network-delay", cutAt: 8, mutate: func(c *AsyncConfig) { c.NetworkDelay = 0 }, minEventsLeft: 5},
		{name: "reference-walks-3", cutAt: 10, mutate: func(c *AsyncConfig) { c.ReferenceWalks = 3 }, minEventsLeft: 5},
		{name: "pending-in-flight", cutAt: 12, mutate: func(c *AsyncConfig) { c.NetworkDelay = 6 },
			wantPending: true, minEventsLeft: 5},
		// A checkpoint taken by a Workers=1 run must resume bit-identically
		// under Workers=4: worker count is wall-clock-only, so it is not part
		// of the checkpoint contract.
		{name: "resume-across-worker-counts", cutAt: 10,
			mutate:       func(c *AsyncConfig) { c.Workers = 1 },
			resumeMutate: func(c *AsyncConfig) { c.Workers = 4 }, minEventsLeft: 5},
		// Mirror TestWorkerCountInvariance's parallel-sweep case: grow the
		// tangle past the parallel cumulative-weight threshold (128 txs) with
		// a shared budget. The cut lands before the threshold, so it is the
		// resumed run that crosses into the level-parallel sweep over the
		// restored DAG's CSR adjacency.
		{name: "parallel-sweep", cutAt: 100, mutate: func(c *AsyncConfig) {
			c.Duration = 25
			c.MinCycle = 0.5
			c.MaxCycle = 4
			c.Selector = tipselect.WeightedWalk{Alpha: 0.1}
			c.Workers = 4
			c.Pool = par.NewBudget(4)
		}, wantParallel: true, minEventsLeft: 50},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := asyncConfig()
			tc.mutate(&cfg)
			fedSeed := int64(140 + i)

			// Uninterrupted reference run.
			ref, err := NewAsyncSimulation(smallFed(fedSeed), cfg)
			if err != nil {
				t.Fatal(err)
			}
			refEvents := drainAsync(ref)
			if len(refEvents) < tc.cutAt+tc.minEventsLeft {
				t.Fatalf("reference run has %d events; need at least %d to cut at %d — enlarge Duration",
					len(refEvents), tc.cutAt+tc.minEventsLeft, tc.cutAt)
			}

			// Interrupted run: cut, checkpoint, resume, finish.
			cut, err := NewAsyncSimulation(smallFed(fedSeed), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var prefix []AsyncEvent
			for len(prefix) < tc.cutAt {
				if ev := cut.step(); ev != nil {
					prefix = append(prefix, *ev)
				}
			}
			if tc.wantPending && len(cut.pending) == 0 {
				t.Fatalf("cut at event %d left no in-flight transactions — raise NetworkDelay", tc.cutAt)
			}
			var snap bytes.Buffer
			if n, err := cut.WriteCheckpoint(&snap); err != nil || n != int64(snap.Len()) {
				t.Fatalf("WriteCheckpoint: n=%d err=%v (buffered %d)", n, err, snap.Len())
			}
			resumeCfg := cfg
			if tc.resumeMutate != nil {
				tc.resumeMutate(&resumeCfg)
			}
			resumed, err := ResumeAsyncSimulation(smallFed(fedSeed), resumeCfg, &snap)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Events() != tc.cutAt {
				t.Fatalf("resumed at event %d, want %d", resumed.Events(), tc.cutAt)
			}
			suffix := drainAsync(resumed)

			assertAsyncEventsIdentical(t, refEvents, append(prefix, suffix...))
			assertAsyncResultsIdentical(t, ref.Result(), resumed.Result())
			if !bytes.Equal(asyncDAGBytes(t, ref), asyncDAGBytes(t, resumed)) {
				t.Fatal("serialized DAGs differ byte-for-byte")
			}
			if tc.wantParallel && ref.DAG().Size() <= 128 {
				t.Fatalf("DAG has %d transactions; the parallel-sweep case needs > 128 — enlarge Duration", ref.DAG().Size())
			}
		})
	}
}

// TestAsyncCheckpointThroughRunAPI exercises the loop the way a user would:
// drive the async engine with specdag.Run, checkpoint through the
// WithCheckpoints option, cancel mid-run via the observer, resume, and
// compare against an uninterrupted Run.
func TestAsyncCheckpointThroughRunAPI(t *testing.T) {
	cfg := asyncConfig()
	fedSeed := int64(150)

	ref, err := NewAsyncSimulation(smallFed(fedSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var refEvents []AsyncEvent
	if _, err := engine.Run(context.Background(), ref, engine.WithHooks(engine.Hooks{
		OnRound: func(ev engine.RoundEvent) { refEvents = append(refEvents, *ev.Detail.(*AsyncEvent)) },
	})); err != nil {
		t.Fatal(err)
	}

	async, err := NewAsyncSimulation(smallFed(fedSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	var prefix []AsyncEvent
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := engine.Run(ctx, async,
		engine.WithCheckpoints(1, func(int) (io.WriteCloser, error) {
			snap.Reset()
			return closerBuffer{&snap}, nil
		}),
		engine.WithHooks(engine.Hooks{OnRound: func(ev engine.RoundEvent) {
			prefix = append(prefix, *ev.Detail.(*AsyncEvent))
			if ev.Round == 6 {
				cancel() // the checkpoint for event 7 exists
			}
		}}),
	)
	if err != context.Canceled {
		t.Fatalf("Run after cancel = %v, want context.Canceled", err)
	}
	if rep.Completed {
		t.Fatal("canceled run must not report completion")
	}
	if rep.Steps != 7 || async.Events() != 7 {
		t.Fatalf("canceled after %d steps (%d events), want 7", rep.Steps, async.Events())
	}

	resumed, err := ResumeAsyncSimulation(smallFed(fedSeed), cfg, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(context.Background(), resumed, engine.WithHooks(engine.Hooks{
		OnRound: func(ev engine.RoundEvent) { prefix = append(prefix, *ev.Detail.(*AsyncEvent)) },
	})); err != nil {
		t.Fatal(err)
	}
	assertAsyncEventsIdentical(t, refEvents, prefix)
	assertAsyncResultsIdentical(t, ref.Result(), resumed.Result())
	if !bytes.Equal(asyncDAGBytes(t, ref), asyncDAGBytes(t, resumed)) {
		t.Fatal("serialized DAGs differ byte-for-byte")
	}
}

// TestAsyncResumeRejectsMismatches: every configuration dimension that would
// silently diverge a resumed async run must be rejected with an actionable
// error.
func TestAsyncResumeRejectsMismatches(t *testing.T) {
	cfg := asyncConfig()
	a, err := NewAsyncSimulation(smallFed(160), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.step()
	}
	var snap bytes.Buffer
	if _, err := a.WriteCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	resume := func(mutate func(*AsyncConfig), fed *dataset.Federation) error {
		c := cfg
		mutate(&c)
		if fed == nil {
			fed = smallFed(160)
		}
		_, err := ResumeAsyncSimulation(fed, c, bytes.NewReader(good))
		return err
	}

	if err := resume(func(c *AsyncConfig) { c.Seed++ }, nil); err == nil || !strings.Contains(err.Error(), "Seed") {
		t.Fatalf("seed mismatch not rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*AsyncConfig)
	}{
		{"Duration", func(c *AsyncConfig) { c.Duration *= 2 }},
		{"MinCycle", func(c *AsyncConfig) { c.MinCycle *= 2 }},
		{"MaxCycle", func(c *AsyncConfig) { c.MaxCycle += 1 }},
		{"NetworkDelay", func(c *AsyncConfig) { c.NetworkDelay += 0.25 }},
	} {
		if err := resume(tc.mutate, nil); err == nil || !strings.Contains(err.Error(), "timing") {
			t.Fatalf("%s mismatch not rejected with a timing error: %v", tc.name, err)
		}
	}

	smaller := dataset.FMNISTClustered(dataset.FMNISTConfig{
		Clients: 9, TrainPerClient: 60, TestPerClient: 15, Seed: 160,
	})
	if err := resume(func(c *AsyncConfig) {}, smaller); err == nil || !strings.Contains(err.Error(), "clients") {
		t.Fatalf("federation size mismatch not rejected: %v", err)
	}

	if err := resume(func(c *AsyncConfig) { c.Arch.Hidden = []int{16} }, nil); err == nil {
		t.Fatal("architecture mismatch not rejected")
	}
}

// TestAsyncCheckpointCorruptionPaths extends the PR 3 corruption battery to
// the async format: a checkpoint damaged in any of the ways a real file gets
// damaged — cut off at any byte, wrong magic (including sync/async format
// confusion in both directions and a bare SDG1 snapshot), flipped header
// bytes, mismatched seed — must come back from ResumeAsyncSimulation and
// InspectCheckpoint as an actionable error, never a panic and never a
// silently wrong simulation.
func TestAsyncCheckpointCorruptionPaths(t *testing.T) {
	cfg := asyncConfig()
	a, err := NewAsyncSimulation(smallFed(170), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a.step()
	}
	var snap bytes.Buffer
	if _, err := a.WriteCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	check := func(t *testing.T, blob []byte, what string) {
		t.Helper()
		if _, err := ResumeAsyncSimulation(smallFed(170), cfg, bytes.NewReader(blob)); err == nil {
			t.Fatalf("ResumeAsyncSimulation accepted %s", what)
		} else if err.Error() == "" {
			t.Fatalf("ResumeAsyncSimulation returned an empty error for %s", what)
		}
		if _, _, err := InspectCheckpoint(bytes.NewReader(blob)); err == nil {
			t.Fatalf("InspectCheckpoint accepted %s", what)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 1, 3, 4, 5, len(good) / 4, len(good) / 2, len(good) - 1} {
			check(t, good[:n], fmt.Sprintf("an async checkpoint truncated to %d of %d bytes", n, len(good)))
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		wrong := append([]byte(nil), good...)
		copy(wrong, "NOPE")
		check(t, wrong, "a blob with wrong magic")

		var dagOnly bytes.Buffer
		if _, err := a.DAG().WriteTo(&dagOnly); err != nil {
			t.Fatal(err)
		}
		_, err := ResumeAsyncSimulation(smallFed(170), cfg, bytes.NewReader(dagOnly.Bytes()))
		if err == nil || !strings.Contains(err.Error(), "DAG snapshot") {
			t.Fatalf("bare SDG1 snapshot not identified: %v", err)
		}
	})

	t.Run("format-confusion", func(t *testing.T) {
		// An async checkpoint handed to the sync reader must name the fix…
		_, err := ResumeSimulation(smallFed(170), smallConfig(), bytes.NewReader(good))
		if err == nil || !strings.Contains(err.Error(), "ResumeAsyncSimulation") {
			t.Fatalf("sync reader did not direct an async checkpoint to ResumeAsyncSimulation: %v", err)
		}
		// …and a sync checkpoint handed to the async reader likewise.
		sim, err := NewSimulation(smallFed(170), smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		sim.RunRound()
		var syncSnap bytes.Buffer
		if _, err := sim.WriteCheckpoint(&syncSnap); err != nil {
			t.Fatal(err)
		}
		_, err = ResumeAsyncSimulation(smallFed(170), cfg, bytes.NewReader(syncSnap.Bytes()))
		if err == nil || !strings.Contains(err.Error(), "ResumeSimulation") {
			t.Fatalf("async reader did not direct a sync checkpoint to ResumeSimulation: %v", err)
		}
	})

	t.Run("flipped-header-bytes", func(t *testing.T) {
		// Corrupt each early byte (magic boundary + gob stream headers): no
		// panic, and either an error or a state identical to the intact one.
		for off := 4; off < 24 && off < len(good); off++ {
			blob := append([]byte(nil), good...)
			blob[off] ^= 0xff
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("byte %d flipped: panic %v", off, r)
					}
				}()
				resumed, err := ResumeAsyncSimulation(smallFed(170), cfg, bytes.NewReader(blob))
				if err == nil && resumed.Events() != a.Events() {
					t.Fatalf("byte %d flipped: silently resumed at event %d, want %d or an error",
						off, resumed.Events(), a.Events())
				}
				_, _, _ = InspectCheckpoint(bytes.NewReader(blob))
			}()
		}
	})

	t.Run("mismatched-seed-is-actionable", func(t *testing.T) {
		other := cfg
		other.Seed += 7
		_, err := ResumeAsyncSimulation(smallFed(170), other, bytes.NewReader(good))
		if err == nil {
			t.Fatal("seed mismatch accepted")
		}
		for _, want := range []string{"Seed", "diverge"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("seed-mismatch error %q does not mention %q", err, want)
			}
		}
	})
}

// TestInspectAsyncCheckpoint: the inspection surface must summarize async
// checkpoints without reconstructing the simulation.
func TestInspectAsyncCheckpoint(t *testing.T) {
	cfg := asyncConfig()
	cfg.NetworkDelay = 6 // keep some transactions in flight at the cut
	a, err := NewAsyncSimulation(smallFed(180), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		a.step()
	}
	var snap bytes.Buffer
	if _, err := a.WriteCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	info, d, err := InspectCheckpoint(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "async" {
		t.Fatalf("Kind = %q, want async", info.Kind)
	}
	if info.Seed != cfg.Seed || info.Events != 9 || info.Duration != cfg.Duration || info.Clients != 12 || info.Done {
		t.Fatalf("bad async checkpoint info: %+v", info)
	}
	if info.Pending != len(a.pending) {
		t.Fatalf("Pending = %d, want %d", info.Pending, len(a.pending))
	}
	if d.Size() != a.DAG().Size() {
		t.Fatalf("checkpoint DAG size %d, want %d", d.Size(), a.DAG().Size())
	}

	// The sync summary now carries the kind, too.
	sim, err := NewSimulation(smallFed(180), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.RunRound()
	var syncSnap bytes.Buffer
	if _, err := sim.WriteCheckpoint(&syncSnap); err != nil {
		t.Fatal(err)
	}
	sinfo, _, err := InspectCheckpoint(&syncSnap)
	if err != nil {
		t.Fatal(err)
	}
	if sinfo.Kind != "sync" || sinfo.Round != 1 {
		t.Fatalf("bad sync checkpoint info: %+v", sinfo)
	}
}
