package core

import (
	"strings"
	"testing"

	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/graphx"
	"github.com/specdag/specdag/internal/metrics"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/tipselect"
)

func smallFed(seed int64) *dataset.Federation {
	return dataset.FMNISTClustered(dataset.FMNISTConfig{
		Clients:        12,
		TrainPerClient: 60,
		TestPerClient:  15,
		Seed:           seed,
	})
}

func smallConfig() Config {
	return Config{
		Rounds:          12,
		ClientsPerRound: 4,
		Local:           nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            nn.Arch{In: 64, Hidden: []int{32}, Out: 10},
		Selector:        tipselect.AccuracyWalk{Alpha: 10},
		Seed:            1,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"valid", func(c *Config) {}, false},
		{"no rounds", func(c *Config) { c.Rounds = 0 }, true},
		{"no clients", func(c *Config) { c.ClientsPerRound = 0 }, true},
		{"bad arch", func(c *Config) { c.Arch.Out = 0 }, true},
		{"negative ref walks", func(c *Config) { c.ReferenceWalks = -1 }, true},
		{"bad poison fraction", func(c *Config) { c.Poison.Fraction = 1.5 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewSimulationRejectsBadInput(t *testing.T) {
	if _, err := NewSimulation(&dataset.Federation{}, smallConfig()); err == nil {
		t.Error("empty federation should be rejected")
	}
	cfg := smallConfig()
	cfg.Rounds = 0
	if _, err := NewSimulation(smallFed(1), cfg); err == nil {
		t.Error("bad config should be rejected")
	}
}

func TestSimulationRunsAndGrowsDAG(t *testing.T) {
	sim, err := NewSimulation(smallFed(1), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	if len(results) != 12 {
		t.Fatalf("got %d rounds, want 12", len(results))
	}
	// The DAG must have grown beyond genesis: early rounds publish almost
	// always because genesis is a random model.
	if sim.DAG().Size() < 10 {
		t.Fatalf("DAG too small after 12 rounds: %d", sim.DAG().Size())
	}
	// Round bookkeeping.
	for _, rr := range results {
		if len(rr.Active) != 4 || len(rr.TrainedAcc) != 4 || len(rr.Published) != 4 {
			t.Fatalf("round %d shape wrong: %+v", rr.Round, rr)
		}
		for _, a := range rr.TrainedAcc {
			if a < 0 || a > 1 {
				t.Fatalf("accuracy out of range: %v", a)
			}
		}
	}
}

func TestAccuracyImprovesOverRounds(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 25
	sim, err := NewSimulation(smallFed(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	early := results[0].MeanTrainedAcc()
	lateSum := 0.0
	for _, rr := range results[len(results)-5:] {
		lateSum += rr.MeanTrainedAcc()
	}
	late := lateSum / 5
	if late < early {
		t.Fatalf("accuracy did not improve: %v -> %v", early, late)
	}
	if late < 0.6 {
		t.Fatalf("final accuracy too low: %v", late)
	}
}

func TestSpecializationEmerges(t *testing.T) {
	// The headline claim: with α=10, approval pureness must sit clearly
	// above the 1/3 random baseline on the clustered dataset.
	cfg := smallConfig()
	cfg.Rounds = 30
	cfg.ClientsPerRound = 6
	sim, err := NewSimulation(smallFed(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	pureness := metrics.ApprovalPureness(sim.DAG(), sim.ClusterOf())
	if pureness < 0.5 {
		t.Fatalf("approval pureness %v, want > 0.5 (base 0.33)", pureness)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []RoundResult {
		sim, err := NewSimulation(smallFed(4), smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	for i := range a {
		if a[i].MeanTrainedAcc() != b[i].MeanTrainedAcc() {
			t.Fatalf("round %d diverged between identical runs", i)
		}
		for j := range a[i].Active {
			if a[i].Active[j] != b[i].Active[j] {
				t.Fatal("client sampling diverged")
			}
		}
	}
}

func TestPublishGate(t *testing.T) {
	// With the gate disabled every activation publishes.
	cfg := smallConfig()
	cfg.DisablePublishGate = true
	sim, err := NewSimulation(smallFed(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	want := 1 // genesis
	for _, rr := range results {
		for _, p := range rr.Published {
			if !p {
				t.Fatal("gate disabled but a publish was suppressed")
			}
			want++
		}
	}
	if sim.DAG().Size() != want {
		t.Fatalf("DAG size %d, want %d", sim.DAG().Size(), want)
	}
}

func TestReferenceWalksAveraging(t *testing.T) {
	cfg := smallConfig()
	cfg.ReferenceWalks = 3
	sim, err := NewSimulation(smallFed(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	if len(results) != cfg.Rounds {
		t.Fatal("run incomplete")
	}
}

func TestPoisoningActivation(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 8
	cfg.Poison = PoisonConfig{Fraction: 0.25, FlipA: 3, FlipB: 8, StartRound: 4}
	sim, err := NewSimulation(smallFed(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sim.RunRound()
	}
	if n := len(sim.PoisonedClients()); n != 0 {
		t.Fatalf("poisoning active before start round: %d clients", n)
	}
	sim.RunRound()
	if n := len(sim.PoisonedClients()); n != 3 { // 25% of 12
		t.Fatalf("poisoned clients = %d, want 3", n)
	}
	rest := sim.Run()
	// Tracking fields must be populated once poisoning is configured.
	last := rest[len(rest)-1]
	if len(last.FlippedFrac) != len(last.Active) {
		t.Fatal("FlippedFrac not tracked")
	}
	if len(last.RefPoisonedApprovals) != len(last.Active) {
		t.Fatal("RefPoisonedApprovals not tracked")
	}
}

func TestPoisonTrackingWithoutAttack(t *testing.T) {
	cfg := smallConfig()
	cfg.Poison = PoisonConfig{Track: true, FlipA: 3, FlipB: 8}
	sim, err := NewSimulation(smallFed(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	if len(sim.PoisonedClients()) != 0 {
		t.Fatal("no clients should be poisoned")
	}
	for _, rr := range results {
		if len(rr.FlippedFrac) != len(rr.Active) {
			t.Fatal("tracking should be on")
		}
	}
}

func TestRandomAttackersInjectPoisonedTxs(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 5
	cfg.Poison = PoisonConfig{RandomAttackers: 2, FlipA: 3, FlipB: 8}
	sim, err := NewSimulation(smallFed(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	poisonedTxs := 0
	for _, tx := range sim.DAG().All() {
		if tx.Meta.Poisoned {
			poisonedTxs++
		}
	}
	if poisonedTxs != 10 { // 2 per round x 5 rounds
		t.Fatalf("poisoned transactions = %d, want 10", poisonedTxs)
	}
}

func TestWalkTimeMeasurement(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 3
	cfg.MeasureWalkTime = true
	sim, err := NewSimulation(smallFed(10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	for _, rr := range results {
		if len(rr.WalkDurations) != len(rr.Active) {
			t.Fatal("walk durations not recorded")
		}
		if rr.MeanWalkDuration() < 0 {
			t.Fatal("negative walk duration")
		}
	}
}

func TestWalkStatsAccumulate(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 6
	sim, err := NewSimulation(smallFed(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	// After a few rounds the DAG has interior nodes, so walks must step and
	// evaluate.
	last := results[len(results)-1]
	if last.Walk.Steps == 0 || last.Walk.Evaluations == 0 {
		t.Fatalf("no walk work recorded: %+v", last.Walk)
	}
}

func TestURTSSelectorWorks(t *testing.T) {
	cfg := smallConfig()
	cfg.Selector = tipselect.URTS{}
	sim, err := NewSimulation(smallFed(12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	if len(results) != cfg.Rounds {
		t.Fatal("URTS run incomplete")
	}
}

func TestClientGraphBuildable(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 20
	sim, err := NewSimulation(smallFed(13), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	g := metrics.BuildClientGraph(sim.DAG())
	if g.NumNodes() == 0 {
		t.Fatal("client graph empty")
	}
	part := graphx.Louvain(g, nil)
	if len(part) != g.NumNodes() {
		t.Fatal("partition incomplete")
	}
}

func TestSingleClientFederation(t *testing.T) {
	// Degenerate but must not crash: one client approves its own updates.
	fed := dataset.FMNISTClustered(dataset.FMNISTConfig{
		Clients: 1, TrainPerClient: 30, TestPerClient: 10, Seed: 14,
	})
	cfg := smallConfig()
	cfg.ClientsPerRound = 1
	cfg.Rounds = 5
	sim, err := NewSimulation(fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	if len(results) != 5 {
		t.Fatal("single-client run incomplete")
	}
}

func TestSharedLayersValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.SharedLayers = 3 // arch has 2 dense layers
	if err := cfg.Validate(); err == nil {
		t.Error("SharedLayers beyond NumLayers should be rejected")
	}
	cfg.SharedLayers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative SharedLayers should be rejected")
	}
	cfg.SharedLayers = 2
	if err := cfg.Validate(); err != nil {
		t.Errorf("SharedLayers == NumLayers should be legal: %v", err)
	}
}

// TestPartialSharingPersonalizesHeads runs the paper's future-work
// extension: with only the first layer shared, each client keeps a personal
// output head. The run must complete and reach reasonable accuracy.
func TestPartialSharingPersonalizesHeads(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 20
	cfg.SharedLayers = 1
	sim, err := NewSimulation(smallFed(40), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	last := results[len(results)-1]
	if last.MeanTrainedAcc() < 0.5 {
		t.Fatalf("partial sharing broke training: acc %v", last.MeanTrainedAcc())
	}
}

// Partial sharing must change behaviour relative to full sharing (the heads
// diverge), while SharedLayers == NumLayers must be identical to 0.
func TestPartialSharingSemantics(t *testing.T) {
	run := func(shared int) float64 {
		cfg := smallConfig()
		cfg.Rounds = 10
		cfg.SharedLayers = shared
		sim, err := NewSimulation(smallFed(41), cfg)
		if err != nil {
			t.Fatal(err)
		}
		results := sim.Run()
		return results[len(results)-1].MeanTrainedAcc()
	}
	full := run(0)
	alsoFull := run(2) // == NumLayers: head slice is empty, so identical
	if full != alsoFull {
		t.Fatalf("SharedLayers=NumLayers should equal full sharing: %v vs %v", full, alsoFull)
	}
}

func TestRevealDelayValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.RevealDelay = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative RevealDelay should be rejected")
	}
}

// TestRevealDelayRuns verifies the non-ideal-broadcast mode: with a reveal
// delay, clients walk partial views of the tangle, yet training still
// progresses and specialization still emerges above the random baseline.
func TestRevealDelayRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 25
	cfg.RevealDelay = 2
	sim, err := NewSimulation(smallFed(50), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	last := results[len(results)-1]
	if last.MeanTrainedAcc() < 0.5 {
		t.Fatalf("delayed visibility broke training: acc %v", last.MeanTrainedAcc())
	}
	pureness := metrics.ApprovalPureness(sim.DAG(), sim.ClusterOf())
	if pureness <= 1.0/3 {
		t.Fatalf("pureness %v should stay above the random base under delay", pureness)
	}
}

// With delayed reveal, a client may approve transactions that are stale
// globally but tips within its view; all published transactions must still
// reference existing parents (no dangling approvals).
func TestRevealDelayKeepsDAGConsistent(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 15
	cfg.RevealDelay = 3
	sim, err := NewSimulation(smallFed(51), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	for _, tx := range sim.DAG().All() {
		for _, p := range tx.Parents {
			if p >= tx.ID {
				t.Fatal("acyclicity violated under reveal delay")
			}
		}
	}
}

func TestRevealDelayZeroMatchesDefault(t *testing.T) {
	run := func(delay int) float64 {
		cfg := smallConfig()
		cfg.Rounds = 8
		cfg.RevealDelay = delay
		sim, err := NewSimulation(smallFed(52), cfg)
		if err != nil {
			t.Fatal(err)
		}
		results := sim.Run()
		return results[len(results)-1].MeanTrainedAcc()
	}
	if run(0) != run(0) {
		t.Fatal("baseline must be deterministic")
	}
}

func TestMemoDisabledMatchesEnabled(t *testing.T) {
	// Memoization must not change behaviour, only cost.
	run := func(disable bool) float64 {
		cfg := smallConfig()
		cfg.Rounds = 8
		cfg.DisableEvalMemo = disable
		sim, err := NewSimulation(smallFed(15), cfg)
		if err != nil {
			t.Fatal(err)
		}
		results := sim.Run()
		return results[len(results)-1].MeanTrainedAcc()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("memoization changed results: %v vs %v", a, b)
	}
}

func BenchmarkSimulationRound(b *testing.B) {
	fed := smallFed(16)
	cfg := smallConfig()
	cfg.Rounds = b.N + 1
	sim, err := NewSimulation(fed, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunRound()
	}
}

// TestClientsPerRoundOversubscription: sampling more clients per round than
// the federation holds is a configuration error with an actionable message,
// not a silent permutation-sized round.
func TestClientsPerRoundOversubscription(t *testing.T) {
	cfg := smallConfig()
	cfg.ClientsPerRound = 13 // federation has 12
	_, err := NewSimulation(smallFed(17), cfg)
	if err == nil {
		t.Fatal("oversubscribed ClientsPerRound accepted")
	}
	if !strings.Contains(err.Error(), "12 clients") || !strings.Contains(err.Error(), "ClientsPerRound 13") {
		t.Fatalf("unhelpful error: %v", err)
	}
	cfg.ClientsPerRound = 12 // exactly the federation size stays legal
	if _, err := NewSimulation(smallFed(17), cfg); err != nil {
		t.Fatalf("full-federation rounds rejected: %v", err)
	}
}
