package core

// Checkpoint/resume for the event-driven simulation — the async variant of
// the SDC1 checkpoint family (magic "SDA1"). The synchronous codec
// (checkpoint.go) snapshots state between rounds; this one snapshots state
// between events, which is where the asynchronous engine's Step boundary
// lies, so engine.Run's WithCheckpoints option works unchanged.
//
// What must be saved is exactly what one event cannot reconstruct:
//
//   - the event queue: every scheduled-but-unprocessed client activation
//     (time, scheduling sequence number, client index). The heap's pop order
//     is a strict total order (time, then sequence), so the restored queue
//     replays events in exactly the original order.
//   - pending transactions: models that passed the publish gate but whose
//     network propagation delay has not elapsed — they exist nowhere else.
//   - per-client statistics (cycles, publishes, final accuracy), which feed
//     the partial Result history.
//   - the tangle itself, embedded as an SDG1 snapshot like the sync codec.
//   - the processed-event and scheduling counters and the done flag.
//
// What is deliberately NOT saved, because it is a pure function of the
// configuration (and is verified or regenerated on resume):
//
//   - RNG stream positions: all per-event randomness comes from
//     SplitIndex("async-event", seq) — pure seed splits, so the "stream
//     position" of a client is just the next event's sequence number, which
//     the queue already carries. The seed is stored and verified.
//   - per-client cycle times and the desynchronized start schedule: both are
//     drawn from SplitIndex("async-client", id) by NewAsyncSimulation, so
//     the resumed constructor regenerates them bit-identically.
//   - evaluation caches: pure per-transaction accuracies; a cold cache
//     recomputes the same values.
//
// Unlike the synchronous codec, the simulated-time horizon cannot be
// extended on resume: each processed event already decided whether to
// reschedule its client by comparing against Duration, so a longer horizon
// would need reschedule decisions that were discarded. Duration (and the
// other timing parameters) are therefore stored and must match exactly.

import (
	"bytes"
	"container/heap"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/faults"
)

// asyncCheckpointMagic identifies event-driven simulation checkpoints — the
// async variant of the SDC1 checkpoint family.
var asyncCheckpointMagic = [4]byte{'S', 'D', 'A', '1'}

// asyncClientCheckpoint is the per-client carried state of an async run.
type asyncClientCheckpoint struct {
	ID        int
	Cycles    int
	Published int
	FinalAcc  float64
}

// asyncEventCheckpoint is one scheduled-but-unprocessed client activation.
type asyncEventCheckpoint struct {
	At     float64
	Seq    int
	Client int // index into the federation's client list
}

// asyncPendingCheckpoint is a published transaction still propagating.
// PubSeq/PubTime key the fault model's per-link delivery draws (zero in
// fault-free runs).
type asyncPendingCheckpoint struct {
	VisibleAt float64
	Issuer    int
	Parents   []dag.ID
	Params    []float64
	Meta      dag.Meta
	PubSeq    int
	PubTime   float64
}

// asyncTxCheckpoint is the publish metadata of a transaction already in the
// tangle, needed to recompute per-observer delivery times after a resume.
type asyncTxCheckpoint struct {
	ID      dag.ID
	PubSeq  int
	PubTime float64
}

// asyncCheckpointState is the serialized event-driven simulation.
type asyncCheckpointState struct {
	Seed         int64
	Duration     float64
	MinCycle     float64
	MaxCycle     float64
	NetworkDelay float64
	Events       int
	Seq          int
	Done         bool
	Queue        []asyncEventCheckpoint
	Pending      []asyncPendingCheckpoint
	Clients      []asyncClientCheckpoint
	DAG          []byte // SDG1 snapshot (dag.WriteTo)

	// Versioned fault-state section (0 = fault-free or pre-fault snapshot;
	// gob decodes absent fields to zero, so old snapshots stay readable).
	// The instantiated model is a pure function of (schedule, seed, clients,
	// horizon) and is rebuilt on resume; only the schedule, the publish
	// counter, per-transaction publish metadata and the communication
	// counters carry state.
	FaultsVersion int
	Faults        faults.Config
	PubSeq        int
	TxInfo        []asyncTxCheckpoint
	Deliveries    int
	Dropped       int
	Duplicated    int

	// Versioned epoch-compaction section (0 = compaction off or pre-compaction
	// snapshot). The DAG snapshot above holds the live suffix with frozen
	// parameter vectors elided; Epochs carries the per-epoch summaries that
	// make the restored tangle resume-equivalent (spill files are referenced
	// by path, not embedded, so checkpoint size tracks the live suffix).
	CompactionVersion int
	Compaction        dag.Compaction
	Epochs            []dag.EpochSummary
}

// WriteCheckpoint serializes the event-driven simulation's full state to w
// and returns the number of bytes written. The simulation can keep running
// afterwards; the checkpoint captures the state between events, which is the
// asynchronous engine's Step boundary (so engine.Run's WithCheckpoints
// writes consistent snapshots).
func (a *AsyncSimulation) WriteCheckpoint(w io.Writer) (int64, error) {
	var dagBuf bytes.Buffer
	if _, err := a.tangle.WriteTo(&dagBuf); err != nil {
		return 0, fmt.Errorf("core: checkpointing DAG: %w", err)
	}
	st := asyncCheckpointState{
		Seed:         a.cfg.Seed,
		Duration:     a.cfg.Duration,
		MinCycle:     a.cfg.MinCycle,
		MaxCycle:     a.cfg.MaxCycle,
		NetworkDelay: a.cfg.NetworkDelay,
		Events:       a.events,
		Seq:          a.seq,
		Done:         a.done,
		DAG:          dagBuf.Bytes(),
	}
	if a.cfg.Faults.Enabled() {
		st.FaultsVersion = 1
		st.Faults = a.cfg.Faults
		st.PubSeq = a.pubSeq
		st.Deliveries = a.deliveries
		st.Dropped = a.droppedDeliveries
		st.Duplicated = a.duplicatedDeliveries
		// Map iteration order is arbitrary; identical states must serialize
		// to identical bytes, so collect then sort by transaction ID.
		txs := make([]asyncTxCheckpoint, 0, len(a.txInfo))
		for id, info := range a.txInfo {
			txs = append(txs, asyncTxCheckpoint{ID: id, PubSeq: info.pubSeq, PubTime: info.pubTime})
		}
		sort.Slice(txs, func(i, j int) bool { return txs[i].ID < txs[j].ID })
		st.TxInfo = txs
	}
	if a.cfg.Compaction.Enabled() {
		st.CompactionVersion = 1
		st.Compaction = a.tangle.CompactionConfig()
		st.Epochs = a.tangle.FrozenEpochs()
	}
	for _, ev := range a.queue {
		st.Queue = append(st.Queue, asyncEventCheckpoint{At: ev.at, Seq: ev.seq, Client: ev.client})
	}
	for _, p := range a.pending {
		st.Pending = append(st.Pending, asyncPendingCheckpoint{
			VisibleAt: p.visibleAt,
			Issuer:    p.issuer,
			Parents:   p.parents,
			Params:    p.params,
			Meta:      p.meta,
			PubSeq:    p.pubSeq,
			PubTime:   p.pubTime,
		})
	}
	for _, c := range a.clients {
		st.Clients = append(st.Clients, asyncClientCheckpoint{
			ID:        c.stats.ID,
			Cycles:    c.stats.Cycles,
			Published: c.stats.Published,
			FinalAcc:  c.stats.FinalAcc,
		})
	}
	cw := &countingWriter{w: w}
	if _, err := cw.Write(asyncCheckpointMagic[:]); err != nil {
		return cw.n, err
	}
	if err := gob.NewEncoder(cw).Encode(st); err != nil {
		return cw.n, fmt.Errorf("core: encoding async checkpoint: %w", err)
	}
	return cw.n, nil
}

// readAsyncCheckpointState decodes and structurally validates an async
// checkpoint. Every field a corrupted or adversarial snapshot could use to
// break the simulation's invariants (heap ordering, client indexing, parent
// references) is checked here, so resume either succeeds or fails with an
// actionable error — never a panic and never a silently wrong run.
func readAsyncCheckpointState(r io.Reader) (*asyncCheckpointState, *dag.DAG, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	switch magic {
	case asyncCheckpointMagic:
	case checkpointMagic:
		return nil, nil, fmt.Errorf("core: this is a synchronous round-simulation checkpoint (magic %q) — resume it with ResumeSimulation, not ResumeAsyncSimulation", magic)
	case codecMagicSDG1:
		return nil, nil, fmt.Errorf("core: bad magic %q — this is a bare DAG snapshot, not a simulation checkpoint (inspect it with dagstat or dag.ReadDAG)", magic)
	case eventStreamMagicSDE1:
		return nil, nil, fmt.Errorf("core: bad magic %q — this is an event-stream log, not a simulation checkpoint (inspect it with dagstat or wire.ReadAll)", magic)
	default:
		return nil, nil, fmt.Errorf("core: bad magic %q (not a SDA1 async checkpoint)", magic)
	}
	var st asyncCheckpointState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, nil, fmt.Errorf("core: decoding async checkpoint: %w", err)
	}
	if st.Events < 0 || st.Seq < 0 {
		return nil, nil, fmt.Errorf("core: async checkpoint has negative counters (events %d, seq %d)", st.Events, st.Seq)
	}
	if st.Seq < len(st.Clients) {
		// The constructor alone consumes one sequence number per client.
		return nil, nil, fmt.Errorf("core: async checkpoint scheduling counter %d is below its %d clients", st.Seq, len(st.Clients))
	}
	for i, ev := range st.Queue {
		if math.IsNaN(ev.At) || math.IsInf(ev.At, 0) || ev.At < 0 {
			return nil, nil, fmt.Errorf("core: async checkpoint queue entry %d has invalid time %v", i, ev.At)
		}
		if ev.Seq < 0 || ev.Seq >= st.Seq {
			return nil, nil, fmt.Errorf("core: async checkpoint queue entry %d has sequence %d outside [0, %d)", i, ev.Seq, st.Seq)
		}
		if ev.Client < 0 || ev.Client >= len(st.Clients) {
			return nil, nil, fmt.Errorf("core: async checkpoint queue entry %d activates client index %d of %d", i, ev.Client, len(st.Clients))
		}
	}
	if st.FaultsVersion < 0 || st.FaultsVersion > 1 {
		return nil, nil, fmt.Errorf("core: async checkpoint fault section has version %d, this build understands 0 and 1 — written by a newer version?", st.FaultsVersion)
	}
	if st.FaultsVersion == 1 {
		if err := st.Faults.Validate(); err != nil {
			return nil, nil, fmt.Errorf("core: async checkpoint fault schedule: %w", err)
		}
		if st.PubSeq < 0 {
			return nil, nil, fmt.Errorf("core: async checkpoint has negative publish counter %d", st.PubSeq)
		}
	}
	if st.CompactionVersion < 0 || st.CompactionVersion > 1 {
		return nil, nil, fmt.Errorf("core: async checkpoint compaction section has version %d, this build understands 0 and 1 — written by a newer version?", st.CompactionVersion)
	}
	if st.CompactionVersion == 1 {
		if !st.Compaction.Enabled() {
			return nil, nil, fmt.Errorf("core: async checkpoint has a compaction section but no epoch width")
		}
		if err := st.Compaction.Validate(); err != nil {
			return nil, nil, fmt.Errorf("core: async checkpoint compaction config: %w", err)
		}
	}
	d, err := dag.ReadDAG(bytes.NewReader(st.DAG))
	if err != nil {
		return nil, nil, fmt.Errorf("core: async checkpoint DAG: %w", err)
	}
	if st.CompactionVersion == 1 {
		if err := d.RestoreCompaction(st.Compaction, st.Epochs); err != nil {
			return nil, nil, fmt.Errorf("core: async checkpoint epoch state: %w", err)
		}
	}
	for i, tx := range st.TxInfo {
		if int(tx.ID) <= 0 || int(tx.ID) >= d.Size() {
			return nil, nil, fmt.Errorf("core: async checkpoint publish metadata entry %d names unknown transaction %d", i, tx.ID)
		}
		if tx.PubSeq < 0 || tx.PubSeq >= st.PubSeq {
			return nil, nil, fmt.Errorf("core: async checkpoint publish metadata entry %d has sequence %d outside [0, %d)", i, tx.PubSeq, st.PubSeq)
		}
		if math.IsNaN(tx.PubTime) || math.IsInf(tx.PubTime, 0) || tx.PubTime < 0 {
			return nil, nil, fmt.Errorf("core: async checkpoint publish metadata entry %d has invalid publish time %v", i, tx.PubTime)
		}
	}
	paramDim := len(d.Genesis().Params)
	for i, p := range st.Pending {
		if math.IsNaN(p.VisibleAt) || math.IsInf(p.VisibleAt, 0) {
			return nil, nil, fmt.Errorf("core: async checkpoint pending tx %d has invalid visibility time %v", i, p.VisibleAt)
		}
		if len(p.Params) != paramDim {
			return nil, nil, fmt.Errorf("core: async checkpoint pending tx %d has %d params, DAG models have %d", i, len(p.Params), paramDim)
		}
		for _, parent := range p.Parents {
			if int(parent) < 0 || int(parent) >= d.Size() {
				return nil, nil, fmt.Errorf("core: async checkpoint pending tx %d approves unknown transaction %d", i, parent)
			}
		}
	}
	return &st, d, nil
}

// ResumeAsyncSimulation reconstructs an event-driven simulation from a
// checkpoint written by (*AsyncSimulation).WriteCheckpoint, using the same
// federation and configuration as the original run. The resumed simulation
// continues from the checkpointed event and produces per-event results, final
// statistics and a DAG bit-identical to a run that was never interrupted.
//
// Unlike ResumeSimulation, the configured horizon cannot be extended: every
// processed event already decided against Duration whether to reschedule its
// client, so Duration (and MinCycle/MaxCycle/NetworkDelay, which shape the
// regenerated schedule) must match the checkpoint exactly.
func ResumeAsyncSimulation(fed *dataset.Federation, cfg AsyncConfig, r io.Reader) (*AsyncSimulation, error) {
	st, d, err := readAsyncCheckpointState(r)
	if err != nil {
		return nil, err
	}
	if st.Seed != cfg.Seed {
		return nil, fmt.Errorf("core: async checkpoint was taken with Seed %d, config has %d — resuming under a different seed would diverge",
			st.Seed, cfg.Seed)
	}
	// The timing parameters shape both the regenerated per-client schedule
	// and the reschedule decisions already taken; any difference diverges.
	if st.Duration != cfg.Duration || st.MinCycle != cfg.MinCycle || st.MaxCycle != cfg.MaxCycle || st.NetworkDelay != cfg.NetworkDelay {
		return nil, fmt.Errorf("core: async checkpoint was taken with Duration=%v MinCycle=%v MaxCycle=%v NetworkDelay=%v, config has Duration=%v MinCycle=%v MaxCycle=%v NetworkDelay=%v — resuming under different timing would diverge",
			st.Duration, st.MinCycle, st.MaxCycle, st.NetworkDelay,
			cfg.Duration, cfg.MinCycle, cfg.MaxCycle, cfg.NetworkDelay)
	}
	if !st.Faults.Equal(cfg.Faults) {
		return nil, fmt.Errorf("core: async checkpoint was taken with fault schedule %+v, config has %+v — resuming under a different schedule would diverge",
			st.Faults, cfg.Faults)
	}
	if !compactionMatches(st.Compaction, cfg.Compaction) {
		return nil, fmt.Errorf("core: async checkpoint was taken with compaction %+v, config has %+v — resuming under a different epoch config would diverge",
			st.Compaction, cfg.Compaction)
	}
	a, err := NewAsyncSimulation(fed, cfg)
	if err != nil {
		return nil, err
	}
	if len(st.Clients) != len(a.clients) {
		return nil, fmt.Errorf("core: async checkpoint has %d clients, federation has %d", len(st.Clients), len(a.clients))
	}
	// The checkpointed genesis must match the one the seed regenerates: a
	// mismatch means a different architecture or a tampered snapshot.
	want, got := a.tangle.Genesis().Params, d.Genesis().Params
	if len(want) != len(got) {
		return nil, fmt.Errorf("core: async checkpoint genesis has %d params, config architecture needs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return nil, fmt.Errorf("core: async checkpoint genesis diverges from the seeded genesis at param %d", i)
		}
	}

	a.tangle = d
	// The restored tangle replaces the one NewAsyncSimulation configured:
	// re-wire its cumulative-weight sweep to the configured budget.
	a.tangle.SetParallelism(cfg.Pool, cfg.Workers)
	if st.CompactionVersion == 1 {
		a.compFloor = a.tangle.LiveFloor()
		for _, c := range a.clients {
			c.eval.Advance(a.compFloor)
		}
	}
	a.events = st.Events
	a.seq = st.Seq
	a.done = st.Done
	if a.net != nil {
		// The model itself was rebuilt by the constructor (a pure function of
		// the schedule); restore the publish metadata and counters, and point
		// the partial views at the restored tangle. Reveal state reconstructs
		// lazily — delivery times are pure, so the monotone predicate reveals
		// exactly the set the uninterrupted run had accumulated.
		a.pubSeq = st.PubSeq
		a.deliveries = st.Deliveries
		a.droppedDeliveries = st.Dropped
		a.duplicatedDeliveries = st.Duplicated
		a.txInfo = make(map[dag.ID]txDelivery, len(st.TxInfo))
		for _, tx := range st.TxInfo {
			a.txInfo[tx.ID] = txDelivery{pubSeq: tx.PubSeq, pubTime: tx.PubTime}
		}
		for _, c := range a.clients {
			c.view = dag.NewView(a.tangle)
		}
	}
	for i, cc := range st.Clients {
		c := a.clients[i]
		if c.stats.ID != cc.ID {
			return nil, fmt.Errorf("core: async checkpoint client %d has ID %d, federation has %d", i, cc.ID, c.stats.ID)
		}
		c.stats.Cycles = cc.Cycles
		c.stats.Published = cc.Published
		c.stats.FinalAcc = cc.FinalAcc
	}
	// Replace the constructor's fresh start schedule with the checkpointed
	// queue. The stored slice is a valid heap, but re-establishing the
	// invariant costs O(n) and also covers hand-edited snapshots; the pop
	// order is unaffected either way because (time, seq) is a strict total
	// order over the entries.
	a.queue = a.queue[:0]
	for _, ev := range st.Queue {
		a.queue = append(a.queue, event{at: ev.At, seq: ev.Seq, client: ev.Client})
	}
	heap.Init(&a.queue)
	a.pending = a.pending[:0]
	for _, p := range st.Pending {
		a.pending = append(a.pending, pendingTxAsync{
			visibleAt: p.VisibleAt,
			issuer:    p.Issuer,
			parents:   p.Parents,
			params:    p.Params,
			meta:      p.Meta,
			pubSeq:    p.PubSeq,
			pubTime:   p.PubTime,
		})
	}
	return a, nil
}
