// Package core implements the paper's primary contribution: the
// Specializing DAG — fully decentralized federated learning over a tangle of
// model updates with accuracy-aware tip selection (§4).
//
// Each training step of a client runs the four-phase loop of Fig. 1:
//
//  1. biased random walk: select two tips whose models perform well on the
//     client's local test data;
//  2. average the two tip models;
//  3. train the averaged model on local data;
//  4. publish the result as a new transaction approving the two tips — but
//     only if it beats the client's current consensus reference model.
//
// The simulation proceeds in discrete rounds like the paper's prototype
// (§5.3): every round a subset of clients is activated, all of them observe
// the DAG state from the start of the round (so their publishes are
// concurrent, which is what gives the tangle its width), and their new
// transactions are appended at the end of the round.
package core

import (
	"fmt"
	"time"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/faults"
	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/profiling"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/xrand"
)

// PoisonConfig describes the flipped-label attack scenario of §4.4/§5.3.4:
// an attacker manipulates the dataset (train *and* test) of a fraction of
// clients by swapping two labels. Poisoned clients are unaware and keep
// participating normally.
type PoisonConfig struct {
	// Fraction of clients whose labels get flipped (paper: 0, 0.2, 0.3).
	Fraction float64
	// FlipA/FlipB are the swapped labels (paper: 3 and 8).
	FlipA, FlipB int
	// StartRound is the round at which the attack begins (paper: 100
	// clean rounds first).
	StartRound int
	// Track enables flipped-prediction measurement even when Fraction is 0
	// (the p=0.0 baseline of Fig. 12).
	Track bool
	// RandomAttackers, when positive, additionally injects that many
	// attacker "clients" per round that publish random model weights
	// approving random tips — the first attack type of the threat model
	// (§4.4). They do not train and are tracked as poisoned transactions.
	RandomAttackers int
}

// Enabled reports whether any poisoning bookkeeping is needed.
func (p PoisonConfig) Enabled() bool {
	return p.Track || p.Fraction > 0 || p.RandomAttackers > 0
}

// EvalScope selects the lifetime of the per-client shared evaluation cache
// that the tip-walk/ReferenceWalks fan-out scores transactions through.
// Accuracies are pure per-transaction values, so the scope never changes
// results — it trades evaluation work against memory.
type EvalScope int

const (
	// EvalScopeRun (the default) keeps cached accuracies for the whole run:
	// a transaction is scored at most once per client, ever.
	EvalScopeRun EvalScope = iota
	// EvalScopeRound drops the cache at the start of each of the client's
	// activations — the per-(client, round) cache. Within a round the
	// tip walks and reference walks still share every score; across rounds
	// memory stays bounded by the DAG's working set instead of its history.
	EvalScopeRound
	// EvalScopeNone disables caching entirely: every lookup re-evaluates,
	// matching the cost profile of the paper's prototype (the Fig. 15
	// scalability experiment uses this).
	EvalScopeNone
)

// String returns the scope's name.
func (e EvalScope) String() string {
	switch e {
	case EvalScopeRun:
		return "run"
	case EvalScopeRound:
		return "round"
	case EvalScopeNone:
		return "none"
	default:
		return "unknown"
	}
}

// Config parameterizes a Specializing DAG simulation.
type Config struct {
	// Rounds and ClientsPerRound follow Table 1 (100 rounds, 10 clients).
	Rounds          int
	ClientsPerRound int
	// Local is the client-side SGD configuration (Table 1).
	Local nn.SGDConfig
	// Arch is the model architecture; the genesis transaction carries a
	// randomly initialized model of this shape.
	Arch nn.Arch
	// Selector is the tip-selection strategy. Nil defaults to the paper's
	// accuracy walk with α=10 and standard normalization.
	Selector tipselect.Selector
	// ReferenceWalks is the number of walks used to obtain the consensus
	// reference model (averaged if > 1). Default 1.
	ReferenceWalks int
	// DisablePublishGate publishes every trained model, even if it does not
	// beat the reference (ablation; the paper always gates).
	DisablePublishGate bool
	// SharedLayers, when in (0, NumLayers), enables partial-layer sharing —
	// the personalization extension named in the paper's conclusion
	// ("training only some layers of the machine learning model"): only the
	// first SharedLayers dense layers of the two selected tip models are
	// averaged; the remaining layers (the "head") are carried over from the
	// client's own previous model, making them persistently personal.
	// 0 (default) shares the whole model as in the paper's evaluation.
	SharedLayers int
	// EvalScope bounds the lifetime of the per-client evaluation cache (see
	// the EvalScope constants). The default, EvalScopeRun, caches for the
	// whole run. Results are identical for every scope.
	EvalScope EvalScope
	// DisableEvalMemo turns off per-client accuracy caching so every walk
	// re-evaluates children, matching the cost profile of the paper's
	// prototype (used by the Fig. 15 scalability experiment).
	//
	// Deprecated: set EvalScope to EvalScopeNone instead; DisableEvalMemo
	// is kept as an alias and forces that scope.
	DisableEvalMemo bool
	// MeasureWalkTime records wall-clock durations of each client's walks.
	MeasureWalkTime bool
	// RevealDelay, when positive, models non-ideal transaction
	// dissemination (relaxing the ideal-broadcast assumption of §5.3.5):
	// a transaction published in round r becomes visible to other clients
	// only from round r+RevealDelay on. Publishers always see their own
	// transactions immediately. 0 (default) is the paper's ideal broadcast.
	RevealDelay int
	// Faults, when enabled, applies the deterministic fault schedule of
	// internal/faults to the round grid: scheduled split-and-heal partitions
	// withhold cross-group transactions until their window heals, and clients
	// inside a churn crash window skip their sampled activations. The
	// network-shape fields (Delay, Jitter, DropProb, DupProb) and stragglers
	// describe continuous time and apply to the async engine only; the round
	// engine's delivery granularity remains RevealDelay. Times in the
	// schedule are measured in rounds.
	Faults faults.Config
	// Poison configures the attack scenario (zero value: no attack).
	Poison PoisonConfig
	// Workers bounds the number of goroutines that process the round's
	// sampled clients concurrently. 0 (the default) uses runtime.NumCPU().
	// Results are bit-identical for every worker count: each client derives
	// its randomness from its own split RNG stream, clients share no mutable
	// state during a round (the DAG is only read until round end), and the
	// round result is assembled in the original sampled-client order.
	// Workers == 1 runs the clients inline on the calling goroutine.
	Workers int
	// Pool, when set, is a shared worker budget: the round engine draws its
	// helper goroutines from it instead of spawning freely, so nested
	// fan-outs (an experiment sweep running many simulations, each fanning
	// over clients) never exceed the pool size in total. Workers remains the
	// per-round cap. Results are unaffected — the pool only bounds
	// concurrency.
	Pool *par.Budget
	// Compaction, when enabled, freezes epochs (buckets of Width rounds) of
	// old DAG history out of memory — summaries retained, params optionally
	// spilled to disk — so long runs complete in bounded RSS. Requires
	// ideal broadcast (RevealDelay 0, no fault schedule) and a depth-banded
	// selector; GuardDepth is derived from the selector. Results are
	// byte-identical with compaction on or off.
	Compaction dag.Compaction
	// Seed drives all randomness.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("core: Rounds must be positive, got %d", c.Rounds)
	}
	if c.ClientsPerRound <= 0 {
		return fmt.Errorf("core: ClientsPerRound must be positive, got %d", c.ClientsPerRound)
	}
	if err := c.Arch.Validate(); err != nil {
		return err
	}
	if c.ReferenceWalks < 0 {
		return fmt.Errorf("core: ReferenceWalks must be >= 0, got %d", c.ReferenceWalks)
	}
	if c.SharedLayers < 0 || c.SharedLayers > c.Arch.NumLayers() {
		return fmt.Errorf("core: SharedLayers %d outside [0, %d]", c.SharedLayers, c.Arch.NumLayers())
	}
	if c.RevealDelay < 0 {
		return fmt.Errorf("core: RevealDelay must be >= 0, got %d", c.RevealDelay)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", c.Workers)
	}
	if c.EvalScope < EvalScopeRun || c.EvalScope > EvalScopeNone {
		return fmt.Errorf("core: unknown EvalScope %d", c.EvalScope)
	}
	if p := c.Poison; p.Fraction < 0 || p.Fraction > 1 {
		return fmt.Errorf("core: poison fraction %v outside [0,1]", p.Fraction)
	}
	if c.Compaction.Enabled() {
		if err := c.Compaction.Validate(); err != nil {
			return err
		}
		if c.RevealDelay > 0 || c.Faults.Enabled() {
			// Partial views and fault schedules let clients approve non-tip
			// transactions, breaking the depth monotonicity the freeze guard
			// relies on.
			return fmt.Errorf("core: Compaction requires ideal broadcast; disable RevealDelay and Faults")
		}
	}
	return c.Faults.Validate()
}

func (c Config) withDefaults() Config {
	if c.Selector == nil {
		c.Selector = tipselect.AccuracyWalk{Alpha: 10}
	}
	if c.ReferenceWalks == 0 {
		c.ReferenceWalks = 1
	}
	if c.DisableEvalMemo {
		c.EvalScope = EvalScopeNone
	}
	return c
}

// client is the in-simulation state of one participant. Feature matrices
// are zero-copy views of the federation's flat storage (training never
// mutates inputs); labels are private copies because the poisoning attack
// flips them per client.
type client struct {
	id      int
	cluster int

	trainX mathx.Matrix
	trainY []int
	testX  mathx.Matrix
	testY  []int
	// origTestY preserves pre-poisoning test labels for the
	// flipped-prediction metric (Fig. 12 counts true 3s predicted as 8s).
	origTestY []int

	model    *nn.MLP // scratch model reused for training and evaluation
	eval     *tipselect.EvalCache
	poisoned bool
	// lastParams is the client's most recently trained model, used as the
	// source of the personal head under partial-layer sharing.
	lastParams []float64
	// view is the client's partial-visibility view of the tangle; nil when
	// RevealDelay is 0 (ideal broadcast).
	view *dag.View
}

// scoreParams evaluates arbitrary parameters on the client's test split,
// using the scratch model's buffers without copying the parameters in (the
// model's own weights are untouched).
func (c *client) scoreParams(params []float64) (loss, acc float64) {
	return c.model.EvaluateParams(params, c.testX, c.testY)
}

// scoreParamsBatch evaluates several parameter vectors on the client's test
// split in one pass — the batched walk-evaluation path. The walk only
// consumes accuracies, so the loss reduction is skipped (accuracy values
// are bit-identical to EvaluateMany's).
func (c *client) scoreParamsBatch(params [][]float64) []float64 {
	return c.model.AccuracyManyInto(nil, params, c.testX, c.testY)
}

// RoundResult records everything the evaluation needs about one round.
type RoundResult struct {
	Round  int
	Active []int // client IDs activated this round

	// Per active client, aligned with Active:
	TrainedAcc  []float64 // trained model accuracy on local test data
	TrainedLoss []float64
	RefAcc      []float64 // consensus reference accuracy on local test data
	RefLoss     []float64
	Published   []bool
	RefTx       []dag.ID // reference transaction per client

	// FlippedFrac is, per active client, the fraction of test samples whose
	// *original* label is FlipA/FlipB but which the reference model
	// predicts as the respective other label (Fig. 12). Only populated when
	// poisoning tracking is enabled.
	FlippedFrac []float64
	// ActivePoisoned marks which active clients are poisoned, aligned with
	// Active. Only populated when poisoning tracking is enabled.
	ActivePoisoned []bool
	// RefPoisonedApprovals counts poisoned transactions among the reference
	// transaction's ancestors, per active client (Fig. 13).
	RefPoisonedApprovals []int

	// Walk accounting (Fig. 15).
	Walk          tipselect.WalkStats
	WalkDurations []time.Duration
}

// MeanTrainedAcc returns the round's mean trained-model accuracy.
func (r RoundResult) MeanTrainedAcc() float64 { return mean(r.TrainedAcc) }

// MeanTrainedLoss returns the round's mean trained-model loss.
func (r RoundResult) MeanTrainedLoss() float64 { return mean(r.TrainedLoss) }

// MeanFlippedFrac returns the round's mean flipped-prediction fraction.
func (r RoundResult) MeanFlippedFrac() float64 { return mean(r.FlippedFrac) }

// MeanFlippedFracBenign returns the mean flipped-prediction fraction over
// the round's benign (non-poisoned) active clients only — the exposure of
// honest participants to the attack.
func (r RoundResult) MeanFlippedFracBenign() float64 {
	if len(r.ActivePoisoned) != len(r.FlippedFrac) {
		return mean(r.FlippedFrac)
	}
	s, n := 0.0, 0
	for i, frac := range r.FlippedFrac {
		if r.ActivePoisoned[i] {
			continue
		}
		s += frac
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanRefPoisonedApprovals returns the round's mean count of poisoned
// transactions approved (directly or indirectly) by reference transactions.
func (r RoundResult) MeanRefPoisonedApprovals() float64 {
	if len(r.RefPoisonedApprovals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.RefPoisonedApprovals {
		s += float64(v)
	}
	return s / float64(len(r.RefPoisonedApprovals))
}

// MeanWalkDuration returns the average wall-clock walk time per active
// client, or 0 when measurement was disabled.
func (r RoundResult) MeanWalkDuration() time.Duration {
	if len(r.WalkDurations) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range r.WalkDurations {
		total += d
	}
	return total / time.Duration(len(r.WalkDurations))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Simulation is a running Specializing DAG experiment.
type Simulation struct {
	cfg     Config
	fed     *dataset.Federation
	tangle  *dag.DAG
	clients []*client
	rng     *xrand.RNG
	round   int
	// compFloor tracks the tangle's live floor so eval caches are rebased
	// exactly once per floor advance (epoch compaction).
	compFloor dag.ID

	// net is the instantiated fault model (nil when cfg.Faults degenerates
	// to a uniform delay, which the round grid already ignores).
	net *faults.Model

	results []RoundResult
}

// NewSimulation validates inputs and prepares a simulation. The DAG starts
// with a genesis transaction carrying a randomly initialized model.
func NewSimulation(fed *dataset.Federation, cfg Config) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fed.Validate(); err != nil {
		return nil, err
	}
	if cfg.ClientsPerRound > len(fed.Clients) {
		return nil, fmt.Errorf("core: ClientsPerRound %d exceeds the federation's %d clients — a round samples without replacement, so reduce ClientsPerRound or enlarge the federation",
			cfg.ClientsPerRound, len(fed.Clients))
	}
	cfg = cfg.withDefaults()
	if cfg.Compaction.Enabled() {
		gmin, gmax, err := tipselect.CompactionGuardBand(cfg.Selector)
		if err != nil {
			return nil, err
		}
		cfg.Compaction.GuardDepthMin, cfg.Compaction.GuardDepth = gmin, gmax
	}
	root := xrand.New(cfg.Seed)

	genesis := nn.New(cfg.Arch, root.Split("genesis"))
	s := &Simulation{
		cfg:    cfg,
		fed:    fed,
		tangle: dag.New(genesis.ParamsCopy()),
		rng:    root,
	}
	// The tangle's cumulative-weight sweep (WeightedWalk's bias) fans out
	// over the same budget as the round engine; results are worker-count
	// invariant, so this only affects wall clock.
	s.tangle.SetParallelism(cfg.Pool, cfg.Workers)
	if cfg.Compaction.Enabled() {
		if err := s.tangle.SetCompaction(cfg.Compaction); err != nil {
			return nil, err
		}
	}

	if cfg.Faults.Enabled() {
		ids := make([]int, len(fed.Clients))
		for i, fc := range fed.Clients {
			ids[i] = fc.ID
		}
		m, err := faults.New(cfg.Faults, root, ids, float64(cfg.Rounds))
		if err != nil {
			return nil, err
		}
		if _, uniform := m.Uniform(); !uniform {
			s.net = m
		}
	}

	for _, fc := range fed.Clients {
		c := &client{
			id:      fc.ID,
			cluster: fc.Cluster,
			model:   genesis.Clone(),
		}
		c.trainX, c.trainY = fc.Train.X, fc.Train.CopyLabels()
		c.testX, c.testY = fc.Test.X, fc.Test.CopyLabels()
		c.origTestY = append([]int(nil), c.testY...)
		c.eval = s.newEvalFor(c)
		if s.needsViews() {
			c.view = dag.NewView(s.tangle)
		}
		s.clients = append(s.clients, c)
	}
	return s, nil
}

// needsViews reports whether clients require partial-visibility views:
// RevealDelay delays every reveal, and scheduled partitions withhold
// cross-group transactions. Churn alone does not restrict visibility.
func (s *Simulation) needsViews() bool {
	return s.cfg.RevealDelay > 0 || (s.net != nil && len(s.cfg.Faults.Partitions) > 0)
}

func (s *Simulation) newEvalFor(c *client) *tipselect.EvalCache {
	e := tipselect.NewEvalCache(
		func(params []float64) float64 {
			return c.model.AccuracyParams(params, c.testX, c.testY)
		},
		c.scoreParamsBatch,
	)
	e.Disable = s.cfg.EvalScope == EvalScopeNone
	return e
}

// DAG exposes the underlying tangle (read-only use intended).
func (s *Simulation) DAG() *dag.DAG { return s.tangle }

// Results returns the per-round results recorded so far.
func (s *Simulation) Results() []RoundResult { return s.results }

// Round returns the number of rounds executed so far.
func (s *Simulation) Round() int { return s.round }

// PoisonedClients returns the set of client IDs whose data is poisoned.
func (s *Simulation) PoisonedClients() map[int]bool {
	out := make(map[int]bool)
	for _, c := range s.clients {
		if c.poisoned {
			out[c.id] = true
		}
	}
	return out
}

// ClusterOf returns the ground-truth cluster lookup of the federation.
func (s *Simulation) ClusterOf() map[int]int { return s.fed.ClusterOf() }

// Run executes all remaining configured rounds and returns the recorded
// results.
//
// Deprecated: Run cannot be canceled, observed mid-flight or checkpointed.
// New code should drive the simulation through the unified run API —
// specdag.Run(ctx, sim, opts...) — and read Results afterwards; Run is kept
// as a thin convenience wrapper for fire-and-forget uses.
func (s *Simulation) Run() []RoundResult {
	for s.round < s.cfg.Rounds {
		s.RunRound()
	}
	return s.results
}

// pendingTx is a publish decision accumulated during a round and applied to
// the tangle at round end (concurrent semantics).
type pendingTx struct {
	issuer  int
	parents []dag.ID
	params  []float64
	meta    dag.Meta
}

// clientOutcome is everything one activated client produces during a round.
// Outcomes are computed concurrently (one per worker) and reduced into the
// RoundResult sequentially, in sampled-client order.
type clientOutcome struct {
	trainedAcc, trainedLoss float64
	refAcc, refLoss         float64
	publish                 bool
	refTx                   dag.ID
	stats                   tipselect.WalkStats
	walkDur                 time.Duration
	flippedFrac             float64
	poisoned                bool
	refPoisonedApprovals    int
	tx                      *pendingTx // nil when the publish gate held it back
}

// runClient executes the four-phase loop of Fig. 1 for one activated client.
// It only reads shared simulation state (the DAG is not mutated until round
// end) and only writes state owned by this client (its scratch model, memo
// evaluator, partial view, and lastParams), so distinct clients can run on
// distinct goroutines. All randomness comes from the client-and-round
// specific split stream, making the outcome independent of scheduling.
func (s *Simulation) runClient(c *client, round int) clientOutcome {
	crng := s.rng.SplitIndex("client-round", round*100003+c.id)
	graph := s.graphFor(c, round)
	if s.cfg.EvalScope == EvalScopeRound {
		// Per-(client, round) cache: this activation's walks share every
		// score, earlier rounds' entries are dropped.
		c.eval.Reset()
	}

	// Walk timing is advisory output (never fed back into results), and the
	// clock read is routed through profiling so this package stays
	// wall-clock-free under the detrand contract.
	watch := profiling.StartStopwatch()
	// (1) Biased random walk, twice, to select two tips.
	tips, stats := tipselect.SelectTips(s.cfg.Selector, graph, c.eval, crng, 2)
	// Consensus reference via additional walk(s).
	refTx, refParams, refStats := s.reference(graph, c, crng)
	stats.Add(refStats)
	var walkDur time.Duration
	if s.cfg.MeasureWalkTime {
		walkDur = watch.Elapsed()
	}

	// (2) Average the two tip models. Under partial-layer sharing only
	// the first SharedLayers layers come from the DAG; the head stays
	// the client's own.
	avg := nn.AverageParams(tips[0].Params, tips[1].Params)
	if k := s.cfg.SharedLayers; k > 0 && k < s.cfg.Arch.NumLayers() && c.lastParams != nil {
		split := s.cfg.Arch.PrefixParams(k)
		copy(avg[split:], c.lastParams[split:])
	}

	// (3) Train the averaged model on local data.
	c.model.SetParams(avg)
	c.model.Train(c.trainX, c.trainY, s.trainConfig(), crng.Split("train"))
	trainedParams := c.model.ParamsCopy()
	c.lastParams = trainedParams
	trainedLoss, trainedAcc := c.model.Evaluate(c.testX, c.testY)

	refLoss, refAcc := c.scoreParams(refParams)

	// (4) Publish if the trained model beats the consensus reference on
	// local test data (ties broken by loss so saturated clients keep
	// publishing).
	publish := trainedAcc > refAcc || (trainedAcc == refAcc && trainedLoss <= refLoss)
	if s.cfg.DisablePublishGate {
		publish = true
	}

	out := clientOutcome{
		trainedAcc:  trainedAcc,
		trainedLoss: trainedLoss,
		refAcc:      refAcc,
		refLoss:     refLoss,
		publish:     publish,
		refTx:       refTx,
		stats:       stats,
		walkDur:     walkDur,
	}
	if publish {
		out.tx = &pendingTx{
			issuer:  c.id,
			parents: []dag.ID{tips[0].ID, tips[1].ID},
			params:  trainedParams,
			meta: dag.Meta{
				TestAcc:  trainedAcc,
				Poisoned: c.poisoned,
			},
		}
	}
	if s.cfg.Poison.Enabled() {
		out.flippedFrac = c.flippedFraction(refParams, s.cfg.Poison)
		out.poisoned = c.poisoned
		out.refPoisonedApprovals = s.poisonedApprovalsOf(refTx)
	}
	return out
}

// RunRound executes a single round and returns its result.
//
// The round's sampled clients are processed by a pool of cfg.Workers
// goroutines. Clients are concurrent actors in the paper's model — all of
// them observe the DAG state from the start of the round and their publishes
// land together at round end — so the parallel schedule is semantically the
// sequential one, and the split-RNG discipline makes it numerically the
// sequential one too.
func (s *Simulation) RunRound() RoundResult {
	round := s.round
	s.maybeActivatePoisoning(round)

	sampler := s.rng.SplitIndex("round-sample", round)
	idxs := sampler.SampleWithoutReplacement(len(s.clients), s.cfg.ClientsPerRound)

	// Clients inside a churn crash window skip their sampled activation (the
	// filter runs before the fan-out, so the schedule stays worker-count
	// invariant; an all-crashed round simply publishes nothing).
	if s.net != nil {
		kept := idxs[:0]
		for _, ci := range idxs {
			if !s.net.Crashed(s.clients[ci].id, float64(round)) {
				kept = append(kept, ci)
			}
		}
		idxs = kept
	}

	// Fan out: one outcome slot per sampled client. SampleWithoutReplacement
	// yields distinct clients, so no client state is shared between workers.
	outs := make([]clientOutcome, len(idxs))
	par.ForEachIn(s.cfg.Pool, s.cfg.Workers, len(idxs), func(i int) {
		outs[i] = s.runClient(s.clients[idxs[i]], round)
	})

	// Reduce sequentially in sampled order: the result slices and the
	// pending publish list are identical to what the sequential loop built.
	res := RoundResult{Round: round}
	var pending []pendingTx
	trackPoison := s.cfg.Poison.Enabled()
	for i, out := range outs {
		c := s.clients[idxs[i]]
		if out.tx != nil {
			pending = append(pending, *out.tx)
		}
		res.Active = append(res.Active, c.id)
		res.TrainedAcc = append(res.TrainedAcc, out.trainedAcc)
		res.TrainedLoss = append(res.TrainedLoss, out.trainedLoss)
		res.RefAcc = append(res.RefAcc, out.refAcc)
		res.RefLoss = append(res.RefLoss, out.refLoss)
		res.Published = append(res.Published, out.publish)
		res.RefTx = append(res.RefTx, out.refTx)
		res.Walk.Add(out.stats)
		if s.cfg.MeasureWalkTime {
			res.WalkDurations = append(res.WalkDurations, out.walkDur)
		}
		if trackPoison {
			res.FlippedFrac = append(res.FlippedFrac, out.flippedFrac)
			res.ActivePoisoned = append(res.ActivePoisoned, out.poisoned)
			res.RefPoisonedApprovals = append(res.RefPoisonedApprovals, out.refPoisonedApprovals)
		}
	}

	// Random-weight attackers publish after honest clients selected tips but
	// their transactions land in the same round.
	if n := s.cfg.Poison.RandomAttackers; n > 0 && round >= s.cfg.Poison.StartRound {
		arng := s.rng.SplitIndex("attacker", round)
		tipIDs := s.tangle.Tips()
		for a := 0; a < n; a++ {
			params := arng.NormalVec(s.cfg.Arch.NumParams(), 0, 1)
			p1 := tipIDs[arng.Intn(len(tipIDs))]
			p2 := tipIDs[arng.Intn(len(tipIDs))]
			pending = append(pending, pendingTx{
				issuer:  -1000 - a, // attacker IDs outside the client space
				parents: []dag.ID{p1, p2},
				params:  params,
				meta:    dag.Meta{Poisoned: true},
			})
		}
	}

	// Apply all publishes at the end of the round (concurrent semantics).
	for _, p := range pending {
		if _, err := s.tangle.Add(p.issuer, round, p.parents, p.params, p.meta); err != nil {
			// Parents came from this DAG and are never removed; failure here
			// is a programming error.
			panic(fmt.Sprintf("core: publishing failed: %v", err))
		}
	}

	s.compact(round)

	s.results = append(s.results, res)
	s.round++
	return res
}

// compact freezes epochs that aged out of the live suffix at the end of a
// round and, when the live floor advances, rebases every client's eval
// cache onto the suffix. Runs in the sequential round-end section (the
// quiescent point CompactTo requires); no-op when compaction is off.
func (s *Simulation) compact(round int) {
	if !s.cfg.Compaction.Enabled() {
		return
	}
	floor, err := s.tangle.CompactTo(round)
	if err != nil {
		panic(fmt.Sprintf("core: epoch compaction failed: %v", err))
	}
	if floor > s.compFloor {
		s.compFloor = floor
		for _, c := range s.clients {
			c.eval.Advance(floor)
		}
	}
}

func (s *Simulation) trainConfig() nn.SGDConfig {
	cfg := s.cfg.Local
	cfg.Shuffle = true
	return cfg
}

// graphFor returns the tangle view the client walks over this round: the
// full DAG under ideal broadcast, or the client's partial view with all
// sufficiently old (or own) transactions revealed — minus whatever a live
// partition window still withholds from this client.
func (s *Simulation) graphFor(c *client, round int) tipselect.Graph {
	if c.view == nil {
		return s.tangle
	}
	horizon := round - s.cfg.RevealDelay
	c.view.RevealWhere(func(tx *dag.Transaction) bool {
		if tx.Issuer == c.id {
			return true
		}
		if tx.Round > horizon {
			return false
		}
		// A transaction published inside a partition window that separates
		// publisher and observer stays hidden until the window heals. The
		// predicate is monotone in the round counter, so views reconstruct
		// identically after a checkpoint resume.
		return s.net == nil || !s.net.PartitionDeferred(float64(tx.Round), tx.Issuer, c.id, float64(round))
	})
	return c.view
}

// reference obtains the client's consensus reference transaction and model
// parameters via cfg.ReferenceWalks tip selections (averaged when > 1).
func (s *Simulation) reference(graph tipselect.Graph, c *client, rng *xrand.RNG) (dag.ID, []float64, tipselect.WalkStats) {
	return consensusReference(graph, s.cfg.Selector, s.cfg.ReferenceWalks, c.eval, rng)
}

// consensusReference runs `walks` tip selections and returns the consensus
// reference: the first selected transaction's ID and, when walks > 1, the
// element-wise average of all selected models. It is the single reference
// implementation shared by the synchronous and asynchronous engines (the
// async engine used to ignore walks > 1 and always take exactly one walk).
func consensusReference(graph tipselect.Graph, sel tipselect.Selector, walks int, eval tipselect.Evaluator, rng *xrand.RNG) (dag.ID, []float64, tipselect.WalkStats) {
	var stats tipselect.WalkStats
	if walks <= 1 {
		tx, st := sel.SelectTip(graph, eval, rng)
		return tx.ID, tx.Params, st
	}
	params := make([][]float64, 0, walks)
	var first dag.ID
	for i := 0; i < walks; i++ {
		tx, st := sel.SelectTip(graph, eval, rng)
		stats.Add(st)
		params = append(params, tx.Params)
		if i == 0 {
			first = tx.ID
		}
	}
	return first, nn.AverageParams(params...), stats
}

// flippedFraction measures the fraction of the client's test samples whose
// original label is FlipA (resp. FlipB) but which the given model predicts
// as FlipB (resp. FlipA).
func (c *client) flippedFraction(params []float64, p PoisonConfig) float64 {
	if p.FlipA == p.FlipB {
		return 0
	}
	c.model.SetParams(params)
	flipped, total := 0, 0
	for i := 0; i < c.testX.Rows; i++ {
		orig := c.origTestY[i]
		if orig != p.FlipA && orig != p.FlipB {
			continue
		}
		total++
		pred := c.model.Predict(c.testX.Row(i))
		if (orig == p.FlipA && pred == p.FlipB) || (orig == p.FlipB && pred == p.FlipA) {
			flipped++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(flipped) / float64(total)
}

func (s *Simulation) poisonedApprovalsOf(id dag.ID) int {
	n := 0
	//speclint:allow maporder integer count over an unordered ancestor set; MustGet is a pure lock-free read, so the count is visit-order-independent
	for anc := range s.tangle.Ancestors(id) {
		if s.tangle.MustGet(anc).Meta.Poisoned {
			n++
		}
	}
	return n
}

// maybeActivatePoisoning flips labels for the configured fraction of clients
// at the attack start round.
func (s *Simulation) maybeActivatePoisoning(round int) {
	p := s.cfg.Poison
	if p.Fraction <= 0 || round != p.StartRound {
		return
	}
	prng := s.rng.Split("poison")
	n := int(p.Fraction * float64(len(s.clients)))
	for _, ci := range prng.SampleWithoutReplacement(len(s.clients), n) {
		c := s.clients[ci]
		c.poisoned = true
		flipLabels(c.trainY, p.FlipA, p.FlipB)
		flipLabels(c.testY, p.FlipA, p.FlipB)
		// Test data changed: cached accuracies are stale.
		c.eval = s.newEvalFor(c)
	}
}

func flipLabels(ys []int, a, b int) {
	for i, y := range ys {
		switch y {
		case a:
			ys[i] = b
		case b:
			ys[i] = a
		}
	}
}
