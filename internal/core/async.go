package core

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/xrand"
)

// AsyncConfig parameterizes the event-driven simulation of the Specializing
// DAG. The paper introduces discrete rounds only to compare against
// centralized baselines (§5.3.3): "in a distributed implementation, each
// client continuously runs the training process as often as its resources
// permit, independent from all other clients". This simulator models exactly
// that — heterogeneous per-client cycle times and a network propagation
// delay — and demonstrates the no-stragglers property.
type AsyncConfig struct {
	// Duration is the simulated time horizon in seconds.
	Duration float64
	// MinCycle/MaxCycle bound the per-client training cycle time in
	// seconds. Each client draws a fixed cycle time uniformly from this
	// interval, so some clients are persistently slow (stragglers).
	MinCycle float64
	MaxCycle float64
	// NetworkDelay is the simulated broadcast delay in seconds before a
	// published transaction becomes visible to other clients.
	NetworkDelay float64
	// Local, Arch, Selector, ReferenceWalks as in Config.
	Local          nn.SGDConfig
	Arch           nn.Arch
	Selector       tipselect.Selector
	ReferenceWalks int
	// Workers bounds the goroutines used for the independent model
	// evaluations inside one event (trained model vs. consensus reference).
	// 0 (the default) uses runtime.NumCPU(). The event loop itself stays
	// sequential: each event observes the DAG state its timestamp implies,
	// so events are causally ordered, unlike the clients within one round of
	// the discrete simulation. Results are identical for any worker count.
	Workers int
	// Pool, when set, is the shared worker budget the per-event evaluations
	// draw from (see Config.Pool).
	Pool *par.Budget
	// Seed drives all randomness.
	Seed int64
}

// Validate reports configuration errors.
func (c AsyncConfig) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("core: Duration must be positive, got %v", c.Duration)
	}
	if c.MinCycle <= 0 || c.MaxCycle < c.MinCycle {
		return fmt.Errorf("core: need 0 < MinCycle <= MaxCycle, got [%v, %v]", c.MinCycle, c.MaxCycle)
	}
	if c.NetworkDelay < 0 {
		return fmt.Errorf("core: NetworkDelay must be >= 0, got %v", c.NetworkDelay)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", c.Workers)
	}
	if c.ReferenceWalks < 0 {
		return fmt.Errorf("core: ReferenceWalks must be >= 0, got %d", c.ReferenceWalks)
	}
	return c.Arch.Validate()
}

// AsyncClientStats summarizes one client's activity in an async run.
type AsyncClientStats struct {
	ID        int
	CycleTime float64 // the client's fixed cycle time in simulated seconds
	Cycles    int     // completed train-publish cycles
	Published int     // cycles that passed the publish gate
	FinalAcc  float64 // trained-model accuracy at the last cycle
}

// AsyncEvent describes one processed client activation — the Detail payload
// of the RoundEvents the asynchronous engine emits.
type AsyncEvent struct {
	// Seq is the 0-based ordinal of the event in processing order.
	Seq int
	// Time is the simulated time of the activation in seconds.
	Time float64
	// Client is the activated client's ID.
	Client int
	// TrainedAcc/TrainedLoss score the freshly trained model; RefAcc/RefLoss
	// the consensus reference, both on the client's local test split.
	TrainedAcc  float64
	TrainedLoss float64
	RefAcc      float64
	RefLoss     float64
	// Published reports whether the cycle passed the publish gate.
	Published bool
}

// AsyncResult is the outcome of an event-driven run.
type AsyncResult struct {
	SimulatedTime float64
	Transactions  int
	Clients       []AsyncClientStats
	// DAG is the final tangle, for post-run inspection and metrics.
	DAG *dag.DAG
}

// event is one scheduled client activation.
type event struct {
	at     float64
	seq    int // tie-breaker for determinism
	client int // index into clients
}

// eventQueue is a min-heap of events ordered by time then sequence.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// pendingTxAsync is a published transaction awaiting network propagation.
type pendingTxAsync struct {
	visibleAt float64
	issuer    int
	parents   []dag.ID
	params    []float64
	meta      dag.Meta
}

// asyncClient is the in-simulation state of one event-driven participant.
type asyncClient struct {
	*client
	// evalModel is a second scratch model so the consensus-reference
	// evaluation can run concurrently with the trained-model evaluation
	// (client.model) within one event.
	evalModel *nn.MLP
	cycleTime float64
	stats     AsyncClientStats
}

// AsyncSimulation is a running event-driven Specializing DAG experiment: the
// asynchronous counterpart of Simulation, advanced one client activation at
// a time. The DAG a client observes at time t contains exactly the
// transactions published before t − NetworkDelay (plus its own).
type AsyncSimulation struct {
	cfg      AsyncConfig
	root     *xrand.RNG
	tangle   *dag.DAG
	clients  []*asyncClient
	queue    eventQueue
	pending  []pendingTxAsync
	trainCfg nn.SGDConfig
	seq      int // next scheduling sequence number
	events   int // processed events
	done     bool
}

// NewAsyncSimulation validates inputs and prepares an event-driven
// simulation. The DAG starts with a genesis transaction carrying a randomly
// initialized model; every client's first activation is scheduled within one
// of its own cycle times (desynchronized start).
func NewAsyncSimulation(fed *dataset.Federation, cfg AsyncConfig) (*AsyncSimulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fed.Validate(); err != nil {
		return nil, err
	}
	if cfg.Selector == nil {
		cfg.Selector = tipselect.AccuracyWalk{Alpha: 10}
	}
	if cfg.ReferenceWalks == 0 {
		cfg.ReferenceWalks = 1
	}

	root := xrand.New(cfg.Seed)
	genesis := nn.New(cfg.Arch, root.Split("genesis"))
	a := &AsyncSimulation{
		cfg:      cfg,
		root:     root,
		tangle:   dag.New(genesis.ParamsCopy()),
		trainCfg: cfg.Local,
	}
	a.trainCfg.Shuffle = true
	a.tangle.SetParallelism(cfg.Pool, cfg.Workers)

	for i, fc := range fed.Clients {
		c := &asyncClient{client: &client{
			id:      fc.ID,
			cluster: fc.Cluster,
			model:   genesis.Clone(),
		}, evalModel: genesis.Clone()}
		c.trainX, c.trainY = fc.Train.X, fc.Train.CopyLabels()
		c.testX, c.testY = fc.Test.X, fc.Test.CopyLabels()
		c.origTestY = append([]int(nil), c.testY...)
		crng := root.SplitIndex("async-client", fc.ID)
		c.eval = tipselect.NewEvalCache(
			func(params []float64) float64 {
				return c.model.AccuracyParams(params, c.testX, c.testY)
			},
			c.scoreParamsBatch,
		)
		c.cycleTime = cfg.MinCycle + crng.Float64()*(cfg.MaxCycle-cfg.MinCycle)
		c.stats = AsyncClientStats{ID: fc.ID, CycleTime: c.cycleTime}
		a.clients = append(a.clients, c)
		heap.Push(&a.queue, event{at: crng.Float64() * c.cycleTime, seq: a.seq, client: i})
		a.seq++
	}
	return a, nil
}

// flush applies every pending transaction whose propagation delay has
// elapsed by now.
func (a *AsyncSimulation) flush(now float64) {
	kept := a.pending[:0]
	for _, p := range a.pending {
		if p.visibleAt <= now {
			if _, err := a.tangle.Add(p.issuer, int(p.visibleAt), p.parents, p.params, p.meta); err != nil {
				panic(fmt.Sprintf("core: async publish failed: %v", err))
			}
		} else {
			kept = append(kept, p)
		}
	}
	a.pending = kept
}

// finish applies all remaining pending transactions and marks the run done.
func (a *AsyncSimulation) finish() {
	if a.done {
		return
	}
	a.flush(a.cfg.Duration + a.cfg.NetworkDelay)
	a.done = true
}

// step processes the next scheduled client activation. It returns the event
// detail, or nil when the simulated time horizon is exhausted.
func (a *AsyncSimulation) step() *AsyncEvent {
	if a.done {
		return nil
	}
	if a.queue.Len() == 0 {
		a.finish()
		return nil
	}
	ev := heap.Pop(&a.queue).(event)
	if ev.at > a.cfg.Duration {
		a.finish()
		return nil
	}
	a.flush(ev.at)
	c := a.clients[ev.client]
	crng := a.root.SplitIndex("async-event", ev.seq)

	tips, _ := tipselect.SelectTips(a.cfg.Selector, a.tangle, c.eval, crng, 2)
	_, refParams, _ := consensusReference(a.tangle, a.cfg.Selector, a.cfg.ReferenceWalks, c.eval, crng)

	avg := nn.AverageParams(tips[0].Params, tips[1].Params)
	c.model.SetParams(avg)
	c.model.Train(c.trainX, c.trainY, a.trainCfg, crng.Split("train"))

	// The two post-training evaluations are independent pure functions
	// over the client's test split; run them on separate scratch models
	// in parallel. Each closure writes only its own locals. (The separate
	// evalModel also fixed a seed-era bug where evaluating the reference
	// through c.model clobbered the trained params the publish below
	// ships — see TestAsyncPublishesTrainedModel.)
	var trainedLoss, trainedAcc, refLoss, refAcc float64
	par.DoIn(a.cfg.Pool, a.cfg.Workers,
		func() { trainedLoss, trainedAcc = c.model.Evaluate(c.testX, c.testY) },
		func() {
			refLoss, refAcc = c.evalModel.EvaluateParams(refParams, c.testX, c.testY)
		},
	)

	c.stats.Cycles++
	c.stats.FinalAcc = trainedAcc
	published := trainedAcc > refAcc || (trainedAcc == refAcc && trainedLoss <= refLoss)
	if published {
		c.stats.Published++
		a.pending = append(a.pending, pendingTxAsync{
			visibleAt: ev.at + a.cfg.NetworkDelay,
			issuer:    c.id,
			parents:   []dag.ID{tips[0].ID, tips[1].ID},
			params:    c.model.ParamsCopy(),
			meta:      dag.Meta{TestAcc: trainedAcc},
		})
	}

	next := ev.at + c.cycleTime
	if next <= a.cfg.Duration {
		heap.Push(&a.queue, event{at: next, seq: a.seq, client: ev.client})
		a.seq++
	}

	detail := &AsyncEvent{
		Seq:         a.events,
		Time:        ev.at,
		Client:      c.id,
		TrainedAcc:  trainedAcc,
		TrainedLoss: trainedLoss,
		RefAcc:      refAcc,
		RefLoss:     refLoss,
		Published:   published,
	}
	a.events++
	return detail
}

// DAG exposes the underlying tangle (read-only use intended). Before the run
// finishes it reflects only transactions that have propagated so far.
func (a *AsyncSimulation) DAG() *dag.DAG { return a.tangle }

// Events returns the number of client activations processed so far.
func (a *AsyncSimulation) Events() int { return a.events }

// Result summarizes the run so far: per-client statistics sorted by client
// ID plus the tangle. It is valid mid-run (partial results after a canceled
// run) as well as after completion.
func (a *AsyncSimulation) Result() *AsyncResult {
	res := &AsyncResult{SimulatedTime: a.cfg.Duration, Transactions: a.tangle.Size(), DAG: a.tangle}
	for _, c := range a.clients {
		res.Clients = append(res.Clients, c.stats)
	}
	sort.Slice(res.Clients, func(i, j int) bool { return res.Clients[i].ID < res.Clients[j].ID })
	return res
}

// RunAsync executes the event-driven simulation to completion and returns
// per-client statistics.
//
// Deprecated: RunAsync cannot be canceled or observed mid-flight. New code
// should construct the engine with NewAsyncSimulation and drive it through
// the unified run API — specdag.Run(ctx, asyncSim, opts...) — then read
// Result; RunAsync is kept as a thin convenience wrapper.
func RunAsync(fed *dataset.Federation, cfg AsyncConfig) (*AsyncResult, error) {
	a, err := NewAsyncSimulation(fed, cfg)
	if err != nil {
		return nil, err
	}
	for !a.done {
		a.step()
	}
	return a.Result(), nil
}
