package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/faults"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/xrand"
)

// AsyncConfig parameterizes the event-driven simulation of the Specializing
// DAG. The paper introduces discrete rounds only to compare against
// centralized baselines (§5.3.3): "in a distributed implementation, each
// client continuously runs the training process as often as its resources
// permit, independent from all other clients". This simulator models exactly
// that — heterogeneous per-client cycle times and a network propagation
// delay — and demonstrates the no-stragglers property.
type AsyncConfig struct {
	// Duration is the simulated time horizon in seconds.
	Duration float64
	// MinCycle/MaxCycle bound the per-client training cycle time in
	// seconds. Each client draws a fixed cycle time uniformly from this
	// interval, so some clients are persistently slow (stragglers).
	MinCycle float64
	MaxCycle float64
	// NetworkDelay is the simulated broadcast delay in seconds before a
	// published transaction becomes visible to other clients.
	NetworkDelay float64
	// Faults, when enabled, replaces the uniform NetworkDelay with the full
	// deterministic fault schedule of internal/faults: per-link latency and
	// jitter, message drop/duplication, scheduled split-and-heal partitions,
	// stragglers (cycle-time multipliers) and crash/recover churn windows.
	// faults.Scalar(d) is the exact compatibility schedule for NetworkDelay=d
	// (byte-identical results); NetworkDelay must be 0 when Faults is enabled.
	Faults faults.Config
	// Local, Arch, Selector, ReferenceWalks as in Config.
	Local          nn.SGDConfig
	Arch           nn.Arch
	Selector       tipselect.Selector
	ReferenceWalks int
	// Workers bounds the goroutines used for the independent model
	// evaluations inside one event (trained model vs. consensus reference).
	// 0 (the default) uses runtime.NumCPU(). The event loop itself stays
	// sequential: each event observes the DAG state its timestamp implies,
	// so events are causally ordered, unlike the clients within one round of
	// the discrete simulation. Results are identical for any worker count.
	Workers int
	// Pool, when set, is the shared worker budget the per-event evaluations
	// draw from (see Config.Pool).
	Pool *par.Budget
	// Compaction, when enabled, freezes epochs of old DAG history out of
	// memory (summaries retained, params optionally spilled to disk) so
	// long-haul runs complete in bounded RSS. Requires the uniform
	// broadcast delay (no fault schedule) and a depth-banded selector;
	// GuardDepth is derived from the selector and need not be set. Results
	// are byte-identical with compaction on or off.
	Compaction dag.Compaction
	// Seed drives all randomness.
	Seed int64
}

// Validate reports configuration errors.
func (c AsyncConfig) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("core: Duration must be positive, got %v", c.Duration)
	}
	if c.MinCycle <= 0 || c.MaxCycle < c.MinCycle {
		return fmt.Errorf("core: need 0 < MinCycle <= MaxCycle, got [%v, %v]", c.MinCycle, c.MaxCycle)
	}
	if c.NetworkDelay < 0 {
		return fmt.Errorf("core: NetworkDelay must be >= 0, got %v", c.NetworkDelay)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Faults.Enabled() && c.NetworkDelay != 0 {
		return fmt.Errorf("core: NetworkDelay %v conflicts with an enabled fault schedule — set Faults.Delay instead (faults.Scalar is the exact equivalent)", c.NetworkDelay)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", c.Workers)
	}
	if c.ReferenceWalks < 0 {
		return fmt.Errorf("core: ReferenceWalks must be >= 0, got %d", c.ReferenceWalks)
	}
	if c.Compaction.Enabled() {
		if err := c.Compaction.Validate(); err != nil {
			return err
		}
		if c.Faults.Enabled() {
			// The freeze guard relies on Round being monotone in insertion
			// order and on clients approving only current tips, both of which
			// per-link fault schedules break.
			return fmt.Errorf("core: Compaction requires the uniform broadcast delay; disable Faults")
		}
	}
	return c.Arch.Validate()
}

// AsyncClientStats summarizes one client's activity in an async run.
type AsyncClientStats struct {
	ID        int
	CycleTime float64 // the client's fixed cycle time in simulated seconds
	Cycles    int     // completed train-publish cycles
	Published int     // cycles that passed the publish gate
	FinalAcc  float64 // trained-model accuracy at the last cycle
}

// AsyncEvent describes one processed client activation — the Detail payload
// of the RoundEvents the asynchronous engine emits.
type AsyncEvent struct {
	// Seq is the 0-based ordinal of the event in processing order.
	Seq int
	// Time is the simulated time of the activation in seconds.
	Time float64
	// Client is the activated client's ID.
	Client int
	// TrainedAcc/TrainedLoss score the freshly trained model; RefAcc/RefLoss
	// the consensus reference, both on the client's local test split.
	TrainedAcc  float64
	TrainedLoss float64
	RefAcc      float64
	RefLoss     float64
	// Published reports whether the cycle passed the publish gate.
	Published bool
}

// AsyncResult is the outcome of an event-driven run.
type AsyncResult struct {
	SimulatedTime float64
	Transactions  int
	Clients       []AsyncClientStats
	// DAG is the final tangle, for post-run inspection and metrics.
	DAG *dag.DAG
	// Communication statistics, populated only when a non-uniform fault
	// schedule prices individual links: cross-link deliveries of published
	// transactions, initial-broadcast losses recovered by re-gossip, and
	// duplicate deliveries.
	Deliveries           int
	DroppedDeliveries    int
	DuplicatedDeliveries int
}

// event is one scheduled client activation.
type event struct {
	at     float64
	seq    int // tie-breaker for determinism
	client int // index into clients
}

// eventQueue is a min-heap of events ordered by time then sequence.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = shrinkCap(old[:n-1])
	return e
}

// shrinkCap releases a slice's backing array once its length falls below a
// quarter of the capacity: over a long run, transient bursts (a churn
// recovery flood of events, a delay spike's pending backlog) would otherwise
// pin their high-water storage forever.
func shrinkCap[T any](s []T) []T {
	if cap(s) >= 64 && len(s) < cap(s)/4 {
		return append(make([]T, 0, len(s)*2), s...)
	}
	return s
}

// pendingTxAsync is a published transaction awaiting network propagation.
// Under a fault model, visibleAt is the earliest delivery over all observers
// (entry into the global tangle); pubSeq/pubTime key the model's per-link
// delivery draws so each observer's view reveals the transaction at its own
// link's delivery time.
type pendingTxAsync struct {
	visibleAt float64
	issuer    int
	parents   []dag.ID
	params    []float64
	meta      dag.Meta
	pubSeq    int
	pubTime   float64
}

// txDelivery is the per-transaction metadata the fault model needs to
// recompute any link's delivery: the publish sequence number and time.
type txDelivery struct {
	pubSeq  int
	pubTime float64
}

// asyncClient is the in-simulation state of one event-driven participant.
type asyncClient struct {
	*client
	// evalModel is a second scratch model so the consensus-reference
	// evaluation can run concurrently with the trained-model evaluation
	// (client.model) within one event.
	evalModel *nn.MLP
	cycleTime float64
	stats     AsyncClientStats
}

// AsyncSimulation is a running event-driven Specializing DAG experiment: the
// asynchronous counterpart of Simulation, advanced one client activation at
// a time. Without a fault model, the DAG a client observes at time t
// contains exactly the transactions published before t − NetworkDelay; with
// one, each client observes the transactions its own links have delivered by
// t (per-link latency/jitter, re-gossip after drops, partition deferral).
type AsyncSimulation struct {
	cfg      AsyncConfig
	root     *xrand.RNG
	tangle   *dag.DAG
	clients  []*asyncClient
	queue    eventQueue
	pending  []pendingTxAsync
	trainCfg nn.SGDConfig
	seq      int // next scheduling sequence number
	events   int // processed events
	done     bool

	// net is the instantiated fault model, nil when the schedule degenerates
	// to the uniform broadcast delay (including Faults disabled entirely) —
	// the nil path is bit-for-bit the historical engine.
	net *faults.Model
	// netDelay is the effective uniform broadcast delay: cfg.NetworkDelay, or
	// the fault schedule's scalar delay when Faults is uniform.
	netDelay float64
	// pubSeq numbers publishes in event order; it keys the fault model's
	// per-link delivery draws.
	pubSeq int
	// compFloor tracks the tangle's live floor so eval caches are rebased
	// exactly once per floor advance.
	compFloor dag.ID
	// txInfo maps tangle transactions to their publish metadata so views can
	// recompute per-observer delivery times. Only populated when net != nil.
	txInfo map[dag.ID]txDelivery
	// Communication counters (net != nil only).
	deliveries           int
	droppedDeliveries    int
	duplicatedDeliveries int
}

// NewAsyncSimulation validates inputs and prepares an event-driven
// simulation. The DAG starts with a genesis transaction carrying a randomly
// initialized model; every client's first activation is scheduled within one
// of its own cycle times (desynchronized start).
func NewAsyncSimulation(fed *dataset.Federation, cfg AsyncConfig) (*AsyncSimulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fed.Validate(); err != nil {
		return nil, err
	}
	if cfg.Selector == nil {
		cfg.Selector = tipselect.AccuracyWalk{Alpha: 10}
	}
	if cfg.ReferenceWalks == 0 {
		cfg.ReferenceWalks = 1
	}
	if cfg.Compaction.Enabled() {
		// The freeze guard must cover every transaction a walk can reach;
		// that bound is the selector's entry band, derived here so callers
		// only choose Width/Live/SpillDir. DepthMin additionally lets the
		// guard retire dead cones instead of blocking on them forever.
		gmin, gmax, err := tipselect.CompactionGuardBand(cfg.Selector)
		if err != nil {
			return nil, err
		}
		cfg.Compaction.GuardDepthMin, cfg.Compaction.GuardDepth = gmin, gmax
	}

	root := xrand.New(cfg.Seed)
	genesis := nn.New(cfg.Arch, root.Split("genesis"))
	a := &AsyncSimulation{
		cfg:      cfg,
		root:     root,
		tangle:   dag.New(genesis.ParamsCopy()),
		trainCfg: cfg.Local,
		netDelay: cfg.NetworkDelay,
	}
	a.trainCfg.Shuffle = true
	a.tangle.SetParallelism(cfg.Pool, cfg.Workers)
	if cfg.Compaction.Enabled() {
		if err := a.tangle.SetCompaction(cfg.Compaction); err != nil {
			return nil, err
		}
	}

	if cfg.Faults.Enabled() {
		ids := make([]int, len(fed.Clients))
		for i, fc := range fed.Clients {
			ids[i] = fc.ID
		}
		m, err := faults.New(cfg.Faults, root, ids, cfg.Duration)
		if err != nil {
			return nil, err
		}
		if d, uniform := m.Uniform(); uniform {
			// The schedule is exactly the historical uniform broadcast delay:
			// keep the scalar code path (and its exact numerics).
			a.netDelay = d
		} else {
			a.net = m
			a.txInfo = make(map[dag.ID]txDelivery)
		}
	}

	for i, fc := range fed.Clients {
		c := &asyncClient{client: &client{
			id:      fc.ID,
			cluster: fc.Cluster,
			model:   genesis.Clone(),
		}, evalModel: genesis.Clone()}
		c.trainX, c.trainY = fc.Train.X, fc.Train.CopyLabels()
		c.testX, c.testY = fc.Test.X, fc.Test.CopyLabels()
		c.origTestY = append([]int(nil), c.testY...)
		crng := root.SplitIndex("async-client", fc.ID)
		c.eval = tipselect.NewEvalCache(
			func(params []float64) float64 {
				return c.model.AccuracyParams(params, c.testX, c.testY)
			},
			c.scoreParamsBatch,
		)
		c.cycleTime = cfg.MinCycle + crng.Float64()*(cfg.MaxCycle-cfg.MinCycle)
		if a.net != nil {
			// Stragglers run every cycle slower by the configured factor (a
			// factor of 1 is the exact identity for ordinary clients). Each
			// client also owns a partial view revealed at its own links'
			// delivery times.
			c.cycleTime *= a.net.CycleFactor(fc.ID)
			c.view = dag.NewView(a.tangle)
		}
		c.stats = AsyncClientStats{ID: fc.ID, CycleTime: c.cycleTime}
		a.clients = append(a.clients, c)
		heap.Push(&a.queue, event{at: crng.Float64() * c.cycleTime, seq: a.seq, client: i})
		a.seq++
	}
	return a, nil
}

// flush applies every pending transaction whose propagation delay has
// elapsed by now. Pending entries are in publish order and a parent's entry
// into the tangle never postdates a child's publish, so parents are always
// added before their children.
func (a *AsyncSimulation) flush(now float64) {
	kept := a.pending[:0]
	for _, p := range a.pending {
		if p.visibleAt <= now {
			tx, err := a.tangle.Add(p.issuer, int(p.visibleAt), p.parents, p.params, p.meta)
			if err != nil {
				panic(fmt.Sprintf("core: async publish failed: %v", err))
			}
			if a.net != nil {
				a.txInfo[tx.ID] = txDelivery{pubSeq: p.pubSeq, pubTime: p.pubTime}
			}
		} else {
			kept = append(kept, p)
		}
	}
	// Zero the reused tail: dag.Add retains the params slice itself, so a
	// stale slot in the old backing array would keep a delivered
	// transaction's parameters reachable (and un-collectible after epoch
	// compaction releases the tangle's copy) until it is next overwritten.
	tail := a.pending[len(kept):]
	for i := range tail {
		tail[i] = pendingTxAsync{}
	}
	a.pending = shrinkCap(kept)
}

// compact freezes epochs that aged out of the live suffix as of the given
// simulated time and, when the live floor advances, rebases every client's
// eval cache onto the suffix. It runs in the sequential section of the
// event loop (the quiescent point CompactTo requires) and is a no-op when
// compaction is off.
func (a *AsyncSimulation) compact(now float64) {
	if !a.cfg.Compaction.Enabled() {
		return
	}
	floor, err := a.tangle.CompactTo(int(now))
	if err != nil {
		panic(fmt.Sprintf("core: epoch compaction failed: %v", err))
	}
	if floor > a.compFloor {
		a.compFloor = floor
		for _, c := range a.clients {
			c.eval.Advance(floor)
		}
	}
}

// finish applies all remaining pending transactions and marks the run done.
func (a *AsyncSimulation) finish() {
	if a.done {
		return
	}
	if a.net != nil {
		// Per-link deliveries (and partition heals) can land arbitrarily
		// after the horizon; the final tangle contains every publish.
		a.flush(math.Inf(1))
	} else {
		a.flush(a.cfg.Duration + a.netDelay)
	}
	a.done = true
}

// step processes the next scheduled client activation. It returns the event
// detail, or nil when the simulated time horizon is exhausted.
func (a *AsyncSimulation) step() *AsyncEvent {
	if a.done {
		return nil
	}
	var ev event
	for {
		if a.queue.Len() == 0 {
			a.finish()
			return nil
		}
		ev = heap.Pop(&a.queue).(event)
		if ev.at > a.cfg.Duration {
			a.finish()
			return nil
		}
		if a.net == nil || !a.net.Crashed(a.clients[ev.client].id, ev.at) {
			break
		}
		// The client is inside its crash window: the activation is lost and
		// the client reschedules at its recovery. The skip happens inside
		// step so the engine adapter's "nil means done" contract holds.
		if rec := a.net.Recovery(a.clients[ev.client].id, ev.at); rec <= a.cfg.Duration {
			heap.Push(&a.queue, event{at: rec, seq: a.seq, client: ev.client})
			a.seq++
		}
	}
	a.flush(ev.at)
	a.compact(ev.at)
	c := a.clients[ev.client]
	crng := a.root.SplitIndex("async-event", ev.seq)

	// Under a fault model each client walks its own partial view, revealed at
	// the times its links actually deliver (jitter, re-gossip after drops,
	// partition deferral). Delivery times are pure functions of the model, so
	// the monotone reveal reconstructs identically after a resume.
	var graph tipselect.Graph = a.tangle
	if a.net != nil {
		c.view.RevealWhere(func(tx *dag.Transaction) bool {
			info, ok := a.txInfo[tx.ID]
			if !ok {
				return true // genesis: visible to everyone from the start
			}
			return a.net.Deliver(info.pubSeq, tx.Issuer, c.id, info.pubTime).VisibleAt <= ev.at
		})
		graph = c.view
	}

	tips, _ := tipselect.SelectTips(a.cfg.Selector, graph, c.eval, crng, 2)
	_, refParams, _ := consensusReference(graph, a.cfg.Selector, a.cfg.ReferenceWalks, c.eval, crng)

	avg := nn.AverageParams(tips[0].Params, tips[1].Params)
	c.model.SetParams(avg)
	c.model.Train(c.trainX, c.trainY, a.trainCfg, crng.Split("train"))

	// The two post-training evaluations are independent pure functions
	// over the client's test split; run them on separate scratch models
	// in parallel. Each closure writes only its own locals. (The separate
	// evalModel also fixed a seed-era bug where evaluating the reference
	// through c.model clobbered the trained params the publish below
	// ships — see TestAsyncPublishesTrainedModel.)
	var trainedLoss, trainedAcc, refLoss, refAcc float64
	par.DoIn(a.cfg.Pool, a.cfg.Workers,
		func() { trainedLoss, trainedAcc = c.model.Evaluate(c.testX, c.testY) },
		func() {
			refLoss, refAcc = c.evalModel.EvaluateParams(refParams, c.testX, c.testY)
		},
	)

	c.stats.Cycles++
	c.stats.FinalAcc = trainedAcc
	published := trainedAcc > refAcc || (trainedAcc == refAcc && trainedLoss <= refLoss)
	if published {
		c.stats.Published++
		p := pendingTxAsync{
			visibleAt: ev.at + a.netDelay,
			issuer:    c.id,
			parents:   []dag.ID{tips[0].ID, tips[1].ID},
			params:    c.model.ParamsCopy(),
			meta:      dag.Meta{TestAcc: trainedAcc},
		}
		if a.net != nil {
			// The transaction enters the global tangle at its earliest
			// delivery over all observers; each observer's view reveals it at
			// that observer's own link time. Cross-link outcomes feed the
			// run's communication statistics.
			p.pubSeq = a.pubSeq
			p.pubTime = ev.at
			a.pubSeq++
			minVis := math.Inf(1)
			for _, o := range a.clients {
				d := a.net.Deliver(p.pubSeq, c.id, o.id, ev.at)
				if d.VisibleAt < minVis {
					minVis = d.VisibleAt
				}
				if o.id != c.id {
					a.deliveries++
					a.droppedDeliveries += d.Dropped
					if d.Duplicated {
						a.duplicatedDeliveries++
					}
				}
			}
			p.visibleAt = minVis
		}
		a.pending = append(a.pending, p)
	}

	next := ev.at + c.cycleTime
	if next <= a.cfg.Duration {
		heap.Push(&a.queue, event{at: next, seq: a.seq, client: ev.client})
		a.seq++
	}

	detail := &AsyncEvent{
		Seq:         a.events,
		Time:        ev.at,
		Client:      c.id,
		TrainedAcc:  trainedAcc,
		TrainedLoss: trainedLoss,
		RefAcc:      refAcc,
		RefLoss:     refLoss,
		Published:   published,
	}
	a.events++
	return detail
}

// DAG exposes the underlying tangle (read-only use intended). Before the run
// finishes it reflects only transactions that have propagated so far.
func (a *AsyncSimulation) DAG() *dag.DAG { return a.tangle }

// Events returns the number of client activations processed so far.
func (a *AsyncSimulation) Events() int { return a.events }

// Result summarizes the run so far: per-client statistics sorted by client
// ID plus the tangle. It is valid mid-run (partial results after a canceled
// run) as well as after completion.
func (a *AsyncSimulation) Result() *AsyncResult {
	res := &AsyncResult{
		SimulatedTime:        a.cfg.Duration,
		Transactions:         a.tangle.Size(),
		DAG:                  a.tangle,
		Deliveries:           a.deliveries,
		DroppedDeliveries:    a.droppedDeliveries,
		DuplicatedDeliveries: a.duplicatedDeliveries,
	}
	for _, c := range a.clients {
		res.Clients = append(res.Clients, c.stats)
	}
	sort.Slice(res.Clients, func(i, j int) bool { return res.Clients[i].ID < res.Clients[j].ID })
	return res
}

// RunAsync executes the event-driven simulation to completion and returns
// per-client statistics.
//
// Deprecated: RunAsync cannot be canceled or observed mid-flight. New code
// should construct the engine with NewAsyncSimulation and drive it through
// the unified run API — specdag.Run(ctx, asyncSim, opts...) — then read
// Result; RunAsync is kept as a thin convenience wrapper.
func RunAsync(fed *dataset.Federation, cfg AsyncConfig) (*AsyncResult, error) {
	a, err := NewAsyncSimulation(fed, cfg)
	if err != nil {
		return nil, err
	}
	for !a.done {
		a.step()
	}
	return a.Result(), nil
}
