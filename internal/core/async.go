package core

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/xrand"
)

// AsyncConfig parameterizes the event-driven simulation of the Specializing
// DAG. The paper introduces discrete rounds only to compare against
// centralized baselines (§5.3.3): "in a distributed implementation, each
// client continuously runs the training process as often as its resources
// permit, independent from all other clients". This simulator models exactly
// that — heterogeneous per-client cycle times and a network propagation
// delay — and demonstrates the no-stragglers property.
type AsyncConfig struct {
	// Duration is the simulated time horizon in seconds.
	Duration float64
	// MinCycle/MaxCycle bound the per-client training cycle time in
	// seconds. Each client draws a fixed cycle time uniformly from this
	// interval, so some clients are persistently slow (stragglers).
	MinCycle float64
	MaxCycle float64
	// NetworkDelay is the simulated broadcast delay in seconds before a
	// published transaction becomes visible to other clients.
	NetworkDelay float64
	// Local, Arch, Selector, ReferenceWalks as in Config.
	Local          nn.SGDConfig
	Arch           nn.Arch
	Selector       tipselect.Selector
	ReferenceWalks int
	// Workers bounds the goroutines used for the independent model
	// evaluations inside one event (trained model vs. consensus reference).
	// 0 (the default) uses runtime.NumCPU(). The event loop itself stays
	// sequential: each event observes the DAG state its timestamp implies,
	// so events are causally ordered, unlike the clients within one round of
	// the discrete simulation. Results are identical for any worker count.
	Workers int
	// Seed drives all randomness.
	Seed int64
}

// Validate reports configuration errors.
func (c AsyncConfig) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("core: Duration must be positive, got %v", c.Duration)
	}
	if c.MinCycle <= 0 || c.MaxCycle < c.MinCycle {
		return fmt.Errorf("core: need 0 < MinCycle <= MaxCycle, got [%v, %v]", c.MinCycle, c.MaxCycle)
	}
	if c.NetworkDelay < 0 {
		return fmt.Errorf("core: NetworkDelay must be >= 0, got %v", c.NetworkDelay)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", c.Workers)
	}
	return c.Arch.Validate()
}

// AsyncClientStats summarizes one client's activity in an async run.
type AsyncClientStats struct {
	ID        int
	CycleTime float64 // the client's fixed cycle time in simulated seconds
	Cycles    int     // completed train-publish cycles
	Published int     // cycles that passed the publish gate
	FinalAcc  float64 // trained-model accuracy at the last cycle
}

// AsyncResult is the outcome of an event-driven run.
type AsyncResult struct {
	SimulatedTime float64
	Transactions  int
	Clients       []AsyncClientStats
	// DAG is the final tangle, for post-run inspection and metrics.
	DAG *dag.DAG
}

// event is one scheduled client activation.
type event struct {
	at     float64
	seq    int // tie-breaker for determinism
	client int // index into clients
}

// eventQueue is a min-heap of events ordered by time then sequence.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// pendingTxAsync is a published transaction awaiting network propagation.
type pendingTxAsync struct {
	visibleAt float64
	issuer    int
	parents   []dag.ID
	params    []float64
	meta      dag.Meta
}

// RunAsync executes the event-driven simulation and returns per-client
// statistics. The DAG a client observes at time t contains exactly the
// transactions published before t − NetworkDelay (plus its own).
func RunAsync(fed *dataset.Federation, cfg AsyncConfig) (*AsyncResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fed.Validate(); err != nil {
		return nil, err
	}
	if cfg.Selector == nil {
		cfg.Selector = tipselect.AccuracyWalk{Alpha: 10}
	}
	if cfg.ReferenceWalks <= 0 {
		cfg.ReferenceWalks = 1
	}

	root := xrand.New(cfg.Seed)
	genesis := nn.New(cfg.Arch, root.Split("genesis"))
	tangle := dag.New(genesis.ParamsCopy())

	type asyncClient struct {
		*client
		// evalModel is a second scratch model so the consensus-reference
		// evaluation can run concurrently with the trained-model evaluation
		// (client.model) within one event.
		evalModel *nn.MLP
		cycleTime float64
		stats     AsyncClientStats
	}

	clients := make([]*asyncClient, 0, len(fed.Clients))
	var queue eventQueue
	seq := 0
	for i, fc := range fed.Clients {
		c := &asyncClient{client: &client{
			id:      fc.ID,
			cluster: fc.Cluster,
			model:   genesis.Clone(),
		}, evalModel: genesis.Clone()}
		c.trainX, c.trainY = fc.Train.XY()
		c.testX, c.testY = fc.Test.XY()
		c.origTestY = append([]int(nil), c.testY...)
		crng := root.SplitIndex("async-client", fc.ID)
		c.eval = tipselect.NewMemoEvaluator(func(params []float64) float64 {
			_, acc := c.scoreParams(params)
			return acc
		})
		c.cycleTime = cfg.MinCycle + crng.Float64()*(cfg.MaxCycle-cfg.MinCycle)
		c.stats = AsyncClientStats{ID: fc.ID, CycleTime: c.cycleTime}
		clients = append(clients, c)
		// Desynchronized start: the first activation happens within one
		// cycle time.
		heap.Push(&queue, event{at: crng.Float64() * c.cycleTime, seq: seq, client: i})
		seq++
	}

	var pending []pendingTxAsync
	flush := func(now float64) {
		kept := pending[:0]
		for _, p := range pending {
			if p.visibleAt <= now {
				if _, err := tangle.Add(p.issuer, int(p.visibleAt), p.parents, p.params, p.meta); err != nil {
					panic(fmt.Sprintf("core: async publish failed: %v", err))
				}
			} else {
				kept = append(kept, p)
			}
		}
		pending = kept
	}

	trainCfg := cfg.Local
	trainCfg.Shuffle = true

	for queue.Len() > 0 {
		ev := heap.Pop(&queue).(event)
		if ev.at > cfg.Duration {
			break
		}
		flush(ev.at)
		c := clients[ev.client]
		crng := root.SplitIndex("async-event", ev.seq)

		tips, _ := tipselect.SelectTips(cfg.Selector, tangle, c.eval, crng, 2)
		refParams := tips[0].Params
		if cfg.ReferenceWalks >= 1 {
			refTx, _ := cfg.Selector.SelectTip(tangle, c.eval, crng)
			refParams = refTx.Params
		}

		avg := nn.AverageParams(tips[0].Params, tips[1].Params)
		c.model.SetParams(avg)
		c.model.Train(c.trainX, c.trainY, trainCfg, crng.Split("train"))

		// The two post-training evaluations are independent pure functions
		// over the client's test split; run them on separate scratch models
		// in parallel. Each closure writes only its own locals.
		//
		// Note this also fixes a bug the sequential code had: evaluating the
		// reference via c.scoreParams left the reference params in c.model,
		// so the publish below copied the *reference* model while stamping
		// it with the *trained* model's accuracy. Evaluating the reference
		// on evalModel keeps c.model holding the trained params, which is
		// what the protocol publishes (step 4 of Fig. 1, as in RunRound).
		var trainedLoss, trainedAcc, refLoss, refAcc float64
		par.Do(cfg.Workers,
			func() { trainedLoss, trainedAcc = c.model.Evaluate(c.testX, c.testY) },
			func() {
				c.evalModel.SetParams(refParams)
				refLoss, refAcc = c.evalModel.Evaluate(c.testX, c.testY)
			},
		)

		c.stats.Cycles++
		c.stats.FinalAcc = trainedAcc
		if trainedAcc > refAcc || (trainedAcc == refAcc && trainedLoss <= refLoss) {
			c.stats.Published++
			pending = append(pending, pendingTxAsync{
				visibleAt: ev.at + cfg.NetworkDelay,
				issuer:    c.id,
				parents:   []dag.ID{tips[0].ID, tips[1].ID},
				params:    c.model.ParamsCopy(),
				meta:      dag.Meta{TestAcc: trainedAcc},
			})
		}

		next := ev.at + c.cycleTime
		if next <= cfg.Duration {
			heap.Push(&queue, event{at: next, seq: seq, client: ev.client})
			seq++
		}
	}
	flush(cfg.Duration + cfg.NetworkDelay)

	res := &AsyncResult{SimulatedTime: cfg.Duration, Transactions: tangle.Size(), DAG: tangle}
	for _, c := range clients {
		res.Clients = append(res.Clients, c.stats)
	}
	sort.Slice(res.Clients, func(i, j int) bool { return res.Clients[i].ID < res.Clients[j].ID })
	return res, nil
}
