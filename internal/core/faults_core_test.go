package core

// Tests for the fault-injection threading through both engines: the scalar
// compatibility pin (faults.Scalar must reproduce the historical NetworkDelay
// numerics bit for bit), worker-count invariance under a composed
// partition × churn × straggler schedule, the crash-anywhere resume contract
// under that same chaos schedule (checkpoints landing mid-partition and
// mid-churn included), the synchronous engine's partition/churn semantics,
// and the checkpoint resume guards that reject schedule changes.

import (
	"bytes"
	"strings"
	"testing"

	"github.com/specdag/specdag/internal/faults"
	"github.com/specdag/specdag/internal/par"
)

// chaosFaults is the composed chaos schedule used across the async fault
// tests: jittered per-link latency with drops and duplicates, one
// split-and-heal partition, stragglers and churn. Times suit a Duration≈6
// run, so checkpoints land mid-partition and mid-crash-window.
func chaosFaults() faults.Config {
	return faults.Config{
		Delay:         0.5,
		Jitter:        0.4,
		DropProb:      0.1,
		Retransmit:    1,
		DupProb:       0.1,
		Partitions:    []faults.Partition{{From: 1.5, To: 4, Groups: 2}},
		StragglerFrac: 0.25, StragglerFactor: 3,
		ChurnFrac: 0.25, MaxDowntime: 3,
	}
}

// TestAsyncScalarFaultCompat pins the compatibility contract: a fault
// schedule that is exactly the uniform broadcast delay routes the engine
// through its original scalar code path, so events, statistics and the DAG
// are bit-identical to the historical NetworkDelay configuration.
func TestAsyncScalarFaultCompat(t *testing.T) {
	base := asyncConfig()
	base.Duration = 15

	compat := base
	compat.NetworkDelay = 0
	compat.Faults = faults.Scalar(base.NetworkDelay)

	fedSeed := int64(400)
	runOne := func(cfg AsyncConfig) ([]AsyncEvent, *AsyncSimulation) {
		a, err := NewAsyncSimulation(smallFed(fedSeed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return drainAsync(a), a
	}
	refEvents, ref := runOne(base)
	gotEvents, got := runOne(compat)

	assertAsyncEventsIdentical(t, refEvents, gotEvents)
	assertAsyncResultsIdentical(t, ref.Result(), got.Result())
	if !bytes.Equal(asyncDAGBytes(t, ref), asyncDAGBytes(t, got)) {
		t.Fatal("scalar fault schedule produced a different DAG than the equivalent NetworkDelay")
	}
	if r := got.Result(); r.Deliveries != 0 || r.DroppedDeliveries != 0 || r.DuplicatedDeliveries != 0 {
		t.Fatalf("uniform schedule must not price individual links, got %+v", r)
	}
}

// TestAsyncFaultWorkerInvariance pins that a run under the full chaos
// schedule is bit-identical for any worker count: the fault schedule is a
// pure function of seed splits keyed on stable identifiers, never on
// scheduling order.
func TestAsyncFaultWorkerInvariance(t *testing.T) {
	cfg := asyncConfig()
	cfg.Duration = 6
	cfg.NetworkDelay = 0
	cfg.Faults = chaosFaults()
	fedSeed := int64(410)

	runWith := func(workers int, pool *par.Budget) ([]AsyncEvent, *AsyncSimulation) {
		c := cfg
		c.Workers = workers
		c.Pool = pool
		a, err := NewAsyncSimulation(smallFed(fedSeed), c)
		if err != nil {
			t.Fatal(err)
		}
		return drainAsync(a), a
	}
	refEvents, ref := runWith(1, nil)
	gotEvents, got := runWith(4, par.NewBudget(4))

	assertAsyncEventsIdentical(t, refEvents, gotEvents)
	assertAsyncResultsIdentical(t, ref.Result(), got.Result())
	if !bytes.Equal(asyncDAGBytes(t, ref), asyncDAGBytes(t, got)) {
		t.Fatal("worker count changed the DAG under the chaos schedule")
	}
	if r := ref.Result(); r.Deliveries == 0 {
		t.Fatal("chaos schedule priced no link deliveries — the fault path did not engage")
	}
	if r1, r4 := ref.Result(), got.Result(); r1.Deliveries != r4.Deliveries ||
		r1.DroppedDeliveries != r4.DroppedDeliveries || r1.DuplicatedDeliveries != r4.DuplicatedDeliveries {
		t.Fatalf("communication statistics differ across worker counts: %+v vs %+v", r1, r4)
	}
}

// TestCrashAnywhereResumeEquivalenceAsyncChaos extends the crash-anywhere
// suite to the chaos schedule: a checkpoint taken after *every* event —
// including ones landing mid-partition and inside client crash windows —
// must resume into a bit-identical remainder.
func TestCrashAnywhereResumeEquivalenceAsyncChaos(t *testing.T) {
	cfg := asyncConfig()
	cfg.Duration = 6
	cfg.NetworkDelay = 0
	cfg.Faults = chaosFaults()
	cfg.Workers = 2
	fedSeed := int64(420)

	ckpts, refEvents, ref := asyncCheckpointsAtEveryEvent(t, cfg, fedSeed)
	if len(refEvents) < 8 {
		t.Fatalf("only %d events; the every-index sweep needs a denser run", len(refEvents))
	}
	// The schedule must actually bite: some checkpoint lands inside the
	// partition window, and churn selected at least one client.
	p := cfg.Faults.Partitions[0]
	mid := false
	for _, ev := range refEvents {
		if ev.Time >= p.From && ev.Time < p.To {
			mid = true
			break
		}
	}
	if !mid {
		t.Fatal("no event (hence no checkpoint) landed inside the partition window")
	}
	if ref.net == nil {
		t.Fatal("chaos schedule did not instantiate a fault model")
	}
	crashed := 0
	for _, c := range ref.clients {
		if _, ok := ref.net.CrashWindow(c.id); ok {
			crashed++
		}
	}
	if crashed == 0 {
		t.Fatal("churn selected no clients")
	}

	refDAG := asyncDAGBytes(t, ref)
	for _, c := range ckpts {
		resumeAsyncAndCompare(t, cfg, fedSeed, c.k, c.blob, refEvents, ref, refDAG)
	}
}

// TestSyncFaults pins the synchronous engine's fault semantics: churn skips
// sampled activations deterministically, partitions change what clients see
// (so results diverge from the fault-free baseline), and the crash-anywhere
// resume contract holds at every round under the schedule.
func TestSyncFaults(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults = faults.Config{
		Partitions: []faults.Partition{{From: 3, To: 7, Groups: 2}},
		ChurnFrac:  0.25, MaxDowntime: 4,
	}
	fedSeed := int64(430)

	ckpts, refHist, ref := syncCheckpointsAtEveryRound(t, cfg, fedSeed)
	refDAG := dagBytes(t, ref)
	if ref.net == nil {
		t.Fatal("schedule did not instantiate a fault model")
	}

	// Churn: some round ran with fewer than the sampled ClientsPerRound.
	short := false
	for _, r := range refHist {
		if len(r.Active) < cfg.ClientsPerRound {
			short = true
			break
		}
	}
	if !short {
		t.Fatal("churn never removed a sampled client — widen the schedule")
	}

	// Determinism: an independent run reproduces the history exactly.
	again, err := NewSimulation(smallFed(fedSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertHistoriesIdentical(t, refHist, again.Run())

	// The schedule must matter: the fault-free baseline diverges.
	baseCfg := smallConfig()
	base, err := NewSimulation(smallFed(fedSeed), baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	baseHist := base.Run()
	same := len(baseHist) == len(refHist)
	if same {
		for i := range refHist {
			if len(refHist[i].Active) != len(baseHist[i].Active) ||
				refHist[i].MeanTrainedAcc() != baseHist[i].MeanTrainedAcc() {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("partition+churn schedule reproduced the fault-free history exactly")
	}

	// Crash-anywhere: every round index resumes bit-identically.
	for k, ckpt := range ckpts {
		resumed, err := ResumeSimulation(smallFed(fedSeed), cfg, bytes.NewReader(ckpt))
		if err != nil {
			t.Fatalf("resume at round %d: %v", k, err)
		}
		assertHistoriesIdentical(t, refHist, resumed.Run())
		if !bytes.Equal(refDAG, dagBytes(t, resumed)) {
			t.Fatalf("resume at round %d: serialized DAGs differ byte-for-byte", k)
		}
	}
}

// TestFaultResumeGuards pins that snapshots refuse to resume under a
// different fault schedule (both engines) and that a faulted synchronous run
// cannot extend its horizon (the schedule is drawn against it).
func TestFaultResumeGuards(t *testing.T) {
	t.Run("async-schedule-change", func(t *testing.T) {
		cfg := asyncConfig()
		cfg.Duration = 4
		cfg.NetworkDelay = 0
		cfg.Faults = chaosFaults()
		a, err := NewAsyncSimulation(smallFed(440), cfg)
		if err != nil {
			t.Fatal(err)
		}
		a.step()
		var buf bytes.Buffer
		if _, err := a.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		other := cfg
		other.Faults.Jitter = 0.2
		if _, err := ResumeAsyncSimulation(smallFed(440), other, bytes.NewReader(buf.Bytes())); err == nil ||
			!strings.Contains(err.Error(), "fault schedule") {
			t.Fatalf("resume under a different schedule: got %v, want a fault-schedule error", err)
		}
		if _, err := ResumeAsyncSimulation(smallFed(440), cfg, bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("resume under the original schedule: %v", err)
		}
	})
	t.Run("sync-schedule-change-and-horizon", func(t *testing.T) {
		cfg := smallConfig()
		cfg.Rounds = 4
		cfg.Faults = faults.Config{ChurnFrac: 0.25, MaxDowntime: 2}
		s, err := NewSimulation(smallFed(441), cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.RunRound()
		var buf bytes.Buffer
		if _, err := s.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		other := cfg
		other.Faults.ChurnFrac = 0.5
		if _, err := ResumeSimulation(smallFed(441), other, bytes.NewReader(buf.Bytes())); err == nil ||
			!strings.Contains(err.Error(), "fault schedule") {
			t.Fatalf("resume under a different schedule: got %v, want a fault-schedule error", err)
		}
		longer := cfg
		longer.Rounds = 8
		if _, err := ResumeSimulation(smallFed(441), longer, bytes.NewReader(buf.Bytes())); err == nil ||
			!strings.Contains(err.Error(), "horizon") {
			t.Fatalf("resume with an extended horizon: got %v, want a horizon error", err)
		}
		if _, err := ResumeSimulation(smallFed(441), cfg, bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("resume under the original schedule: %v", err)
		}
	})
	t.Run("network-delay-conflict", func(t *testing.T) {
		cfg := asyncConfig() // NetworkDelay 0.5
		cfg.Faults = faults.Scalar(0.5)
		if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "conflicts") {
			t.Fatalf("NetworkDelay + enabled Faults: got %v, want a conflict error", err)
		}
	})
}
