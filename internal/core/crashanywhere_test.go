package core

// The crash-anywhere property suite: a checkpoint taken at *every* unit
// boundary — after every round of the synchronous engine, after every event
// of the asynchronous engine — must resume into a run whose remaining
// history, final statistics and final DAG are byte-identical to a run that
// was never interrupted. This is the strongest form of the resume contract:
// not "some convenient cut points work" but "a crash between any two units
// is recoverable with zero drift".
//
// Both engines get the exhaustive every-index treatment on a small
// configuration; the asynchronous engine additionally gets a sampled-index
// pass over a larger run (where N² exhaustion would be too slow) covering
// early, middle, threshold-adjacent and final indices.

import (
	"bytes"
	"testing"

	"github.com/specdag/specdag/internal/par"
	"github.com/specdag/specdag/internal/tipselect"
)

// syncCheckpointsAtEveryRound runs one simulation to completion, returning a
// checkpoint taken before every round (index k = rounds completed), one
// final post-completion checkpoint, and the run's history. Checkpointing is
// read-only, so the same run doubles as the uninterrupted reference.
func syncCheckpointsAtEveryRound(t *testing.T, cfg Config, fedSeed int64) ([][]byte, []RoundResult, *Simulation) {
	t.Helper()
	sim, err := NewSimulation(smallFed(fedSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts [][]byte
	for sim.Round() < cfg.Rounds {
		var buf bytes.Buffer
		if _, err := sim.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		ckpts = append(ckpts, buf.Bytes())
		sim.RunRound()
	}
	var buf bytes.Buffer
	if _, err := sim.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	ckpts = append(ckpts, buf.Bytes())
	return ckpts, sim.Results(), sim
}

// TestCrashAnywhereResumeEquivalenceSync pins the synchronous engine's
// resume contract at every round index, across the features that carry
// client state between rounds: worker counts, evaluation-cache scopes,
// poisoning (label flips + random attackers), and partial-visibility reveal
// delays.
func TestCrashAnywhereResumeEquivalenceSync(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"baseline-workers-1", func(c *Config) { c.Workers = 1 }},
		{"workers-4-eval-scope-round", func(c *Config) { c.Workers = 4; c.EvalScope = EvalScopeRound }},
		{"poisoned", func(c *Config) {
			c.Workers = 2
			c.Poison = PoisonConfig{Fraction: 0.25, FlipA: 3, FlipB: 8, StartRound: 4, RandomAttackers: 1}
		}},
		{"reveal-delay-eval-scope-none", func(c *Config) {
			c.Workers = 2
			c.RevealDelay = 2
			c.EvalScope = EvalScopeNone
		}},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig()
			cfg.ClientsPerRound = 4
			tc.mutate(&cfg)
			fedSeed := int64(200 + i)

			ckpts, refHist, ref := syncCheckpointsAtEveryRound(t, cfg, fedSeed)
			refDAG := dagBytes(t, ref)

			for k, ckpt := range ckpts {
				resumed, err := ResumeSimulation(smallFed(fedSeed), cfg, bytes.NewReader(ckpt))
				if err != nil {
					t.Fatalf("resume at round %d: %v", k, err)
				}
				if resumed.Round() != k {
					t.Fatalf("checkpoint %d resumed at round %d", k, resumed.Round())
				}
				resHist := resumed.Run()
				assertHistoriesIdentical(t, refHist, resHist)
				if !bytes.Equal(refDAG, dagBytes(t, resumed)) {
					t.Fatalf("resume at round %d: serialized DAGs differ byte-for-byte", k)
				}
			}
		})
	}
}

// asyncCkptAt is one crash point: a checkpoint taken with k events
// processed. Two distinct states share index N (the number of events in the
// whole run): the pre-finish snapshot (done=false, pending transactions not
// yet flushed — what WithCheckpoints writes after the final event) and the
// post-finish one (done=true, pending flushed); both must resume cleanly.
type asyncCkptAt struct {
	k    int
	blob []byte
}

// asyncCheckpointsAtEveryEvent runs one event-driven simulation to
// completion, returning a checkpoint taken at every event index — including
// both boundary states at index N — and the event history. Checkpointing is
// read-only, so the same run doubles as the uninterrupted reference.
func asyncCheckpointsAtEveryEvent(t *testing.T, cfg AsyncConfig, fedSeed int64) ([]asyncCkptAt, []AsyncEvent, *AsyncSimulation) {
	t.Helper()
	a, err := NewAsyncSimulation(smallFed(fedSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts []asyncCkptAt
	var events []AsyncEvent
	for !a.done {
		var buf bytes.Buffer
		if _, err := a.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		ckpts = append(ckpts, asyncCkptAt{k: a.Events(), blob: buf.Bytes()})
		if ev := a.step(); ev != nil {
			events = append(events, *ev)
		}
	}
	var buf bytes.Buffer
	if _, err := a.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	ckpts = append(ckpts, asyncCkptAt{k: a.Events(), blob: buf.Bytes()})
	return ckpts, events, a
}

// resumeAsyncAndCompare resumes from a checkpoint taken at event index k and
// requires the remaining event stream, the final statistics and the final
// DAG to match the reference bit for bit.
func resumeAsyncAndCompare(t *testing.T, cfg AsyncConfig, fedSeed int64, k int, ckpt []byte,
	refEvents []AsyncEvent, ref *AsyncSimulation, refDAG []byte) {
	t.Helper()
	resumed, err := ResumeAsyncSimulation(smallFed(fedSeed), cfg, bytes.NewReader(ckpt))
	if err != nil {
		t.Fatalf("resume at event %d: %v", k, err)
	}
	if resumed.Events() != k {
		t.Fatalf("checkpoint %d resumed at event %d", k, resumed.Events())
	}
	suffix := drainAsync(resumed)
	assertAsyncEventsIdentical(t, refEvents[k:], suffix)
	assertAsyncResultsIdentical(t, ref.Result(), resumed.Result())
	if !bytes.Equal(refDAG, asyncDAGBytes(t, resumed)) {
		t.Fatalf("resume at event %d: serialized DAGs differ byte-for-byte", k)
	}
}

// TestCrashAnywhereResumeEquivalenceAsync pins the asynchronous engine's
// resume contract at every event index of a small run, for both an
// ideal-broadcast (NetworkDelay=0) and a delayed-propagation configuration
// (where checkpoints routinely carry in-flight pending transactions), and
// for both worker counts of the per-event evaluation fan-out.
func TestCrashAnywhereResumeEquivalenceAsync(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*AsyncConfig)
	}{
		{"ideal-broadcast-workers-1", func(c *AsyncConfig) { c.NetworkDelay = 0; c.Workers = 1 }},
		{"network-delay-workers-4", func(c *AsyncConfig) { c.NetworkDelay = 3; c.Workers = 4 }},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := asyncConfig()
			cfg.Duration = 6 // ~15-20 events with the 1-8s cycle spread
			tc.mutate(&cfg)
			fedSeed := int64(220 + i)

			ckpts, refEvents, ref := asyncCheckpointsAtEveryEvent(t, cfg, fedSeed)
			if len(refEvents) < 10 {
				t.Fatalf("only %d events; the every-index sweep needs a denser run", len(refEvents))
			}
			// Every event index, plus both boundary states at index N (the
			// pre-finish and post-finish snapshots).
			if len(ckpts) != len(refEvents)+2 {
				t.Fatalf("collected %d checkpoints for %d events", len(ckpts), len(refEvents))
			}
			refDAG := asyncDAGBytes(t, ref)

			for _, c := range ckpts {
				resumeAsyncAndCompare(t, cfg, fedSeed, c.k, c.blob, refEvents, ref, refDAG)
			}
		})
	}
}

// TestCrashAnywhereResumeEquivalenceAsyncLarge is the sampled-index pass
// over a run big enough to cross the parallel cumulative-weight threshold
// (>128 transactions) under a shared worker budget: exhaustive resumption
// would be quadratic, so it probes early, pre-threshold, post-threshold and
// final indices.
func TestCrashAnywhereResumeEquivalenceAsyncLarge(t *testing.T) {
	cfg := asyncConfig()
	cfg.Duration = 25
	cfg.MinCycle = 0.5
	cfg.MaxCycle = 4
	cfg.NetworkDelay = 1
	cfg.Selector = tipselect.WeightedWalk{Alpha: 0.1}
	cfg.Workers = 4
	cfg.Pool = par.NewBudget(4)
	fedSeed := int64(230)

	ckpts, refEvents, ref := asyncCheckpointsAtEveryEvent(t, cfg, fedSeed)
	refDAG := asyncDAGBytes(t, ref)
	if ref.DAG().Size() <= 128 {
		t.Fatalf("DAG has %d transactions; the sampled pass must cross the 128-tx parallel threshold", ref.DAG().Size())
	}

	n := len(refEvents)
	for _, i := range []int{0, 1, n / 4, n / 2, 3 * n / 4, n - 1, n, n + 1} {
		// ckpts[i].k == i for i <= n; ckpts[n+1] is the post-finish state.
		resumeAsyncAndCompare(t, cfg, fedSeed, ckpts[i].k, ckpts[i].blob, refEvents, ref, refDAG)
	}
}
