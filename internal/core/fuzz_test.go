package core

// FuzzCheckpointDecode hammers every checkpoint decoder — InspectCheckpoint
// plus both resume paths — with arbitrary bytes. The contract under fuzzing
// is the corruption battery's, generalized: malformed input of any shape
// must come back as a non-empty, actionable error (or a successful resume of
// a genuinely valid checkpoint), never a panic. The seed corpus contains a
// valid checkpoint of each SDC1-family variant (sync SDC1 and async SDA1),
// the committed golden fixtures, a bare SDG1 DAG snapshot, and assorted
// truncations/mutations, so the fuzzer starts at the real formats and
// mutates inward into the gob payload and the embedded DAG codec.

import (
	"bytes"
	"os"
	"testing"
)

func FuzzCheckpointDecode(f *testing.F) {
	fed := goldenFed()
	syncCfg := goldenSyncConfig()
	asyncCfg := goldenAsyncConfig()

	// Seed with a freshly written checkpoint of each variant…
	sim, err := NewSimulation(fed, syncCfg)
	if err != nil {
		f.Fatal(err)
	}
	sim.RunRound()
	var syncSnap bytes.Buffer
	if _, err := sim.WriteCheckpoint(&syncSnap); err != nil {
		f.Fatal(err)
	}
	async, err := NewAsyncSimulation(fed, asyncCfg)
	if err != nil {
		f.Fatal(err)
	}
	for async.Events() < 2 {
		async.step()
	}
	var asyncSnap bytes.Buffer
	if _, err := async.WriteCheckpoint(&asyncSnap); err != nil {
		f.Fatal(err)
	}
	var dagSnap bytes.Buffer
	if _, err := sim.DAG().WriteTo(&dagSnap); err != nil {
		f.Fatal(err)
	}
	f.Add(syncSnap.Bytes())
	f.Add(asyncSnap.Bytes())
	f.Add(dagSnap.Bytes())

	// …the committed golden fixtures (ignore errors: the corpus is best
	// effort if the fixtures are absent)…
	for _, p := range []string{goldenSyncPath, goldenAsyncPath} {
		if blob, err := os.ReadFile(p); err == nil {
			f.Add(blob)
		}
	}

	// …and malformed variants: truncations, a magic swap (sync payload
	// behind the async magic and vice versa), flipped gob header bytes.
	f.Add(syncSnap.Bytes()[:4])
	f.Add(asyncSnap.Bytes()[:syncSnap.Len()/2])
	f.Add([]byte{})
	f.Add([]byte("SDC1"))
	f.Add([]byte("SDA1garbage"))
	swapped := append([]byte("SDA1"), syncSnap.Bytes()[4:]...)
	f.Add(swapped)
	swapped2 := append([]byte("SDC1"), asyncSnap.Bytes()[4:]...)
	f.Add(swapped2)
	flipped := append([]byte(nil), asyncSnap.Bytes()...)
	flipped[7] ^= 0xff
	f.Add(flipped)
	// The event-stream sibling (internal/wire, magic SDE1): its header over
	// a checkpoint payload must come back as the "this is an event log"
	// error, never a decode attempt.
	f.Add([]byte("SDE1"))
	f.Add(append([]byte("SDE1"), syncSnap.Bytes()[4:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("bounded: real checkpoints of the fuzz config are ~20KB")
		}
		if _, _, err := InspectCheckpoint(bytes.NewReader(data)); err != nil && err.Error() == "" {
			t.Fatal("InspectCheckpoint returned an empty error")
		}
		if _, err := ResumeSimulation(fed, syncCfg, bytes.NewReader(data)); err != nil && err.Error() == "" {
			t.Fatal("ResumeSimulation returned an empty error")
		}
		if _, err := ResumeAsyncSimulation(fed, asyncCfg, bytes.NewReader(data)); err != nil && err.Error() == "" {
			t.Fatal("ResumeAsyncSimulation returned an empty error")
		}
	})
}
