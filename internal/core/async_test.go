package core

import (
	"math"
	"testing"

	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/mathx"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/xrand"
)

func asyncConfig() AsyncConfig {
	return AsyncConfig{
		Duration:     60,
		MinCycle:     1,
		MaxCycle:     8,
		NetworkDelay: 0.5,
		Local:        nn.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:         nn.Arch{In: 64, Hidden: []int{32}, Out: 10},
		Selector:     tipselect.AccuracyWalk{Alpha: 10},
		Seed:         1,
	}
}

func TestAsyncConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*AsyncConfig)
		wantErr bool
	}{
		{"valid", func(c *AsyncConfig) {}, false},
		{"zero duration", func(c *AsyncConfig) { c.Duration = 0 }, true},
		{"zero min cycle", func(c *AsyncConfig) { c.MinCycle = 0 }, true},
		{"max < min", func(c *AsyncConfig) { c.MaxCycle = c.MinCycle / 2 }, true},
		{"negative delay", func(c *AsyncConfig) { c.NetworkDelay = -1 }, true},
		{"bad arch", func(c *AsyncConfig) { c.Arch.In = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := asyncConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestAsyncRunBasics(t *testing.T) {
	fed := smallFed(30)
	res, err := RunAsync(fed, asyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clients) != len(fed.Clients) {
		t.Fatalf("client stats %d, want %d", len(res.Clients), len(fed.Clients))
	}
	if res.Transactions < 10 {
		t.Fatalf("DAG barely grew: %d transactions", res.Transactions)
	}
	for _, c := range res.Clients {
		if c.Cycles == 0 {
			t.Fatalf("client %d never ran", c.ID)
		}
		if c.Published > c.Cycles {
			t.Fatalf("client %d published %d > cycles %d", c.ID, c.Published, c.Cycles)
		}
	}
}

// TestAsyncNoStragglers verifies the §5.3.3 claim: slow clients do not slow
// down fast ones. A client's completed cycle count must be governed by its
// own cycle time, independent of others.
func TestAsyncNoStragglers(t *testing.T) {
	fed := smallFed(31)
	cfg := asyncConfig()
	cfg.Duration = 80
	res, err := RunAsync(fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clients {
		expected := cfg.Duration / c.CycleTime
		// Completed cycles must be within one of the expectation — any
		// systematic shortfall would mean cross-client blocking.
		if math.Abs(float64(c.Cycles)-expected) > 2 {
			t.Fatalf("client %d: %d cycles, expected ≈%.1f (cycle time %.2fs) — stragglers are blocking",
				c.ID, c.Cycles, expected, c.CycleTime)
		}
	}
}

func TestAsyncFastClientsDoMoreWork(t *testing.T) {
	fed := smallFed(32)
	res, err := RunAsync(fed, asyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	fastest, slowest := res.Clients[0], res.Clients[0]
	for _, c := range res.Clients {
		if c.CycleTime < fastest.CycleTime {
			fastest = c
		}
		if c.CycleTime > slowest.CycleTime {
			slowest = c
		}
	}
	if fastest.Cycles <= slowest.Cycles {
		t.Fatalf("fastest client (%.2fs) did %d cycles, slowest (%.2fs) did %d — asynchrony broken",
			fastest.CycleTime, fastest.Cycles, slowest.CycleTime, slowest.Cycles)
	}
}

func TestAsyncLearns(t *testing.T) {
	fed := smallFed(33)
	cfg := asyncConfig()
	cfg.Duration = 120
	res, err := RunAsync(fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	for _, c := range res.Clients {
		sum += c.FinalAcc
		n++
	}
	if mean := sum / float64(n); mean < 0.6 {
		t.Fatalf("async training failed to learn: mean final acc %.3f", mean)
	}
}

func TestAsyncDeterminism(t *testing.T) {
	run := func() *AsyncResult {
		res, err := RunAsync(smallFed(34), asyncConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Transactions != b.Transactions {
		t.Fatal("async runs with identical seeds diverged in DAG size")
	}
	for i := range a.Clients {
		if a.Clients[i].Cycles != b.Clients[i].Cycles || a.Clients[i].FinalAcc != b.Clients[i].FinalAcc {
			t.Fatal("async runs with identical seeds diverged in client stats")
		}
	}
}

// TestAsyncPublishesTrainedModel is the regression test for a seed bug: the
// sequential event loop evaluated the consensus reference on the client's
// scratch model last, so the publish step copied the *reference* params
// while stamping them with the *trained* model's accuracy. Published params
// must reproduce the accuracy recorded in their own Meta when evaluated on
// the issuer's test split.
func TestAsyncPublishesTrainedModel(t *testing.T) {
	fedSeed := int64(36)
	cfg := asyncConfig()
	res, err := RunAsync(smallFed(fedSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Regenerate the identical federation to recover per-client test splits.
	fed := smallFed(fedSeed)
	testX := make(map[int]mathx.Matrix)
	testY := make(map[int][]int)
	for _, fc := range fed.Clients {
		testX[fc.ID], testY[fc.ID] = fc.Test.X, fc.Test.Y
	}
	model := nn.New(cfg.Arch, xrand.New(99))
	checked := 0
	for _, tx := range res.DAG.All() {
		if tx.IsGenesis() {
			continue
		}
		model.SetParams(tx.Params)
		_, acc := model.Evaluate(testX[tx.Issuer], testY[tx.Issuer])
		if acc != tx.Meta.TestAcc {
			t.Fatalf("tx %d by client %d: params score %v but Meta.TestAcc is %v — published the wrong model",
				tx.ID, tx.Issuer, acc, tx.Meta.TestAcc)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no published transactions to check")
	}
}

func TestAsyncRejectsBadInput(t *testing.T) {
	if _, err := RunAsync(&dataset.Federation{}, asyncConfig()); err == nil {
		t.Error("empty federation should be rejected")
	}
	cfg := asyncConfig()
	cfg.Duration = -1
	if _, err := RunAsync(smallFed(35), cfg); err == nil {
		t.Error("bad config should be rejected")
	}
}

// TestAsyncReferenceWalksMatter is the regression test for a seed bug: the
// async engine ignored ReferenceWalks > 1 and always took exactly one
// reference walk, so 1 and 3 walks produced identical runs. Both engines
// now share one consensusReference helper; with >1 walks the reference is
// the average of several walked models, which must change publish decisions
// somewhere over a run.
func TestAsyncReferenceWalksMatter(t *testing.T) {
	run := func(walks int) *AsyncResult {
		cfg := asyncConfig()
		cfg.ReferenceWalks = walks
		res, err := RunAsync(smallFed(37), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, three := run(1), run(3)
	same := one.Transactions == three.Transactions
	for i := range one.Clients {
		if one.Clients[i] != three.Clients[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("ReferenceWalks=3 produced a run identical to ReferenceWalks=1 — the setting is still ignored")
	}
}

func TestAsyncValidatesReferenceWalks(t *testing.T) {
	cfg := asyncConfig()
	cfg.ReferenceWalks = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ReferenceWalks should be rejected")
	}
}
