package wire

// FuzzWireDecode hammers the SDE1 decoder with arbitrary bytes: the same
// contract as the checkpoint fuzzer (internal/core.FuzzCheckpointDecode),
// applied to the event-stream codec. Malformed input of any shape must come
// back as a non-empty, actionable error (or decode as a genuinely valid
// stream), never a panic. The seed corpus covers the real format (a full
// stream of every frame kind), truncations, flipped header and gob bytes,
// and the sibling SDC1/SDA1/SDG1 magics, so the fuzzer starts at the
// interesting boundaries: header confusion and gob-payload corruption.

import (
	"bytes"
	"io"
	"testing"
)

func FuzzWireDecode(f *testing.F) {
	frames := sampleFrames()
	var full bytes.Buffer
	w, err := NewWriter(&full)
	if err != nil {
		f.Fatal(err)
	}
	for i := range frames {
		if err := w.WriteFrame(&frames[i]); err != nil {
			f.Fatal(err)
		}
	}

	f.Add(full.Bytes())
	f.Add(full.Bytes()[:4])
	f.Add(full.Bytes()[:full.Len()/2])
	f.Add([]byte{})
	f.Add([]byte("SDE1"))
	f.Add([]byte("SDE1garbage"))
	// Magic confusion: checkpoint-family headers over an event-stream
	// payload and an event-stream header over nothing meaningful.
	for _, m := range []string{"SDC1", "SDA1", "SDG1"} {
		f.Add(append([]byte(m), full.Bytes()[4:]...))
	}
	// Flipped header and gob bytes.
	for _, i := range []int{0, 3, 5, 7, 40} {
		if i < full.Len() {
			mut := append([]byte(nil), full.Bytes()...)
			mut[i] ^= 0xff
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("bounded: the seed streams are a few KB")
		}
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if err.Error() == "" {
				t.Fatal("NewReader returned an empty error")
			}
			return
		}
		for i := 0; i < 10_000; i++ { // bound: arbitrary bytes cannot stream forever
			fr, err := r.ReadFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				if err.Error() == "" {
					t.Fatal("ReadFrame returned an empty error")
				}
				return
			}
			if err := fr.validate(); err != nil {
				t.Fatalf("ReadFrame returned an invalid frame: %v", err)
			}
		}
	})
}
